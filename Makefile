GO ?= go

.PHONY: ci build vet test race bench bench-telemetry

ci: vet build test race

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# One benchmark per table/figure/experiment (see DESIGN.md §4).
bench:
	$(GO) test -run xxx -bench . -benchtime 1x ./...

# The telemetry cost gate: a disabled trace call site must stay under
# 5 ns (asserted inside the benchmark), and the signaling throughput
# benchmark reports sim-calls/s alongside registry-derived setup
# latency percentiles.
bench-telemetry:
	$(GO) test -run xxx -bench BenchmarkTelemetryOverhead ./internal/obs/
	$(GO) test -run xxx -bench BenchmarkSimulatedCallsPerSecond ./internal/signaling/
