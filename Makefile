GO ?= go

.PHONY: ci build vet test race benchcheck bench bench-telemetry tracegate chaosgate obsgate sigbench

ci: vet build test race benchcheck tracegate chaosgate obsgate sigbench

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# Compile-and-smoke every benchmark (single iteration) so ci catches
# bench-only build or runtime breakage without paying measurement time.
benchcheck:
	$(GO) test -run '^$$' -bench . -benchtime 1x ./...

# Full measurement run: every benchmark three times, aggregated to
# min/median per metric as machine-readable JSON (see README for the
# BENCH_*.json format). BenchmarkScheduleRun's 0 allocs/op steady state
# is gated separately by TestScheduleRunSteadyStateAllocs in `make
# test`; the signaling path's zero-alloc call cycle by
# TestSteadyStateCallAllocs.
bench:
	$(GO) test -run '^$$' -bench . -count 3 ./... | $(GO) run ./cmd/benchjson -o BENCH_PR5.json

# The control-plane throughput gate: re-measure the call-storm
# benchmark and compare against the committed PR 5 baseline with
# benchjson -diff. Two verdicts: allocs/op is deterministic run to run,
# so it gates tight (2%) and catches any pooling or codec regression;
# sim-calls/s is wall clock on whatever machine ci landed on — shared
# vCPUs throttle burst credits late in a ci run, so its gate is wide
# (30%), sized to catch structural regressions (a reintroduced linear
# scan costs 2.4x here) while riding out cgroup throttling. min-of-5
# on the new side keeps scheduler noise out of the verdict.
sigbench:
	$(GO) test -run '^$$' -bench BenchmarkSimulatedCallsPerSecond -count 5 ./internal/signaling/ | $(GO) run ./cmd/benchjson -o /tmp/sigbench.json
	$(GO) run ./cmd/benchjson -diff -bench 'SimulatedCallsPerSecond$$' -metric 'allocs/op' -gate 2 BENCH_PR5.json /tmp/sigbench.json
	$(GO) run ./cmd/benchjson -diff -bench 'SimulatedCallsPerSecond$$' -metric 'sim-calls/s' -gate 30 BENCH_PR5.json /tmp/sigbench.json

# The causal-tracing gate: the overhead benchmark self-asserts that a
# disabled collector call site stays under 5 ns (and the unsampled path
# at 0 allocs/op, via TestUnsampledPathAllocs in `make test`), then the
# E4 storm's trace export is schema-checked as Chrome trace-event JSON
# and run twice to prove same-seed byte determinism.
tracegate:
	$(GO) test -run '^$$' -bench BenchmarkTraceOverhead/disabled -benchtime 2000000x ./internal/trace/
	$(GO) run ./cmd/tracegen | $(GO) run ./cmd/tracecheck -v
	$(GO) run ./cmd/tracegen > /tmp/tracegate-a.json && $(GO) run ./cmd/tracegen > /tmp/tracegate-b.json && cmp /tmp/tracegate-a.json /tmp/tracegate-b.json

# The fault-injection gate: a disabled fault hook (nil plane pointer)
# must stay under 5 ns (asserted inside the benchmark) so the hooks
# compiled into every transport cannot skew clean-path numbers, then
# the chaos soak — call storms under the seeded fault cocktail with two
# mid-storm sighost crashes — is run twice and byte-diffed, guarding
# the claim that the fault schedule is part of the deterministic
# replay. (The zero-probability golden-preservation side is
# TestZeroProbPlaneInvisibleEndToEnd in `make test`.)
chaosgate:
	$(GO) test -run '^$$' -bench BenchmarkFaultsOverhead/disabled -benchtime 2000000x ./internal/faults/
	$(GO) run ./cmd/chaosgen > /tmp/chaosgate-a.txt && $(GO) run ./cmd/chaosgen > /tmp/chaosgate-b.txt && cmp /tmp/chaosgate-a.txt /tmp/chaosgate-b.txt

# The continuous-telemetry gate: a disabled scrape hook (nil Peak
# pointer) must stay under 5 ns (asserted inside the benchmark) so the
# hooks compiled into the switch hot path cannot skew clean-path
# numbers, then the E4 storm's time-series export is run twice and
# byte-diffed, guarding the claim that the scraped series are part of
# the deterministic replay. (Steady-state zero allocation is
# TestTickSteadyStateDoesNotAllocate in `make test`.)
obsgate:
	$(GO) test -run '^$$' -bench BenchmarkTSeriesOverhead/disabled -benchtime 2000000x ./internal/obs/tseries/
	$(GO) run ./cmd/obsgen > /tmp/obsgate-a.json && $(GO) run ./cmd/obsgen > /tmp/obsgate-b.json && cmp /tmp/obsgate-a.json /tmp/obsgate-b.json

# The telemetry cost gate: a disabled trace call site must stay under
# 5 ns (asserted inside the benchmark), and the signaling throughput
# benchmark reports sim-calls/s alongside registry-derived setup
# latency percentiles.
bench-telemetry:
	$(GO) test -run xxx -bench BenchmarkTelemetryOverhead ./internal/obs/
	$(GO) test -run xxx -bench BenchmarkSimulatedCallsPerSecond ./internal/signaling/
