GO ?= go

.PHONY: ci build vet test race benchcheck bench bench-telemetry tracegate chaosgate obsgate sigbench shardgate profgate rtbench rtbench-smoke crossbuild

ci: vet build test race benchcheck tracegate chaosgate obsgate sigbench shardgate profgate rtbench-smoke crossbuild

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# Compile-and-smoke every benchmark (single iteration) so ci catches
# bench-only build or runtime breakage without paying measurement time.
benchcheck:
	$(GO) test -run '^$$' -bench . -benchtime 1x ./...

# Full measurement run: every benchmark three times, aggregated to
# min/median per metric as machine-readable JSON (see README for the
# BENCH_*.json format). Since PR 7 the report lands in BENCH_PR7.json —
# it now carries the sharded storm's sim-calls/s vs worker-count series
# and the gomaxprocs stamp — while BENCH_PR5.json stays frozen as the
# control-plane baseline sigbench diffs against. BenchmarkScheduleRun's
# 0 allocs/op steady state is gated separately by
# TestScheduleRunSteadyStateAllocs in `make test`; the signaling path's
# zero-alloc call cycle by TestSteadyStateCallAllocs.
bench:
	$(GO) test -run '^$$' -bench . -count 3 ./... | $(GO) run ./cmd/benchjson -o BENCH_PR7.json

# The control-plane throughput gate: re-measure the call-storm
# benchmark and compare with benchjson -diff. Two verdicts against two
# baselines: allocs/op is deterministic run to run and across machines,
# so it gates tight (2%) against the frozen PR 5 fast-path baseline and
# catches any pooling or codec regression; sim-calls/s is wall clock on
# whatever machine ci landed on — containers differ in CPU class and
# shared vCPUs throttle burst credits late in a run — so it diffs
# against the most recently committed full report (BENCH_PR7.json,
# measured on the current container class; its gomaxprocs stamp lets
# -diff flag parallelism mismatches) with a wide gate (30%), sized to
# catch structural regressions (a reintroduced linear scan costs 2.4x
# here) while riding out throttling. min-of-5 on the new side keeps
# scheduler noise out of the verdict.
sigbench:
	$(GO) test -run '^$$' -bench BenchmarkSimulatedCallsPerSecond -count 5 ./internal/signaling/ | $(GO) run ./cmd/benchjson -o /tmp/sigbench.json
	$(GO) run ./cmd/benchjson -diff -bench 'SimulatedCallsPerSecond$$' -metric 'allocs/op' -gate 2 BENCH_PR5.json /tmp/sigbench.json
	$(GO) run ./cmd/benchjson -diff -bench 'SimulatedCallsPerSecond$$' -metric 'sim-calls/s' -gate 30 BENCH_PR7.json /tmp/sigbench.json

# The causal-tracing gate: the overhead benchmark self-asserts that a
# disabled collector call site stays under 5 ns (and the unsampled path
# at 0 allocs/op, via TestUnsampledPathAllocs in `make test`), then the
# E4 storm's trace export is schema-checked as Chrome trace-event JSON
# and run twice to prove same-seed byte determinism.
tracegate:
	$(GO) test -run '^$$' -bench BenchmarkTraceOverhead/disabled -benchtime 2000000x ./internal/trace/
	$(GO) run ./cmd/tracegen | $(GO) run ./cmd/tracecheck -v
	$(GO) run ./cmd/tracegen > /tmp/tracegate-a.json && $(GO) run ./cmd/tracegen > /tmp/tracegate-b.json && cmp /tmp/tracegate-a.json /tmp/tracegate-b.json

# The fault-injection gate: a disabled fault hook (nil plane pointer)
# must stay under 5 ns (asserted inside the benchmark) so the hooks
# compiled into every transport cannot skew clean-path numbers, then
# the chaos soak — call storms under the seeded fault cocktail with two
# mid-storm sighost crashes — is run twice and byte-diffed, guarding
# the claim that the fault schedule is part of the deterministic
# replay. (The zero-probability golden-preservation side is
# TestZeroProbPlaneInvisibleEndToEnd in `make test`.)
chaosgate:
	$(GO) test -run '^$$' -bench BenchmarkFaultsOverhead/disabled -benchtime 2000000x ./internal/faults/
	$(GO) run ./cmd/chaosgen > /tmp/chaosgate-a.txt && $(GO) run ./cmd/chaosgen > /tmp/chaosgate-b.txt && cmp /tmp/chaosgate-a.txt /tmp/chaosgate-b.txt

# The continuous-telemetry gate: a disabled scrape hook (nil Peak
# pointer) must stay under 5 ns (asserted inside the benchmark) so the
# hooks compiled into the switch hot path cannot skew clean-path
# numbers, then the E4 storm's time-series export is run twice and
# byte-diffed, guarding the claim that the scraped series are part of
# the deterministic replay. (Steady-state zero allocation is
# TestTickSteadyStateDoesNotAllocate in `make test`.)
obsgate:
	$(GO) test -run '^$$' -bench BenchmarkTSeriesOverhead/disabled -benchtime 2000000x ./internal/obs/tseries/
	$(GO) run ./cmd/obsgen > /tmp/obsgate-a.json && $(GO) run ./cmd/obsgen > /tmp/obsgate-b.json && cmp /tmp/obsgate-a.json /tmp/obsgate-b.json

# The sharded-engine gate (PR 7): the multi-domain E4 storm must
# produce byte-identical history at workers=1 (the sequential golden
# reference) and workers=4 — both clean and under the chaos cocktail —
# and the cross-shard post path must stay allocation-free
# (TestCrossShardPostZeroAlloc). The end-to-end half re-runs obsgen's
# sharded export at both worker counts and byte-diffs. The ≥2.5x
# 4-worker speedup (TestShardedScalingGate) asserts only on machines
# with GOMAXPROCS >= 4 and self-skips elsewhere; the determinism checks
# run everywhere.
shardgate:
	$(GO) test -count 1 -run 'TestCrossShardPostZeroAlloc|TestOneShardGroupMatchesPlainEngine|TestShardGroupDeterministicAcrossWorkers' ./internal/sim/
	$(GO) test -count 1 -run 'TestShardedStormDeterministicAcrossWorkers|TestShardedChaosDeterministicAcrossWorkers|TestShardedScalingGate' ./internal/testbed/
	$(GO) run ./cmd/obsgen -shards 4 -workers 1 -calls 24 -frames 2 -run 8s > /tmp/shardgate-w1.json
	$(GO) run ./cmd/obsgen -shards 4 -workers 4 -calls 24 -frames 2 -run 8s > /tmp/shardgate-w4.json
	cmp /tmp/shardgate-w1.json /tmp/shardgate-w4.json

# The execution-profiler gate (PR 8): a disabled profiler hook (nil
# EngineProf/GroupProf pointer) must stay under 5 ns (asserted inside
# the benchmark) so the hooks compiled into the engine's exec loop and
# the shard barrier cannot skew unprofiled runs; then the profiler's
# deterministic counts export — per-shard per-label event counts,
# window/idle-skip counters, the cross-shard post/byte matrix — is
# byte-diffed at workers 1 vs 4 on the sharded E4 storm, guarding the
# contract that profiling attributes the virtual history, which worker
# scheduling never changes. (Wall-nanosecond attribution is exactly the
# part CountsText omits; Text/JSON carry it for humans.)
profgate:
	$(GO) test -run '^$$' -bench BenchmarkProfOverhead/disabled -benchtime 2000000x ./internal/prof/
	$(GO) run ./cmd/obsgen -prof -shards 4 -workers 1 -calls 24 -frames 2 -run 8s > /tmp/profgate-w1.txt
	$(GO) run ./cmd/obsgen -prof -shards 4 -workers 4 -calls 24 -frames 2 -run 8s > /tmp/profgate-w4.txt
	cmp /tmp/profgate-w1.txt /tmp/profgate-w4.txt

# The real-mode wall-clock tier (PR 10): loopback frame throughput and
# cross-daemon call-setup rate over actual UDP/TCP sockets, batched
# (sendmmsg/recvmmsg) vs per-message fallback, as BENCH-format JSON.
# Three gates:
#   - allocs: the carrier's steady-state send/recv cycle and the AAL5
#     framing path must stay at zero allocations (also enforced under
#     -race by `make race`);
#   - sys/frame ratio ≥ 2x: batching must amortize syscalls — measured
#     from the carrier's own counters, it runs ~32x (2 syscalls per
#     32-frame burst vs 2 per frame). This is the mechanism gate: on a
#     modern kernel the per-datagram loopback stack (~3 µs) dwarfs
#     syscall entry (~0.1 µs), so syscall amortization is the durable
#     claim, wall clock the noisy echo of it;
#   - frames/s ratio ≥ 1x: batched mode must never be slower on the
#     wall clock (measures ~1.2-1.3x here).
# The batched benchmarks self-skip off linux/amd64+arm64, and
# -skip-missing turns both ratio gates into no-ops there.
rtbench:
	$(GO) test -count 1 -run 'TestHotLoopAllocs|TestAAL5LinkSendAllocs' ./internal/rtnet/
	$(GO) test -run '^$$' -bench 'BenchmarkRealFrames|BenchmarkRealSetups' -count 3 ./internal/rtnet/ ./internal/signaling/ | $(GO) run ./cmd/benchjson -o BENCH_RT.json
	$(GO) run ./cmd/benchjson -ratio -a 'RealFrames/fallback' -b 'RealFrames/batched' -metric 'sys/frame' -min 2 -skip-missing BENCH_RT.json
	$(GO) run ./cmd/benchjson -ratio -a 'RealFrames/batched' -b 'RealFrames/fallback' -metric 'frames/s' -min 1 -skip-missing BENCH_RT.json

# ci's short form of the tier: same gates, fixed small iteration counts
# so it costs seconds. The wall-clock floor is relaxed to 0.8x — at
# -benchtime 300x a single scheduler hiccup moves the median — while
# the sys/frame mechanism gate keeps its full 2x floor (the counters
# are deterministic at any iteration count).
rtbench-smoke:
	$(GO) test -count 1 -run 'TestHotLoopAllocs|TestAAL5LinkSendAllocs' ./internal/rtnet/
	$(GO) test -run '^$$' -bench 'BenchmarkRealFrames' -count 2 -benchtime 300x ./internal/rtnet/ | $(GO) run ./cmd/benchjson -o /tmp/rtbench-smoke.json
	$(GO) run ./cmd/benchjson -ratio -a 'RealFrames/fallback' -b 'RealFrames/batched' -metric 'sys/frame' -min 2 -skip-missing /tmp/rtbench-smoke.json
	$(GO) run ./cmd/benchjson -ratio -a 'RealFrames/batched' -b 'RealFrames/fallback' -metric 'frames/s' -min 0.8 -skip-missing /tmp/rtbench-smoke.json

# Cross-compile check: the carrier's batched/fallback build-tag split
# must keep the tree compiling on a platform with no sendmmsg (darwin
# exercises the fallback files' constraints without needing the OS).
crossbuild:
	GOOS=darwin GOARCH=arm64 $(GO) build ./...
	GOOS=linux GOARCH=arm64 $(GO) build ./...

# The telemetry cost gate: a disabled trace call site must stay under
# 5 ns (asserted inside the benchmark), and the signaling throughput
# benchmark reports sim-calls/s alongside registry-derived setup
# latency percentiles.
bench-telemetry:
	$(GO) test -run xxx -bench BenchmarkTelemetryOverhead ./internal/obs/
	$(GO) test -run xxx -bench BenchmarkSimulatedCallsPerSecond ./internal/signaling/
