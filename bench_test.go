// Package xunet's root test file regenerates every table, figure and
// measurement of the paper's evaluation (§9–§10), plus the design-
// choice ablations DESIGN.md calls out. Each benchmark reports the
// paper-comparable quantity as a testing.B metric:
//
//	Table 1  -> BenchmarkTable1_*          instr/op (and TestTable1_Regenerate)
//	Table 2  -> BenchmarkTable2_CodeSize   go-lines (and cmd/codesize)
//	§9  E1   -> BenchmarkE1_RegisterService   vms/op (virtual milliseconds)
//	§9  E2   -> BenchmarkE2_AcceptCall        vms/op
//	§9  E3   -> BenchmarkE3_CallSetup(+NoLogging)  vms/op
//	§10 E4   -> BenchmarkE4_CallStorm         calls-ok
//	§10 E5   -> BenchmarkE5_BufferSweep/*     dev-lost; FDSweep: max-setup
//	§9  E6   -> BenchmarkE6_EncapVsUDP/*      vMbps + instr/frame
//	§5.1 X1  -> BenchmarkX1_UserVsKernelSignaling  vms/op
//	§5.4 X2  -> BenchmarkX2_CarrierChoice/*   vMbps
//	§3   X3  -> BenchmarkX3_Admission         admitted
//
// "Shape, not absolute numbers": virtual-time metrics are calibrated to
// the paper's 1993 testbed (DESIGN.md §6); wall-clock ns/op measures
// only this simulator's speed and is not paper-comparable.
package xunet_test

import (
	"fmt"
	"testing"
	"time"

	"xunet/internal/codesize"
	"xunet/internal/cost"
	"xunet/internal/kern"
	"xunet/internal/mbuf"
	"xunet/internal/memnet"
	"xunet/internal/qos"
	"xunet/internal/sim"
	"xunet/internal/testbed"
	"xunet/internal/ulib"
)

// ---------------------------------------------------------------------------
// Table 1: instruction counts for the send and receive paths at a host.
// ---------------------------------------------------------------------------

// table1Rig builds host--router--(testbed fabric)--router--host and
// returns the pieces the Table 1 paths need.
type table1Rig struct {
	n            *testbed.Net
	hostA, hostB *testbed.Host
	ra, rb       *testbed.Router
}

func newTable1Rig(b testing.TB) *table1Rig {
	n, ra, rb, err := testbed.NewTestbed(testbed.Options{})
	if err != nil {
		b.Fatal(err)
	}
	hostA, err := n.AddHost("mh.h1", ra)
	if err != nil {
		b.Fatal(err)
	}
	hostB, err := n.AddHost("ucb.h1", rb)
	if err != nil {
		b.Fatal(err)
	}
	n.E.RunUntil(200 * time.Millisecond)
	return &table1Rig{n: n, hostA: hostA, hostB: hostB, ra: ra, rb: rb}
}

// measureTable1 runs frames of the given mbuf count across the full
// host-to-host path once and returns the per-component charges at the
// sending host, the switching router, and the receiving host.
func measureTable1(b testing.TB, mbufs int) (send, router, recv cost.Snapshot) {
	r := newTable1Rig(b)
	vc, err := r.n.Fabric.SetupVC("mh.rt", "ucb.rt", qos.BestEffortQoS)
	if err != nil {
		b.Fatal(err)
	}
	r.ra.Sig.SH.AllowPVC(vc.SrcVCI)
	r.rb.Sig.SH.AllowPVC(vc.DstVCI)
	payload := make([]byte, mbufs*mbuf.MLEN-16) // mbufs small buffers after the header prepend
	var sendSnap, routerSnap, recvSnap cost.Snapshot
	r.hostB.Stack.Spawn("sink", func(p *kern.Proc) {
		sock, _ := r.hostB.Stack.PF.Socket(p)
		if err := sock.Bind(vc.DstVCI, 0); err != nil {
			return
		}
		// Let the anand client's bind-indication relay (and its
		// transport ack) clear the host's meter window before
		// measuring the data path.
		p.SP.Sleep(30 * time.Millisecond)
		before := r.hostB.Stack.M.Meter.Snapshot()
		if _, err := sock.RecvChain(); err != nil {
			return
		}
		recvSnap = r.hostB.Stack.M.Meter.Snapshot().Sub(before)
	})
	r.hostA.Stack.Spawn("source", func(p *kern.Proc) {
		sock, _ := r.hostA.Stack.PF.Socket(p)
		if err := sock.Connect(vc.SrcVCI, 0); err != nil {
			return
		}
		p.SP.Sleep(50 * time.Millisecond)
		chain := mbuf.FromBytesSplit(payload, mbuf.MLEN)
		beforeH := r.hostA.Stack.M.Meter.Snapshot()
		beforeR := r.ra.Stack.M.Meter.Snapshot()
		_ = sock.SendChain(chain)
		sendSnap = r.hostA.Stack.M.Meter.Snapshot().Sub(beforeH)
		p.SP.Sleep(100 * time.Millisecond)
		routerSnap = r.ra.Stack.M.Meter.Snapshot().Sub(beforeR)
		p.SP.Park()
	})
	r.n.E.RunUntil(r.n.E.Now() + time.Second)
	r.n.E.Shutdown()
	if sendSnap == nil || recvSnap == nil || routerSnap == nil {
		b.Fatal("Table 1 measurement did not complete")
	}
	return sendSnap, routerSnap, recvSnap
}

// TestTable1_Regenerate prints Table 1 and asserts the paper's formulas
// hold exactly for every mbuf count.
func TestTable1_Regenerate(t *testing.T) {
	fmt.Println("Table 1: instruction counts for the send and receive paths at a host")
	fmt.Printf("%8s | %28s | %28s | %8s\n", "mbufs", "send (PF/Orc/ATM/IP = total)", "recv (PF/Orc/ATM/IP = total)", "router")
	for _, m := range []int{1, 2, 4, 8} {
		send, router, recv := measureTable1(t, m)
		// Paper: send total = 119 + 8*mbufs; the per-mbuf term is
		// charged by IPPROTO_ATM's length walk.
		wantSend := int64(119 + cost.PerMbuf*m)
		if got := send.Total(); got != wantSend {
			t.Errorf("mbufs=%d: send total = %d, want %d (%v)", m, got, wantSend, send)
		}
		if send[cost.PFXunet] != 0 || send[cost.OrcDriver] != 0 {
			t.Errorf("mbufs=%d: PF_XUNET/Orc send costs nonzero: %v", m, send)
		}
		if send[cost.ProtoATM] != int64(58+cost.PerMbuf*m) {
			t.Errorf("mbufs=%d: IPPROTO_ATM send = %d", m, send[cost.ProtoATM])
		}
		if send[cost.IP] != 61 {
			t.Errorf("mbufs=%d: IP send = %d", m, send[cost.IP])
		}
		// Receive total = 194 + 8*mbufs-at-receiver. The receive chain
		// is rebuilt by the driver with its own mbuf allocation policy,
		// so count the per-mbuf term from what PF_XUNET actually walked.
		recvMbufs := int(recv[cost.PFXunet]-cost.PFXunetRecvFixed) / cost.PerMbuf
		wantRecv := int64(194 + cost.PerMbuf*recvMbufs)
		if got := recv.Total(); got != wantRecv {
			t.Errorf("mbufs=%d: recv total = %d, want %d (%v)", m, got, wantRecv, recv)
		}
		if recv[cost.ProtoATM] != 36 || recv[cost.OrcDriver] != 2 || recv[cost.IP] != 57 {
			t.Errorf("mbufs=%d: recv breakdown wrong: %v", m, recv)
		}
		// Router: +39 IPPROTO_ATM instructions for switching the
		// encapsulated packet (§9).
		if router[cost.ProtoATM] != cost.RouterSwitchTotal {
			t.Errorf("mbufs=%d: router switching = %d, want 39", m, router[cost.ProtoATM])
		}
		fmt.Printf("%8d | %4d/%d/%d/%d = %d | %4d/%d/%d/%d = %d | %8d\n",
			m,
			send[cost.PFXunet], send[cost.OrcDriver], send[cost.ProtoATM], send[cost.IP], send.Total(),
			recv[cost.PFXunet], recv[cost.OrcDriver], recv[cost.ProtoATM], recv[cost.IP], recv.Total(),
			router[cost.ProtoATM])
	}
	fmt.Println("paper:    send 119+8m, recv 194+8m, router +39")
}

func benchTable1(b *testing.B, mbufs int, side func(send, router, recv cost.Snapshot) int64) {
	b.ReportAllocs()
	var instr int64
	for i := 0; i < b.N; i++ {
		send, router, recv := measureTable1(b, mbufs)
		instr = side(send, router, recv)
	}
	b.ReportMetric(float64(instr), "instr/op")
}

func BenchmarkTable1_HostSend(b *testing.B) {
	for _, m := range []int{1, 4, 8} {
		b.Run(fmt.Sprintf("mbufs-%d", m), func(b *testing.B) {
			benchTable1(b, m, func(s, _, _ cost.Snapshot) int64 { return s.Total() })
		})
	}
}

func BenchmarkTable1_HostRecv(b *testing.B) {
	for _, m := range []int{1, 4, 8} {
		b.Run(fmt.Sprintf("mbufs-%d", m), func(b *testing.B) {
			benchTable1(b, m, func(_, _, r cost.Snapshot) int64 { return r.Total() })
		})
	}
}

func BenchmarkTable1_RouterSwitch(b *testing.B) {
	benchTable1(b, 4, func(_, r, _ cost.Snapshot) int64 { return r[cost.ProtoATM] })
}

// ---------------------------------------------------------------------------
// Table 2: code sizes.
// ---------------------------------------------------------------------------

func BenchmarkTable2_CodeSize(b *testing.B) {
	var total int
	for i := 0; i < b.N; i++ {
		rows, err := codesize.Measure()
		if err != nil {
			b.Fatal(err)
		}
		total = 0
		for _, r := range rows {
			total += r.GoLines
		}
	}
	b.ReportMetric(float64(total), "go-lines")
}

// ---------------------------------------------------------------------------
// E1/E2: service registration and call acceptance latency (§9: 17–20 ms
// and ≈20 ms, dominated by four context switches).
// ---------------------------------------------------------------------------

func BenchmarkE1_RegisterService(b *testing.B) {
	var total time.Duration
	count := 0
	for i := 0; i < b.N; i++ {
		n, ra, _, err := testbed.NewTestbed(testbed.Options{})
		if err != nil {
			b.Fatal(err)
		}
		ra.Stack.Spawn("server", func(p *kern.Proc) {
			for j := 0; j < 10; j++ {
				start := p.SP.Now()
				if err := ra.Lib.ExportService(p, fmt.Sprintf("svc-%d", j), uint16(6000+j)); err != nil {
					b.Error(err)
					return
				}
				total += p.SP.Now() - start
				count++
			}
		})
		n.E.RunUntil(10 * time.Second)
		n.E.Shutdown()
	}
	b.ReportMetric(float64(total.Milliseconds())/float64(count), "vms/op")
}

func BenchmarkE2_AcceptCall(b *testing.B) {
	var total time.Duration
	count := 0
	for i := 0; i < b.N; i++ {
		n, ra, rb, err := testbed.NewTestbed(testbed.Options{})
		if err != nil {
			b.Fatal(err)
		}
		rb.Stack.Spawn("server", func(p *kern.Proc) {
			if err := rb.Lib.ExportService(p, "echo", 6000); err != nil {
				return
			}
			kl, _ := rb.Lib.CreateReceiveConnection(p, 6000)
			for {
				req, err := rb.Lib.AwaitServiceRequest(p, kl)
				if err != nil {
					return
				}
				start := p.SP.Now()
				if _, _, err := req.Accept(req.QoS); err != nil {
					return
				}
				total += p.SP.Now() - start
				count++
			}
		})
		ra.Stack.Spawn("clients", func(p *kern.Proc) {
			p.SP.Sleep(100 * time.Millisecond)
			for j := 0; j < 5; j++ {
				if _, err := ra.Lib.OpenConnection(p, "ucb.rt", "echo", uint16(7000+j), "", ""); err != nil {
					return
				}
			}
		})
		n.E.RunUntil(time.Minute)
		n.E.Shutdown()
	}
	if count == 0 {
		b.Fatal("no accepts measured")
	}
	b.ReportMetric(float64(total.Milliseconds())/float64(count), "vms/op")
}

// ---------------------------------------------------------------------------
// E3: router-to-router call establishment (§9: ≈330 ms, dominated by
// per-call maintenance logging), with the no-logging ablation.
// ---------------------------------------------------------------------------

func benchCallSetup(b *testing.B, disableLogging bool) {
	var total time.Duration
	count := 0
	for i := 0; i < b.N; i++ {
		n, ra, rb, err := testbed.NewTestbed(testbed.Options{DisableCallLogging: disableLogging})
		if err != nil {
			b.Fatal(err)
		}
		testbed.StartEchoServer(rb, "echo", 6000)
		n.E.RunUntil(time.Second)
		res := testbed.CallStorm(ra, "ucb.rt", "echo", testbed.StormConfig{
			Count: 5, Hold: 100 * time.Millisecond, Stagger: 2 * time.Second,
		})
		n.E.RunUntil(n.E.Now() + 30*time.Second)
		for _, r := range res.Results {
			if r.OK {
				total += r.SetupTime
				count++
			}
		}
		n.E.Shutdown()
	}
	if count == 0 {
		b.Fatal("no calls measured")
	}
	b.ReportMetric(float64(total.Milliseconds())/float64(count), "vms/op")
}

func BenchmarkE3_CallSetup(b *testing.B)          { benchCallSetup(b, false) }
func BenchmarkE3_CallSetupNoLogging(b *testing.B) { benchCallSetup(b, true) }

// ---------------------------------------------------------------------------
// E4: the hundred-call robustness storm of §10.
// ---------------------------------------------------------------------------

func BenchmarkE4_CallStorm(b *testing.B) {
	ok := 0
	for i := 0; i < b.N; i++ {
		n, ra, rb, err := testbed.NewTestbed(testbed.Options{
			DeviceBuffers: kern.FixedDeviceBuffers,
			FDTableSize:   kern.FixedFDTableSize,
		})
		if err != nil {
			b.Fatal(err)
		}
		testbed.StartEchoServer(rb, "storm", 6000)
		n.E.RunUntil(time.Second)
		res := testbed.CallStorm(ra, "ucb.rt", "storm", testbed.StormConfig{
			Count: 100, Hold: time.Second, FramesPerCall: 1,
		})
		n.E.RunUntil(n.E.Now() + 4*n.CM.BindTimeout)
		ok = res.Succeeded
		for _, r := range []*testbed.Router{ra, rb} {
			if msg := testbed.Quiesced(r); msg != "" {
				b.Fatal(msg)
			}
		}
		n.E.Shutdown()
	}
	b.ReportMetric(float64(ok), "calls-ok")
}

// ---------------------------------------------------------------------------
// E5: the §10 scaling sweeps — pseudo-device buffers and fd tables.
// ---------------------------------------------------------------------------

func BenchmarkE5_BufferSweep(b *testing.B) {
	for _, buffers := range []int{8, 20, 40, 80} {
		b.Run(fmt.Sprintf("buffers-%d", buffers), func(b *testing.B) {
			var lost uint64
			for i := 0; i < b.N; i++ {
				n, ra, rb, err := testbed.NewTestbed(testbed.Options{
					DeviceBuffers: buffers, FDTableSize: kern.FixedFDTableSize,
				})
				if err != nil {
					b.Fatal(err)
				}
				testbed.StartEchoServer(rb, "storm", 6000)
				n.E.RunUntil(time.Second)
				testbed.CallStorm(ra, "ucb.rt", "storm", testbed.StormConfig{Count: 100, Hold: time.Second})
				n.E.RunUntil(n.E.Now() + 4*n.CM.BindTimeout)
				lost = ra.Stack.M.Dev.Lost + rb.Stack.M.Dev.Lost
				n.E.Shutdown()
			}
			b.ReportMetric(float64(lost), "dev-lost")
		})
	}
}

func BenchmarkE5_FDSweep(b *testing.B) {
	for _, fd := range []int{20, 40, 100} {
		b.Run(fmt.Sprintf("fdsize-%d", fd), func(b *testing.B) {
			var maxSetup time.Duration
			var failed int
			for i := 0; i < b.N; i++ {
				n, ra, rb, err := testbed.NewTestbed(testbed.Options{
					DeviceBuffers: kern.FixedDeviceBuffers, FDTableSize: fd,
				})
				if err != nil {
					b.Fatal(err)
				}
				testbed.StartEchoServer(rb, "storm", 6000)
				n.E.RunUntil(time.Second)
				res := testbed.CallStorm(ra, "ucb.rt", "storm", testbed.StormConfig{Count: 60, Hold: time.Second})
				n.E.RunUntil(n.E.Now() + 8*n.CM.BindTimeout)
				maxSetup, failed = res.MaxSetup, res.Failed
				n.E.Shutdown()
			}
			b.ReportMetric(float64(maxSetup.Milliseconds()), "max-setup-vms")
			b.ReportMetric(float64(failed), "failed")
		})
	}
}

// ---------------------------------------------------------------------------
// E6: encapsulation throughput, host to router, vs the UDP baseline
// (§9: "we expect throughput between a host and a router to be
// comparable to that of UDP").
// ---------------------------------------------------------------------------

func BenchmarkE6_EncapVsUDP(b *testing.B) {
	const frames, size = 400, 1400
	b.Run("proto-atm", func(b *testing.B) {
		var bps float64
		var instr int64
		for i := 0; i < b.N; i++ {
			n, ra, _, err := testbed.NewTestbed(testbed.Options{})
			if err != nil {
				b.Fatal(err)
			}
			host, err := n.AddHost("mh.h1", ra)
			if err != nil {
				b.Fatal(err)
			}
			n.E.RunUntil(100 * time.Millisecond)
			before := host.Stack.M.Meter.Snapshot()
			res, err := testbed.RunCarrierTransfer(n, host, frames, size, 100*time.Microsecond)
			if err != nil {
				b.Fatal(err)
			}
			if res.Delivered != frames {
				b.Fatalf("delivered %d", res.Delivered)
			}
			bps = res.ThroughputBps(size)
			d := host.Stack.M.Meter.Snapshot().Sub(before)
			instr = d.Total() / frames
			n.E.Shutdown()
		}
		b.ReportMetric(bps/1e6, "vMbps")
		b.ReportMetric(float64(instr), "instr/frame")
	})
	b.Run("udp-baseline", func(b *testing.B) {
		var bps float64
		for i := 0; i < b.N; i++ {
			e := sim.New(1)
			net := memnet.New(e)
			h := net.MustAddNode("h", memnet.IP4(10, 0, 0, 10))
			r := net.MustAddNode("r", memnet.IP4(10, 0, 0, 1))
			net.Connect(h, r, memnet.FDDI())
			h.SetDefaultRoute(r)
			r.AddRoute(h.Addr, h)
			var got int
			var first, last time.Duration
			_ = r.BindDatagram(9000, func(memnet.IPAddr, uint16, []byte) {
				got++
				last = e.Now()
			})
			e.Go("source", func(p *sim.Proc) {
				first = p.Now()
				payload := make([]byte, size)
				for j := 0; j < frames; j++ {
					_ = h.SendDatagram(r.Addr, 9000, 1234, payload)
					p.Sleep(100 * time.Microsecond)
				}
			})
			e.RunUntil(time.Minute)
			if got != frames {
				b.Fatalf("delivered %d", got)
			}
			bps = float64(got) * size * 8 / (last - first).Seconds()
			e.Shutdown()
		}
		b.ReportMetric(bps/1e6, "vMbps")
	})
}

// ---------------------------------------------------------------------------
// X1: the §5.1 ablation — user-space signaling costs four context
// switches per RPC; an in-kernel entity would cost two.
// ---------------------------------------------------------------------------

func BenchmarkX1_UserVsKernelSignaling(b *testing.B) {
	for _, mode := range []struct {
		name     string
		switches int
	}{{"user-space-4sw", 4}, {"in-kernel-2sw", 2}} {
		b.Run(mode.name, func(b *testing.B) {
			var rpc time.Duration
			for i := 0; i < b.N; i++ {
				n, ra, _, err := testbed.NewTestbed(testbed.Options{})
				if err != nil {
					b.Fatal(err)
				}
				// The RPC cost model: N context switches plus the
				// (sub-millisecond) protocol work, measured end to end
				// with the library's switch count patched by running
				// the kernel-mode exchanges out-of-band.
				ra.Stack.Spawn("app", func(p *kern.Proc) {
					start := p.SP.Now()
					if mode.switches == 4 {
						if err := ra.Lib.ExportService(p, "svc", 6000); err != nil {
							b.Error(err)
						}
					} else {
						// In-kernel ablation: the same exchange with
						// the two user-library switches elided (the
						// kernel hands the message to the entity
						// directly).
						p.ContextSwitches(2)
						p.SP.Sleep(time.Millisecond) // protocol work
					}
					rpc = p.SP.Now() - start
				})
				n.E.RunUntil(10 * time.Second)
				n.E.Shutdown()
			}
			b.ReportMetric(float64(rpc.Microseconds())/1000, "vms/op")
		})
	}
}

// ---------------------------------------------------------------------------
// X2: the §5.4 carrier ablation — raw IP vs UDP vs TCP encapsulation.
// ---------------------------------------------------------------------------

func BenchmarkX2_CarrierChoice(b *testing.B) {
	const frames, size = 300, 1400
	run := func(b *testing.B, carrier testbed.Carrier, loss float64) (float64, uint64) {
		n, ra, _, err := testbed.NewTestbed(testbed.Options{})
		if err != nil {
			b.Fatal(err)
		}
		host, err := n.AddHost("mh.h1", ra)
		if err != nil {
			b.Fatal(err)
		}
		n.E.RunUntil(100 * time.Millisecond)
		switch carrier {
		case testbed.CarrierUDP:
			if _, err := testbed.UseUDPCarrier(host); err != nil {
				b.Fatal(err)
			}
		case testbed.CarrierTCP:
			if _, err := testbed.UseTCPCarrier(host); err != nil {
				b.Fatal(err)
			}
		}
		if loss > 0 {
			host.Stack.M.IP.LinkTo(ra.Stack.M.IP).SetLoss(loss)
		}
		res, err := testbed.RunCarrierTransfer(n, host, frames, size, 100*time.Microsecond)
		if err != nil {
			b.Fatal(err)
		}
		n.E.Shutdown()
		return res.ThroughputBps(size), res.Delivered
	}
	for _, c := range []testbed.Carrier{testbed.CarrierRawIP, testbed.CarrierUDP, testbed.CarrierTCP} {
		for _, loss := range []float64{0, 0.05} {
			b.Run(fmt.Sprintf("%v/loss-%.0f%%", c, loss*100), func(b *testing.B) {
				var bps float64
				var delivered uint64
				for i := 0; i < b.N; i++ {
					bps, delivered = run(b, c, loss)
				}
				b.ReportMetric(bps/1e6, "vMbps")
				b.ReportMetric(float64(delivered), "delivered")
			})
		}
	}
}

// ---------------------------------------------------------------------------
// X3: QoS admission control — CBR circuits admitted until the DS3 trunk
// is full.
// ---------------------------------------------------------------------------

func BenchmarkX3_Admission(b *testing.B) {
	admitted := 0
	for i := 0; i < b.N; i++ {
		n, ra, rb, err := testbed.NewTestbed(testbed.Options{FDTableSize: kern.FixedFDTableSize})
		if err != nil {
			b.Fatal(err)
		}
		srv := testbed.StartEchoServer(rb, "cbr", 6000)
		srv.ModifyQoS = "" // grant what is asked
		n.E.RunUntil(time.Second)
		res := testbed.CallStorm(ra, "ucb.rt", "cbr", testbed.StormConfig{
			Count: 10, Hold: 5 * time.Minute, QoS: "cbr:8000", Stagger: time.Second,
		})
		n.E.RunUntil(2 * time.Minute)
		admitted = n.Fabric.ActiveVCs() - 2
		_ = res
		n.E.Shutdown()
	}
	// 45 Mb/s DS3 admits five 8 Mb/s circuits (40 Mb/s + the PVCs).
	b.ReportMetric(float64(admitted), "admitted")
}

// ---------------------------------------------------------------------------
// Guard: the virtual latencies stay inside the paper's bands (also
// asserted in the signaling tests; repeated here so `go test .` at the
// root checks the headline numbers).
// ---------------------------------------------------------------------------

func TestHeadlineLatencyBands(t *testing.T) {
	n, ra, rb, err := testbed.NewTestbed(testbed.Options{})
	if err != nil {
		t.Fatal(err)
	}
	testbed.StartEchoServer(rb, "echo", 6000)
	var reg time.Duration
	var res *ulibConn
	ra.Stack.Spawn("client", func(p *kern.Proc) {
		start := p.SP.Now()
		if err := ra.Lib.ExportService(p, "self", 6500); err != nil {
			t.Error(err)
			return
		}
		reg = p.SP.Now() - start
		p.SP.Sleep(100 * time.Millisecond)
		start = p.SP.Now()
		conn, err := ra.Lib.OpenConnection(p, "ucb.rt", "echo", 7000, "", "")
		if err != nil {
			t.Error(err)
			return
		}
		res = &ulibConn{conn: conn, setup: p.SP.Now() - start}
	})
	n.E.RunUntil(time.Minute)
	if reg < 17*time.Millisecond || reg > 25*time.Millisecond {
		t.Errorf("registration %v outside the 17-20 ms band", reg)
	}
	if res == nil {
		t.Fatal("call did not establish")
	}
	if res.setup < 300*time.Millisecond || res.setup > 420*time.Millisecond {
		t.Errorf("call setup %v not ≈330 ms", res.setup)
	}
	n.E.Shutdown()
}

type ulibConn struct {
	conn  *ulib.Connection
	setup time.Duration
}
