// IPHost: the "ATM Everywhere" migration path of §5.4 and §7.4 — hosts
// with no ATM hardware reach services on the Xunet WAN by sending
// unsegmented AAL frames encapsulated in IP packets to their router.
//
// A client on an IP-only workstation behind mh.rt calls a server on an
// IP-only workstation behind ucb.rt. The example shows every piece of
// the machinery working:
//
//   - the anand client/server pair relaying the hosts' kernel
//     indications to the routers' signaling entities,
//
//   - the VCI_BIND that points the remote router's per-VCI handler at
//     the IPPROTO_ATM re-encapsulation routine with the host's address,
//
//   - sequence-number detection of reordering injected on the client's
//     FDDI segment, and
//
//   - the VCI_SHUT cleanup when the circuit closes.
//
//     go run ./examples/iphost
package main

import (
	"fmt"
	"time"

	"xunet/internal/kern"
	"xunet/internal/testbed"
)

func main() {
	fmt.Println("=== AAL frames over IP: hosts without ATM hardware ===")
	n, ra, rb, err := testbed.NewTestbed(testbed.Options{})
	if err != nil {
		panic(err)
	}
	hostA, err := n.AddHost("mh.pc1", ra)
	if err != nil {
		panic(err)
	}
	hostB, err := n.AddHost("ucb.pc7", rb)
	if err != nil {
		panic(err)
	}
	fmt.Printf("hosts: %s (%v) behind mh.rt, %s (%v) behind ucb.rt\n",
		hostA.Stack.Addr, hostA.Stack.M.IP.Addr, hostB.Stack.Addr, hostB.Stack.M.IP.Addr)

	// Inject reordering on the client's FDDI segment so the
	// encapsulation header's sequence numbers have something to detect.
	hostA.Stack.M.IP.LinkTo(ra.Stack.M.IP).SetReorder(0.25, 8*time.Millisecond)

	// Server on the IP-only host behind ucb.rt.
	hostB.Stack.Spawn("server", func(p *kern.Proc) {
		lib := hostB.Lib
		if err := lib.ExportService(p, "sensor-log", 6000); err != nil {
			fmt.Println("server: export:", err)
			return
		}
		kl, _ := lib.CreateReceiveConnection(p, 6000)
		req, err := lib.AwaitServiceRequest(p, kl)
		if err != nil {
			return
		}
		vci, _, err := req.Accept(req.QoS)
		if err != nil {
			return
		}
		fmt.Printf("server: bound %v on an IP-only host (VCI_BIND installed at ucb.rt)\n", vci)
		sock, _ := hostB.Stack.PF.Socket(p)
		if err := sock.Bind(vci, req.Cookie); err != nil {
			return
		}
		count := 0
		for {
			msg, err := sock.Recv()
			if err != nil {
				fmt.Printf("server: circuit closed after %d readings\n", count)
				return
			}
			count++
			if count <= 3 || count%20 == 0 {
				fmt.Printf("server: reading %d: %q\n", count, msg)
			}
		}
	})

	// Client on the IP-only host behind mh.rt.
	hostA.Stack.Spawn("client", func(p *kern.Proc) {
		p.SP.Sleep(300 * time.Millisecond)
		lib := hostA.Lib
		conn, err := lib.OpenConnection(p, "ucb.rt", "sensor-log", 7000, "from an IP host", "vbr:256")
		if err != nil {
			fmt.Println("client: open:", err)
			return
		}
		fmt.Printf("client: circuit %v established from an IP-only host (qos %q)\n", conn.VCI, conn.QoS)
		sock, _ := hostA.Stack.PF.Socket(p)
		if err := sock.Connect(conn.VCI, conn.Cookie); err != nil {
			return
		}
		p.SP.Sleep(150 * time.Millisecond)
		for i := 1; i <= 60; i++ {
			_ = sock.Send([]byte(fmt.Sprintf("temp=%d.%d", 20+i%5, i%10)))
			p.SP.Sleep(2 * time.Millisecond)
		}
		p.SP.Sleep(300 * time.Millisecond)
		sock.Close()
	})

	n.E.RunUntil(30 * time.Second)

	fmt.Println()
	fmt.Println("--- encapsulation path statistics ---")
	fmt.Printf("hostA  encapsulated %d frames (Orc output -> IPPROTO_ATM -> IP)\n", hostA.Stack.ATM.Encapsulated)
	fmt.Printf("mh.rt  switched %d encapsulated packets into the ATM fabric (+39 instr each)\n", ra.Stack.ATM.Switched)
	fmt.Printf("mh.rt  detected %d out-of-order packets by sequence number\n", ra.Stack.ATM.OutOfOrder)
	fmt.Printf("ucb.rt re-encapsulated %d frames toward %s\n", rb.Stack.ATM.ReEncapsulated, hostB.Stack.Addr)
	fmt.Printf("hostB  decapsulated %d frames\n", hostB.Stack.ATM.Decapsulated)
	fmt.Printf("anand: %d relayed up at mh.rt, %d VCI_BINDs / %d VCI_SHUTs at ucb.rt\n",
		ra.Sig.Anand.Relayed, rb.Sig.Anand.Binds, rb.Sig.Anand.Shuts)
	sent, dropped := n.Fabric.TrunkStats()
	fmt.Printf("fabric: %d cells, %d dropped\n", sent, dropped)
	if rb.Stack.ATM.Bound(0) {
		fmt.Println("unexpected lingering binding")
	}
	n.E.Shutdown()
}
