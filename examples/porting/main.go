// Porting: the paper's headline usability claim — "Our design makes it
// simple to port existing TCP/IP socket applications to a native-mode
// ATM protocol stack" (§1), with the port "quite straightforward"
// thanks to the user library and Berkeley socket compatibility (§12).
//
// This example runs the *same* application logic — a key-value lookup
// service — twice:
//
//  1. the original, written against TCP sockets (listen/dial/send/recv);
//
//  2. the port, written against PF_XUNET with the user library: three
//     extra calls on the server (export_service,
//     await_service_request, accept_connection), one on the client
//     (open_connection), and bind/connect take a VCI instead of an
//     address — but the application's request/response logic is
//     untouched, and the ported version gets a QoS-parameterized
//     virtual circuit for its trouble.
//
//     go run ./examples/porting
package main

import (
	"fmt"
	"strings"
	"time"

	"xunet/internal/kern"
	"xunet/internal/memnet"
	"xunet/internal/testbed"
)

var table = map[string]string{
	"mh.rt":  "Murray Hill router, AT&T Bell Laboratories",
	"ucb.rt": "University of California at Berkeley router",
	"hobbit": "the flexible ATM host interface of reference [2]",
}

// lookup is the shared application logic: parse a request, produce a
// response. Identical in both versions.
func lookup(req []byte) []byte {
	key := strings.TrimSpace(string(req))
	if v, ok := table[key]; ok {
		return []byte(v)
	}
	return []byte("? unknown key " + key)
}

func main() {
	n, ra, rb, err := testbed.NewTestbed(testbed.Options{})
	if err != nil {
		panic(err)
	}
	// The TCP version needs an IP path between the two sites (the ATM
	// testbed only links them at the cell layer); give it one.
	n.IPNet.Connect(ra.Stack.M.IP, rb.Stack.M.IP, memnet.FDDI())
	ra.Stack.M.IP.AddRoute(rb.Stack.M.IP.Addr, rb.Stack.M.IP)
	rb.Stack.M.IP.AddRoute(ra.Stack.M.IP.Addr, ra.Stack.M.IP)
	queries := []string{"mh.rt", "hobbit", "nope"}

	// ------------------------------------------------------------------
	// Version 1: classic TCP sockets (the memnet stream service plays
	// the TCP role, exactly as it does for the signaling IPC).
	// ------------------------------------------------------------------
	fmt.Println("=== version 1: TCP sockets ===")
	rb.Stack.Spawn("kv-tcp-server", func(p *kern.Proc) {
		l, err := p.Listen(9000)
		if err != nil {
			return
		}
		for {
			conn, err := l.Accept()
			if err != nil {
				return
			}
			req, ok := conn.Recv()
			if ok {
				_ = conn.Send(lookup(req))
			}
			conn.Close()
		}
	})
	ra.Stack.Spawn("kv-tcp-client", func(p *kern.Proc) {
		p.SP.Sleep(50 * time.Millisecond)
		for _, q := range queries {
			conn, err := p.Dial(rb.Stack.M.IP.Addr, 9000)
			if err != nil {
				fmt.Println("client:", err)
				return
			}
			_ = conn.Send([]byte(q))
			resp, _ := conn.Recv()
			fmt.Printf("  %-8s -> %s\n", q, resp)
			conn.Close()
		}
	})
	n.E.RunUntil(2 * time.Second)

	// ------------------------------------------------------------------
	// Version 2: the PF_XUNET port. The lookup logic is byte-identical;
	// only the connection plumbing changes, and the circuit carries a
	// negotiated QoS.
	// ------------------------------------------------------------------
	fmt.Println("=== version 2: ported to native-mode ATM (PF_XUNET) ===")
	rb.Stack.Spawn("kv-atm-server", func(p *kern.Proc) {
		lib := rb.Lib
		if err := lib.ExportService(p, "kv", 6000); err != nil { // NEW: export_service
			return
		}
		kl, _ := lib.CreateReceiveConnection(p, 6000)
		for {
			req, err := lib.AwaitServiceRequest(p, kl) // NEW: await_service_request
			if err != nil {
				return
			}
			vci, _, err := req.Accept("vbr:64") // NEW: accept_connection (may modify QoS)
			if err != nil {
				continue
			}
			cookie := req.Cookie
			rb.Stack.Spawn("kv-atm-worker", func(w *kern.Proc) {
				in, _ := rb.Stack.PF.Socket(w)
				if err := in.Bind(vci, cookie); err != nil { // bind to a VCI, not an address
					return
				}
				query, err := in.Recv()
				if err != nil {
					return
				}
				// The reply needs a return circuit (Xunet circuits are
				// simplex); the client exported "kv-reply" for it.
				ret, err := lib.OpenConnection(w, "mh.rt", "kv-reply", nextPort(), "", "vbr:64")
				if err != nil {
					return
				}
				out, _ := rb.Stack.PF.Socket(w)
				if err := out.Connect(ret.VCI, ret.Cookie); err != nil {
					return
				}
				w.SP.Sleep(100 * time.Millisecond)
				_ = out.Send(lookup(query)) // application logic UNCHANGED
				w.SP.Sleep(200 * time.Millisecond)
				out.Close()
				in.Close()
			})
		}
	})
	ra.Stack.Spawn("kv-atm-client", func(p *kern.Proc) {
		lib := ra.Lib
		_ = lib.ExportService(p, "kv-reply", 6100)
		replyL, _ := lib.CreateReceiveConnection(p, 6100)
		p.SP.Sleep(200 * time.Millisecond)
		for _, q := range queries {
			conn, err := lib.OpenConnection(p, "ucb.rt", "kv", 7000, "", "vbr:64") // NEW: open_connection
			if err != nil {
				fmt.Println("client:", err)
				return
			}
			out, _ := ra.Stack.PF.Socket(p)
			if err := out.Connect(conn.VCI, conn.Cookie); err != nil {
				return
			}
			p.SP.Sleep(100 * time.Millisecond)
			_ = out.Send([]byte(q))
			rep, err := lib.AwaitServiceRequest(p, replyL)
			if err != nil {
				return
			}
			rvci, _, err := rep.Accept(rep.QoS)
			if err != nil {
				return
			}
			in, _ := ra.Stack.PF.Socket(p)
			if err := in.Bind(rvci, rep.Cookie); err != nil {
				return
			}
			resp, _ := in.Recv()
			fmt.Printf("  %-8s -> %s   (on %v, qos vbr:64)\n", q, resp, conn.VCI)
			p.SP.Sleep(100 * time.Millisecond)
			out.Close()
			in.Close()
		}
	})
	n.E.RunUntil(2 * time.Minute)
	fmt.Println()
	fmt.Println("same lookup() both times; the port added export/await/accept on the")
	fmt.Println("server and open_connection on the client — and gained per-circuit QoS.")
	n.E.Shutdown()
}

var port uint16 = 7600

func nextPort() uint16 {
	port++
	return port
}
