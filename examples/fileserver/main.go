// Fileserver: the motivating example of the paper's §3 — "a file
// server might advertise the name 'file-service' with the signaling
// entity on host with ATM address 'mh.rt'".
//
// Because Xunet circuits are simplex ("the client-to-server connection
// is simplex, so in our example, the server application would have to
// establish a return connection to actually return a file to the
// client"), this example exercises both directions: the client's
// request circuit carries the file name, the server then opens a
// *return* circuit — with a server-chosen CBR reservation negotiated
// down from the client's ask — and streams the file back in AAL frames.
//
//	go run ./examples/fileserver
package main

import (
	"fmt"
	"strings"
	"time"

	"xunet/internal/kern"
	"xunet/internal/testbed"
)

// The served "filesystem".
var files = map[string]string{
	"/etc/motd":    "Welcome to Xunet 2, the nationwide ATM testbed.\n",
	"/papers/sig":  strings.Repeat("Signaling and OS support for native-mode ATM applications. ", 40),
	"/video/intro": strings.Repeat("FRAME", 2000),
}

func main() {
	fmt.Println("=== file-service over native-mode ATM ===")
	n, ra, rb, err := testbed.NewTestbed(testbed.Options{})
	if err != nil {
		panic(err)
	}

	// ----- Server on ucb.rt -----
	rb.Stack.Spawn("file-server", func(p *kern.Proc) {
		lib := rb.Lib
		if err := lib.ExportService(p, "file-service", 6000); err != nil {
			fmt.Println("server: export:", err)
			return
		}
		// The client advertises its own return service so the server
		// can call back (the paper's return-connection pattern).
		kl, _ := lib.CreateReceiveConnection(p, 6000)
		for {
			req, err := lib.AwaitServiceRequest(p, kl)
			if err != nil {
				return
			}
			// Negotiate the request circuit down to best effort — file
			// requests are tiny.
			vci, _, err := req.Accept("besteffort:0")
			if err != nil {
				continue
			}
			cookie := req.Cookie
			rb.Stack.Spawn("file-worker", func(w *kern.Proc) {
				sock, _ := rb.Stack.PF.Socket(w)
				if err := sock.Bind(vci, cookie); err != nil {
					return
				}
				reqMsg, err := sock.Recv()
				if err != nil {
					return
				}
				name := string(reqMsg)
				body, ok := files[name]
				fmt.Printf("server: request for %q (%d bytes) at t=%v\n", name, len(body), w.SP.Now())
				if !ok {
					body = "ERROR: no such file"
				}
				// Open the return connection with a CBR reservation
				// sized to the transfer.
				ret, err := lib.OpenConnection(w, "mh.rt", "file-return", 6100, name, "cbr:2000")
				if err != nil {
					fmt.Println("server: return connection:", err)
					return
				}
				fmt.Printf("server: return circuit %v qos=%q\n", ret.VCI, ret.QoS)
				out, _ := rb.Stack.PF.Socket(w)
				if err := out.Connect(ret.VCI, ret.Cookie); err != nil {
					return
				}
				w.SP.Sleep(100 * time.Millisecond) // let the client bind
				const chunk = 8000
				sent := 0
				for off := 0; off < len(body); off += chunk {
					end := off + chunk
					if end > len(body) {
						end = len(body)
					}
					_ = out.Send([]byte(body[off:end]))
					sent++
					w.SP.Sleep(5 * time.Millisecond) // pace below line rate
				}
				_ = out.Send([]byte("EOF"))
				fmt.Printf("server: streamed %d chunks of %q\n", sent, name)
				w.SP.Sleep(200 * time.Millisecond)
				out.Close()
				sock.Close()
			})
		}
	})

	// ----- Client on mh.rt -----
	ra.Stack.Spawn("file-client", func(p *kern.Proc) {
		lib := ra.Lib
		// Advertise the return service first.
		if err := lib.ExportService(p, "file-return", 6100); err != nil {
			fmt.Println("client: export return:", err)
			return
		}
		retL, _ := lib.CreateReceiveConnection(p, 6100)
		p.SP.Sleep(200 * time.Millisecond)

		for _, name := range []string{"/etc/motd", "/video/intro", "/no/such/file"} {
			conn, err := lib.OpenConnection(p, "ucb.rt", "file-service", 7000, "file request", "vbr:64")
			if err != nil {
				fmt.Println("client: open:", err)
				return
			}
			out, _ := ra.Stack.PF.Socket(p)
			if err := out.Connect(conn.VCI, conn.Cookie); err != nil {
				return
			}
			p.SP.Sleep(100 * time.Millisecond)
			_ = out.Send([]byte(name))

			// Accept the server's return call and drain the file.
			ret, err := lib.AwaitServiceRequest(p, retL)
			if err != nil {
				fmt.Println("client: await return:", err)
				return
			}
			rvci, rqos, err := ret.Accept(ret.QoS)
			if err != nil {
				fmt.Println("client: accept return:", err)
				return
			}
			in, _ := ra.Stack.PF.Socket(p)
			if err := in.Bind(rvci, ret.Cookie); err != nil {
				return
			}
			var got []byte
			for {
				chunk, err := in.Recv()
				if err != nil || string(chunk) == "EOF" {
					break
				}
				got = append(got, chunk...)
			}
			fmt.Printf("client: %q -> %d bytes over %v (qos %q)\n", name, len(got), rvci, rqos)
			p.SP.Sleep(100 * time.Millisecond)
			out.Close()
			in.Close()
		}
		fmt.Println("client: all transfers complete at t =", p.SP.Now())
	})

	n.E.RunUntil(2 * time.Minute)
	sent, dropped := n.Fabric.TrunkStats()
	fmt.Printf("\nfabric: %d cells, %d dropped; open VCs at end: %d (2 signaling PVCs expected)\n",
		sent, dropped, n.Fabric.ActiveVCs())
	n.E.Shutdown()
}
