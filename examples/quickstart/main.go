// Quickstart: the paper's echo client and server (Figures 5 and 6)
// running on the reproduced §9 testbed — two routers across a three hop
// (two switch) ATM path.
//
// The server side follows Figure 5 exactly: export_service,
// create_receive_connection, await_service_request, accept_connection,
// then a PF_XUNET socket bound to the granted VCI. The client side
// follows Figure 6: open_connection, then a PF_XUNET socket connected
// to the VCI. Both message traces (the paper's Figures 3 and 4) are
// printed as the signaling entities process them.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"time"

	"xunet/internal/kern"
	"xunet/internal/testbed"
)

func main() {
	fmt.Println("=== Xunet native-mode ATM quickstart ===")
	fmt.Println("building the paper's testbed: mh.rt <-> sw-A <-> sw-B <-> ucb.rt")
	n, ra, rb, err := testbed.NewTestbed(testbed.Options{})
	if err != nil {
		panic(err)
	}
	ra.Sig.SH.Trace = func(l string) { fmt.Printf("  [mh.rt  sighost] %s\n", l) }
	rb.Sig.SH.Trace = func(l string) { fmt.Printf("  [ucb.rt sighost] %s\n", l) }

	// ----- Server (Figure 5) -----
	rb.Stack.Spawn("echo-server", func(p *kern.Proc) {
		lib := rb.Lib
		if err := lib.ExportService(p, "echo", 6000); err != nil {
			fmt.Println("server: export:", err)
			return
		}
		fmt.Printf("server: service %q registered at t=%v\n", "echo", p.SP.Now())
		kl, err := lib.CreateReceiveConnection(p, 6000)
		if err != nil {
			fmt.Println("server: listen:", err)
			return
		}
		req, err := lib.AwaitServiceRequest(p, kl)
		if err != nil {
			fmt.Println("server: await:", err)
			return
		}
		fmt.Printf("server: incoming call, comment=%q qos=%q cookie=%d\n", req.Comment, req.QoS, req.Cookie)
		vci, granted, err := req.Accept(req.QoS)
		if err != nil {
			fmt.Println("server: accept:", err)
			return
		}
		fmt.Printf("server: accepted on %v (qos %q) at t=%v\n", vci, granted, p.SP.Now())

		sock, err := rb.Stack.PF.Socket(p)
		if err != nil {
			fmt.Println("server: socket:", err)
			return
		}
		if err := sock.Bind(vci, req.Cookie); err != nil {
			fmt.Println("server: bind:", err)
			return
		}
		for {
			msg, err := sock.Recv()
			if err != nil {
				fmt.Printf("server: circuit closed (%v) at t=%v\n", err, p.SP.Now())
				return
			}
			fmt.Printf("server: received %q at t=%v\n", msg, p.SP.Now())
		}
	})

	// ----- Client (Figure 6) -----
	ra.Stack.Spawn("echo-client", func(p *kern.Proc) {
		p.SP.Sleep(100 * time.Millisecond) // let the server register
		lib := ra.Lib
		start := p.SP.Now()
		conn, err := lib.OpenConnection(p, "ucb.rt", "echo", 7000, "this is a comment", "vbr:128")
		if err != nil {
			fmt.Println("client: open:", err)
			return
		}
		fmt.Printf("client: connection on %v (qos %q) after %v — the paper measured ≈330 ms\n",
			conn.VCI, conn.QoS, p.SP.Now()-start)

		sock, err := ra.Stack.PF.Socket(p)
		if err != nil {
			fmt.Println("client: socket:", err)
			return
		}
		if err := sock.Connect(conn.VCI, conn.Cookie); err != nil {
			fmt.Println("client: connect:", err)
			return
		}
		p.SP.Sleep(100 * time.Millisecond) // let the server bind
		for i := 1; i <= 3; i++ {
			if err := sock.Send([]byte(fmt.Sprintf("hello over ATM #%d", i))); err != nil {
				fmt.Println("client: send:", err)
				return
			}
		}
		p.SP.Sleep(200 * time.Millisecond) // drain in-flight cells
		sock.Close()
		fmt.Printf("client: done at t=%v\n", p.SP.Now())
	})

	n.E.RunUntil(10 * time.Second)
	sent, dropped := n.Fabric.TrunkStats()
	fmt.Printf("\nfabric: %d cells switched, %d dropped\n", sent, dropped)
	fmt.Printf("mh.rt  sighost stats: %+v\n", ra.Sig.SH.Stats())
	fmt.Printf("ucb.rt sighost stats: %+v\n", rb.Sig.SH.Stats())
	if msg := testbed.Quiesced(ra); msg != "" {
		fmt.Println("LEAK:", msg)
	} else {
		fmt.Println("all signaling state drained cleanly")
	}
	n.E.Shutdown()
}
