// Video: continuous-media streams over the nationwide Xunet 2 map —
// the multimedia workload the paper's introduction motivates ("quite a
// bit of the traffic over Xunet II is generated from IP-multicast based
// multimedia applications") and the QoS machinery of references [17]
// and [18].
//
// A video server at Murray Hill serves CBR streams. Clients at Berkeley
// keep requesting 10 Mb/s streams until the DS3 hop saturates and
// admission control starts rejecting calls. A best-effort bulk transfer
// shares the same trunk; the per-class weighted-round-robin scheduler
// keeps the admitted CBR streams' cell loss at zero while the
// best-effort class absorbs the congestion.
//
//	go run ./examples/video
package main

import (
	"fmt"
	"time"

	"xunet/internal/kern"
	"xunet/internal/testbed"
	"xunet/internal/xswitch"
)

const streamRate = "cbr:10000" // 10 Mb/s per video stream

func main() {
	fmt.Println("=== CBR video with admission control over Xunet 2 ===")
	n, routers, err := testbed.NewXunet(testbed.Options{})
	if err != nil {
		panic(err)
	}
	mh := routers[xswitch.MurrayHill]
	ucb := routers[xswitch.Berkeley]

	// Video server at Murray Hill: accepts stream requests and pumps
	// frames for two seconds each.
	mh.Stack.Spawn("video-server", func(p *kern.Proc) {
		lib := mh.Lib
		if err := lib.ExportService(p, "video", 6000); err != nil {
			return
		}
		kl, _ := lib.CreateReceiveConnection(p, 6000)
		for {
			req, err := lib.AwaitServiceRequest(p, kl)
			if err != nil {
				return
			}
			// The client asked for a stream *from* us: accept the
			// (request) circuit at best effort and call back with CBR.
			vci, _, err := req.Accept("besteffort:0")
			if err != nil {
				continue
			}
			cookie := req.Cookie
			comment := req.Comment // carries the client's return service name
			mh.Stack.Spawn("video-pump", func(w *kern.Proc) {
				ctrl, _ := mh.Stack.PF.Socket(w)
				if err := ctrl.Bind(vci, cookie); err != nil {
					return
				}
				ret, err := lib.OpenConnection(w, "ucb.rt", comment, nextPort(), "video stream", streamRate)
				if err != nil {
					fmt.Printf("server: stream rejected: %v\n", err)
					ctrl.Close()
					return
				}
				fmt.Printf("server: streaming at %q on %v\n", ret.QoS, ret.VCI)
				out, _ := mh.Stack.PF.Socket(w)
				if err := out.Connect(ret.VCI, ret.Cookie); err != nil {
					return
				}
				w.SP.Sleep(150 * time.Millisecond)
				// 2 s of 10 Mb/s video in 10 kB frames (209 cells each).
				for i := 0; i < 250; i++ {
					_ = out.Send(make([]byte, 10000))
					w.SP.Sleep(8 * time.Millisecond)
				}
				w.SP.Sleep(200 * time.Millisecond)
				out.Close()
				ctrl.Close()
			})
		}
	})

	// Best-effort cross-traffic on the same MH–Illinois–Berkeley path.
	var crossSent int
	mh.Stack.Spawn("bulk-server", func(p *kern.Proc) {
		lib := mh.Lib
		_ = lib.ExportService(p, "bulk", 6001)
		kl, _ := lib.CreateReceiveConnection(p, 6001)
		req, err := lib.AwaitServiceRequest(p, kl)
		if err != nil {
			return
		}
		vci, _, err := req.Accept("besteffort:0")
		if err != nil {
			return
		}
		sock, _ := mh.Stack.PF.Socket(p)
		_ = sock.Bind(vci, req.Cookie)
		for {
			if _, err := sock.Recv(); err != nil {
				return
			}
		}
	})
	ucb.Stack.Spawn("bulk-client", func(p *kern.Proc) {
		p.SP.Sleep(500 * time.Millisecond)
		conn, err := ucb.Lib.OpenConnection(p, "mh.rt", "bulk", 7500, "", "")
		if err != nil {
			return
		}
		sock, _ := ucb.Stack.PF.Socket(p)
		if err := sock.Connect(conn.VCI, conn.Cookie); err != nil {
			return
		}
		p.SP.Sleep(150 * time.Millisecond)
		// Offer ~40 Mb/s of best-effort load for 3 seconds: it must
		// yield to the CBR class on the 45 Mb/s DS3.
		for i := 0; i < 600; i++ {
			_ = sock.Send(make([]byte, 25000))
			crossSent++
			p.SP.Sleep(5 * time.Millisecond)
		}
		p.SP.Sleep(300 * time.Millisecond)
		sock.Close()
	})

	// Berkeley clients request streams until admission says no.
	for i := 0; i < 6; i++ {
		i := i
		ucb.Stack.Spawn("viewer", func(p *kern.Proc) {
			p.SP.Sleep(time.Duration(i)*400*time.Millisecond + 600*time.Millisecond)
			lib := ucb.Lib
			retSvc := fmt.Sprintf("view-%d", i)
			if err := lib.ExportService(p, retSvc, uint16(6100+i)); err != nil {
				return
			}
			retL, _ := lib.CreateReceiveConnection(p, uint16(6100+i))
			// Ask the server to start a stream, naming our return
			// service in the comment.
			conn, err := lib.OpenConnection(p, "mh.rt", "video", uint16(7000+i), retSvc, "besteffort:0")
			if err != nil {
				fmt.Printf("viewer %d: request failed: %v\n", i, err)
				return
			}
			ctrl, _ := ucb.Stack.PF.Socket(p)
			_ = ctrl.Connect(conn.VCI, conn.Cookie)
			// Accept the server's CBR call-back (or learn it was
			// rejected when nothing arrives).
			req, err := lib.AwaitServiceRequest(p, retL)
			if err != nil {
				return
			}
			vci, qos, err := req.Accept(req.QoS)
			if err != nil {
				return
			}
			in, _ := ucb.Stack.PF.Socket(p)
			if err := in.Bind(vci, req.Cookie); err != nil {
				return
			}
			frames := 0
			for {
				if _, err := in.Recv(); err != nil {
					break
				}
				frames++
			}
			fmt.Printf("viewer %d: stream done, %d/250 frames at %q\n", i, frames, qos)
		})
	}

	n.E.RunUntil(90 * time.Second)
	sent, dropped := n.Fabric.TrunkStats()
	fmt.Printf("\nfabric: %d cells switched, %d dropped (any drops land on the best-effort class)\n", sent, dropped)
	fmt.Printf("admission: MH sighost established %d calls, failed %d (CBR oversubscription)\n",
		mh.Sig.SH.Stats().CallsEstablished, mh.Sig.SH.Stats().CallsFailed)
	fmt.Printf("best-effort bulk frames offered: %d\n", crossSent)
	n.E.Shutdown()
}

var portCounter uint16 = 7600

func nextPort() uint16 {
	portCounter++
	return portCounter
}
