module xunet

go 1.22
