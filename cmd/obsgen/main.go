// Command obsgen runs the E4 call storm on the simulated testbed with
// continuous telemetry armed and prints the time-series export. Three
// uses:
//
//	go run ./cmd/obsgen                  # full export as JSON
//	go run ./cmd/obsgen -health          # watermark rule states + events
//	go run ./cmd/obsgen -table          # utilization/queue-depth vs time table
//	go run ./cmd/obsgen -prof -shards 4 # execution profiler's deterministic counts
//
// With -shards N (N > 0) the storm runs on the sharded parallel engine
// instead: N switch domains joined by lookahead-funding trunks, each on
// its own shard, executed by -workers goroutines, and the export is the
// deterministic merge of every domain's store. The bytes depend only on
// the seed and topology, never on -workers — `make shardgate` diffs a
// 1-worker run against a 4-worker run to prove it.
//
// The simulation is deterministic, so the same seed always prints the
// same bytes — `make obsgate` runs it twice and diffs, guarding the
// reproducibility claim the telemetry layer makes (the same guard
// tracegate gives the trace layer).
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"xunet/internal/kern"
	"xunet/internal/obs/tseries"
	"xunet/internal/testbed"
)

func main() {
	seed := flag.Uint64("seed", 42, "simulation seed")
	calls := flag.Int("calls", 100, "storm call count (the paper's hundred)")
	frames := flag.Int("frames", 20, "data frames per call")
	frameBytes := flag.Int("frame-bytes", 1400, "data frame size (a ~30-cell AAL5 frame)")
	runFor := flag.Duration("run", 40*time.Second, "sim time to run (covers the storm's full lifecycle)")
	interval := flag.Duration("interval", 25*time.Millisecond, "scrape tick interval")
	capacity := flag.Int("capacity", 2048, "points retained per series")
	health := flag.Bool("health", false, "print watermark rule states and health events instead of the export")
	table := flag.Bool("table", false, "print a utilization/queue-depth table for the busiest trunk")
	tableEvery := flag.Int("table-every", 40, "aggregate the table over this many ticks per row (40 x 25ms = 1s)")
	shards := flag.Int("shards", 0, "run on the sharded engine with this many switch domains (0 = classic flat testbed)")
	workers := flag.Int("workers", 1, "shard-window worker goroutines (sharded mode; never changes the bytes)")
	sighosts := flag.Int("sighosts", 2, "sighost routers per domain (sharded mode)")
	trunkDelay := flag.Duration("trunk-delay", 2*time.Millisecond, "inter-domain trunk propagation delay = conservative lookahead (sharded mode)")
	profOut := flag.Bool("prof", false, "arm the execution profiler and print its deterministic counts export (byte-identical at any -workers; make profgate diffs it)")
	flag.Parse()

	if *shards > 0 {
		runSharded(*seed, *shards, *workers, *sighosts, *trunkDelay, *calls, *frames, *frameBytes,
			*runFor, *interval, *capacity, *health, *table, *tableEvery, *profOut)
		return
	}

	n, ra, rb, err := testbed.NewTestbed(testbed.Options{
		Seed:          *seed,
		DeviceBuffers: kern.FixedDeviceBuffers,
		FDTableSize:   kern.FixedFDTableSize,
		TSeries:       &tseries.Config{Interval: *interval, Capacity: *capacity},
		// Prof alone records only deterministic counts, so the byte-diffed
		// exports below may carry it (ProfSeries would add wall time).
		Prof: *profOut,
	})
	if err != nil {
		fatal(err)
	}
	testbed.StartEchoServer(rb, "storm", 6000)
	n.StartTSeries(*runFor)
	n.E.RunUntil(time.Second)
	// E4: a hundred calls as fast as possible, each held one second —
	// here with padded multi-cell frames so the trunks carry real load
	// (a 1400-byte frame bursts ~30 cells at host-interface rate into
	// the 45 Mb/s DS3).
	testbed.CallStorm(ra, "ucb.rt", "storm", testbed.StormConfig{
		Count: *calls, Hold: time.Second, FramesPerCall: *frames, FrameBytes: *frameBytes,
	})
	n.E.RunUntil(*runFor)
	ex := n.TS.Export()
	n.E.Shutdown()

	switch {
	case *profOut:
		fmt.Print(n.Prof.CountsText())
	case *health:
		fmt.Print(n.TS.HealthText())
	case *table:
		printTable(ex, *tableEvery)
	default:
		fmt.Println(n.TS.JSON())
	}
}

// runSharded is the -shards path: the same E4 storm split across a
// multi-domain ring on the parallel engine, with the per-domain stores
// merged into one deterministic export.
func runSharded(seed uint64, shards, workers, sighosts int, trunkDelay time.Duration,
	calls, frames, frameBytes int, runFor, interval time.Duration, capacity int,
	health, table bool, tableEvery int, profOut bool) {
	cfg := testbed.StormConfig{
		Count: calls, Hold: time.Second, FramesPerCall: frames, FrameBytes: frameBytes,
		Domains: shards, SighostsPerDomain: sighosts, TrunkDelay: trunkDelay,
		CrossFrames: frames,
	}
	sn, err := testbed.NewSharded(testbed.Options{
		Seed:          seed,
		DeviceBuffers: kern.FixedDeviceBuffers,
		FDTableSize:   kern.FixedFDTableSize,
		TSeries:       &tseries.Config{Interval: interval, Capacity: capacity},
		Prof:          profOut,
	}, cfg)
	if err != nil {
		fatal(err)
	}
	defer sn.Close()
	sn.G.SetWorkers(workers)
	sn.StartTSeries(runFor)
	sn.RunUntil(time.Second)
	testbed.ShardedStorm(sn, cfg)
	sn.RunUntil(runFor)
	ex := sn.MergedExport()

	switch {
	case profOut:
		fmt.Print(sn.Prof.CountsText())
	case health:
		for _, dom := range sn.Domains {
			fmt.Printf("== domain %d\n%s", dom.Index, dom.TS.HealthText())
		}
	case table:
		printTable(ex, tableEvery)
	default:
		fmt.Println(sn.MergedTSeriesJSON())
	}
}

// printTable renders the busiest trunk's utilization and queue-depth
// series — the EXPERIMENTS.md load table. Each row aggregates `every`
// ticks: cells summed, utilization averaged over the window, queue
// depth at window end, high-water maxed across the window.
func printTable(ex tseries.Export, every int) {
	if every < 1 {
		every = 1
	}
	// Busiest = most cells carried over the run.
	var trunk string
	var best int64
	for _, s := range ex.Series {
		if !strings.HasPrefix(s.Name, "fabric.trunk.") || !strings.HasSuffix(s.Name, ".cells") {
			continue
		}
		var total int64
		for _, p := range s.Points {
			total += p.V
		}
		if total > best {
			best, trunk = total, strings.TrimSuffix(strings.TrimPrefix(s.Name, "fabric.trunk."), ".cells")
		}
	}
	if trunk == "" {
		fmt.Println("no trunk series in export")
		return
	}
	find := func(name string) []tseries.Point {
		for _, s := range ex.Series {
			if s.Name == name {
				return s.Points
			}
		}
		return nil
	}
	cells := find("fabric.trunk." + trunk + ".cells")
	util := find("fabric.trunk." + trunk + ".util_bp")
	depth := find("fabric.trunk." + trunk + ".qdepth")
	fmt.Printf("trunk %s (interval %v, %d ticks, %d ticks/row)\n", trunk, ex.Interval, ex.Ticks, every)
	fmt.Printf("%-10s %10s %10s %8s %8s\n", "t", "cells", "util", "qdepth", "q_hiwat")
	for i := 0; i < len(cells); i += every {
		end := i + every
		if end > len(cells) {
			end = len(cells)
		}
		var cellSum, utilSum, qh int64
		for j := i; j < end; j++ {
			cellSum += cells[j].V
			if j < len(util) {
				utilSum += util[j].V
			}
			if j < len(depth) && depth[j].Aux > qh {
				qh = depth[j].Aux
			}
		}
		var qv int64
		if end-1 < len(depth) {
			qv = depth[end-1].V
		}
		fmt.Printf("%-10v %10d %9.2f%% %8d %8d\n",
			cells[end-1].At, cellSum, float64(utilSum)/float64(end-i)/100, qv, qh)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "obsgen:", err)
	os.Exit(1)
}
