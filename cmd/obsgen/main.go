// Command obsgen runs the E4 call storm on the simulated testbed with
// continuous telemetry armed and prints the time-series export. Three
// uses:
//
//	go run ./cmd/obsgen                  # full export as JSON
//	go run ./cmd/obsgen -health          # watermark rule states + events
//	go run ./cmd/obsgen -table          # utilization/queue-depth vs time table
//
// The simulation is deterministic, so the same seed always prints the
// same bytes — `make obsgate` runs it twice and diffs, guarding the
// reproducibility claim the telemetry layer makes (the same guard
// tracegate gives the trace layer).
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"xunet/internal/kern"
	"xunet/internal/obs/tseries"
	"xunet/internal/testbed"
)

func main() {
	seed := flag.Uint64("seed", 42, "simulation seed")
	calls := flag.Int("calls", 100, "storm call count (the paper's hundred)")
	frames := flag.Int("frames", 20, "data frames per call")
	frameBytes := flag.Int("frame-bytes", 1400, "data frame size (a ~30-cell AAL5 frame)")
	runFor := flag.Duration("run", 40*time.Second, "sim time to run (covers the storm's full lifecycle)")
	interval := flag.Duration("interval", 25*time.Millisecond, "scrape tick interval")
	capacity := flag.Int("capacity", 2048, "points retained per series")
	health := flag.Bool("health", false, "print watermark rule states and health events instead of the export")
	table := flag.Bool("table", false, "print a utilization/queue-depth table for the busiest trunk")
	tableEvery := flag.Int("table-every", 40, "aggregate the table over this many ticks per row (40 x 25ms = 1s)")
	flag.Parse()

	n, ra, rb, err := testbed.NewTestbed(testbed.Options{
		Seed:          *seed,
		DeviceBuffers: kern.FixedDeviceBuffers,
		FDTableSize:   kern.FixedFDTableSize,
		TSeries:       &tseries.Config{Interval: *interval, Capacity: *capacity},
	})
	if err != nil {
		fatal(err)
	}
	testbed.StartEchoServer(rb, "storm", 6000)
	n.StartTSeries(*runFor)
	n.E.RunUntil(time.Second)
	// E4: a hundred calls as fast as possible, each held one second —
	// here with padded multi-cell frames so the trunks carry real load
	// (a 1400-byte frame bursts ~30 cells at host-interface rate into
	// the 45 Mb/s DS3).
	testbed.CallStorm(ra, "ucb.rt", "storm", testbed.StormConfig{
		Count: *calls, Hold: time.Second, FramesPerCall: *frames, FrameBytes: *frameBytes,
	})
	n.E.RunUntil(*runFor)
	ex := n.TS.Export()
	n.E.Shutdown()

	switch {
	case *health:
		fmt.Print(n.TS.HealthText())
	case *table:
		printTable(ex, *tableEvery)
	default:
		fmt.Println(n.TS.JSON())
	}
}

// printTable renders the busiest trunk's utilization and queue-depth
// series — the EXPERIMENTS.md load table. Each row aggregates `every`
// ticks: cells summed, utilization averaged over the window, queue
// depth at window end, high-water maxed across the window.
func printTable(ex tseries.Export, every int) {
	if every < 1 {
		every = 1
	}
	// Busiest = most cells carried over the run.
	var trunk string
	var best int64
	for _, s := range ex.Series {
		if !strings.HasPrefix(s.Name, "fabric.trunk.") || !strings.HasSuffix(s.Name, ".cells") {
			continue
		}
		var total int64
		for _, p := range s.Points {
			total += p.V
		}
		if total > best {
			best, trunk = total, strings.TrimSuffix(strings.TrimPrefix(s.Name, "fabric.trunk."), ".cells")
		}
	}
	if trunk == "" {
		fmt.Println("no trunk series in export")
		return
	}
	find := func(name string) []tseries.Point {
		for _, s := range ex.Series {
			if s.Name == name {
				return s.Points
			}
		}
		return nil
	}
	cells := find("fabric.trunk." + trunk + ".cells")
	util := find("fabric.trunk." + trunk + ".util_bp")
	depth := find("fabric.trunk." + trunk + ".qdepth")
	fmt.Printf("trunk %s (interval %v, %d ticks, %d ticks/row)\n", trunk, ex.Interval, ex.Ticks, every)
	fmt.Printf("%-10s %10s %10s %8s %8s\n", "t", "cells", "util", "qdepth", "q_hiwat")
	for i := 0; i < len(cells); i += every {
		end := i + every
		if end > len(cells) {
			end = len(cells)
		}
		var cellSum, utilSum, qh int64
		for j := i; j < end; j++ {
			cellSum += cells[j].V
			if j < len(util) {
				utilSum += util[j].V
			}
			if j < len(depth) && depth[j].Aux > qh {
				qh = depth[j].Aux
			}
		}
		var qv int64
		if end-1 < len(depth) {
			qv = depth[end-1].V
		}
		fmt.Printf("%-10v %10d %9.2f%% %8d %8d\n",
			cells[end-1].At, cellSum, float64(utilSum)/float64(end-i)/100, qv, qh)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "obsgen:", err)
	os.Exit(1)
}
