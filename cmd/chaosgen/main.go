// Command chaosgen runs the chaos soak — the §10 call storm plus a
// host-originated storm under the seeded fault cocktail with two
// mid-storm signaling-entity crashes — and prints every observable
// artifact as one stable text fingerprint: storm outcomes, injected
// fault counters, the healing counters on both routers, flight-recorder
// dump count, leak check, and the full testbed report.
//
// The fault schedule is part of the deterministic replay, so the same
// seeds always print the same bytes — `make chaosgate` runs it twice
// and diffs, guarding the chaos-replay claim the fault plane makes.
//
//	go run ./cmd/chaosgen > chaos.txt
//	go run ./cmd/chaosgen -seed 11 -chaos-seed 7
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"xunet/internal/faults"
	"xunet/internal/kern"
	"xunet/internal/testbed"
	"xunet/internal/ulib"
)

var healingCounters = []string{
	"sighost.crashes", "sighost.recoveries",
	"sighost.recovered.bound", "sighost.recovered.wait_bind",
	"sighost.recovery.aborted_calls", "sighost.dropped_while_down",
	"sighost.rel.retransmits", "sighost.rel.acks", "sighost.rel.dups",
	"sighost.rel.stale_epoch", "sighost.rel.exhausted",
	"sighost.rel.peer_deaths",
	"sighost.calls.active", "sighost.calls.established",
}

func main() {
	seed := flag.Uint64("seed", 7, "simulation seed")
	chaosSeed := flag.Uint64("chaos-seed", 99, "fault plane seed (0 derives it from -seed)")
	flag.Parse()

	n, ra, rb, err := testbed.NewTestbed(testbed.Options{
		Seed:          *seed,
		DeviceBuffers: kern.FixedDeviceBuffers,
		FDTableSize:   kern.FixedFDTableSize,
		Faults: &faults.Config{
			Seed:    *chaosSeed,
			SigLoss: 0.01,
			PktLoss: 0.01, PktDup: 0.005, PktDelayProb: 0.02, PktDelayMax: 2 * time.Millisecond,
			GE:         faults.GEConfig{PGoodToBad: 0.0002, PBadToGood: 0.1, LossBad: 0.5},
			FlapMeanUp: 2 * time.Second, FlapDown: 40 * time.Millisecond,
			DevLoss: 0.001,
		},
	})
	if err != nil {
		fatal(err)
	}
	ha, err := n.AddHost("mh.h1", ra)
	if err != nil {
		fatal(err)
	}
	for _, l := range []*ulib.Lib{ra.Lib, rb.Lib, ha.Lib} {
		l.SetTimeouts(ulib.Timeouts{
			RPC: 10 * time.Second, Establish: 60 * time.Second,
			Attempts: 2, Backoff: 100 * time.Millisecond, MaxBackoff: time.Second,
		})
	}
	testbed.StartEchoServer(rb, "storm", 6000)
	testbed.StartEchoServer(rb, "hstorm", 6001)
	n.E.RunUntil(time.Second)
	n.StartTrunkFlapping(20 * time.Second)
	res := testbed.CallStorm(ra, "ucb.rt", "storm", testbed.StormConfig{
		Count: 40, Hold: time.Second, FramesPerCall: 2,
		Stagger: 20 * time.Millisecond,
	})
	resH := testbed.CallStorm(ha, "ucb.rt", "hstorm", testbed.StormConfig{
		Count: 15, Hold: time.Second, FramesPerCall: 2,
		Stagger: 50 * time.Millisecond, BasePort: 25000,
	})
	n.E.Schedule(3*time.Second, func() { rb.Sig.CrashFor(400 * time.Millisecond) })
	n.E.Schedule(12*time.Second, func() { rb.Sig.CrashFor(400 * time.Millisecond) })
	n.E.RunUntil(n.E.Now() + 60*time.Second)

	fmt.Printf("storm: launched=%d ok=%d failed=%d min=%v max=%v total=%v\n",
		res.Launched, res.Succeeded, res.Failed, res.MinSetup, res.MaxSetup, res.TotalSetup)
	fmt.Printf("host-storm: launched=%d ok=%d failed=%d min=%v max=%v total=%v\n",
		resH.Launched, resH.Succeeded, resH.Failed, resH.MinSetup, resH.MaxSetup, resH.TotalSetup)
	fmt.Printf("faults:\n%s", n.Faults.Obs.Snapshot().Text())
	for _, r := range []*testbed.Router{ra, rb} {
		reg := r.Stack.M.Obs.Snapshot()
		for _, name := range healingCounters {
			fmt.Printf("%s %s %d\n", r.Stack.Addr, name, reg.Count(name))
		}
	}
	fmt.Printf("flight-dumps: %d\n", len(n.FlightDumps))
	fmt.Printf("quiesce mh.rt: %q ucb.rt: %q\n", testbed.Quiesced(ra), testbed.Quiesced(rb))
	fmt.Printf("report:\n%s", n.Snapshot().String())
	n.E.Shutdown()
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "chaosgen:", err)
	os.Exit(1)
}
