// Command xunetsim runs configurable scenarios on the simulated Xunet:
// the paper's two-router measurement testbed or the five-site
// nationwide map, with a chosen number of IP hosts per router and a
// call-storm workload, reporting the signaling, kernel, and fabric
// statistics the experiments in EXPERIMENTS.md are built from.
//
//	xunetsim -topology testbed -calls 100 -hold 1s
//	xunetsim -topology xunet -hosts 2 -calls 50 -buffers 8
//	xunetsim -chaos -chaos-seed 99 -calls 60   # storm under the fault cocktail
//	xunetsim -shards 4 -workers 4 -calls 100   # sharded parallel engine
//
// With -shards N (N > 0) the run uses the sharded parallel engine: N
// switch domains in a trunk ring, one shard per domain, executed by
// -workers goroutines. The virtual history depends only on the seed and
// topology — -workers moves wall-clock time, never a result.
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"xunet/internal/atm"
	"xunet/internal/faults"
	"xunet/internal/kern"
	"xunet/internal/obs/tseries"
	"xunet/internal/testbed"
	"xunet/internal/xswitch"
)

func main() {
	topo := flag.String("topology", "testbed", "testbed (2 routers, 3 hops) or xunet (5 sites)")
	hosts := flag.Int("hosts", 0, "IP-connected hosts per router")
	calls := flag.Int("calls", 100, "calls in the storm workload")
	hold := flag.Duration("hold", time.Second, "per-call hold time")
	frames := flag.Int("frames", 1, "data frames per call")
	buffers := flag.Int("buffers", kern.FixedDeviceBuffers, "pseudo-device message buffers (paper: 8 broken, 80 fixed)")
	fdsize := flag.Int("fdsize", kern.FixedFDTableSize, "per-process fd table size (paper: 20 broken, 100 fixed)")
	seed := flag.Uint64("seed", 1, "simulation seed")
	nolog := flag.Bool("nolog", false, "disable per-call maintenance logging (E3 ablation)")
	kill := flag.Int("kill-every", 0, "kill every k-th client mid-call (robustness)")
	qosStr := flag.String("qos", "", "per-call QoS descriptor (e.g. cbr:1000)")
	chaos := flag.Bool("chaos", false, "arm the fault-injection plane: 1% signaling loss, packet loss/dup/delay, bursty trunk cell loss, trunk flapping, device indication loss")
	chaosSeed := flag.Uint64("chaos-seed", 0, "fault plane seed (0 derives it from -seed)")
	shards := flag.Int("shards", 0, "run on the sharded engine with this many switch domains (0 = single event loop)")
	workers := flag.Int("workers", 1, "shard-window worker goroutines (sharded mode)")
	sighosts := flag.Int("sighosts", 2, "sighost routers per domain (sharded mode)")
	trunkDelay := flag.Duration("trunk-delay", 2*time.Millisecond, "inter-domain trunk delay = conservative lookahead (sharded mode)")
	crossFrames := flag.Int("cross-frames", 8, "data frames per cross-domain carrier circuit (sharded mode)")
	profOn := flag.Bool("prof", false, "arm the execution profiler and print the full profile (wall-time attribution, per-shard barrier-stall fractions, critical-shard ranking)")
	flag.Parse()

	opts := testbed.Options{
		Seed:               *seed,
		DeviceBuffers:      *buffers,
		FDTableSize:        *fdsize,
		DisableCallLogging: *nolog,
		// -prof arms the wall-clock half too: xunetsim's report is for
		// humans, not byte-diffing, so the stall series and hot-shard
		// watermark rule ride along.
		ProfSeries: *profOn,
	}
	if *chaos {
		opts.Faults = &faults.Config{
			Seed:    *chaosSeed,
			SigLoss: 0.01,
			PktLoss: 0.01, PktDup: 0.005, PktDelayProb: 0.02, PktDelayMax: 2 * time.Millisecond,
			GE:         faults.GEConfig{PGoodToBad: 0.0002, PBadToGood: 0.1, LossBad: 0.5},
			FlapMeanUp: 2 * time.Second, FlapDown: 40 * time.Millisecond,
			DevLoss: 0.001,
		}
	}

	if *shards > 0 {
		if *hosts > 0 {
			fmt.Fprintln(os.Stderr, "xunetsim: -hosts is not supported in sharded mode")
			os.Exit(1)
		}
		runSharded(opts, testbed.StormConfig{
			Count: *calls, Hold: *hold, FramesPerCall: *frames, QoS: *qosStr,
			KillEvery: *kill, KillAfter: *hold / 2,
			Domains: *shards, SighostsPerDomain: *sighosts, TrunkDelay: *trunkDelay,
			CrossFrames: *crossFrames,
		}, *workers, *chaos)
		return
	}

	var n *testbed.Net
	var routers []*testbed.Router
	switch *topo {
	case "testbed":
		net_, ra, rb, err := testbed.NewTestbed(opts)
		if err != nil {
			fmt.Fprintln(os.Stderr, "xunetsim:", err)
			os.Exit(1)
		}
		n, routers = net_, []*testbed.Router{ra, rb}
	case "xunet":
		net_, siteRouters, err := testbed.NewXunet(opts)
		if err != nil {
			fmt.Fprintln(os.Stderr, "xunetsim:", err)
			os.Exit(1)
		}
		n = net_
		for _, s := range xswitch.XunetSites() {
			routers = append(routers, siteRouters[s])
		}
	default:
		fmt.Fprintf(os.Stderr, "xunetsim: unknown topology %q\n", *topo)
		os.Exit(1)
	}

	var allHosts []*testbed.Host
	for i, r := range routers {
		for h := 0; h < *hosts; h++ {
			host, err := n.AddHost(atm.Addr(fmt.Sprintf("%s.h%d", r.Stack.Addr, h+1)), r)
			if err != nil {
				fmt.Fprintln(os.Stderr, "xunetsim:", err)
				os.Exit(1)
			}
			allHosts = append(allHosts, host)
		}
		_ = i
	}

	server := routers[len(routers)-1]
	srv := testbed.StartEchoServer(server, "storm", 6000)
	n.E.RunUntil(time.Second)
	if *chaos {
		// Flap trunks for the expected storm duration plus drain margin.
		n.StartTrunkFlapping(time.Duration(*calls)*(*hold) + 30*time.Second)
	}

	var client testbed.Endpoint = routers[0]
	if len(allHosts) > 0 {
		client = allHosts[0]
	}
	fmt.Printf("xunetsim: %s topology, %d routers, %d hosts; storm of %d calls (%v hold) from %s to %s\n",
		*topo, len(routers), len(allHosts), *calls, *hold, client.EndStack().Addr, server.Stack.Addr)

	res := testbed.CallStorm(client, server.Stack.Addr, "storm", testbed.StormConfig{
		Count: *calls, Hold: *hold, FramesPerCall: *frames, QoS: *qosStr,
		KillEvery: *kill, KillAfter: *hold / 2,
	})
	n.E.RunUntil(n.E.Now() + 4*n.CM.BindTimeout)

	fmt.Printf("\ncalls: %d launched, %d established, %d failed, %d killed\n",
		res.Launched, res.Succeeded, res.Failed, res.Killed)
	if res.Succeeded > 0 {
		fmt.Printf("setup latency: min %v avg %v max %v (paper: ≈330 ms/call)\n",
			res.MinSetup, res.Avg(), res.MaxSetup)
	}
	fmt.Printf("echo server: %d calls accepted, %d frames received\n\n", srv.Accepted, srv.Received)
	if *chaos {
		fmt.Printf("faults injected:\n%s\n", n.Faults.Obs.Snapshot().Text())
	}
	if n.Prof != nil {
		fmt.Printf("\n%s\n", n.Prof.Text())
	}
	report := n.Snapshot()
	fmt.Print(report)
	if report.Quiesced() {
		fmt.Println("all transient signaling state drained — robustness check passed")
	} else {
		for _, r := range routers {
			if msg := testbed.Quiesced(r); msg != "" {
				fmt.Println("LEAK:", msg)
			}
		}
	}
	n.E.Shutdown()
}

// runSharded drives the storm on the sharded parallel engine and prints
// per-domain and aggregate buckets. Wall-clock time is reported so the
// worker-count speedup is visible; every virtual number is identical at
// any -workers.
func runSharded(opts testbed.Options, cfg testbed.StormConfig, workers int, chaos bool) {
	if opts.ProfSeries && opts.TSeries == nil {
		// The stall series and the hot-shard watermark rule live in the
		// per-domain stores; arm them so the profiler's wall-clock half
		// has somewhere to land.
		opts.TSeries = &tseries.Config{}
	}
	sn, err := testbed.NewSharded(opts, cfg)
	if err != nil {
		fmt.Fprintln(os.Stderr, "xunetsim:", err)
		os.Exit(1)
	}
	defer sn.Close()
	sn.G.SetWorkers(workers)
	fmt.Printf("xunetsim: sharded %d domains x %d sighosts, lookahead %v, %d workers; storm of %d calls (%v hold)\n",
		len(sn.Domains), len(sn.Domains[0].Routers), sn.G.Lookahead(), sn.G.Workers(), cfg.Count, cfg.Hold)
	sn.RunUntil(time.Second)
	runFor := time.Duration(cfg.Count)*cfg.Hold + 30*time.Second
	sn.StartTSeries(time.Second + runFor)
	if chaos {
		sn.StartTrunkFlapping(runFor)
	}
	start := time.Now()
	res := testbed.ShardedStorm(sn, cfg)
	sn.RunUntil(time.Second + runFor)
	elapsed := time.Since(start)

	la, su, fa, ki := res.Totals()
	fmt.Printf("\ncalls: %d launched, %d established, %d failed, %d killed (%.0f sim-calls/s wall)\n",
		la, su, fa, ki, float64(su)/elapsed.Seconds())
	for i, dr := range res.PerDomain {
		fmt.Printf("  d%d: %d launched, %d established, %d failed, %d killed, %d carrier frames in\n",
			i, dr.Launched, dr.Succeeded, dr.Failed, dr.Killed, sn.Domains[i].CrossDelivered)
		if dr.Succeeded > 0 {
			fmt.Printf("      setup latency: min %v avg %v max %v\n", dr.MinSetup, dr.Avg(), dr.MaxSetup)
		}
	}
	if chaos {
		for _, dom := range sn.Domains {
			if dom.Faults != nil {
				fmt.Printf("\nd%d faults injected:\n%s", dom.Index, dom.Faults.Obs.Snapshot().Text())
			}
		}
	}
	if sn.Prof != nil {
		fmt.Printf("\n%s", sn.Prof.Text())
		for _, dom := range sn.Domains {
			for _, ev := range dom.HealthEvents {
				if ev.Rule == "hot-shard-stall" {
					fmt.Printf("health d%d: %s\n", dom.Index, ev.String())
				}
			}
		}
	}
	leaks := 0
	for _, dom := range sn.Domains {
		for _, r := range dom.Routers {
			if msg := testbed.Quiesced(r); msg != "" {
				fmt.Println("LEAK:", msg)
				leaks++
			}
		}
	}
	if leaks == 0 {
		fmt.Println("all transient signaling state drained — robustness check passed")
	}
}
