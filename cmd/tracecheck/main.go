// Command tracecheck validates Chrome trace-event JSON on stdin — the
// format internal/trace's exporter produces and Perfetto loads. It is
// the CI gate that keeps the exporter's output schema honest: `make ci`
// pipes a generated trace through it and fails the build on any drift.
//
//	go run ./cmd/tracegen | go run ./cmd/tracecheck
//	xunetstat flight -json | tracecheck -v
//
// Checks: the top-level object has a traceEvents array and a
// displayTimeUnit; every event has a name, a one-letter phase that is
// "X" (complete span) or "M" (metadata), a pid and tid; X events carry
// non-negative ts and dur; M events are thread_name / process_name with
// a name arg; X events' parent/span args, when present, are decimal.
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
)

// event mirrors one trace-event entry loosely: unknown fields are
// tolerated (the format is extensible) but the required ones are typed.
type event struct {
	Name string            `json:"name"`
	Cat  string            `json:"cat"`
	Ph   string            `json:"ph"`
	Ts   *float64          `json:"ts"`
	Dur  *float64          `json:"dur"`
	Pid  *uint64           `json:"pid"`
	Tid  *int              `json:"tid"`
	Args map[string]string `json:"args"`
}

type file struct {
	TraceEvents     []event `json:"traceEvents"`
	DisplayTimeUnit string  `json:"displayTimeUnit"`
}

func main() {
	verbose := flag.Bool("v", false, "print a per-trace summary on success")
	allowEmpty := flag.Bool("allow-empty", false, "accept a trace with zero events")
	flag.Parse()

	raw, err := io.ReadAll(os.Stdin)
	if err != nil {
		fail("read: %v", err)
	}
	var f file
	dec := json.NewDecoder(bytes.NewReader(raw))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&f); err != nil {
		fail("parse: %v", err)
	}
	if f.DisplayTimeUnit == "" {
		fail("missing displayTimeUnit")
	}
	if len(f.TraceEvents) == 0 && !*allowEmpty {
		fail("no traceEvents (pass -allow-empty to accept)")
	}

	spans, metas := 0, 0
	pids := map[uint64]bool{}
	for i, ev := range f.TraceEvents {
		where := fmt.Sprintf("event %d (%q)", i, ev.Name)
		if ev.Name == "" {
			fail("event %d: empty name", i)
		}
		if ev.Pid == nil || ev.Tid == nil {
			fail("%s: missing pid/tid", where)
		}
		pids[*ev.Pid] = true
		switch ev.Ph {
		case "X":
			spans++
			if ev.Ts == nil || *ev.Ts < 0 {
				fail("%s: X event needs non-negative ts", where)
			}
			if ev.Dur == nil || *ev.Dur < 0 {
				fail("%s: X event needs non-negative dur", where)
			}
			for _, k := range []string{"parent", "span"} {
				if v, ok := ev.Args[k]; ok {
					if _, err := strconv.ParseUint(v, 10, 64); err != nil {
						fail("%s: arg %s=%q is not decimal", where, k, v)
					}
				}
			}
		case "M":
			metas++
			if ev.Name != "thread_name" && ev.Name != "process_name" {
				fail("%s: unexpected metadata event", where)
			}
			if ev.Args["name"] == "" {
				fail("%s: metadata event needs a name arg", where)
			}
		default:
			fail("%s: unexpected phase %q (want X or M)", where, ev.Ph)
		}
	}
	if *verbose {
		fmt.Fprintf(os.Stderr, "tracecheck: ok — %d traces, %d spans, %d metadata events\n",
			len(pids), spans, metas)
	}
}

func fail(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "tracecheck: "+format+"\n", args...)
	os.Exit(1)
}
