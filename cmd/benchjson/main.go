// Command benchjson converts `go test -bench` output on stdin into a
// machine-readable JSON report, so benchmark history can be diffed
// across PRs (BENCH_PR2.json and successors).
//
//	go test -run '^$' -bench . -count 3 ./... | go run ./cmd/benchjson -o BENCH_PR5.json
//
// Repeated runs of the same benchmark (from -count N) are aggregated
// into min/median per metric instead of emitting duplicate rows.
// Every metric a benchmark reports is captured: the standard ns/op,
// B/op and allocs/op plus custom b.ReportMetric units (events/sec,
// sim-calls/s, vMbps, ...), which is how the paper-band virtual
// metrics ride along with the wall-clock numbers.
//
// Diff mode compares two reports and optionally gates on regressions:
//
//	go run ./cmd/benchjson -diff -bench SimulatedCallsPerSecond \
//	    -metric sim-calls/s -gate 10 old.json new.json
//
// exits nonzero if any selected metric is worse than the old report by
// more than the gate percentage. Better/worse direction is inferred
// from the unit: /op, *-ms and *-% metrics want smaller numbers, rate
// metrics (/s, /sec, bps) want bigger ones.
//
// When a profiler-armed benchmark contributes events/s, stall-% and
// critical-shard metrics, the report carries a top-level profile block
// summarizing them (events per second, barrier-stall percentage,
// critical shard), so perf history records where the engine's time
// went, not just how fast it was.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"regexp"
	"runtime"
	"sort"
	"strconv"
	"strings"
)

// Metric is one aggregated benchmark statistic. Old reports carry
// plain numbers (one raw row per run); UnmarshalJSON accepts both
// shapes so -diff works across the format change.
type Metric struct {
	Min    float64 `json:"min"`
	Median float64 `json:"median"`
}

func (m *Metric) UnmarshalJSON(b []byte) error {
	if len(b) > 0 && b[0] != '{' {
		v, err := strconv.ParseFloat(strings.TrimSpace(string(b)), 64)
		if err != nil {
			return err
		}
		m.Min, m.Median = v, v
		return nil
	}
	type alias Metric
	var a alias
	if err := json.Unmarshal(b, &a); err != nil {
		return err
	}
	*m = Metric(a)
	return nil
}

// Bench is one benchmark: the bare name (GOMAXPROCS suffix stripped),
// its package, how many runs were aggregated, and all metrics.
type Bench struct {
	Package    string            `json:"package"`
	Name       string            `json:"name"`
	Runs       int               `json:"runs"`
	Iterations int64             `json:"iterations"`
	Metrics    map[string]Metric `json:"metrics"`
}

// ProfileSummary is the execution-profiler block stamped into a report
// when a profiler-armed benchmark contributed events/s, stall-% and
// critical-shard metrics (internal/testbed's BenchmarkShardedStorm
// does). It surfaces the three numbers a perf campaign reads first
// without digging through the per-benchmark metric maps.
type ProfileSummary struct {
	// Bench names the benchmark the block was lifted from (the one with
	// the highest events/s when several are prof-armed).
	Bench           string  `json:"bench"`
	EventsPerSec    float64 `json:"events_per_sec"`
	BarrierStallPct float64 `json:"barrier_stall_pct"`
	CriticalShard   int     `json:"critical_shard"`
}

// Report is the file layout. Benchmarks keep first-seen input order,
// so diffs between PRs line up.
type Report struct {
	GoVersion string `json:"go_version"`
	GOOS      string `json:"goos"`
	GOARCH    string `json:"goarch"`
	// GOMAXPROCS records the hardware parallelism the numbers were
	// measured with. Parallel-engine metrics (the sharded storm's
	// sim-calls/s series) are meaningless to diff across different
	// parallelism, so -diff warns when the two reports disagree.
	// omitempty keeps pre-PR7 reports parseable (they read back as 0 =
	// unknown).
	GOMAXPROCS int `json:"gomaxprocs,omitempty"`
	// Profile is the execution-profiler summary (nil when no benchmark
	// reported profiler metrics; omitempty keeps old reports parseable).
	Profile    *ProfileSummary `json:"profile,omitempty"`
	Benchmarks []Bench         `json:"benchmarks"`
}

// profileSummary lifts the profiler block out of the aggregated
// benchmarks: among those reporting a stall-% metric, the one with the
// highest median events/s wins (the fully-parallel sub-benchmark of the
// scaling series).
func profileSummary(benches []Bench) *ProfileSummary {
	var best *ProfileSummary
	for _, b := range benches {
		stall, ok := b.Metrics["stall-%"]
		if !ok {
			continue
		}
		s := &ProfileSummary{
			Bench:           b.Name,
			EventsPerSec:    b.Metrics["events/s"].Median,
			BarrierStallPct: stall.Median,
			CriticalShard:   int(b.Metrics["critical-shard"].Median),
		}
		if best == nil || s.EventsPerSec > best.EventsPerSec {
			best = s
		}
	}
	return best
}

var benchLine = regexp.MustCompile(`^(Benchmark\S+?)\s+(\d+)\s+(.+)$`)

// trimProcs strips the -GOMAXPROCS suffix go test appends when running
// on more than one CPU. Only that exact number is stripped — a
// sub-benchmark parameter that happens to end in -N survives, because
// go test would have put its own suffix after it. (The old parser
// stripped any trailing -digits nongreedily, which collapsed
// Table1_HostSend/mbufs-1, -4 and -8 into three duplicate rows.)
func trimProcs(name string) string {
	procs := runtime.GOMAXPROCS(0)
	if procs == 1 {
		return name
	}
	suffix := "-" + strconv.Itoa(procs)
	return strings.TrimSuffix(name, suffix)
}

type rawRun struct {
	iters   int64
	metrics map[string]float64
}

func parseRuns(f *os.File) (order []string, pkgOf map[string]string, runs map[string][]rawRun, err error) {
	pkgOf = map[string]string{}
	runs = map[string][]rawRun{}
	pkg := ""
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if rest, ok := strings.CutPrefix(line, "pkg: "); ok {
			pkg = rest
			continue
		}
		m := benchLine.FindStringSubmatch(line)
		if m == nil {
			continue
		}
		iters, err := strconv.ParseInt(m[2], 10, 64)
		if err != nil {
			continue
		}
		run := rawRun{iters: iters, metrics: map[string]float64{}}
		fields := strings.Fields(m[3])
		for i := 0; i+1 < len(fields); i += 2 {
			v, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				break // malformed tail; keep what parsed
			}
			run.metrics[fields[i+1]] = v
		}
		if len(run.metrics) == 0 {
			continue
		}
		name := strings.TrimPrefix(trimProcs(m[1]), "Benchmark")
		key := pkg + "\x00" + name
		if _, seen := runs[key]; !seen {
			order = append(order, key)
			pkgOf[key] = pkg
		}
		runs[key] = append(runs[key], run)
	}
	return order, pkgOf, runs, sc.Err()
}

func median(vs []float64) float64 {
	sort.Float64s(vs)
	n := len(vs)
	if n%2 == 1 {
		return vs[n/2]
	}
	return (vs[n/2-1] + vs[n/2]) / 2
}

func aggregate(order []string, pkgOf map[string]string, runs map[string][]rawRun) []Bench {
	var out []Bench
	for _, key := range order {
		rs := runs[key]
		b := Bench{
			Package: pkgOf[key],
			Name:    key[strings.IndexByte(key, 0)+1:],
			Runs:    len(rs),
			Metrics: map[string]Metric{},
		}
		units := map[string][]float64{}
		for _, r := range rs {
			if r.iters > b.Iterations {
				b.Iterations = r.iters
			}
			for u, v := range r.metrics {
				units[u] = append(units[u], v)
			}
		}
		for u, vs := range units {
			mn := vs[0]
			for _, v := range vs[1:] {
				if v < mn {
					mn = v
				}
			}
			b.Metrics[u] = Metric{Min: mn, Median: median(vs)}
		}
		out = append(out, b)
	}
	return out
}

// lowerBetter infers the improvement direction from the metric unit.
func lowerBetter(unit string) bool {
	switch {
	case strings.HasSuffix(unit, "-%"):
		// Percent-of-waste metrics — the profiler's barrier stall-% —
		// want smaller numbers, even though more workers usually raise
		// both events/s and stall-% together (more parallelism, more
		// barrier exposure). Direction-aware so a gated diff catches a
		// partitioning regression, not a worker-count change.
		return true
	case strings.Contains(unit, "/op"), strings.HasSuffix(unit, "-ms"), strings.HasSuffix(unit, "ns"):
		return true
	case strings.Contains(unit, "/s"), strings.Contains(unit, "bps"):
		return false
	}
	return true
}

func loadReport(path string) (*Report, error) {
	b, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var r Report
	if err := json.Unmarshal(b, &r); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return &r, nil
}

// index collapses a report to one Bench per package/name. Old-format
// files carry duplicate raw rows; fold them with min/median-of-medians
// so pre-aggregation reports gate the same way.
func index(r *Report) map[string]Bench {
	out := map[string]Bench{}
	for _, b := range r.Benchmarks {
		key := b.Package + "\x00" + b.Name
		prev, ok := out[key]
		if !ok {
			out[key] = b
			continue
		}
		merged := prev
		merged.Runs += b.Runs
		merged.Metrics = map[string]Metric{}
		for u, m := range prev.Metrics {
			merged.Metrics[u] = m
		}
		for u, m := range b.Metrics {
			if pm, ok := merged.Metrics[u]; ok {
				if m.Min < pm.Min {
					pm.Min = m.Min
				}
				pm.Median = (pm.Median + m.Median) / 2
				merged.Metrics[u] = pm
			} else {
				merged.Metrics[u] = m
			}
		}
		out[key] = merged
	}
	return out
}

func runDiff(oldPath, newPath, benchRE, metricRE string, gatePct float64) int {
	oldRep, err := loadReport(oldPath)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		return 2
	}
	newRep, err := loadReport(newPath)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		return 2
	}
	benchPat, err := regexp.Compile(benchRE)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson: -bench:", err)
		return 2
	}
	metricPat, err := regexp.Compile(metricRE)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson: -metric:", err)
		return 2
	}

	if oldRep.GOMAXPROCS != 0 && newRep.GOMAXPROCS != 0 && oldRep.GOMAXPROCS != newRep.GOMAXPROCS {
		fmt.Fprintf(os.Stderr,
			"benchjson: warning: reports measured at different parallelism (GOMAXPROCS %d vs %d); wall-clock deltas reflect the hardware, not the code\n",
			oldRep.GOMAXPROCS, newRep.GOMAXPROCS)
	}

	oldIdx := index(oldRep)
	newIdx := index(newRep)
	compared, regressed := 0, 0
	w := bufio.NewWriter(os.Stdout)
	defer w.Flush()
	for _, nb := range index2Sorted(newIdx) {
		if !benchPat.MatchString(nb.Name) {
			continue
		}
		ob, ok := oldIdx[nb.Package+"\x00"+nb.Name]
		if !ok {
			fmt.Fprintf(w, "%-44s (new benchmark, nothing to compare)\n", nb.Name)
			continue
		}
		units := make([]string, 0, len(nb.Metrics))
		for u := range nb.Metrics {
			units = append(units, u)
		}
		sort.Strings(units)
		for _, u := range units {
			if !metricPat.MatchString(u) {
				continue
			}
			om, ok := ob.Metrics[u]
			if !ok || om.Min == 0 {
				continue
			}
			nm := nb.Metrics[u]
			// Compare best-vs-best: min is the least noise-polluted
			// observation of what the code can do.
			delta := (nm.Min - om.Min) / om.Min * 100
			worse := delta
			if !lowerBetter(u) {
				worse = -delta
			}
			compared++
			mark := ""
			if gatePct > 0 && worse > gatePct && !identityMetric(u) {
				regressed++
				mark = "  REGRESSION"
			}
			fmt.Fprintf(w, "%-44s %-18s %14.4g -> %-14.4g %+7.2f%%%s\n",
				nb.Name, u, om.Min, nm.Min, delta, mark)
		}
	}
	// Benchmarks only the old report has would otherwise vanish from the
	// diff silently — a deleted (or renamed) benchmark looks exactly like
	// a clean comparison. Call them out.
	for _, ob := range index2Sorted(oldIdx) {
		if !benchPat.MatchString(ob.Name) {
			continue
		}
		if _, ok := newIdx[ob.Package+"\x00"+ob.Name]; !ok {
			fmt.Fprintf(w, "%-44s (removed benchmark, present only in old report)\n", ob.Name)
		}
	}
	if compared == 0 {
		fmt.Fprintln(os.Stderr, "benchjson: -diff matched no common benchmarks")
		return 2
	}
	if regressed > 0 {
		w.Flush()
		fmt.Fprintf(os.Stderr, "benchjson: %d metric(s) regressed beyond %.0f%%\n", regressed, gatePct)
		return 1
	}
	return 0
}

// runRatio gates on the ratio between two benchmarks within ONE report:
//
//	benchjson -ratio -a 'RealFrames/fallback' -b 'RealFrames/batched' \
//	    -metric sys/frame -min 2 BENCH_RT.json
//
// exits 1 when median(A)/median(B) < min. The rtbench tier uses it to
// prove the batched carrier amortizes syscalls (A=fallback cost over
// B=batched cost must be ≥ the floor) on the numbers just measured,
// rather than against a historical report. With -skip-missing a report
// that lacks A or B (the batched sub-benchmark self-skips off Linux)
// exits 0 with a note instead of failing, so the gate is portable.
func runRatio(path, aRE, bRE, metricRE string, minRatio float64, skipMissing bool) int {
	rep, err := loadReport(path)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		return 2
	}
	aPat, err := regexp.Compile(aRE)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson: -a:", err)
		return 2
	}
	bPat, err := regexp.Compile(bRE)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson: -b:", err)
		return 2
	}
	find := func(pat *regexp.Regexp) (Bench, bool) {
		for _, b := range index2Sorted(index(rep)) {
			if pat.MatchString(b.Name) {
				if _, ok := b.Metrics[metricRE]; ok {
					return b, true
				}
			}
		}
		return Bench{}, false
	}
	ab, aok := find(aPat)
	bb, bok := find(bPat)
	if !aok || !bok {
		if skipMissing {
			fmt.Printf("benchjson: ratio gate skipped (missing %s benchmark in %s)\n",
				map[bool]string{true: "-b", false: "-a"}[aok], path)
			return 0
		}
		fmt.Fprintf(os.Stderr, "benchjson: -ratio: no benchmark matching %s with metric %q\n",
			map[bool]string{true: bRE, false: aRE}[aok], metricRE)
		return 2
	}
	av, bv := ab.Metrics[metricRE].Median, bb.Metrics[metricRE].Median
	if bv == 0 {
		fmt.Fprintf(os.Stderr, "benchjson: -ratio: %s %s median is zero\n", bb.Name, metricRE)
		return 2
	}
	ratio := av / bv
	fmt.Printf("%s %s: %s=%.4g / %s=%.4g  ratio %.2fx (floor %.2fx)\n",
		metricRE, map[bool]string{true: "OK", false: "FAIL"}[ratio >= minRatio],
		ab.Name, av, bb.Name, bv, ratio, minRatio)
	if ratio < minRatio {
		return 1
	}
	return 0
}

// identityMetric reports units that name a thing rather than measure
// one (the critical shard's index, the GOMAXPROCS the run used) —
// diffs print them so a shift is visible, but never gate on them.
func identityMetric(u string) bool {
	return u == "critical-shard" || u == "gomaxprocs"
}

func index2Sorted(idx map[string]Bench) []Bench {
	out := make([]Bench, 0, len(idx))
	for _, b := range idx {
		out = append(out, b)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Package != out[j].Package {
			return out[i].Package < out[j].Package
		}
		return out[i].Name < out[j].Name
	})
	return out
}

func main() {
	out := flag.String("o", "", "output file (default stdout)")
	diff := flag.Bool("diff", false, "compare two reports: benchjson -diff old.json new.json")
	benchRE := flag.String("bench", "", "diff: only benchmarks whose name matches this regexp")
	metricRE := flag.String("metric", "", "diff: only metrics whose unit matches this regexp; ratio: exact metric unit")
	gate := flag.Float64("gate", 0, "diff: exit 1 if any selected metric regresses more than this percent")
	ratio := flag.Bool("ratio", false, "gate on median(A)/median(B) within one report: benchjson -ratio -a re -b re -metric unit -min x report.json")
	ratioA := flag.String("a", "", "ratio: regexp naming the numerator benchmark")
	ratioB := flag.String("b", "", "ratio: regexp naming the denominator benchmark")
	ratioMin := flag.Float64("min", 1, "ratio: exit 1 if A/B falls below this floor")
	skipMissing := flag.Bool("skip-missing", false, "ratio: exit 0 when either benchmark is absent (self-skipping platform gates)")
	flag.Parse()

	if *diff {
		if flag.NArg() != 2 {
			fmt.Fprintln(os.Stderr, "usage: benchjson -diff [-bench re] [-metric re] [-gate pct] old.json new.json")
			os.Exit(2)
		}
		os.Exit(runDiff(flag.Arg(0), flag.Arg(1), *benchRE, *metricRE, *gate))
	}
	if *ratio {
		if flag.NArg() != 1 || *ratioA == "" || *ratioB == "" || *metricRE == "" {
			fmt.Fprintln(os.Stderr, "usage: benchjson -ratio -a re -b re -metric unit [-min x] [-skip-missing] report.json")
			os.Exit(2)
		}
		os.Exit(runRatio(flag.Arg(0), *ratioA, *ratioB, *metricRE, *ratioMin, *skipMissing))
	}

	order, pkgOf, runs, err := parseRuns(os.Stdin)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson: read:", err)
		os.Exit(1)
	}
	rep := Report{
		GoVersion:  runtime.Version(),
		GOOS:       runtime.GOOS,
		GOARCH:     runtime.GOARCH,
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		Benchmarks: aggregate(order, pkgOf, runs),
	}
	rep.Profile = profileSummary(rep.Benchmarks)
	if len(rep.Benchmarks) == 0 {
		fmt.Fprintln(os.Stderr, "benchjson: no benchmark lines on stdin")
		os.Exit(1)
	}

	enc, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	enc = append(enc, '\n')
	if *out == "" {
		os.Stdout.Write(enc)
		return
	}
	if err := os.WriteFile(*out, enc, 0o644); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "benchjson: wrote %d benchmarks to %s\n", len(rep.Benchmarks), *out)
}
