// Command benchjson converts `go test -bench` output on stdin into a
// machine-readable JSON report, so benchmark history can be diffed
// across PRs (BENCH_PR2.json and successors).
//
//	go test -run '^$' -bench . ./... | go run ./cmd/benchjson -o BENCH_PR2.json
//
// Every metric a benchmark reports is captured: the standard ns/op,
// B/op and allocs/op plus custom b.ReportMetric units (events/sec,
// sim-calls/s, vMbps, ...), which is how the paper-band virtual
// metrics ride along with the wall-clock numbers.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"regexp"
	"runtime"
	"strconv"
	"strings"
)

// Bench is one benchmark result: the bare name (GOMAXPROCS suffix
// stripped), its package, the iteration count and all reported metrics.
type Bench struct {
	Package    string             `json:"package"`
	Name       string             `json:"name"`
	Iterations int64              `json:"iterations"`
	Metrics    map[string]float64 `json:"metrics"`
}

// Report is the file layout. Benchmarks keep input order, so diffs
// between PRs line up.
type Report struct {
	GoVersion  string  `json:"go_version"`
	GOOS       string  `json:"goos"`
	GOARCH     string  `json:"goarch"`
	Benchmarks []Bench `json:"benchmarks"`
}

var benchLine = regexp.MustCompile(`^(Benchmark\S*?)(?:-\d+)?\s+(\d+)\s+(.+)$`)

func main() {
	out := flag.String("o", "", "output file (default stdout)")
	flag.Parse()

	rep := Report{
		GoVersion: runtime.Version(),
		GOOS:      runtime.GOOS,
		GOARCH:    runtime.GOARCH,
	}
	pkg := ""
	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if rest, ok := strings.CutPrefix(line, "pkg: "); ok {
			pkg = rest
			continue
		}
		m := benchLine.FindStringSubmatch(line)
		if m == nil {
			continue
		}
		iters, err := strconv.ParseInt(m[2], 10, 64)
		if err != nil {
			continue
		}
		b := Bench{
			Package:    pkg,
			Name:       strings.TrimPrefix(m[1], "Benchmark"),
			Iterations: iters,
			Metrics:    map[string]float64{},
		}
		fields := strings.Fields(m[3])
		for i := 0; i+1 < len(fields); i += 2 {
			v, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				break // malformed tail; keep what parsed
			}
			b.Metrics[fields[i+1]] = v
		}
		if len(b.Metrics) > 0 {
			rep.Benchmarks = append(rep.Benchmarks, b)
		}
	}
	if err := sc.Err(); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson: read:", err)
		os.Exit(1)
	}
	if len(rep.Benchmarks) == 0 {
		fmt.Fprintln(os.Stderr, "benchjson: no benchmark lines on stdin")
		os.Exit(1)
	}

	enc, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	enc = append(enc, '\n')
	if *out == "" {
		os.Stdout.Write(enc)
		return
	}
	if err := os.WriteFile(*out, enc, 0o644); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "benchjson: wrote %d benchmarks to %s\n", len(rep.Benchmarks), *out)
}
