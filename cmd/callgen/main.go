// Command callgen sweeps the §10 scaling parameters: it repeats the
// hundred-call storm across a range of pseudo-device buffer counts and
// file-descriptor table sizes and prints one row per configuration —
// the experiment behind "initially we configured the device with only
// eight buffers... our current implementation has eighty" and "we
// increased the kernel's per-process file descriptor table size to
// 100".
//
//	callgen                          # default sweep
//	callgen -buffers 8,16,40,80 -fdsizes 20,100 -calls 100
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
	"time"

	"xunet/internal/testbed"
)

func parseInts(s string) ([]int, error) {
	var out []int
	for _, f := range strings.Split(s, ",") {
		v, err := strconv.Atoi(strings.TrimSpace(f))
		if err != nil {
			return nil, err
		}
		out = append(out, v)
	}
	return out, nil
}

func main() {
	buffers := flag.String("buffers", "8,20,40,80", "pseudo-device buffer counts to sweep")
	fdsizes := flag.String("fdsizes", "20,100", "fd table sizes to sweep")
	calls := flag.Int("calls", 100, "calls per storm")
	hold := flag.Duration("hold", time.Second, "per-call hold")
	seed := flag.Uint64("seed", 1, "simulation seed")
	flag.Parse()

	bufList, err := parseInts(*buffers)
	if err != nil {
		fmt.Fprintln(os.Stderr, "callgen:", err)
		os.Exit(1)
	}
	fdList, err := parseInts(*fdsizes)
	if err != nil {
		fmt.Fprintln(os.Stderr, "callgen:", err)
		os.Exit(1)
	}

	fmt.Printf("call storm sweep: %d calls, %v hold, seed %d\n\n", *calls, *hold, *seed)
	fmt.Printf("%8s %8s | %6s %6s | %9s %12s %12s | %s\n",
		"buffers", "fdsize", "ok", "fail", "dev-lost", "avg-setup", "max-setup", "residual state")
	for _, fd := range fdList {
		for _, buf := range bufList {
			n, ra, rb, err := testbed.NewTestbed(testbed.Options{
				Seed: *seed, DeviceBuffers: buf, FDTableSize: fd,
			})
			if err != nil {
				fmt.Fprintln(os.Stderr, "callgen:", err)
				os.Exit(1)
			}
			testbed.StartEchoServer(rb, "storm", 6000)
			n.E.RunUntil(time.Second)
			res := testbed.CallStorm(ra, "ucb.rt", "storm", testbed.StormConfig{
				Count: *calls, Hold: *hold,
			})
			n.E.RunUntil(n.E.Now() + 4*n.CM.BindTimeout)
			lost := ra.Stack.M.Dev.Lost + rb.Stack.M.Dev.Lost
			residual := "clean"
			for _, r := range []*testbed.Router{ra, rb} {
				if msg := testbed.Quiesced(r); msg != "" {
					residual = msg
				}
			}
			fmt.Printf("%8d %8d | %6d %6d | %9d %12v %12v | %s\n",
				buf, fd, res.Succeeded, res.Failed, lost,
				res.Avg().Round(time.Millisecond), res.MaxSetup.Round(time.Millisecond), residual)
			n.E.Shutdown()
		}
	}
}
