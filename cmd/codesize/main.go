// Command codesize regenerates Table 2 of the paper — "Code sizes for
// principal components at a host" — by counting this reproduction's Go
// source lines for each component and printing them beside the paper's
// C line counts.
//
//	go run ./cmd/codesize
package main

import (
	"fmt"
	"os"

	"xunet/internal/codesize"
)

func main() {
	rows, err := codesize.Measure()
	if err != nil {
		fmt.Fprintln(os.Stderr, "codesize:", err)
		os.Exit(1)
	}
	fmt.Println("Table 2: code sizes for principal components at a host")
	fmt.Println("(paper: lines of C with comments; repro: lines of Go with comments,")
	fmt.Println(" tests excluded; segment sizes are not reproduced — see EXPERIMENTS.md)")
	fmt.Println()
	fmt.Print(codesize.Render(rows))
}
