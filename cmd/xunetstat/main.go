// Command xunetstat scrapes a running sighost daemon's telemetry in-band
// over the signaling RPC protocol (MGMT_QUERY "stats.json" / "trace.json")
// and renders it as aligned tables or raw JSON — netstat for the signaling
// entity.
//
//	xunetstat -sighost 127.0.0.1:3177           # tables: counters, gauges,
//	                                            # latency percentiles, trace
//	xunetstat -sighost 127.0.0.1:3177 -json     # one JSON object
//	xunetstat -sighost 127.0.0.1:3177 -events 50
//
// Two subcommands query the causal call tracer:
//
//	xunetstat trace <callid>      # one call's span tree + where its setup
//	                              # latency went, layer by layer
//	xunetstat trace -json <callid># the same as Chrome trace-event JSON
//	                              # (load in Perfetto / chrome://tracing)
//	xunetstat flight              # span trees of the last completed calls
//	xunetstat flight -json        # flight recorder as Chrome trace JSON
//
// And one queries the fault-injection plane, when one is armed:
//
//	xunetstat faults              # fault config + injection counters
//	xunetstat faults -json        # the same as one JSON object
//
// Two more query continuous telemetry (daemons started with -metrics):
//
//	xunetstat tseries             # latest sample of every scraped series
//	xunetstat tseries -json       # full export: point history, rules, events
//	xunetstat health              # watermark rule states + health events
//	xunetstat health -json        # the same as one JSON object
//
// And one queries the execution profiler, when one is armed:
//
//	xunetstat prof                # per-shard event/stall attribution,
//	                              # critical-shard ranking
//	xunetstat prof -json          # the same as one JSON snapshot
//	xunetstat prof -flame         # folded stacks for flame-graph tools
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"sort"
	"strconv"
	"text/tabwriter"
	"time"

	"xunet/internal/obs"
	"xunet/internal/signaling"
)

func main() {
	addr := flag.String("sighost", "127.0.0.1:3177", "sighost daemon TCP address")
	asJSON := flag.Bool("json", false, "emit one JSON object instead of tables")
	events := flag.Int("events", 16, "trace events to fetch (0 disables)")
	flag.Parse()

	c := &signaling.RealClient{SighostAddr: *addr}

	if args := flag.Args(); len(args) > 0 {
		runSubcommand(c, args)
		return
	}
	statsBody, err := c.Query(signaling.MgmtStatsJSON)
	if err != nil {
		fmt.Fprintln(os.Stderr, "xunetstat:", err)
		os.Exit(1)
	}
	var snap obs.Snapshot
	if err := json.Unmarshal([]byte(statsBody), &snap); err != nil {
		fmt.Fprintln(os.Stderr, "xunetstat: bad stats reply:", err)
		os.Exit(1)
	}

	var trace []obs.Event
	if *events > 0 {
		traceBody, err := c.QueryN(signaling.MgmtTraceJSON, *events)
		if err != nil {
			fmt.Fprintln(os.Stderr, "xunetstat:", err)
			os.Exit(1)
		}
		if err := json.Unmarshal([]byte(traceBody), &trace); err != nil {
			fmt.Fprintln(os.Stderr, "xunetstat: bad trace reply:", err)
			os.Exit(1)
		}
	}

	if *asJSON {
		out, _ := json.MarshalIndent(struct {
			Stats obs.Snapshot `json:"stats"`
			Trace []obs.Event  `json:"trace,omitempty"`
		}{snap, trace}, "", "  ")
		fmt.Println(string(out))
		return
	}
	render(snap, trace)
}

// runSubcommand handles `xunetstat trace <callid>` and `xunetstat
// flight`. A -json flag may appear either before the subcommand or
// among its arguments.
func runSubcommand(c *signaling.RealClient, args []string) {
	asJSON, asFlame := false, false
	rest := args[:0:0]
	for _, a := range args {
		if a == "-json" || a == "--json" {
			asJSON = true
			continue
		}
		if a == "-flame" || a == "--flame" {
			asFlame = true
			continue
		}
		rest = append(rest, a)
	}
	if len(rest) == 0 {
		fmt.Fprintln(os.Stderr, "usage: xunetstat [flags] [trace <callid> | flight | faults | tseries | health | prof]")
		os.Exit(2)
	}
	switch rest[0] {
	case "trace":
		if len(rest) < 2 {
			fmt.Fprintln(os.Stderr, "usage: xunetstat trace [-json] <callid>")
			os.Exit(2)
		}
		callID, err := strconv.ParseUint(rest[1], 10, 32)
		if err != nil {
			fmt.Fprintln(os.Stderr, "xunetstat: bad call ID:", rest[1])
			os.Exit(2)
		}
		what := signaling.MgmtCallTrace
		if asJSON {
			what = signaling.MgmtCallTraceJSON
		}
		body, err := c.QueryCall(what, uint32(callID))
		if err != nil {
			fmt.Fprintln(os.Stderr, "xunetstat:", err)
			os.Exit(1)
		}
		fmt.Println(body)
	case "flight":
		what := signaling.MgmtFlight
		if asJSON {
			what = signaling.MgmtFlightJSON
		}
		body, err := c.Query(what)
		if err != nil {
			fmt.Fprintln(os.Stderr, "xunetstat:", err)
			os.Exit(1)
		}
		fmt.Println(body)
	case "faults":
		what := signaling.MgmtFaults
		if asJSON {
			what = signaling.MgmtFaultsJSON
		}
		body, err := c.Query(what)
		if err != nil {
			fmt.Fprintln(os.Stderr, "xunetstat:", err)
			os.Exit(1)
		}
		fmt.Println(body)
	case "tseries":
		what := signaling.MgmtTSeries
		if asJSON {
			what = signaling.MgmtTSeriesJSON
		}
		body, err := c.Query(what)
		if err != nil {
			fmt.Fprintln(os.Stderr, "xunetstat:", err)
			os.Exit(1)
		}
		fmt.Println(body)
	case "health":
		what := signaling.MgmtHealth
		if asJSON {
			what = signaling.MgmtHealthJSON
		}
		body, err := c.Query(what)
		if err != nil {
			fmt.Fprintln(os.Stderr, "xunetstat:", err)
			os.Exit(1)
		}
		fmt.Println(body)
	case "prof":
		what := signaling.MgmtProf
		switch {
		case asFlame:
			what = signaling.MgmtProfFlame
		case asJSON:
			what = signaling.MgmtProfJSON
		}
		body, err := c.Query(what)
		if err != nil {
			fmt.Fprintln(os.Stderr, "xunetstat:", err)
			os.Exit(1)
		}
		fmt.Println(body)
	default:
		fmt.Fprintln(os.Stderr, "xunetstat: unknown subcommand", rest[0], "(want trace, flight, faults, tseries, health or prof)")
		os.Exit(2)
	}
}

func render(snap obs.Snapshot, trace []obs.Event) {
	w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	if len(snap.Counters) > 0 {
		fmt.Fprintln(w, "COUNTER\tVALUE")
		for _, c := range snap.Counters {
			fmt.Fprintf(w, "%s\t%d\n", c.Name, c.Value)
		}
		fmt.Fprintln(w)
	}
	if len(snap.Gauges) > 0 {
		fmt.Fprintln(w, "GAUGE\tVALUE\tHIGH-WATER")
		for _, g := range snap.Gauges {
			fmt.Fprintf(w, "%s\t%d\t%d\n", g.Name, g.Value, g.Max)
		}
		fmt.Fprintln(w)
	}
	hists := make([]obs.HistSnap, 0, len(snap.Hists))
	for _, h := range snap.Hists {
		if h.Count > 0 {
			hists = append(hists, h)
		}
	}
	if len(hists) > 0 {
		sort.Slice(hists, func(i, j int) bool { return hists[i].Name < hists[j].Name })
		fmt.Fprintln(w, "LATENCY\tCOUNT\tP50\tP95\tP99\tMAX")
		for _, h := range hists {
			fmt.Fprintf(w, "%s\t%d\t%v\t%v\t%v\t%v\n", h.Name, h.Count, h.P50, h.P95, h.P99, h.Max)
		}
		fmt.Fprintln(w)
	}
	w.Flush()
	if len(trace) > 0 {
		fmt.Println("TRACE (oldest first)")
		for _, ev := range trace {
			fmt.Printf("  %6d %12s %s\n", ev.Seq, ev.At.Round(time.Microsecond), ev.Text)
		}
	}
}
