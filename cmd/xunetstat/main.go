// Command xunetstat scrapes a running sighost daemon's telemetry in-band
// over the signaling RPC protocol (MGMT_QUERY "stats.json" / "trace.json")
// and renders it as aligned tables or raw JSON — netstat for the signaling
// entity.
//
//	xunetstat -sighost 127.0.0.1:3177           # tables: counters, gauges,
//	                                            # latency percentiles, trace
//	xunetstat -sighost 127.0.0.1:3177 -json     # one JSON object
//	xunetstat -sighost 127.0.0.1:3177 -events 50
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"sort"
	"text/tabwriter"
	"time"

	"xunet/internal/obs"
	"xunet/internal/signaling"
)

func main() {
	addr := flag.String("sighost", "127.0.0.1:3177", "sighost daemon TCP address")
	asJSON := flag.Bool("json", false, "emit one JSON object instead of tables")
	events := flag.Int("events", 16, "trace events to fetch (0 disables)")
	flag.Parse()

	c := &signaling.RealClient{SighostAddr: *addr}
	statsBody, err := c.Query(signaling.MgmtStatsJSON)
	if err != nil {
		fmt.Fprintln(os.Stderr, "xunetstat:", err)
		os.Exit(1)
	}
	var snap obs.Snapshot
	if err := json.Unmarshal([]byte(statsBody), &snap); err != nil {
		fmt.Fprintln(os.Stderr, "xunetstat: bad stats reply:", err)
		os.Exit(1)
	}

	var trace []obs.Event
	if *events > 0 {
		traceBody, err := c.QueryN(signaling.MgmtTraceJSON, *events)
		if err != nil {
			fmt.Fprintln(os.Stderr, "xunetstat:", err)
			os.Exit(1)
		}
		if err := json.Unmarshal([]byte(traceBody), &trace); err != nil {
			fmt.Fprintln(os.Stderr, "xunetstat: bad trace reply:", err)
			os.Exit(1)
		}
	}

	if *asJSON {
		out, _ := json.MarshalIndent(struct {
			Stats obs.Snapshot `json:"stats"`
			Trace []obs.Event  `json:"trace,omitempty"`
		}{snap, trace}, "", "  ")
		fmt.Println(string(out))
		return
	}
	render(snap, trace)
}

func render(snap obs.Snapshot, trace []obs.Event) {
	w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	if len(snap.Counters) > 0 {
		fmt.Fprintln(w, "COUNTER\tVALUE")
		for _, c := range snap.Counters {
			fmt.Fprintf(w, "%s\t%d\n", c.Name, c.Value)
		}
		fmt.Fprintln(w)
	}
	if len(snap.Gauges) > 0 {
		fmt.Fprintln(w, "GAUGE\tVALUE\tHIGH-WATER")
		for _, g := range snap.Gauges {
			fmt.Fprintf(w, "%s\t%d\t%d\n", g.Name, g.Value, g.Max)
		}
		fmt.Fprintln(w)
	}
	hists := make([]obs.HistSnap, 0, len(snap.Hists))
	for _, h := range snap.Hists {
		if h.Count > 0 {
			hists = append(hists, h)
		}
	}
	if len(hists) > 0 {
		sort.Slice(hists, func(i, j int) bool { return hists[i].Name < hists[j].Name })
		fmt.Fprintln(w, "LATENCY\tCOUNT\tP50\tP95\tP99\tMAX")
		for _, h := range hists {
			fmt.Fprintf(w, "%s\t%d\t%v\t%v\t%v\t%v\n", h.Name, h.Count, h.P50, h.P95, h.P99, h.Max)
		}
		fmt.Fprintln(w)
	}
	w.Flush()
	if len(trace) > 0 {
		fmt.Println("TRACE (oldest first)")
		for _, ev := range trace {
			fmt.Printf("  %6d %12s %s\n", ev.Seq, ev.At.Round(time.Microsecond), ev.Text)
		}
	}
}
