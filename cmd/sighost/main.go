// Command sighost runs the signaling entity as a real daemon serving
// the application-signaling RPC protocol over TCP — the deployable form
// of the paper's user-space design decision (§5.1): "code in user space
// is far easier to develop and modify".
//
// A standalone daemon serves local calls only (it has no ATM fabric or
// peer PVC mesh behind it; the full multi-router system runs inside the
// simulation — see cmd/xunetsim). Try it together with cmd/sigdemo:
//
//	sighost -listen 127.0.0.1:3177 -atm-addr mh.rt
//	sigdemo -sighost 127.0.0.1:3177
//
// Live telemetry (counters, call-setup latency percentiles, recent trace
// events) can be scraped in-band with cmd/xunetstat:
//
//	xunetstat -sighost 127.0.0.1:3177
package main

import (
	"flag"
	"fmt"
	"os"
	"os/signal"
	"time"

	"xunet/internal/atm"
	"xunet/internal/signaling"
)

func main() {
	listen := flag.String("listen", "127.0.0.1:3177", "TCP address to serve the signaling RPC protocol on")
	addrStr := flag.String("atm-addr", "mh.rt", "this signaling entity's ATM address")
	statsEvery := flag.Duration("stats", 30*time.Second, "stats reporting interval (0 disables)")
	flag.Parse()

	h, err := signaling.StartReal(atm.Addr(*addrStr), *listen)
	if err != nil {
		fmt.Fprintln(os.Stderr, "sighost:", err)
		os.Exit(1)
	}
	defer h.Close()
	fmt.Printf("sighost: signaling entity %q serving on %s\n", *addrStr, h.ListenAddr())

	if *statsEvery > 0 {
		go func() {
			// Counters are atomic, so Stats() is safe off the actor; the
			// list sizes are actor state and come from a mgmt query
			// (xunetstat) instead.
			for range time.Tick(*statsEvery) {
				fmt.Printf("sighost: stats=%+v\n", h.SH.Stats())
			}
		}()
	}

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt)
	<-sig
	fmt.Println("\nsighost: shutting down")
}
