// Command sighost runs the signaling entity as a real daemon serving
// the application-signaling RPC protocol over TCP — the deployable form
// of the paper's user-space design decision (§5.1): "code in user space
// is far easier to develop and modify".
//
// A standalone daemon serves local calls only; with -peer-net it joins
// a mesh of sighosts over the batched UDP carrier (internal/rtnet) and
// serves cross-host calls too. (The full multi-router fabric still runs
// inside the simulation — see cmd/xunetsim.) Try it with cmd/sigdemo:
//
//	sighost -listen 127.0.0.1:3177 -atm-addr mh.rt
//	sigdemo -sighost 127.0.0.1:3177
//
// Two peered daemons on one machine:
//
//	sighost -listen 127.0.0.1:3177 -atm-addr a.rt \
//	    -peer-net 127.0.0.1:4177 -peer b.rt=127.0.0.1:4178
//	sighost -listen 127.0.0.1:3178 -atm-addr b.rt \
//	    -peer-net 127.0.0.1:4178 -peer a.rt=127.0.0.1:4177
//
// Live telemetry (counters, call-setup latency percentiles, recent trace
// events) can be scraped in-band with cmd/xunetstat:
//
//	xunetstat -sighost 127.0.0.1:3177
//
// With -metrics, the daemon also serves the registry — including Go
// runtime health (heap, goroutines, GC pauses) — in the OpenMetrics
// text format, and arms the wall-clock time-series scrape behind the
// MGMT tseries/health queries:
//
//	sighost -metrics 127.0.0.1:9177
//	curl http://127.0.0.1:9177/metrics
package main

import (
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"time"

	"xunet/internal/atm"
	"xunet/internal/obs/tseries"
	"xunet/internal/signaling"
)

// peerList collects repeated -peer "atmaddr=udpaddr" flags.
type peerList []string

func (p *peerList) String() string     { return strings.Join(*p, ",") }
func (p *peerList) Set(v string) error { *p = append(*p, v); return nil }

func main() {
	listen := flag.String("listen", "127.0.0.1:3177", "TCP address to serve the signaling RPC protocol on")
	addrStr := flag.String("atm-addr", "mh.rt", "this signaling entity's ATM address")
	statsEvery := flag.Duration("stats", 30*time.Second, "stats reporting interval (0 disables)")
	metrics := flag.String("metrics", "", "HTTP address for the OpenMetrics endpoint (empty disables)")
	scrape := flag.Duration("scrape", time.Second, "time-series scrape interval (with -metrics)")
	peerNet := flag.String("peer-net", "", "UDP address for the inter-sighost carrier (empty disables peering)")
	peerUnbatched := flag.Bool("peer-unbatched", false, "disable sendmmsg/recvmmsg batching on the carrier")
	var peers peerList
	flag.Var(&peers, "peer", "peer route as atmaddr=udpaddr (repeatable; requires -peer-net)")
	flag.Parse()

	h, err := signaling.StartReal(atm.Addr(*addrStr), *listen)
	if err != nil {
		fmt.Fprintln(os.Stderr, "sighost:", err)
		os.Exit(1)
	}
	defer h.Close()
	fmt.Printf("sighost: signaling entity %q serving on %s\n", *addrStr, h.ListenAddr())

	if *peerNet == "" && len(peers) > 0 {
		fmt.Fprintln(os.Stderr, "sighost: -peer requires -peer-net")
		os.Exit(1)
	}
	if *peerNet != "" {
		if err := h.EnablePeerNet(signaling.PeerNetConfig{Listen: *peerNet, Unbatched: *peerUnbatched}); err != nil {
			fmt.Fprintln(os.Stderr, "sighost: peer-net:", err)
			os.Exit(1)
		}
		mode := "batched"
		if !h.PeerNet().Batched() {
			mode = "per-message"
		}
		fmt.Printf("sighost: peer carrier on %s (%s sends)\n", h.PeerNet().Addr(), mode)
		for _, spec := range peers {
			name, udp, ok := strings.Cut(spec, "=")
			if !ok || name == "" || udp == "" {
				fmt.Fprintf(os.Stderr, "sighost: bad -peer %q, want atmaddr=udpaddr\n", spec)
				os.Exit(1)
			}
			if err := h.AddPeer(atm.Addr(name), udp); err != nil {
				fmt.Fprintf(os.Stderr, "sighost: peer %s: %v\n", name, err)
				os.Exit(1)
			}
			fmt.Printf("sighost: peer %s via %s\n", name, udp)
		}
	}

	if *metrics != "" {
		h.EnableTSeries(tseries.Config{Interval: *scrape})
		mux := http.NewServeMux()
		mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
			w.Header().Set("Content-Type", "application/openmetrics-text; version=1.0.0; charset=utf-8")
			fmt.Fprint(w, h.OpenMetrics())
		})
		srv := &http.Server{Addr: *metrics, Handler: mux}
		go func() {
			if err := srv.ListenAndServe(); err != nil && err != http.ErrServerClosed {
				fmt.Fprintln(os.Stderr, "sighost: metrics:", err)
			}
		}()
		defer srv.Close()
		fmt.Printf("sighost: OpenMetrics on http://%s/metrics (scrape %v)\n", *metrics, *scrape)
	}

	if *statsEvery > 0 {
		go func() {
			// Counters are atomic, so Stats() is safe off the actor; the
			// list sizes are actor state and come from a mgmt query
			// (xunetstat) instead.
			for range time.Tick(*statsEvery) {
				fmt.Printf("sighost: stats=%+v\n", h.SH.Stats())
			}
		}()
	}

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt)
	<-sig
	fmt.Println("\nsighost: shutting down")
}
