// Command xunettop is a live terminal viewer for a sighost daemon's
// continuous telemetry — top for the signaling entity. It polls the
// MGMT tseries and health queries in-band over the signaling RPC
// protocol and redraws every interval, most-active series first:
//
//	sighost -metrics 127.0.0.1:9177        # arms the scrape
//	xunettop -sighost 127.0.0.1:3177
//	xunettop -match sighost.rel.           # only retransmit/backlog series
//	xunettop -once                         # one frame, no screen control
//
// Series lines are the store's latest samples (counter rates, gauge
// levels with high-water, histogram P99s); the health panel shows each
// watermark rule's state and the recent fire/clear events. When the
// daemon has an execution profiler armed, a SHARDS panel adds the
// per-shard window/stall table and the critical-shard ranking from the
// MGMT prof view.
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"
	"strconv"
	"strings"
	"time"

	"xunet/internal/signaling"
)

func main() {
	addr := flag.String("sighost", "127.0.0.1:3177", "sighost daemon TCP address")
	interval := flag.Duration("interval", time.Second, "refresh interval")
	match := flag.String("match", "", "only show series whose name contains this substring")
	topN := flag.Int("n", 0, "show only the n most active series (0 = all)")
	once := flag.Bool("once", false, "print one frame and exit (no screen clearing)")
	flag.Parse()

	c := &signaling.RealClient{SighostAddr: *addr}
	for {
		frame, err := render(c, *match, *topN)
		if err != nil {
			fmt.Fprintln(os.Stderr, "xunettop:", err)
			os.Exit(1)
		}
		if *once {
			fmt.Print(frame)
			return
		}
		// Home the cursor and clear below, rather than a full clear, so
		// the redraw doesn't flicker.
		fmt.Print("\x1b[H\x1b[J" + frame)
		time.Sleep(*interval)
	}
}

// render fetches one snapshot and formats the full frame.
func render(c *signaling.RealClient, match string, topN int) (string, error) {
	series, err := c.Query(signaling.MgmtTSeries)
	if err != nil {
		return "", err
	}
	health, err := c.Query(signaling.MgmtHealth)
	if err != nil {
		return "", err
	}

	var b strings.Builder
	fmt.Fprintf(&b, "xunettop — %s — %s\n\n", c.SighostAddr, time.Now().Format("15:04:05"))
	b.WriteString(seriesPanel(series, match, topN))
	b.WriteString("\nHEALTH\n")
	for _, line := range strings.Split(strings.TrimRight(health, "\n"), "\n") {
		b.WriteString("  " + line + "\n")
	}
	// The SHARDS panel rides the same poll; a daemon without a profiler
	// answers with the disabled text and the panel is simply omitted.
	if prof, err := c.Query(signaling.MgmtProf); err == nil {
		b.WriteString(shardPanel(prof))
	}
	return b.String(), nil
}

// shardPanel condenses the MGMT prof view to its group half: window and
// stall accounting per shard, the barrier-stall summary with the
// critical-shard ranking, and the cross-shard matrix. The per-label
// detail (the bulk of the view) stays with `xunetstat prof`.
func shardPanel(text string) string {
	if strings.HasPrefix(text, "execution profiling disabled") {
		return ""
	}
	var rows []string
	for _, line := range strings.Split(strings.TrimRight(text, "\n"), "\n") {
		if strings.HasPrefix(line, "# ") {
			continue
		}
		// The per-shard label detail starts at the first "shard N: events"
		// line; everything before it is the group summary the panel wants.
		if strings.HasPrefix(line, "shard ") && strings.Contains(line, ": events") {
			break
		}
		rows = append(rows, line)
	}
	if len(rows) == 0 {
		// A flat (unsharded) profile has no group half to summarize.
		return ""
	}
	var b strings.Builder
	b.WriteString("\nSHARDS\n")
	for _, line := range rows {
		b.WriteString("  " + line + "\n")
	}
	return b.String()
}

// seriesPanel reorders the daemon's name-sorted series lines by
// activity: the first numeric field (rate= or value=) descending, name
// as the tiebreak, optionally filtered and truncated.
func seriesPanel(text string, match string, topN int) string {
	lines := strings.Split(strings.TrimRight(text, "\n"), "\n")
	if len(lines) == 0 {
		return text
	}
	header, rest := lines[0], lines[1:]
	type row struct {
		line string
		v    int64
	}
	rows := make([]row, 0, len(rest))
	for _, line := range rest {
		if match != "" && !strings.Contains(line, match) {
			continue
		}
		rows = append(rows, row{line: line, v: firstValue(line)})
	}
	sort.SliceStable(rows, func(i, j int) bool { return rows[i].v > rows[j].v })
	shown := len(rows)
	if topN > 0 && topN < shown {
		shown = topN
	}
	var b strings.Builder
	b.WriteString(header + "\n")
	for _, r := range rows[:shown] {
		b.WriteString("  " + r.line + "\n")
	}
	if shown < len(rows) {
		fmt.Fprintf(&b, "  ... %d more (raise -n)\n", len(rows)-shown)
	}
	return b.String()
}

// firstValue pulls the first k=<integer> field out of a series line.
func firstValue(line string) int64 {
	i := strings.IndexByte(line, '=')
	if i < 0 {
		return 0
	}
	rest := line[i+1:]
	if j := strings.IndexByte(rest, ' '); j >= 0 {
		rest = rest[:j]
	}
	v, err := strconv.ParseInt(rest, 10, 64)
	if err != nil {
		return 0
	}
	return v
}
