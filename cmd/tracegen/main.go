// Command tracegen runs the §10 call storm on the simulated testbed and
// prints the flight recorder's completed call traces as Chrome
// trace-event JSON. Two uses:
//
//	go run ./cmd/tracegen > storm.json     # load in Perfetto
//	go run ./cmd/tracegen | go run ./cmd/tracecheck
//
// The simulation is deterministic, so the same seed always prints the
// same bytes — `make ci` runs it twice and diffs, guarding the
// reproducibility claim the trace layer makes.
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"xunet/internal/kern"
	"xunet/internal/testbed"
	"xunet/internal/trace"
)

func main() {
	seed := flag.Uint64("seed", 42, "simulation seed")
	calls := flag.Int("calls", 30, "storm call count")
	text := flag.Bool("text", false, "print span trees instead of Chrome JSON")
	flag.Parse()

	n, ra, rb, err := testbed.NewTestbed(testbed.Options{
		Seed:          *seed,
		DeviceBuffers: kern.FixedDeviceBuffers,
		FDTableSize:   kern.FixedFDTableSize,
	})
	if err != nil {
		fatal(err)
	}
	testbed.StartEchoServer(rb, "storm", 6000)
	n.E.RunUntil(time.Second)
	testbed.CallStorm(ra, "ucb.rt", "storm", testbed.StormConfig{
		Count: *calls, Hold: 250 * time.Millisecond, FramesPerCall: 2,
		KillEvery: 7, KillAfter: 40 * time.Millisecond,
	})
	n.E.RunUntil(n.E.Now() + 4*n.CM.BindTimeout)
	completed := n.TraceC.Completed()
	n.E.Shutdown()

	if *text {
		for _, t := range completed {
			fmt.Print(trace.TextTree(t))
		}
		return
	}
	out, err := trace.ChromeJSON(completed)
	if err != nil {
		fatal(err)
	}
	os.Stdout.Write(out)
	fmt.Println()
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "tracegen:", err)
	os.Exit(1)
}
