// Command sigdemo demonstrates the real-TCP signaling path end to end:
// it registers an echo service with a running sighost daemon, opens a
// connection to it (Figure 4's CONNECT_REQ / REQ_ID / VCI_FOR_CONN
// exchange over actual sockets), prints the negotiated circuit, and
// tears everything down.
//
// With no -sighost flag it starts an in-process daemon on a loopback
// port first, so the demo is self-contained:
//
//	go run ./cmd/sigdemo
package main

import (
	"flag"
	"fmt"
	"net"
	"os"
	"time"

	"xunet/internal/signaling"
)

func fail(err error) {
	fmt.Fprintln(os.Stderr, "sigdemo:", err)
	os.Exit(1)
}

func main() {
	target := flag.String("sighost", "", "address of a running sighost (empty: start one in-process)")
	qosAsk := flag.String("qos", "cbr:1536", "QoS descriptor to request")
	qosOffer := flag.String("server-qos", "cbr:768", "QoS the demo server counter-offers")
	flag.Parse()

	addr := *target
	if addr == "" {
		h, err := signaling.StartReal("mh.rt", "127.0.0.1:0")
		if err != nil {
			fail(err)
		}
		defer h.Close()
		addr = h.ListenAddr()
		fmt.Printf("started in-process sighost %q on %s\n", h.Addr, addr)
	}
	c := &signaling.RealClient{SighostAddr: addr}

	// --- server half (Figure 5 flow over real TCP) ---
	srvL, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		fail(err)
	}
	defer srvL.Close()
	srvPort := uint16(srvL.Addr().(*net.TCPAddr).Port)
	start := time.Now()
	if err := c.ExportService("echo", srvPort); err != nil {
		fail(err)
	}
	fmt.Printf("EXPORT_SRV echo -> SERVICE_REGS in %v (paper: 17-20 ms on a 1993 SGI 4D/30)\n",
		time.Since(start).Round(time.Microsecond))

	type accepted struct {
		vci uint16
		qos string
		err error
	}
	srvCh := make(chan accepted, 1)
	go func() {
		req, err := signaling.AwaitServiceRequest(srvL)
		if err != nil {
			srvCh <- accepted{err: err}
			return
		}
		fmt.Printf("server: INCOMING_CONN qos=%q comment=%q cookie=%d\n", req.QoS, req.Comment, req.Cookie)
		vci, granted, err := req.Accept(*qosOffer)
		srvCh <- accepted{vci: uint16(vci), qos: granted, err: err}
	}()

	// --- client half (Figure 6 flow) ---
	cliL, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		fail(err)
	}
	defer cliL.Close()
	cliPort := uint16(cliL.Addr().(*net.TCPAddr).Port)
	start = time.Now()
	conn, err := c.OpenConnection("mh.rt", "echo", cliL, cliPort, "sigdemo call", *qosAsk)
	if err != nil {
		fail(err)
	}
	setup := time.Since(start).Round(time.Microsecond)
	sr := <-srvCh
	if sr.err != nil {
		fail(sr.err)
	}
	fmt.Printf("client: VCI_FOR_CONN vci=%d qos=%q cookie=%d in %v\n", conn.VCI, conn.QoS, conn.Cookie, setup)
	fmt.Printf("server: VCI_FOR_CONN vci=%d qos=%q\n", sr.vci, sr.qos)
	fmt.Printf("negotiation: asked %q, server offered %q, granted %q\n", *qosAsk, *qosOffer, conn.QoS)
	if uint16(conn.VCI) == sr.vci {
		fmt.Println("both endpoints agree on the circuit — call established")
	} else {
		fmt.Println("VCI mismatch!")
		os.Exit(1)
	}
}
