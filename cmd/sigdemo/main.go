// Command sigdemo demonstrates the real-TCP signaling path end to end:
// it registers an echo service with a running sighost daemon, opens a
// connection to it (Figure 4's CONNECT_REQ / REQ_ID / VCI_FOR_CONN
// exchange over actual sockets), prints the negotiated circuit, and
// tears everything down.
//
// With no -sighost flag it starts an in-process daemon on a loopback
// port first, so the demo is self-contained:
//
//	go run ./cmd/sigdemo
//
// With -server-sighost and -dest it drives a cross-host call through
// two peered daemons (see the -peer-net flags in cmd/sighost): the
// echo server registers at the destination daemon, the client opens
// from the origin, and the SETUP crosses the UDP carrier:
//
//	sigdemo -sighost 127.0.0.1:3177 -server-sighost 127.0.0.1:3178 -dest b.rt
package main

import (
	"flag"
	"fmt"
	"net"
	"os"
	"time"

	"xunet/internal/atm"
	"xunet/internal/signaling"
)

func fail(err error) {
	fmt.Fprintln(os.Stderr, "sigdemo:", err)
	os.Exit(1)
}

func main() {
	target := flag.String("sighost", "", "address of a running sighost (empty: start one in-process)")
	srvTarget := flag.String("server-sighost", "", "sighost the echo server registers with (default: same as -sighost)")
	dest := flag.String("dest", "mh.rt", "ATM address the client opens the connection to")
	qosAsk := flag.String("qos", "cbr:1536", "QoS descriptor to request")
	qosOffer := flag.String("server-qos", "cbr:768", "QoS the demo server counter-offers")
	flag.Parse()

	addr := *target
	if addr == "" {
		h, err := signaling.StartReal("mh.rt", "127.0.0.1:0")
		if err != nil {
			fail(err)
		}
		defer h.Close()
		addr = h.ListenAddr()
		fmt.Printf("started in-process sighost %q on %s\n", h.Addr, addr)
	}
	c := &signaling.RealClient{SighostAddr: addr}
	srvAddr := *srvTarget
	if srvAddr == "" {
		srvAddr = addr
	}
	crossHost := srvAddr != addr
	sc := c
	if crossHost {
		sc = &signaling.RealClient{SighostAddr: srvAddr}
	}

	// --- server half (Figure 5 flow over real TCP) ---
	srvL, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		fail(err)
	}
	defer srvL.Close()
	srvPort := uint16(srvL.Addr().(*net.TCPAddr).Port)
	start := time.Now()
	if err := sc.ExportService("echo", srvPort); err != nil {
		fail(err)
	}
	fmt.Printf("EXPORT_SRV echo -> SERVICE_REGS in %v (paper: 17-20 ms on a 1993 SGI 4D/30)\n",
		time.Since(start).Round(time.Microsecond))

	type accepted struct {
		vci uint16
		qos string
		err error
	}
	srvCh := make(chan accepted, 1)
	go func() {
		req, err := signaling.AwaitServiceRequest(srvL)
		if err != nil {
			srvCh <- accepted{err: err}
			return
		}
		fmt.Printf("server: INCOMING_CONN qos=%q comment=%q cookie=%d\n", req.QoS, req.Comment, req.Cookie)
		vci, granted, err := req.Accept(*qosOffer)
		srvCh <- accepted{vci: uint16(vci), qos: granted, err: err}
	}()

	// --- client half (Figure 6 flow) ---
	cliL, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		fail(err)
	}
	defer cliL.Close()
	cliPort := uint16(cliL.Addr().(*net.TCPAddr).Port)
	start = time.Now()
	conn, err := c.OpenConnection(atm.Addr(*dest), "echo", cliL, cliPort, "sigdemo call", *qosAsk)
	if err != nil {
		fail(err)
	}
	setup := time.Since(start).Round(time.Microsecond)
	sr := <-srvCh
	if sr.err != nil {
		fail(sr.err)
	}
	fmt.Printf("client: VCI_FOR_CONN vci=%d qos=%q cookie=%d in %v\n", conn.VCI, conn.QoS, conn.Cookie, setup)
	fmt.Printf("server: VCI_FOR_CONN vci=%d qos=%q\n", sr.vci, sr.qos)
	fmt.Printf("negotiation: asked %q, server offered %q, granted %q\n", *qosAsk, *qosOffer, conn.QoS)
	switch {
	case crossHost:
		// Each daemon grants a VCI from its own pool; the numbers need
		// not match, only exist on both sides.
		if conn.VCI == 0 || sr.vci == 0 {
			fmt.Println("zero VCI granted!")
			os.Exit(1)
		}
		fmt.Println("cross-host call established over the peer carrier")
	case uint16(conn.VCI) == sr.vci:
		fmt.Println("both endpoints agree on the circuit — call established")
	default:
		fmt.Println("VCI mismatch!")
		os.Exit(1)
	}
}
