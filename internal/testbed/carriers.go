package testbed

import (
	"fmt"
	"time"

	"xunet/internal/atm"
	"xunet/internal/kern"
	"xunet/internal/mbuf"
	"xunet/internal/memnet"
	"xunet/internal/qos"
	"xunet/internal/sim"
	"xunet/internal/trace"
)

// This file implements the §5.4 design-choice ablation (experiment X2):
// the paper chose to encapsulate AAL frames in *raw IP* rather than
// over TCP ("not only inefficient, but also could cause complex
// interactions between PF_XUNET flow control and TCP flow control") or
// over UDP ("buys us little functionality for the efficiency loss").
// The alternative carriers below replace a host's Orc output backend so
// the same PF_XUNET workload can run over each and be compared.

// Carrier identifies the encapsulation transport.
type Carrier int

// The three carriers of §5.4.
const (
	CarrierRawIP Carrier = iota // the paper's design (IPPROTO_ATM)
	CarrierUDP                  // datagram encapsulation
	CarrierTCP                  // stream encapsulation
)

// String names the carrier.
func (c Carrier) String() string {
	switch c {
	case CarrierRawIP:
		return "raw-ip"
	case CarrierUDP:
		return "udp"
	case CarrierTCP:
		return "tcp"
	}
	return fmt.Sprintf("carrier(%d)", int(c))
}

// tunnelPort carries alternative-carrier frames between host and
// router.
const tunnelPort = 7177

// tunnelHeader prefixes each tunneled frame: vci(2) seq(4).
func tunnelHeader(vci atm.VCI, seq uint32) []byte {
	return []byte{byte(vci >> 8), byte(vci), byte(seq >> 24), byte(seq >> 16), byte(seq >> 8), byte(seq)}
}

func parseTunnel(b []byte) (atm.VCI, uint32, []byte, bool) {
	if len(b) < 6 {
		return 0, 0, nil, false
	}
	vci := atm.VCI(uint16(b[0])<<8 | uint16(b[1]))
	seq := uint32(b[2])<<24 | uint32(b[3])<<16 | uint32(b[4])<<8 | uint32(b[5])
	return vci, seq, b[6:], true
}

// CarrierStats counts tunneled traffic for the ablation.
type CarrierStats struct {
	FramesSent      uint64
	FramesDelivered uint64
	OutOfOrder      uint64
	OutputErrors    uint64
	LastErr         error
}

// UseUDPCarrier rewires host's Orc output to encapsulate frames in
// datagrams addressed to the router, and installs the router-side
// receiver that hands them to the router's Orc (and on to the Hobbit
// board). Returns the shared stats.
func UseUDPCarrier(host *Host) (*CarrierStats, error) {
	st := &CarrierStats{}
	router := host.Router
	var seq uint32
	recvSeq := map[atm.VCI]uint32{}
	err := router.Stack.M.IP.BindDatagram(tunnelPort, func(src memnet.IPAddr, sport uint16, data []byte) {
		vci, s, frame, ok := parseTunnel(data)
		if !ok {
			return
		}
		if want, seen := recvSeq[vci]; seen && s != want {
			st.OutOfOrder++
		}
		recvSeq[vci] = s + 1
		st.FramesDelivered++
		_ = router.Stack.M.Orc.Output(vci, mbuf.FromBytes(frame))
	})
	if err != nil {
		return nil, err
	}
	host.Stack.M.Orc.SetEncap(func(vci atm.VCI, frame *mbuf.Chain) error {
		st.FramesSent++
		payload := append(tunnelHeader(vci, seq), frame.Bytes()...)
		seq++
		// Carrier-layer fault hook: tunneled frames can be lost or
		// duplicated at the encapsulation boundary itself, on top of
		// whatever the underlying links do.
		if fp := host.net.Faults; fp != nil {
			v := fp.Packet(trace.Context{})
			if v.Drop {
				return nil
			}
			if v.Dup {
				_ = host.Stack.M.IP.SendDatagram(router.Stack.M.IP.Addr, tunnelPort, tunnelPort, payload)
			}
		}
		return host.Stack.M.IP.SendDatagram(router.Stack.M.IP.Addr, tunnelPort, tunnelPort, payload)
	})
	return st, nil
}

// UseTCPCarrier rewires host's Orc output to a reliable stream to the
// router — the design the paper rejected. Frames survive loss (the
// stream retransmits) but inherit the stream's flow control and
// head-of-line blocking, interacting with PF_XUNET's own pacing.
func UseTCPCarrier(host *Host) (*CarrierStats, error) {
	st := &CarrierStats{}
	router := host.Router
	l, err := router.Stack.M.IP.ListenStream(tunnelPort)
	if err != nil {
		return nil, err
	}
	router.Stack.M.E.Go("tcp-tunnel-server", func(p *sim.Proc) {
		conn, ok := l.Accept(p)
		if !ok {
			return
		}
		for {
			data, ok := conn.Recv(p)
			if !ok {
				return
			}
			vci, _, frame, ok := parseTunnel(data)
			if !ok {
				continue
			}
			st.FramesDelivered++
			if err := router.Stack.M.Orc.Output(vci, mbuf.FromBytes(frame)); err != nil {
				st.OutputErrors++
				st.LastErr = err
			}
		}
	})
	// The host side dials once and keeps the stream for all frames.
	ready := sim.NewQueue[*memnet.Stream](host.Stack.M.E)
	host.Stack.M.E.Go("tcp-tunnel-client", func(p *sim.Proc) {
		conn, err := host.Stack.M.IP.DialStream(p, router.Stack.M.IP.Addr, tunnelPort)
		if err != nil {
			ready.Close()
			return
		}
		ready.Put(conn)
		p.Park() // hold the connection open
	})
	var conn *memnet.Stream
	var seq uint32
	host.Stack.M.Orc.SetEncap(func(vci atm.VCI, frame *mbuf.Chain) error {
		if conn == nil {
			c, ok := ready.TryGet()
			if !ok {
				return fmt.Errorf("testbed: tcp tunnel not connected")
			}
			conn = c
		}
		st.FramesSent++
		payload := append(tunnelHeader(vci, seq), frame.Bytes()...)
		seq++
		return conn.Send(payload)
	})
	return st, nil
}

// TransferResult reports one carrier transfer run.
type TransferResult struct {
	Delivered uint64
	// Elapsed is virtual time from the first send to the last delivery.
	Elapsed time.Duration
}

// ThroughputBps converts the result to delivered bits per second of
// virtual time for frames of the given size.
func (r TransferResult) ThroughputBps(frameSize int) float64 {
	if r.Elapsed <= 0 {
		return 0
	}
	return float64(r.Delivered) * float64(frameSize) * 8 / r.Elapsed.Seconds()
}

// RunCarrierTransfer pushes count frames of size bytes from a host
// process through the current carrier to a sink on its router,
// provisioning a hairpin circuit through the router's attachment
// switch. The VCIs are preauthorized with the signaling entity: this is
// a raw data-path experiment with no call setup in the loop.
func RunCarrierTransfer(n *Net, host *Host, count, size int, pace time.Duration) (TransferResult, error) {
	router := host.Router
	vc, err := n.Fabric.SetupVC(router.Stack.Addr, router.Stack.Addr, qos.BestEffortQoS)
	if err != nil {
		return TransferResult{}, err
	}
	router.Sig.SH.AllowPVC(vc.SrcVCI)
	router.Sig.SH.AllowPVC(vc.DstVCI)
	var got uint64
	var firstSend, lastDelivery time.Duration
	router.Stack.Spawn("carrier-sink", func(p *kern.Proc) {
		sock, err := router.Stack.PF.Socket(p)
		if err != nil {
			return
		}
		if err := sock.Bind(vc.DstVCI, 0); err != nil {
			return
		}
		for {
			if _, err := sock.Recv(); err != nil {
				return
			}
			got++
			lastDelivery = p.SP.Now()
		}
	})
	host.Stack.Spawn("carrier-source", func(p *kern.Proc) {
		sock, err := host.Stack.PF.Socket(p)
		if err != nil {
			return
		}
		if err := sock.Connect(vc.SrcVCI, 0); err != nil {
			return
		}
		p.SP.Sleep(10 * time.Millisecond) // settle
		firstSend = p.SP.Now()
		payload := make([]byte, size)
		for i := 0; i < count; i++ {
			_ = sock.Send(payload)
			if pace > 0 {
				p.SP.Sleep(pace)
			}
		}
		// Hold the circuit open until the run ends: exiting would close
		// the socket, VCI_SHUT the router's forwarding state, and cut
		// off any frames a reliable carrier is still retransmitting —
		// exactly the flow-control interaction §5.4 warns about, shown
		// separately in the loss-behaviour test.
		p.SP.Park()
	})
	n.E.RunUntil(n.E.Now() + time.Minute)
	return TransferResult{Delivered: got, Elapsed: lastDelivery - firstSend}, nil
}
