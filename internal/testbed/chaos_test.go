package testbed_test

import (
	"fmt"
	"strings"
	"testing"
	"time"

	"xunet/internal/faults"
	"xunet/internal/kern"
	"xunet/internal/testbed"
	"xunet/internal/ulib"
)

// chaosConfig is the soak's standard fault cocktail: 1% signaling-PVC
// loss, 1% IP packet loss with occasional duplication and delay, bursty
// cell loss on the trunks (Gilbert–Elliott), trunk flapping, and a
// pinch of pseudo-device indication loss.
func chaosConfig() *faults.Config {
	return &faults.Config{
		Seed:    99,
		SigLoss: 0.01,
		PktLoss: 0.01, PktDup: 0.005, PktDelayProb: 0.02, PktDelayMax: 2 * time.Millisecond,
		GE:         faults.GEConfig{PGoodToBad: 0.0002, PBadToGood: 0.1, LossBad: 0.5},
		FlapMeanUp: 2 * time.Second, FlapDown: 40 * time.Millisecond,
		DevLoss: 0.001,
	}
}

// chaosSighostCounters is the fixed counter set folded into the chaos
// fingerprint for each router, so the determinism check covers the
// healing machinery, not just the faults injected.
var chaosSighostCounters = []string{
	"sighost.crashes", "sighost.recoveries",
	"sighost.recovered.bound", "sighost.recovered.wait_bind",
	"sighost.recovery.aborted_calls", "sighost.dropped_while_down",
	"sighost.rel.retransmits", "sighost.rel.acks", "sighost.rel.dups",
	"sighost.rel.stale_epoch", "sighost.rel.exhausted",
	"sighost.rel.peer_deaths",
	"sighost.calls.active", "sighost.calls.established",
}

// chaosStorm runs the §10 call storm — a router-to-router storm plus a
// host-originated storm so both the signaling PVCs and the IP carrier
// see traffic — under the chaos cocktail, with two mid-storm crashes of
// the callee's signaling entity: one while calls are mid-setup (the
// journal must abort them with prompt client notification) and one
// while calls are bound (the journal must carry them across the
// outage). It drains fully and renders every observable artifact into
// one fingerprint string.
func chaosStorm(t *testing.T, seed uint64) (string, *testbed.StormResult, *testbed.StormResult, *testbed.Net, *testbed.Router, *testbed.Router) {
	t.Helper()
	n, ra, rb, err := testbed.NewTestbed(testbed.Options{
		Seed:          seed,
		DeviceBuffers: kern.FixedDeviceBuffers,
		FDTableSize:   kern.FixedFDTableSize,
		Faults:        chaosConfig(),
	})
	if err != nil {
		t.Fatal(err)
	}
	ha, err := n.AddHost("mh.h1", ra)
	if err != nil {
		t.Fatal(err)
	}
	// Under storm load the callee's single-threaded signaling actor
	// queues requests for seconds; a tight RPC deadline would time every
	// late call out at the client before the sighost ever saw it.
	for _, l := range []*ulib.Lib{ra.Lib, rb.Lib, ha.Lib} {
		l.SetTimeouts(ulib.Timeouts{
			RPC: 10 * time.Second, Establish: 60 * time.Second,
			Attempts: 2, Backoff: 100 * time.Millisecond, MaxBackoff: time.Second,
		})
	}
	testbed.StartEchoServer(rb, "storm", 6000)
	testbed.StartEchoServer(rb, "hstorm", 6001)
	n.E.RunUntil(time.Second)
	n.StartTrunkFlapping(20 * time.Second)
	res := testbed.CallStorm(ra, "ucb.rt", "storm", testbed.StormConfig{
		Count: 40, Hold: time.Second, FramesPerCall: 2,
		Stagger: 20 * time.Millisecond,
	})
	resH := testbed.CallStorm(ha, "ucb.rt", "hstorm", testbed.StormConfig{
		Count: 15, Hold: time.Second, FramesPerCall: 2,
		Stagger: 50 * time.Millisecond, BasePort: 25000,
	})
	// First crash lands mid-setup (t=4s: the callee's backlog is all
	// unaccepted requests); the second lands in the bound burst (t=13s).
	n.E.Schedule(3*time.Second, func() { rb.Sig.CrashFor(400 * time.Millisecond) })
	n.E.Schedule(12*time.Second, func() { rb.Sig.CrashFor(400 * time.Millisecond) })
	// Drain far past the worst failure path: retransmit exhaustion
	// (~16 s at default tuning) and the 30 s bind timeout.
	n.E.RunUntil(n.E.Now() + 60*time.Second)

	var sb strings.Builder
	fmt.Fprintf(&sb, "storm: launched=%d ok=%d failed=%d min=%v max=%v total=%v\n",
		res.Launched, res.Succeeded, res.Failed, res.MinSetup, res.MaxSetup, res.TotalSetup)
	fmt.Fprintf(&sb, "host-storm: launched=%d ok=%d failed=%d min=%v max=%v total=%v\n",
		resH.Launched, resH.Succeeded, resH.Failed, resH.MinSetup, resH.MaxSetup, resH.TotalSetup)
	fmt.Fprintf(&sb, "faults:\n%s", n.Faults.Obs.Snapshot().Text())
	for _, r := range []*testbed.Router{ra, rb} {
		reg := r.Stack.M.Obs.Snapshot()
		for _, name := range chaosSighostCounters {
			fmt.Fprintf(&sb, "%s %s %d\n", r.Stack.Addr, name, reg.Count(name))
		}
	}
	fmt.Fprintf(&sb, "flight-dumps: %d\n", len(n.FlightDumps))
	fmt.Fprintf(&sb, "quiesce mh.rt: %q ucb.rt: %q\n", testbed.Quiesced(ra), testbed.Quiesced(rb))
	fmt.Fprintf(&sb, "report:\n%s", n.Snapshot().String())
	return sb.String(), res, resH, n, ra, rb
}

// TestChaosSoak is the PR's headline acceptance run: the call storms
// under the full fault cocktail plus two mid-storm crashes must end
// with every call in exactly one terminal bucket and zero leaked
// signaling state on either router.
func TestChaosSoak(t *testing.T) {
	_, res, resH, n, ra, rb := chaosStorm(t, 7)

	// Every call terminated, each in exactly one bucket.
	if res.Launched != 40 || resH.Launched != 15 {
		t.Fatalf("launched %d/40 + %d/15 calls", res.Launched, resH.Launched)
	}
	for _, sr := range []*testbed.StormResult{res, resH} {
		if sr.Succeeded+sr.Failed != sr.Launched {
			t.Fatalf("buckets don't partition: ok=%d failed=%d launched=%d",
				sr.Succeeded, sr.Failed, sr.Launched)
		}
		for i, r := range sr.Results {
			if r.OK && r.Err != nil {
				t.Errorf("call %d in both buckets: OK with err %v", i, r.Err)
			}
			if !r.OK && r.Err == nil {
				t.Errorf("call %d in neither bucket", i)
			}
		}
	}
	// The cocktail actually fired: chaos that injects nothing proves
	// nothing.
	snap := n.Faults.Obs.Snapshot()
	for _, c := range []string{"faults.sig.drop", "faults.pkt.drop", "faults.trunk.flaps", "faults.trunk.flap_drops"} {
		if snap.Count(c) == 0 {
			t.Errorf("%s = 0; the storm ran without that fault class", c)
		}
	}
	// Healing happened: the reliable channel retransmitted on both
	// sides, duplicates were absorbed, and the journal both aborted
	// mid-setup calls (first crash) and restored bound calls (second).
	for _, r := range []*testbed.Router{ra, rb} {
		reg := r.Stack.M.Obs.Snapshot()
		if reg.Count("sighost.rel.retransmits") == 0 {
			t.Errorf("%s never retransmitted under 1%% signaling loss", r.Stack.Addr)
		}
		if reg.Count("sighost.rel.dups") == 0 {
			t.Errorf("%s never absorbed a duplicate", r.Stack.Addr)
		}
	}
	reg := rb.Stack.M.Obs.Snapshot()
	if got := reg.Count("sighost.crashes"); got != 2 {
		t.Errorf("sighost.crashes = %d, want 2", got)
	}
	if got := reg.Count("sighost.recoveries"); got != 2 {
		t.Errorf("sighost.recoveries = %d, want 2", got)
	}
	if reg.Count("sighost.recovered.bound") == 0 {
		t.Error("no bound call survived a crash via the journal")
	}
	if reg.Count("sighost.recovery.aborted_calls") == 0 {
		t.Error("no mid-setup call was aborted by recovery")
	}
	// Zero leaked state: transient lists, cookies, and active calls all
	// drained on both sides.
	for _, r := range []*testbed.Router{ra, rb} {
		if msg := testbed.Quiesced(r); msg != "" {
			t.Errorf("leak: %s", msg)
		}
		if got := r.Stack.M.Obs.Snapshot().Count("sighost.calls.active"); got != 0 {
			t.Errorf("%s: sighost.calls.active = %d after drain", r.Stack.Addr, got)
		}
	}
	// Failed calls failed fast with the recovery reason, not by running
	// out a 60 s client timeout, and left span trees in the recorder.
	for _, sr := range []*testbed.StormResult{res, resH} {
		for i, r := range sr.Results {
			if !r.OK && !strings.Contains(r.Err.Error(), "lost in signaling restart") &&
				!strings.Contains(r.Err.Error(), "retransmit budget exhausted") &&
				!strings.Contains(r.Err.Error(), "signaling entity restarted") {
				t.Errorf("call %d failed outside the recovery paths: %v", i, r.Err)
			}
		}
	}
	if res.Failed+resH.Failed > 0 && len(n.FlightDumps) == 0 {
		t.Errorf("%d calls failed but the flight recorder dumped nothing", res.Failed+resH.Failed)
	}
	n.E.Shutdown()
}

// TestChaosSameSeedByteIdentical runs the identical chaos soak twice
// and demands byte-identical fingerprints: every fault draw, every
// retransmission, every recovery is replayable.
func TestChaosSameSeedByteIdentical(t *testing.T) {
	first, _, _, n1, _, _ := chaosStorm(t, 11)
	n1.E.Shutdown()
	second, _, _, n2, _, _ := chaosStorm(t, 11)
	n2.E.Shutdown()
	if first != second {
		a, b := strings.Split(first, "\n"), strings.Split(second, "\n")
		for i := 0; i < len(a) && i < len(b); i++ {
			if a[i] != b[i] {
				t.Fatalf("same-seed chaos runs diverge at line %d:\n run1: %s\n run2: %s", i+1, a[i], b[i])
			}
		}
		t.Fatalf("same-seed chaos runs diverge in length: %d vs %d lines", len(a), len(b))
	}
}

// TestZeroProbPlaneInvisibleEndToEnd is the golden-preservation claim
// at deployment scale: attaching a fault plane whose probabilities are
// all zero to every hook (IP links, fabric trunks, pseudo-devices) must
// leave the full storm fingerprint byte-identical to a plane-free run.
func TestZeroProbPlaneInvisibleEndToEnd(t *testing.T) {
	run := func(attachZeroPlane bool) string {
		n, ra, rb, err := testbed.NewTestbed(testbed.Options{
			Seed:          5,
			DeviceBuffers: kern.FixedDeviceBuffers,
			FDTableSize:   kern.FixedFDTableSize,
		})
		if err != nil {
			t.Fatal(err)
		}
		if attachZeroPlane {
			fp := faults.NewPlane(faults.Config{})
			n.IPNet.Faults = fp
			n.Fabric.Faults = fp
			ra.Stack.M.Dev.SetFaults(fp)
			rb.Stack.M.Dev.SetFaults(fp)
		}
		testbed.StartEchoServer(rb, "storm", 6000)
		n.E.RunUntil(time.Second)
		res := testbed.CallStorm(ra, "ucb.rt", "storm", testbed.StormConfig{
			Count: 30, Hold: 250 * time.Millisecond, FramesPerCall: 2,
		})
		n.E.RunUntil(n.E.Now() + 4*n.CM.BindTimeout)
		var sb strings.Builder
		fmt.Fprintf(&sb, "storm: launched=%d ok=%d failed=%d min=%v max=%v total=%v\n",
			res.Launched, res.Succeeded, res.Failed, res.MinSetup, res.MaxSetup, res.TotalSetup)
		fmt.Fprintf(&sb, "report:\n%s", n.Snapshot().String())
		n.E.Shutdown()
		return sb.String()
	}
	plain := run(false)
	planed := run(true)
	if plain != planed {
		a, b := strings.Split(plain, "\n"), strings.Split(planed, "\n")
		for i := 0; i < len(a) && i < len(b); i++ {
			if a[i] != b[i] {
				t.Fatalf("zero-prob plane perturbed the run at line %d:\n bare: %s\n plane: %s", i+1, a[i], b[i])
			}
		}
		t.Fatalf("zero-prob plane changed run length: %d vs %d lines", len(a), len(b))
	}
}
