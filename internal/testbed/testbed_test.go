package testbed_test

import (
	"testing"
	"time"

	"xunet/internal/kern"
	"xunet/internal/testbed"
	"xunet/internal/xswitch"
)

// drain runs the engine long enough for a storm plus teardown and bind
// timers to settle.
func drain(n *testbed.Net) {
	n.E.RunUntil(n.E.Now() + 4*n.CM.BindTimeout)
}

// TestE4_CallStormRouterToRouter is the §10 robustness workload: a
// hundred calls initiated as fast as possible, held one second, torn
// down — with the fixed configuration (80 buffers, fd table 100).
func TestE4_CallStormRouterToRouter(t *testing.T) {
	n, ra, rb, err := testbed.NewTestbed(testbed.Options{
		DeviceBuffers: kern.FixedDeviceBuffers,
		FDTableSize:   kern.FixedFDTableSize,
	})
	if err != nil {
		t.Fatal(err)
	}
	testbed.StartEchoServer(rb, "storm", 6000)
	n.E.RunUntil(time.Second) // let the server register
	res := testbed.CallStorm(ra, "ucb.rt", "storm", testbed.StormConfig{
		Count: 100, Hold: time.Second, FramesPerCall: 1,
	})
	drain(n)
	if res.Succeeded != 100 {
		t.Fatalf("succeeded %d of 100 (failed %d)", res.Succeeded, res.Failed)
	}
	for _, r := range []*testbed.Router{ra, rb} {
		if msg := testbed.Quiesced(r); msg != "" {
			t.Fatal(msg)
		}
	}
	if n.Fabric.ActiveVCs() != 2 {
		t.Fatalf("VCs leaked: %d active", n.Fabric.ActiveVCs())
	}
	if ra.Stack.M.Dev.Lost != 0 || rb.Stack.M.Dev.Lost != 0 {
		t.Fatalf("pseudo-device losses with 80 buffers: %d/%d",
			ra.Stack.M.Dev.Lost, rb.Stack.M.Dev.Lost)
	}
	n.E.Shutdown()
}

// TestE4_CallStormHostToRouter runs the same workload from an
// IP-connected host ("this workload has been run successfully between
// routers as well as between a host and a router").
func TestE4_CallStormHostToRouter(t *testing.T) {
	n, ra, rb, _ := testbed.NewTestbed(testbed.Options{
		DeviceBuffers: kern.FixedDeviceBuffers,
		FDTableSize:   kern.FixedFDTableSize,
	})
	host, err := n.AddHost("mh.h1", ra)
	if err != nil {
		t.Fatal(err)
	}
	testbed.StartEchoServer(rb, "storm", 6000)
	n.E.RunUntil(time.Second)
	res := testbed.CallStorm(host, "ucb.rt", "storm", testbed.StormConfig{
		Count: 50, Hold: time.Second, FramesPerCall: 1,
	})
	drain(n)
	if res.Succeeded != 50 {
		t.Fatalf("succeeded %d of 50 (failed %d)", res.Succeeded, res.Failed)
	}
	for _, r := range []*testbed.Router{ra, rb} {
		if msg := testbed.Quiesced(r); msg != "" {
			t.Fatal(msg)
		}
	}
	n.E.Shutdown()
}

// TestE4_KillDuringStorm terminates every third client mid-call; all
// state must still drain ("The network and signaling state were always
// correctly restored").
func TestE4_KillDuringStorm(t *testing.T) {
	n, ra, rb, _ := testbed.NewTestbed(testbed.Options{
		DeviceBuffers: kern.FixedDeviceBuffers,
		FDTableSize:   kern.FixedFDTableSize,
	})
	testbed.StartEchoServer(rb, "storm", 6000)
	n.E.RunUntil(time.Second)
	res := testbed.CallStorm(ra, "ucb.rt", "storm", testbed.StormConfig{
		Count: 60, Hold: 2 * time.Second, FramesPerCall: 1,
		KillEvery: 3, KillAfter: 700 * time.Millisecond,
	})
	drain(n)
	if res.Killed == 0 {
		t.Fatal("nothing was killed")
	}
	for _, r := range []*testbed.Router{ra, rb} {
		if msg := testbed.Quiesced(r); msg != "" {
			t.Fatal(msg)
		}
	}
	if n.Fabric.ActiveVCs() != 2 {
		t.Fatalf("VCs leaked after kills: %d", n.Fabric.ActiveVCs())
	}
	n.E.Shutdown()
}

// TestE5_EightBuffersLoseBindIndications reproduces the first scaling
// problem of §10: with only eight pseudo-device buffers, a burst of
// simultaneous connections loses bind indications.
func TestE5_EightBuffersLoseBindIndications(t *testing.T) {
	n, ra, rb, _ := testbed.NewTestbed(testbed.Options{
		DeviceBuffers: 8, // the original, broken configuration
		FDTableSize:   kern.FixedFDTableSize,
	})
	testbed.StartEchoServer(rb, "storm", 6000)
	n.E.RunUntil(time.Second)
	res := testbed.CallStorm(ra, "ucb.rt", "storm", testbed.StormConfig{
		Count: 100, Hold: time.Second,
	})
	drain(n)
	lost := ra.Stack.M.Dev.Lost + rb.Stack.M.Dev.Lost
	if lost == 0 {
		t.Fatal("no pseudo-device message loss with 8 buffers under a 100-call burst")
	}
	t.Logf("8 buffers: %d messages lost, %d/%d calls OK",
		lost, res.Succeeded, res.Launched)
	n.E.Shutdown()
}

// TestE5_EightyBuffersSuffice is the paper's fix: "Our current
// implementation has eighty buffers, which has proved to be adequate."
func TestE5_EightyBuffersSuffice(t *testing.T) {
	n, ra, rb, _ := testbed.NewTestbed(testbed.Options{
		DeviceBuffers: 80,
		FDTableSize:   kern.FixedFDTableSize,
	})
	testbed.StartEchoServer(rb, "storm", 6000)
	n.E.RunUntil(time.Second)
	res := testbed.CallStorm(ra, "ucb.rt", "storm", testbed.StormConfig{
		Count: 100, Hold: time.Second,
	})
	drain(n)
	if lost := ra.Stack.M.Dev.Lost + rb.Stack.M.Dev.Lost; lost != 0 {
		t.Fatalf("%d messages lost with 80 buffers", lost)
	}
	if res.Succeeded != 100 {
		t.Fatalf("succeeded %d of 100", res.Succeeded)
	}
	n.E.Shutdown()
}

// TestE5_SmallFDTableStallsEstablishment reproduces the second scaling
// problem: TIME_WAIT keeps per-call descriptors busy for 2·MSL, so a
// 20-entry table clamps how many clients can establish simultaneously.
func TestE5_SmallFDTableStallsEstablishment(t *testing.T) {
	n, ra, rb, _ := testbed.NewTestbed(testbed.Options{
		DeviceBuffers: kern.FixedDeviceBuffers,
		FDTableSize:   kern.DefaultFDTableSize, // 20
	})
	testbed.StartEchoServer(rb, "storm", 6000)
	n.E.RunUntil(time.Second)
	res := testbed.CallStorm(ra, "ucb.rt", "storm", testbed.StormConfig{
		Count: 60, Hold: time.Second,
	})
	drain(n)
	drain(n)
	// With ~19 usable slots per 2·MSL window, establishment stretches
	// far beyond the unconstrained case; stragglers hit the library
	// timeout.
	if res.MaxSetup < 10*time.Second && res.Failed == 0 {
		t.Fatalf("no stall observed: max setup %v, failed %d", res.MaxSetup, res.Failed)
	}
	t.Logf("fd=20: %d/%d ok, setup min %v avg %v max %v",
		res.Succeeded, res.Launched, res.MinSetup, res.Avg(), res.MaxSetup)
	n.E.Shutdown()
}

// TestE5_LargeFDTableFixesStall: "we increased the kernel's per-process
// file descriptor table size to 100."
func TestE5_LargeFDTableFixesStall(t *testing.T) {
	n, ra, rb, _ := testbed.NewTestbed(testbed.Options{
		DeviceBuffers: kern.FixedDeviceBuffers,
		FDTableSize:   kern.FixedFDTableSize, // 100
	})
	testbed.StartEchoServer(rb, "storm", 6000)
	n.E.RunUntil(time.Second)
	res := testbed.CallStorm(ra, "ucb.rt", "storm", testbed.StormConfig{
		Count: 60, Hold: time.Second,
	})
	drain(n)
	if res.Failed != 0 {
		t.Fatalf("failed %d with fd table 100", res.Failed)
	}
	// Establishment is still serialized by per-call logging in the
	// signaling entities (~310 ms/call for 60 calls ≈ 19 s for the
	// last), but nothing stalls on descriptor scarcity: no call waits a
	// TIME_WAIT window (30 s), unlike the fd=20 run.
	if res.MaxSetup > 25*time.Second {
		t.Fatalf("establishment still stalled: max %v", res.MaxSetup)
	}
	t.Logf("fd=100: %d/%d ok, setup avg %v max %v",
		res.Succeeded, res.Launched, res.Avg(), res.MaxSetup)
	n.E.Shutdown()
}

// TestE5_TwoHundredOpenConnections: "With this change... we were able
// to establish and keep open two hundred connections between two
// routers."
func TestE5_TwoHundredOpenConnections(t *testing.T) {
	n, ra, rb, _ := testbed.NewTestbed(testbed.Options{
		DeviceBuffers: kern.FixedDeviceBuffers,
		FDTableSize:   kern.FixedFDTableSize,
	})
	// Two servers so no single process accepts all 200 establishments
	// inside one TIME_WAIT window.
	testbed.StartEchoServer(rb, "svc-a", 6000)
	testbed.StartEchoServer(rb, "svc-b", 6001)
	n.E.RunUntil(time.Second)
	hold := 5 * time.Minute
	// Launches are paced just above the signaling entities' per-call
	// service time so requests do not pile up in the daemon (an
	// unpaced 200-call burst synchronizes all completions — and hence
	// all closes — into one wave that overflows even the 80-buffer
	// pseudo-device; see TestE5_EightBuffersLoseBindIndications for
	// the overload case).
	resA := testbed.CallStorm(ra, "ucb.rt", "svc-a", testbed.StormConfig{
		Count: 100, Hold: hold, BasePort: 20000, Stagger: time.Second,
	})
	resB := testbed.CallStorm(ra, "ucb.rt", "svc-b", testbed.StormConfig{
		Count: 100, Hold: hold, BasePort: 21000, Stagger: time.Second,
	})
	// Run until every call is up but none has been torn down.
	// (Success counters only update when clients finish their holds,
	// so mid-hold progress is read from the fabric.) Launches spread
	// over 100 s and the first hold expires at ~5 min.
	n.E.RunUntil(4 * time.Minute)
	open := n.Fabric.ActiveVCs() - 2 // minus signaling PVCs
	if open != 200 {
		t.Fatalf("open circuits = %d, want 200", open)
	}
	// Now let the holds expire and verify everything drains.
	n.E.RunUntil(n.E.Now() + hold + 4*n.CM.BindTimeout)
	if resA.Succeeded+resB.Succeeded != 200 {
		t.Fatalf("established %d+%d of 200 (failed %d+%d)",
			resA.Succeeded, resB.Succeeded, resA.Failed, resB.Failed)
	}
	if n.Fabric.ActiveVCs() != 2 {
		t.Fatalf("VCs after teardown = %d", n.Fabric.ActiveVCs())
	}
	for _, r := range []*testbed.Router{ra, rb} {
		if msg := testbed.Quiesced(r); msg != "" {
			t.Fatal(msg)
		}
	}
	n.E.Shutdown()
}

// TestXunetFiveSiteCalls exercises the nationwide topology: a call from
// every site to every other site.
func TestXunetFiveSiteCalls(t *testing.T) {
	n, routers, err := testbed.NewXunet(testbed.Options{
		DeviceBuffers: kern.FixedDeviceBuffers,
		FDTableSize:   kern.FixedFDTableSize,
	})
	if err != nil {
		t.Fatal(err)
	}
	for site, r := range routers {
		testbed.StartEchoServer(r, "echo-"+string(site), 6000)
	}
	n.E.RunUntil(time.Second)
	type pair struct{ from, to xswitch.XunetSite }
	var results []*testbed.StormResult
	var pairs []pair
	port := uint16(30000)
	for _, a := range xswitch.XunetSites() {
		for _, b := range xswitch.XunetSites() {
			if a == b {
				continue
			}
			res := testbed.CallStorm(routers[a], routers[b].Stack.Addr, "echo-"+string(b), testbed.StormConfig{
				Count: 1, Hold: time.Second, FramesPerCall: 2, BasePort: port,
			})
			port += 10
			results = append(results, res)
			pairs = append(pairs, pair{a, b})
		}
	}
	drain(n)
	for i, res := range results {
		if res.Succeeded != 1 {
			t.Errorf("%s -> %s failed: %+v", pairs[i].from, pairs[i].to, res.Results[0].Err)
		}
	}
	for _, r := range routers {
		if msg := testbed.Quiesced(r); msg != "" {
			t.Fatal(msg)
		}
	}
	n.E.Shutdown()
}

// TestStormDeterminism: same seed, same outcome — the simulation is
// reproducible end to end.
func TestStormDeterminism(t *testing.T) {
	run := func() (int, time.Duration) {
		n, ra, rb, _ := testbed.NewTestbed(testbed.Options{Seed: 42})
		testbed.StartEchoServer(rb, "det", 6000)
		n.E.RunUntil(time.Second)
		res := testbed.CallStorm(ra, "ucb.rt", "det", testbed.StormConfig{
			Count: 20, Hold: 500 * time.Millisecond, FramesPerCall: 1,
		})
		drain(n)
		n.E.Shutdown()
		return res.Succeeded, res.TotalSetup
	}
	s1, t1 := run()
	s2, t2 := run()
	if s1 != s2 || t1 != t2 {
		t.Fatalf("same-seed runs diverged: (%d,%v) vs (%d,%v)", s1, t1, s2, t2)
	}
}
