package testbed

import (
	"encoding/json"
	"fmt"
	"sort"
	"time"

	"xunet/internal/atm"
	"xunet/internal/core"
	"xunet/internal/faults"
	"xunet/internal/kern"
	"xunet/internal/memnet"
	"xunet/internal/obs/tseries"
	"xunet/internal/prof"
	"xunet/internal/qos"
	"xunet/internal/signaling"
	"xunet/internal/sim"
	"xunet/internal/trace"
	"xunet/internal/ulib"
	"xunet/internal/xswitch"
)

// This file assembles the sharded deployments of PR 7: the topology is
// partitioned into domains — one switch plus its sighost routers — and
// each domain runs on its own shard of a sim.ShardGroup. Inter-domain
// trunks are the shard boundaries; their propagation delay funds the
// group's conservative lookahead. Everything that records or draws
// randomness at runtime (trace collector, fault plane, tseries store)
// is per-domain, so a run's bytes are independent of the worker count.

// Domain is one shard of a sharded deployment: a switch, its routers,
// and the domain-local observation planes.
type Domain struct {
	Index  int
	E      *sim.Engine
	Switch *xswitch.Switch
	// TraceC is this domain's causal-trace collector; spans recorded by
	// this shard land here, never in a shared collector, so collection
	// order is deterministic.
	TraceC  *trace.Collector
	Faults  *faults.Plane
	TS      *tseries.Store
	Routers []*Router
	// FlightDumps and HealthEvents accumulate this domain's dumps and
	// watermark edges (the per-domain analogue of Net's fields).
	FlightDumps  []string
	HealthEvents []tseries.HealthEvent

	// crossVC is the pre-provisioned carrier circuit from this domain's
	// first router to the next domain's (nil when Domains == 1).
	crossVC *xswitch.VC
	// CrossDelivered counts carrier frames received from the previous
	// domain during a sharded storm.
	CrossDelivered uint64
}

// ShardedNet is a deployment partitioned across a shard group.
type ShardedNet struct {
	G       *sim.ShardGroup
	CM      sim.CostModel
	Fabric  *xswitch.Fabric
	IPNet   *memnet.Network
	Domains []*Domain
	// Prof is the group-wide execution profiler (nil unless Options.Prof
	// or ProfSeries armed it): one EngineProf per shard plus the window/
	// stall/matrix accounting, served by every router's MGMT prof views.
	Prof *prof.Profiler
	opts Options
}

// NewSharded builds a sharded deployment from the storm config's
// topology fields: cfg.Domains switches in a ring joined by DS3 trunks
// of cfg.TrunkDelay, each with cfg.SighostsPerDomain routers, the full
// sighost signaling mesh, and (when Domains > 1) one pre-provisioned
// cross-domain carrier circuit per adjacent pair. Build-time assembly is
// single-threaded; the fabric is sealed against cross-shard setup
// before the caller runs the group.
func NewSharded(opts Options, cfg StormConfig) (*ShardedNet, error) {
	opts = opts.withDefaults()
	if cfg.Domains <= 0 {
		cfg.Domains = 1
	}
	if cfg.SighostsPerDomain <= 0 {
		cfg.SighostsPerDomain = 1
	}
	if cfg.Domains > 1 && cfg.TrunkDelay <= 0 {
		cfg.TrunkDelay = 2 * time.Millisecond
	}
	lookahead := time.Duration(0)
	if cfg.Domains > 1 {
		lookahead = cfg.TrunkDelay
	}
	g := sim.NewShardGroup(opts.Seed, cfg.Domains, lookahead)
	var pf *prof.Profiler
	if opts.Prof || opts.ProfSeries {
		// Attach before switches, trunks and routers are built so their
		// construction-time label interning lands in each shard's table.
		pf = prof.New()
		g.AttachProfiler(pf)
	}
	sn := &ShardedNet{
		G:      g,
		CM:     sim.DefaultCostModel(),
		Fabric: xswitch.NewFabric(g.Shard(0)),
		IPNet:  memnet.New(g.Shard(0)),
		Prof:   pf,
		opts:   opts,
	}
	for i := 0; i < cfg.Domains; i++ {
		e := g.Shard(i)
		sw, err := sn.Fabric.AddSwitchOn(fmt.Sprintf("sw.d%d", i), e)
		if err != nil {
			g.Close()
			return nil, err
		}
		dom := &Domain{Index: i, E: e, Switch: sw, TraceC: trace.NewCollector(e.Now)}
		dom.TraceC.SetEnabled(!opts.DisableTracing)
		if opts.TraceSampleEvery > 1 {
			dom.TraceC.SetSampleEvery(opts.TraceSampleEvery)
		}
		d := dom
		dom.TraceC.OnDump(func(t *trace.Trace, tree string) {
			d.FlightDumps = append(d.FlightDumps, tree)
		})
		sw.SetTrace(dom.TraceC)
		if opts.Faults != nil {
			fc := *opts.Faults
			if fc.Seed == 0 {
				fc.Seed = opts.Seed*0x9E3779B97F4A7C15 + 0xC4A05
			}
			// Domain 0 keeps the base fault seed (the 1-domain case is
			// the flat plane verbatim); others draw decorrelated streams.
			fc.Seed = sim.ShardSeed(fc.Seed, i)
			dom.Faults = faults.NewPlane(fc)
			dom.Faults.AttachTrace(dom.TraceC, e.Now)
			sw.SetFaults(dom.Faults)
		}
		if opts.TSeries != nil {
			dom.TS = tseries.New(*opts.TSeries)
		}
		sn.Domains = append(sn.Domains, dom)
	}
	// Ring trunks between adjacent domains — the shard boundaries.
	for i := 0; i+1 < cfg.Domains; i++ {
		sn.Fabric.ConnectSwitches(sn.Domains[i].Switch, sn.Domains[i+1].Switch, xswitch.DS3(cfg.TrunkDelay))
	}
	if cfg.Domains > 2 {
		sn.Fabric.ConnectSwitches(sn.Domains[cfg.Domains-1].Switch, sn.Domains[0].Switch, xswitch.DS3(cfg.TrunkDelay))
	}
	// Routers, then the full signaling mesh (all build-time, so the
	// cross-domain PVCs may still cross shards).
	for _, dom := range sn.Domains {
		for k := 0; k < cfg.SighostsPerDomain; k++ {
			addr := atm.Addr(fmt.Sprintf("d%d.r%d", dom.Index, k))
			if _, err := sn.addRouter(dom, addr); err != nil {
				g.Close()
				return nil, err
			}
		}
	}
	var all []*Router
	for _, dom := range sn.Domains {
		all = append(all, dom.Routers...)
	}
	for i, a := range all {
		for _, b := range all[:i] {
			if err := signaling.ConnectSighosts(a.Sig, b.Sig); err != nil {
				g.Close()
				return nil, err
			}
		}
	}
	// Cross-domain carrier circuits: domain i's first router to domain
	// i+1's, provisioned now so runtime data can cross boundaries
	// without any cross-shard control action.
	if cfg.Domains > 1 {
		for i, dom := range sn.Domains {
			next := sn.Domains[(i+1)%len(sn.Domains)]
			src, dst := dom.Routers[0], next.Routers[0]
			vc, err := sn.Fabric.SetupVC(src.Stack.Addr, dst.Stack.Addr, qos.BestEffortQoS)
			if err != nil {
				g.Close()
				return nil, fmt.Errorf("testbed: cross carrier d%d->d%d: %w", i, next.Index, err)
			}
			src.Sig.SH.AllowPVC(vc.SrcVCI)
			dst.Sig.SH.AllowPVC(vc.DstVCI)
			dom.crossVC = vc
		}
	}
	sn.Fabric.SealCrossShard()
	return sn, nil
}

// addRouter is Net.AddRouter transposed to a domain: every plane the
// router touches — engine, trace collector, fault plane, tseries store
// — is the domain's own.
func (sn *ShardedNet) addRouter(dom *Domain, addr atm.Addr) (*Router, error) {
	k := len(dom.Routers) + 1
	ip, err := sn.IPNet.AddNodeOn(string(addr), memnet.IP4(10, byte(dom.Index), byte(k), 1), dom.E)
	if err != nil {
		return nil, err
	}
	stack, err := core.NewRouter(dom.E, sn.CM, core.RouterConfig{
		Name: string(addr), Addr: addr, IP: ip, Fabric: sn.Fabric, Switch: dom.Switch,
		DeviceBuffers: sn.opts.DeviceBuffers, FDTableSize: sn.opts.FDTableSize,
	})
	if err != nil {
		return nil, err
	}
	stack.M.TraceC = dom.TraceC
	registerTraceStats(stack.M.Obs, dom.TraceC)
	ep := sn.Fabric.Endpoint(addr)
	ep.SetTrace(dom.TraceC)
	r := &Router{Stack: stack, site: dom.Index}
	r.Sig = signaling.StartSim(stack, sn.Fabric)
	if sn.opts.DisableCallLogging {
		r.Sig.SH.SetLogging(false)
	}
	if dom.Faults != nil {
		rel := sn.opts.Rel
		if rel.RTO <= 0 {
			rel = signaling.DefaultRelConfig()
		}
		r.Sig.SH.EnableReliability(rel)
		r.Sig.SH.EnableJournal(0)
		r.Sig.Faults = dom.Faults
		ep.SetFaults(dom.Faults)
		ip.SetFaults(dom.Faults)
		stack.M.Dev.SetFaults(dom.Faults)
		fp := dom.Faults
		r.Sig.SH.FaultsInfo = func() string { return fp.Obs.Snapshot().Text() }
		r.Sig.SH.FaultsJSON = func() string { return fp.Obs.Snapshot().JSON() }
	}
	if dom.TS != nil {
		dom.TS.TrackRegistry(string(addr)+".", stack.M.Obs)
		r.Sig.SH.TSeriesInfo = dom.TS.Text
		r.Sig.SH.TSeriesJSON = dom.TS.JSON
		r.Sig.SH.HealthInfo = dom.TS.HealthText
		r.Sig.SH.HealthJSON = dom.TS.HealthJSON
	}
	if sn.Prof != nil {
		// Any router — any domain — serves the group-wide profile: the
		// snapshot reads are atomic, so cross-shard queries are safe.
		r.Sig.SH.ProfInfo = sn.Prof.Text
		r.Sig.SH.ProfJSON = sn.Prof.JSON
		r.Sig.SH.ProfFlame = sn.Prof.FlameFolded
	}
	r.Lib = ulib.New(stack, ip.Addr)
	dom.Routers = append(dom.Routers, r)
	return r, nil
}

// StartTSeries begins every domain's scrape tick chain, each on its own
// shard engine over only the series its shard owns. No-op unless
// Options.TSeries armed the stores.
func (sn *ShardedNet) StartTSeries(until time.Duration) {
	for _, dom := range sn.Domains {
		if dom.TS == nil {
			continue
		}
		sn.Fabric.RegisterTSeriesOwned(dom.TS, dom.E)
		sn.IPNet.RegisterTSeriesOwned(dom.TS, dom.E)
		for _, r := range DefaultHealthRules() {
			dom.TS.AddRule(r)
		}
		if sn.Prof != nil {
			// Engine-progress series, sampled in engine context at fixed
			// virtual-history points — deterministic, so merged exports may
			// carry it. Domain index in the name keeps merged series disjoint.
			dom.TS.TrackRateFunc(fmt.Sprintf("sim.shard.%d.events", dom.Index), dom.E.EventsExecuted, 0, 0)
			if sn.opts.ProfSeries {
				// Wall-clock stall per tick plus the hot-shard rule: wall
				// time is nondeterministic by nature, so this series is for
				// live monitoring only (Options.ProfSeries documents it).
				gp := sn.Prof.Group(len(sn.Domains))
				i := dom.Index
				dom.TS.TrackRateFunc(fmt.Sprintf("sim.shard.%d.stall.ns", i),
					func() uint64 { return uint64(gp.StallNS(i)) }, 0, 0)
				dom.TS.AddRule(tseries.Rule{
					Name: "hot-shard-stall", Series: "sim.shard.*.stall.ns",
					Threshold: HotShardStallNS, ForTicks: 1,
				})
			}
		}
		d := dom
		dom.TS.OnHealthEvent(func(ev tseries.HealthEvent) {
			d.HealthEvents = append(d.HealthEvents, ev)
			if ev.State == "fire" {
				d.TraceC.DumpRecent(4, ev.Rule)
			}
		})
		interval := dom.TS.Interval()
		e, ts := dom.E, dom.TS
		var tick func()
		tick = func() {
			ts.Tick(e.Now())
			if e.Now()+interval <= until {
				e.Schedule(interval, tick)
			}
		}
		e.Schedule(interval, tick)
	}
}

// StartTrunkFlapping begins each domain's intra-domain flap schedule
// (boundary trunks never flap; see xswitch.StartFlapping).
func (sn *ShardedNet) StartTrunkFlapping(until time.Duration) {
	sn.Fabric.StartFlapping(until)
}

// RunUntil advances the whole group to virtual time t.
func (sn *ShardedNet) RunUntil(t time.Duration) { sn.G.RunUntil(t) }

// Close joins every shard's goroutines. Always call it (tests defer
// it): the sharded engine owns worker and process goroutines that the
// old rely-on-drain discipline would leak.
func (sn *ShardedNet) Close() { sn.G.Close() }

// MergedExport merges every domain's time-series export into one
// deterministic snapshot: series name-sorted across domains (names are
// disjoint by construction — trunks, links and registries are owned by
// exactly one shard), rule states re-sorted the same way, events
// ordered by time then domain. Ticks and interval come from domain 0.
func (sn *ShardedNet) MergedExport() tseries.Export {
	var out tseries.Export
	type domEvent struct {
		ev  tseries.HealthEvent
		dom int
	}
	var evs []domEvent
	for _, dom := range sn.Domains {
		if dom.TS == nil {
			continue
		}
		ex := dom.TS.Export()
		if out.Interval == 0 {
			out.Interval, out.Ticks = ex.Interval, ex.Ticks
		}
		out.Series = append(out.Series, ex.Series...)
		out.Rules = append(out.Rules, ex.Rules...)
		for _, ev := range ex.Events {
			evs = append(evs, domEvent{ev: ev, dom: dom.Index})
		}
	}
	sort.Slice(out.Series, func(i, j int) bool { return out.Series[i].Name < out.Series[j].Name })
	sort.Slice(out.Rules, func(i, j int) bool {
		if out.Rules[i].Rule != out.Rules[j].Rule {
			return out.Rules[i].Rule < out.Rules[j].Rule
		}
		return out.Rules[i].Series < out.Rules[j].Series
	})
	sort.SliceStable(evs, func(i, j int) bool {
		if evs[i].ev.At != evs[j].ev.At {
			return evs[i].ev.At < evs[j].ev.At
		}
		return evs[i].dom < evs[j].dom
	})
	for _, de := range evs {
		out.Events = append(out.Events, de.ev)
	}
	return out
}

// MergedTSeriesJSON renders the merged export as compact JSON —
// byte-identical for same-seed runs at any worker count.
func (sn *ShardedNet) MergedTSeriesJSON() string {
	b, err := json.Marshal(sn.MergedExport())
	if err != nil {
		return "{}"
	}
	return string(b)
}

// ShardedStormResult aggregates one sharded storm.
type ShardedStormResult struct {
	// PerDomain holds each domain's storm result, indexed by domain.
	PerDomain []*StormResult
}

// Launched/Succeeded/Failed/Killed sum the per-domain buckets.
func (r *ShardedStormResult) Totals() (launched, succeeded, failed, killed int) {
	for _, d := range r.PerDomain {
		launched += d.Launched
		succeeded += d.Succeeded
		failed += d.Failed
		killed += d.Killed
	}
	return
}

// ShardedStorm launches the E4 workload on every domain at once: each
// domain's last router storms calls against an echo server on its first
// router (intra-domain — runtime SVC setup never crosses a shard), and
// when carriers are provisioned, cfg.CrossFrames data frames ride each
// cross-domain circuit so boundary crossings stay on the measured path.
// cfg.Count is the total call count, split evenly across domains.
func ShardedStorm(sn *ShardedNet, cfg StormConfig) *ShardedStormResult {
	if cfg.Count <= 0 {
		cfg.Count = 100
	}
	res := &ShardedStormResult{}
	perDomain := cfg.Count / len(sn.Domains)
	if perDomain <= 0 {
		perDomain = 1
	}
	for _, dom := range sn.Domains {
		server := dom.Routers[0]
		client := dom.Routers[len(dom.Routers)-1]
		StartEchoServer(server, "storm", 6000)
		dcfg := cfg
		dcfg.Count = perDomain
		if dcfg.BasePort == 0 {
			dcfg.BasePort = 20000
		}
		res.PerDomain = append(res.PerDomain, CallStorm(client, server.Stack.Addr, "storm", dcfg))
		if dom.crossVC != nil && cfg.CrossFrames > 0 {
			sn.startCrossCarrier(dom, cfg)
		}
	}
	return res
}

// startCrossCarrier spawns the sink (next domain) and source (this
// domain) processes for one pre-provisioned cross-domain circuit.
func (sn *ShardedNet) startCrossCarrier(dom *Domain, cfg StormConfig) {
	vc := dom.crossVC
	next := sn.Domains[(dom.Index+1)%len(sn.Domains)]
	sink := next.Routers[0].Stack
	sink.Spawn("cross-sink", func(p *kern.Proc) {
		sock, err := sink.PF.Socket(p)
		if err != nil {
			return
		}
		if err := sock.Bind(vc.DstVCI, 0); err != nil {
			return
		}
		for {
			if _, err := sock.Recv(); err != nil {
				return
			}
			next.CrossDelivered++
		}
	})
	src := dom.Routers[0].Stack
	frameBytes := cfg.FrameBytes
	if frameBytes < 64 {
		frameBytes = 64
	}
	src.Spawn("cross-source", func(p *kern.Proc) {
		sock, err := src.PF.Socket(p)
		if err != nil {
			return
		}
		if err := sock.Connect(vc.SrcVCI, 0); err != nil {
			return
		}
		p.SP.Sleep(50 * time.Millisecond) // let the sink bind
		payload := make([]byte, frameBytes)
		for i := 0; i < cfg.CrossFrames; i++ {
			_ = sock.Send(payload)
			p.SP.Sleep(5 * time.Millisecond)
		}
		p.SP.Park() // hold the circuit open for the run
	})
}
