package testbed_test

import (
	"encoding/json"
	"fmt"
	"strings"
	"testing"
	"time"

	"xunet/internal/kern"
	"xunet/internal/obs"
	"xunet/internal/testbed"
)

// The engine-pooling and cell-train optimizations must not perturb
// event order: two runs of the same seeded workload have to produce the
// same virtual history down to the byte. stormFingerprint renders every
// observable artifact of one call-storm run — the golden sighost trace
// lines, the typed obs event rings (with virtual timestamps and
// sequence numbers), the storm result, and the final registry
// snapshots — into a single string for comparison.
func stormFingerprint(t *testing.T, seed uint64) string {
	t.Helper()
	n, ra, rb, err := testbed.NewTestbed(testbed.Options{
		Seed:          seed,
		DeviceBuffers: kern.FixedDeviceBuffers,
		FDTableSize:   kern.FixedFDTableSize,
	})
	if err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	ra.Stack.M.Obs.EnableTrace("sighost", true)
	rb.Stack.M.Obs.EnableTrace("sighost", true)
	ra.Sig.SH.Trace = func(l string) { fmt.Fprintf(&sb, "A %s\n", l) }
	rb.Sig.SH.Trace = func(l string) { fmt.Fprintf(&sb, "B %s\n", l) }
	testbed.StartEchoServer(rb, "storm", 6000)
	n.E.RunUntil(time.Second)
	res := testbed.CallStorm(ra, "ucb.rt", "storm", testbed.StormConfig{
		Count: 30, Hold: 250 * time.Millisecond, FramesPerCall: 2,
		KillEvery: 7, KillAfter: 40 * time.Millisecond,
	})
	n.E.RunUntil(n.E.Now() + 4*n.CM.BindTimeout)
	fmt.Fprintf(&sb, "storm: launched=%d ok=%d failed=%d killed=%d min=%v max=%v total=%v\n",
		res.Launched, res.Succeeded, res.Failed, res.Killed,
		res.MinSetup, res.MaxSetup, res.TotalSetup)
	for _, rr := range []struct {
		name string
		r    *testbed.Router
	}{{"mh.rt", ra}, {"ucb.rt", rb}} {
		ring := rr.r.Stack.M.Obs.Ring()
		evs, err := json.Marshal(ring.Last(obs.DefaultRingSize))
		if err != nil {
			t.Fatal(err)
		}
		fmt.Fprintf(&sb, "%s ring total=%d events=%s\n", rr.name, ring.Total(), evs)
	}
	fmt.Fprintf(&sb, "report:\n%s", n.Snapshot().String())
	n.E.Shutdown()
	return sb.String()
}

func TestCallStormDeterministicAcrossRuns(t *testing.T) {
	first := stormFingerprint(t, 42)
	if !strings.Contains(first, "launched=30") || strings.Contains(first, "killed=0") {
		t.Fatalf("storm did not run the intended mixed workload:\n%s", firstLines(first, 5))
	}
	if !strings.Contains(first, `"comp":"sighost"`) || !strings.Contains(first, "setup latency:") {
		t.Fatal("fingerprint carries no event-ring or registry content")
	}
	second := stormFingerprint(t, 42)
	if first != second {
		a, b := strings.Split(first, "\n"), strings.Split(second, "\n")
		for i := 0; i < len(a) && i < len(b); i++ {
			if a[i] != b[i] {
				t.Fatalf("same-seed runs diverge at line %d:\n run1: %s\n run2: %s", i+1, a[i], b[i])
			}
		}
		t.Fatalf("same-seed runs diverge in length: %d vs %d lines", len(a), len(b))
	}
}

func firstLines(s string, n int) string {
	lines := strings.SplitN(s, "\n", n+1)
	if len(lines) > n {
		lines = lines[:n]
	}
	return strings.Join(lines, "\n")
}
