package testbed_test

import (
	"strings"
	"testing"
	"time"

	"xunet/internal/kern"
	"xunet/internal/obs/tseries"
	"xunet/internal/testbed"
)

// Continuous telemetry over the E4 storm: the trunks must show real
// queue buildup, the watermark rules must fire on it, the MGMT hooks
// must answer, and — the reproducibility claim — the same seed must
// export the same bytes.

// stormWithTSeries runs the padded-frame call storm with telemetry
// armed and returns the deployment (post-run, engine shut down) plus
// the deterministic export JSON.
func stormWithTSeries(t *testing.T, seed uint64) (*testbed.Net, *testbed.Router, string) {
	t.Helper()
	const runFor = 40 * time.Second
	n, ra, rb, err := testbed.NewTestbed(testbed.Options{
		Seed:          seed,
		DeviceBuffers: kern.FixedDeviceBuffers,
		FDTableSize:   kern.FixedFDTableSize,
		TSeries:       &tseries.Config{Interval: 25 * time.Millisecond, Capacity: 2048},
	})
	if err != nil {
		t.Fatal(err)
	}
	testbed.StartEchoServer(rb, "storm", 6000)
	n.StartTSeries(runFor)
	n.E.RunUntil(time.Second)
	res := testbed.CallStorm(ra, "ucb.rt", "storm", testbed.StormConfig{
		Count: 100, Hold: time.Second, FramesPerCall: 20, FrameBytes: 1400,
	})
	n.E.RunUntil(runFor)
	if res.Succeeded == 0 {
		t.Fatalf("storm made no calls: %+v", res)
	}
	js := n.TS.JSON()
	n.E.Shutdown()
	return n, ra, js
}

func TestTSeriesStormQueueBuildupAndRules(t *testing.T) {
	n, ra, _ := stormWithTSeries(t, 42)
	ex := n.TS.Export()
	if ex.Ticks == 0 {
		t.Fatal("no scrape ticks ran")
	}

	// Padded 1400-byte frames burst ~30 cells at host-interface rate into
	// the DS3 trunk, so some trunk's between-tick queue high-water must
	// clear the congestion watermark.
	var peak int64
	for _, s := range ex.Series {
		if !strings.HasPrefix(s.Name, "fabric.trunk.") || !strings.HasSuffix(s.Name, ".qdepth") {
			continue
		}
		for _, p := range s.Points {
			if p.Aux > peak {
				peak = p.Aux
			}
		}
	}
	if peak < testbed.QueueWatermarkCells {
		t.Fatalf("trunk queue high-water %d never reached watermark %d", peak, testbed.QueueWatermarkCells)
	}

	// ...and the trunk-queue-buildup rule must have seen it fire.
	fires := 0
	for _, ev := range n.HealthEvents {
		if ev.Rule == "trunk-queue-buildup" && ev.State == "fire" {
			fires++
		}
	}
	if fires == 0 {
		t.Fatalf("no trunk-queue-buildup fire among %d health events", len(n.HealthEvents))
	}

	// MGMT surface: the router's sighost answers tseries/health with live
	// content, not the disabled fallback.
	if ra.Sig.SH.TSeriesInfo == nil || ra.Sig.SH.HealthInfo == nil {
		t.Fatal("MGMT tseries hooks not wired")
	}
	if txt := ra.Sig.SH.TSeriesInfo(); !strings.Contains(txt, "fabric.trunk.") {
		t.Errorf("tseries text missing trunk series:\n%.300s", txt)
	}
	if h := ra.Sig.SH.HealthInfo(); !strings.Contains(h, "trunk-queue-buildup") {
		t.Errorf("health text missing rule state:\n%.300s", h)
	}
}

func TestTSeriesSameSeedByteIdentical(t *testing.T) {
	_, _, a := stormWithTSeries(t, 7)
	_, _, b := stormWithTSeries(t, 7)
	if a != b {
		t.Fatalf("same-seed exports differ: %d vs %d bytes", len(a), len(b))
	}
	if !strings.Contains(a, "fabric.trunk.") {
		t.Error("export carries no trunk series — store is not sampling real state")
	}
}
