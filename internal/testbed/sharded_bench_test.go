package testbed_test

import (
	"fmt"
	"runtime"
	"testing"
	"time"

	"xunet/internal/kern"
	"xunet/internal/testbed"
)

// BenchmarkShardedStorm measures sim-calls/s of the 4-domain E4 storm
// at each worker count — the PR 7 scaling series BENCH_PR7.json
// records. Results are byte-identical across the sub-benchmarks (the
// determinism gate proves it); only the wall clock moves. The reported
// gomaxprocs metric records how much hardware parallelism the numbers
// were achieved with, so cross-machine diffs can tell a regression from
// a smaller machine.
//
// The run is profiler-armed, so three execution-profile metrics ride
// along and benchjson stamps them into its report's profile block:
// events/s (engine events executed per wall second), stall-% (barrier
// stall as a share of total window time — lower is better, benchjson
// -diff knows the direction), and critical-shard (the hottest shard's
// index; informational, not a rate).
func BenchmarkShardedStorm(b *testing.B) {
	for _, w := range []int{1, 2, 4} {
		w := w
		b.Run(fmt.Sprintf("workers=%d", w), func(b *testing.B) {
			cfg := testbed.StormConfig{
				Count: 40, Hold: 50 * time.Millisecond, FramesPerCall: 2,
				Domains: 4, SighostsPerDomain: 2, TrunkDelay: 2 * time.Millisecond,
			}
			sn, err := testbed.NewSharded(testbed.Options{
				Seed:               11,
				DeviceBuffers:      kern.FixedDeviceBuffers,
				FDTableSize:        kern.FixedFDTableSize,
				DisableCallLogging: true,
				DisableTracing:     true,
				Prof:               true,
			}, cfg)
			if err != nil {
				b.Fatal(err)
			}
			defer sn.Close()
			sn.G.SetWorkers(w)
			sn.RunUntil(time.Second)
			events := func() uint64 {
				var n uint64
				for _, dom := range sn.Domains {
					n += dom.E.EventsExecuted()
				}
				return n
			}
			ev0 := events()
			b.ReportAllocs()
			b.ResetTimer()
			done := 0
			for i := 0; i < b.N; i++ {
				dcfg := cfg
				dcfg.BasePort = uint16(20000 + (i%200)*256)
				res := testbed.ShardedStorm(sn, dcfg)
				sn.RunUntil(sn.G.Now() + 5*time.Second)
				_, su, _, _ := res.Totals()
				if su == 0 {
					b.Fatalf("iteration %d: no calls succeeded", i)
				}
				done += su
			}
			b.StopTimer()
			snap := sn.Prof.Snapshot()
			b.ReportMetric(float64(done)/b.Elapsed().Seconds(), "sim-calls/s")
			b.ReportMetric(float64(events()-ev0)/b.Elapsed().Seconds(), "events/s")
			b.ReportMetric(snap.BarrierStallPct(), "stall-%")
			b.ReportMetric(float64(snap.CriticalShard()), "critical-shard")
			b.ReportMetric(float64(runtime.GOMAXPROCS(0)), "gomaxprocs")
		})
	}
}
