package testbed_test

import (
	"fmt"
	"testing"
	"time"

	"xunet/internal/kern"
	"xunet/internal/testbed"
)

// TestSoakRandomWorkload is a randomized whole-system invariant check:
// across several seeds, a mix of clients — normal, canceling, lazy
// (never binding), crashing, and malicious (wrong cookie) — runs
// against servers that accept, reject or ignore. Whatever happens, the
// §4 robustness goals must hold once the dust settles: no leaked
// signaling state, no leaked circuits, no stuck kernel resources.
func TestSoakRandomWorkload(t *testing.T) {
	for seed := uint64(1); seed <= 5; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed-%d", seed), func(t *testing.T) {
			n, ra, rb, err := testbed.NewTestbed(testbed.Options{
				Seed:          seed,
				DeviceBuffers: kern.FixedDeviceBuffers,
				FDTableSize:   kern.FixedFDTableSize,
			})
			if err != nil {
				t.Fatal(err)
			}
			host, err := n.AddHost("mh.h1", ra)
			if err != nil {
				t.Fatal(err)
			}

			// Servers: a normal echo, a rejector, and a sleeper that
			// never answers.
			testbed.StartEchoServer(rb, "echo", 6000)
			rb.Stack.Spawn("rejector", func(p *kern.Proc) {
				_ = rb.Lib.ExportService(p, "nope", 6001)
				kl, _ := rb.Lib.CreateReceiveConnection(p, 6001)
				for {
					req, err := rb.Lib.AwaitServiceRequest(p, kl)
					if err != nil {
						return
					}
					_ = req.Reject("policy")
				}
			})
			rb.Stack.Spawn("sleeper", func(p *kern.Proc) {
				_ = rb.Lib.ExportService(p, "zzz", 6002)
				_, _ = rb.Lib.CreateReceiveConnection(p, 6002)
				p.SP.Park()
			})
			n.E.RunUntil(time.Second)

			rng := n.E.Rand()
			services := []string{"echo", "nope", "zzz", "ghost"}
			port := uint16(20000)
			for i := 0; i < 40; i++ {
				behaviour := rng.Intn(5)
				svc := services[rng.Intn(len(services))]
				qosStr := []string{"", "vbr:128", "cbr:1000"}[rng.Intn(3)]
				launch := time.Duration(rng.Intn(5000)) * time.Millisecond
				port++
				p := port
				var client testbed.Endpoint = ra
				if rng.Intn(3) == 0 {
					client = host
				}
				stack, lib := client.EndStack(), client.EndLib()
				proc := stack.Spawn("soak-client", func(kp *kern.Proc) {
					kp.SP.Sleep(launch)
					switch behaviour {
					case 0: // normal call with data
						res := testbed.OpenAndUse(client, kp, "ucb.rt", svc, p, qosStr, 2, nil)
						_ = res
					case 1: // open then cancel asynchronously
						pc, err := lib.OpenConnectionAsync(kp, "ucb.rt", svc, p, "", qosStr)
						if err != nil {
							return
						}
						kp.SP.Sleep(time.Duration(rng.Intn(500)) * time.Millisecond)
						_ = pc.Cancel(kp)
					case 2: // lazy: open, never bind, rely on the timer
						_, _ = lib.OpenConnection(kp, "ucb.rt", svc, p, "", qosStr)
					case 3: // normal call, long hold (killed below, maybe)
						testbed.OpenAndUse(client, kp, "ucb.rt", svc, p, qosStr, 1,
							func(kp *kern.Proc) { kp.SP.Sleep(20 * time.Second) })
					case 4: // malicious: connect with a perturbed cookie
						conn, err := lib.OpenConnection(kp, "ucb.rt", svc, p, "", qosStr)
						if err != nil {
							return
						}
						sock, _ := stack.PF.Socket(kp)
						_ = sock.Connect(conn.VCI, conn.Cookie+1)
						kp.SP.Sleep(time.Second)
					}
				})
				if behaviour == 3 && rng.Intn(2) == 0 {
					victim := proc
					n.E.Schedule(launch+time.Duration(rng.Intn(3000))*time.Millisecond,
						func() { victim.Kill() })
				}
			}

			// Let everything play out, including bind timers.
			n.E.RunUntil(n.E.Now() + 5*n.CM.BindTimeout)
			for _, r := range []*testbed.Router{ra, rb} {
				if msg := testbed.Quiesced(r); msg != "" {
					t.Fatalf("seed %d: %s", seed, msg)
				}
			}
			if vcs := n.Fabric.ActiveVCs(); vcs != 2 {
				t.Fatalf("seed %d: %d circuits leaked", seed, vcs-2)
			}
			if ra.Stack.PF.ActiveVCIs() > 1 || rb.Stack.PF.ActiveVCIs() > 1 {
				// The PVC reader/writer sockets are long-lived; client
				// sockets must all be gone or disconnected-and-closed.
				// (Each router holds 2 PVC sockets: rx and tx.)
				t.Logf("seed %d: active VCIs ra=%d rb=%d (PVC sockets expected)",
					seed, ra.Stack.PF.ActiveVCIs(), rb.Stack.PF.ActiveVCIs())
			}
			n.E.Shutdown()
		})
	}
}

// TestPerVCIRoutingToMultipleHosts exercises §7.4's point that the
// explicit per-VCI IP destination table lets the router route each
// circuit to a different host: two hosts behind the same remote router
// each receive exactly their own circuit's data.
func TestPerVCIRoutingToMultipleHosts(t *testing.T) {
	n, ra, rb, _ := testbed.NewTestbed(testbed.Options{FDTableSize: kern.FixedFDTableSize})
	h1, err := n.AddHost("ucb.h1", rb)
	if err != nil {
		t.Fatal(err)
	}
	h2, err := n.AddHost("ucb.h2", rb)
	if err != nil {
		t.Fatal(err)
	}
	srv1 := testbed.StartEchoServer(h1, "svc-one", 6000)
	srv2 := testbed.StartEchoServer(h2, "svc-two", 6000)
	n.E.RunUntil(500 * time.Millisecond)
	var res1, res2 testbed.CallResult
	ra.Stack.Spawn("client", func(p *kern.Proc) {
		res1 = testbed.OpenAndUse(ra, p, "ucb.rt", "svc-one", 7001, "", 3, nil)
		res2 = testbed.OpenAndUse(ra, p, "ucb.rt", "svc-two", 7002, "", 5, nil)
	})
	n.E.RunUntil(time.Minute)
	if res1.Err != nil || res2.Err != nil {
		t.Fatalf("calls: %v / %v", res1.Err, res2.Err)
	}
	if srv1.Received != 3 {
		t.Fatalf("host1 received %d, want 3", srv1.Received)
	}
	if srv2.Received != 5 {
		t.Fatalf("host2 received %d, want 5", srv2.Received)
	}
	// Two distinct VCI->host bindings existed at the remote router.
	if rb.Sig.Anand.Binds != 2 {
		t.Fatalf("VCI_BINDs = %d", rb.Sig.Anand.Binds)
	}
	n.E.Shutdown()
}
