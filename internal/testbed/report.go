package testbed

import (
	"fmt"
	"sort"
	"strings"
	"time"

	"xunet/internal/atm"
	"xunet/internal/obs"
	"xunet/internal/qos"
)

// Report gathers every counter the experiments read into one renderable
// snapshot. It is assembled entirely from the telemetry registries — the
// fabric's and each router machine's — rather than by copying component
// fields one by one: whatever a component registers shows up here (and in
// the mgmt "stats" view) without touching this file. cmd/xunetsim prints
// it; tests use the derived fields directly.
type Report struct {
	Routers []RouterReport
	// Fabric totals, from the fabric registry.
	Fabric                  obs.Snapshot
	CellsSent, CellsDropped uint64
	PerClassSent            [3]uint64
	PerClassDropped         [3]uint64
	ActiveVCs               int
}

// RouterReport is one router's slice of the report: the machine's full
// registry snapshot plus named fields derived from it for test assertions.
type RouterReport struct {
	Addr string
	// Obs is the machine registry snapshot everything below derives from.
	Obs obs.Snapshot
	// The five lists of §7.3 plus the cookie table.
	Services, Outgoing, Incoming, WaitBind, VCIMap, Cookies int
	// Pseudo-device accounting.
	DevPosted, DevLost uint64
	// Encapsulation layer.
	Switched, ReEncapsulated, OutOfOrder uint64
	// Signaling stats summary.
	Established, Torn, Failed, AuthFailures, BindTimeouts uint64
	// Call-setup latency (origin side), from sighost.setup.total.
	SetupP50, SetupP99 time.Duration
	SetupCount         uint64
}

var classNames = [3]string{qos.BestEffort: "be", qos.VBR: "vbr", qos.CBR: "cbr"}

// Snapshot collects a report from a deployment. It must run while the sim
// is paused (between RunUntil calls) or after shutdown, since read-through
// metrics sample live component state.
func (n *Net) Snapshot() Report {
	var r Report
	r.Fabric = n.Fabric.Obs.Snapshot()
	for cls := 0; cls < 3; cls++ {
		r.PerClassSent[cls] = r.Fabric.Count("fabric.cells.sent." + classNames[cls])
		r.PerClassDropped[cls] = r.Fabric.Count("fabric.cells.dropped." + classNames[cls])
		r.CellsSent += r.PerClassSent[cls]
		r.CellsDropped += r.PerClassDropped[cls]
	}
	r.ActiveVCs = int(r.Fabric.Count("fabric.vcs.active"))
	var addrs []string
	for addr := range n.Routers {
		addrs = append(addrs, string(addr))
	}
	sort.Strings(addrs)
	for _, addr := range addrs {
		router := n.Routers[atm.Addr(addr)]
		snap := router.Stack.M.Obs.Snapshot()
		rr := RouterReport{
			Addr:           addr,
			Obs:            snap,
			Services:       int(snap.Count("sighost.list.services")),
			Outgoing:       int(snap.Count("sighost.list.outgoing")),
			Incoming:       int(snap.Count("sighost.list.incoming")),
			WaitBind:       int(snap.Count("sighost.list.wait_bind")),
			VCIMap:         int(snap.Count("sighost.list.vci_map")),
			Cookies:        int(snap.Count("sighost.cookies")),
			DevPosted:      snap.Count("kern.dev.posted"),
			DevLost:        snap.Count("kern.dev.lost"),
			Switched:       snap.Count("protoatm.switched"),
			ReEncapsulated: snap.Count("protoatm.reencapsulated"),
			OutOfOrder:     snap.Count("protoatm.out_of_order"),
			Established:    snap.Count("sighost.calls.established"),
			Torn:           snap.Count("sighost.calls.torn"),
			Failed:         snap.Count("sighost.calls.failed"),
			AuthFailures:   snap.Count("sighost.auth_failures"),
			BindTimeouts:   snap.Count("sighost.bind_timeouts"),
		}
		if h := snap.Hist("sighost.setup.total"); h != nil {
			rr.SetupP50, rr.SetupP99, rr.SetupCount = h.P50, h.P99, h.Count
		}
		r.Routers = append(r.Routers, rr)
	}
	return r
}

// Quiesced reports whether every router's transient state has drained.
func (r Report) Quiesced() bool {
	for _, rr := range r.Routers {
		if rr.Outgoing != 0 || rr.Incoming != 0 || rr.WaitBind != 0 || rr.VCIMap != 0 || rr.Cookies != 0 {
			return false
		}
	}
	return true
}

// String renders the report as aligned tables.
func (r Report) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "fabric: %d cells switched, %d dropped, %d VCs active\n",
		r.CellsSent, r.CellsDropped, r.ActiveVCs)
	fmt.Fprintf(&b, "per class (sent/dropped): cbr %d/%d  vbr %d/%d  besteffort %d/%d\n",
		r.PerClassSent[qos.CBR], r.PerClassDropped[qos.CBR],
		r.PerClassSent[qos.VBR], r.PerClassDropped[qos.VBR],
		r.PerClassSent[qos.BestEffort], r.PerClassDropped[qos.BestEffort])
	fmt.Fprintf(&b, "%-12s %5s %4s %4s %5s %4s %7s | %8s %7s | %6s %5s %5s %5s %5s\n",
		"router", "svcs", "out", "in", "bind", "vci", "cookies",
		"dev-post", "dev-lost", "estab", "torn", "fail", "auth", "btmo")
	for _, rr := range r.Routers {
		fmt.Fprintf(&b, "%-12s %5d %4d %4d %5d %4d %7d | %8d %7d | %6d %5d %5d %5d %5d\n",
			rr.Addr, rr.Services, rr.Outgoing, rr.Incoming, rr.WaitBind, rr.VCIMap, rr.Cookies,
			rr.DevPosted, rr.DevLost,
			rr.Established, rr.Torn, rr.Failed, rr.AuthFailures, rr.BindTimeouts)
	}
	for _, rr := range r.Routers {
		if rr.SetupCount > 0 {
			fmt.Fprintf(&b, "%-12s setup latency: %d calls, p50 %v, p99 %v\n",
				rr.Addr, rr.SetupCount, rr.SetupP50, rr.SetupP99)
		}
	}
	return b.String()
}
