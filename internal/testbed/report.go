package testbed

import (
	"fmt"
	"sort"
	"strings"

	"xunet/internal/atm"
	"xunet/internal/qos"
)

// Report gathers every counter the experiments read — per-router
// signaling statistics, pseudo-device losses, encapsulation-layer
// counters, and fabric cell accounting — into one renderable snapshot.
// cmd/xunetsim prints it; tests use the fields directly.
type Report struct {
	Routers []RouterReport
	// Fabric totals.
	CellsSent, CellsDropped uint64
	PerClassSent            [3]uint64
	PerClassDropped         [3]uint64
	ActiveVCs               int
}

// RouterReport is one router's slice of the report.
type RouterReport struct {
	Addr string
	// The five lists of §7.3 plus the cookie table.
	Services, Outgoing, Incoming, WaitBind, VCIMap, Cookies int
	// Pseudo-device accounting.
	DevPosted, DevLost uint64
	// Encapsulation layer.
	Switched, ReEncapsulated, OutOfOrder uint64
	// Signaling stats summary.
	Established, Torn, Failed, AuthFailures, BindTimeouts uint64
}

// Snapshot collects a report from a deployment.
func (n *Net) Snapshot() Report {
	var r Report
	r.CellsSent, r.CellsDropped = n.Fabric.TrunkStats()
	cs := n.Fabric.ClassStats()
	r.PerClassSent = cs.Sent
	r.PerClassDropped = cs.Dropped
	r.ActiveVCs = n.Fabric.ActiveVCs()
	var addrs []string
	for addr := range n.Routers {
		addrs = append(addrs, string(addr))
	}
	sort.Strings(addrs)
	for _, addr := range addrs {
		router := n.Routers[atm.Addr(addr)]
		sh := router.Sig.SH
		svc, out, in, wb, vm := sh.ListSizes()
		r.Routers = append(r.Routers, RouterReport{
			Addr:     addr,
			Services: svc, Outgoing: out, Incoming: in, WaitBind: wb, VCIMap: vm,
			Cookies:        sh.CookieCount(),
			DevPosted:      router.Stack.M.Dev.Posted,
			DevLost:        router.Stack.M.Dev.Lost,
			Switched:       router.Stack.ATM.Switched,
			ReEncapsulated: router.Stack.ATM.ReEncapsulated,
			OutOfOrder:     router.Stack.ATM.OutOfOrder,
			Established:    sh.Stats.CallsEstablished,
			Torn:           sh.Stats.CallsTorn,
			Failed:         sh.Stats.CallsFailed,
			AuthFailures:   sh.Stats.AuthFailures,
			BindTimeouts:   sh.Stats.BindTimeouts,
		})
	}
	return r
}

// Quiesced reports whether every router's transient state has drained.
func (r Report) Quiesced() bool {
	for _, rr := range r.Routers {
		if rr.Outgoing != 0 || rr.Incoming != 0 || rr.WaitBind != 0 || rr.VCIMap != 0 || rr.Cookies != 0 {
			return false
		}
	}
	return true
}

// String renders the report as aligned tables.
func (r Report) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "fabric: %d cells switched, %d dropped, %d VCs active\n",
		r.CellsSent, r.CellsDropped, r.ActiveVCs)
	fmt.Fprintf(&b, "per class (sent/dropped): cbr %d/%d  vbr %d/%d  besteffort %d/%d\n",
		r.PerClassSent[qos.CBR], r.PerClassDropped[qos.CBR],
		r.PerClassSent[qos.VBR], r.PerClassDropped[qos.VBR],
		r.PerClassSent[qos.BestEffort], r.PerClassDropped[qos.BestEffort])
	fmt.Fprintf(&b, "%-12s %5s %4s %4s %5s %4s %7s | %8s %7s | %6s %5s %5s %5s %5s\n",
		"router", "svcs", "out", "in", "bind", "vci", "cookies",
		"dev-post", "dev-lost", "estab", "torn", "fail", "auth", "btmo")
	for _, rr := range r.Routers {
		fmt.Fprintf(&b, "%-12s %5d %4d %4d %5d %4d %7d | %8d %7d | %6d %5d %5d %5d %5d\n",
			rr.Addr, rr.Services, rr.Outgoing, rr.Incoming, rr.WaitBind, rr.VCIMap, rr.Cookies,
			rr.DevPosted, rr.DevLost,
			rr.Established, rr.Torn, rr.Failed, rr.AuthFailures, rr.BindTimeouts)
	}
	return b.String()
}
