package testbed_test

import (
	"strings"
	"testing"
	"time"

	"xunet/internal/kern"
	"xunet/internal/obs/tseries"
	"xunet/internal/prof"
	"xunet/internal/testbed"
)

// profiledStorm runs the standard 4-domain E4 storm with the execution
// profiler armed and returns the deterministic counts export plus the
// full snapshot.
func profiledStorm(t *testing.T, seed uint64, workers int) (string, prof.Snapshot) {
	t.Helper()
	cfg := shardedStormConfig()
	sn, err := testbed.NewSharded(testbed.Options{
		Seed:          seed,
		DeviceBuffers: kern.FixedDeviceBuffers,
		FDTableSize:   kern.FixedFDTableSize,
		Prof:          true,
	}, cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer sn.Close()
	sn.G.SetWorkers(workers)
	sn.RunUntil(time.Second)
	res := testbed.ShardedStorm(sn, cfg)
	sn.RunUntil(12 * time.Second)
	if _, su, _, _ := res.Totals(); su == 0 {
		t.Fatal("profiled storm: no calls succeeded")
	}
	return sn.Prof.CountsText(), sn.Prof.Snapshot()
}

// TestShardedStormProfiledDeterministicAcrossWorkers is the PR 8
// acceptance gate: with the profiler enabled on the sharded E4 storm,
// the deterministic half of the profile — per-shard per-label event
// counts, window and idle-skip counters, the cross-shard post/byte
// matrix — must be byte-identical across same-seed runs at workers 1,
// 2, and 4, and the profile must actually report per-shard stall
// fractions and a critical-shard ranking.
func TestShardedStormProfiledDeterministicAcrossWorkers(t *testing.T) {
	golden, snap := profiledStorm(t, 42, 1)
	if !strings.Contains(golden, "proc.sighost") || !strings.Contains(golden, "xswitch.trunk.tx") {
		t.Fatalf("counts export missing expected attribution labels:\n%s", firstLines(golden, 12))
	}
	if !strings.Contains(golden, "group: shards 4") {
		t.Fatalf("counts export missing group accounting:\n%s", firstLines(golden, 12))
	}
	if !strings.Contains(golden, "xshard matrix") {
		t.Fatalf("counts export missing the cross-shard matrix:\n%s", golden)
	}

	if snap.Group == nil || snap.Group.Windows == 0 {
		t.Fatal("profiled storm recorded no barrier windows")
	}
	if len(snap.Group.PerShard) != 4 {
		t.Fatalf("per-shard window stats = %d entries, want 4", len(snap.Group.PerShard))
	}
	var exec int64
	for _, ps := range snap.Group.PerShard {
		exec += ps.ExecNS
		f := snap.StallFraction(ps.Shard)
		if f < 0 || f > 1 {
			t.Fatalf("shard %d stall fraction %v outside [0,1]", ps.Shard, f)
		}
	}
	if exec <= 0 {
		t.Fatal("no window execution time recorded")
	}
	ranking := snap.CriticalRanking()
	if len(ranking) != 4 {
		t.Fatalf("critical ranking %v, want a permutation of 4 shards", ranking)
	}
	seen := map[int]bool{}
	for _, s := range ranking {
		if s < 0 || s >= 4 || seen[s] {
			t.Fatalf("critical ranking %v is not a permutation of shards 0-3", ranking)
		}
		seen[s] = true
	}

	for _, w := range []int{2, 4} {
		counts, _ := profiledStorm(t, 42, w)
		diffFingerprints(t, "prof counts workers=1 vs workers="+string(rune('0'+w)), golden, counts)
	}
}

// TestProfSeriesFeedsTSeries checks the wall-clock half's wiring: with
// ProfSeries armed, each domain's store carries the deterministic
// engine-progress series and the wall-clock stall series, and the
// hot-shard watermark rule is installed. (Stall magnitudes are wall
// time, so only presence is asserted, never values.)
func TestProfSeriesFeedsTSeries(t *testing.T) {
	cfg := shardedStormConfig()
	sn, err := testbed.NewSharded(testbed.Options{
		Seed:          42,
		DeviceBuffers: kern.FixedDeviceBuffers,
		FDTableSize:   kern.FixedFDTableSize,
		TSeries:       &tseries.Config{Interval: 50 * time.Millisecond, Capacity: 256},
		ProfSeries:    true,
	}, cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer sn.Close()
	sn.G.SetWorkers(2)
	sn.StartTSeries(6 * time.Second)
	sn.RunUntil(time.Second)
	testbed.ShardedStorm(sn, cfg)
	sn.RunUntil(6 * time.Second)

	if sn.Prof == nil {
		t.Fatal("ProfSeries did not arm the profiler")
	}
	for _, dom := range sn.Domains {
		text := dom.TS.Text()
		for _, want := range []string{"sim.shard.", ".events", ".stall.ns"} {
			if !strings.Contains(text, want) {
				t.Fatalf("domain %d store missing %q:\n%s", dom.Index, want, firstLines(text, 10))
			}
		}
		if !strings.Contains(dom.TS.HealthText(), "hot-shard-stall") {
			t.Fatalf("domain %d missing the hot-shard-stall rule:\n%s",
				dom.Index, dom.TS.HealthText())
		}
		// The machine registries' engine counters (events executed, timer
		// pool hit rate, heap high-water) join the scrape through the
		// routers' registry prefixes.
		if !strings.Contains(text, "sim.events.executed") || !strings.Contains(text, "sim.pool.hits") {
			t.Fatalf("domain %d store missing engine obs counters:\n%s", dom.Index, firstLines(text, 10))
		}
	}
}

// TestFlatProfiledStorm covers the unsharded path: Options.Prof on a
// plain testbed attributes the storm per proc kind and serves the MGMT
// prof hooks on every router.
func TestFlatProfiledStorm(t *testing.T) {
	n, ra, rb, err := testbed.NewTestbed(testbed.Options{
		Seed:          1,
		DeviceBuffers: kern.FixedDeviceBuffers,
		FDTableSize:   kern.FixedFDTableSize,
		Prof:          true,
	})
	if err != nil {
		t.Fatal(err)
	}
	testbed.StartEchoServer(rb, "storm", 6000)
	n.E.RunUntil(time.Second)
	testbed.CallStorm(ra, rb.Stack.Addr, "storm", testbed.StormConfig{
		Count: 8, Hold: 50 * time.Millisecond, FramesPerCall: 2,
	})
	n.E.RunUntil(n.E.Now() + 4*n.CM.BindTimeout)
	defer n.E.Shutdown()

	if n.Prof == nil {
		t.Fatal("Prof option did not arm the profiler")
	}
	text := n.Prof.Text()
	for _, want := range []string{"proc.sighost", "proc.storm-client", "xswitch.trunk.tx"} {
		if !strings.Contains(text, want) {
			t.Fatalf("flat profile missing %q:\n%s", want, firstLines(text, 12))
		}
	}
	if ra.Sig.SH.ProfInfo == nil || ra.Sig.SH.ProfJSON == nil || ra.Sig.SH.ProfFlame == nil {
		t.Fatal("router MGMT prof hooks not wired")
	}
	if got := ra.Sig.SH.ProfInfo(); !strings.Contains(got, "proc.sighost") {
		t.Fatalf("MGMT prof view = %s", firstLines(got, 6))
	}
	if flame := n.Prof.FlameFolded(); !strings.Contains(flame, "shard0;proc.") {
		t.Fatalf("flame export missing shard frames:\n%s", firstLines(flame, 6))
	}
}
