package testbed

import (
	"time"

	"xunet/internal/atm"
	"xunet/internal/kern"
)

// This file implements the robustness and scaling workloads of §10:
// "we designed an intensive workload in which a hundred calls were
// initiated as fast as possible. Each call was held for one second,
// then torn down."

// StormConfig parameterizes a call storm.
type StormConfig struct {
	// Count is the number of calls (the paper's hundred).
	Count int
	// Hold is how long each call is held before teardown (one second).
	Hold time.Duration
	// FramesPerCall is data sent on each established circuit.
	FramesPerCall int
	// FrameBytes pads each data frame to this size (<= 0 keeps the tiny
	// default frames); large frames are what actually load the trunks.
	FrameBytes int
	// BasePort is the first client notify port; each call uses
	// BasePort+i.
	BasePort uint16
	// Stagger delays successive call launches ("as fast as possible"
	// is zero).
	Stagger time.Duration
	// QoS is the per-call descriptor (empty = best effort).
	QoS string
	// KillAfter, when positive, kills call i's client process after
	// this delay past its launch — the §10 termination tests.
	KillAfter time.Duration
	// KillEvery kills every k-th client (0 = none).
	KillEvery int

	// Multi-domain topology, consumed by NewSharded/ShardedStorm. Zero
	// values give the flat single-domain degenerate case (one switch,
	// one shard — byte-identical to the unsharded engine).

	// Domains is the number of switch/sighost domains; each domain is
	// one shard with its own event loop.
	Domains int
	// SighostsPerDomain is how many routers (signaling hosts) attach to
	// each domain's switch.
	SighostsPerDomain int
	// TrunkDelay is the inter-domain trunk propagation delay. It funds
	// the shard group's conservative lookahead, so it must be positive
	// when Domains > 1.
	TrunkDelay time.Duration
	// CrossFrames, when positive, sends this many data frames over each
	// pre-provisioned cross-domain carrier circuit during the storm, so
	// the boundary-crossing machinery is on the measured path.
	CrossFrames int
}

// StormResult aggregates a storm run.
type StormResult struct {
	Results   []CallResult
	Launched  int
	Succeeded int
	Failed    int
	Killed    int
	// MaxSetup and MinSetup bound observed establishment latencies of
	// successful calls; TotalSetup allows averaging.
	MinSetup, MaxSetup, TotalSetup time.Duration
}

// Avg returns the mean establishment latency of successful calls.
func (r *StormResult) Avg() time.Duration {
	if r.Succeeded == 0 {
		return 0
	}
	return r.TotalSetup / time.Duration(r.Succeeded)
}

// CallStorm launches cfg.Count concurrent client processes on ep, each
// performing the Figure 6 flow against dest/service. It returns a
// result that fills in as the simulation runs; inspect it after the
// engine has drained.
func CallStorm(ep Endpoint, dest atm.Addr, service string, cfg StormConfig) *StormResult {
	if cfg.Count <= 0 {
		cfg.Count = 100
	}
	if cfg.BasePort == 0 {
		cfg.BasePort = 20000
	}
	res := &StormResult{Results: make([]CallResult, cfg.Count)}
	stack := ep.EndStack()
	for i := 0; i < cfg.Count; i++ {
		i := i
		port := cfg.BasePort + uint16(i)
		launch := time.Duration(i) * cfg.Stagger
		proc := stack.Spawn("storm-client", func(p *kern.Proc) {
			if launch > 0 {
				p.SP.Sleep(launch)
			}
			res.Launched++
			r := OpenAndUseFrames(ep, p, dest, service, port, cfg.QoS, cfg.FramesPerCall, cfg.FrameBytes, func(p *kern.Proc) {
				if cfg.Hold > 0 {
					p.SP.Sleep(cfg.Hold)
				}
			})
			res.Results[i] = r
			if r.OK {
				res.Succeeded++
				res.TotalSetup += r.SetupTime
				if res.MinSetup == 0 || r.SetupTime < res.MinSetup {
					res.MinSetup = r.SetupTime
				}
				if r.SetupTime > res.MaxSetup {
					res.MaxSetup = r.SetupTime
				}
			} else {
				res.Failed++
			}
		})
		if cfg.KillEvery > 0 && i%cfg.KillEvery == 0 && cfg.KillAfter > 0 {
			victim := proc
			res.Killed++
			stack.M.E.Schedule(launch+cfg.KillAfter, func() { victim.Kill() })
		}
	}
	return res
}
