package testbed_test

import (
	"strings"
	"testing"
	"time"

	"xunet/internal/kern"
	"xunet/internal/testbed"
)

func TestReportSnapshot(t *testing.T) {
	n, ra, rb, _ := testbed.NewTestbed(testbed.Options{FDTableSize: kern.FixedFDTableSize})
	testbed.StartEchoServer(rb, "echo", 6000)
	n.E.RunUntil(time.Second)
	res := testbed.CallStorm(ra, "ucb.rt", "echo", testbed.StormConfig{Count: 5, Hold: time.Second, FramesPerCall: 1})
	n.E.RunUntil(n.E.Now() + 4*n.CM.BindTimeout)
	if res.Succeeded != 5 {
		t.Fatalf("calls %d/5", res.Succeeded)
	}
	rep := n.Snapshot()
	if !rep.Quiesced() {
		t.Fatalf("not quiesced:\n%s", rep)
	}
	if rep.ActiveVCs != 2 {
		t.Fatalf("active VCs = %d", rep.ActiveVCs)
	}
	if rep.CellsSent == 0 {
		t.Fatal("no cells counted")
	}
	if len(rep.Routers) != 2 {
		t.Fatalf("routers = %d", len(rep.Routers))
	}
	// Sorted by address: mh.rt before ucb.rt.
	if rep.Routers[0].Addr != "mh.rt" || rep.Routers[1].Addr != "ucb.rt" {
		t.Fatalf("order: %s, %s", rep.Routers[0].Addr, rep.Routers[1].Addr)
	}
	if rep.Routers[0].Established != 5 || rep.Routers[0].Torn != 5 {
		t.Fatalf("mh.rt estab/torn = %d/%d", rep.Routers[0].Established, rep.Routers[0].Torn)
	}
	if rep.Routers[1].Services != 1 {
		t.Fatalf("ucb.rt services = %d", rep.Routers[1].Services)
	}
	out := rep.String()
	for _, want := range []string{"fabric:", "per class", "mh.rt", "ucb.rt", "dev-post"} {
		if !strings.Contains(out, want) {
			t.Errorf("render missing %q:\n%s", want, out)
		}
	}
	n.E.Shutdown()
}

func TestReportDetectsLeak(t *testing.T) {
	n, ra, rb, _ := testbed.NewTestbed(testbed.Options{})
	testbed.StartEchoServer(rb, "echo", 6000)
	ra.Stack.Spawn("client", func(p *kern.Proc) {
		p.SP.Sleep(100 * time.Millisecond)
		// Open and never bind: until the bind timer fires, wait_for_bind
		// holds state and the report must say so.
		_, _ = ra.Lib.OpenConnection(p, "ucb.rt", "echo", 7000, "", "")
		p.SP.Park()
	})
	n.E.RunUntil(2 * time.Second) // established, not bound, timer pending
	rep := n.Snapshot()
	if rep.Quiesced() {
		t.Fatal("report claims quiesced while a bind is pending")
	}
	n.E.Shutdown()
}
