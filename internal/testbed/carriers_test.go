package testbed_test

import (
	"testing"
	"time"

	"xunet/internal/testbed"
)

// hostRig builds the testbed with one host behind mh.rt.
func hostRig(t *testing.T) (*testbed.Net, *testbed.Host) {
	t.Helper()
	n, ra, _, err := testbed.NewTestbed(testbed.Options{})
	if err != nil {
		t.Fatal(err)
	}
	host, err := n.AddHost("mh.h1", ra)
	if err != nil {
		t.Fatal(err)
	}
	n.E.RunUntil(100 * time.Millisecond) // let anand client connect
	return n, host
}

func TestCarrierRawIP(t *testing.T) {
	n, host := hostRig(t)
	res, err := testbed.RunCarrierTransfer(n, host, 200, 1400, 100*time.Microsecond)
	if err != nil {
		t.Fatal(err)
	}
	if res.Delivered != 200 {
		t.Fatalf("delivered %d of 200 over raw IP", res.Delivered)
	}
	if res.ThroughputBps(1400) < 10_000_000 {
		t.Fatalf("raw IP throughput %.0f bps", res.ThroughputBps(1400))
	}
	n.E.Shutdown()
}

func TestCarrierUDP(t *testing.T) {
	n, host := hostRig(t)
	if _, err := testbed.UseUDPCarrier(host); err != nil {
		t.Fatal(err)
	}
	res, err := testbed.RunCarrierTransfer(n, host, 200, 1400, 100*time.Microsecond)
	if err != nil {
		t.Fatal(err)
	}
	if res.Delivered != 200 {
		t.Fatalf("delivered %d of 200 over UDP carrier", res.Delivered)
	}
	n.E.Shutdown()
}

func TestCarrierTCP(t *testing.T) {
	n, host := hostRig(t)
	if _, err := testbed.UseTCPCarrier(host); err != nil {
		t.Fatal(err)
	}
	res, err := testbed.RunCarrierTransfer(n, host, 200, 1400, 100*time.Microsecond)
	if err != nil {
		t.Fatal(err)
	}
	if res.Delivered != 200 {
		t.Fatalf("delivered %d of 200 over TCP carrier", res.Delivered)
	}
	n.E.Shutdown()
}

// TestCarrierLossBehaviour shows the §5.4 contrast under loss on the
// host-router segment: the raw-IP carrier loses frames but detects the
// gaps by sequence number; the TCP carrier masks the loss at the price
// of retransmission delay and flow-control coupling.
func TestCarrierLossBehaviour(t *testing.T) {
	// Raw IP under loss: frames vanish, sequence numbers notice.
	n1, host1 := hostRig(t)
	host1.Stack.M.IP.LinkTo(host1.Router.Stack.M.IP).SetLoss(0.1)
	res1, err := testbed.RunCarrierTransfer(n1, host1, 200, 1400, 200*time.Microsecond)
	if err != nil {
		t.Fatal(err)
	}
	if res1.Delivered >= 200 {
		t.Fatalf("raw IP delivered %d of 200 despite 10%% loss", res1.Delivered)
	}
	if host1.Router.Stack.ATM.OutOfOrder == 0 {
		t.Fatal("loss not detected by the encapsulation sequence numbers")
	}
	n1.E.Shutdown()

	// TCP under the same loss: everything arrives (retransmitted).
	n2, host2 := hostRig(t)
	st, err := testbed.UseTCPCarrier(host2)
	if err != nil {
		t.Fatal(err)
	}
	host2.Stack.M.IP.LinkTo(host2.Router.Stack.M.IP).SetLoss(0.1)
	res2, err := testbed.RunCarrierTransfer(n2, host2, 200, 1400, 200*time.Microsecond)
	if err != nil {
		t.Fatal(err)
	}
	if res2.Delivered != 200 {
		t.Fatalf("TCP carrier delivered %d of 200 under loss", res2.Delivered)
	}
	if st.FramesDelivered != 200 {
		t.Fatalf("tunnel delivered %d", st.FramesDelivered)
	}
	// The paper's complaint about TCP encapsulation: recovery costs
	// time — the lossy TCP run must be slower than the clean raw run.
	if res2.Elapsed <= res1.Elapsed {
		t.Fatalf("TCP under loss (%v) not slower than raw IP (%v)", res2.Elapsed, res1.Elapsed)
	}
	n2.E.Shutdown()
}

func TestCarrierStrings(t *testing.T) {
	if testbed.CarrierRawIP.String() != "raw-ip" || testbed.CarrierUDP.String() != "udp" || testbed.CarrierTCP.String() != "tcp" {
		t.Fatal("carrier names wrong")
	}
}
