package testbed_test

import (
	"encoding/json"
	"fmt"
	"runtime"
	"strings"
	"testing"
	"time"

	"xunet/internal/kern"
	"xunet/internal/obs"
	"xunet/internal/obs/tseries"
	"xunet/internal/testbed"
)

// shardedStormConfig is the standard 4-domain E4 topology the sharded
// tests exercise: four switches in a ring, two sighosts each, 2 ms
// inter-domain trunks funding the lookahead, a 24-call storm with
// periodic client kills, and carrier frames riding every cross-domain
// circuit so the boundary path is on the measured history.
func shardedStormConfig() testbed.StormConfig {
	return testbed.StormConfig{
		Count: 24, Hold: 150 * time.Millisecond, FramesPerCall: 2,
		KillEvery: 7, KillAfter: 40 * time.Millisecond,
		Domains: 4, SighostsPerDomain: 2, TrunkDelay: 2 * time.Millisecond,
		CrossFrames: 8,
	}
}

// shardedFingerprint renders every observable artifact of one sharded
// storm run into a single string: per-router golden sighost traces,
// per-router obs event rings, per-domain storm buckets and carrier
// counters, flight-dump and health-event tallies, and the merged
// time-series export. The worker count must never change a byte of it.
func shardedFingerprint(t *testing.T, seed uint64, workers int, chaos bool) string {
	t.Helper()
	cfg := shardedStormConfig()
	opts := testbed.Options{
		Seed:          seed,
		DeviceBuffers: kern.FixedDeviceBuffers,
		FDTableSize:   kern.FixedFDTableSize,
		TSeries:       &tseries.Config{Interval: 50 * time.Millisecond, Capacity: 256},
	}
	if chaos {
		opts.Faults = chaosConfig()
	}
	sn, err := testbed.NewSharded(opts, cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer sn.Close()
	sn.G.SetWorkers(workers)
	// One trace builder per router: each callback fires only on its own
	// shard's goroutine, so the builders need no locks, and concatenating
	// them in topology order is deterministic.
	type rtrace struct {
		name string
		sb   strings.Builder
	}
	var traces []*rtrace
	for _, dom := range sn.Domains {
		for _, r := range dom.Routers {
			rt := &rtrace{name: string(r.Stack.Addr)}
			r.Stack.M.Obs.EnableTrace("sighost", true)
			r.Sig.SH.Trace = func(l string) { fmt.Fprintf(&rt.sb, "%s\n", l) }
			traces = append(traces, rt)
		}
	}
	const runFor = 12 * time.Second
	sn.StartTSeries(runFor)
	if chaos {
		sn.StartTrunkFlapping(runFor)
	}
	sn.RunUntil(time.Second)
	res := testbed.ShardedStorm(sn, cfg)
	sn.RunUntil(runFor)

	var sb strings.Builder
	la, su, fa, ki := res.Totals()
	fmt.Fprintf(&sb, "storm: launched=%d ok=%d failed=%d killed=%d\n", la, su, fa, ki)
	for i, dr := range res.PerDomain {
		fmt.Fprintf(&sb, "d%d: launched=%d ok=%d failed=%d killed=%d min=%v max=%v total=%v cross=%d\n",
			i, dr.Launched, dr.Succeeded, dr.Failed, dr.Killed,
			dr.MinSetup, dr.MaxSetup, dr.TotalSetup, sn.Domains[i].CrossDelivered)
	}
	for _, rt := range traces {
		fmt.Fprintf(&sb, "== trace %s\n%s", rt.name, rt.sb.String())
	}
	for _, dom := range sn.Domains {
		for _, r := range dom.Routers {
			ring := r.Stack.M.Obs.Ring()
			evs, err := json.Marshal(ring.Last(obs.DefaultRingSize))
			if err != nil {
				t.Fatal(err)
			}
			fmt.Fprintf(&sb, "%s ring total=%d events=%s\n", r.Stack.Addr, ring.Total(), evs)
		}
		fmt.Fprintf(&sb, "d%d dumps=%d health=%d\n",
			dom.Index, len(dom.FlightDumps), len(dom.HealthEvents))
	}
	fmt.Fprintf(&sb, "tseries: %s\n", sn.MergedTSeriesJSON())
	return sb.String()
}

// diffFingerprints fails the test at the first diverging line.
func diffFingerprints(t *testing.T, label, first, second string) {
	t.Helper()
	if first == second {
		return
	}
	a, b := strings.Split(first, "\n"), strings.Split(second, "\n")
	for i := 0; i < len(a) && i < len(b); i++ {
		if a[i] != b[i] {
			t.Fatalf("%s: runs diverge at line %d:\n run1: %s\n run2: %s",
				label, i+1, firstLines(a[i], 1), firstLines(b[i], 1))
		}
	}
	t.Fatalf("%s: runs diverge in length: %d vs %d lines", label, len(a), len(b))
}

// TestShardedStormDeterministicAcrossWorkers is the PR 7 acceptance
// gate: the same seeded multi-domain storm must yield byte-identical
// history — traces, rings, buckets, merged telemetry — at workers=1
// (the sequential golden reference) and any parallel worker count.
func TestShardedStormDeterministicAcrossWorkers(t *testing.T) {
	golden := shardedFingerprint(t, 42, 1, false)
	if !strings.Contains(golden, "launched=24") || strings.Contains(golden, "storm: launched=24 ok=0") {
		t.Fatalf("storm did not run the intended workload:\n%s", firstLines(golden, 6))
	}
	if strings.Contains(golden, "cross=0\n") {
		t.Fatalf("cross-domain carriers delivered nothing:\n%s", firstLines(golden, 6))
	}
	if !strings.Contains(golden, `"comp":"sighost"`) || !strings.Contains(golden, `"interval_ns"`) {
		t.Fatal("fingerprint carries no event-ring or time-series content")
	}
	for _, w := range []int{2, 4} {
		diffFingerprints(t, fmt.Sprintf("workers=1 vs workers=%d", w),
			golden, shardedFingerprint(t, 42, w, false))
	}
}

// TestShardedChaosDeterministicAcrossWorkers soaks the sharded engine
// under the standard fault cocktail — loss, duplication, delay,
// Gilbert–Elliott trunk bursts, flapping, client kills — and requires
// the healed history to stay byte-identical across worker counts. Under
// `make race` this doubles as the parallel-engine data-race soak.
func TestShardedChaosDeterministicAcrossWorkers(t *testing.T) {
	golden := shardedFingerprint(t, 7, 1, true)
	if !strings.Contains(golden, "launched=24") {
		t.Fatalf("chaos storm did not launch:\n%s", firstLines(golden, 6))
	}
	diffFingerprints(t, "chaos workers=1 vs workers=4",
		golden, shardedFingerprint(t, 7, 4, true))
}

// TestShardedFlatDegenerate checks the Domains=1 degenerate case: one
// shard, zero lookahead, no boundary trunks — the sharded assembly must
// behave like a plain testbed, with every call succeeding and the
// signaling lists draining clean.
func TestShardedFlatDegenerate(t *testing.T) {
	cfg := testbed.StormConfig{
		Count: 8, Hold: 50 * time.Millisecond, FramesPerCall: 2,
		SighostsPerDomain: 2,
	}
	sn, err := testbed.NewSharded(testbed.Options{
		Seed:          7,
		DeviceBuffers: kern.FixedDeviceBuffers,
		FDTableSize:   kern.FixedFDTableSize,
	}, cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer sn.Close()
	if got := sn.G.Shards(); got != 1 {
		t.Fatalf("flat config built %d shards, want 1", got)
	}
	if sn.G.Lookahead() != 0 {
		t.Fatalf("flat config lookahead = %v, want 0", sn.G.Lookahead())
	}
	sn.RunUntil(time.Second)
	res := testbed.ShardedStorm(sn, cfg)
	sn.RunUntil(time.Second + 4*sn.CM.BindTimeout)
	la, su, fa, _ := res.Totals()
	if la != 8 || su != 8 || fa != 0 {
		t.Fatalf("flat sharded storm: launched=%d ok=%d failed=%d, want 8/8/0", la, su, fa)
	}
	for _, r := range sn.Domains[0].Routers {
		if msg := testbed.Quiesced(r); msg != "" {
			t.Fatalf("flat sharded storm left state: %s", msg)
		}
	}
}

// TestShardedCloseNoLeak verifies the explicit-shutdown contract: after
// Close, every shard process goroutine and window worker is gone, even
// when procs were parked mid-run and the worker pool was live.
func TestShardedCloseNoLeak(t *testing.T) {
	before := runtime.NumGoroutine()
	cfg := shardedStormConfig()
	sn, err := testbed.NewSharded(testbed.Options{
		Seed:          3,
		DeviceBuffers: kern.FixedDeviceBuffers,
		FDTableSize:   kern.FixedFDTableSize,
	}, cfg)
	if err != nil {
		t.Fatal(err)
	}
	sn.G.SetWorkers(4)
	sn.RunUntil(time.Second)
	testbed.ShardedStorm(sn, cfg)
	sn.RunUntil(1500 * time.Millisecond) // stop mid-storm: procs are live and parked
	if sn.G.Live() == 0 {
		t.Fatal("expected live processes before Close")
	}
	sn.Close()
	sn.Close() // idempotent
	deadline := time.Now().Add(2 * time.Second)
	for {
		runtime.GC() // let exiting goroutines finish
		if n := runtime.NumGoroutine(); n <= before {
			break
		}
		if time.Now().After(deadline) {
			buf := make([]byte, 1<<16)
			t.Fatalf("goroutines leaked after Close: before=%d after=%d\n%s",
				before, runtime.NumGoroutine(), buf[:runtime.Stack(buf, true)])
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// shardedCallsPerSecond measures wall-clock sim-calls/s of the standard
// sharded storm at a worker count (clean path, logging and tracing off
// so the measurement is the engine, not the modeled stalls).
func shardedCallsPerSecond(t *testing.T, workers int) float64 {
	t.Helper()
	cfg := testbed.StormConfig{
		Count: 96, Hold: 50 * time.Millisecond, FramesPerCall: 2,
		Domains: 4, SighostsPerDomain: 2, TrunkDelay: 2 * time.Millisecond,
	}
	sn, err := testbed.NewSharded(testbed.Options{
		Seed:               11,
		DeviceBuffers:      kern.FixedDeviceBuffers,
		FDTableSize:        kern.FixedFDTableSize,
		DisableCallLogging: true,
		DisableTracing:     true,
	}, cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer sn.Close()
	sn.G.SetWorkers(workers)
	sn.RunUntil(time.Second)
	start := time.Now()
	done := 0
	for i := 0; i < 4; i++ {
		dcfg := cfg
		dcfg.BasePort = uint16(20000 + i*256)
		res := testbed.ShardedStorm(sn, dcfg)
		sn.RunUntil(sn.G.Now() + 5*time.Second)
		_, su, _, _ := res.Totals()
		done += su
	}
	elapsed := time.Since(start)
	if done == 0 {
		t.Fatal("scaling workload completed no calls")
	}
	return float64(done) / elapsed.Seconds()
}

// TestShardedScalingGate is the PR 7 throughput acceptance: ≥ 2.5×
// sim-calls/s at 4 workers over 1 on a 4-domain topology. Parallel
// speedup needs parallel hardware, so the gate skips (loudly) on
// machines without at least four CPUs — the determinism gates above
// still run there and cover correctness.
func TestShardedScalingGate(t *testing.T) {
	if testing.Short() {
		t.Skip("scaling measurement skipped in -short")
	}
	if np := runtime.GOMAXPROCS(0); np < 4 {
		t.Skipf("scaling gate needs GOMAXPROCS >= 4, have %d: skipping the speedup assertion", np)
	}
	base := shardedCallsPerSecond(t, 1)
	par := shardedCallsPerSecond(t, 4)
	t.Logf("sim-calls/s: workers=1 %.1f, workers=4 %.1f (%.2fx)", base, par, par/base)
	if par < 2.5*base {
		t.Errorf("4-worker speedup %.2fx below the 2.5x gate (w1=%.1f w4=%.1f sim-calls/s)",
			par/base, base, par)
	}
}
