package testbed_test

import (
	"strings"
	"testing"
	"time"

	"xunet/internal/kern"
	"xunet/internal/signaling"
	"xunet/internal/testbed"
	"xunet/internal/trace"
)

// runTracedStorm runs the E4 mixed workload (§10: concurrent calls,
// some clients killed mid-setup) and returns the deployment with its
// flight recorder populated.
func runTracedStorm(t *testing.T, seed uint64) (*testbed.Net, *testbed.Router) {
	t.Helper()
	n, ra, rb, err := testbed.NewTestbed(testbed.Options{
		Seed:          seed,
		DeviceBuffers: kern.FixedDeviceBuffers,
		FDTableSize:   kern.FixedFDTableSize,
	})
	if err != nil {
		t.Fatal(err)
	}
	testbed.StartEchoServer(rb, "storm", 6000)
	n.E.RunUntil(time.Second)
	testbed.CallStorm(ra, "ucb.rt", "storm", testbed.StormConfig{
		Count: 30, Hold: 250 * time.Millisecond, FramesPerCall: 2,
		KillEvery: 7, KillAfter: 40 * time.Millisecond,
	})
	n.E.RunUntil(n.E.Now() + 4*n.CM.BindTimeout)
	return n, ra
}

// TestTraceJSONDeterministicAcrossRuns is the reproducibility gate the
// trace layer promises: spans carry sim-time stamps and counter-derived
// IDs, so two same-seed E4 runs export byte-identical Chrome trace JSON.
func TestTraceJSONDeterministicAcrossRuns(t *testing.T) {
	export := func() string {
		n, _ := runTracedStorm(t, 42)
		defer n.E.Shutdown()
		out, err := trace.ChromeJSON(n.TraceC.Completed())
		if err != nil {
			t.Fatal(err)
		}
		return string(out)
	}
	first := export()
	if !strings.Contains(first, "xswitch") || !strings.Contains(first, "call.setup") {
		t.Fatalf("trace export lacks cross-layer spans:\n%.400s", first)
	}
	second := export()
	if first != second {
		t.Fatalf("same-seed trace exports differ: %d vs %d bytes", len(first), len(second))
	}
}

// TestStormFlightDumps checks the flight recorder's auto-dump wiring:
// the E4 kill storm tears some calls down on client death, and each such
// call must leave its rendered span tree behind.
func TestStormFlightDumps(t *testing.T) {
	n, ra := runTracedStorm(t, 42)
	defer n.E.Shutdown()
	if len(n.FlightDumps) == 0 {
		t.Fatal("kill storm produced no flight-recorder dumps")
	}
	for _, tree := range n.FlightDumps {
		if !strings.Contains(tree, "status=DEATH") &&
			!strings.Contains(tree, "status=REJECT") &&
			!strings.Contains(tree, "status=TIMEOUT") {
			t.Fatalf("dump for a non-failure status:\n%s", tree)
		}
	}
	// The collector's health counters surface on the machine registry.
	snap := ra.Stack.M.Obs.Snapshot()
	if snap.Count("trace.traces.completed") == 0 {
		t.Fatal("trace counters missing from MGMT stats surface")
	}
	if got, want := snap.Count("trace.flight.dumps"), uint64(len(n.FlightDumps)); got != want {
		t.Fatalf("trace.flight.dumps = %d, want %d", got, want)
	}
}

// TestTraceAttributionGolden is the acceptance check on the paper's
// Table 1 reproduction: for a scripted single call, the per-layer parts
// of the attribution report sum exactly to the end-to-end setup span —
// no double counting, no gaps.
func TestTraceAttributionGolden(t *testing.T) {
	n, ra, rb, err := testbed.NewTestbed(testbed.Options{Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	defer n.E.Shutdown()
	testbed.StartEchoServer(rb, "echo", 6000)
	n.E.RunUntil(time.Second)
	testbed.CallStorm(ra, "ucb.rt", "echo", testbed.StormConfig{
		Count: 1, Hold: 100 * time.Millisecond, FramesPerCall: 1,
	})
	n.E.RunUntil(n.E.Now() + 4*n.CM.BindTimeout)

	completed := n.TraceC.Completed()
	if len(completed) != 1 {
		t.Fatalf("expected 1 completed trace, got %d", len(completed))
	}
	tr := completed[0]
	if tr.Status != trace.StatusOK {
		t.Fatalf("call did not establish: %s", trace.TextTree(tr))
	}

	att, ok := n.SetupAttribution(tr.CallID)
	if !ok {
		t.Fatal("no call.setup span in the trace")
	}
	if att.Total <= 0 {
		t.Fatalf("setup total %v", att.Total)
	}
	var sum time.Duration
	names := map[string]bool{}
	for _, p := range att.Parts {
		sum += p.Dur
		names[p.Comp+"/"+p.Name] = true
	}
	if sum != att.Total || att.Unattributed != 0 {
		t.Fatalf("attribution parts sum %v != setup total %v (unattributed %v):\n%s",
			sum, att.Total, att.Unattributed, att.String())
	}
	for _, want := range []string{"sighost/process", "sighost/peer", "sighost/program"} {
		if !names[want] {
			t.Fatalf("attribution missing %s:\n%s", want, att.String())
		}
	}
	// The tree reaches every layer: daemon, socket layer, fabric hops,
	// and the kernel indication that completed the bind.
	tree := trace.TextTree(tr)
	for _, want := range []string{"sighost/", "pfxunet/frame", "xswitch/", "kern/"} {
		if !strings.Contains(tree, want) {
			t.Fatalf("span tree missing %s spans:\n%s", want, tree)
		}
	}
}

// TestMgmtCallTraceQuery exercises the in-band query path applications
// and cmd/xunetstat use: MGMT_QUERY "calltrace" returns the rendered
// span tree plus the setup breakdown for the requested call.
func TestMgmtCallTraceQuery(t *testing.T) {
	n, ra := runTracedStorm(t, 42)
	defer n.E.Shutdown()
	var ok *trace.Trace
	for _, tr := range n.TraceC.Completed() {
		if tr.Status == trace.StatusOK {
			ok = tr
			break
		}
	}
	if ok == nil {
		t.Fatal("storm produced no successful call")
	}
	var body string
	var qerr error
	done := make(chan struct{})
	ra.Stack.Spawn("mgmt-query", func(p *kern.Proc) {
		defer close(done)
		body, qerr = ra.Lib.QueryCall(p, signaling.MgmtCallTrace, ok.CallID)
	})
	n.E.RunUntil(n.E.Now() + time.Second)
	select {
	case <-done:
	default:
		t.Fatal("mgmt query never completed")
	}
	if qerr != nil {
		t.Fatal(qerr)
	}
	for _, want := range []string{"call.setup", "setup breakdown", "sighost/peer"} {
		if !strings.Contains(body, want) {
			t.Fatalf("calltrace reply missing %q:\n%s", want, body)
		}
	}
}
