// Package testbed composes complete simulated Xunet deployments:
// routers with signaling entities joined by PVC meshes, IP-connected
// hosts running anand clients, and the workload generators the paper's
// experiments use (call storms, echo services, traffic sources).
//
// NewTestbed builds the measurement setup of §9 — two SGI 4D/30-class
// routers across a three hop (two switch) ATM path — and NewXunet
// builds the five-site nationwide network of §1.
package testbed

import (
	"fmt"
	"time"

	"xunet/internal/anand"
	"xunet/internal/atm"
	"xunet/internal/core"
	"xunet/internal/faults"
	"xunet/internal/kern"
	"xunet/internal/memnet"
	"xunet/internal/obs"
	"xunet/internal/obs/tseries"
	"xunet/internal/prof"
	"xunet/internal/signaling"
	"xunet/internal/sim"
	"xunet/internal/trace"
	"xunet/internal/ulib"
	"xunet/internal/xswitch"
)

// Options tunes a testbed build.
type Options struct {
	// Seed drives all simulated randomness (default 1).
	Seed uint64
	// DeviceBuffers sizes every machine's pseudo-device (§10: 8
	// originally, 80 after the fix; default 80 — the fixed
	// configuration — unless a test sweeps it).
	DeviceBuffers int
	// FDTableSize sizes per-process descriptor tables (default
	// kern.DefaultFDTableSize = 20).
	FDTableSize int
	// DisableCallLogging turns off sighost's per-call maintenance
	// logging (the E3 ablation).
	DisableCallLogging bool
	// DisableTracing turns off the causal call tracer (it is on by
	// default so `xunetstat trace <callid>` works against any testbed).
	DisableTracing bool
	// TraceSampleEvery keeps one call trace in every N (head-based
	// sampling; 0 or 1 keeps all).
	TraceSampleEvery uint64
	// Faults, when non-nil, arms the fault-injection plane with this
	// config and enables the self-healing signaling machinery (reliable
	// peer channel, crash-recovery journal, keepalives) on every router.
	// Nil leaves every transport hook a single nil-check and the
	// signaling clean path byte-identical to a fault-free build.
	Faults *faults.Config
	// Rel overrides the reliability tuning when faults are armed (zero
	// value selects signaling.DefaultRelConfig()).
	Rel signaling.RelConfig
	// TSeries, when non-nil, arms continuous telemetry: every machine
	// registry, trunk, and IP link is scraped into Net.TS on sim-time
	// ticks once StartTSeries is called. Nil (the default) keeps every
	// hot-path hook a single nil check and existing goldens untouched.
	TSeries *tseries.Config
	// Prof arms the execution profiler (internal/prof): per-label event
	// attribution on every engine, window/stall accounting on sharded
	// groups, and the MGMT prof views on every router. Everything Prof
	// alone records is deterministic — event counts, the cross-shard
	// matrix — so byte-diffed exports may enable it freely.
	Prof bool
	// ProfSeries additionally feeds the profiler's *wall-clock* stall
	// accounting into each domain's time-series store and installs the
	// hot-shard watermark rule. Wall time varies run to run, so arm it
	// for live monitoring (xunetsim, xunettop), never for byte-diffed
	// exports. Implies Prof.
	ProfSeries bool
}

func (o Options) withDefaults() Options {
	if o.Seed == 0 {
		o.Seed = 1
	}
	if o.DeviceBuffers == 0 {
		o.DeviceBuffers = kern.FixedDeviceBuffers
	}
	return o
}

// Router is a machine with an ATM interface and a signaling entity.
type Router struct {
	Stack *core.Stack
	Sig   *signaling.SimHost
	Lib   *ulib.Lib
	site  int
	hosts int
}

// Host is an IP-connected machine reaching ATM through its router.
type Host struct {
	Stack  *core.Stack
	Router *Router
	Lib    *ulib.Lib
	Anand  *anand.Client
	net    *Net
}

// Net is one assembled deployment.
type Net struct {
	E      *sim.Engine
	CM     sim.CostModel
	Fabric *xswitch.Fabric
	IPNet  *memnet.Network
	// TraceC is the deployment-wide causal-trace collector: one
	// collector spans every machine and the fabric so a call's span
	// tree stitches together across layers.
	TraceC  *trace.Collector
	Routers map[atm.Addr]*Router
	// Faults is the deployment's fault plane (nil unless Options.Faults
	// armed it); its registry holds the faults.* injection counters.
	Faults *faults.Plane
	// FlightDumps accumulates the span trees the flight recorder
	// auto-dumped for calls ending in REJECT, TIMEOUT, or DEATH — the
	// E4 storm's failure modes leave their trails here.
	FlightDumps []string
	// TS is the deployment's time-series store (nil unless
	// Options.TSeries armed it); HealthEvents accumulates every
	// watermark edge its rules emitted.
	TS           *tseries.Store
	HealthEvents []tseries.HealthEvent
	// Prof is the deployment's execution profiler (nil unless
	// Options.Prof or ProfSeries armed it); one profiler spans the
	// engine and, through the MGMT hooks, every router answers from it.
	Prof     *prof.Profiler
	opts     Options
	nextSite int
}

// New builds an empty deployment; add routers and hosts, then Run.
func New(opts Options) *Net {
	opts = opts.withDefaults()
	e := sim.New(opts.Seed)
	var pf *prof.Profiler
	if opts.Prof || opts.ProfSeries {
		// Attach before the fabric and machines exist so construction-time
		// label interning (trunk tx/deliver, proc kinds) lands in the table.
		pf = prof.New()
		e.AttachProfiler(pf)
	}
	n := &Net{
		Prof:    pf,
		E:       e,
		CM:      sim.DefaultCostModel(),
		Fabric:  xswitch.NewFabric(e),
		IPNet:   memnet.New(e),
		TraceC:  trace.NewCollector(e.Now),
		Routers: make(map[atm.Addr]*Router),
		opts:    opts,
	}
	n.TraceC.SetEnabled(!opts.DisableTracing)
	if opts.TraceSampleEvery > 1 {
		n.TraceC.SetSampleEvery(opts.TraceSampleEvery)
	}
	n.TraceC.OnDump(func(t *trace.Trace, tree string) {
		n.FlightDumps = append(n.FlightDumps, tree)
	})
	n.Fabric.TraceC = n.TraceC
	if opts.TSeries != nil {
		n.TS = tseries.New(*opts.TSeries)
		// The fabric registry's metric names already carry the fabric.
		// prefix; machine registries get their router's address as prefix
		// when AddRouter tracks them.
		n.TS.TrackRegistry("", n.Fabric.Obs)
	}
	if opts.Faults != nil {
		fc := *opts.Faults
		if fc.Seed == 0 {
			// Derive from the workload seed so distinct testbeds get
			// distinct fault schedules by default, deterministically.
			fc.Seed = opts.Seed*0x9E3779B97F4A7C15 + 0xC4A05
		}
		n.Faults = faults.NewPlane(fc)
		n.Faults.AttachTrace(n.TraceC, e.Now)
		n.Fabric.Faults = n.Faults
		n.IPNet.Faults = n.Faults
	}
	return n
}

// StartTrunkFlapping begins the fault plane's trunk flap schedule,
// running until the given sim-time cutoff (trunks always end up).
func (n *Net) StartTrunkFlapping(until time.Duration) {
	n.Fabric.StartFlapping(until)
}

// DefaultHealthRules are the watermark rules StartTSeries installs: a
// trunk's between-tick queue high-water past QueueWatermarkCells, a
// burst of signaling retransmissions in one tick, and a burst of
// flight-recorder dumps in one tick.
func DefaultHealthRules() []tseries.Rule {
	return []tseries.Rule{
		{Name: "trunk-queue-buildup", Series: "fabric.trunk.*.qdepth", Threshold: QueueWatermarkCells, OnAux: true, ForTicks: 1},
		{Name: "retransmit-spike", Series: "*.sighost.rel.retransmits", Threshold: 3, ForTicks: 1},
		{Name: "flight-dump-burst", Series: "*.trace.flight.dumps", Threshold: 3, ForTicks: 1},
	}
}

// QueueWatermarkCells is the queue-depth high-water (in cells) at which
// the trunk-queue-buildup rule fires. A DS3 trunk serializes a cell in
// ~9.4µs, so 16 queued cells is ~150µs of standing delay — congestion
// onset, well before the 2048-cell overflow point.
const QueueWatermarkCells = 16

// HotShardStallNS is the per-tick wall-clock barrier stall (in
// nanoseconds) at which the hot-shard-stall rule fires when
// Options.ProfSeries is armed: one shard spending a millisecond of
// real time per tick waiting at the barrier means the partition is
// imbalanced enough to cost wall-clock speedup.
const HotShardStallNS = 1_000_000

// StartTSeries begins the scrape tick chain: every store interval, the
// deployment's metrics are sampled and the watermark rules evaluated,
// until the given sim-time cutoff (self-rescheduling events would
// otherwise keep Run from draining). It registers the trunk and IP-link
// sources, installs DefaultHealthRules, and wires rule fires to publish
// a health event on the fabric's obs ring and dump the flight
// recorder's recent traces. No-op unless Options.TSeries armed the
// store. Call it after the topology is assembled, before Run.
func (n *Net) StartTSeries(until time.Duration) {
	if n.TS == nil {
		return
	}
	n.Fabric.RegisterTSeries(n.TS)
	n.IPNet.RegisterTSeries(n.TS)
	for _, r := range DefaultHealthRules() {
		n.TS.AddRule(r)
	}
	n.TS.OnHealthEvent(func(ev tseries.HealthEvent) {
		n.HealthEvents = append(n.HealthEvents, ev)
		n.Fabric.Obs.Ring().Publish(obs.Event{
			At: ev.At, Comp: "health", Kind: ev.State, Peer: ev.Series, Text: ev.String(),
		})
		if ev.State == "fire" {
			n.TraceC.DumpRecent(4, ev.Rule)
		}
	})
	interval := n.TS.Interval()
	var tick func()
	tick = func() {
		n.TS.Tick(n.E.Now())
		if n.E.Now()+interval <= until {
			n.E.Schedule(interval, tick)
		}
	}
	n.E.Schedule(interval, tick)
}

// AddRouter creates a router attached to sw and starts its signaling
// entity. Signaling PVCs to all existing routers are provisioned.
func (n *Net) AddRouter(addr atm.Addr, sw *xswitch.Switch) (*Router, error) {
	n.nextSite++
	site := n.nextSite
	ip := n.IPNet.MustAddNode(string(addr), memnet.IP4(10, byte(site), 0, 1))
	stack, err := core.NewRouter(n.E, n.CM, core.RouterConfig{
		Name: string(addr), Addr: addr, IP: ip, Fabric: n.Fabric, Switch: sw,
		DeviceBuffers: n.opts.DeviceBuffers, FDTableSize: n.opts.FDTableSize,
	})
	if err != nil {
		return nil, err
	}
	stack.M.TraceC = n.TraceC
	registerTraceStats(stack.M.Obs, n.TraceC)
	r := &Router{Stack: stack, site: site}
	r.Sig = signaling.StartSim(stack, n.Fabric)
	if n.opts.DisableCallLogging {
		r.Sig.SH.SetLogging(false)
	}
	if n.Faults != nil {
		// Chaos mode: arm the self-healing machinery and thread the
		// plane through this router's transports.
		rel := n.opts.Rel
		if rel.RTO <= 0 {
			rel = signaling.DefaultRelConfig()
		}
		r.Sig.SH.EnableReliability(rel)
		r.Sig.SH.EnableJournal(0)
		r.Sig.Faults = n.Faults
		stack.M.Dev.SetFaults(n.Faults)
		fp := n.Faults
		r.Sig.SH.FaultsInfo = func() string { return fp.Obs.Snapshot().Text() }
		r.Sig.SH.FaultsJSON = func() string { return fp.Obs.Snapshot().JSON() }
	}
	if n.TS != nil {
		// Machine metrics join the scrape under the router's address
		// (lazily registered ones — journal, per-peer backlogs — are
		// adopted by the store's growth rescan), and the MGMT tseries/
		// health queries answer from the shared store.
		n.TS.TrackRegistry(string(addr)+".", stack.M.Obs)
		r.Sig.SH.TSeriesInfo = n.TS.Text
		r.Sig.SH.TSeriesJSON = n.TS.JSON
		r.Sig.SH.HealthInfo = n.TS.HealthText
		r.Sig.SH.HealthJSON = n.TS.HealthJSON
	}
	if n.Prof != nil {
		// Every router answers MGMT prof queries from the deployment-wide
		// profile (the profiler spans the engine, not one machine).
		r.Sig.SH.ProfInfo = n.Prof.Text
		r.Sig.SH.ProfJSON = n.Prof.JSON
		r.Sig.SH.ProfFlame = n.Prof.FlameFolded
	}
	r.Lib = ulib.New(stack, ip.Addr)
	for _, other := range n.Routers {
		if err := signaling.ConnectSighosts(r.Sig, other.Sig); err != nil {
			return nil, err
		}
	}
	n.Routers[addr] = r
	return r, nil
}

// AddHost creates an IP-connected host behind a router, wired over
// FDDI, running an anand client.
func (n *Net) AddHost(name atm.Addr, r *Router) (*Host, error) {
	r.hosts++
	ip := n.IPNet.MustAddNode(string(name), memnet.IP4(10, byte(r.site), 0, byte(10+r.hosts)))
	routerIP := r.Stack.M.IP
	n.IPNet.Connect(ip, routerIP, memnet.FDDI())
	ip.SetDefaultRoute(routerIP)
	routerIP.AddRoute(ip.Addr, ip)
	stack := core.NewHost(n.E, n.CM, core.HostConfig{
		Name: string(name), Addr: name, IP: ip, RouterIP: routerIP.Addr,
		DeviceBuffers: n.opts.DeviceBuffers, FDTableSize: n.opts.FDTableSize,
	})
	stack.M.TraceC = n.TraceC
	if n.Faults != nil {
		stack.M.Dev.SetFaults(n.Faults)
	}
	h := &Host{Stack: stack, Router: r, net: n}
	h.Lib = ulib.New(stack, routerIP.Addr)
	h.Anand = anand.StartClient(stack, routerIP.Addr, signaling.AnandPort)
	return h, nil
}

// NewTestbed builds the paper's measurement testbed: two routers,
// mh.rt and ucb.rt, across a three hop (two switch) DS3 path.
func NewTestbed(opts Options) (*Net, *Router, *Router, error) {
	n := New(opts)
	swA, swB := xswitch.Testbed(n.Fabric)
	ra, err := n.AddRouter("mh.rt", swA)
	if err != nil {
		return nil, nil, nil, err
	}
	rb, err := n.AddRouter("ucb.rt", swB)
	if err != nil {
		return nil, nil, nil, err
	}
	return n, ra, rb, nil
}

// NewXunet builds the five-site nationwide Xunet 2 deployment with one
// router per site.
func NewXunet(opts Options) (*Net, map[xswitch.XunetSite]*Router, error) {
	n := New(opts)
	switches := xswitch.Xunet(n.Fabric)
	routers := make(map[xswitch.XunetSite]*Router, len(switches))
	for _, site := range xswitch.XunetSites() {
		r, err := n.AddRouter(atm.Addr(xswitch.SiteRouterAddr(site)), switches[site])
		if err != nil {
			return nil, nil, err
		}
		routers[site] = r
	}
	return n, routers, nil
}

// Endpoint is anything applications run on: a Router or a Host.
type Endpoint interface {
	EndStack() *core.Stack
	EndLib() *ulib.Lib
}

// EndStack implements Endpoint.
func (r *Router) EndStack() *core.Stack { return r.Stack }

// EndLib implements Endpoint.
func (r *Router) EndLib() *ulib.Lib { return r.Lib }

// EndStack implements Endpoint.
func (h *Host) EndStack() *core.Stack { return h.Stack }

// EndLib implements Endpoint.
func (h *Host) EndLib() *ulib.Lib { return h.Lib }

// EchoServer runs the paper's echo service on an endpoint: it exports
// the name, then accepts every incoming call, binds the granted VCI and
// drains received frames, counting them.
type EchoServer struct {
	Service string
	// Received counts frames drained; Accepted counts calls accepted.
	Received uint64
	Accepted uint64
	// ModifyQoS, when non-empty, is the server's counter-offer.
	ModifyQoS string

	proc    *kern.Proc
	workers []*kern.Proc
}

// StartEchoServer launches the Figure 5 flow on ep.
func StartEchoServer(ep Endpoint, service string, notifyPort uint16) *EchoServer {
	srv := &EchoServer{Service: service}
	stack, lib := ep.EndStack(), ep.EndLib()
	srv.proc = stack.Spawn("echo-server", func(p *kern.Proc) {
		if err := lib.ExportService(p, service, notifyPort); err != nil {
			return
		}
		kl, err := lib.CreateReceiveConnection(p, notifyPort)
		if err != nil {
			return
		}
		for {
			req, err := lib.AwaitServiceRequest(p, kl)
			if err != nil {
				return
			}
			offer := srv.ModifyQoS
			if offer == "" {
				offer = req.QoS
			}
			vci, _, err := req.Accept(offer)
			if err != nil {
				continue
			}
			srv.Accepted++
			// Spawn a worker to drain the circuit, as the paper's
			// servers "spawn off a child to do the actual work".
			cookie := req.Cookie
			srv.workers = append(srv.workers, stack.Spawn("echo-worker", func(w *kern.Proc) {
				sock, err := stack.PF.Socket(w)
				if err != nil {
					return
				}
				if err := sock.Bind(vci, cookie); err != nil {
					return
				}
				for {
					if _, err := sock.Recv(); err != nil {
						return
					}
					srv.Received++
				}
			}))
		}
	})
	return srv
}

// Kill terminates the server process and its per-call workers
// (robustness experiments: the whole remote application fails).
func (s *EchoServer) Kill() {
	s.proc.Kill()
	for _, w := range s.workers {
		w.Kill()
	}
}

// CallResult records one client call attempt for the storm workloads.
type CallResult struct {
	OK        bool
	Err       error
	SetupTime time.Duration // virtual time from request to VCI_FOR_CONN
	VCI       atm.VCI
	QoS       string
}

// OpenAndUse performs the Figure 6 client flow on ep: open a
// connection, connect a socket with the cookie, send frames, close.
func OpenAndUse(ep Endpoint, p *kern.Proc, dest atm.Addr, service string, notifyPort uint16, qosStr string, frames int, hold func(*kern.Proc)) CallResult {
	return OpenAndUseFrames(ep, p, dest, service, notifyPort, qosStr, frames, 0, hold)
}

// OpenAndUseFrames is OpenAndUse with each data frame padded to
// frameBytes (<= 0 keeps the tiny default frames). Multi-cell frames
// let load workloads actually exercise trunk queues: a 1400-byte frame
// is ~30 cells arriving at host-interface rate and draining at trunk
// rate.
func OpenAndUseFrames(ep Endpoint, p *kern.Proc, dest atm.Addr, service string, notifyPort uint16, qosStr string, frames, frameBytes int, hold func(*kern.Proc)) CallResult {
	stack, lib := ep.EndStack(), ep.EndLib()
	start := p.SP.Now()
	conn, err := lib.OpenConnection(p, dest, service, notifyPort, "testbed", qosStr)
	if err != nil {
		return CallResult{Err: err}
	}
	res := CallResult{OK: true, SetupTime: p.SP.Now() - start, VCI: conn.VCI, QoS: conn.QoS}
	sock, err := stack.PF.Socket(p)
	if err != nil {
		return CallResult{Err: err}
	}
	if err := sock.Connect(conn.VCI, conn.Cookie); err != nil {
		return CallResult{Err: err}
	}
	// Data frames sent on this circuit join the call's span tree.
	sock.SetTrace(conn.Trace)
	if frames > 0 {
		// The stack is datagram-like: frames sent before the server has
		// bound its socket are legitimately dropped, so give the far
		// side a moment to finish its accept_connection/bind sequence.
		p.SP.Sleep(100 * time.Millisecond)
	}
	for i := 0; i < frames; i++ {
		payload := []byte(fmt.Sprintf("frame %d", i))
		if frameBytes > len(payload) {
			payload = append(payload, make([]byte, frameBytes-len(payload))...)
		}
		_ = sock.Send(payload)
	}
	if hold != nil {
		hold(p)
	} else if frames > 0 {
		// Linger so in-flight cells drain before the close tears the
		// circuit's switch entries down.
		p.SP.Sleep(100 * time.Millisecond)
	}
	sock.Close()
	return res
}

// registerTraceStats surfaces the trace collector's counters in a
// machine registry, so MGMT stats and the Report include dropped-span
// and flight-ring-overflow accounting next to the other telemetry.
func registerTraceStats(reg *obs.Registry, tc *trace.Collector) {
	reg.Func("trace.traces.started", func() uint64 { return tc.StatsNow().Started })
	reg.Func("trace.traces.sampled", func() uint64 { return tc.StatsNow().Sampled })
	reg.Func("trace.traces.completed", func() uint64 { return tc.StatsNow().Completed })
	// Active is a gauge, not a counter, so it stays off the Func surface
	// (mgmt counters are expected to be monotonic); StatsNow exposes it.
	reg.Func("trace.spans.dropped", func() uint64 { return tc.StatsNow().DroppedSpans })
	reg.Func("trace.flight.evicted", func() uint64 { return tc.StatsNow().Evicted })
	reg.Func("trace.flight.dumps", func() uint64 { return tc.StatsNow().Dumps })
}

// CallTrace fetches a call's span tree from the deployment collector
// (active calls first, then the flight recorder).
func (n *Net) CallTrace(callID uint32) (*trace.Trace, bool) {
	return n.TraceC.ByCall(callID)
}

// SetupAttribution reproduces the paper's Table 1 setup-overhead
// breakdown for one traced call: where its establishment latency went,
// layer by layer.
func (n *Net) SetupAttribution(callID uint32) (trace.Attribution, bool) {
	t, ok := n.TraceC.ByCall(callID)
	if !ok {
		return trace.Attribution{}, false
	}
	return trace.Attribute(t)
}

// Quiesced asserts that all transient signaling state has drained on a
// router: outgoing_requests, incoming_requests, wait_for_bind and
// VCI_mapping empty, and no cookies outstanding. It returns a
// description of what leaked, or "" when clean.
func Quiesced(r *Router) string {
	_, out, in, wb, vm := r.Sig.SH.ListSizes()
	if out != 0 || in != 0 || wb != 0 || vm != 0 {
		return fmt.Sprintf("%s lists not empty: outgoing=%d incoming=%d wait_bind=%d vci_map=%d",
			r.Stack.Addr, out, in, wb, vm)
	}
	if c := r.Sig.SH.CookieCount(); c != 0 {
		return fmt.Sprintf("%s cookies leaked: %d", r.Stack.Addr, c)
	}
	return ""
}
