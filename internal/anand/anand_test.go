package anand

import (
	"testing"
	"testing/quick"
	"time"

	"xunet/internal/atm"
	"xunet/internal/core"
	"xunet/internal/kern"
	"xunet/internal/memnet"
	"xunet/internal/sim"
	"xunet/internal/xswitch"
)

func TestCodecRoundTrip(t *testing.T) {
	up := kern.KMsg{Kind: kern.MsgBind, VCI: 1234, Cookie: 0xBEEF, PID: 99}
	gotUp, _, isUp, err := decode(encodeUp(up))
	if err != nil || !isUp || gotUp != up {
		t.Fatalf("up: %+v %v %v", gotUp, isUp, err)
	}
	down := kern.DownCmd{Kind: kern.DownDisconnect, VCI: 777}
	_, gotDown, isUp2, err := decode(encodeDown(down))
	if err != nil || isUp2 || gotDown != down {
		t.Fatalf("down: %+v %v %v", gotDown, isUp2, err)
	}
}

func TestCodecErrors(t *testing.T) {
	if _, _, _, err := decode(nil); err == nil {
		t.Fatal("nil accepted")
	}
	if _, _, _, err := decode([]byte{frameUp, 1, 2, 3}); err == nil {
		t.Fatal("short up frame accepted")
	}
	if _, _, _, err := decode([]byte{99, 0, 0, 0}); err == nil {
		t.Fatal("unknown frame kind accepted")
	}
}

func TestQuickCodec(t *testing.T) {
	f := func(kind uint8, vci, cookie uint16, pid uint32) bool {
		up := kern.KMsg{Kind: kern.MsgKind(kind), VCI: atm.VCI(vci), Cookie: cookie, PID: pid}
		got, _, isUp, err := decode(encodeUp(up))
		return err == nil && isUp && got == up
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// rig builds a router with a fabric attachment and one host behind it.
func rig(t *testing.T) (*sim.Engine, *core.Stack, *core.Stack, *Server, *Client) {
	t.Helper()
	e := sim.New(1)
	cm := sim.DefaultCostModel()
	fab := xswitch.NewFabric(e)
	sw := fab.MustAddSwitch("sw")
	n := memnet.New(e)
	ipR := n.MustAddNode("rt", memnet.IP4(10, 0, 0, 1))
	ipH := n.MustAddNode("h", memnet.IP4(10, 0, 0, 10))
	n.Connect(ipR, ipH, memnet.FDDI())
	ipH.SetDefaultRoute(ipR)
	ipR.AddRoute(ipH.Addr, ipH)
	router, err := core.NewRouter(e, cm, core.RouterConfig{Name: "rt", Addr: "rt", IP: ipR, Fabric: fab, Switch: sw})
	if err != nil {
		t.Fatal(err)
	}
	host := core.NewHost(e, cm, core.HostConfig{Name: "h", Addr: "h", IP: ipH, RouterIP: ipR.Addr})
	srv, err := StartServer(router, 178)
	if err != nil {
		t.Fatal(err)
	}
	cli := StartClient(host, ipR.Addr, 178)
	return e, router, host, srv, cli
}

func TestRelayUpward(t *testing.T) {
	e, _, host, srv, cli := rig(t)
	var got []kern.KMsg
	var from memnet.IPAddr
	srv.OnKernel = func(f memnet.IPAddr, k kern.KMsg) {
		from = f
		got = append(got, k)
	}
	e.Schedule(100*time.Millisecond, func() {
		host.M.Dev.PostUp(kern.KMsg{Kind: kern.MsgConnect, VCI: 50, Cookie: 7, PID: 3})
	})
	e.RunUntil(time.Second)
	if len(got) != 1 || got[0].VCI != 50 || got[0].Cookie != 7 {
		t.Fatalf("got %v", got)
	}
	if from != host.M.IP.Addr {
		t.Fatalf("from = %v", from)
	}
	if cli.Relayed != 1 {
		t.Fatalf("client relayed = %d", cli.Relayed)
	}
	e.Shutdown()
}

func TestBindInstallsVCIForwarding(t *testing.T) {
	e, router, host, srv, _ := rig(t)
	srv.OnKernel = func(memnet.IPAddr, kern.KMsg) {}
	e.Schedule(100*time.Millisecond, func() {
		host.M.Dev.PostUp(kern.KMsg{Kind: kern.MsgBind, VCI: 60, Cookie: 1, PID: 2})
	})
	e.RunUntil(time.Second)
	if !router.ATM.Bound(60) {
		t.Fatal("VCI_BIND not installed at router")
	}
	if srv.Binds != 1 {
		t.Fatalf("Binds = %d", srv.Binds)
	}
	// A close clears it again (VCI_SHUT).
	e.Schedule(0, func() {
		host.M.Dev.PostUp(kern.KMsg{Kind: kern.MsgClose, VCI: 60})
	})
	e.RunUntil(2 * time.Second)
	if router.ATM.Bound(60) {
		t.Fatal("VCI_SHUT did not clear the binding")
	}
	if srv.Shuts != 1 {
		t.Fatalf("Shuts = %d", srv.Shuts)
	}
	e.Shutdown()
}

func TestDisconnectRelaysDownward(t *testing.T) {
	e, router, host, srv, _ := rig(t)
	srv.OnKernel = func(memnet.IPAddr, kern.KMsg) {}
	// Bind a host socket so soisdisconnected has a target.
	var recvErr error
	host.Spawn("app", func(p *kern.Proc) {
		s, err := host.PF.Socket(p)
		if err != nil {
			t.Error(err)
			return
		}
		if err := s.Bind(70, 0); err != nil {
			t.Error(err)
			return
		}
		_, recvErr = s.Recv()
	})
	e.Schedule(500*time.Millisecond, func() {
		if !srv.Connected(host.M.IP.Addr) {
			t.Error("host not connected to anand server")
		}
		srv.Disconnect(host.M.IP.Addr, 70)
	})
	e.RunUntil(5 * time.Second)
	if recvErr == nil {
		t.Fatal("host socket not disconnected")
	}
	_ = router
	e.Shutdown()
}

func TestDisconnectUnknownHostIsNoop(t *testing.T) {
	e, _, _, srv, _ := rig(t)
	srv.Disconnect(memnet.IP4(9, 9, 9, 9), 70) // must not panic
	e.RunUntil(time.Second)
	e.Shutdown()
}
