package anand

import (
	"testing"
	"time"

	"xunet/internal/atm"
	"xunet/internal/kern"
	"xunet/internal/memnet"
)

// Failure-path tests for the relay pair.

func TestServerForgetsDeadHost(t *testing.T) {
	e, _, host, srv, _ := rig(t)
	srv.OnKernel = func(memnet.IPAddr, kern.KMsg) {}
	e.RunUntil(500 * time.Millisecond)
	if !srv.Connected(host.M.IP.Addr) {
		t.Fatal("host never connected")
	}
	// The host's pseudo-device closes (machine going down): the anand
	// client closes its relay connection, and the server must forget
	// the host.
	host.M.Dev.Close()
	e.RunUntil(5 * time.Second)
	if srv.Connected(host.M.IP.Addr) {
		t.Fatal("server still lists the dead host")
	}
	// Disconnects for the dead host are dropped, not crashed on.
	srv.Disconnect(host.M.IP.Addr, 44)
	e.Shutdown()
}

func TestClientWithoutServerGivesUpQuietly(t *testing.T) {
	// A host whose router runs no anand server: StartClient's dial is
	// refused and the client exits without wedging the host.
	e, router, host, _, _ := rig(t)
	_ = router
	h2ip := host.M.IP // reuse the rig's network: dial a port nobody owns
	c := StartClient(host, h2ip.Addr, 999)
	e.RunUntil(2 * time.Second)
	if c.Relayed != 0 {
		t.Fatalf("relayed %d with no server", c.Relayed)
	}
	if e.Live() == 0 {
		// the rig's own daemons still run; just verify engine health
		t.Fatal("engine lost all processes")
	}
	e.Shutdown()
}

func TestRelayPreservesMessageOrder(t *testing.T) {
	e, _, host, srv, _ := rig(t)
	var got []kern.KMsg
	srv.OnKernel = func(_ memnet.IPAddr, k kern.KMsg) { got = append(got, k) }
	// Paced below the device's 8-buffer capacity: an unpaced burst of
	// 30 would (correctly) lose 21 messages, the §10 failure mode.
	for i := 0; i < 30; i++ {
		i := i
		e.Schedule(time.Duration(100+i*10)*time.Millisecond, func() {
			host.M.Dev.PostUp(kern.KMsg{Kind: kern.MsgBind, VCI: atm.VCI(100 + i)})
		})
	}
	e.RunUntil(5 * time.Second)
	if len(got) != 30 {
		t.Fatalf("relayed %d of 30", len(got))
	}
	for i, k := range got {
		if int(k.VCI) != 100+i {
			t.Fatalf("message %d out of order: vci %d", i, k.VCI)
		}
	}
	e.Shutdown()
}
