// Package anand implements the anand client and server stubs of §7.2
// and §7.4: the pair that relays messages between a host's /dev/anand
// pseudo-device and the sighost on its router, and that manages the
// IP-specific forwarding state sighost itself stays ignorant of.
//
//   - anand client runs on each IP-connected host: it blocks on the
//     host pseudo-device (select()), relays every upward kernel message
//     to anand server over a TCP connection, and writes relayed
//     downward commands into the host pseudo-device.
//   - anand server runs on the router: it forwards relayed kernel
//     messages up to sighost, and — because it, not sighost, manages IP
//     specifics — reacts to a host's BIND_IND by writing the VCI_BIND
//     that points the router's per-VCI handler at the IPPROTO_ATM
//     encapsulation routine with the host's IP address, and to
//     termination by writing VCI_SHUT.
package anand

import (
	"fmt"
	"time"

	"xunet/internal/atm"
	"xunet/internal/core"
	"xunet/internal/kern"
	"xunet/internal/memnet"
	"xunet/internal/sim"
)

// Frame kinds on the anand client-server connection.
const (
	frameUp   = 1 // host kernel -> sighost: kern.KMsg
	frameDown = 2 // sighost -> host kernel: kern.DownCmd
)

// encodeUp serializes a relayed kernel message, including the post
// timestamp so the router-side trace can attribute relay latency to
// the host kernel's indication.
func encodeUp(k kern.KMsg) []byte {
	at := uint64(k.At)
	return []byte{
		frameUp, byte(k.Kind),
		byte(k.VCI >> 8), byte(k.VCI),
		byte(k.Cookie >> 8), byte(k.Cookie),
		byte(k.PID >> 24), byte(k.PID >> 16), byte(k.PID >> 8), byte(k.PID),
		byte(at >> 56), byte(at >> 48), byte(at >> 40), byte(at >> 32),
		byte(at >> 24), byte(at >> 16), byte(at >> 8), byte(at),
	}
}

// encodeDown serializes a relayed downward command.
func encodeDown(c kern.DownCmd) []byte {
	return []byte{frameDown, byte(c.Kind), byte(c.VCI >> 8), byte(c.VCI)}
}

// decode parses either frame kind.
func decode(b []byte) (up kern.KMsg, down kern.DownCmd, isUp bool, err error) {
	if len(b) < 4 {
		return up, down, false, fmt.Errorf("anand: short frame (%d bytes)", len(b))
	}
	switch b[0] {
	case frameUp:
		if len(b) < 18 {
			return up, down, false, fmt.Errorf("anand: short up frame")
		}
		at := uint64(b[10])<<56 | uint64(b[11])<<48 | uint64(b[12])<<40 | uint64(b[13])<<32 |
			uint64(b[14])<<24 | uint64(b[15])<<16 | uint64(b[16])<<8 | uint64(b[17])
		up = kern.KMsg{
			Kind:   kern.MsgKind(b[1]),
			VCI:    atm.VCI(uint16(b[2])<<8 | uint16(b[3])),
			Cookie: uint16(b[4])<<8 | uint16(b[5]),
			PID:    uint32(b[6])<<24 | uint32(b[7])<<16 | uint32(b[8])<<8 | uint32(b[9]),
			At:     time.Duration(at),
		}
		return up, down, true, nil
	case frameDown:
		down = kern.DownCmd{Kind: kern.DownKind(b[1]), VCI: atm.VCI(uint16(b[2])<<8 | uint16(b[3]))}
		return up, down, false, nil
	}
	return up, down, false, fmt.Errorf("anand: unknown frame kind %d", b[0])
}

// Client is the host-side stub.
type Client struct {
	stack *core.Stack
	conn  *memnet.Stream
	// Relayed counts upward messages sent to the router.
	Relayed uint64
}

// StartClient launches anand client on a host: it dials anand server on
// the configured router and starts the two relay loops. It is placed in
// the boot sequence of every simulated host.
func StartClient(stack *core.Stack, routerIP memnet.IPAddr, port uint16) *Client {
	c := &Client{stack: stack}
	e := stack.M.E
	e.Go(stack.M.Name+"/anand-client", func(sp *sim.Proc) {
		conn, err := stack.M.IP.DialStream(sp, routerIP, port)
		if err != nil {
			return
		}
		c.conn = conn
		// Downward relay loop: commands from sighost into the host
		// pseudo-device.
		e.Go(stack.M.Name+"/anand-client-down", func(sp2 *sim.Proc) {
			for {
				b, ok := conn.Recv(sp2)
				if !ok {
					return
				}
				if _, down, isUp, err := decode(b); err == nil && !isUp {
					stack.M.Dev.WriteDown(down)
				}
			}
		})
		// Upward relay loop: host kernel messages to anand server.
		for {
			k, ok := stack.M.Dev.ReadUp(sp)
			if !ok {
				conn.Close()
				return
			}
			c.Relayed++
			if err := conn.Send(encodeUp(k)); err != nil {
				return
			}
		}
	})
	return c
}

// Server is the router-side stub.
type Server struct {
	stack *core.Stack
	// OnKernel receives every relayed host kernel message, tagged with
	// the host's IP; SimHost points it at sighost's actor inbox.
	OnKernel func(from memnet.IPAddr, k kern.KMsg)

	conns map[memnet.IPAddr]*memnet.Stream

	// Relayed counts upward messages forwarded to sighost; Binds and
	// Shuts count VCI_BIND/VCI_SHUT writes.
	Relayed uint64
	Binds   uint64
	Shuts   uint64
}

// StartServer launches anand server on a router, listening on port.
func StartServer(stack *core.Stack, port uint16) (*Server, error) {
	s := &Server{stack: stack, conns: make(map[memnet.IPAddr]*memnet.Stream)}
	l, err := stack.M.IP.ListenStream(port)
	if err != nil {
		return nil, err
	}
	e := stack.M.E
	e.Go(stack.M.Name+"/anand-server", func(sp *sim.Proc) {
		for {
			conn, ok := l.Accept(sp)
			if !ok {
				return
			}
			host := conn.RemoteAddr()
			s.conns[host] = conn
			e.Go(stack.M.Name+"/anand-server-rx", func(sp2 *sim.Proc) {
				defer func() {
					if s.conns[host] == conn {
						delete(s.conns, host)
					}
				}()
				for {
					b, ok := conn.Recv(sp2)
					if !ok {
						return
					}
					up, _, isUp, err := decode(b)
					if err != nil || !isUp {
						continue
					}
					s.handleUp(host, up)
				}
			})
		}
	})
	return s, nil
}

// handleUp manages IP-specific state, then forwards to sighost.
func (s *Server) handleUp(host memnet.IPAddr, k kern.KMsg) {
	switch k.Kind {
	case kern.MsgBind:
		// The host's server bound a VCI: incoming ATM data on that VCI
		// must be re-encapsulated toward the host (VCI_BIND).
		s.Binds++
		s.stack.ATM.VCIBind(k.VCI, host)
	case kern.MsgClose:
		// Data must stop flowing to the host on this VCI (VCI_SHUT).
		s.Shuts++
		s.stack.ATM.VCIShut(k.VCI)
	}
	s.Relayed++
	if s.OnKernel != nil {
		s.OnKernel(host, k)
	}
}

// Disconnect relays a downward disconnect to a host's pseudo-device and
// shuts the router's forwarding state for the VCI.
func (s *Server) Disconnect(host memnet.IPAddr, vci atm.VCI) {
	if s.stack.ATM.Bound(vci) {
		s.Shuts++
		s.stack.ATM.VCIShut(vci)
	}
	if conn, ok := s.conns[host]; ok {
		_ = conn.Send(encodeDown(kern.DownCmd{Kind: kern.DownDisconnect, VCI: vci}))
	}
}

// Connected reports whether a host currently has a relay connection.
func (s *Server) Connected(host memnet.IPAddr) bool {
	_, ok := s.conns[host]
	return ok
}
