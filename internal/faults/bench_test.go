package faults

import (
	"testing"

	"xunet/internal/trace"
)

// benchPlane is package-level so the compiler cannot constant-fold the
// nil check a hook site performs; loading it each iteration is exactly
// what the hot paths (memnet transmit, trunk send, device PostUp) do.
var benchPlane *Plane

var benchSink bool

// BenchmarkFaultsOverhead/disabled is the CI gate for the fault plane's
// bargain, matching the telemetry and trace gates: with no plane
// attached a hook site costs one pointer load plus one nil comparison,
// under 5 ns, so fault hooks compiled into every transport cannot skew
// the stack's benchmarks. The enabled/zero-prob case sizes the cost of
// an attached plane whose probabilities are all zero (no RNG draws).
func BenchmarkFaultsOverhead(b *testing.B) {
	b.Run("disabled", func(b *testing.B) {
		benchPlane = nil
		b.ReportAllocs()
		b.ResetTimer()
		drop := false
		for i := 0; i < b.N; i++ {
			if fp := benchPlane; fp != nil {
				drop = fp.DevDrop()
			}
		}
		b.StopTimer()
		benchSink = drop
		// Enforce the budget only on a real measurement run; the N=1
		// discovery run is all fixed overhead.
		if avg := float64(b.Elapsed().Nanoseconds()) / float64(b.N); b.N >= 1_000_000 && avg > 5 {
			b.Fatalf("disabled fault hook costs %.1f ns, budget is 5 ns", avg)
		}
	})
	b.Run("enabled-zero-prob", func(b *testing.B) {
		benchPlane = NewPlane(Config{})
		b.ReportAllocs()
		b.ResetTimer()
		var v Verdict
		for i := 0; i < b.N; i++ {
			if fp := benchPlane; fp != nil {
				v = fp.Packet(trace.Context{})
			}
		}
		b.StopTimer()
		benchSink = v.Drop
		benchPlane = nil
	})
	b.Run("enabled-1pct", func(b *testing.B) {
		benchPlane = NewPlane(Config{SigLoss: 0.01})
		b.ReportAllocs()
		b.ResetTimer()
		var v Verdict
		for i := 0; i < b.N; i++ {
			if fp := benchPlane; fp != nil {
				v = fp.SigMsg(trace.Context{})
			}
		}
		b.StopTimer()
		benchSink = v.Drop
		benchPlane = nil
	})
}
