// Package faults is the deterministic fault-injection plane. It decides
// — from its own seeded RNG, never the workload's — whether each packet,
// signaling message, cell, or device indication is lost, duplicated,
// delayed, or corrupted, and schedules trunk up/down flapping. Because
// the plane has a dedicated sim.Rand, enabling faults never perturbs the
// workload's random sequence, and a run's fault schedule is a pure
// function of the fault seed: same seed, same faults, byte-identical
// replay.
//
// Every hook site holds a *Plane pointer that is nil by default, so the
// disabled cost is a single pointer comparison (gated under 5 ns by
// BenchmarkFaultsOverhead, like the telemetry and trace gates). Every
// injected fault increments a counter in the plane's own obs.Registry
// and, when the affected unit carries a sampled trace context, records a
// zero-width "faults" span so chaos shows up inside call traces.
package faults

import (
	"time"

	"xunet/internal/obs"
	"xunet/internal/sim"
	"xunet/internal/trace"
)

// GEConfig parameterizes the Gilbert–Elliott two-state burst-loss model
// applied to cells on switch trunks: the trunk wanders between a good
// and a bad state with the given transition probabilities (evaluated per
// cell), and loses cells at the state's loss rate. Burstiness comes from
// dwelling in the bad state, which uniform per-cell loss cannot model.
type GEConfig struct {
	PGoodToBad float64 // per-cell probability of entering the bad state
	PBadToGood float64 // per-cell probability of leaving it
	LossGood   float64 // cell loss probability while good
	LossBad    float64 // cell loss probability while bad
}

func (g GEConfig) enabled() bool {
	return g.PGoodToBad > 0 || g.LossGood > 0 || g.LossBad > 0
}

// Config selects which faults the plane injects and how often. The zero
// value injects nothing; probabilities are per-unit (per packet, per
// signaling message, per cell, per indication).
type Config struct {
	// Seed seeds the plane's private RNG. Zero selects a fixed default
	// so a zero-value-but-enabled config is still deterministic.
	Seed uint64

	// Packet faults apply to every memnet link transmission and to
	// carrier-encapsulated frames on the testbed's tunnel carriers.
	PktLoss      float64
	PktDup       float64
	PktDelayProb float64
	PktDelayMax  time.Duration // extra latency drawn uniform in [0, max)

	// Signaling-message faults apply to sighost-to-sighost messages on
	// the signaling PVC (the paper's "1% signaling loss" knob).
	SigLoss      float64
	SigDup       float64
	SigDelayProb float64
	SigDelayMax  time.Duration

	// Cell faults apply per cell on switch-to-switch trunks, alongside
	// the existing queue-overflow drops.
	GE          GEConfig
	CellCorrupt float64 // flip a payload byte; AAL5 CRC-32 catches it

	// Trunk flapping: trunks stay up for roughly FlapMeanUp (jittered by
	// the plane RNG), then drop every cell for FlapDown. Zero disables.
	FlapMeanUp time.Duration
	FlapDown   time.Duration

	// DevLoss drops kernel pseudo-device indications as if the
	// /dev/anand indication buffer were under pressure.
	DevLoss float64
}

// Enabled reports whether any fault in the config can ever fire.
func (c Config) Enabled() bool {
	return c.PktLoss > 0 || c.PktDup > 0 || c.PktDelayProb > 0 ||
		c.SigLoss > 0 || c.SigDup > 0 || c.SigDelayProb > 0 ||
		c.GE.enabled() || c.CellCorrupt > 0 ||
		c.FlapMeanUp > 0 || c.DevLoss > 0
}

// Verdict is the plane's decision for one packet or signaling message.
type Verdict struct {
	Drop       bool
	Dup        bool
	ExtraDelay time.Duration
}

// Plane is one fault-injection domain: a seeded RNG plus fault counters.
// A testbed has at most one; all hooks share it so the fault schedule is
// totally ordered by simulation-event order.
type Plane struct {
	cfg Config
	rng *sim.Rand

	// Obs holds the plane's own fault counters (faults.* namespace),
	// kept out of the workload registries so fault-free runs render
	// byte-identical reports.
	Obs *obs.Registry

	tc  *trace.Collector
	now func() time.Duration

	pktDrop, pktDup, pktDelay       *obs.Counter
	sigDrop, sigDup, sigDelay       *obs.Counter
	cellDrop, cellCorrupt           *obs.Counter
	trunkFlaps, flapDrops           *obs.Counter
	devDrop                         *obs.Counter
}

// NewPlane builds a plane from cfg. The plane is ready to be attached to
// transports; AttachTrace additionally lets it record fault spans.
func NewPlane(cfg Config) *Plane {
	seed := cfg.Seed
	if seed == 0 {
		seed = 0xFA017C0DE // distinct from any workload seed in use
	}
	p := &Plane{cfg: cfg, rng: sim.NewRand(seed), Obs: obs.NewRegistry()}
	p.pktDrop = p.Obs.Counter("faults.pkt.drop")
	p.pktDup = p.Obs.Counter("faults.pkt.dup")
	p.pktDelay = p.Obs.Counter("faults.pkt.delay")
	p.sigDrop = p.Obs.Counter("faults.sig.drop")
	p.sigDup = p.Obs.Counter("faults.sig.dup")
	p.sigDelay = p.Obs.Counter("faults.sig.delay")
	p.cellDrop = p.Obs.Counter("faults.cell.drop")
	p.cellCorrupt = p.Obs.Counter("faults.cell.corrupt")
	p.trunkFlaps = p.Obs.Counter("faults.trunk.flaps")
	p.flapDrops = p.Obs.Counter("faults.trunk.flap_drops")
	p.devDrop = p.Obs.Counter("faults.dev.drop")
	return p
}

// Config returns the plane's configuration.
func (p *Plane) Config() Config { return p.cfg }

// AttachTrace connects the plane to the testbed's trace collector so
// faults on traced units appear as spans inside the call's span tree.
func (p *Plane) AttachTrace(tc *trace.Collector, now func() time.Duration) {
	p.tc, p.now = tc, now
}

// span records a zero-width fault span under parent if it is sampled.
func (p *Plane) span(parent trace.Context, name string) {
	if p.tc == nil || p.now == nil || !parent.Sampled() {
		return
	}
	at := p.now()
	p.tc.Record(parent, "faults", name, at, at)
}

// Packet returns the verdict for one packet on a memnet link or tunnel
// carrier. Draw order is fixed (loss, dup, delay) so the fault schedule
// is stable; disabled probabilities draw nothing (sim.Rand.Chance).
func (p *Plane) Packet(tc trace.Context) Verdict {
	var v Verdict
	if p.rng.Chance(p.cfg.PktLoss) {
		p.pktDrop.Inc()
		p.span(tc, "pkt.drop")
		v.Drop = true
		return v
	}
	if p.rng.Chance(p.cfg.PktDup) {
		p.pktDup.Inc()
		p.span(tc, "pkt.dup")
		v.Dup = true
	}
	if p.rng.Chance(p.cfg.PktDelayProb) {
		v.ExtraDelay = p.rng.Jitter(p.cfg.PktDelayMax)
		if v.ExtraDelay > 0 {
			p.pktDelay.Inc()
			p.span(tc, "pkt.delay")
		}
	}
	return v
}

// SigMsg returns the verdict for one sighost-to-sighost signaling
// message about to be sent on the peer PVC.
func (p *Plane) SigMsg(tc trace.Context) Verdict {
	var v Verdict
	if p.rng.Chance(p.cfg.SigLoss) {
		p.sigDrop.Inc()
		p.span(tc, "sig.drop")
		v.Drop = true
		return v
	}
	if p.rng.Chance(p.cfg.SigDup) {
		p.sigDup.Inc()
		p.span(tc, "sig.dup")
		v.Dup = true
	}
	if p.rng.Chance(p.cfg.SigDelayProb) {
		v.ExtraDelay = p.rng.Jitter(p.cfg.SigDelayMax)
		if v.ExtraDelay > 0 {
			p.sigDelay.Inc()
			p.span(tc, "sig.delay")
		}
	}
	return v
}

// CellDrop steps the trunk's Gilbert–Elliott state (stored by the caller
// per trunk, so independent trunks burst independently) and reports
// whether this cell is lost.
func (p *Plane) CellDrop(bad *bool, tc trace.Context) bool {
	if !p.cfg.GE.enabled() {
		return false
	}
	if *bad {
		if p.rng.Chance(p.cfg.GE.PBadToGood) {
			*bad = false
		}
	} else if p.rng.Chance(p.cfg.GE.PGoodToBad) {
		*bad = true
	}
	loss := p.cfg.GE.LossGood
	if *bad {
		loss = p.cfg.GE.LossBad
	}
	if p.rng.Chance(loss) {
		p.cellDrop.Inc()
		p.span(tc, "cell.drop")
		return true
	}
	return false
}

// CellCorrupt reports whether this cell's payload should be corrupted.
// Corruption surfaces as an AAL5 CRC error at reassembly, so the frame
// is discarded — behaviorally a loss, detected where real hardware
// detects it.
func (p *Plane) CellCorrupt(tc trace.Context) bool {
	if p.rng.Chance(p.cfg.CellCorrupt) {
		p.cellCorrupt.Inc()
		p.span(tc, "cell.corrupt")
		return true
	}
	return false
}

// TrunkDownDrop counts a cell dropped because its trunk is flapped down.
func (p *Plane) TrunkDownDrop(tc trace.Context) {
	p.flapDrops.Inc()
	p.span(tc, "trunk.down")
}

// DevDrop reports whether a kernel pseudo-device indication is dropped
// (simulated indication-buffer pressure).
func (p *Plane) DevDrop() bool {
	if p.rng.Chance(p.cfg.DevLoss) {
		p.devDrop.Inc()
		return true
	}
	return false
}

// FlapEnabled reports whether trunk flapping is configured.
func (p *Plane) FlapEnabled() bool { return p.cfg.FlapMeanUp > 0 && p.cfg.FlapDown > 0 }

// NextUp returns the next up-time before a flap: FlapMeanUp jittered by
// ±50% from the plane RNG.
func (p *Plane) NextUp() time.Duration {
	return p.cfg.FlapMeanUp/2 + p.rng.Jitter(p.cfg.FlapMeanUp)
}

// DownFor returns the outage length of one flap and counts it.
func (p *Plane) DownFor() time.Duration {
	p.trunkFlaps.Inc()
	return p.cfg.FlapDown
}
