package faults

import (
	"testing"
	"time"

	"xunet/internal/sim"
	"xunet/internal/trace"
)

// TestZeroConfigDrawsNothing pins the golden-preservation mechanism: a
// plane whose probabilities are all zero never fires a fault AND never
// consumes a random number, so attaching a zero-config plane cannot
// perturb any schedule. sim.Rand.Chance(p<=0) returns false without
// drawing; this test would catch a regression that starts drawing.
func TestZeroConfigDrawsNothing(t *testing.T) {
	const seed = 42
	p := NewPlane(Config{Seed: seed})
	none := trace.Context{}
	bad := false
	for i := 0; i < 1000; i++ {
		if v := p.Packet(none); v.Drop || v.Dup || v.ExtraDelay != 0 {
			t.Fatalf("zero-config Packet verdict %+v", v)
		}
		if v := p.SigMsg(none); v.Drop || v.Dup || v.ExtraDelay != 0 {
			t.Fatalf("zero-config SigMsg verdict %+v", v)
		}
		if p.CellDrop(&bad, none) || p.CellCorrupt(none) || p.DevDrop() {
			t.Fatal("zero-config plane injected a fault")
		}
	}
	if bad {
		t.Fatal("zero-config plane entered GE bad state")
	}
	// The RNG must be untouched: its next output equals a fresh RNG's
	// first output.
	if got, want := p.rng.Uint64(), sim.NewRand(seed).Uint64(); got != want {
		t.Fatalf("zero-config plane consumed randomness: next=%d fresh=%d", got, want)
	}
	for _, c := range p.Obs.Snapshot().Counters {
		if c.Value != 0 {
			t.Errorf("zero-config plane counted %s=%d", c.Name, c.Value)
		}
	}
}

// TestSameSeedSameSchedule is determinism at the plane level: two planes
// with identical configs produce the identical verdict sequence and the
// identical counters.
func TestSameSeedSameSchedule(t *testing.T) {
	cfg := Config{
		Seed: 7, PktLoss: 0.1, PktDup: 0.05, PktDelayProb: 0.2, PktDelayMax: time.Millisecond,
		SigLoss: 0.02, DevLoss: 0.01, CellCorrupt: 0.03,
		GE: GEConfig{PGoodToBad: 0.05, PBadToGood: 0.3, LossBad: 0.8},
	}
	a, b := NewPlane(cfg), NewPlane(cfg)
	none := trace.Context{}
	abad, bbad := false, false
	for i := 0; i < 5000; i++ {
		if va, vb := a.Packet(none), b.Packet(none); va != vb {
			t.Fatalf("packet %d: %+v vs %+v", i, va, vb)
		}
		if va, vb := a.SigMsg(none), b.SigMsg(none); va != vb {
			t.Fatalf("sigmsg %d: %+v vs %+v", i, va, vb)
		}
		if a.CellDrop(&abad, none) != b.CellDrop(&bbad, none) || abad != bbad {
			t.Fatalf("cell %d: GE state diverged", i)
		}
		if a.CellCorrupt(none) != b.CellCorrupt(none) || a.DevDrop() != b.DevDrop() {
			t.Fatalf("draw %d diverged", i)
		}
	}
	if sa, sb := a.Obs.Snapshot().Text(), b.Obs.Snapshot().Text(); sa != sb {
		t.Fatalf("counters diverged:\n%s\nvs\n%s", sa, sb)
	}
	// And a different seed must produce a different schedule (sanity that
	// the seed is actually wired in).
	cfg2 := cfg
	cfg2.Seed = 8
	c := NewPlane(cfg2)
	diverged := false
	cbad := false
	d := NewPlane(cfg)
	dbad := false
	for i := 0; i < 5000 && !diverged; i++ {
		if c.CellDrop(&cbad, none) != d.CellDrop(&dbad, none) {
			diverged = true
		}
	}
	if !diverged {
		t.Error("seeds 7 and 8 produced identical cell-loss schedules")
	}
}

// TestGilbertElliottBursts checks the point of the GE model: losses
// cluster. With LossGood=0 every drop happens inside a bad-state dwell,
// whose geometric mean length 1/PBadToGood makes consecutive-drop runs
// much longer than uniform loss at the same average rate would produce.
func TestGilbertElliottBursts(t *testing.T) {
	p := NewPlane(Config{Seed: 3, GE: GEConfig{
		PGoodToBad: 0.005, PBadToGood: 0.2, LossGood: 0, LossBad: 1.0,
	}})
	none := trace.Context{}
	bad := false
	const n = 200_000
	drops, runs := 0, 0
	inRun := false
	for i := 0; i < n; i++ {
		if p.CellDrop(&bad, none) {
			drops++
			if !inRun {
				runs++
				inRun = true
			}
		} else {
			inRun = false
		}
	}
	if drops == 0 {
		t.Fatal("GE model dropped nothing")
	}
	meanRun := float64(drops) / float64(runs)
	// With PBadToGood=0.2 and LossBad=1 the mean burst is ~5 cells;
	// uniform loss at the same rate would give ~1.0x. Require well above
	// uniform.
	if meanRun < 2.0 {
		t.Errorf("mean drop-burst length %.2f; GE losses are not bursty", meanRun)
	}
	if got := p.Obs.Snapshot().Count("faults.cell.drop"); got != uint64(drops) {
		t.Errorf("cell.drop counter %d != observed drops %d", got, drops)
	}
}

// TestCertainFaultsCount pins the counter plumbing with probability-1
// faults.
func TestCertainFaultsCount(t *testing.T) {
	p := NewPlane(Config{PktLoss: 1, SigLoss: 1, DevLoss: 1, CellCorrupt: 1})
	none := trace.Context{}
	const n = 100
	for i := 0; i < n; i++ {
		if !p.Packet(none).Drop || !p.SigMsg(none).Drop || !p.DevDrop() || !p.CellCorrupt(none) {
			t.Fatal("probability-1 fault did not fire")
		}
		p.TrunkDownDrop(none)
	}
	snap := p.Obs.Snapshot()
	for _, name := range []string{"faults.pkt.drop", "faults.sig.drop", "faults.dev.drop", "faults.cell.corrupt", "faults.trunk.flap_drops"} {
		if got := snap.Count(name); got != n {
			t.Errorf("%s = %d, want %d", name, got, n)
		}
	}
}

// TestDelayBounded checks injected delays stay within the configured
// bound and actually vary.
func TestDelayBounded(t *testing.T) {
	p := NewPlane(Config{PktDelayProb: 1, PktDelayMax: time.Millisecond})
	none := trace.Context{}
	seen := map[time.Duration]bool{}
	for i := 0; i < 1000; i++ {
		v := p.Packet(none)
		if v.ExtraDelay < 0 || v.ExtraDelay >= time.Millisecond {
			t.Fatalf("delay %v outside [0, 1ms)", v.ExtraDelay)
		}
		seen[v.ExtraDelay] = true
	}
	if len(seen) < 10 {
		t.Errorf("only %d distinct delays in 1000 draws", len(seen))
	}
}

// TestEnabled pins Config.Enabled against each knob.
func TestEnabled(t *testing.T) {
	if (Config{}).Enabled() {
		t.Error("zero config reports enabled")
	}
	for _, c := range []Config{
		{PktLoss: 0.1}, {PktDup: 0.1}, {PktDelayProb: 0.1},
		{SigLoss: 0.1}, {SigDup: 0.1}, {SigDelayProb: 0.1},
		{GE: GEConfig{PGoodToBad: 0.1}}, {GE: GEConfig{LossGood: 0.1}},
		{CellCorrupt: 0.1}, {FlapMeanUp: time.Second}, {DevLoss: 0.1},
	} {
		if !c.Enabled() {
			t.Errorf("config %+v reports disabled", c)
		}
	}
	if !(Config{FlapMeanUp: time.Second, FlapDown: time.Second}).Enabled() {
		t.Error("flap config reports disabled")
	}
}
