// Package pfxunet implements the PF_XUNET protocol family: the
// native-mode ATM socket stack of the paper.
//
// The stack is deliberately non-multiplexing (§1): one socket per
// virtual circuit, and "the Virtual Circuit Identifier (VCI) provides a
// single index into a table of protocol control blocks, considerably
// simplifying the software structure". The PCB table here is a direct
// array indexed by VCI — no hash demultiplexing — and the Table 1
// receive-path costs are charged at the same points the paper counted:
// PCB indexing, socket state checks, address fixup, and sbappend
// bookkeeping plus 8 instructions per mbuf walked.
//
// Bind and connect take the 16-bit cookie capability handed out by the
// signaling entity during call setup; the socket layer "passes up the
// cookie and VCI to sighost for these two calls" through the
// pseudo-device, and sighost tears the call down (marking the socket
// unusable via soisdisconnected) if authentication fails.
package pfxunet

import (
	"errors"
	"fmt"

	"xunet/internal/atm"
	"xunet/internal/cost"
	"xunet/internal/kern"
	"xunet/internal/mbuf"
	"xunet/internal/sim"
	"xunet/internal/trace"
)

// Errors from the socket layer.
var (
	ErrBadVCI        = errors.New("pfxunet: VCI out of range")
	ErrVCIBusy       = errors.New("pfxunet: VCI already bound to a socket")
	ErrSockState     = errors.New("pfxunet: operation invalid in this socket state")
	ErrDisconnected  = errors.New("pfxunet: socket has been disconnected")
	ErrRecvQOverflow = errors.New("pfxunet: receive buffer overflow")
)

// recvBufLimit bounds a socket's receive buffer in bytes (the classic
// socket-buffer high-water mark); frames past it are dropped and
// counted, as a datagram stack does.
const recvBufLimit = 64 * 1024

// sockState tracks the BSD-style socket lifecycle.
type sockState uint8

const (
	stateCreated sockState = iota
	stateBound
	stateConnected
	stateDisconnected
	stateClosed
)

// Family is the PF_XUNET protocol family instance on one machine.
type Family struct {
	m *kern.Machine

	// pcbs is the VCI-indexed protocol control block table: the
	// non-multiplexed fast path.
	pcbs [int(atm.MaxVCI) + 1]*Socket

	// DroppedNoSocket counts frames that arrived on a VCI with no bound
	// socket; DroppedOverflow counts receive-buffer overflows.
	DroppedNoSocket uint64
	DroppedOverflow uint64
}

// New installs the family on a machine and registers it for
// soisdisconnected commands from the pseudo-device.
func New(m *kern.Machine) *Family {
	f := &Family{m: m}
	m.RegisterFamily(f)
	m.Obs.Func("pfxunet.drops.no_socket", func() uint64 { return f.DroppedNoSocket })
	m.Obs.Func("pfxunet.drops.overflow", func() uint64 { return f.DroppedOverflow })
	return f
}

// Socket is one PF_XUNET socket (SOCK_DGRAM over a virtual circuit).
type Socket struct {
	f     *Family
	owner *kern.Proc
	fd    int
	state sockState
	vci   atm.VCI

	recvQ     *sim.Queue[*mbuf.Chain]
	recvBytes int

	// shaper, when set, paces outbound frames (see shaper.go).
	shaper *shaper

	// tc is the causal-trace context of the call this socket carries
	// (zero when the call is untraced); outbound frames open child
	// spans under it.
	tc trace.Context

	// FramesIn and FramesOut count datagrams through this socket.
	FramesIn  uint64
	FramesOut uint64
}

// SetTrace attaches the call's trace context to the socket, so frames
// sent on it become child spans of the call. Applications get the
// context from the VCI_FOR_CONN delivery (ulib.Connection.Trace).
func (s *Socket) SetTrace(tc trace.Context) { s.tc = tc }

// Socket creates an unbound PF_XUNET socket owned by p, consuming a
// file descriptor.
func (f *Family) Socket(p *kern.Proc) (*Socket, error) {
	s := &Socket{f: f, owner: p, recvQ: sim.NewQueue[*mbuf.Chain](f.m.E)}
	fd, err := p.AllocFD(s)
	if err != nil {
		return nil, err
	}
	s.fd = fd
	return s, nil
}

// FD returns the socket's descriptor number.
func (s *Socket) FD() int { return s.fd }

// VCI returns the bound or connected VCI (0 before either).
func (s *Socket) VCI() atm.VCI { return s.vci }

// checkVCI validates range and availability.
func (f *Family) checkVCI(vci atm.VCI) error {
	if vci == 0 || vci > atm.MaxVCI {
		return fmt.Errorf("%w: %v", ErrBadVCI, vci)
	}
	if f.pcbs[vci] != nil {
		return fmt.Errorf("%w: %v", ErrVCIBusy, vci)
	}
	return nil
}

// Bind directs the stack to deliver data received on vci to this
// socket (the paper's Figure 5 server flow). The cookie and VCI are
// passed up to the signaling entity for authentication.
func (s *Socket) Bind(vci atm.VCI, cookie uint16) error {
	if s.state != stateCreated {
		return ErrSockState
	}
	if err := s.f.checkVCI(vci); err != nil {
		return err
	}
	s.f.pcbs[vci] = s
	s.vci = vci
	s.state = stateBound
	// Install the Orc receive handler: arriving frames on this VCI flow
	// to the socket.
	s.f.m.Orc.SetHandler(vci, s.f.input)
	s.passUp(kern.MsgBind, cookie)
	return nil
}

// Connect binds the VCI to this socket for sending (the Figure 6
// client flow). The cookie is passed up for authentication.
func (s *Socket) Connect(vci atm.VCI, cookie uint16) error {
	if s.state != stateCreated {
		return ErrSockState
	}
	if err := s.f.checkVCI(vci); err != nil {
		return err
	}
	s.f.pcbs[vci] = s
	s.vci = vci
	s.state = stateConnected
	s.passUp(kern.MsgConnect, cookie)
	return nil
}

// passUp posts a bind/connect indication through the pseudo-device.
func (s *Socket) passUp(kind kern.MsgKind, cookie uint16) {
	if s.f.m.Dev != nil {
		s.f.m.Dev.PostUp(kern.KMsg{Kind: kind, VCI: s.vci, Cookie: cookie, PID: s.owner.PID})
	}
}

// Send transmits one frame on the connected VCI. Matching Table 1, the
// PF_XUNET and Orc send routines "simply call the next layer down
// without touching the data or the header, thus incurring zero cost".
func (s *Socket) Send(data []byte) error {
	return s.SendTraced(data, s.tc)
}

// SendTraced is Send under an explicit trace context, for callers whose
// context is per-message rather than per-socket (the sighost peer PVC
// carries many calls' messages over one socket).
func (s *Socket) SendTraced(data []byte, tc trace.Context) error {
	switch s.state {
	case stateConnected:
	case stateDisconnected:
		return ErrDisconnected
	default:
		return ErrSockState
	}
	chain := mbuf.FromBytes(data)
	s.stamp(chain, tc)
	s.FramesOut++
	if s.shaper != nil {
		return s.shaper.submit(chain)
	}
	return s.f.m.Orc.Output(s.vci, chain)
}

// SendChain transmits a prebuilt mbuf chain (zero-copy path).
func (s *Socket) SendChain(chain *mbuf.Chain) error {
	switch s.state {
	case stateConnected:
	case stateDisconnected:
		return ErrDisconnected
	default:
		return ErrSockState
	}
	s.stamp(chain, s.tc)
	s.FramesOut++
	if s.shaper != nil {
		return s.shaper.submit(chain)
	}
	return s.f.m.Orc.Output(s.vci, chain)
}

// stamp opens the frame's transit span: a child of the call (or
// message) context that the receiving stack's input routine will close
// on delivery. Unsampled contexts cost one branch and no allocation.
func (s *Socket) stamp(chain *mbuf.Chain, tc trace.Context) {
	if !tc.Sampled() {
		return
	}
	now := s.f.m.E.Now()
	chain.TC = s.f.m.TraceC.StartSpanAt(tc, "pfxunet", "frame", now)
	chain.TCAt = now
}

// input is the family's receive upcall from the Orc driver: the Table 1
// PF_XUNET receive path.
func (f *Family) input(vci atm.VCI, frame *mbuf.Chain) {
	m := f.m.Meter
	// PCB lookup: a single array index, the non-multiplexed win.
	m.Charge(cost.PFXunet, cost.PFXunetPCBIndex)
	s := f.pcbs[vci]
	if s == nil || s.state == stateClosed {
		f.DroppedNoSocket++
		f.endFrameSpan(frame)
		frame.Release()
		return
	}
	// Socket state checks and address fixup.
	m.Charge(cost.PFXunet, cost.PFXunetStateChecks)
	if s.state == stateDisconnected {
		f.endFrameSpan(frame)
		frame.Release()
		return
	}
	m.Charge(cost.PFXunet, cost.PFXunetAddrFixup)
	// sbappend: enqueue onto the socket buffer, walking the chain.
	m.Charge(cost.PFXunet, cost.PFXunetSbAppend)
	m.ChargePerMbuf(cost.PFXunet, frame.Count())
	if s.recvBytes+frame.Len() > recvBufLimit {
		f.DroppedOverflow++
		f.endFrameSpan(frame)
		frame.Release()
		return
	}
	s.recvBytes += frame.Len()
	s.FramesIn++
	f.endFrameSpan(frame)
	s.recvQ.Put(frame)
}

// endFrameSpan closes a traced frame's transit span at delivery (or at
// the drop site, so aborted frames still show where they died).
func (f *Family) endFrameSpan(frame *mbuf.Chain) {
	if frame.TC.Sampled() {
		f.m.TraceC.EndSpan(frame.TC)
	}
}

// Recv blocks the owning process until a frame arrives. It returns
// ErrDisconnected once the socket has been marked unusable and the
// buffer is drained.
func (s *Socket) Recv() ([]byte, error) {
	chain, err := s.RecvChain()
	if err != nil {
		return nil, err
	}
	p := chain.Bytes()
	chain.Release()
	return p, nil
}

// RecvChain is Recv without flattening the mbuf chain.
func (s *Socket) RecvChain() (*mbuf.Chain, error) {
	if s.state == stateClosed || s.state == stateCreated {
		return nil, ErrSockState
	}
	if chain, ok := s.recvQ.TryGet(); ok {
		s.recvBytes -= chain.Len()
		return chain, nil
	}
	if s.state == stateDisconnected {
		return nil, ErrDisconnected
	}
	chain, ok := s.recvQ.Get(s.owner.SP)
	if !ok {
		return nil, ErrDisconnected
	}
	s.recvBytes -= chain.Len()
	return chain, nil
}

// Close releases the socket and its descriptor.
func (s *Socket) Close() { _ = s.owner.CloseFD(s.fd) }

// KClose implements kern.FDObject: invoked by Close, process exit, and
// kernel cleanup. Closing a bound or connected socket tells the
// signaling entity so it can tear the call down ("When either client or
// server closes a PF_XUNET socket, the signaling entity will
// automatically tear down the associated call").
func (s *Socket) KClose() {
	if s.state == stateClosed {
		return
	}
	hadVCI := s.state == stateBound || s.state == stateConnected || s.state == stateDisconnected
	wasDisc := s.state == stateDisconnected
	s.state = stateClosed
	if hadVCI && s.f.pcbs[s.vci] == s {
		s.f.pcbs[s.vci] = nil
		s.f.m.Orc.ClearVC(s.vci)
	}
	s.recvQ.Close()
	if hadVCI && !wasDisc && s.f.m.Dev != nil {
		s.f.m.Dev.PostUp(kern.KMsg{Kind: kern.MsgClose, VCI: s.vci, PID: s.owner.PID})
	}
}

// Soisdisconnected implements kern.ProtoFamily: the pseudo-device's
// write routine marks the socket on vci unusable and wakes blocked
// readers.
func (f *Family) Soisdisconnected(vci atm.VCI) {
	if vci > atm.MaxVCI {
		return
	}
	s := f.pcbs[vci]
	if s == nil || s.state == stateClosed {
		return
	}
	s.state = stateDisconnected
	s.recvQ.Close()
	f.m.Orc.ClearVC(vci)
}

// BoundSocket returns the socket a VCI is bound or connected to, if
// any (used by tests and the signaling kernel agent).
func (f *Family) BoundSocket(vci atm.VCI) *Socket {
	if vci > atm.MaxVCI {
		return nil
	}
	return f.pcbs[vci]
}

// ActiveVCIs counts VCIs with live sockets.
func (f *Family) ActiveVCIs() int {
	n := 0
	for _, s := range f.pcbs {
		if s != nil {
			n++
		}
	}
	return n
}
