package pfxunet

import (
	"time"

	"xunet/internal/mbuf"
	"xunet/internal/obs"
)

// Traffic shaping demonstrates the §4 orthogonality goal: the paper's
// signaling and OS support "should not make any assumptions about the
// functionality implemented by the protocol stack", precisely so the
// stack can grow policies like this without touching sighost or the
// kernel interfaces. A shaped socket paces its frames to the rate the
// call's QoS reserved, so a CBR circuit offers conformant traffic to
// the network instead of line-rate bursts. (Reference [12], the
// companion semantics paper, sketches richer per-VC disciplines; this
// leaky bucket is the minimal useful instance.)

// shaper paces frames from a queue at a configured bit rate.
type shaper struct {
	s        *Socket
	rateBps  uint64
	queue    []*mbuf.Chain
	bytes    int
	limit    int // queue byte limit; frames beyond it are dropped
	draining bool

	// ShapedOut counts frames released; ShapedDropped counts frames
	// dropped at the shaper queue.
	ShapedOut     uint64
	ShapedDropped uint64

	// Machine-registry views: shaper queue depth (bytes, with high-water
	// mark) and drop/release counters shared by all shaped sockets.
	ctOut   *obs.Counter
	ctDrops *obs.Counter
	gDepth  *obs.Gauge
}

// SetShaper paces this socket's sends at rateKbs kilobits per second
// with the given queue budget in bytes (0 means 64 KiB). A rate of 0
// removes the shaper. Typically callers pass the bandwidth from the
// negotiated QoS descriptor.
func (s *Socket) SetShaper(rateKbs uint32, queueBytes int) {
	if rateKbs == 0 {
		s.shaper = nil
		return
	}
	if queueBytes <= 0 {
		queueBytes = 64 * 1024
	}
	reg := s.f.m.Obs
	s.shaper = &shaper{
		s: s, rateBps: uint64(rateKbs) * 1000, limit: queueBytes,
		ctOut:   reg.Counter("pfxunet.shaper.out"),
		ctDrops: reg.Counter("pfxunet.shaper.drops"),
		gDepth:  reg.Gauge("pfxunet.shaper.depth"),
	}
}

// Shaper stats: frames released and dropped (zero if unshaped).
func (s *Socket) ShaperStats() (out, dropped uint64) {
	if s.shaper == nil {
		return 0, 0
	}
	return s.shaper.ShapedOut, s.shaper.ShapedDropped
}

// submit enqueues a frame, starting the drain clock if idle.
func (sh *shaper) submit(chain *mbuf.Chain) error {
	if sh.bytes+chain.Len() > sh.limit {
		sh.ShapedDropped++
		sh.ctDrops.Inc()
		return nil // shaped traffic drops silently, like a policer
	}
	sh.queue = append(sh.queue, chain)
	sh.bytes += chain.Len()
	sh.gDepth.Add(int64(chain.Len()))
	if !sh.draining {
		sh.draining = true
		sh.drain()
	}
	return nil
}

// drain releases the head frame, then schedules the next release after
// the frame's serialization time at the shaped rate.
func (sh *shaper) drain() {
	if len(sh.queue) == 0 {
		sh.draining = false
		return
	}
	chain := sh.queue[0]
	sh.queue = sh.queue[1:]
	// Capture the length now: Output consumes the chain (the board
	// releases it to the mbuf free list after segmentation).
	n := chain.Len()
	sh.bytes -= n
	sh.gDepth.Add(-int64(n))
	sh.ShapedOut++
	sh.ctOut.Inc()
	sock := sh.s
	if sock.state == stateConnected {
		_ = sock.f.m.Orc.Output(sock.vci, chain)
	}
	gap := time.Duration(uint64(n) * 8 * uint64(time.Second) / sh.rateBps)
	sock.f.m.E.Schedule(gap, sh.drain)
}
