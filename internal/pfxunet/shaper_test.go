package pfxunet_test

import (
	"testing"
	"time"

	"xunet/internal/kern"
	"xunet/internal/qos"
)

// The shaper demonstrates §4's orthogonality: a new stack policy with
// zero changes to signaling or the kernel interfaces.

func TestShaperPacesToConfiguredRate(t *testing.T) {
	r := newRig(t)
	vc := r.vc(t)
	const rateKbs = 1000 // 1 Mb/s
	const frameSize = 1250
	const frames = 40 // 40 * 1250 B * 8 = 400 kb -> 400 ms at 1 Mb/s
	var arrivals []time.Duration
	r.rb.Spawn("sink", func(p *kern.Proc) {
		s, _ := r.rb.PF.Socket(p)
		_ = s.Bind(vc.DstVCI, 0)
		for {
			if _, err := s.Recv(); err != nil {
				return
			}
			arrivals = append(arrivals, p.SP.Now())
		}
	})
	r.ra.Spawn("source", func(p *kern.Proc) {
		s, _ := r.ra.PF.Socket(p)
		_ = s.Connect(vc.SrcVCI, 0)
		s.SetShaper(rateKbs, 128*1024)
		p.SP.Sleep(50 * time.Millisecond)
		for i := 0; i < frames; i++ {
			_ = s.Send(make([]byte, frameSize)) // burst: the shaper paces
		}
		p.SP.Sleep(time.Second)
		out, dropped := s.ShaperStats()
		if out != frames || dropped != 0 {
			t.Errorf("shaper stats out=%d dropped=%d", out, dropped)
		}
		p.SP.Park()
	})
	r.e.RunUntil(5 * time.Second)
	if len(arrivals) != frames {
		t.Fatalf("delivered %d of %d", len(arrivals), frames)
	}
	// The whole burst must take ≈(frames-1) * frame-serialization time
	// at the shaped rate: 39 * 10 ms = 390 ms, not a line-rate burst.
	span := arrivals[len(arrivals)-1] - arrivals[0]
	wantSpan := time.Duration(frames-1) * 10 * time.Millisecond
	if span < wantSpan*9/10 || span > wantSpan*11/10 {
		t.Fatalf("burst spanned %v, want ≈%v (shaped)", span, wantSpan)
	}
	// And the inter-frame gap must be steady.
	for i := 1; i < len(arrivals); i++ {
		gap := arrivals[i] - arrivals[i-1]
		if gap < 9*time.Millisecond || gap > 11*time.Millisecond {
			t.Fatalf("gap %d = %v, want ≈10 ms", i, gap)
		}
	}
	r.e.Shutdown()
}

func TestShaperDropsBeyondQueueBudget(t *testing.T) {
	r := newRig(t)
	vc := r.vc(t)
	r.ra.Spawn("source", func(p *kern.Proc) {
		s, _ := r.ra.PF.Socket(p)
		_ = s.Connect(vc.SrcVCI, 0)
		s.SetShaper(100, 4000) // 100 kb/s, 4 kB of queue
		for i := 0; i < 20; i++ {
			_ = s.Send(make([]byte, 1000)) // 20 kB offered into 4 kB + drain
		}
		p.SP.Sleep(100 * time.Millisecond)
		_, dropped := s.ShaperStats()
		if dropped == 0 {
			t.Error("no shaper drops despite 5x queue overcommit")
		}
		p.SP.Park()
	})
	r.e.RunUntil(time.Second)
	r.e.Shutdown()
}

func TestShaperRemovedRestoresLineRate(t *testing.T) {
	r := newRig(t)
	vc := r.vc(t)
	var arrivals []time.Duration
	r.rb.Spawn("sink", func(p *kern.Proc) {
		s, _ := r.rb.PF.Socket(p)
		_ = s.Bind(vc.DstVCI, 0)
		for {
			if _, err := s.Recv(); err != nil {
				return
			}
			arrivals = append(arrivals, p.SP.Now())
		}
	})
	r.ra.Spawn("source", func(p *kern.Proc) {
		s, _ := r.ra.PF.Socket(p)
		_ = s.Connect(vc.SrcVCI, 0)
		s.SetShaper(100, 64*1024)
		s.SetShaper(0, 0) // remove
		p.SP.Sleep(50 * time.Millisecond)
		for i := 0; i < 10; i++ {
			_ = s.Send(make([]byte, 1000))
		}
		p.SP.Park()
	})
	r.e.RunUntil(2 * time.Second)
	if len(arrivals) != 10 {
		t.Fatalf("delivered %d", len(arrivals))
	}
	if span := arrivals[9] - arrivals[0]; span > 10*time.Millisecond {
		t.Fatalf("unshaped burst took %v", span)
	}
	r.e.Shutdown()
}

// TestShapedCBRConformsAtSwitches: a shaped CBR source offers exactly
// its reservation, so even a tiny switch queue sees no drops — the
// end-to-end point of pairing the shaper with the admission control of
// qos.Book.
func TestShapedCBRConforms(t *testing.T) {
	r := newRig(t)
	q := qos.QoS{Class: qos.CBR, BandwidthKbs: 2000}
	vc, err := r.fab.SetupVC(r.ra.Addr, r.rb.Addr, q)
	if err != nil {
		t.Fatal(err)
	}
	received := 0
	r.rb.Spawn("sink", func(p *kern.Proc) {
		s, _ := r.rb.PF.Socket(p)
		_ = s.Bind(vc.DstVCI, 0)
		for {
			if _, err := s.Recv(); err != nil {
				return
			}
			received++
		}
	})
	r.ra.Spawn("source", func(p *kern.Proc) {
		s, _ := r.ra.PF.Socket(p)
		_ = s.Connect(vc.SrcVCI, 0)
		s.SetShaper(q.BandwidthKbs, 256*1024)
		p.SP.Sleep(50 * time.Millisecond)
		for i := 0; i < 100; i++ {
			_ = s.Send(make([]byte, 2000))
		}
		p.SP.Park()
	})
	r.e.RunUntil(10 * time.Second)
	if received != 100 {
		t.Fatalf("received %d of 100", received)
	}
	if _, dropped := r.fab.TrunkStats(); dropped != 0 {
		t.Fatalf("%d cells dropped from a conformant CBR source", dropped)
	}
	r.e.Shutdown()
}
