package pfxunet_test

import (
	"errors"
	"testing"

	"xunet/internal/atm"
	"xunet/internal/core"
	"xunet/internal/cost"
	"xunet/internal/kern"
	"xunet/internal/mbuf"
	"xunet/internal/memnet"
	"xunet/internal/pfxunet"
	"xunet/internal/qos"
	"xunet/internal/sim"
	"xunet/internal/xswitch"
)

// rig is the paper's testbed: two routers across a 3-hop/2-switch path.
type rig struct {
	e      *sim.Engine
	fab    *xswitch.Fabric
	ra, rb *core.Stack
}

func newRig(t *testing.T) *rig {
	t.Helper()
	e := sim.New(1)
	cm := sim.DefaultCostModel()
	fab := xswitch.NewFabric(e)
	swA, swB := xswitch.Testbed(fab)
	n := memnet.New(e)
	ipA := n.MustAddNode("mh.rt", memnet.IP4(10, 0, 0, 1))
	ipB := n.MustAddNode("ucb.rt", memnet.IP4(10, 0, 1, 1))
	ra, err := core.NewRouter(e, cm, core.RouterConfig{
		Name: "mh.rt", Addr: "mh.rt", IP: ipA, Fabric: fab, Switch: swA,
	})
	if err != nil {
		t.Fatal(err)
	}
	rb, err := core.NewRouter(e, cm, core.RouterConfig{
		Name: "ucb.rt", Addr: "ucb.rt", IP: ipB, Fabric: fab, Switch: swB,
	})
	if err != nil {
		t.Fatal(err)
	}
	return &rig{e: e, fab: fab, ra: ra, rb: rb}
}

// vc provisions a circuit from ra to rb.
func (r *rig) vc(t *testing.T) *xswitch.VC {
	t.Helper()
	vc, err := r.fab.SetupVC(r.ra.Addr, r.rb.Addr, qos.BestEffortQoS)
	if err != nil {
		t.Fatal(err)
	}
	return vc
}

func TestSendReceiveAcrossFabric(t *testing.T) {
	r := newRig(t)
	vc := r.vc(t)
	var got []byte
	r.rb.Spawn("server", func(p *kern.Proc) {
		s, err := r.rb.PF.Socket(p)
		if err != nil {
			t.Error(err)
			return
		}
		if err := s.Bind(vc.DstVCI, 0); err != nil {
			t.Error(err)
			return
		}
		msg, err := s.Recv()
		if err != nil {
			t.Error(err)
			return
		}
		got = msg
	})
	r.ra.Spawn("client", func(p *kern.Proc) {
		s, err := r.ra.PF.Socket(p)
		if err != nil {
			t.Error(err)
			return
		}
		if err := s.Connect(vc.SrcVCI, 0); err != nil {
			t.Error(err)
			return
		}
		if err := s.Send([]byte("native mode")); err != nil {
			t.Error(err)
		}
	})
	r.e.Run()
	if string(got) != "native mode" {
		t.Fatalf("got %q", got)
	}
}

func TestManyFramesInOrder(t *testing.T) {
	r := newRig(t)
	vc := r.vc(t)
	var got []int
	r.rb.Spawn("server", func(p *kern.Proc) {
		s, _ := r.rb.PF.Socket(p)
		_ = s.Bind(vc.DstVCI, 0)
		for i := 0; i < 50; i++ {
			msg, err := s.Recv()
			if err != nil {
				t.Error(err)
				return
			}
			got = append(got, int(msg[0]))
		}
	})
	r.ra.Spawn("client", func(p *kern.Proc) {
		s, _ := r.ra.PF.Socket(p)
		_ = s.Connect(vc.SrcVCI, 0)
		for i := 0; i < 50; i++ {
			_ = s.Send([]byte{byte(i), 1, 2, 3})
		}
	})
	r.e.Run()
	if len(got) != 50 {
		t.Fatalf("received %d of 50", len(got))
	}
	for i, v := range got {
		if v != i {
			t.Fatalf("frame %d out of order: %d", i, v)
		}
	}
}

func TestStateMachineErrors(t *testing.T) {
	r := newRig(t)
	r.ra.Spawn("app", func(p *kern.Proc) {
		s, _ := r.ra.PF.Socket(p)
		if err := s.Send([]byte("x")); !errors.Is(err, pfxunet.ErrSockState) {
			t.Errorf("send unconnected: %v", err)
		}
		if _, err := s.Recv(); !errors.Is(err, pfxunet.ErrSockState) {
			// Recv on a created socket: allowed to block? The paper's
			// semantics require a bind first; we report a state error.
			t.Errorf("recv unbound: %v", err)
		}
		if err := s.Bind(0, 0); !errors.Is(err, pfxunet.ErrBadVCI) {
			t.Errorf("bind vci 0: %v", err)
		}
		if err := s.Bind(40, 0); err != nil {
			t.Errorf("bind: %v", err)
		}
		if err := s.Bind(41, 0); !errors.Is(err, pfxunet.ErrSockState) {
			t.Errorf("double bind: %v", err)
		}
		s2, _ := r.ra.PF.Socket(p)
		if err := s2.Connect(40, 0); !errors.Is(err, pfxunet.ErrVCIBusy) {
			t.Errorf("connect busy vci: %v", err)
		}
	})
	r.e.Run()
}

func TestBindPostsIndicationWithCookie(t *testing.T) {
	r := newRig(t)
	var msgs []kern.KMsg
	r.e.Go("anand", func(sp *sim.Proc) {
		for {
			m, ok := r.ra.M.Dev.ReadUp(sp)
			if !ok {
				return
			}
			msgs = append(msgs, m)
		}
	})
	var pid uint32
	r.ra.Spawn("app", func(p *kern.Proc) {
		pid = p.PID
		s, _ := r.ra.PF.Socket(p)
		_ = s.Bind(50, 0xBEEF)
		s2, _ := r.ra.PF.Socket(p)
		_ = s2.Connect(51, 0xCAFE)
	})
	r.e.Run()
	// Expect BIND_IND, CONNECT_IND, then close indications from exit
	// processing, then EXIT_IND.
	if len(msgs) < 3 {
		t.Fatalf("messages: %v", msgs)
	}
	if msgs[0].Kind != kern.MsgBind || msgs[0].VCI != 50 || msgs[0].Cookie != 0xBEEF || msgs[0].PID != pid {
		t.Fatalf("bind ind = %v", msgs[0])
	}
	if msgs[1].Kind != kern.MsgConnect || msgs[1].VCI != 51 || msgs[1].Cookie != 0xCAFE {
		t.Fatalf("connect ind = %v", msgs[1])
	}
	last := msgs[len(msgs)-1]
	if last.Kind != kern.MsgExit || last.PID != pid {
		t.Fatalf("last = %v", last)
	}
}

func TestClosePostsCloseIndication(t *testing.T) {
	r := newRig(t)
	r.ra.Spawn("app", func(p *kern.Proc) {
		s, _ := r.ra.PF.Socket(p)
		_ = s.Connect(60, 0)
		s.Close()
	})
	r.e.Run()
	kinds := drainKinds(r.ra.M.Dev)
	want := []kern.MsgKind{kern.MsgConnect, kern.MsgClose, kern.MsgExit}
	if len(kinds) != len(want) {
		t.Fatalf("kinds = %v", kinds)
	}
	for i := range want {
		if kinds[i] != want[i] {
			t.Fatalf("kinds = %v, want %v", kinds, want)
		}
	}
	if r.ra.PF.ActiveVCIs() != 0 {
		t.Fatal("PCB not cleared on close")
	}
}

func drainKinds(d *kern.PseudoDev) []kern.MsgKind {
	var out []kern.MsgKind
	for {
		m, ok := d.TryReadUp()
		if !ok {
			return out
		}
		out = append(out, m.Kind)
	}
}

func TestProcessExitClosesSocketAndPostsIndications(t *testing.T) {
	r := newRig(t)
	vc := r.vc(t)
	p := r.ra.Spawn("app", func(p *kern.Proc) {
		s, _ := r.ra.PF.Socket(p)
		_ = s.Connect(vc.SrcVCI, 0)
		p.SP.Park() // hang until killed
	})
	r.e.Go("killer", func(sp *sim.Proc) {
		sp.Sleep(1)
		p.Kill()
	})
	r.e.Run()
	if r.ra.PF.ActiveVCIs() != 0 {
		t.Fatal("VCI leaked after kill")
	}
	kinds := drainKinds(r.ra.M.Dev)
	// CONNECT_IND, CLOSE_IND (from fd sweep), EXIT_IND.
	if len(kinds) != 3 || kinds[1] != kern.MsgClose || kinds[2] != kern.MsgExit {
		t.Fatalf("kinds = %v", kinds)
	}
}

func TestSoisdisconnected(t *testing.T) {
	r := newRig(t)
	vc := r.vc(t)
	var recvErr error
	r.rb.Spawn("server", func(p *kern.Proc) {
		s, _ := r.rb.PF.Socket(p)
		_ = s.Bind(vc.DstVCI, 0)
		_, recvErr = s.Recv() // blocked when the disconnect lands
	})
	r.e.Go("sighost-stub", func(sp *sim.Proc) {
		sp.Sleep(1000)
		r.rb.M.Dev.WriteDown(kern.DownCmd{Kind: kern.DownDisconnect, VCI: vc.DstVCI})
	})
	r.e.Run()
	if !errors.Is(recvErr, pfxunet.ErrDisconnected) {
		t.Fatalf("recv err = %v", recvErr)
	}
	// Further sends on a disconnected socket fail too.
}

func TestDisconnectedSocketDrainsBufferedFrames(t *testing.T) {
	r := newRig(t)
	vc := r.vc(t)
	var first []byte
	var secondErr error
	r.rb.Spawn("server", func(p *kern.Proc) {
		s, _ := r.rb.PF.Socket(p)
		_ = s.Bind(vc.DstVCI, 0)
		p.SP.Sleep(50_000_000) // let a frame arrive and buffer
		r.rb.M.Dev.WriteDown(kern.DownCmd{Kind: kern.DownDisconnect, VCI: vc.DstVCI})
		first, _ = s.Recv()
		_, secondErr = s.Recv()
	})
	r.ra.Spawn("client", func(p *kern.Proc) {
		s, _ := r.ra.PF.Socket(p)
		_ = s.Connect(vc.SrcVCI, 0)
		_ = s.Send([]byte("buffered"))
	})
	r.e.Run()
	if string(first) != "buffered" {
		t.Fatalf("buffered frame lost: %q", first)
	}
	if !errors.Is(secondErr, pfxunet.ErrDisconnected) {
		t.Fatalf("second recv err = %v", secondErr)
	}
}

func TestNoSocketDrop(t *testing.T) {
	r := newRig(t)
	vc := r.vc(t)
	r.ra.Spawn("client", func(p *kern.Proc) {
		s, _ := r.ra.PF.Socket(p)
		_ = s.Connect(vc.SrcVCI, 0)
		_ = s.Send([]byte("nobody home"))
	})
	r.e.Run()
	// Frame reaches rb's driver but no handler is installed for the VCI
	// (no socket bound): the driver discards it.
	if r.rb.M.Orc.DiscardedNoHandler != 1 {
		t.Fatalf("DiscardedNoHandler = %d", r.rb.M.Orc.DiscardedNoHandler)
	}
}

func TestReceiveCostsMatchTable1(t *testing.T) {
	r := newRig(t)
	vc := r.vc(t)
	payload := make([]byte, 5*mbuf.MLEN) // 5 small mbufs on receive
	done := make(chan struct{}, 1)
	_ = done
	var before, after cost.Snapshot
	r.rb.Spawn("server", func(p *kern.Proc) {
		s, _ := r.rb.PF.Socket(p)
		_ = s.Bind(vc.DstVCI, 0)
		before = r.rb.M.Meter.Snapshot()
		chain, err := s.RecvChain()
		if err != nil {
			t.Error(err)
			return
		}
		after = r.rb.M.Meter.Snapshot()
		// PF_XUNET: 99 + 8 * mbufs.
		wantPF := int64(cost.PFXunetRecvFixed + cost.PerMbuf*chain.Count())
		d := after.Sub(before)
		if d[cost.PFXunet] != wantPF {
			t.Errorf("PF_XUNET recv = %d, want %d (mbufs=%d)", d[cost.PFXunet], wantPF, chain.Count())
		}
		if d[cost.OrcDriver] != cost.OrcRecvDispatch {
			t.Errorf("Orc recv = %d, want %d", d[cost.OrcDriver], cost.OrcRecvDispatch)
		}
	})
	r.ra.Spawn("client", func(p *kern.Proc) {
		s, _ := r.ra.PF.Socket(p)
		_ = s.Connect(vc.SrcVCI, 0)
		_ = s.Send(payload)
	})
	r.e.Run()
	if before == nil || after == nil {
		t.Fatal("measurement did not run")
	}
}

func TestSendCostsZeroAtRouter(t *testing.T) {
	// Table 1: on the send side at a router, PF_XUNET and Orc charge
	// nothing (the board does the work).
	r := newRig(t)
	vc := r.vc(t)
	r.ra.Spawn("client", func(p *kern.Proc) {
		s, _ := r.ra.PF.Socket(p)
		_ = s.Connect(vc.SrcVCI, 0)
		before := r.ra.M.Meter.Snapshot()
		_ = s.Send(make([]byte, 1000))
		d := r.ra.M.Meter.Snapshot().Sub(before)
		if d[cost.PFXunet] != 0 || d[cost.OrcDriver] != 0 {
			t.Errorf("router send charged %v", d)
		}
	})
	r.e.Run()
}

func TestRecvBufferOverflowDrops(t *testing.T) {
	r := newRig(t)
	vc := r.vc(t)
	r.rb.Spawn("server", func(p *kern.Proc) {
		s, _ := r.rb.PF.Socket(p)
		_ = s.Bind(vc.DstVCI, 0)
		p.SP.Park() // never reads: buffer fills
	})
	r.ra.Spawn("client", func(p *kern.Proc) {
		s, _ := r.ra.PF.Socket(p)
		_ = s.Connect(vc.SrcVCI, 0)
		for i := 0; i < 20; i++ {
			_ = s.Send(make([]byte, 8000)) // 160 KB total > 64 KB limit
			// Pace below the trunk rate so the loss happens at the
			// socket buffer, not in a switch queue.
			p.SP.Sleep(5_000_000)
		}
	})
	r.e.Run()
	if r.rb.PF.DroppedOverflow == 0 {
		t.Fatal("no overflow drops")
	}
	r.e.Shutdown()
}

func TestSendChain(t *testing.T) {
	r := newRig(t)
	vc := r.vc(t)
	var got []byte
	r.rb.Spawn("server", func(p *kern.Proc) {
		s, _ := r.rb.PF.Socket(p)
		_ = s.Bind(vc.DstVCI, 0)
		got, _ = s.Recv()
	})
	r.ra.Spawn("client", func(p *kern.Proc) {
		s, _ := r.ra.PF.Socket(p)
		_ = s.Connect(vc.SrcVCI, 0)
		c := mbuf.FromBytesSplit([]byte("chained payload"), 4)
		_ = s.SendChain(c)
	})
	r.e.Run()
	if string(got) != "chained payload" {
		t.Fatalf("got %q", got)
	}
}

func TestTwoCircuitsBidirectional(t *testing.T) {
	// Simplex circuits in both directions (the paper's file-service
	// example needs a return connection).
	r := newRig(t)
	ab := r.vc(t)
	ba, err := r.fab.SetupVC(r.rb.Addr, r.ra.Addr, qos.BestEffortQoS)
	if err != nil {
		t.Fatal(err)
	}
	var reply []byte
	r.rb.Spawn("server", func(p *kern.Proc) {
		in, _ := r.rb.PF.Socket(p)
		_ = in.Bind(ab.DstVCI, 0)
		out, _ := r.rb.PF.Socket(p)
		_ = out.Connect(ba.SrcVCI, 0)
		msg, err := in.Recv()
		if err != nil {
			t.Error(err)
			return
		}
		_ = out.Send(append([]byte("echo: "), msg...))
	})
	r.ra.Spawn("client", func(p *kern.Proc) {
		out, _ := r.ra.PF.Socket(p)
		_ = out.Connect(ab.SrcVCI, 0)
		in, _ := r.ra.PF.Socket(p)
		_ = in.Bind(ba.DstVCI, 0)
		_ = out.Send([]byte("hi"))
		reply, _ = in.Recv()
	})
	r.e.Run()
	if string(reply) != "echo: hi" {
		t.Fatalf("reply = %q", reply)
	}
}

func TestSocketFDAccounting(t *testing.T) {
	r := newRig(t)
	r.ra.Spawn("app", func(p *kern.Proc) {
		free0 := p.FreeFDs()
		s, _ := r.ra.PF.Socket(p)
		if p.FreeFDs() != free0-1 {
			t.Error("socket did not consume an fd")
		}
		s.Close()
		if p.FreeFDs() != free0 {
			t.Error("PF_XUNET socket close must free the fd immediately (no TIME_WAIT)")
		}
	})
	r.e.Run()
}

func TestBindAfterDisconnectedVCIFreed(t *testing.T) {
	r := newRig(t)
	var rebindErr error
	r.ra.Spawn("app", func(p *kern.Proc) {
		s, _ := r.ra.PF.Socket(p)
		_ = s.Bind(70, 0)
		r.ra.M.Dev.WriteDown(kern.DownCmd{Kind: kern.DownDisconnect, VCI: 70})
		s.Close()
		s2, _ := r.ra.PF.Socket(p)
		rebindErr = s2.Bind(70, 0)
	})
	r.e.Run()
	if rebindErr != nil {
		t.Fatalf("rebind after disconnect+close: %v", rebindErr)
	}
}

var _ = atm.VCI(0) // keep import when test list shifts
