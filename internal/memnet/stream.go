package memnet

import (
	"errors"
	"fmt"
	"time"

	"xunet/internal/mbuf"
	"xunet/internal/sim"
)

// The stream service is the simulation's TCP stand-in: reliable,
// ordered, connection-oriented delivery of framed messages, with a
// three-way open, FIN close, retransmission, and RST for connections
// nobody is listening for. The signaling IPC of the paper ("we used
// TCP/IP for IPC, in essence building a special-purpose RPC facility")
// runs over these streams in the simulated world.

// Stream segment flags.
const (
	flagSYN = 1 << iota
	flagACK
	flagFIN
	flagDATA
	flagRST
)

const segHeaderSize = 13 // flags(1) sport(2) dport(2) seq(4) ack(4)

// Stream tuning constants.
const (
	streamRTO        = 250 * time.Millisecond
	streamMaxRetries = 8
	streamWindow     = 32
)

// ErrStreamReset reports a connection torn down by the peer or by
// retransmission exhaustion.
var ErrStreamReset = errors.New("memnet: stream reset")

// ErrStreamClosed reports use of a locally closed stream.
var ErrStreamClosed = errors.New("memnet: stream closed")

// ErrConnRefused reports a dial to a port with no listener.
var ErrConnRefused = errors.New("memnet: connection refused")

// ErrDialTimeout reports an unanswered connection attempt.
var ErrDialTimeout = errors.New("memnet: dial timed out")

type segment struct {
	flags    byte
	sport    uint16
	dport    uint16
	seq, ack uint32
	data     []byte
}

func (s *segment) encode() []byte {
	out := make([]byte, segHeaderSize+len(s.data))
	out[0] = s.flags
	out[1], out[2] = byte(s.sport>>8), byte(s.sport)
	out[3], out[4] = byte(s.dport>>8), byte(s.dport)
	out[5], out[6], out[7], out[8] = byte(s.seq>>24), byte(s.seq>>16), byte(s.seq>>8), byte(s.seq)
	out[9], out[10], out[11], out[12] = byte(s.ack>>24), byte(s.ack>>16), byte(s.ack>>8), byte(s.ack)
	copy(out[segHeaderSize:], s.data)
	return out
}

func decodeSegment(b []byte) (segment, bool) {
	if len(b) < segHeaderSize {
		return segment{}, false
	}
	return segment{
		flags: b[0],
		sport: uint16(b[1])<<8 | uint16(b[2]),
		dport: uint16(b[3])<<8 | uint16(b[4]),
		seq:   uint32(b[5])<<24 | uint32(b[6])<<16 | uint32(b[7])<<8 | uint32(b[8]),
		ack:   uint32(b[9])<<24 | uint32(b[10])<<16 | uint32(b[11])<<8 | uint32(b[12]),
		data:  b[segHeaderSize:],
	}, true
}

type connKey struct {
	lport uint16
	raddr IPAddr
	rport uint16
}

type streamLayer struct {
	node      *Node
	listeners map[uint16]*StreamListener
	conns     map[connKey]*Stream
	// ports counts live connections per local port so portBusy — called
	// by every ephemeral-port probe — is an indexed lookup instead of a
	// scan over every connection on the node. All conns mutations go
	// through addConn/delConn to keep the index exact.
	ports map[uint16]int
}

func newStreamLayer(nd *Node) *streamLayer {
	sl := &streamLayer{
		node:      nd,
		listeners: make(map[uint16]*StreamListener),
		conns:     make(map[connKey]*Stream),
		ports:     make(map[uint16]int),
	}
	nd.BindProto(ProtoStream, sl.input)
	return sl
}

func (sl *streamLayer) addConn(s *Stream) {
	sl.conns[s.key] = s
	sl.ports[s.key.lport]++
}

// delConn removes the connection under key, if still present, and
// releases its claim on the local port. Idempotent: teardown can race
// a test's simulated peer death, and only the first removal counts.
func (sl *streamLayer) delConn(key connKey) {
	if _, ok := sl.conns[key]; !ok {
		return
	}
	delete(sl.conns, key)
	if n := sl.ports[key.lport] - 1; n <= 0 {
		delete(sl.ports, key.lport)
	} else {
		sl.ports[key.lport] = n
	}
}

func (sl *streamLayer) portBusy(port uint16) bool {
	if _, ok := sl.listeners[port]; ok {
		return true
	}
	return sl.ports[port] > 0
}

// StreamListener accepts inbound stream connections on one port.
type StreamListener struct {
	node    *Node
	port    uint16
	backlog *sim.Queue[*Stream]
	closed  bool
}

// ListenStream binds a listener to port.
func (nd *Node) ListenStream(port uint16) (*StreamListener, error) {
	if nd.streams.portBusy(port) {
		return nil, fmt.Errorf("%w: stream port %d on %s", ErrPortInUse, port, nd.Name)
	}
	l := &StreamListener{
		node:    nd,
		port:    port,
		backlog: sim.NewQueue[*Stream](nd.eng),
	}
	nd.streams.listeners[port] = l
	return l, nil
}

// Accept blocks until a connection arrives; ok is false once the
// listener is closed.
func (l *StreamListener) Accept(p *sim.Proc) (*Stream, bool) {
	return l.backlog.Get(p)
}

// AcceptTimeout is Accept with a timeout (d < 0 means none).
func (l *StreamListener) AcceptTimeout(p *sim.Proc, d time.Duration) (s *Stream, ok, timedOut bool) {
	return l.backlog.GetTimeout(p, d)
}

// Close unbinds the listener. Established connections are unaffected.
func (l *StreamListener) Close() {
	if l.closed {
		return
	}
	l.closed = true
	delete(l.node.streams.listeners, l.port)
	l.backlog.Close()
}

// Port returns the bound port.
func (l *StreamListener) Port() uint16 { return l.port }

// Stream is one reliable framed-message connection endpoint.
type Stream struct {
	node *Node
	key  connKey

	established bool
	dialWaiter  *sim.Proc
	dialErr     error

	// Send side.
	sendSeq   uint32 // next sequence number to assign
	unacked   map[uint32][]byte
	unackBase uint32   // lowest unacked seq
	pending   [][]byte // messages waiting for window space
	retries   int
	rtimer    sim.Timer
	finSeq    uint32 // seq the FIN occupies, 0 if none
	finQueued bool

	// Receive side.
	recvNext uint32
	ooo      map[uint32][]byte
	oooFin   map[uint32]bool
	inbox    *sim.Queue[[]byte]

	localClosed  bool
	remoteClosed bool
	reset        bool
	teardown     func(reset bool)
	toreDown     bool

	// Retransmits counts timer-driven resends, for experiments.
	Retransmits uint64
}

func newStream(nd *Node, key connKey) *Stream {
	return &Stream{
		node:      nd,
		key:       key,
		sendSeq:   1,
		unackBase: 1,
		recvNext:  1,
		unacked:   make(map[uint32][]byte),
		ooo:       make(map[uint32][]byte),
		inbox:     sim.NewQueue[[]byte](nd.eng),
	}
}

// DialStream opens a connection from this node, blocking process p
// through the handshake.
func (nd *Node) DialStream(p *sim.Proc, raddr IPAddr, rport uint16) (*Stream, error) {
	key := connKey{lport: nd.ephemeralPort(), raddr: raddr, rport: rport}
	s := newStream(nd, key)
	nd.streams.addConn(s)
	s.dialWaiter = p
	s.sendSegment(&segment{flags: flagSYN, sport: key.lport, dport: rport})
	s.armRetransmit()
	p.Park()
	s.dialWaiter = nil
	if s.dialErr != nil {
		nd.streams.delConn(key)
		return nil, s.dialErr
	}
	return s, nil
}

// LocalAddr returns this endpoint's node address.
func (s *Stream) LocalAddr() IPAddr { return s.node.Addr }

// LocalPort returns this endpoint's port.
func (s *Stream) LocalPort() uint16 { return s.key.lport }

// RemoteAddr returns the peer's node address.
func (s *Stream) RemoteAddr() IPAddr { return s.key.raddr }

// RemotePort returns the peer's port.
func (s *Stream) RemotePort() uint16 { return s.key.rport }

// SetTeardown registers a hook invoked exactly once when the connection
// fully terminates; reset reports abnormal termination. The kernel layer
// uses it for TIME_WAIT descriptor retention and soisdisconnected.
func (s *Stream) SetTeardown(fn func(reset bool)) { s.teardown = fn }

// Send queues one framed message for reliable delivery. It never
// blocks; flow beyond the window is buffered locally.
func (s *Stream) Send(msg []byte) error {
	if s.localClosed {
		return ErrStreamClosed
	}
	if s.reset {
		return ErrStreamReset
	}
	cp := append([]byte(nil), msg...)
	s.pending = append(s.pending, cp)
	s.pump()
	return nil
}

// pump moves pending messages into the window.
func (s *Stream) pump() {
	for len(s.pending) > 0 && uint32(len(s.unacked)) < streamWindow {
		msg := s.pending[0]
		s.pending = s.pending[1:]
		seq := s.sendSeq
		s.sendSeq++
		s.unacked[seq] = msg
		s.sendSegment(&segment{flags: flagDATA, sport: s.key.lport, dport: s.key.rport, seq: seq, data: msg})
	}
	if s.finQueued && len(s.pending) == 0 && s.finSeq == 0 {
		s.finSeq = s.sendSeq
		s.sendSeq++
		s.unacked[s.finSeq] = nil
		s.sendSegment(&segment{flags: flagFIN, sport: s.key.lport, dport: s.key.rport, seq: s.finSeq})
	}
	if len(s.unacked) > 0 {
		s.armRetransmit()
	}
}

// Recv blocks until a message arrives. ok is false once the peer has
// closed (or reset) and all delivered messages are consumed.
func (s *Stream) Recv(p *sim.Proc) ([]byte, bool) {
	return s.inbox.Get(p)
}

// RecvTimeout is Recv with a timeout (d < 0 means none).
func (s *Stream) RecvTimeout(p *sim.Proc, d time.Duration) (msg []byte, ok, timedOut bool) {
	return s.inbox.GetTimeout(p, d)
}

// TryRecv returns a buffered message without blocking.
func (s *Stream) TryRecv() ([]byte, bool) { return s.inbox.TryGet() }

// Reset reports whether the connection terminated abnormally.
func (s *Stream) Reset() bool { return s.reset }

// Close initiates an orderly shutdown: queued data is still delivered,
// then a FIN. Close is idempotent.
func (s *Stream) Close() {
	if s.localClosed || s.reset {
		return
	}
	s.localClosed = true
	s.finQueued = true
	s.pump()
	s.maybeFinish()
}

// abort tears the connection down immediately.
func (s *Stream) abort(sendRST bool) {
	if s.reset {
		return
	}
	s.reset = true
	if sendRST {
		s.sendSegment(&segment{flags: flagRST, sport: s.key.lport, dport: s.key.rport})
	}
	s.rtimer.Stop()
	s.inbox.Close()
	if s.dialWaiter != nil {
		s.dialErr = ErrStreamReset
		s.dialWaiter.Unpark()
	}
	s.finish(true)
}

func (s *Stream) finish(reset bool) {
	if s.toreDown {
		return
	}
	s.toreDown = true
	s.node.streams.delConn(s.key)
	s.rtimer.Stop()
	if s.teardown != nil {
		s.teardown(reset)
	}
}

// maybeFinish completes an orderly close once both directions are done.
func (s *Stream) maybeFinish() {
	if s.localClosed && s.remoteClosed && len(s.unacked) == 0 && len(s.pending) == 0 && !s.finQueuedUnsent() {
		s.finish(false)
	}
}

func (s *Stream) finQueuedUnsent() bool { return s.finQueued && s.finSeq == 0 }

func (s *Stream) sendSegment(seg *segment) {
	pkt := &Packet{
		Dst:     s.key.raddr,
		Proto:   ProtoStream,
		Payload: mbuf.FromBytes(seg.encode()),
	}
	_ = s.node.SendIP(pkt)
}

func (s *Stream) armRetransmit() {
	s.rtimer.Stop()
	s.rtimer = s.node.eng.Schedule(streamRTO, s.onRetransmit)
}

func (s *Stream) onRetransmit() {
	s.rtimer = sim.Timer{}
	if s.reset || s.toreDown {
		return
	}
	s.retries++
	if s.retries > streamMaxRetries {
		s.abort(false)
		return
	}
	if !s.established && s.dialWaiter != nil {
		s.sendSegment(&segment{flags: flagSYN, sport: s.key.lport, dport: s.key.rport})
		s.armRetransmit()
		return
	}
	for seq := s.unackBase; seq < s.sendSeq; seq++ {
		msg, ok := s.unacked[seq]
		if !ok {
			continue
		}
		s.Retransmits++
		if seq == s.finSeq {
			s.sendSegment(&segment{flags: flagFIN, sport: s.key.lport, dport: s.key.rport, seq: seq})
		} else {
			s.sendSegment(&segment{flags: flagDATA, sport: s.key.lport, dport: s.key.rport, seq: seq, data: msg})
		}
	}
	if len(s.unacked) > 0 {
		s.armRetransmit()
	}
}

// input dispatches an arriving stream segment on this node.
func (sl *streamLayer) input(pkt *Packet) {
	b := pkt.Payload.Bytes()
	pkt.Payload.Release() // flattened copy taken; recycle the mbufs
	seg, ok := decodeSegment(b)
	if !ok {
		return
	}
	key := connKey{lport: seg.dport, raddr: pkt.Src, rport: seg.sport}
	if s, ok := sl.conns[key]; ok {
		s.handle(&seg)
		return
	}
	// No connection. SYN to a live listener opens one; anything else
	// (except RST itself) draws an RST.
	if seg.flags&flagSYN != 0 && seg.flags&flagACK == 0 {
		if l, ok := sl.listeners[seg.dport]; ok && !l.closed {
			s := newStream(sl.node, key)
			s.established = true
			sl.addConn(s)
			s.sendSegment(&segment{flags: flagSYN | flagACK, sport: seg.dport, dport: seg.sport})
			l.backlog.Put(s)
			return
		}
	}
	if seg.flags&flagRST == 0 {
		reply := &segment{flags: flagRST, sport: seg.dport, dport: seg.sport}
		_ = sl.node.SendIP(&Packet{Dst: pkt.Src, Proto: ProtoStream, Payload: mbuf.FromBytes(reply.encode())})
	}
}

// handle processes a segment on an existing connection.
func (s *Stream) handle(seg *segment) {
	if s.toreDown {
		return
	}
	switch {
	case seg.flags&flagRST != 0:
		if !s.established && s.dialWaiter != nil {
			s.dialErr = ErrConnRefused
			w := s.dialWaiter
			s.reset = true
			s.inbox.Close()
			s.finish(true)
			w.Unpark()
			return
		}
		s.abort(false)
		return

	case seg.flags&flagSYN != 0 && seg.flags&flagACK == 0:
		// Retransmitted SYN on an accepted connection: the original
		// SYN-ACK was lost, so resend it.
		s.sendSegment(&segment{flags: flagSYN | flagACK, sport: s.key.lport, dport: s.key.rport})
		return

	case seg.flags&flagSYN != 0 && seg.flags&flagACK != 0:
		// SYN-ACK: dial completes.
		if !s.established {
			s.established = true
			s.retries = 0
			s.rtimer.Stop()
			s.sendSegment(&segment{flags: flagACK, sport: s.key.lport, dport: s.key.rport, ack: s.recvNext})
			if s.dialWaiter != nil {
				s.dialWaiter.Unpark()
			}
			s.pump()
		}
		return

	case seg.flags&flagDATA != 0, seg.flags&flagFIN != 0:
		s.established = true
		isFin := seg.flags&flagFIN != 0
		switch {
		case seg.seq == s.recvNext:
			s.acceptInOrder(seg.data, isFin)
			for {
				if fin, ok := s.oooFin[s.recvNext]; ok {
					data := s.ooo[s.recvNext]
					delete(s.ooo, s.recvNext)
					delete(s.oooFin, s.recvNext)
					s.acceptInOrder(data, fin)
					continue
				}
				break
			}
		case seg.seq > s.recvNext:
			s.bufferOutOfOrder(seg.seq, seg.data, isFin)
		}
		// Cumulative ACK in all cases (including duplicates).
		s.sendSegment(&segment{flags: flagACK, sport: s.key.lport, dport: s.key.rport, ack: s.recvNext})
		return

	case seg.flags&flagACK != 0:
		s.established = true
		s.retries = 0
		advanced := false
		for seq := s.unackBase; seq < seg.ack; seq++ {
			if _, ok := s.unacked[seq]; ok {
				delete(s.unacked, seq)
				advanced = true
			}
		}
		if seg.ack > s.unackBase {
			s.unackBase = seg.ack
		}
		if advanced {
			if len(s.unacked) == 0 {
				s.rtimer.Stop()
			}
			s.pump()
			s.maybeFinish()
		}
		return
	}
}

func (s *Stream) acceptInOrder(data []byte, fin bool) {
	s.recvNext++
	if fin {
		s.remoteClosed = true
		s.inbox.Close()
		s.maybeFinish()
		return
	}
	s.inbox.Put(data)
}

func (s *Stream) bufferOutOfOrder(seq uint32, data []byte, fin bool) {
	if s.oooFin == nil {
		s.oooFin = make(map[uint32]bool)
	}
	s.ooo[seq] = data
	s.oooFin[seq] = fin
}
