package memnet

import (
	"errors"
	"testing"
	"time"

	"xunet/internal/cost"
	"xunet/internal/mbuf"
	"xunet/internal/sim"
)

// twoNodes builds host--router connected by FDDI.
func twoNodes(t *testing.T) (*sim.Engine, *Network, *Node, *Node) {
	t.Helper()
	e := sim.New(1)
	n := New(e)
	h := n.MustAddNode("host", IP4(10, 0, 0, 1))
	r := n.MustAddNode("router", IP4(10, 0, 0, 2))
	n.Connect(h, r, FDDI())
	h.SetDefaultRoute(r)
	r.SetDefaultRoute(h)
	return e, n, h, r
}

func TestIPAddrString(t *testing.T) {
	if got := IP4(10, 1, 2, 3).String(); got != "10.1.2.3" {
		t.Fatalf("String = %q", got)
	}
}

func TestDupAddrRejected(t *testing.T) {
	n := New(sim.New(1))
	n.MustAddNode("a", IP4(1, 1, 1, 1))
	if _, err := n.AddNode("b", IP4(1, 1, 1, 1)); !errors.Is(err, ErrDupAddr) {
		t.Fatalf("err = %v", err)
	}
}

func TestRawDelivery(t *testing.T) {
	e, _, h, r := twoNodes(t)
	var got []byte
	r.BindProto(200, func(pkt *Packet) { got = pkt.Payload.Bytes() })
	e.Go("send", func(p *sim.Proc) {
		err := h.SendIP(&Packet{Dst: r.Addr, Proto: 200, Payload: mbuf.FromBytes([]byte("hello"))})
		if err != nil {
			t.Errorf("SendIP: %v", err)
		}
	})
	e.Run()
	if string(got) != "hello" {
		t.Fatalf("got %q", got)
	}
	if r.Delivered != 1 {
		t.Fatalf("Delivered = %d", r.Delivered)
	}
}

func TestNoRoute(t *testing.T) {
	e := sim.New(1)
	n := New(e)
	lone := n.MustAddNode("lone", IP4(9, 9, 9, 9))
	err := lone.SendIP(&Packet{Dst: IP4(8, 8, 8, 8), Proto: 1, Payload: mbuf.Empty()})
	if !errors.Is(err, ErrNoRoute) {
		t.Fatalf("err = %v", err)
	}
	if lone.NoRoute != 1 {
		t.Fatalf("NoRoute = %d", lone.NoRoute)
	}
}

func TestForwarding(t *testing.T) {
	e := sim.New(1)
	n := New(e)
	a := n.MustAddNode("a", IP4(10, 0, 0, 1))
	b := n.MustAddNode("b", IP4(10, 0, 0, 2))
	c := n.MustAddNode("c", IP4(10, 0, 0, 3))
	n.Connect(a, b, FDDI())
	n.Connect(b, c, FDDI())
	a.AddRoute(c.Addr, b)
	b.AddRoute(c.Addr, c)
	var got bool
	c.BindProto(99, func(*Packet) { got = true })
	_ = a.SendIP(&Packet{Dst: c.Addr, Proto: 99, Payload: mbuf.FromBytes([]byte("x"))})
	e.Run()
	if !got {
		t.Fatal("packet not forwarded to c")
	}
	if b.Forwarded != 1 {
		t.Fatalf("b.Forwarded = %d", b.Forwarded)
	}
}

func TestTTLExpiry(t *testing.T) {
	// Two nodes with default routes pointing at each other: a packet for
	// a third address ping-pongs until TTL dies.
	e, _, h, r := twoNodes(t)
	_ = h.SendIP(&Packet{Dst: IP4(99, 99, 99, 99), Proto: 1, Payload: mbuf.Empty()})
	e.Run()
	if h.Forwarded+r.Forwarded == 0 {
		t.Fatal("no forwarding happened")
	}
	if h.Forwarded+r.Forwarded > DefaultTTL {
		t.Fatalf("loop not bounded: %d hops", h.Forwarded+r.Forwarded)
	}
}

func TestLinkLoss(t *testing.T) {
	e, _, h, r := twoNodes(t)
	h.LinkTo(r).SetLoss(1.0)
	delivered := false
	r.BindProto(50, func(*Packet) { delivered = true })
	_ = h.SendIP(&Packet{Dst: r.Addr, Proto: 50, Payload: mbuf.Empty()})
	e.Run()
	if delivered {
		t.Fatal("packet survived 100% loss")
	}
	sent, dropped, _ := h.LinkTo(r).Stats()
	if sent != 1 || dropped != 1 {
		t.Fatalf("stats sent=%d dropped=%d", sent, dropped)
	}
}

func TestSerializationDelay(t *testing.T) {
	e := sim.New(1)
	n := New(e)
	a := n.MustAddNode("a", IP4(1, 0, 0, 1))
	b := n.MustAddNode("b", IP4(1, 0, 0, 2))
	// 1 Mb/s, zero propagation: a 1020-byte payload + 20 IP = 1040 B
	// = 8320 bits = 8.32 ms.
	n.Connect(a, b, LinkConfig{RateBps: 1_000_000})
	a.SetDefaultRoute(b)
	var at time.Duration
	b.BindProto(7, func(*Packet) { at = e.Now() })
	_ = a.SendIP(&Packet{Dst: b.Addr, Proto: 7, Payload: mbuf.FromBytes(make([]byte, 1020))})
	e.Run()
	want := 8320 * time.Microsecond
	if at != want {
		t.Fatalf("arrival at %v, want %v", at, want)
	}
}

func TestLinkQueueing(t *testing.T) {
	e := sim.New(1)
	n := New(e)
	a := n.MustAddNode("a", IP4(1, 0, 0, 1))
	b := n.MustAddNode("b", IP4(1, 0, 0, 2))
	n.Connect(a, b, LinkConfig{RateBps: 1_000_000})
	a.SetDefaultRoute(b)
	var arrivals []time.Duration
	b.BindProto(7, func(*Packet) { arrivals = append(arrivals, e.Now()) })
	for i := 0; i < 3; i++ {
		_ = a.SendIP(&Packet{Dst: b.Addr, Proto: 7, Payload: mbuf.FromBytes(make([]byte, 105))})
	}
	e.Run()
	if len(arrivals) != 3 {
		t.Fatalf("arrivals = %v", arrivals)
	}
	// Each packet is 125 B = 1 ms at 1 Mb/s; they serialize back to back.
	for i, want := range []time.Duration{time.Millisecond, 2 * time.Millisecond, 3 * time.Millisecond} {
		if arrivals[i] != want {
			t.Fatalf("arrival %d at %v, want %v", i, arrivals[i], want)
		}
	}
}

func TestIPCostCharged(t *testing.T) {
	e, _, h, r := twoNodes(t)
	hm, rm := cost.NewMeter(), cost.NewMeter()
	h.Meter, r.Meter = hm, rm
	r.BindProto(60, func(*Packet) {})
	_ = h.SendIP(&Packet{Dst: r.Addr, Proto: 60, Payload: mbuf.Empty()})
	e.Run()
	if got := hm.Count(cost.IP); got != cost.IPSendCost {
		t.Fatalf("sender IP cost = %d", got)
	}
	if got := rm.Count(cost.IP); got != cost.IPRecvCost {
		t.Fatalf("receiver IP cost = %d", got)
	}
}

func TestStreamConnectSendRecv(t *testing.T) {
	e, _, h, r := twoNodes(t)
	const port = 5000
	l, err := r.ListenStream(port)
	if err != nil {
		t.Fatal(err)
	}
	var serverGot, clientGot []byte
	e.Go("server", func(p *sim.Proc) {
		s, ok := l.Accept(p)
		if !ok {
			t.Error("accept failed")
			return
		}
		msg, ok := s.Recv(p)
		if !ok {
			t.Error("server recv failed")
			return
		}
		serverGot = msg
		_ = s.Send([]byte("pong"))
		s.Close()
	})
	e.Go("client", func(p *sim.Proc) {
		s, err := h.DialStream(p, r.Addr, port)
		if err != nil {
			t.Errorf("dial: %v", err)
			return
		}
		_ = s.Send([]byte("ping"))
		msg, ok := s.Recv(p)
		if ok {
			clientGot = msg
		}
		s.Close()
	})
	e.Run()
	if string(serverGot) != "ping" || string(clientGot) != "pong" {
		t.Fatalf("server %q client %q", serverGot, clientGot)
	}
}

func TestStreamOrderingManyMessages(t *testing.T) {
	e, _, h, r := twoNodes(t)
	l, _ := r.ListenStream(5000)
	var got []int
	e.Go("server", func(p *sim.Proc) {
		s, _ := l.Accept(p)
		for {
			msg, ok := s.Recv(p)
			if !ok {
				return
			}
			got = append(got, int(msg[0])<<8|int(msg[1]))
		}
	})
	const count = 200 // exceeds the window, exercising pending-buffer flow
	e.Go("client", func(p *sim.Proc) {
		s, err := h.DialStream(p, r.Addr, 5000)
		if err != nil {
			t.Errorf("dial: %v", err)
			return
		}
		for i := 0; i < count; i++ {
			_ = s.Send([]byte{byte(i >> 8), byte(i)})
		}
		s.Close()
	})
	e.Run()
	if len(got) != count {
		t.Fatalf("received %d of %d", len(got), count)
	}
	for i, v := range got {
		if v != i {
			t.Fatalf("out of order at %d: %d", i, v)
		}
	}
}

func TestStreamReliabilityUnderLoss(t *testing.T) {
	e, _, h, r := twoNodes(t)
	h.LinkTo(r).SetLoss(0.2)
	r.LinkTo(h).SetLoss(0.2)
	l, _ := r.ListenStream(5000)
	var got []int
	e.Go("server", func(p *sim.Proc) {
		s, _ := l.Accept(p)
		for {
			msg, ok := s.Recv(p)
			if !ok {
				return
			}
			got = append(got, int(msg[0]))
		}
	})
	const count = 50
	e.Go("client", func(p *sim.Proc) {
		s, err := h.DialStream(p, r.Addr, 5000)
		if err != nil {
			t.Errorf("dial: %v", err)
			return
		}
		for i := 0; i < count; i++ {
			_ = s.Send([]byte{byte(i)})
			p.Sleep(time.Millisecond)
		}
		s.Close()
	})
	e.Run()
	if len(got) != count {
		t.Fatalf("received %d of %d under loss", len(got), count)
	}
	for i, v := range got {
		if v != i {
			t.Fatalf("out of order at %d: %d", i, v)
		}
	}
}

func TestStreamReorderingMasked(t *testing.T) {
	e, _, h, r := twoNodes(t)
	h.LinkTo(r).SetReorder(0.3, 5*time.Millisecond)
	l, _ := r.ListenStream(5000)
	var got []int
	e.Go("server", func(p *sim.Proc) {
		s, _ := l.Accept(p)
		for {
			msg, ok := s.Recv(p)
			if !ok {
				return
			}
			got = append(got, int(msg[0]))
		}
	})
	e.Go("client", func(p *sim.Proc) {
		s, _ := h.DialStream(p, r.Addr, 5000)
		for i := 0; i < 40; i++ {
			_ = s.Send([]byte{byte(i)})
			p.Sleep(500 * time.Microsecond)
		}
		s.Close()
	})
	e.Run()
	if len(got) != 40 {
		t.Fatalf("received %d of 40", len(got))
	}
	for i, v := range got {
		if v != i {
			t.Fatalf("reordering leaked through at %d: %d", i, v)
		}
	}
}

func TestDialRefused(t *testing.T) {
	e, _, h, r := twoNodes(t)
	var err error
	e.Go("client", func(p *sim.Proc) {
		_, err = h.DialStream(p, r.Addr, 12345)
	})
	e.Run()
	if !errors.Is(err, ErrConnRefused) {
		t.Fatalf("err = %v", err)
	}
}

func TestDialUnreachableTimesOut(t *testing.T) {
	e := sim.New(1)
	n := New(e)
	a := n.MustAddNode("a", IP4(1, 0, 0, 1))
	b := n.MustAddNode("b", IP4(1, 0, 0, 2))
	n.Connect(a, b, FDDI())
	a.SetDefaultRoute(b)
	// b has no route back to a: SYNs arrive, RSTs die at b (no route).
	var err error
	e.Go("client", func(p *sim.Proc) {
		_, err = a.DialStream(p, IP4(1, 0, 0, 2), 80)
	})
	e.Run()
	if !errors.Is(err, ErrStreamReset) {
		t.Fatalf("err = %v", err)
	}
}

func TestStreamTeardownHookOrderly(t *testing.T) {
	e, _, h, r := twoNodes(t)
	l, _ := r.ListenStream(5000)
	var hookReset []bool
	e.Go("server", func(p *sim.Proc) {
		s, _ := l.Accept(p)
		s.SetTeardown(func(reset bool) { hookReset = append(hookReset, reset) })
		for {
			if _, ok := s.Recv(p); !ok {
				break
			}
		}
		s.Close()
	})
	e.Go("client", func(p *sim.Proc) {
		s, _ := h.DialStream(p, r.Addr, 5000)
		_ = s.Send([]byte("x"))
		s.Close()
	})
	e.Run()
	if len(hookReset) != 1 || hookReset[0] {
		t.Fatalf("teardown hooks = %v, want one orderly", hookReset)
	}
}

func TestListenerPortConflict(t *testing.T) {
	_, _, _, r := twoNodes(t)
	if _, err := r.ListenStream(5000); err != nil {
		t.Fatal(err)
	}
	if _, err := r.ListenStream(5000); !errors.Is(err, ErrPortInUse) {
		t.Fatalf("err = %v", err)
	}
}

func TestListenerClose(t *testing.T) {
	e, _, h, r := twoNodes(t)
	l, _ := r.ListenStream(5000)
	var acceptOK, dialErr = true, error(nil)
	e.Go("server", func(p *sim.Proc) {
		_, acceptOK = l.Accept(p)
	})
	e.Go("closer", func(p *sim.Proc) {
		p.Sleep(time.Millisecond)
		l.Close()
	})
	e.Go("late-client", func(p *sim.Proc) {
		p.Sleep(10 * time.Millisecond)
		_, dialErr = h.DialStream(p, r.Addr, 5000)
	})
	e.Run()
	if acceptOK {
		t.Fatal("accept succeeded after close")
	}
	if !errors.Is(dialErr, ErrConnRefused) {
		t.Fatalf("late dial err = %v", dialErr)
	}
	l.Close() // idempotent
}

func TestDatagramDelivery(t *testing.T) {
	e, _, h, r := twoNodes(t)
	var got []byte
	var gotSrc IPAddr
	var gotSport uint16
	if err := r.BindDatagram(9000, func(src IPAddr, sport uint16, data []byte) {
		gotSrc, gotSport, got = src, sport, data
	}); err != nil {
		t.Fatal(err)
	}
	_ = h.SendDatagram(r.Addr, 9000, 1234, []byte("dgram"))
	e.Run()
	if string(got) != "dgram" || gotSrc != h.Addr || gotSport != 1234 {
		t.Fatalf("got %q from %v:%d", got, gotSrc, gotSport)
	}
}

func TestDatagramPortConflictAndUnbind(t *testing.T) {
	_, _, _, r := twoNodes(t)
	if err := r.BindDatagram(9000, func(IPAddr, uint16, []byte) {}); err != nil {
		t.Fatal(err)
	}
	if err := r.BindDatagram(9000, func(IPAddr, uint16, []byte) {}); !errors.Is(err, ErrPortInUse) {
		t.Fatalf("err = %v", err)
	}
	r.UnbindDatagram(9000)
	if err := r.BindDatagram(9000, func(IPAddr, uint16, []byte) {}); err != nil {
		t.Fatalf("rebind after unbind: %v", err)
	}
}

func TestDatagramIsUnreliable(t *testing.T) {
	e, _, h, r := twoNodes(t)
	h.LinkTo(r).SetLoss(1.0)
	seen := false
	_ = r.BindDatagram(9000, func(IPAddr, uint16, []byte) { seen = true })
	_ = h.SendDatagram(r.Addr, 9000, 1, []byte("y"))
	e.Run()
	if seen {
		t.Fatal("datagram survived full loss")
	}
}

func TestStreamResetAfterPeerVanishes(t *testing.T) {
	// The half-open scenario of §4: the peer endpoint fails silently.
	// The sender's retransmissions exhaust and the stream resets.
	e, _, h, r := twoNodes(t)
	l, _ := r.ListenStream(5000)
	var srv *Stream
	e.Go("server", func(p *sim.Proc) {
		srv, _ = l.Accept(p)
	})
	var sawReset bool
	e.Go("client", func(p *sim.Proc) {
		s, err := h.DialStream(p, r.Addr, 5000)
		if err != nil {
			t.Errorf("dial: %v", err)
			return
		}
		s.SetTeardown(func(reset bool) { sawReset = reset })
		p.Sleep(10 * time.Millisecond)
		// Simulate silent remote death: the server's conn evaporates.
		r.streams.delConn(srv.key)
		// Cut the reverse path so RSTs cannot rescue the sender and it
		// must discover the failure by retransmission exhaustion.
		r.LinkTo(h).SetLoss(1.0)
		_ = s.Send([]byte("into the void"))
	})
	e.Run()
	if !sawReset {
		t.Fatal("stream did not reset after peer vanished")
	}
}
