package memnet

import (
	"fmt"
	"testing"
	"time"

	"xunet/internal/faults"
	"xunet/internal/mbuf"
	"xunet/internal/sim"
)

// faultyPair builds host--router over FDDI with a fault plane attached
// to the network.
func faultyPair(t *testing.T, cfg faults.Config) (*sim.Engine, *faults.Plane, *Node, *Node) {
	t.Helper()
	e := sim.New(1)
	n := New(e)
	fp := faults.NewPlane(cfg)
	n.Faults = fp
	h := n.MustAddNode("host", IP4(10, 0, 0, 1))
	r := n.MustAddNode("router", IP4(10, 0, 0, 2))
	n.Connect(h, r, FDDI())
	h.SetDefaultRoute(r)
	r.SetDefaultRoute(h)
	return e, fp, h, r
}

// runStreamUnderFaults pushes count framed messages across a stream and
// returns what the receiver saw plus the plane's counter snapshot.
func runStreamUnderFaults(t *testing.T, cfg faults.Config, count int) ([]string, string) {
	t.Helper()
	e, fp, h, r := faultyPair(t, cfg)
	l, err := r.ListenStream(5000)
	if err != nil {
		t.Fatal(err)
	}
	var got []string
	e.Go("server", func(p *sim.Proc) {
		conn, ok := l.Accept(p)
		if !ok {
			return
		}
		for {
			b, ok := conn.Recv(p)
			if !ok {
				return
			}
			got = append(got, string(b))
		}
	})
	e.Go("client", func(p *sim.Proc) {
		conn, err := h.DialStream(p, r.Addr, 5000)
		if err != nil {
			t.Errorf("dial under faults: %v", err)
			return
		}
		for i := 0; i < count; i++ {
			if err := conn.Send([]byte(fmt.Sprintf("msg-%04d", i))); err != nil {
				t.Errorf("send %d: %v", i, err)
				return
			}
			p.Sleep(time.Millisecond)
		}
		conn.Close()
	})
	e.RunUntil(30 * time.Second)
	return got, fp.Obs.Snapshot().Text()
}

// TestStreamSurvivesPacketLoss is the repair contract: under 5% seeded
// packet loss plus duplication plus occasional extra delay, the stream
// layer's retransmission still delivers every framed message exactly
// once, in order — and the plane actually injected faults.
func TestStreamSurvivesPacketLoss(t *testing.T) {
	cfg := faults.Config{
		Seed: 11, PktLoss: 0.05, PktDup: 0.05,
		PktDelayProb: 0.1, PktDelayMax: 2 * time.Millisecond,
	}
	const count = 200
	got, snap := runStreamUnderFaults(t, cfg, count)
	if len(got) != count {
		t.Fatalf("delivered %d/%d messages", len(got), count)
	}
	for i, m := range got {
		if want := fmt.Sprintf("msg-%04d", i); m != want {
			t.Fatalf("message %d = %q, want %q (reordered or duplicated)", i, m, want)
		}
	}
	if snap == "" {
		t.Fatal("empty fault snapshot")
	}
}

// TestMemnetFaultCountersAdvance checks the injected faults are counted
// on the plane (drops and dups both fire at these rates over 200 sends
// plus retransmissions and acks).
func TestMemnetFaultCountersAdvance(t *testing.T) {
	e, fp, h, r := faultyPair(t, faults.Config{Seed: 5, PktLoss: 0.2, PktDup: 0.2})
	r.BindProto(200, func(pkt *Packet) {})
	e.Go("send", func(p *sim.Proc) {
		for i := 0; i < 500; i++ {
			_ = h.SendIP(&Packet{Dst: r.Addr, Proto: 200, Payload: mbuf.FromBytes(make([]byte, 8))})
			p.Sleep(100 * time.Microsecond)
		}
	})
	e.RunUntil(time.Second)
	snap := fp.Obs.Snapshot()
	if snap.Count("faults.pkt.drop") == 0 {
		t.Error("no packet drops counted")
	}
	if snap.Count("faults.pkt.dup") == 0 {
		t.Error("no packet dups counted")
	}
}

// TestMemnetFaultsDeterministic runs the identical lossy stream workload
// twice and demands byte-identical delivery and fault counters: the
// chaos replay guarantee at the packet layer.
func TestMemnetFaultsDeterministic(t *testing.T) {
	cfg := faults.Config{Seed: 23, PktLoss: 0.1, PktDup: 0.05, PktDelayProb: 0.2, PktDelayMax: time.Millisecond}
	gotA, snapA := runStreamUnderFaults(t, cfg, 100)
	gotB, snapB := runStreamUnderFaults(t, cfg, 100)
	if len(gotA) != len(gotB) {
		t.Fatalf("deliveries differ: %d vs %d", len(gotA), len(gotB))
	}
	if snapA != snapB {
		t.Fatalf("fault counters differ:\n%s\nvs\n%s", snapA, snapB)
	}
}

// TestZeroProbPlaneIsInvisible attaches an all-zero plane and checks the
// link counters match a plane-free run exactly: the golden-preservation
// property at the memnet layer.
func TestZeroProbPlaneIsInvisible(t *testing.T) {
	run := func(withPlane bool) (uint64, uint64, []string) {
		e := sim.New(1)
		n := New(e)
		if withPlane {
			n.Faults = faults.NewPlane(faults.Config{})
		}
		h := n.MustAddNode("host", IP4(10, 0, 0, 1))
		r := n.MustAddNode("router", IP4(10, 0, 0, 2))
		n.Connect(h, r, FDDI())
		h.SetDefaultRoute(r)
		r.SetDefaultRoute(h)
		lh := h.LinkTo(r)
		l, err := r.ListenStream(5000)
		if err != nil {
			t.Fatal(err)
		}
		var got []string
		e.Go("server", func(p *sim.Proc) {
			conn, ok := l.Accept(p)
			if !ok {
				return
			}
			for {
				b, ok := conn.Recv(p)
				if !ok {
					return
				}
				got = append(got, string(b))
			}
		})
		e.Go("client", func(p *sim.Proc) {
			conn, err := h.DialStream(p, r.Addr, 5000)
			if err != nil {
				t.Errorf("dial: %v", err)
				return
			}
			for i := 0; i < 50; i++ {
				_ = conn.Send([]byte(fmt.Sprintf("m%02d", i)))
			}
			conn.Close()
		})
		e.RunUntil(10 * time.Second)
		sent, dropped, _ := lh.Stats()
		return sent, dropped, got
	}
	sentA, dropA, gotA := run(false)
	sentB, dropB, gotB := run(true)
	if sentA != sentB || dropA != dropB || len(gotA) != len(gotB) {
		t.Fatalf("zero-prob plane changed the run: sent %d/%d dropped %d/%d delivered %d/%d",
			sentA, sentB, dropA, dropB, len(gotA), len(gotB))
	}
}

