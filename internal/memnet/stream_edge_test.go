package memnet

import (
	"testing"
	"time"

	"xunet/internal/mbuf"
	"xunet/internal/sim"
)

// Edge cases for the stream transport beyond the main suite.

func TestSimultaneousClose(t *testing.T) {
	e, _, h, r := twoNodes(t)
	l, _ := r.ListenStream(5000)
	var srvDone, cliDone bool
	e.Go("server", func(p *sim.Proc) {
		s, _ := l.Accept(p)
		p.Sleep(10 * time.Millisecond)
		s.Close()
		srvDone = true
	})
	e.Go("client", func(p *sim.Proc) {
		s, err := h.DialStream(p, r.Addr, 5000)
		if err != nil {
			t.Error(err)
			return
		}
		p.Sleep(10 * time.Millisecond)
		s.Close() // both sides close at the same virtual instant
		cliDone = true
	})
	e.Run()
	if !srvDone || !cliDone {
		t.Fatal("closes did not complete")
	}
	// No lingering connections on either node.
	if len(h.streams.conns) != 0 || len(r.streams.conns) != 0 {
		t.Fatalf("lingering conns: %d/%d", len(h.streams.conns), len(r.streams.conns))
	}
}

func TestSendAfterLocalClose(t *testing.T) {
	e, _, h, r := twoNodes(t)
	l, _ := r.ListenStream(5000)
	e.Go("server", func(p *sim.Proc) {
		s, _ := l.Accept(p)
		for {
			if _, ok := s.Recv(p); !ok {
				return
			}
		}
	})
	var err error
	e.Go("client", func(p *sim.Proc) {
		s, _ := h.DialStream(p, r.Addr, 5000)
		s.Close()
		err = s.Send([]byte("late"))
	})
	e.Run()
	if err != ErrStreamClosed {
		t.Fatalf("err = %v", err)
	}
}

func TestDataToClosedConnDrawsRST(t *testing.T) {
	e, _, h, r := twoNodes(t)
	// Craft a DATA segment for a connection that does not exist.
	seg := &segment{flags: flagDATA, sport: 999, dport: 888, seq: 1, data: []byte("stray")}
	_ = h.SendIP(&Packet{Dst: r.Addr, Proto: ProtoStream, Payload: mbuf.FromBytes(seg.encode())})
	e.Run()
	// The RST comes back to h and finds no connection either; it must
	// NOT provoke a counter-RST storm. Count stream packets on the wire.
	sentHR, _, _ := h.LinkTo(r).Stats()
	sentRH, _, _ := r.LinkTo(h).Stats()
	if sentHR != 1 || sentRH != 1 {
		t.Fatalf("packets h->r=%d r->h=%d, want exactly 1 each (no RST storm)", sentHR, sentRH)
	}
}

func TestLargeMessages(t *testing.T) {
	e, _, h, r := twoNodes(t)
	l, _ := r.ListenStream(5000)
	var got int
	e.Go("server", func(p *sim.Proc) {
		s, _ := l.Accept(p)
		for {
			msg, ok := s.Recv(p)
			if !ok {
				return
			}
			got += len(msg)
		}
	})
	const size = 512 * 1024
	e.Go("client", func(p *sim.Proc) {
		s, _ := h.DialStream(p, r.Addr, 5000)
		_ = s.Send(make([]byte, size))
		s.Close()
	})
	e.Run()
	if got != size {
		t.Fatalf("received %d of %d", got, size)
	}
}

func TestManyConcurrentConnections(t *testing.T) {
	e, _, h, r := twoNodes(t)
	l, _ := r.ListenStream(5000)
	served := 0
	e.Go("server", func(p *sim.Proc) {
		for {
			s, ok := l.Accept(p)
			if !ok {
				return
			}
			conn := s
			e.Go("worker", func(w *sim.Proc) {
				if _, ok := conn.Recv(w); ok {
					served++
				}
				conn.Close()
			})
		}
	})
	const conns = 64
	for i := 0; i < conns; i++ {
		i := i
		e.Go("client", func(p *sim.Proc) {
			p.Sleep(time.Duration(i) * 100 * time.Microsecond)
			s, err := h.DialStream(p, r.Addr, 5000)
			if err != nil {
				t.Errorf("dial %d: %v", i, err)
				return
			}
			_ = s.Send([]byte{byte(i)})
			p.Sleep(50 * time.Millisecond)
			s.Close()
		})
	}
	e.RunUntil(10 * time.Second)
	if served != conns {
		t.Fatalf("served %d of %d", served, conns)
	}
	e.Shutdown()
}

func BenchmarkStreamMessageThroughput(b *testing.B) {
	e := sim.New(1)
	n := New(e)
	h := n.MustAddNode("h", IP4(10, 0, 0, 1))
	r := n.MustAddNode("r", IP4(10, 0, 0, 2))
	n.Connect(h, r, FDDI())
	h.SetDefaultRoute(r)
	r.SetDefaultRoute(h)
	l, _ := r.ListenStream(5000)
	var got int
	e.Go("server", func(p *sim.Proc) {
		s, ok := l.Accept(p)
		if !ok {
			return
		}
		for {
			if _, ok := s.Recv(p); !ok {
				return
			}
			got++
		}
	})
	var cli *Stream
	e.Go("client", func(p *sim.Proc) {
		cli, _ = h.DialStream(p, r.Addr, 5000)
		p.Park()
	})
	e.RunFor(time.Second)
	payload := make([]byte, 1000)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = cli.Send(payload)
		if i%64 == 63 {
			e.RunFor(10 * time.Millisecond)
		}
	}
	e.RunFor(10 * time.Second)
	b.StopTimer()
	if got != b.N {
		b.Fatalf("delivered %d of %d", got, b.N)
	}
	e.Shutdown()
}
