package memnet

import (
	"fmt"

	"xunet/internal/mbuf"
)

// The datagram service is the simulation's UDP stand-in: unreliable,
// unordered, connectionless message delivery. Experiment E6 compares
// IPPROTO_ATM encapsulation throughput against this baseline, mirroring
// the paper's "we expect throughput between a host and a router to be
// comparable to that of UDP".

const dgramHeaderSize = 4 // sport(2) dport(2)

// DatagramHandler receives datagrams addressed to a bound port.
type DatagramHandler func(src IPAddr, sport uint16, data []byte)

// BindDatagram binds a handler to a local datagram port.
func (nd *Node) BindDatagram(port uint16, h DatagramHandler) error {
	if _, dup := nd.dgrams[port]; dup {
		return fmt.Errorf("%w: datagram port %d on %s", ErrPortInUse, port, nd.Name)
	}
	nd.dgrams[port] = h
	if len(nd.dgrams) == 1 {
		nd.BindProto(ProtoDatagram, nd.datagramInput)
	}
	return nil
}

// UnbindDatagram releases a datagram port.
func (nd *Node) UnbindDatagram(port uint16) { delete(nd.dgrams, port) }

// SendDatagram sends one datagram. Delivery is best effort: loss, and
// reordering follow the link configuration.
func (nd *Node) SendDatagram(dst IPAddr, dport, sport uint16, data []byte) error {
	hdr := []byte{byte(sport >> 8), byte(sport), byte(dport >> 8), byte(dport)}
	chain := mbuf.FromBytes(hdr)
	chain.AppendBytes(data)
	return nd.SendIP(&Packet{Dst: dst, Proto: ProtoDatagram, Payload: chain})
}

func (nd *Node) datagramInput(pkt *Packet) {
	b := pkt.Payload.Bytes()
	pkt.Payload.Release() // flattened copy taken; recycle the mbufs
	if len(b) < dgramHeaderSize {
		return
	}
	sport := uint16(b[0])<<8 | uint16(b[1])
	dport := uint16(b[2])<<8 | uint16(b[3])
	if h, ok := nd.dgrams[dport]; ok {
		h(pkt.Src, sport, b[dgramHeaderSize:])
	}
}
