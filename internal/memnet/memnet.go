// Package memnet simulates the IP internetwork between Xunet hosts and
// routers: nodes, point-to-point links with rate, propagation delay,
// loss and reordering, IP forwarding with TTL, and per-protocol
// dispatch by IP protocol number.
//
// The paper's hosts reach their router over "reliable FDDI links"; this
// package defaults to lossless in-order links but lets tests inject loss
// and reordering to exercise the AAL5 and IPPROTO_ATM detection
// machinery. Two transports are built on the raw layer: a reliable,
// ordered, framed message stream (the TCP stand-in the signaling IPC
// runs over) and a fire-and-forget datagram service (the UDP baseline of
// experiment E6).
package memnet

import (
	"errors"
	"fmt"
	"sort"
	"time"

	"xunet/internal/cost"
	"xunet/internal/faults"
	"xunet/internal/mbuf"
	"xunet/internal/obs/tseries"
	"xunet/internal/sim"
	"xunet/internal/trace"
)

// IPAddr is a 32-bit IPv4-style address.
type IPAddr uint32

// String renders the address as a dotted quad.
func (a IPAddr) String() string {
	return fmt.Sprintf("%d.%d.%d.%d", byte(a>>24), byte(a>>16), byte(a>>8), byte(a))
}

// IP4 builds an address from four octets.
func IP4(a, b, c, d byte) IPAddr {
	return IPAddr(uint32(a)<<24 | uint32(b)<<16 | uint32(c)<<8 | uint32(d))
}

// IP protocol numbers used in the simulation.
const (
	ProtoStream   = 6   // reliable framed stream (TCP stand-in)
	ProtoDatagram = 17  // datagram service (UDP stand-in)
	ProtoATM      = 114 // IPPROTO_ATM, the paper's new raw protocol
)

// IPHeaderSize is charged against link capacity for every packet.
const IPHeaderSize = 20

// DefaultTTL bounds forwarding loops.
const DefaultTTL = 32

// Packet is an IP packet in flight. Payload is an mbuf chain so that
// the encapsulation layers above can preserve chain shape end to end.
type Packet struct {
	Src, Dst IPAddr
	Proto    uint8
	TTL      uint8
	Payload  *mbuf.Chain
}

// Len is the wire length charged to links.
func (p *Packet) Len() int { return IPHeaderSize + p.Payload.Len() }

// ProtoHandler receives packets addressed to a node for one protocol.
type ProtoHandler func(pkt *Packet)

// LinkConfig describes one direction of a link.
type LinkConfig struct {
	RateBps   uint64        // serialization rate; 0 means infinite
	Delay     time.Duration // propagation delay
	LossProb  float64       // independent per-packet loss probability
	ReorderP  float64       // probability a packet is held back (overtaken)
	ReorderBy time.Duration // how long a reordered packet is held
}

// FDDI returns the paper's host–router LAN: fast and reliable.
func FDDI() LinkConfig {
	return LinkConfig{RateBps: 100_000_000, Delay: 100 * time.Microsecond}
}

// link is one direction of a connection between two nodes.
type link struct {
	net       *Network
	from, to  *Node
	cfg       LinkConfig
	busyUntil time.Duration

	// Sent, Dropped and Reordered count packets for experiments.
	Sent      uint64
	Dropped   uint64
	Reordered uint64
}

// Network is the internetwork. All methods must be called from inside
// the simulation (engine or process context).
type Network struct {
	Engine *sim.Engine
	nodes  map[IPAddr]*Node
	// Faults, when non-nil, injects seeded packet loss, duplication,
	// and extra delay on every link transmission, on top of (and drawn
	// independently of) each link's own configured impairments.
	Faults *faults.Plane
}

// New returns an empty internetwork on engine e.
func New(e *sim.Engine) *Network {
	return &Network{Engine: e, nodes: make(map[IPAddr]*Node)}
}

// Node is a machine with an IP interface.
type Node struct {
	Name string
	Addr IPAddr
	net  *Network

	// eng is the engine this node's events run on. Flat networks put
	// every node on Network.Engine; a sharded testbed places each
	// domain's nodes on that domain's shard (AddNodeOn), and Connect
	// refuses links between engines — cross-shard traffic must ride the
	// xswitch boundary trunks, whose delay funds the group lookahead.
	eng *sim.Engine

	// faults, when non-nil, overrides the network-wide fault plane for
	// links this node originates; sharded testbeds give each domain its
	// own seeded plane so fault draws stay deterministic per shard.
	faults *faults.Plane

	// Meter, when set, is charged the Table 1 IP costs for packets this
	// node originates or receives.
	Meter *cost.Meter

	links     map[*Node]*link // neighbor -> outgoing link
	routes    map[IPAddr]*Node
	defaultGw *Node
	protos    map[uint8]ProtoHandler

	streams  *streamLayer
	dgrams   map[uint16]DatagramHandler
	nextPort uint16

	// Forwarded counts packets this node relayed for others.
	Forwarded uint64
	// Delivered counts packets handed to a local protocol handler.
	Delivered uint64
	// NoRoute counts packets dropped for lack of a route or handler.
	NoRoute uint64
}

// Errors from the IP layer.
var (
	ErrDupAddr   = errors.New("memnet: address already in use")
	ErrNoRoute   = errors.New("memnet: no route to destination")
	ErrPortInUse = errors.New("memnet: port already bound")
)

// AddNode registers a machine with the given address on the network's
// default engine.
func (n *Network) AddNode(name string, addr IPAddr) (*Node, error) {
	return n.AddNodeOn(name, addr, n.Engine)
}

// AddNodeOn registers a machine whose events run on engine e — the
// shard-placement entry point. e must be the network engine or a shard
// of the same group.
func (n *Network) AddNodeOn(name string, addr IPAddr, e *sim.Engine) (*Node, error) {
	if _, dup := n.nodes[addr]; dup {
		return nil, fmt.Errorf("%w: %v", ErrDupAddr, addr)
	}
	nd := &Node{
		Name:     name,
		Addr:     addr,
		net:      n,
		eng:      e,
		links:    make(map[*Node]*link),
		routes:   make(map[IPAddr]*Node),
		protos:   make(map[uint8]ProtoHandler),
		dgrams:   make(map[uint16]DatagramHandler),
		nextPort: 10000,
	}
	nd.streams = newStreamLayer(nd)
	n.nodes[addr] = nd
	return nd, nil
}

// MustAddNode is AddNode for test and scenario construction.
func (n *Network) MustAddNode(name string, addr IPAddr) *Node {
	nd, err := n.AddNode(name, addr)
	if err != nil {
		panic(err)
	}
	return nd
}

// Node looks up a machine by address.
func (n *Network) Node(addr IPAddr) *Node { return n.nodes[addr] }

// Eng returns the engine this node's events run on.
func (nd *Node) Eng() *sim.Engine { return nd.eng }

// SetFaults overrides the network-wide fault plane for links this node
// originates (nil restores the network-wide plane).
func (nd *Node) SetFaults(fp *faults.Plane) { nd.faults = fp }

// faultPlane resolves the plane charged for this node's transmissions.
func (nd *Node) faultPlane() *faults.Plane {
	if nd.faults != nil {
		return nd.faults
	}
	return nd.net.Faults
}

// RegisterTSeries tracks every link's load signals in st: packet and
// drop rates plus occupancy — how far the transmit queue's busy horizon
// extends past the current instant, in nanoseconds. Nodes and their
// neighbors enumerate in sorted order so registration (and the export)
// is deterministic.
func (n *Network) RegisterTSeries(st *tseries.Store) {
	n.RegisterTSeriesOwned(st, nil)
}

// RegisterTSeriesOwned is RegisterTSeries restricted to links whose
// originating node lives on engine own (nil means every node). Sharded
// testbeds call this once per shard so each shard's store samples only
// state its own engine mutates — the scrape itself then needs no
// cross-shard reads.
func (n *Network) RegisterTSeriesOwned(st *tseries.Store, own *sim.Engine) {
	if st == nil {
		return
	}
	addrs := make([]IPAddr, 0, len(n.nodes))
	for a := range n.nodes {
		addrs = append(addrs, a)
	}
	sort.Slice(addrs, func(i, j int) bool { return addrs[i] < addrs[j] })
	for _, a := range addrs {
		nd := n.nodes[a]
		if own != nil && nd.eng != own {
			continue
		}
		peers := make([]*Node, 0, len(nd.links))
		for p := range nd.links {
			peers = append(peers, p)
		}
		sort.Slice(peers, func(i, j int) bool { return peers[i].Addr < peers[j].Addr })
		for _, p := range peers {
			l := nd.links[p]
			prefix := "ip.link." + nd.Name + ">" + p.Name + "."
			st.TrackRateFunc(prefix+"pkts", func() uint64 { return l.Sent }, 0, 0)
			st.TrackRateFunc(prefix+"drops", func() uint64 { return l.Dropped }, 0, 0)
			st.TrackGaugeFunc(prefix+"busy_ns", func() (int64, int64) {
				busy := int64(l.busyUntil - l.from.eng.Now())
				if busy < 0 {
					busy = 0
				}
				return busy, busy
			})
		}
	}
}

// Connect joins two nodes with a duplex link, both directions using cfg.
// Both nodes must live on the same engine: an IP link has no minimum
// delay, so it cannot cross a shard boundary (only xswitch trunks, with
// their lookahead-funding propagation delay, may).
func (n *Network) Connect(a, b *Node, cfg LinkConfig) {
	if a.eng != b.eng {
		panic(fmt.Sprintf("memnet: Connect %s<->%s across shard engines", a.Name, b.Name))
	}
	a.links[b] = &link{net: n, from: a, to: b, cfg: cfg}
	b.links[a] = &link{net: n, from: b, to: a, cfg: cfg}
}

// LinkTo exposes the outgoing link from a node to a neighbor, for
// configuring loss or reading counters in experiments.
func (nd *Node) LinkTo(neighbor *Node) *LinkHandle {
	l := nd.links[neighbor]
	if l == nil {
		return nil
	}
	return &LinkHandle{l: l}
}

// LinkHandle lets experiments adjust a live link.
type LinkHandle struct{ l *link }

// SetLoss sets the drop probability.
func (h *LinkHandle) SetLoss(p float64) { h.l.cfg.LossProb = p }

// SetReorder sets the reorder probability and hold-back duration.
func (h *LinkHandle) SetReorder(p float64, by time.Duration) {
	h.l.cfg.ReorderP = p
	h.l.cfg.ReorderBy = by
}

// Stats reports (sent, dropped, reordered) counts.
func (h *LinkHandle) Stats() (sent, dropped, reordered uint64) {
	return h.l.Sent, h.l.Dropped, h.l.Reordered
}

// AddRoute sends traffic for dst via the given neighbor.
func (nd *Node) AddRoute(dst IPAddr, via *Node) { nd.routes[dst] = via }

// SetDefaultRoute sends all non-local traffic via the given neighbor.
func (nd *Node) SetDefaultRoute(via *Node) { nd.defaultGw = via }

// BindProto registers the handler for an IP protocol number, replacing
// any previous handler.
func (nd *Node) BindProto(proto uint8, h ProtoHandler) { nd.protos[proto] = h }

// SendIP originates a packet from this node. The Src and TTL fields are
// filled in if zero. The Table 1 IP send cost is charged to the node's
// meter.
func (nd *Node) SendIP(pkt *Packet) error {
	if pkt.Src == 0 {
		pkt.Src = nd.Addr
	}
	if pkt.TTL == 0 {
		pkt.TTL = DefaultTTL
	}
	nd.Meter.Charge(cost.IP, cost.IPSendCost)
	return nd.route(pkt)
}

// route transmits toward the destination: locally delivered, or out the
// next-hop link. Loopback delivery is deferred to an event so that a
// reply can never race ahead of the sender's next action (a dialer must
// park before its SYN-ACK lands).
func (nd *Node) route(pkt *Packet) error {
	if pkt.Dst == nd.Addr {
		nd.eng.Schedule(0, func() { nd.deliverLocal(pkt) })
		return nil
	}
	via := nd.routes[pkt.Dst]
	if via == nil {
		via = nd.defaultGw
	}
	if via == nil {
		nd.NoRoute++
		return fmt.Errorf("%w: %v from %v", ErrNoRoute, pkt.Dst, nd.Name)
	}
	l := nd.links[via]
	if l == nil {
		nd.NoRoute++
		return fmt.Errorf("%w: no link %v -> %v", ErrNoRoute, nd.Name, via.Name)
	}
	l.transmit(pkt)
	return nil
}

// transmit models serialization, propagation, loss and reordering, then
// schedules receive at the far end.
func (l *link) transmit(pkt *Packet) {
	e := l.from.eng
	rng := e.Rand()
	l.Sent++
	if rng.Chance(l.cfg.LossProb) {
		l.Dropped++
		return
	}
	var ser time.Duration
	if l.cfg.RateBps > 0 {
		bits := uint64(pkt.Len()) * 8
		ser = time.Duration(bits * uint64(time.Second) / l.cfg.RateBps)
	}
	start := e.Now()
	if l.busyUntil > start {
		start = l.busyUntil
	}
	l.busyUntil = start + ser
	arrive := l.busyUntil + l.cfg.Delay - e.Now()
	if rng.Chance(l.cfg.ReorderP) {
		l.Reordered++
		arrive += l.cfg.ReorderBy
	}
	to := l.to
	var dup *Packet
	if fp := l.from.faultPlane(); fp != nil {
		v := fp.Packet(trace.Context{})
		if v.Drop {
			l.Dropped++
			return
		}
		arrive += v.ExtraDelay
		if v.Dup {
			// Deep-copy the payload: the original chain is consumed
			// (and possibly released) by its receiver.
			cp := *pkt
			cp.Payload = pkt.Payload.Clone()
			dup = &cp
		}
	}
	e.Schedule(arrive, func() { to.receive(pkt) })
	if dup != nil {
		e.Schedule(arrive+l.cfg.Delay/2+time.Microsecond, func() { to.receive(dup) })
	}
}

// receive handles an arriving packet: local delivery or forwarding.
func (nd *Node) receive(pkt *Packet) {
	if pkt.Dst == nd.Addr {
		nd.deliverLocal(pkt)
		return
	}
	if pkt.TTL <= 1 {
		nd.NoRoute++
		return
	}
	pkt.TTL--
	nd.Forwarded++
	// Forwarding cost: the router's link-driver input plus IP switching;
	// accounted so experiment T1's router-path measurement can subtract
	// the base from the IPPROTO_ATM-specific 39.
	nd.Meter.Charge(cost.LinkDriver, 4)
	nd.Meter.Charge(cost.IP, cost.IPRecvCost)
	_ = nd.route(pkt)
}

// deliverLocal hands a packet to its protocol handler, charging the
// Table 1 IP receive cost.
func (nd *Node) deliverLocal(pkt *Packet) {
	nd.Meter.Charge(cost.IP, cost.IPRecvCost)
	h := nd.protos[pkt.Proto]
	if h == nil {
		nd.NoRoute++
		return
	}
	nd.Delivered++
	h(pkt)
}

// ephemeralPort allocates a local port for dialing.
func (nd *Node) ephemeralPort() uint16 {
	for {
		nd.nextPort++
		if nd.nextPort < 10000 {
			nd.nextPort = 10000
		}
		if !nd.streams.portBusy(nd.nextPort) {
			return nd.nextPort
		}
	}
}
