package sim

// Ring is a growable circular FIFO. Unlike a head-resliced Go slice, a
// ring never pins consumed elements: every removal zeroes the vacated
// slot, so a drained ring holds no references for the garbage collector
// to trace. The zero value is an empty ring.
type Ring[T any] struct {
	buf  []T
	head int // index of the first element
	n    int // number of elements
}

// Len returns the number of queued elements.
func (r *Ring[T]) Len() int { return r.n }

// grow doubles the backing array (min 8) and linearizes the contents.
func (r *Ring[T]) grow() {
	c := len(r.buf) * 2
	if c < 8 {
		c = 8
	}
	buf := make([]T, c)
	for i := 0; i < r.n; i++ {
		buf[i] = r.buf[(r.head+i)%len(r.buf)]
	}
	r.buf = buf
	r.head = 0
}

// Push appends v at the tail.
func (r *Ring[T]) Push(v T) {
	if r.n == len(r.buf) {
		r.grow()
	}
	r.buf[(r.head+r.n)%len(r.buf)] = v
	r.n++
}

// PushFront prepends v at the head.
func (r *Ring[T]) PushFront(v T) {
	if r.n == len(r.buf) {
		r.grow()
	}
	r.head = (r.head - 1 + len(r.buf)) % len(r.buf)
	r.buf[r.head] = v
	r.n++
}

// Pop removes and returns the head element. It panics on an empty ring.
func (r *Ring[T]) Pop() T {
	if r.n == 0 {
		panic("sim: Pop on empty ring")
	}
	var zero T
	v := r.buf[r.head]
	r.buf[r.head] = zero
	r.head = (r.head + 1) % len(r.buf)
	r.n--
	return v
}

// PopTail removes and returns the tail element. It panics on an empty ring.
func (r *Ring[T]) PopTail() T {
	if r.n == 0 {
		panic("sim: PopTail on empty ring")
	}
	var zero T
	i := (r.head + r.n - 1) % len(r.buf)
	v := r.buf[i]
	r.buf[i] = zero
	r.n--
	return v
}

// At returns the i-th element from the head without removing it.
func (r *Ring[T]) At(i int) T {
	if i < 0 || i >= r.n {
		panic("sim: ring index out of range")
	}
	return r.buf[(r.head+i)%len(r.buf)]
}

// RemoveAt removes and returns the i-th element from the head,
// preserving the order of the rest.
func (r *Ring[T]) RemoveAt(i int) T {
	if i < 0 || i >= r.n {
		panic("sim: ring index out of range")
	}
	v := r.At(i)
	// Shift the shorter side over the hole.
	if i < r.n-i-1 {
		for j := i; j > 0; j-- {
			r.buf[(r.head+j)%len(r.buf)] = r.buf[(r.head+j-1)%len(r.buf)]
		}
		var zero T
		r.buf[r.head] = zero
		r.head = (r.head + 1) % len(r.buf)
	} else {
		for j := i; j < r.n-1; j++ {
			r.buf[(r.head+j)%len(r.buf)] = r.buf[(r.head+j+1)%len(r.buf)]
		}
		var zero T
		r.buf[(r.head+r.n-1)%len(r.buf)] = zero
	}
	r.n--
	return v
}

// Cap returns the current backing-array capacity (for tests).
func (r *Ring[T]) Cap() int { return len(r.buf) }
