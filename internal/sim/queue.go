package sim

import "time"

// Queue is an unbounded FIFO mailbox connecting simulation entities.
// Producers Put from engine or process context; consumer processes Get,
// blocking until an item, a timeout, or Close. Items are handed directly
// to the longest-waiting consumer, so delivery order is deterministic.
//
// Items and waiters live in ring buffers, so consumed entries are
// dropped for the garbage collector immediately — a drained queue
// retains no references to the values that passed through it.
type Queue[T any] struct {
	e       *Engine
	items   Ring[T]
	waiters Ring[*qwaiter[T]]
	closed  bool
}

type qwaiter[T any] struct {
	p        *Proc
	item     T
	have     bool
	timedOut bool
	closed   bool
}

// NewQueue returns an empty open queue on engine e.
func NewQueue[T any](e *Engine) *Queue[T] {
	return &Queue[T]{e: e}
}

// Len reports the number of buffered (undelivered) items.
func (q *Queue[T]) Len() int { return q.items.Len() }

// Closed reports whether Close has been called.
func (q *Queue[T]) Closed() bool { return q.closed }

// Put appends v. If a consumer is waiting, v is handed to it directly.
// Put on a closed queue drops v and reports false. Waiters whose
// process has been killed are skipped so items are never handed to the
// dead.
func (q *Queue[T]) Put(v T) bool {
	if q.closed {
		return false
	}
	for q.waiters.Len() > 0 {
		w := q.waiters.Pop()
		if w.p.done || w.p.killed {
			continue
		}
		w.item, w.have = v, true
		w.p.Unpark()
		return true
	}
	q.items.Push(v)
	return true
}

// TryGet removes and returns the head item without blocking.
func (q *Queue[T]) TryGet() (T, bool) {
	var zero T
	if q.items.Len() == 0 {
		return zero, false
	}
	return q.items.Pop(), true
}

// Get blocks process p until an item arrives or the queue closes. The
// second result is false if the queue closed with nothing to deliver.
func (q *Queue[T]) Get(p *Proc) (T, bool) {
	v, ok, _ := q.GetTimeout(p, -1)
	return v, ok
}

// GetTimeout is Get with a timeout; d < 0 means no timeout. The third
// result reports whether the wait timed out.
func (q *Queue[T]) GetTimeout(p *Proc, d time.Duration) (v T, ok bool, timedOut bool) {
	if q.items.Len() > 0 {
		return q.items.Pop(), true, false
	}
	if q.closed {
		return v, false, false
	}
	w := &qwaiter[T]{p: p}
	q.waiters.Push(w)
	var timer Timer
	if d >= 0 {
		timer = q.e.Schedule(d, func() {
			if w.have || w.closed || w.timedOut {
				return
			}
			w.timedOut = true
			q.removeWaiter(w)
			p.Unpark()
		})
	}
	p.Park()
	timer.Stop()
	switch {
	case w.have:
		return w.item, true, false
	case w.timedOut:
		return v, false, true
	default: // closed
		return v, false, false
	}
}

func (q *Queue[T]) removeWaiter(w *qwaiter[T]) {
	for i := 0; i < q.waiters.Len(); i++ {
		if q.waiters.At(i) == w {
			q.waiters.RemoveAt(i)
			return
		}
	}
}

// Close marks the queue closed and wakes all waiting consumers. Buffered
// items already queued remain retrievable by TryGet but blocked Gets
// return not-ok.
func (q *Queue[T]) Close() {
	if q.closed {
		return
	}
	q.closed = true
	for q.waiters.Len() > 0 {
		w := q.waiters.Pop()
		w.closed = true
		w.p.Unpark()
	}
}
