package sim

import (
	"testing"
	"testing/quick"
	"time"
)

func TestScheduleOrdering(t *testing.T) {
	e := New(1)
	var got []int
	e.Schedule(30*time.Millisecond, func() { got = append(got, 3) })
	e.Schedule(10*time.Millisecond, func() { got = append(got, 1) })
	e.Schedule(20*time.Millisecond, func() { got = append(got, 2) })
	e.Run()
	if len(got) != 3 || got[0] != 1 || got[1] != 2 || got[2] != 3 {
		t.Fatalf("order = %v", got)
	}
	if e.Now() != 30*time.Millisecond {
		t.Fatalf("final time = %v", e.Now())
	}
}

func TestScheduleSameTimeFIFO(t *testing.T) {
	e := New(1)
	var got []int
	for i := 0; i < 10; i++ {
		i := i
		e.Schedule(time.Millisecond, func() { got = append(got, i) })
	}
	e.Run()
	for i, v := range got {
		if v != i {
			t.Fatalf("same-time events out of order: %v", got)
		}
	}
}

func TestNegativeDelayClamped(t *testing.T) {
	e := New(1)
	ran := false
	e.Schedule(-5*time.Second, func() { ran = true })
	e.Run()
	if !ran || e.Now() != 0 {
		t.Fatalf("ran=%v now=%v", ran, e.Now())
	}
}

func TestTimerStop(t *testing.T) {
	e := New(1)
	ran := false
	tm := e.Schedule(time.Second, func() { ran = true })
	if !tm.Stop() {
		t.Fatal("first Stop reported not-pending")
	}
	if tm.Stop() {
		t.Fatal("second Stop reported pending")
	}
	e.Run()
	if ran {
		t.Fatal("stopped timer fired")
	}
	var zeroTimer Timer
	if zeroTimer.Stop() {
		t.Fatal("zero timer Stop reported pending")
	}
}

func TestNestedScheduling(t *testing.T) {
	e := New(1)
	var times []time.Duration
	e.Schedule(time.Millisecond, func() {
		times = append(times, e.Now())
		e.Schedule(time.Millisecond, func() {
			times = append(times, e.Now())
		})
	})
	e.Run()
	if len(times) != 2 || times[0] != time.Millisecond || times[1] != 2*time.Millisecond {
		t.Fatalf("times = %v", times)
	}
}

func TestProcSleep(t *testing.T) {
	e := New(1)
	var wake time.Duration
	e.Go("sleeper", func(p *Proc) {
		p.Sleep(42 * time.Millisecond)
		wake = p.Now()
	})
	e.Run()
	if wake != 42*time.Millisecond {
		t.Fatalf("woke at %v", wake)
	}
	if e.Live() != 0 {
		t.Fatalf("live = %d", e.Live())
	}
}

func TestProcInterleaving(t *testing.T) {
	e := New(1)
	var got []string
	e.Go("a", func(p *Proc) {
		got = append(got, "a0")
		p.Sleep(10 * time.Millisecond)
		got = append(got, "a1")
		p.Sleep(20 * time.Millisecond)
		got = append(got, "a2")
	})
	e.Go("b", func(p *Proc) {
		got = append(got, "b0")
		p.Sleep(15 * time.Millisecond)
		got = append(got, "b1")
	})
	e.Run()
	want := []string{"a0", "b0", "a1", "b1", "a2"}
	if len(got) != len(want) {
		t.Fatalf("got %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("got %v, want %v", got, want)
		}
	}
}

func TestParkUnpark(t *testing.T) {
	e := New(1)
	var p1 *Proc
	order := []string{}
	p1 = e.Go("waiter", func(p *Proc) {
		order = append(order, "parking")
		p.Park()
		order = append(order, "resumed@"+p.Now().String())
	})
	e.Go("waker", func(p *Proc) {
		p.Sleep(time.Second)
		p1.Unpark()
	})
	e.Run()
	if len(order) != 2 || order[1] != "resumed@1s" {
		t.Fatalf("order = %v", order)
	}
	if e.Parked() != 0 {
		t.Fatalf("parked = %d", e.Parked())
	}
}

func TestUnparkNotParkedIsNoop(t *testing.T) {
	e := New(1)
	p := e.Go("p", func(p *Proc) { p.Sleep(time.Millisecond) })
	p.Unpark() // not parked yet
	e.Run()
	if e.Live() != 0 {
		t.Fatal("proc did not finish")
	}
}

func TestParkedReportedAfterRun(t *testing.T) {
	e := New(1)
	e.Go("stuck", func(p *Proc) { p.Park() })
	e.Run()
	if e.Parked() != 1 {
		t.Fatalf("parked = %d, want 1", e.Parked())
	}
	e.Shutdown()
	if e.Parked() != 0 {
		t.Fatalf("parked after shutdown = %d", e.Parked())
	}
}

func TestShutdownRunsDeferredCleanup(t *testing.T) {
	e := New(1)
	cleaned := false
	e.Go("stuck", func(p *Proc) {
		defer func() { cleaned = true }()
		p.Park()
	})
	e.Run()
	e.Shutdown()
	if !cleaned {
		t.Fatal("defer did not run at shutdown kill")
	}
}

func TestRunUntil(t *testing.T) {
	e := New(1)
	var fired []time.Duration
	for _, d := range []time.Duration{time.Second, 2 * time.Second, 3 * time.Second} {
		d := d
		e.Schedule(d, func() { fired = append(fired, d) })
	}
	e.RunUntil(2 * time.Second)
	if len(fired) != 2 {
		t.Fatalf("fired = %v", fired)
	}
	if e.Now() != 2*time.Second {
		t.Fatalf("now = %v", e.Now())
	}
	e.RunFor(time.Second)
	if len(fired) != 3 {
		t.Fatalf("fired after RunFor = %v", fired)
	}
}

func TestRunUntilAdvancesIdleClock(t *testing.T) {
	e := New(1)
	e.RunUntil(5 * time.Second)
	if e.Now() != 5*time.Second {
		t.Fatalf("now = %v", e.Now())
	}
}

func TestQueuePutGet(t *testing.T) {
	e := New(1)
	q := NewQueue[int](e)
	var got []int
	e.Go("consumer", func(p *Proc) {
		for i := 0; i < 3; i++ {
			v, ok := q.Get(p)
			if !ok {
				t.Error("queue closed unexpectedly")
				return
			}
			got = append(got, v)
		}
	})
	e.Go("producer", func(p *Proc) {
		for i := 1; i <= 3; i++ {
			p.Sleep(time.Millisecond)
			q.Put(i * 10)
		}
	})
	e.Run()
	if len(got) != 3 || got[0] != 10 || got[2] != 30 {
		t.Fatalf("got %v", got)
	}
}

func TestQueueBufferedBeforeGet(t *testing.T) {
	e := New(1)
	q := NewQueue[string](e)
	q.Put("x")
	q.Put("y")
	var got []string
	e.Go("c", func(p *Proc) {
		for i := 0; i < 2; i++ {
			v, _ := q.Get(p)
			got = append(got, v)
		}
	})
	e.Run()
	if len(got) != 2 || got[0] != "x" || got[1] != "y" {
		t.Fatalf("got %v", got)
	}
}

func TestQueueGetTimeout(t *testing.T) {
	e := New(1)
	q := NewQueue[int](e)
	var timedOut bool
	var at time.Duration
	e.Go("c", func(p *Proc) {
		_, _, timedOut = q.GetTimeout(p, 100*time.Millisecond)
		at = p.Now()
	})
	e.Run()
	if !timedOut {
		t.Fatal("did not time out")
	}
	if at != 100*time.Millisecond {
		t.Fatalf("timed out at %v", at)
	}
}

func TestQueueTimeoutCanceledByDelivery(t *testing.T) {
	e := New(1)
	q := NewQueue[int](e)
	var v int
	var ok, timedOut bool
	e.Go("c", func(p *Proc) {
		v, ok, timedOut = q.GetTimeout(p, time.Second)
	})
	e.Go("p", func(p *Proc) {
		p.Sleep(10 * time.Millisecond)
		q.Put(7)
	})
	e.Run()
	if !ok || timedOut || v != 7 {
		t.Fatalf("v=%d ok=%v timedOut=%v", v, ok, timedOut)
	}
	if e.Parked() != 0 {
		t.Fatal("leaked parked proc")
	}
}

func TestQueueClose(t *testing.T) {
	e := New(1)
	q := NewQueue[int](e)
	var ok bool
	e.Go("c", func(p *Proc) {
		_, ok = q.Get(p)
	})
	e.Go("closer", func(p *Proc) {
		p.Sleep(time.Millisecond)
		q.Close()
	})
	e.Run()
	if ok {
		t.Fatal("Get returned ok after close")
	}
	if q.Put(1) {
		t.Fatal("Put on closed queue reported success")
	}
	if !q.Closed() {
		t.Fatal("Closed() false")
	}
	q.Close() // idempotent
}

func TestQueueMultipleWaitersFIFO(t *testing.T) {
	e := New(1)
	q := NewQueue[int](e)
	var got []int
	mk := func(id int) {
		e.Go("c", func(p *Proc) {
			v, ok := q.Get(p)
			if ok {
				got = append(got, id*100+v)
			}
		})
	}
	mk(1)
	mk(2)
	e.Go("p", func(p *Proc) {
		p.Sleep(time.Millisecond)
		q.Put(1)
		q.Put(2)
	})
	e.Run()
	if len(got) != 2 || got[0] != 101 || got[1] != 202 {
		t.Fatalf("got %v (want first waiter gets first item)", got)
	}
}

func TestQueueTryGet(t *testing.T) {
	e := New(1)
	q := NewQueue[int](e)
	if _, ok := q.TryGet(); ok {
		t.Fatal("TryGet on empty queue succeeded")
	}
	q.Put(5)
	if v, ok := q.TryGet(); !ok || v != 5 {
		t.Fatalf("TryGet = %d, %v", v, ok)
	}
}

func TestRandDeterminism(t *testing.T) {
	a, b := NewRand(42), NewRand(42)
	for i := 0; i < 100; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatal("same seed diverged")
		}
	}
	c := NewRand(43)
	same := true
	a = NewRand(42)
	for i := 0; i < 10; i++ {
		if a.Uint64() != c.Uint64() {
			same = false
		}
	}
	if same {
		t.Fatal("different seeds produced identical streams")
	}
}

func TestRandRanges(t *testing.T) {
	r := NewRand(7)
	for i := 0; i < 1000; i++ {
		if f := r.Float64(); f < 0 || f >= 1 {
			t.Fatalf("Float64 = %v", f)
		}
		if n := r.Intn(10); n < 0 || n >= 10 {
			t.Fatalf("Intn = %d", n)
		}
		if j := r.Jitter(time.Second); j < 0 || j >= time.Second {
			t.Fatalf("Jitter = %v", j)
		}
	}
	if r.Chance(0) || !r.Chance(1) {
		t.Fatal("Chance extremes wrong")
	}
	if r.Jitter(0) != 0 || r.Jitter(-time.Second) != 0 {
		t.Fatal("non-positive Jitter not zero")
	}
}

func TestRandPerm(t *testing.T) {
	r := NewRand(9)
	p := r.Perm(20)
	seen := make([]bool, 20)
	for _, v := range p {
		if v < 0 || v >= 20 || seen[v] {
			t.Fatalf("bad permutation %v", p)
		}
		seen[v] = true
	}
}

func TestEngineDeterminism(t *testing.T) {
	run := func() []time.Duration {
		e := New(99)
		var out []time.Duration
		q := NewQueue[int](e)
		e.Go("c", func(p *Proc) {
			for {
				_, ok := q.Get(p)
				if !ok {
					return
				}
				out = append(out, p.Now())
			}
		})
		e.Go("p", func(p *Proc) {
			for i := 0; i < 20; i++ {
				p.Sleep(p.Engine().Rand().Jitter(10 * time.Millisecond))
				q.Put(i)
			}
			q.Close()
		})
		e.Run()
		return out
	}
	a, b := run(), run()
	if len(a) != len(b) || len(a) != 20 {
		t.Fatalf("lengths %d, %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("same-seed runs diverged")
		}
	}
}

func TestCostModel(t *testing.T) {
	cm := DefaultCostModel()
	if cm.InstrCost(0) != 0 || cm.InstrCost(-5) != 0 {
		t.Fatal("non-positive instruction cost not zero")
	}
	if cm.InstrCost(1000000)/time.Millisecond != 33 {
		t.Fatalf("1M instructions = %v, want 33ms", cm.InstrCost(1000000))
	}
	// Four context switches must land inside the paper's 17–20 ms band.
	rpc := 4 * cm.ContextSwitch
	if rpc < 17*time.Millisecond || rpc > 20*time.Millisecond {
		t.Fatalf("4 context switches = %v, outside 17–20 ms", rpc)
	}
	// Two signaling entities' logging plus switching work ≈ 330 ms.
	setup := 2*cm.CallLogging + 8*cm.ContextSwitch
	if setup < 300*time.Millisecond || setup > 360*time.Millisecond {
		t.Fatalf("modeled call setup = %v, not ≈330 ms", setup)
	}
}

// Property: for any set of delays, events fire in nondecreasing time
// order and the engine clock ends at the max delay.
func TestQuickEventOrdering(t *testing.T) {
	f := func(delays []uint16) bool {
		e := New(1)
		var fired []time.Duration
		var max time.Duration
		for _, d := range delays {
			dd := time.Duration(d) * time.Microsecond
			if dd > max {
				max = dd
			}
			e.Schedule(dd, func() { fired = append(fired, e.Now()) })
		}
		e.Run()
		for i := 1; i < len(fired); i++ {
			if fired[i] < fired[i-1] {
				return false
			}
		}
		return len(delays) == 0 || e.Now() == max
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: a queue delivers every put item exactly once, in order.
func TestQuickQueueFIFO(t *testing.T) {
	f := func(items []int32) bool {
		e := New(1)
		q := NewQueue[int32](e)
		var got []int32
		e.Go("c", func(p *Proc) {
			for {
				v, ok := q.Get(p)
				if !ok {
					return
				}
				got = append(got, v)
			}
		})
		e.Go("p", func(p *Proc) {
			for _, v := range items {
				q.Put(v)
				if v%3 == 0 {
					p.Sleep(time.Microsecond)
				}
			}
			q.Close()
		})
		e.Run()
		if len(got) != len(items) {
			return false
		}
		for i := range items {
			if got[i] != items[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}
