package sim

import (
	"testing"
	"time"
)

// Engine micro-benchmarks: wall-clock cost of the simulation substrate
// itself (event dispatch, process switches, queue handoffs). These
// bound how large a scenario the reproduction can run.

// BenchmarkScheduleRun measures the steady-state schedule/dispatch path
// on one long-lived engine: after warmup every event comes from the
// free list, so an op is 1000 pooled schedule+run cycles with zero
// allocations (gated by TestScheduleRunSteadyStateAllocs).
func BenchmarkScheduleRun(b *testing.B) {
	b.ReportAllocs()
	e := New(1)
	fn := func() {}
	// Warm the free list to the working-set depth.
	for j := 0; j < 1000; j++ {
		e.Schedule(time.Duration(j)*time.Microsecond, fn)
	}
	e.Run()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for j := 0; j < 1000; j++ {
			e.Schedule(time.Duration(j)*time.Microsecond, fn)
		}
		e.Run()
	}
	b.StopTimer()
	b.ReportMetric(1000, "events/op")
	elapsed := b.Elapsed()
	if elapsed > 0 {
		b.ReportMetric(float64(b.N)*1000/elapsed.Seconds(), "events/sec")
	}
}

// TestScheduleRunSteadyStateAllocs gates the engine's hot path: once the
// free list is warm, scheduling and running events must not allocate.
func TestScheduleRunSteadyStateAllocs(t *testing.T) {
	e := New(1)
	fn := func() {}
	run := func() {
		for j := 0; j < 100; j++ {
			e.Schedule(time.Duration(j)*time.Microsecond, fn)
		}
		e.Run()
	}
	run() // warm the free list
	if avg := testing.AllocsPerRun(100, run); avg != 0 {
		t.Fatalf("steady-state schedule/run allocates %.1f times per cycle, want 0", avg)
	}
}

func BenchmarkProcSwitch(b *testing.B) {
	e := New(1)
	stop := false
	p := e.Go("switcher", func(p *Proc) {
		for !stop {
			p.Sleep(time.Microsecond)
		}
	})
	_ = p
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.RunFor(time.Microsecond)
	}
	b.StopTimer()
	stop = true
	e.RunFor(time.Millisecond)
}

func BenchmarkQueueHandoff(b *testing.B) {
	e := New(1)
	q := NewQueue[int](e)
	n := 0
	e.Go("consumer", func(p *Proc) {
		for {
			if _, ok := q.Get(p); !ok {
				return
			}
			n++
		}
	})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		q.Put(i)
		e.RunFor(0)
	}
	b.StopTimer()
	q.Close()
	e.RunFor(time.Millisecond)
	if n != b.N {
		b.Fatalf("delivered %d of %d", n, b.N)
	}
}

func TestKillParkedProc(t *testing.T) {
	e := New(1)
	cleaned := false
	p := e.Go("victim", func(p *Proc) {
		defer func() { cleaned = true }()
		p.Park()
	})
	e.Go("killer", func(k *Proc) {
		k.Sleep(time.Millisecond)
		p.Kill()
	})
	e.Run()
	if !cleaned || !p.Done() {
		t.Fatalf("cleaned=%v done=%v", cleaned, p.Done())
	}
	if e.Parked() != 0 || e.Live() != 0 {
		t.Fatalf("parked=%d live=%d", e.Parked(), e.Live())
	}
}

func TestKillSleepingProcDiesImmediately(t *testing.T) {
	e := New(1)
	var diedAt time.Duration
	p := e.Go("victim", func(p *Proc) {
		defer func() { diedAt = p.Now() }()
		p.Sleep(time.Hour)
	})
	e.Go("killer", func(k *Proc) {
		k.Sleep(time.Millisecond)
		p.Kill()
	})
	e.Run()
	if diedAt != time.Millisecond {
		t.Fatalf("died at %v, want 1ms (not the 1h sleep expiry)", diedAt)
	}
}

func TestKillSelf(t *testing.T) {
	e := New(1)
	after := false
	var p *Proc
	p = e.Go("suicidal", func(pp *Proc) {
		pp.Kill()
		after = true // must not run
	})
	e.Run()
	if after {
		t.Fatal("code after self-kill ran")
	}
	if !p.Done() {
		t.Fatal("not done")
	}
}

func TestKillFinishedProcIsNoop(t *testing.T) {
	e := New(1)
	p := e.Go("quick", func(p *Proc) {})
	e.Run()
	p.Kill() // no-op, no panic
	p.Kill()
}

func TestKillDoubleIsNoop(t *testing.T) {
	e := New(1)
	p := e.Go("victim", func(p *Proc) { p.Park() })
	e.Go("killer", func(k *Proc) {
		p.Kill()
		p.Kill()
	})
	e.Run()
	if !p.Done() {
		t.Fatal("not done")
	}
}

func TestQueuePutSkipsKilledWaiter(t *testing.T) {
	e := New(1)
	q := NewQueue[int](e)
	var gotByB int
	a := e.Go("a", func(p *Proc) {
		q.Get(p) // killed while waiting
	})
	e.Go("b", func(p *Proc) {
		p.Sleep(2 * time.Millisecond)
		v, ok := q.Get(p)
		if ok {
			gotByB = v
		}
	})
	e.Go("driver", func(p *Proc) {
		p.Sleep(time.Millisecond)
		a.Kill()
		p.Sleep(2 * time.Millisecond)
		q.Put(42) // must reach b, not the dead a
	})
	e.Run()
	if gotByB != 42 {
		t.Fatalf("b got %d", gotByB)
	}
}
