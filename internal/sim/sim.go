// Package sim provides the discrete-event simulation engine under the
// reproduced Xunet world: a virtual clock, deterministic pseudo-random
// numbers, cancellable timers, and cooperatively-scheduled processes.
//
// Everything in the simulated world — kernels, sighosts, switches,
// applications — runs on one Engine. Exactly one goroutine executes at a
// time: either the engine itself (running an event callback) or a single
// Proc that the engine has resumed. Handoffs are explicit, so simulated
// code needs no locks and every run with the same seed is bit-for-bit
// reproducible. Processes may block (Park, Sleep, Queue.Get), which is
// what lets application code in examples look exactly like the paper's
// synchronous Figures 5 and 6.
package sim

import (
	"container/heap"
	"fmt"
	"time"

	"xunet/internal/prof"
)

// Engine is a discrete-event scheduler with cooperative processes.
// Create one with New; it is not safe for concurrent use from outside
// the simulation (the simulation itself is internally serialized).
type Engine struct {
	now     time.Duration
	events  eventHeap
	seq     uint64
	yielded chan struct{}
	running bool
	live    int // procs started and not yet finished
	procs   map[*Proc]struct{}
	parked  map[*Proc]struct{}
	rng     *Rand
	current *Proc // the process currently holding execution, if any

	// free is the event free list: every event that leaves the heap
	// (executed or stopped) is recycled, so a steady-state simulation
	// schedules callbacks without allocating.
	free []*event

	// group and shardID bind this engine into a ShardGroup (see
	// shard.go); both stay zero for a plain standalone engine.
	group   *ShardGroup
	shardID int

	// Execution profiling (internal/prof). prof is nil unless a
	// profiler is attached; curLabel is the label of the event being
	// executed, inherited by everything it schedules.
	prof     *prof.EngineProf
	curLabel prof.LabelID

	// Always-on engine internals, exposed through the accessors below
	// and (per machine) as obs metrics: executed events, event-pool
	// hit/miss, and the heap high-water mark.
	execCount  uint64
	poolHits   uint64
	poolMisses uint64
	heapHiWat  int
}

// New returns an engine with its clock at zero and randomness seeded
// with seed (two engines with equal seeds behave identically).
func New(seed uint64) *Engine {
	return &Engine{
		yielded: make(chan struct{}),
		procs:   make(map[*Proc]struct{}),
		parked:  make(map[*Proc]struct{}),
		rng:     NewRand(seed),
	}
}

// Now returns the current virtual time, measured from engine creation.
func (e *Engine) Now() time.Duration { return e.now }

// Rand returns the engine's deterministic random source.
func (e *Engine) Rand() *Rand { return e.rng }

// event is a scheduled callback. Events are pooled: gen increments each
// time the struct is recycled, so stale Timer handles can tell that the
// event they pointed at is gone.
type event struct {
	at    time.Duration
	seq   uint64
	fn    func()
	index int
	gen   uint64
	label prof.LabelID
}

type eventHeap []*event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].index, h[j].index = i, j
}
func (h *eventHeap) Push(x any) {
	ev := x.(*event)
	ev.index = len(*h)
	*h = append(*h, ev)
}
func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	ev := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return ev
}

// Timer is a handle to a scheduled callback. The zero value is inert
// (Stop reports false). Timers are values, not allocations: they carry
// a generation stamp so a handle held past its event's execution (or
// past a Stop) safely becomes a no-op even once the event struct has
// been recycled for a later callback.
type Timer struct {
	e   *Engine
	ev  *event
	gen uint64
}

// Stop cancels the timer, removing the event from the schedule
// immediately. It reports whether the callback was still pending (false
// if it already ran or was stopped).
func (t Timer) Stop() bool {
	if t.ev == nil || t.ev.gen != t.gen || t.ev.index < 0 {
		return false
	}
	heap.Remove(&t.e.events, t.ev.index)
	t.e.release(t.ev)
	return true
}

// Pending reports whether the callback has neither run nor been stopped.
func (t Timer) Pending() bool {
	return t.ev != nil && t.ev.gen == t.gen && t.ev.index >= 0
}

// release recycles an event that is no longer in the heap.
func (e *Engine) release(ev *event) {
	ev.fn = nil
	ev.index = -1
	ev.gen++
	e.free = append(e.free, ev)
}

// getEvent pops the free list (or allocates), counting pool hits and
// misses for the engine-internals metrics.
func (e *Engine) getEvent() *event {
	if n := len(e.free); n > 0 {
		ev := e.free[n-1]
		e.free[n-1] = nil
		e.free = e.free[:n-1]
		e.poolHits++
		return ev
	}
	e.poolMisses++
	return &event{}
}

// Schedule arranges for fn to run in engine context after virtual delay
// d (immediately-next if d <= 0). Events at equal times run in the order
// they were scheduled. The event inherits the profiling label of the
// event currently executing, so attribution follows causality without
// any per-call bookkeeping.
func (e *Engine) Schedule(d time.Duration, fn func()) Timer {
	return e.ScheduleL(d, e.curLabel, fn)
}

// ScheduleL is Schedule with an explicit profiling label (see
// internal/prof): the event's execution is attributed to label instead
// of the scheduling context. Labels are free when no profiler is
// attached — Label/ProfLabel return 0 on a nil profile.
func (e *Engine) ScheduleL(d time.Duration, label prof.LabelID, fn func()) Timer {
	if d < 0 {
		d = 0
	}
	ev := e.getEvent()
	ev.at, ev.seq, ev.fn, ev.label = e.now+d, e.seq, fn, label
	e.seq++
	heap.Push(&e.events, ev)
	if len(e.events) > e.heapHiWat {
		e.heapHiWat = len(e.events)
	}
	return Timer{e: e, ev: ev, gen: ev.gen}
}

// exec runs one popped event: clock advance, release to the pool, then
// the callback — timed and attributed when a profiler is attached.
func (e *Engine) exec(ev *event) {
	e.now = ev.at
	fn := ev.fn
	label := ev.label
	e.release(ev)
	e.execCount++
	if p := e.prof; p != nil {
		prev := e.curLabel
		e.curLabel = label
		t0 := time.Now()
		fn()
		p.Account(label, time.Since(t0).Nanoseconds())
		e.curLabel = prev
	} else {
		fn()
	}
}

// Proc is a cooperatively-scheduled simulated process. Its body runs on
// a dedicated goroutine but only while the engine has handed it control.
type Proc struct {
	e          *Engine
	name       string
	resume     chan struct{}
	done       bool
	killed     bool
	parked     bool
	sleepTimer Timer
	label      prof.LabelID // proc-kind attribution label (0 when unprofiled)

	// dispatchFn and sleepFn are bound once at Go so the hot
	// park/unpark/sleep cycle schedules without allocating a closure.
	dispatchFn func()
	sleepFn    func()
}

// Name returns the name given at Go.
func (p *Proc) Name() string { return p.name }

// Engine returns the engine this process runs on.
func (p *Proc) Engine() *Engine { return p.e }

// Now returns the current virtual time.
func (p *Proc) Now() time.Duration { return p.e.now }

type killedErr struct{ name string }

func (k killedErr) Error() string { return "sim: process " + k.name + " killed at shutdown" }

// Go spawns a new process running fn. The process becomes runnable at
// the current virtual time; it first executes when the engine next runs.
func (e *Engine) Go(name string, fn func(p *Proc)) *Proc {
	p := &Proc{e: e, name: name, resume: make(chan struct{})}
	p.label = e.prof.ProcLabel(name) // 0 when unprofiled (nil-safe)
	p.dispatchFn = func() { e.dispatch(p) }
	p.sleepFn = func() {
		p.sleepTimer = Timer{}
		e.dispatch(p)
	}
	e.live++
	e.procs[p] = struct{}{}
	go func() {
		<-p.resume
		defer func() {
			if r := recover(); r != nil {
				if _, ok := r.(killedErr); !ok {
					// Re-panic in engine context would deadlock; report loudly.
					panic(fmt.Sprintf("sim: process %q panicked: %v", name, r))
				}
			}
			p.done = true
			e.live--
			delete(e.procs, p)
			e.yielded <- struct{}{}
		}()
		fn(p)
	}()
	e.ScheduleL(0, p.label, p.dispatchFn)
	return p
}

// dispatch hands control to p and waits for it to yield. It may be
// called from engine context or (nested) from another process.
func (e *Engine) dispatch(p *Proc) {
	if p.done {
		return
	}
	prev := e.current
	e.current = p
	p.resume <- struct{}{}
	<-e.yielded
	e.current = prev
}

// yieldToEngine transfers control from the running process back to the
// engine and blocks until the engine resumes this process.
func (p *Proc) yieldToEngine() {
	p.e.yielded <- struct{}{}
	<-p.resume
	if p.killed {
		panic(killedErr{p.name})
	}
}

// Park blocks the process until another simulation entity calls Unpark.
// Parking with no one holding a reference to the process deadlocks the
// process (but not the engine), which Run reports via Parked.
func (p *Proc) Park() {
	p.parked = true
	p.e.parked[p] = struct{}{}
	p.yieldToEngine()
}

// Unpark makes a parked process runnable at the current virtual time.
// Unparking a process that is not parked is a no-op. May be called from
// engine or process context.
func (p *Proc) Unpark() {
	if !p.parked {
		return
	}
	p.parked = false
	delete(p.e.parked, p)
	p.e.ScheduleL(0, p.label, p.dispatchFn)
}

// Sleep blocks the process for virtual duration d.
func (p *Proc) Sleep(d time.Duration) {
	p.sleepTimer = p.e.ScheduleL(d, p.label, p.sleepFn)
	p.yieldToEngine()
}

// Done reports whether the process body has returned (or been killed).
func (p *Proc) Done() bool { return p.done }

// Kill terminates the process: its body unwinds (defers run) the next
// time it would execute. A parked or sleeping process dies immediately;
// the current process dies in place. Killing a finished process is a
// no-op. Kill must be called from engine or process context.
func (p *Proc) Kill() {
	if p.done || p.killed {
		return
	}
	p.killed = true
	switch {
	case p.parked:
		p.parked = false
		delete(p.e.parked, p)
		p.e.ScheduleL(0, p.label, p.dispatchFn)
	case p.sleepTimer.Stop():
		p.sleepTimer = Timer{}
		p.e.ScheduleL(0, p.label, p.dispatchFn)
	default:
		// Either running right now (self-kill: unwind immediately) or
		// already queued for a dispatch that will observe the flag.
		if p.e.current == p {
			panic(killedErr{p.name})
		}
	}
}

// Run processes events until none remain. Processes that are still
// parked when the event queue drains stay parked; Run returns with
// Parked reporting how many.
func (e *Engine) Run() {
	if e.running {
		panic("sim: Run called reentrantly")
	}
	e.running = true
	defer func() { e.running = false }()
	for len(e.events) > 0 {
		ev := heap.Pop(&e.events).(*event)
		e.exec(ev)
	}
}

// RunUntil processes events with timestamps <= t, then advances the
// clock to t.
func (e *Engine) RunUntil(t time.Duration) {
	if e.running {
		panic("sim: RunUntil called reentrantly")
	}
	e.running = true
	defer func() { e.running = false }()
	for len(e.events) > 0 && e.events[0].at <= t {
		ev := heap.Pop(&e.events).(*event)
		e.exec(ev)
	}
	if e.now < t {
		e.now = t
	}
}

// RunFor processes events for virtual duration d from the current time.
func (e *Engine) RunFor(d time.Duration) { e.RunUntil(e.now + d) }

// AttachProfiler binds this engine to an execution profiler (see
// internal/prof): subsequent Schedule/Go/Run activity is attributed
// per label and per proc kind. Attach before running; attaching nil is
// a no-op. For sharded runs use ShardGroup.AttachProfiler, which also
// arms the window/stall/matrix accounting.
func (e *Engine) AttachProfiler(p *prof.Profiler) {
	if p == nil {
		return
	}
	e.prof = p.Engine(e.shardID)
}

// Prof returns the engine's per-shard profile, nil when unprofiled.
// Components intern explicit attribution labels through it at
// construction time (ProfLabel below is the nil-safe shorthand).
func (e *Engine) Prof() *prof.EngineProf { return e.prof }

// ProfLabel interns an explicit attribution label, returning 0 (the
// root label) when no profiler is attached.
func (e *Engine) ProfLabel(name string) prof.LabelID { return e.prof.Label(name) }

// EventsExecuted reports how many events this engine has run — the
// denominator of every per-label attribution and, per shard, the
// deterministic imbalance signal (same seed ⇒ same counts at any
// worker count).
func (e *Engine) EventsExecuted() uint64 { return e.execCount }

// TimerPoolHits reports how many scheduled events reused a pooled
// event struct.
func (e *Engine) TimerPoolHits() uint64 { return e.poolHits }

// TimerPoolMisses reports how many scheduled events had to allocate.
func (e *Engine) TimerPoolMisses() uint64 { return e.poolMisses }

// HeapHighWater reports the maximum number of simultaneously scheduled
// events this engine has seen.
func (e *Engine) HeapHighWater() uint64 { return uint64(e.heapHiWat) }

// Parked reports how many processes are currently parked.
func (e *Engine) Parked() int { return len(e.parked) }

// Live reports how many processes have been started and not finished.
func (e *Engine) Live() int { return e.live }

// Pending reports exactly how many scheduled events remain queued.
// Stopped timers leave the heap immediately, so they are not counted.
func (e *Engine) Pending() int { return len(e.events) }

// Shutdown kills every live process — parked, sleeping, or queued for a
// dispatch that will never run — so their goroutines exit. Call at the
// end of a simulation (tests use it via defer) to avoid goroutine
// leaks. Must not be called while Run is executing.
// Close is Shutdown under the name the rest of the codebase expects
// for resource teardown; a standalone engine and a shard both release
// their process goroutines through it.
func (e *Engine) Close() { e.Shutdown() }

func (e *Engine) Shutdown() {
	for len(e.procs) > 0 {
		for p := range e.procs {
			p.killed = true
			if p.parked {
				p.parked = false
				delete(e.parked, p)
			}
			p.sleepTimer.Stop()
			p.sleepTimer = Timer{}
			// Every non-done process is blocked on its resume channel
			// (the cooperative-scheduling invariant), so a direct
			// dispatch unwinds it via the kill panic.
			e.dispatch(p)
			break // map mutated; restart iteration
		}
	}
}
