package sim

import (
	"fmt"
	"runtime"
	"testing"
	"time"
)

// shardPingWorkload wires nShards shards into a ring: each shard runs a
// local ticker that consumes randomness and occasionally posts a
// cross-shard record to its successor, which logs the arrival. The log
// captures (shard, virtual time, rng draw) triples — any divergence in
// execution order or RNG stream shows up as a byte difference.
func shardPingWorkload(workers int) string {
	const nShards = 4
	const lookahead = 5 * time.Millisecond
	g := NewShardGroup(42, nShards, lookahead)
	defer g.Close()
	g.SetWorkers(workers)

	logs := make([]string, nShards)
	for i := 0; i < nShards; i++ {
		i := i
		e := g.Shard(i)
		next := g.Shard((i + 1) % nShards)
		var tick func()
		tick = func() {
			r := e.Rand().Uint64()
			logs[i] += fmt.Sprintf("s%d t=%v r=%x\n", i, e.Now(), r&0xffff)
			if r%3 == 0 {
				from, at := i, e.Now()
				e.Post(next, lookahead+time.Duration(r%5)*time.Millisecond, func() {
					logs[(from+1)%nShards] += fmt.Sprintf("s%d t=%v x-from=%d sent=%v\n",
						(from+1)%nShards, next.Now(), from, at)
				})
			}
			if e.Now() < 200*time.Millisecond {
				e.Schedule(time.Duration(1+r%7)*time.Millisecond, tick)
			}
		}
		e.Schedule(0, tick)
	}
	g.RunUntil(250 * time.Millisecond)
	var all string
	for _, l := range logs {
		all += l
	}
	return all
}

func TestShardGroupDeterministicAcrossWorkers(t *testing.T) {
	ref := shardPingWorkload(1)
	if ref == "" {
		t.Fatal("workload produced no log")
	}
	for _, w := range []int{2, 4} {
		if got := shardPingWorkload(w); got != ref {
			t.Fatalf("workers=%d log diverges from workers=1 golden reference", w)
		}
	}
}

func TestShardSeedDegenerate(t *testing.T) {
	if ShardSeed(777, 0) != 777 {
		t.Fatal("shard 0 must keep the master seed (1-shard group == plain engine)")
	}
	if ShardSeed(777, 1) == 777 || ShardSeed(777, 1) == ShardSeed(777, 2) {
		t.Fatal("shard streams must be decorrelated")
	}
}

func TestPostLookaheadViolationPanics(t *testing.T) {
	g := NewShardGroup(1, 2, 10*time.Millisecond)
	defer g.Close()
	defer func() {
		if recover() == nil {
			t.Fatal("cross-shard Post below lookahead must panic")
		}
	}()
	g.Shard(0).Schedule(0, func() {
		g.Shard(0).Post(g.Shard(1), 5*time.Millisecond, func() {})
	})
	g.RunUntil(time.Millisecond)
}

func TestPostSameShardIsSchedule(t *testing.T) {
	g := NewShardGroup(1, 2, 10*time.Millisecond)
	defer g.Close()
	ran := false
	// Below-lookahead delay is fine same-shard: it's a plain Schedule.
	g.Shard(0).Post(g.Shard(0), time.Millisecond, func() { ran = true })
	g.RunUntil(5 * time.Millisecond)
	if !ran {
		t.Fatal("same-shard Post did not run")
	}
}

func TestRunUntilBoundaryEventRuns(t *testing.T) {
	g := NewShardGroup(1, 2, 10*time.Millisecond)
	defer g.Close()
	var atT, crossAtT bool
	g.Shard(0).Schedule(100*time.Millisecond, func() { atT = true })
	// A cross record landing exactly on the horizon t.
	g.Shard(0).Schedule(90*time.Millisecond, func() {
		g.Shard(0).Post(g.Shard(1), 10*time.Millisecond, func() { crossAtT = true })
	})
	g.RunUntil(100 * time.Millisecond)
	if !atT || !crossAtT {
		t.Fatalf("boundary events skipped: local=%v cross=%v", atT, crossAtT)
	}
	if g.Now() != 100*time.Millisecond {
		t.Fatalf("group clock %v, want 100ms", g.Now())
	}
}

func TestShardGroupRunDrains(t *testing.T) {
	g := NewShardGroup(3, 3, time.Millisecond)
	defer g.Close()
	hops := 0
	var hop func()
	hop = func() {
		hops++
		if hops < 10 {
			src := g.Shard(hops % 3)
			src.Post(g.Shard((hops+1)%3), time.Millisecond, hop)
		}
	}
	g.Shard(0).Schedule(0, hop)
	g.Run()
	if hops != 10 {
		t.Fatalf("hops = %d, want 10", hops)
	}
	if g.Pending() != 0 {
		t.Fatalf("pending = %d after Run", g.Pending())
	}
}

func TestCrossShardPostZeroAlloc(t *testing.T) {
	g := NewShardGroup(9, 2, time.Millisecond)
	defer g.Close()
	e0, e1 := g.Shard(0), g.Shard(1)
	// Pooled pre-bound closure: the PR 5 discipline callers follow.
	var sink int
	fn := func() { sink++ }
	// Warm the outbox rows and both event pools.
	for i := 0; i < 64; i++ {
		e0.Post(e1, time.Millisecond, fn)
	}
	g.RunUntil(10 * time.Millisecond)
	allocs := testing.AllocsPerRun(200, func() {
		for i := 0; i < 16; i++ {
			e0.Post(e1, time.Millisecond, fn)
		}
		g.RunFor(5 * time.Millisecond)
	})
	if allocs != 0 {
		t.Fatalf("cross-shard post+merge allocates %.1f/op, want 0", allocs)
	}
	_ = sink
}

func TestShardGroupCloseNoLeak(t *testing.T) {
	before := runtime.NumGoroutine()
	g := NewShardGroup(5, 4, time.Millisecond)
	g.SetWorkers(4)
	for i := 0; i < 4; i++ {
		e := g.Shard(i)
		e.Go("parker", func(p *Proc) { p.Park() })   // leaks unless killed
		e.Go("sleeper", func(p *Proc) { p.Sleep(time.Hour) })
	}
	g.RunUntil(20 * time.Millisecond) // spins up the worker pool too
	if g.Live() != 8 {
		t.Fatalf("live = %d, want 8", g.Live())
	}
	g.Close()
	g.Close() // idempotent
	deadline := time.Now().Add(2 * time.Second)
	for runtime.NumGoroutine() > before && time.Now().Before(deadline) {
		runtime.Gosched()
		time.Sleep(time.Millisecond)
	}
	if after := runtime.NumGoroutine(); after > before {
		t.Fatalf("goroutines leaked across Close: before=%d after=%d", before, after)
	}
}

func TestOneShardGroupMatchesPlainEngine(t *testing.T) {
	run := func(e *Engine, until func(time.Duration)) string {
		var log string
		var tick func()
		tick = func() {
			log += fmt.Sprintf("t=%v r=%x\n", e.Now(), e.Rand().Uint64()&0xffff)
			if e.Now() < 50*time.Millisecond {
				e.Schedule(3*time.Millisecond, tick)
			}
		}
		e.Schedule(0, tick)
		until(60 * time.Millisecond)
		return log
	}
	plain := New(123)
	defer plain.Close()
	a := run(plain, plain.RunUntil)
	g := NewShardGroup(123, 1, 0)
	defer g.Close()
	b := run(g.Shard(0), g.RunUntil)
	if a != b {
		t.Fatal("1-shard group diverges from plain engine at the same seed")
	}
}
