package sim

import "time"

// Rand is a deterministic pseudo-random source (SplitMix64). All
// simulated randomness — cell loss, reordering, jitter — draws from one
// Rand so a run is fully determined by its seed.
type Rand struct {
	state uint64
}

// NewRand returns a source seeded with seed.
func NewRand(seed uint64) *Rand { return &Rand{state: seed} }

// Uint64 returns the next value in the sequence.
func (r *Rand) Uint64() uint64 {
	r.state += 0x9e3779b97f4a7c15
	z := r.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Float64 returns a value in [0, 1).
func (r *Rand) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Intn returns a value in [0, n). It panics if n <= 0.
func (r *Rand) Intn(n int) int {
	if n <= 0 {
		panic("sim: Intn with non-positive n")
	}
	return int(r.Uint64() % uint64(n))
}

// Chance reports true with probability p (clamped to [0, 1]).
func (r *Rand) Chance(p float64) bool {
	if p <= 0 {
		return false
	}
	if p >= 1 {
		return true
	}
	return r.Float64() < p
}

// Jitter returns a duration uniform in [0, max).
func (r *Rand) Jitter(max time.Duration) time.Duration {
	if max <= 0 {
		return 0
	}
	return time.Duration(r.Uint64() % uint64(max))
}

// Perm returns a random permutation of [0, n).
func (r *Rand) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		j := r.Intn(i + 1)
		p[i] = p[j]
		p[j] = i
	}
	return p
}
