package sim

// Sharded parallel simulation. A ShardGroup partitions one virtual
// world across several Engines ("shards"), each advancing its own event
// heap, synchronized conservatively: the group moves in barrier windows
// no wider than the lookahead, and a cross-shard event may only be
// scheduled at least one lookahead in the future. Since nothing a shard
// does inside the window [W, W+L) can affect another shard before W+L,
// every shard can execute its window with no locks and no knowledge of
// its neighbors' progress — the classic conservative-synchronization
// argument, with the lookahead supplied by the physics of the topology
// (trunk propagation delay; see DESIGN.md §14).
//
// Worker count is an execution detail, never a semantic one: each
// shard's window is self-contained, and the barrier merge inserts
// cross-shard records in a fixed (source-shard, send-order) sequence,
// so a run's virtual history is byte-identical whether the windows
// execute on one goroutine or eight. workers=1 is the golden reference.

import (
	"container/heap"
	"fmt"
	"sync"
	"time"

	"xunet/internal/prof"
)

// maxDuration is the +infinity sentinel for horizon computations.
const maxDuration = time.Duration(1<<63 - 1)

// xrec is one cross-shard event record staged in an outbox: the
// absolute virtual delivery time and the callback to run on the
// destination shard. Callers keep the clean path allocation-free by
// posting pooled, pre-bound closures (the PR 5 frame discipline);
// the outbox slices themselves retain capacity across windows.
type xrec struct {
	at time.Duration
	fn func()
}

// ShardGroup is a set of engines advancing one simulation in parallel.
// Create with NewShardGroup; drive with RunUntil/Run; always Close when
// done so shard process goroutines and window workers are joined.
type ShardGroup struct {
	shards    []*Engine
	lookahead time.Duration
	workers   int
	now       time.Duration

	// outbox[src][dst] stages records posted by shard src for shard dst
	// during the current window. Each row has exactly one writer (the
	// goroutine executing shard src's window), and the coordinator reads
	// all rows only after every shard has passed the barrier.
	outbox [][][]xrec

	// Window worker pool (started lazily when workers > 1).
	work     chan int
	done     chan struct{}
	wg       sync.WaitGroup
	winLimit time.Duration
	winIncl  bool
	poolSize int
	closed   bool

	// Execution profiling (internal/prof): gprof is nil unless
	// AttachProfiler armed it; winDur is the per-window scratch of
	// per-shard wall durations (each slot written by the goroutine
	// that ran that shard's window, read by the coordinator after the
	// barrier — the work/done channels supply the happens-before).
	gprof  *prof.GroupProf
	winDur []int64
}

// NewShardGroup returns n engines synchronized at the given lookahead.
// Shard 0 is seeded with the master seed itself (a 1-shard group is a
// plain engine, byte-for-byte); other shards draw decorrelated streams
// derived from it, so same-seed runs are identical regardless of worker
// count. Lookahead must be positive when n > 1: it is the minimum
// virtual delay of every cross-shard Post.
func NewShardGroup(seed uint64, n int, lookahead time.Duration) *ShardGroup {
	if n < 1 {
		panic("sim: NewShardGroup with no shards")
	}
	if n > 1 && lookahead <= 0 {
		panic("sim: NewShardGroup with non-positive lookahead")
	}
	g := &ShardGroup{
		shards:    make([]*Engine, n),
		lookahead: lookahead,
		workers:   1,
		outbox:    make([][][]xrec, n),
		winDur:    make([]int64, n),
	}
	for i := range g.shards {
		e := New(ShardSeed(seed, i))
		e.group = g
		e.shardID = i
		g.shards[i] = e
		g.outbox[i] = make([][]xrec, n)
	}
	return g
}

// ShardSeed derives shard i's RNG seed from the master seed. Shard 0
// keeps the master itself (the 1-shard degenerate case matches a plain
// engine exactly); higher shards get SplitMix64-scrambled streams.
func ShardSeed(master uint64, shard int) uint64 {
	if shard == 0 {
		return master
	}
	z := master + uint64(shard)*0x9E3779B97F4A7C15
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return z ^ (z >> 31)
}

// Shards reports the number of shards.
func (g *ShardGroup) Shards() int { return len(g.shards) }

// Shard returns shard i's engine.
func (g *ShardGroup) Shard(i int) *Engine { return g.shards[i] }

// Lookahead returns the conservative-synchronization lookahead.
func (g *ShardGroup) Lookahead() time.Duration { return g.lookahead }

// Now returns the group's virtual time: the barrier horizon every shard
// has advanced to.
func (g *ShardGroup) Now() time.Duration { return g.now }

// Workers reports the execution parallelism.
func (g *ShardGroup) Workers() int { return g.workers }

// SetWorkers sets how many goroutines execute shard windows. It bounds
// to [1, Shards()] and must be called between runs, not during one.
// Changing it never changes results — only wall-clock time.
func (g *ShardGroup) SetWorkers(n int) {
	if n < 1 {
		n = 1
	}
	if n > len(g.shards) {
		n = len(g.shards)
	}
	if g.poolSize > 0 && n != g.poolSize && n > 1 {
		panic("sim: SetWorkers after the worker pool started")
	}
	g.workers = n
}

// Pending reports the total scheduled events across all shards (staged
// cross-shard records are counted once merged).
func (g *ShardGroup) Pending() int {
	total := 0
	for _, e := range g.shards {
		total += e.Pending()
	}
	return total
}

// AttachProfiler binds every shard engine and the group's window
// accounting to p. Call before the first RunUntil/Run (the worker pool
// reads the hook without a lock once started); attaching nil is a
// no-op.
func (g *ShardGroup) AttachProfiler(p *prof.Profiler) {
	if p == nil {
		return
	}
	for _, e := range g.shards {
		e.AttachProfiler(p)
	}
	g.gprof = p.Group(len(g.shards))
}

// post stages a cross-shard record; called by Engine.Post/PostSized,
// which also feed the (src,dst) traffic matrix when profiling is on.
func (g *ShardGroup) post(src, dst int, at time.Duration, fn func()) {
	g.outbox[src][dst] = append(g.outbox[src][dst], xrec{at: at, fn: fn})
}

// merge drains every outbox into the destination heaps. Sources merge
// in index order and records within a row in send order, so equal-time
// cross events tie-break deterministically — the heap's sequence
// numbers are assigned right here, by one goroutine, in a fixed order.
func (g *ShardGroup) merge() {
	for dst, e := range g.shards {
		for src := range g.shards {
			row := g.outbox[src][dst]
			if len(row) == 0 {
				continue
			}
			for i := range row {
				e.scheduleAbs(row[i].at, row[i].fn)
				row[i].fn = nil // drop the closure ref; the slice is reused
			}
			g.outbox[src][dst] = row[:0]
		}
	}
}

// earliest returns the soonest scheduled event across all shards
// (maxDuration when every heap is empty). Valid only at a barrier,
// after merge, when the outboxes are empty.
func (g *ShardGroup) earliest() time.Duration {
	min := maxDuration
	for _, e := range g.shards {
		if len(e.events) > 0 && e.events[0].at < min {
			min = e.events[0].at
		}
	}
	return min
}

// windowAll executes one window on every shard: sequentially in shard
// order when workers == 1 (the golden reference), otherwise fanned out
// over the worker pool. Either way each shard's window is the same
// single-threaded computation.
func (g *ShardGroup) windowAll(limit time.Duration, inclusive bool) {
	if g.workers <= 1 || len(g.shards) == 1 {
		if g.gprof == nil {
			for _, e := range g.shards {
				e.runWindow(limit, inclusive)
			}
			return
		}
		for i, e := range g.shards {
			t0 := time.Now()
			e.runWindow(limit, inclusive)
			g.winDur[i] = time.Since(t0).Nanoseconds()
		}
		g.gprof.AccountWindow(g.winDur)
		return
	}
	g.ensureWorkers()
	g.winLimit, g.winIncl = limit, inclusive
	for i := range g.shards {
		g.work <- i
	}
	for range g.shards {
		<-g.done
	}
	if g.gprof != nil {
		g.gprof.AccountWindow(g.winDur)
	}
}

// ensureWorkers starts the persistent window workers.
func (g *ShardGroup) ensureWorkers() {
	if g.poolSize > 0 {
		return
	}
	g.poolSize = g.workers
	g.work = make(chan int, len(g.shards))
	g.done = make(chan struct{}, len(g.shards))
	g.wg.Add(g.poolSize)
	for w := 0; w < g.poolSize; w++ {
		go func() {
			defer g.wg.Done()
			for i := range g.work {
				if g.gprof != nil {
					t0 := time.Now()
					g.shards[i].runWindow(g.winLimit, g.winIncl)
					g.winDur[i] = time.Since(t0).Nanoseconds()
				} else {
					g.shards[i].runWindow(g.winLimit, g.winIncl)
				}
				g.done <- struct{}{}
			}
		}()
	}
}

// RunUntil advances the whole group to virtual time t: conservative
// windows of at most one lookahead (jumping over globally idle gaps),
// a barrier merge after each, and a final inclusive pass so events
// scheduled at exactly t execute, matching Engine.RunUntil semantics.
func (g *ShardGroup) RunUntil(t time.Duration) {
	if g.closed {
		panic("sim: RunUntil on a closed ShardGroup")
	}
	g.merge() // adopt records posted while the group was idle
	for g.now < t {
		start := g.now
		if e := g.earliest(); e > start {
			// Nothing anywhere before e: jump the window forward. Safe
			// because the outboxes are empty at a barrier, so no event
			// can materialize before the earliest scheduled one.
			start = e
			g.gprof.NoteIdleSkip()
		}
		if start > t {
			start = t
		}
		limit := start + g.lookahead
		if g.lookahead <= 0 || limit > t || limit < start {
			limit = t
		}
		g.windowAll(limit, false)
		g.merge()
		g.now = limit
	}
	// Boundary pass: events at exactly t (including cross records that
	// landed right on the horizon). Anything they post lands > t.
	g.windowAll(t, true)
	g.merge()
}

// RunFor advances the group by virtual duration d.
func (g *ShardGroup) RunFor(d time.Duration) { g.RunUntil(g.now + d) }

// Run processes windows until no shard has a scheduled event left.
// Parked processes stay parked, as with Engine.Run.
func (g *ShardGroup) Run() {
	g.merge()
	for {
		next := g.earliest()
		if next == maxDuration {
			return
		}
		limit := next + g.lookahead
		if g.lookahead <= 0 || limit < next {
			limit = next
		}
		g.windowAll(limit, true)
		g.merge()
		if limit > g.now {
			g.now = limit
		}
	}
}

// Parked sums parked processes across shards.
func (g *ShardGroup) Parked() int {
	total := 0
	for _, e := range g.shards {
		total += e.Parked()
	}
	return total
}

// Live sums live processes across shards.
func (g *ShardGroup) Live() int {
	total := 0
	for _, e := range g.shards {
		total += e.Live()
	}
	return total
}

// Close shuts the group down: the window worker pool is joined, every
// shard's live processes are killed (their goroutines exit), and staged
// cross-shard records are dropped. Idempotent. The PR 7 shutdown
// contract: tests assert no goroutine leak after Close, replacing the
// old rely-on-defer-drain discipline.
func (g *ShardGroup) Close() {
	if g.closed {
		return
	}
	g.closed = true
	if g.work != nil {
		close(g.work)
		g.wg.Wait()
		g.work = nil
	}
	for _, e := range g.shards {
		e.Shutdown()
	}
	for src := range g.outbox {
		for dst := range g.outbox[src] {
			g.outbox[src][dst] = nil
		}
	}
}

// Post schedules fn on dst's shard after virtual delay d. Same-engine
// posts degrade to Schedule. Cross-shard posts are the conservative
// synchronization protocol's only channel, so d must be at least the
// group lookahead — violating that would let a shard reach into a
// window a neighbor may already be executing, and panics loudly instead
// of corrupting the run.
func (e *Engine) Post(dst *Engine, d time.Duration, fn func()) {
	e.PostSized(dst, d, 0, fn)
}

// PostSized is Post carrying a payload size for the profiler's
// cross-shard traffic matrix: size is the number of payload bytes the
// record represents (0 for pure control posts). Size never affects the
// simulation — it only feeds (src,dst) post/byte accounting.
func (e *Engine) PostSized(dst *Engine, d time.Duration, size int, fn func()) {
	if dst == e || e.group == nil {
		e.Schedule(d, fn)
		return
	}
	g := e.group
	if dst.group != g {
		panic("sim: Post to an engine outside this shard group")
	}
	if d < g.lookahead {
		panic(fmt.Sprintf("sim: cross-shard Post delay %v below lookahead %v", d, g.lookahead))
	}
	g.gprof.NotePost(e.shardID, dst.shardID, size)
	g.post(e.shardID, dst.shardID, e.now+d, fn)
}

// ShardID reports which shard of its group this engine is (0 for a
// plain engine).
func (e *Engine) ShardID() int { return e.shardID }

// Group returns the engine's shard group, nil for a plain engine.
func (e *Engine) Group() *ShardGroup { return e.group }

// scheduleAbs inserts an event at an absolute virtual time, reusing the
// event free list. The time must not be in the shard's past (the merge
// barrier guarantees this for cross-shard records).
func (e *Engine) scheduleAbs(at time.Duration, fn func()) {
	if at < e.now {
		at = e.now
	}
	ev := e.getEvent()
	// Cross-shard records execute under the xshard label: the
	// originating label lives in another shard's table, so attribution
	// hands off at the boundary (the matrix carries the src side).
	ev.at, ev.seq, ev.fn, ev.label = at, e.seq, fn, prof.LabelCrossShard
	e.seq++
	heap.Push(&e.events, ev)
	if len(e.events) > e.heapHiWat {
		e.heapHiWat = len(e.events)
	}
}

// runWindow processes this shard's events up to limit — strictly before
// it for interior windows, inclusively for the boundary pass — then
// advances the clock to the window edge so every shard leaves the
// barrier at the same instant.
func (e *Engine) runWindow(limit time.Duration, inclusive bool) {
	if e.running {
		panic("sim: runWindow called reentrantly")
	}
	e.running = true
	for len(e.events) > 0 {
		at := e.events[0].at
		if at > limit || (!inclusive && at == limit) {
			break
		}
		ev := heap.Pop(&e.events).(*event)
		e.exec(ev)
	}
	if e.now < limit {
		e.now = limit
	}
	e.running = false
}
