package sim

import (
	"testing"
	"time"
)

func TestRingFIFOAndGrowth(t *testing.T) {
	var r Ring[int]
	for round := 0; round < 3; round++ {
		for i := 0; i < 100; i++ {
			r.Push(i)
		}
		for i := 0; i < 100; i++ {
			if got := r.Pop(); got != i {
				t.Fatalf("round %d: Pop = %d, want %d", round, got, i)
			}
		}
		if r.Len() != 0 {
			t.Fatalf("round %d: len = %d", round, r.Len())
		}
	}
}

func TestRingWrapAround(t *testing.T) {
	var r Ring[int]
	// Force head to rotate through the backing array repeatedly.
	for i := 0; i < 1000; i++ {
		r.Push(i)
		r.Push(i + 1000)
		if got := r.Pop(); got != i {
			t.Fatalf("Pop = %d, want %d", got, i)
		}
		if got := r.Pop(); got != i+1000 {
			t.Fatalf("Pop = %d, want %d", got, i+1000)
		}
	}
}

func TestRingPushFrontPopTail(t *testing.T) {
	var r Ring[int]
	r.Push(2)
	r.PushFront(1)
	r.Push(3)
	if got := r.PopTail(); got != 3 {
		t.Fatalf("PopTail = %d", got)
	}
	if got := r.Pop(); got != 1 {
		t.Fatalf("Pop = %d", got)
	}
	if got := r.Pop(); got != 2 {
		t.Fatalf("Pop = %d", got)
	}
}

func TestRingRemoveAt(t *testing.T) {
	for remove := 0; remove < 5; remove++ {
		var r Ring[int]
		// Rotate head first so removal crosses the wrap point.
		for i := 0; i < 6; i++ {
			r.Push(-1)
		}
		for i := 0; i < 6; i++ {
			r.Pop()
		}
		for i := 0; i < 5; i++ {
			r.Push(i)
		}
		if got := r.RemoveAt(remove); got != remove {
			t.Fatalf("RemoveAt(%d) = %d", remove, got)
		}
		want := []int{}
		for i := 0; i < 5; i++ {
			if i != remove {
				want = append(want, i)
			}
		}
		for i, w := range want {
			if got := r.At(i); got != w {
				t.Fatalf("after RemoveAt(%d): At(%d) = %d, want %d", remove, i, got, w)
			}
		}
		r.Pop()
	}
}

// TestRingZeroesVacatedSlots is the backing-array retention regression:
// every removal path must clear its slot so consumed pointers are not
// pinned by the ring.
func TestRingZeroesVacatedSlots(t *testing.T) {
	var r Ring[*int]
	v := new(int)
	r.Push(v)
	r.Pop()
	r.Push(v)
	r.PopTail()
	r.PushFront(v)
	r.Pop()
	r.Push(v)
	r.Push(v)
	r.RemoveAt(0)
	r.RemoveAt(0)
	for i, p := range r.buf {
		if p != nil {
			t.Fatalf("slot %d still holds a reference after removal", i)
		}
	}
}

// TestQueueDropsConsumedReferences asserts a drained Queue retains no
// references to the items (or waiters) that passed through it — the
// slice-head re-slicing leak this PR removed.
func TestQueueDropsConsumedReferences(t *testing.T) {
	e := New(1)
	q := NewQueue[*int](e)
	for i := 0; i < 64; i++ {
		q.Put(new(int))
	}
	for {
		if _, ok := q.TryGet(); !ok {
			break
		}
	}
	for i, p := range q.items.buf {
		if p != nil {
			t.Fatalf("drained queue still pins item in slot %d", i)
		}
	}

	// Waiter bookkeeping must drop references too: time out a consumer
	// and check the waiter ring holds nothing.
	e.Go("waiter", func(p *Proc) {
		if _, ok, timedOut := q.GetTimeout(p, time.Millisecond); ok || !timedOut {
			t.Errorf("GetTimeout: ok=%v timedOut=%v", ok, timedOut)
		}
	})
	e.Run()
	if q.waiters.Len() != 0 {
		t.Fatalf("waiters len = %d", q.waiters.Len())
	}
	for i, w := range q.waiters.buf {
		if w != nil {
			t.Fatalf("queue still pins dead waiter in slot %d", i)
		}
	}
	e.Shutdown()
}

// TestPendingExact asserts Pending counts only live events: a stopped
// timer leaves the heap immediately instead of lingering as a canceled
// placeholder.
func TestPendingExact(t *testing.T) {
	e := New(1)
	t1 := e.Schedule(time.Second, func() {})
	t2 := e.Schedule(2*time.Second, func() {})
	t3 := e.Schedule(3*time.Second, func() {})
	if e.Pending() != 3 {
		t.Fatalf("pending = %d, want 3", e.Pending())
	}
	if !t2.Stop() {
		t.Fatal("t2.Stop reported not-pending")
	}
	if e.Pending() != 2 {
		t.Fatalf("pending after Stop = %d, want 2", e.Pending())
	}
	if t2.Pending() {
		t.Fatal("stopped timer still Pending")
	}
	if !t1.Pending() || !t3.Pending() {
		t.Fatal("live timers not Pending")
	}
	e.Run()
	if e.Pending() != 0 {
		t.Fatalf("pending after Run = %d, want 0", e.Pending())
	}
	if t1.Pending() || t3.Pending() {
		t.Fatal("fired timers still Pending")
	}
}

// TestTimerStaleHandleAfterReuse asserts a Timer held past its event's
// execution stays inert even after the pooled event struct is recycled
// for a different callback.
func TestTimerStaleHandleAfterReuse(t *testing.T) {
	e := New(1)
	fired := 0
	old := e.Schedule(time.Millisecond, func() { fired++ })
	e.Run()
	// The event struct is now on the free list; reuse it.
	fresh := e.Schedule(time.Millisecond, func() { fired += 10 })
	if old.Stop() {
		t.Fatal("stale handle stopped a recycled event")
	}
	if !fresh.Pending() {
		t.Fatal("fresh timer lost its event to a stale Stop")
	}
	e.Run()
	if fired != 11 {
		t.Fatalf("fired = %d, want 11", fired)
	}
}
