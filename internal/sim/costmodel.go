package sim

import "time"

// CostModel holds the virtual-time costs that calibrate the simulation
// to the paper's 1994 testbed (SGI 4D/30 workstations, IRIX 4.0.1).
// DESIGN.md §6 records the calibration rationale; EXPERIMENTS.md records
// paper-vs-measured results under this model.
type CostModel struct {
	// ContextSwitch is the cost of one user/kernel process switch. The
	// paper attributes the 17–20 ms service-registration RPC almost
	// entirely to its four context switches, giving ≈4.5 ms each.
	ContextSwitch time.Duration

	// Instr is the execution time of one accounted instruction on the
	// ~30 MIPS R3000-class CPU of an SGI 4D/30.
	Instr time.Duration

	// CallLogging is the per-call maintenance-information logging cost
	// at one signaling entity. The paper measures ≈330 ms to establish a
	// router-to-router call, "mainly due to the large amount of
	// maintenance information logged per call by the signaling
	// entities" (two entities ≈ 150 ms each plus switching work).
	CallLogging time.Duration

	// MSL is the maximum segment lifetime of the IPC transport; a closed
	// descriptor lingers for 2·MSL (TIME_WAIT), which drives the
	// fd-table scaling problem of §10.
	MSL time.Duration

	// BindTimeout is sighost's per-VCI timer: a VCI handed to an
	// application that never binds/connects is reclaimed after this.
	BindTimeout time.Duration

	// SyscallEntry is the cost of trapping into the kernel for a system
	// call that does not switch processes (send/recv fast path).
	SyscallEntry time.Duration
}

// DefaultCostModel returns the calibration used throughout the
// reproduction.
func DefaultCostModel() CostModel {
	return CostModel{
		ContextSwitch: 4500 * time.Microsecond,
		Instr:         33 * time.Nanosecond,
		CallLogging:   150 * time.Millisecond,
		MSL:           15 * time.Second,
		BindTimeout:   30 * time.Second,
		SyscallEntry:  100 * time.Microsecond,
	}
}

// InstrCost converts an instruction count into virtual execution time.
func (c CostModel) InstrCost(n int64) time.Duration {
	if n <= 0 {
		return 0
	}
	return time.Duration(n) * c.Instr
}

// InKernelSignaling returns a copy of the model for the §5.1 ablation:
// an in-kernel signaling entity halves the context switches per RPC;
// the model itself is unchanged, but callers use this marker method to
// document intent when they charge 2 instead of 4 switches.
func (c CostModel) InKernelSignaling() CostModel { return c }
