// Package sigmsg defines the signaling protocol messages and their wire
// encoding: the application–signaling RPC messages of Figures 3 and 4
// (EXPORT_SRV, SERVICE_REGS, INCOMING_CONN, ACCEPT_CONN, REJECT_CONN,
// VCI_FOR_CONN, CONNECT_REQ, REQ_ID, CANCEL_REQ) plus the
// sighost-to-sighost call-control messages that ride the signaling PVC
// (SETUP, SETUP_ACK, SETUP_REJ, CONNECT_DONE, RELEASE).
//
// Messages travel as length-delimited binary frames over reliable
// streams (the paper's TCP IPC) or as AAL frames on the peer PVC. The
// QoS descriptor travels as an uninterpreted string, exactly as the
// paper specifies, so the signaling layer never depends on its grammar.
package sigmsg

import (
	"errors"
	"fmt"

	"xunet/internal/atm"
)

// Kind identifies a message type.
type Kind uint8

// Application-signaling messages (Figures 3 and 4).
const (
	// KindExportSrv registers a service: Service, NotifyPort.
	KindExportSrv Kind = iota + 1
	// KindServiceRegs acknowledges registration: Service.
	KindServiceRegs
	// KindUnexportSrv cancels a registration: Service.
	KindUnexportSrv
	// KindIncomingConn notifies a server of a call: Service, Cookie,
	// QoS, Comment.
	KindIncomingConn
	// KindAcceptConn accepts a call with possibly modified QoS: Cookie,
	// QoS, Comment.
	KindAcceptConn
	// KindRejectConn declines a call: Cookie, Reason.
	KindRejectConn
	// KindVCIForConn delivers the established circuit: Cookie, VCI, QoS.
	KindVCIForConn
	// KindConnectReq asks for a call: Dest, Service, QoS, NotifyPort,
	// Comment.
	KindConnectReq
	// KindReqID acknowledges a connect request with its cookie: Cookie.
	KindReqID
	// KindCancelReq cancels an outstanding request: Cookie.
	KindCancelReq
	// KindConnFailed reports an asynchronous call failure: Cookie,
	// Reason.
	KindConnFailed
	// KindError reports a synchronous protocol error: Reason.
	KindError
	// KindMgmtQuery asks the signaling entity for management state
	// (§5.1: "Signaling state information is easily available and can
	// be used by network management software"): Service selects the
	// query ("services", "calls", "stats", "lists").
	KindMgmtQuery
	// KindMgmtReply returns the rendered state: Comment.
	KindMgmtReply
)

// Peer sighost-to-sighost messages.
const (
	// KindSetup opens a call: CallID, Src, Dest, Service, QoS, Comment.
	KindSetup Kind = iota + 64
	// KindSetupAck reports server acceptance: CallID, QoS (negotiated).
	KindSetupAck
	// KindSetupRej reports rejection: CallID, Reason.
	KindSetupRej
	// KindConnectDone carries the programmed circuit: CallID, VCI (the
	// VCI at the destination side), QoS.
	KindConnectDone
	// KindRelease tears a call down: CallID, Reason.
	KindRelease
	// KindPeerAck acknowledges receipt of a reliable peer message: Seq,
	// Epoch. Acks are themselves unreliable — a lost ack is repaired by
	// the sender's retransmission, which the receiver deduplicates.
	KindPeerAck
	// KindKeepalive probes peer liveness: Epoch. Sent only while calls
	// or unacknowledged messages exist toward the peer; any traffic from
	// the peer (keepalives included) refreshes its liveness deadline.
	KindKeepalive
)

var kindNames = map[Kind]string{
	KindExportSrv:    "EXPORT_SRV",
	KindServiceRegs:  "SERVICE_REGS",
	KindUnexportSrv:  "UNEXPORT_SRV",
	KindIncomingConn: "INCOMING_CONN",
	KindAcceptConn:   "ACCEPT_CONN",
	KindRejectConn:   "REJECT_CONN",
	KindVCIForConn:   "VCI_FOR_CONN",
	KindConnectReq:   "CONNECT_REQ",
	KindReqID:        "REQ_ID",
	KindCancelReq:    "CANCEL_REQ",
	KindConnFailed:   "CONN_FAILED",
	KindError:        "SIG_ERROR",
	KindMgmtQuery:    "MGMT_QUERY",
	KindMgmtReply:    "MGMT_REPLY",
	KindSetup:        "SETUP",
	KindSetupAck:     "SETUP_ACK",
	KindSetupRej:     "SETUP_REJ",
	KindConnectDone:  "CONNECT_DONE",
	KindRelease:      "RELEASE",
	KindPeerAck:      "PEER_ACK",
	KindKeepalive:    "KEEPALIVE",
}

// String returns the protocol name of the kind.
func (k Kind) String() string {
	if n, ok := kindNames[k]; ok {
		return n
	}
	return fmt.Sprintf("Kind(%d)", uint8(k))
}

// Msg is one signaling message. Fields not used by a kind are zero.
type Msg struct {
	Kind       Kind
	Service    string
	Dest       atm.Addr
	Src        atm.Addr
	QoS        string // uninterpreted QoS descriptor
	Comment    string
	Reason     string
	Cookie     uint16
	VCI        atm.VCI
	NotifyPort uint16
	CallID     uint32
	// FromOrigin disambiguates peer messages: call IDs are scoped to
	// the originating sighost, so a RELEASE must say whether its sender
	// originated the call (true) or served its destination (false).
	FromOrigin bool
	// PID identifies the requesting process on CONNECT_REQ, so the
	// kernel's termination indication can cancel the process's
	// outstanding requests (§7.2: "the termination indication is needed
	// to allow sighost to inform the remote router (or host) that the
	// client (or server) no longer exists").
	PID uint32
	// TraceID/SpanID propagate the causal trace context across the wire:
	// SETUP carries the origin's peer span so the destination's work
	// nests under it, CONNECT_DONE and VCI_FOR_CONN carry the call's
	// root span. Zero means the call is untraced or unsampled.
	TraceID uint64
	SpanID  uint64
	// Seq/Epoch implement reliable peer delivery. Seq numbers each
	// sighost-to-sighost message per destination (0 means the sender ran
	// without reliability — the receiver passes it through unsequenced).
	// Epoch is the sender's incarnation: it bumps on crash-recovery so a
	// receiver can discard stale retransmissions from before the crash
	// and reset its duplicate-detection window for the new life.
	Seq   uint32
	Epoch uint32
}

// String renders the message for traces, in the style of the paper's
// message sequence figures.
func (m Msg) String() string {
	s := m.Kind.String()
	if m.Service != "" {
		s += " svc=" + m.Service
	}
	if m.Dest != "" {
		s += " dest=" + string(m.Dest)
	}
	if m.Cookie != 0 {
		s += fmt.Sprintf(" cookie=%d", m.Cookie)
	}
	if m.VCI != 0 {
		s += fmt.Sprintf(" vci=%d", m.VCI)
	}
	if m.QoS != "" {
		s += " qos=" + m.QoS
	}
	if m.CallID != 0 {
		s += fmt.Sprintf(" call=%d", m.CallID)
	}
	if m.Reason != "" {
		s += " reason=" + m.Reason
	}
	return s
}

// Errors from decoding.
var (
	ErrShort   = errors.New("sigmsg: truncated message")
	ErrBadKind = errors.New("sigmsg: unknown message kind")
)

// fixedLen is the size of the fixed-field prefix every message carries
// before the six length-prefixed strings.
const fixedLen = 40

// EncodedSize is the exact number of bytes Encode/AppendTo produce for
// this message, so callers can size a buffer without a trial encode.
func (m *Msg) EncodedSize() int {
	return fixedLen + 2*6 + len(m.Service) + len(m.Dest) + len(m.Src) +
		len(m.QoS) + len(m.Comment) + len(m.Reason)
}

// Encode serializes the message into a fresh slice. Hot paths should
// prefer AppendTo with a reused buffer; Encode remains for one-shot
// callers and compatibility.
func (m Msg) Encode() []byte {
	return m.AppendTo(make([]byte, 0, m.EncodedSize()))
}

// AppendTo serializes the message onto buf (usually buf[:0] of a reused
// scratch slice) and returns the extended slice. It allocates only when
// buf lacks capacity. The format is a kind byte followed by fixed
// fields and length-prefixed strings; it is identical for every kind to
// keep the codec simple and the fuzz surface small.
func (m *Msg) AppendTo(buf []byte) []byte {
	out := buf
	out = append(out, byte(m.Kind))
	out = append(out, byte(m.Cookie>>8), byte(m.Cookie))
	out = append(out, byte(m.VCI>>8), byte(m.VCI))
	out = append(out, byte(m.NotifyPort>>8), byte(m.NotifyPort))
	out = append(out, byte(m.CallID>>24), byte(m.CallID>>16), byte(m.CallID>>8), byte(m.CallID))
	if m.FromOrigin {
		out = append(out, 1)
	} else {
		out = append(out, 0)
	}
	out = append(out, byte(m.PID>>24), byte(m.PID>>16), byte(m.PID>>8), byte(m.PID))
	out = appendU64(out, m.TraceID)
	out = appendU64(out, m.SpanID)
	out = append(out, byte(m.Seq>>24), byte(m.Seq>>16), byte(m.Seq>>8), byte(m.Seq))
	out = append(out, byte(m.Epoch>>24), byte(m.Epoch>>16), byte(m.Epoch>>8), byte(m.Epoch))
	for _, s := range []string{m.Service, string(m.Dest), string(m.Src), m.QoS, m.Comment, m.Reason} {
		out = appendString(out, s)
	}
	return out
}

func appendString(out []byte, s string) []byte {
	out = append(out, byte(len(s)>>8), byte(len(s)))
	return append(out, s...)
}

func appendU64(out []byte, v uint64) []byte {
	return append(out,
		byte(v>>56), byte(v>>48), byte(v>>40), byte(v>>32),
		byte(v>>24), byte(v>>16), byte(v>>8), byte(v))
}

func u64(b []byte) uint64 {
	return uint64(b[0])<<56 | uint64(b[1])<<48 | uint64(b[2])<<40 | uint64(b[3])<<32 |
		uint64(b[4])<<24 | uint64(b[5])<<16 | uint64(b[6])<<8 | uint64(b[7])
}

// Decode parses a message encoded by Encode. Each string field is a
// fresh allocation; hot receive paths should hold a Decoder, whose
// intern table makes repeated service/QoS/address strings free.
func Decode(b []byte) (Msg, error) {
	var m Msg
	err := (*Decoder)(nil).DecodeInto(&m, b)
	return m, err
}

// Decoder is a reusable decode context. Its intern table maps the byte
// content of string fields to previously-built Go strings, so a steady
// state of repeating services, addresses and QoS descriptors decodes
// with zero allocations. A Decoder is not safe for concurrent use; give
// each receive pump its own.
type Decoder struct {
	intern map[string]string
}

// internCap bounds the intern table so a hostile peer streaming unique
// strings cannot grow it without bound; internMaxStr skips interning
// huge one-off strings (comments, reasons) that would bloat the table.
const (
	internCap    = 4096
	internMaxStr = 128
)

// str materializes one decoded string field, interning it when the
// decoder is non-nil.
func (d *Decoder) str(b []byte) string {
	if len(b) == 0 {
		return ""
	}
	if d == nil || len(b) > internMaxStr {
		return string(b)
	}
	if d.intern == nil {
		d.intern = make(map[string]string, 64)
	}
	if s, ok := d.intern[string(b)]; ok { // no-alloc map lookup
		return s
	}
	s := string(b)
	if len(d.intern) < internCap {
		d.intern[s] = s
	}
	return s
}

// DecodeInto parses a message encoded by Encode/AppendTo into *m,
// overwriting every field. With a reused *m and a warm intern table the
// steady state allocates nothing. A nil receiver is valid and decodes
// without interning.
func (d *Decoder) DecodeInto(m *Msg, b []byte) error {
	*m = Msg{}
	if len(b) < fixedLen {
		return ErrShort
	}
	m.Kind = Kind(b[0])
	if _, ok := kindNames[m.Kind]; !ok {
		return fmt.Errorf("%w: %d", ErrBadKind, b[0])
	}
	m.Cookie = uint16(b[1])<<8 | uint16(b[2])
	m.VCI = atm.VCI(uint16(b[3])<<8 | uint16(b[4]))
	m.NotifyPort = uint16(b[5])<<8 | uint16(b[6])
	m.CallID = uint32(b[7])<<24 | uint32(b[8])<<16 | uint32(b[9])<<8 | uint32(b[10])
	m.FromOrigin = b[11] == 1
	m.PID = uint32(b[12])<<24 | uint32(b[13])<<16 | uint32(b[14])<<8 | uint32(b[15])
	m.TraceID = u64(b[16:24])
	m.SpanID = u64(b[24:32])
	m.Seq = uint32(b[32])<<24 | uint32(b[33])<<16 | uint32(b[34])<<8 | uint32(b[35])
	m.Epoch = uint32(b[36])<<24 | uint32(b[37])<<16 | uint32(b[38])<<8 | uint32(b[39])
	rest := b[fixedLen:]
	var fields [6]string
	for i := range fields {
		raw, tail, err := takeBytes(rest)
		if err != nil {
			*m = Msg{}
			return err
		}
		fields[i] = d.str(raw)
		rest = tail
	}
	m.Service = fields[0]
	m.Dest = atm.Addr(fields[1])
	m.Src = atm.Addr(fields[2])
	m.QoS = fields[3]
	m.Comment = fields[4]
	m.Reason = fields[5]
	return nil
}

func takeBytes(b []byte) ([]byte, []byte, error) {
	if len(b) < 2 {
		return nil, nil, ErrShort
	}
	n := int(b[0])<<8 | int(b[1])
	if len(b) < 2+n {
		return nil, nil, ErrShort
	}
	return b[2 : 2+n], b[2+n:], nil
}
