package sigmsg

import (
	"testing"

	"xunet/internal/atm"
)

// Native fuzz targets for the signaling codec. `go test` runs the seed
// corpus; `go test -fuzz=FuzzDecode ./internal/sigmsg` explores further.

func FuzzDecode(f *testing.F) {
	// Seed with every kind plus structural edge cases.
	for k := range kindNames {
		f.Add(Msg{Kind: k, Service: "svc", Dest: "mh.rt", QoS: "cbr:64", Cookie: 7, VCI: 40, CallID: 9}.Encode())
	}
	f.Add([]byte{})
	f.Add([]byte{byte(KindSetup)})
	f.Add(make([]byte, 16))
	f.Fuzz(func(t *testing.T, data []byte) {
		m, err := Decode(data)
		if err != nil {
			return
		}
		// Anything that decodes must re-encode and decode to the same
		// message (canonical round trip).
		again, err := Decode(m.Encode())
		if err != nil {
			t.Fatalf("re-decode failed: %v", err)
		}
		if again != m {
			t.Fatalf("round trip changed message: %+v vs %+v", m, again)
		}
	})
}

func FuzzEncodeDecode(f *testing.F) {
	f.Add(uint8(1), "echo", "mh.rt", "cbr:100", uint16(7), uint16(40), uint32(1), true)
	f.Fuzz(func(t *testing.T, kind uint8, service, dest, qos string, cookie, vci uint16, callID uint32, origin bool) {
		m := Msg{
			Kind: Kind(kind), Service: service, Dest: atm.Addr(dest),
			QoS: qos, Cookie: cookie, VCI: atm.VCI(vci), CallID: callID, FromOrigin: origin,
		}
		got, err := Decode(m.Encode())
		if _, known := kindNames[m.Kind]; !known {
			if err == nil {
				t.Fatal("unknown kind decoded")
			}
			return
		}
		if err != nil {
			t.Fatalf("decode: %v", err)
		}
		if got != m {
			t.Fatalf("round trip: %+v vs %+v", got, m)
		}
	})
}
