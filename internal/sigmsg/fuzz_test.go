package sigmsg

import (
	"testing"

	"xunet/internal/atm"
)

// Native fuzz targets for the signaling codec. `go test` runs the seed
// corpus; `go test -fuzz=FuzzDecode ./internal/sigmsg` explores further.

func FuzzDecode(f *testing.F) {
	// Seed with every kind plus structural edge cases.
	for k := range kindNames {
		f.Add(Msg{Kind: k, Service: "svc", Dest: "mh.rt", QoS: "cbr:64", Cookie: 7, VCI: 40, CallID: 9}.Encode())
	}
	f.Add([]byte{})
	f.Add([]byte{byte(KindSetup)})
	f.Add(make([]byte, 16))
	var dec Decoder
	f.Fuzz(func(t *testing.T, data []byte) {
		m, err := Decode(data)
		// The interning decoder must agree with the one-shot path —
		// same message or same failure — and never panic.
		var mi Msg
		ierr := dec.DecodeInto(&mi, data)
		if (err == nil) != (ierr == nil) || (err == nil && mi != m) {
			t.Fatalf("Decoder disagrees: %v/%v, %+v vs %+v", err, ierr, mi, m)
		}
		if err != nil {
			return
		}
		// Anything that decodes must re-encode and decode to the same
		// message (canonical round trip), and AppendTo must produce
		// exactly Encode's bytes at exactly EncodedSize.
		enc := m.Encode()
		if app := m.AppendTo(make([]byte, 0, 8)); string(enc) != string(app) {
			t.Fatal("AppendTo differs from Encode")
		}
		if len(enc) != m.EncodedSize() {
			t.Fatalf("EncodedSize = %d, encoded %d bytes", m.EncodedSize(), len(enc))
		}
		again, err := Decode(enc)
		if err != nil {
			t.Fatalf("re-decode failed: %v", err)
		}
		if again != m {
			t.Fatalf("round trip changed message: %+v vs %+v", m, again)
		}
	})
}

func FuzzEncodeDecode(f *testing.F) {
	f.Add(uint8(1), "echo", "mh.rt", "cbr:100", uint16(7), uint16(40), uint32(1), true)
	f.Fuzz(func(t *testing.T, kind uint8, service, dest, qos string, cookie, vci uint16, callID uint32, origin bool) {
		m := Msg{
			Kind: Kind(kind), Service: service, Dest: atm.Addr(dest),
			QoS: qos, Cookie: cookie, VCI: atm.VCI(vci), CallID: callID, FromOrigin: origin,
		}
		got, err := Decode(m.Encode())
		if _, known := kindNames[m.Kind]; !known {
			if err == nil {
				t.Fatal("unknown kind decoded")
			}
			return
		}
		if err != nil {
			t.Fatalf("decode: %v", err)
		}
		if got != m {
			t.Fatalf("round trip: %+v vs %+v", got, m)
		}
	})
}
