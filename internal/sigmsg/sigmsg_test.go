package sigmsg

import (
	"errors"
	"strings"
	"testing"
	"testing/quick"

	"xunet/internal/atm"
)

func TestRoundTripAllKinds(t *testing.T) {
	kinds := []Kind{
		KindExportSrv, KindServiceRegs, KindUnexportSrv, KindIncomingConn,
		KindAcceptConn, KindRejectConn, KindVCIForConn, KindConnectReq,
		KindReqID, KindCancelReq, KindConnFailed, KindError,
		KindSetup, KindSetupAck, KindSetupRej, KindConnectDone, KindRelease,
	}
	for _, k := range kinds {
		m := Msg{
			Kind:       k,
			Service:    "file-service",
			Dest:       "mh.rt",
			Src:        "ucb.rt",
			QoS:        "cbr:1536",
			Comment:    "this is a comment",
			Reason:     "because",
			Cookie:     0xBEEF,
			VCI:        atm.VCI(1234),
			NotifyPort: 5001,
			CallID:     0xDEADBEEF,
		}
		got, err := Decode(m.Encode())
		if err != nil {
			t.Fatalf("%v: %v", k, err)
		}
		if got != m {
			t.Fatalf("%v: round trip\n got %+v\nwant %+v", k, got, m)
		}
	}
}

func TestRoundTripEmptyFields(t *testing.T) {
	m := Msg{Kind: KindReqID, Cookie: 7}
	got, err := Decode(m.Encode())
	if err != nil {
		t.Fatal(err)
	}
	if got != m {
		t.Fatalf("got %+v", got)
	}
}

func TestDecodeErrors(t *testing.T) {
	if _, err := Decode(nil); !errors.Is(err, ErrShort) {
		t.Fatalf("nil: %v", err)
	}
	if _, err := Decode(make([]byte, 5)); !errors.Is(err, ErrShort) {
		t.Fatalf("short: %v", err)
	}
	b := Msg{Kind: KindSetup}.Encode()
	b[0] = 200
	if _, err := Decode(b); !errors.Is(err, ErrBadKind) {
		t.Fatalf("bad kind: %v", err)
	}
	// Truncated string section.
	b = Msg{Kind: KindSetup, Service: "abcdef"}.Encode()
	if _, err := Decode(b[:len(b)-3]); !errors.Is(err, ErrShort) {
		t.Fatalf("truncated: %v", err)
	}
}

func TestKindNames(t *testing.T) {
	if KindExportSrv.String() != "EXPORT_SRV" {
		t.Fatal(KindExportSrv.String())
	}
	if KindVCIForConn.String() != "VCI_FOR_CONN" {
		t.Fatal(KindVCIForConn.String())
	}
	if Kind(250).String() != "Kind(250)" {
		t.Fatal(Kind(250).String())
	}
}

func TestStringTrace(t *testing.T) {
	m := Msg{Kind: KindConnectReq, Dest: "mh.rt", Service: "echo", QoS: "cbr:64", Cookie: 9}
	s := m.String()
	for _, want := range []string{"CONNECT_REQ", "svc=echo", "dest=mh.rt", "cookie=9", "qos=cbr:64"} {
		if !strings.Contains(s, want) {
			t.Fatalf("trace %q missing %q", s, want)
		}
	}
}

// Property: every message round-trips.
func TestQuickRoundTrip(t *testing.T) {
	f := func(kindSel uint8, service, dest, src, qos, comment, reason string, cookie, nport uint16, vci uint16, callID uint32) bool {
		kinds := []Kind{KindExportSrv, KindConnectReq, KindSetup, KindRelease, KindVCIForConn}
		m := Msg{
			Kind:       kinds[int(kindSel)%len(kinds)],
			Service:    clip(service),
			Dest:       atm.Addr(clip(dest)),
			Src:        atm.Addr(clip(src)),
			QoS:        clip(qos),
			Comment:    clip(comment),
			Reason:     clip(reason),
			Cookie:     cookie,
			VCI:        atm.VCI(vci),
			NotifyPort: nport,
			CallID:     callID,
		}
		got, err := Decode(m.Encode())
		return err == nil && got == m
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: Decode never panics on arbitrary bytes.
func TestQuickDecodeRobust(t *testing.T) {
	f := func(b []byte) bool {
		_, _ = Decode(b)
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func clip(s string) string {
	if len(s) > 60000 {
		return s[:60000]
	}
	return s
}

// The codec's steady state must be allocation-free: AppendTo into a
// warm buffer and DecodeInto through a warm intern table are the per-
// message costs on every signaling hot path.
func TestCodecSteadyStateAllocs(t *testing.T) {
	m := Msg{
		Kind: KindSetup, Service: "echo", Dest: "ucb.rt", Src: "mh.rt",
		QoS: "cbr:64", Cookie: 7, VCI: 40, CallID: 9, Seq: 3, Epoch: 1,
	}
	buf := make([]byte, 0, m.EncodedSize())
	var dec Decoder
	var out Msg
	// Warm the intern table.
	buf = m.AppendTo(buf[:0])
	if err := dec.DecodeInto(&out, buf); err != nil {
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(200, func() {
		buf = m.AppendTo(buf[:0])
		if err := dec.DecodeInto(&out, buf); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Fatalf("encode+decode steady state allocates %.1f/op, want 0", allocs)
	}
	if out != m {
		t.Fatalf("round trip changed message: %+v vs %+v", m, out)
	}
}
