package signaling

import (
	"fmt"
	"time"

	"xunet/internal/anand"
	"xunet/internal/atm"
	"xunet/internal/core"
	"xunet/internal/faults"
	"xunet/internal/kern"
	"xunet/internal/memnet"
	"xunet/internal/pfxunet"
	"xunet/internal/prof"
	"xunet/internal/qos"
	"xunet/internal/sigmsg"
	"xunet/internal/sim"
	"xunet/internal/trace"
	"xunet/internal/xswitch"
)

// SimHost runs a Sighost on a simulated router: an actor process
// draining an inbox of closures, fed by the SigPort listener, the local
// pseudo-device, the anand server, and per-peer PVC readers. All
// handler execution is serialized through the actor, preserving the
// paper's single-threaded select()-driven daemon structure.
type SimHost struct {
	SH     *Sighost
	Stack  *core.Stack
	Fabric *xswitch.Fabric
	Anand  *anand.Server

	// Faults, when non-nil, filters outbound peer signaling messages
	// (loss/duplication/extra delay on the PVC) — the direct "N%
	// signaling loss" knob of the chaos experiments.
	Faults *faults.Plane

	inbox *sim.Queue[func()]
	actor *sim.Proc
	peers map[atm.Addr]*pfxunet.Socket
	env   *simEnv
}

// Crash kills the signaling entity in actor context: all state is lost
// and every subsequent input is dropped until Recover. The PVC readers,
// listeners, and device pumps stay up — they model the machine, not the
// process.
func (h *SimHost) Crash() { h.inbox.Put(func() { h.SH.Crash() }) }

// Recover restarts the entity in actor context (journal replay,
// remaining-deadline bind timers, teardown of calls lost mid-setup).
func (h *SimHost) Recover() { h.inbox.Put(func() { h.SH.Recover() }) }

// CrashFor crashes the entity now and schedules its recovery after d.
func (h *SimHost) CrashFor(d time.Duration) {
	h.Crash()
	h.Stack.M.E.Schedule(d, func() { h.Recover() })
}

// signalingPVCQoS reserves a little guaranteed bandwidth for each
// signaling PVC.
var signalingPVCQoS = qos.QoS{Class: qos.CBR, BandwidthKbs: 64}

// StartSim launches a signaling entity on a router stack. The entity's
// cost model derives from the machine's. Call ConnectSighosts to join
// entities with signaling PVCs before establishing inter-router calls.
func StartSim(stack *core.Stack, fab *xswitch.Fabric) *SimHost {
	h := &SimHost{
		Stack:  stack,
		Fabric: fab,
		inbox:  sim.NewQueue[func()](stack.M.E),
		peers:  make(map[atm.Addr]*pfxunet.Socket),
	}
	h.env = &simEnv{h: h}
	// Share the machine's registry so sighost metrics land next to the
	// kernel/device/shaper metrics in one mgmt-visible snapshot.
	h.SH = NewWithObs(h.env, CostModel{
		ContextSwitch:   stack.M.CM.ContextSwitch,
		CallLogging:     stack.M.CM.CallLogging,
		TeardownLogging: stack.M.CM.CallLogging / 5,
		BindTimeout:     stack.M.CM.BindTimeout,
		LoggingEnabled:  true,
	}, stack.M.Obs)
	// The machine's collector (shared testbed-wide) receives the span
	// tree; nil leaves tracing off.
	h.SH.TraceC = stack.M.TraceC
	e := stack.M.E

	// Actor loop.
	h.actor = e.Go(stack.M.Name+"/sighost", func(p *sim.Proc) {
		for {
			fn, ok := h.inbox.Get(p)
			if !ok {
				return
			}
			fn()
		}
	})

	// Application RPC listener on the well-known signaling port.
	e.Go(stack.M.Name+"/sighost-listen", func(p *sim.Proc) {
		l, err := stack.M.IP.ListenStream(SigPort)
		if err != nil {
			return
		}
		for {
			conn, ok := l.Accept(p)
			if !ok {
				return
			}
			h.pumpConn(conn, conn.RemoteAddr())
		}
	})

	// Local pseudo-device reader (the router's own kernel indications).
	// The handoff is synchronous: the reader does not take the next
	// message off the device until the actor has processed the current
	// one, exactly like a select()-driven daemon. While the daemon is
	// busy, indications back up in the device's bounded buffer — the
	// loss mechanism of §10.
	e.Go(stack.M.Name+"/sighost-anand", func(p *sim.Proc) {
		for {
			k, ok := stack.M.Dev.ReadUp(p)
			if !ok {
				return
			}
			from := stack.M.IP.Addr
			msg := k
			h.inbox.Put(func() {
				h.SH.HandleKernel(from, msg)
				p.Unpark()
			})
			p.Park()
		}
	})

	// anand server for IP-connected hosts.
	srv, err := anand.StartServer(stack, AnandPort)
	if err == nil {
		h.Anand = srv
		srv.OnKernel = func(from memnet.IPAddr, k kern.KMsg) {
			h.inbox.Put(func() { h.SH.HandleKernel(from, k) })
		}
	}
	return h
}

// pumpConn spawns a reader that feeds messages from an IPC stream into
// the actor.
func (h *SimHost) pumpConn(conn *memnet.Stream, from memnet.IPAddr) {
	h.Stack.M.E.Go(h.Stack.M.Name+"/sighost-conn", func(p *sim.Proc) {
		// One decoder per pump: interned strings and no per-message
		// garbage on the application RPC path.
		var dec sigmsg.Decoder
		var m sigmsg.Msg
		for {
			b, ok := conn.Recv(p)
			if !ok {
				return
			}
			if err := dec.DecodeInto(&m, b); err != nil {
				continue
			}
			c := simConn{h: h, s: conn}
			msg := m
			h.inbox.Put(func() { h.SH.HandleApp(c, from, msg) })
		}
	})
}

// ConnectSighosts provisions duplex signaling PVCs between two
// entities and starts their PVC reader processes.
func ConnectSighosts(a, b *SimHost) error {
	if err := connectOneWay(a, b); err != nil {
		return err
	}
	if err := connectOneWay(b, a); err != nil {
		return err
	}
	// With reliability armed, pre-create each side's peer link so its
	// retransmit-backlog metric exists from the start of the run.
	a.SH.PrimePeer(b.Stack.Addr)
	b.SH.PrimePeer(a.Stack.Addr)
	return nil
}

// connectOneWay builds the a-to-b signaling PVC.
func connectOneWay(a, b *SimHost) error {
	vc, err := a.Fabric.SetupVC(a.Stack.Addr, b.Stack.Addr, signalingPVCQoS)
	if err != nil {
		return fmt.Errorf("signaling: PVC %s->%s: %w", a.Stack.Addr, b.Stack.Addr, err)
	}
	a.SH.AllowPVC(vc.SrcVCI)
	b.SH.AllowPVC(vc.DstVCI)
	// Sender side: a PF_XUNET socket connected to the PVC.
	a.Stack.M.Spawn("sighost-pvc-tx", func(p *kern.Proc) {
		s, err := a.Stack.PF.Socket(p)
		if err != nil {
			return
		}
		if err := s.Connect(vc.SrcVCI, 0); err != nil {
			return
		}
		a.peers[b.Stack.Addr] = s
		p.SP.Park() // hold the socket open for the daemon's lifetime
	})
	// Receiver side: a PF_XUNET socket bound to the PVC, pumping frames
	// into b's actor.
	from := a.Stack.Addr
	b.Stack.M.Spawn("sighost-pvc-rx", func(p *kern.Proc) {
		s, err := b.Stack.PF.Socket(p)
		if err != nil {
			return
		}
		if err := s.Bind(vc.DstVCI, 0); err != nil {
			return
		}
		var dec sigmsg.Decoder
		var m sigmsg.Msg
		for {
			raw, err := s.Recv()
			if err != nil {
				return
			}
			if err := dec.DecodeInto(&m, raw); err != nil {
				continue
			}
			msg := m
			b.inbox.Put(func() { b.SH.HandlePeer(from, msg) })
		}
	})
	return nil
}

// simConn adapts a memnet stream to the signaling Conn interface. Send
// runs in actor context, so it may borrow the env's scratch buffer
// (Stream.Send copies the frame before returning).
type simConn struct {
	h *SimHost
	s *memnet.Stream
}

func (c simConn) Send(m sigmsg.Msg) error {
	if c.h != nil {
		return c.s.Send(c.h.env.enc(&m))
	}
	return c.s.Send(m.Encode())
}
func (c simConn) Close() { c.s.Close() }

// simEnv implements Env on the simulation.
type simEnv struct {
	h *SimHost
	// txBuf is the encode scratch for actor-context sends; every
	// consumer copies the frame synchronously, so one buffer serves all.
	txBuf []byte
	// lblTimer caches interned profiler labels per timer class (see
	// timerLabel); nil until a profiler is attached and a timer arms.
	lblTimer map[string]prof.LabelID
}

// enc encodes m into the reusable scratch buffer.
func (e *simEnv) enc(m *sigmsg.Msg) []byte {
	e.txBuf = m.AppendTo(e.txBuf[:0])
	return e.txBuf
}

func (e *simEnv) Addr() atm.Addr         { return e.h.Stack.Addr }
func (e *simEnv) LocalIP() memnet.IPAddr { return e.h.Stack.M.IP.Addr }
func (e *simEnv) Rand16() uint16         { return uint16(e.h.Stack.M.E.Rand().Uint64()) }
func (e *simEnv) Now() time.Duration     { return e.h.Stack.M.E.Now() }

// Charge makes the actor busy for d; events queue behind it, exactly as
// a single-threaded daemon backs up.
func (e *simEnv) Charge(d time.Duration) {
	if d > 0 {
		e.h.actor.Sleep(d)
	}
}

func (e *simEnv) After(d time.Duration, what string, fn func()) CancelFunc {
	canceled := false
	eng := e.h.Stack.M.E
	t := eng.ScheduleL(d, e.timerLabel(eng, what), func() {
		e.h.inbox.Put(func() {
			if !canceled {
				fn()
			}
		})
	})
	return func() {
		canceled = true
		t.Stop()
	}
}

// timerLabel resolves the profiler label for a sighost timer class
// ("rel.rto", "rel.keepalive", "bind.timeout" → "sighost.<what>").
// The per-env cache keeps the armed-profiler path allocation-free
// after each class's first arm; with no profiler it is one nil check.
func (e *simEnv) timerLabel(eng *sim.Engine, what string) prof.LabelID {
	p := eng.Prof()
	if p == nil {
		return 0
	}
	if l, ok := e.lblTimer[what]; ok {
		return l
	}
	if e.lblTimer == nil {
		e.lblTimer = make(map[string]prof.LabelID, 4)
	}
	l := p.Label("sighost." + what)
	e.lblTimer[what] = l
	return l
}

func (e *simEnv) SendPeer(dst atm.Addr, m sigmsg.Msg) error {
	if dst == e.h.Stack.Addr {
		h := e.h
		h.inbox.Put(func() { h.SH.HandlePeer(dst, m) })
		return nil
	}
	sock, ok := e.h.peers[dst]
	if !ok {
		return fmt.Errorf("signaling: no PVC to %s", dst)
	}
	// The message's own trace context (if any) parents the PVC frame's
	// transit span — the PVC socket is shared by many calls, so the
	// context is per-message, not per-socket.
	tc := trace.Context{Trace: m.TraceID, Span: m.SpanID}
	if fp := e.h.Faults; fp != nil {
		v := fp.SigMsg(tc)
		if v.Drop {
			return nil // swallowed by the wire; reliability must repair it
		}
		if v.ExtraDelay > 0 {
			// Deferred send: the scratch buffer would be overwritten by
			// then, so this copy must be private.
			raw := m.Encode()
			e.h.Stack.M.E.Schedule(v.ExtraDelay, func() { _ = sock.SendTraced(raw, tc) })
			return nil
		}
		if v.Dup {
			_ = sock.SendTraced(e.enc(&m), tc)
		}
	}
	return sock.SendTraced(e.enc(&m), tc)
}

// SendPeerRaw sends a cached frame without re-encoding. It draws exactly
// the same fault-plane verdict sequence as SendPeer, so switching the
// retransmit path to cached frames leaves chaos runs bit-identical.
func (e *simEnv) SendPeerRaw(dst atm.Addr, m sigmsg.Msg, raw []byte) error {
	if dst == e.h.Stack.Addr {
		h := e.h
		h.inbox.Put(func() { h.SH.HandlePeer(dst, m) })
		return nil
	}
	sock, ok := e.h.peers[dst]
	if !ok {
		return fmt.Errorf("signaling: no PVC to %s", dst)
	}
	tc := trace.Context{Trace: m.TraceID, Span: m.SpanID}
	if fp := e.h.Faults; fp != nil {
		v := fp.SigMsg(tc)
		if v.Drop {
			return nil // swallowed by the wire; reliability must repair it
		}
		if v.ExtraDelay > 0 {
			// The caller may overwrite raw once we return; the deferred
			// send needs its own copy.
			cp := append([]byte(nil), raw...)
			e.h.Stack.M.E.Schedule(v.ExtraDelay, func() { _ = sock.SendTraced(cp, tc) })
			return nil
		}
		if v.Dup {
			_ = sock.SendTraced(raw, tc)
		}
	}
	return sock.SendTraced(raw, tc)
}

func (e *simEnv) Dial(ip memnet.IPAddr, port uint16, cb func(Conn, error)) {
	h := e.h
	h.Stack.M.E.Go(h.Stack.M.Name+"/sighost-dial", func(p *sim.Proc) {
		conn, err := h.Stack.M.IP.DialStream(p, ip, port)
		if err != nil {
			h.inbox.Put(func() { cb(nil, err) })
			return
		}
		h.inbox.Put(func() { cb(simConn{h: h, s: conn}, nil) })
		// Keep pumping replies (ACCEPT_CONN etc.) into the actor.
		var dec sigmsg.Decoder
		var m sigmsg.Msg
		for {
			b, ok := conn.Recv(p)
			if !ok {
				return
			}
			if derr := dec.DecodeInto(&m, b); derr != nil {
				continue
			}
			msg := m
			h.inbox.Put(func() { h.SH.HandleApp(simConn{h: h, s: conn}, ip, msg) })
		}
	})
}

func (e *simEnv) SetupVC(dst atm.Addr, q qos.QoS) (*VCHandle, error) {
	vc, err := e.h.Fabric.SetupVC(e.h.Stack.Addr, dst, q)
	if err != nil {
		return nil, err
	}
	return &VCHandle{
		SrcVCI:  vc.SrcVCI,
		DstVCI:  vc.DstVCI,
		Cost:    vc.SetupCost(),
		Release: vc.Release,
	}, nil
}

func (e *simEnv) KernelDisconnect(endpoint memnet.IPAddr, vci atm.VCI) {
	if endpoint == e.h.Stack.M.IP.Addr || endpoint == 0 {
		e.h.Stack.M.Dev.WriteDown(kern.DownCmd{Kind: kern.DownDisconnect, VCI: vci})
		return
	}
	if e.h.Anand != nil {
		e.h.Anand.Disconnect(endpoint, vci)
	}
}
