package signaling_test

// The rtbench tier's signaling half: wall-clock call-setup throughput
// across two real daemons on the loopback — TCP RPC from the apps, the
// batched UDP carrier between the sighosts, real notify dials — the
// end-to-end "native-mode call" cost the paper measures in §6. Run via
// `make rtbench` with -count 3; benchjson medians smooth scheduler
// noise.

import (
	"net"
	"testing"
	"time"

	"xunet/internal/atm"
	"xunet/internal/kern"
	"xunet/internal/memnet"
	"xunet/internal/signaling"
)

func benchSetups(b *testing.B, unbatched bool) {
	a, hostB := startPeerPair(b,
		signaling.PeerNetConfig{Unbatched: unbatched},
		signaling.PeerNetConfig{Unbatched: unbatched})

	srvC := &signaling.RealClient{SighostAddr: hostB.ListenAddr()}
	srvL, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		b.Fatal(err)
	}
	defer srvL.Close()
	if err := srvC.ExportService("echo", uint16(srvL.Addr().(*net.TCPAddr).Port)); err != nil {
		b.Fatal(err)
	}
	// Server app: accept every incoming call until the listener closes,
	// reporting each grant so the bench loop can bind and close it.
	type srvGrant struct {
		vci    atm.VCI
		cookie uint16
	}
	grants := make(chan srvGrant, 1)
	go func() {
		for {
			req, err := signaling.AwaitServiceRequest(srvL)
			if err != nil {
				return
			}
			req.ReplyTimeout = 30 * time.Second
			vci, _, err := req.Accept("")
			if err != nil {
				return
			}
			grants <- srvGrant{vci: vci, cookie: req.Cookie}
		}
	}()

	cliC := &signaling.RealClient{SighostAddr: a.ListenAddr(), EstablishTimeout: 30 * time.Second}
	cliL, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		b.Fatal(err)
	}
	defer cliL.Close()
	cliPort := uint16(cliL.Addr().(*net.TCPAddr).Port)
	ip := memnet.IP4(127, 0, 0, 1)

	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		conn, err := cliC.OpenConnection("b.rt", "echo", cliL, cliPort, "", "cbr:100")
		if err != nil {
			b.Fatal(err)
		}
		g := <-grants
		// The kernel half of the lifecycle (there is no ATM driver on a
		// bench host): connect and bind authenticate the granted VCIs,
		// close tears the call down end to end — the release crosses
		// the carrier and recycles both daemons' VCIs (pools are 32
		// deep, so teardown must be part of the measured cycle).
		a.Do(func() {
			a.SH.HandleKernel(ip, kern.KMsg{Kind: kern.MsgConnect, VCI: conn.VCI, Cookie: conn.Cookie})
		})
		hostB.Do(func() {
			hostB.SH.HandleKernel(ip, kern.KMsg{Kind: kern.MsgBind, VCI: g.vci, Cookie: g.cookie})
		})
		a.Do(func() {
			a.SH.HandleKernel(ip, kern.KMsg{Kind: kern.MsgClose, VCI: conn.VCI})
		})
	}
	b.StopTimer()
	b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "setups/s")
}

func BenchmarkRealSetups(b *testing.B) {
	b.Run("batched", func(b *testing.B) {
		a, _ := startPeerPair(b, signaling.PeerNetConfig{}, signaling.PeerNetConfig{})
		if !a.PeerNet().Batched() {
			b.Skip("no sendmmsg/recvmmsg on this platform")
		}
		benchSetups(b, false)
	})
	b.Run("fallback", func(b *testing.B) {
		benchSetups(b, true)
	})
}
