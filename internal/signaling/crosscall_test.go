package signaling_test

import (
	"testing"
	"time"

	"xunet/internal/kern"
	"xunet/internal/testbed"
)

// TestCrossCallsSameID is the direct regression test for the RELEASE
// ambiguity documented in DESIGN.md §7: routers A and B each originate
// their *first* call (callID 1 on both sides) toward the other, at the
// same time. Tearing one call down must not disturb the other — without
// the FromOrigin flag on RELEASE, B would tear down its own outgoing
// call when A releases A's.
func TestCrossCallsSameID(t *testing.T) {
	n, ra, rb, _ := testbed.NewTestbed(testbed.Options{FDTableSize: kern.FixedFDTableSize})
	testbed.StartEchoServer(ra, "echo-a", 6000)
	srvB := testbed.StartEchoServer(rb, "echo-b", 6000)

	// A's client: short call, closes early (this RELEASE once broke B's
	// call of the same ID).
	var resA testbed.CallResult
	ra.Stack.Spawn("client-a", func(p *kern.Proc) {
		p.SP.Sleep(100 * time.Millisecond)
		resA = testbed.OpenAndUse(ra, p, "ucb.rt", "echo-b", 7000, "", 1, func(p *kern.Proc) {
			p.SP.Sleep(500 * time.Millisecond)
		})
	})
	// B's client: long call that must survive A's teardown and keep
	// passing data afterwards.
	var lateSendErr error
	var resB testbed.CallResult
	rb.Stack.Spawn("client-b", func(p *kern.Proc) {
		p.SP.Sleep(100 * time.Millisecond)
		conn, err := rb.Lib.OpenConnection(p, "mh.rt", "echo-a", 7000, "", "")
		if err != nil {
			resB.Err = err
			return
		}
		resB.OK = true
		sock, _ := rb.Stack.PF.Socket(p)
		if err := sock.Connect(conn.VCI, conn.Cookie); err != nil {
			resB.Err = err
			return
		}
		p.SP.Sleep(100 * time.Millisecond)
		_ = sock.Send([]byte("before"))
		// Wait until well after A's call has been torn down.
		p.SP.Sleep(3 * time.Second)
		lateSendErr = sock.Send([]byte("after A's teardown"))
		p.SP.Sleep(200 * time.Millisecond)
		sock.Close()
	})
	n.E.RunUntil(2 * n.CM.BindTimeout)
	if resA.Err != nil || !resA.OK {
		t.Fatalf("call A: %+v", resA)
	}
	if resB.Err != nil || !resB.OK {
		t.Fatalf("call B: %+v", resB)
	}
	if lateSendErr != nil {
		t.Fatalf("call B was collaterally torn down by call A's RELEASE: %v", lateSendErr)
	}
	if srvB.Received != 1 {
		t.Fatalf("server B received %d", srvB.Received)
	}
	for _, r := range []*testbed.Router{ra, rb} {
		if msg := testbed.Quiesced(r); msg != "" {
			t.Fatal(msg)
		}
	}
	n.E.Shutdown()
}

// TestBidirectionalStorm runs storms in both directions at once — the
// sustained version of the cross-call scenario.
func TestBidirectionalStorm(t *testing.T) {
	n, ra, rb, _ := testbed.NewTestbed(testbed.Options{FDTableSize: kern.FixedFDTableSize})
	testbed.StartEchoServer(ra, "echo-a", 6000)
	testbed.StartEchoServer(rb, "echo-b", 6000)
	n.E.RunUntil(time.Second)
	resAB := testbed.CallStorm(ra, "ucb.rt", "echo-b", testbed.StormConfig{
		Count: 30, Hold: time.Second, BasePort: 20000,
	})
	resBA := testbed.CallStorm(rb, "mh.rt", "echo-a", testbed.StormConfig{
		Count: 30, Hold: time.Second, BasePort: 21000,
	})
	n.E.RunUntil(n.E.Now() + 4*n.CM.BindTimeout)
	if resAB.Succeeded != 30 || resBA.Succeeded != 30 {
		t.Fatalf("succeeded %d/%d", resAB.Succeeded, resBA.Succeeded)
	}
	for _, r := range []*testbed.Router{ra, rb} {
		if msg := testbed.Quiesced(r); msg != "" {
			t.Fatal(msg)
		}
	}
	if n.Fabric.ActiveVCs() != 2 {
		t.Fatalf("VCs = %d", n.Fabric.ActiveVCs())
	}
	n.E.Shutdown()
}
