package signaling_test

import (
	"net"
	"strings"
	"testing"

	"xunet/internal/signaling"
)

// These tests exercise the real-TCP deployment of the signaling entity
// over the loopback interface: the same state machine as the simulated
// world, driven by actual sockets.

func startReal(t *testing.T) *signaling.RealHost {
	t.Helper()
	h, err := signaling.StartReal("mh.rt", "127.0.0.1:0")
	if err != nil {
		t.Skipf("loopback TCP unavailable: %v", err)
	}
	t.Cleanup(h.Close)
	return h
}

func TestRealRegisterService(t *testing.T) {
	h := startReal(t)
	c := &signaling.RealClient{SighostAddr: h.ListenAddr()}
	if err := c.ExportService("file-service", 19001); err != nil {
		t.Fatal(err)
	}
	svc, _, _, _, _ := h.SH.ListSizes()
	if svc != 1 {
		t.Fatalf("service_list = %d", svc)
	}
}

func TestRealLocalCallEndToEnd(t *testing.T) {
	h := startReal(t)
	c := &signaling.RealClient{SighostAddr: h.ListenAddr()}

	// Server side: register, then accept one call.
	srvL, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srvL.Close()
	srvPort := uint16(srvL.Addr().(*net.TCPAddr).Port)
	if err := c.ExportService("echo", srvPort); err != nil {
		t.Fatal(err)
	}
	type srvResult struct {
		vci  uint16
		qos  string
		err  error
		qreq string
	}
	srvCh := make(chan srvResult, 1)
	go func() {
		req, err := signaling.AwaitServiceRequest(srvL)
		if err != nil {
			srvCh <- srvResult{err: err}
			return
		}
		vci, granted, err := req.Accept("cbr:500")
		srvCh <- srvResult{vci: uint16(vci), qos: granted, err: err, qreq: req.QoS}
	}()

	// Client side.
	cliL, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer cliL.Close()
	cliPort := uint16(cliL.Addr().(*net.TCPAddr).Port)
	conn, err := c.OpenConnection("mh.rt", "echo", cliL, cliPort, "real demo", "cbr:1000")
	if err != nil {
		t.Fatal(err)
	}
	sr := <-srvCh
	if sr.err != nil {
		t.Fatal(sr.err)
	}
	if conn.VCI == 0 || uint16(conn.VCI) != sr.vci {
		t.Fatalf("VCIs differ: client %v server %v", conn.VCI, sr.vci)
	}
	// Negotiation: server countered cbr:1000 with cbr:500.
	if conn.QoS != "cbr:500" || sr.qos != "cbr:500" {
		t.Fatalf("negotiated qos client=%q server=%q", conn.QoS, sr.qos)
	}
	if sr.qreq != "cbr:1000" {
		t.Fatalf("server saw request qos %q", sr.qreq)
	}
}

func TestRealUnknownServiceFails(t *testing.T) {
	h := startReal(t)
	c := &signaling.RealClient{SighostAddr: h.ListenAddr()}
	cliL, _ := net.Listen("tcp", "127.0.0.1:0")
	defer cliL.Close()
	_, err := c.OpenConnection("mh.rt", "ghost", cliL, uint16(cliL.Addr().(*net.TCPAddr).Port), "", "")
	if err == nil || !strings.Contains(err.Error(), "no such service") {
		t.Fatalf("err = %v", err)
	}
}

func TestRealRemoteDestinationRejected(t *testing.T) {
	// The standalone daemon has no PVC mesh: a call to another router
	// must fail cleanly rather than hang.
	h := startReal(t)
	c := &signaling.RealClient{SighostAddr: h.ListenAddr()}
	srvL, _ := net.Listen("tcp", "127.0.0.1:0")
	defer srvL.Close()
	if err := c.ExportService("echo", uint16(srvL.Addr().(*net.TCPAddr).Port)); err != nil {
		t.Fatal(err)
	}
	cliL, _ := net.Listen("tcp", "127.0.0.1:0")
	defer cliL.Close()
	_, err := c.OpenConnection("ucb.rt", "echo", cliL, uint16(cliL.Addr().(*net.TCPAddr).Port), "", "")
	if err == nil {
		t.Fatal("remote call succeeded on standalone daemon")
	}
}

func TestRealCancelUnknownCookie(t *testing.T) {
	h := startReal(t)
	c := &signaling.RealClient{SighostAddr: h.ListenAddr()}
	if err := c.CancelRequest(0xBEEF); err == nil {
		t.Fatal("cancel of unknown cookie succeeded")
	}
}

func TestRealAdmissionControl(t *testing.T) {
	// The standalone book holds 622,000 kb/s; an over-ask fails and the
	// client hears CONN_FAILED.
	h := startReal(t)
	c := &signaling.RealClient{SighostAddr: h.ListenAddr()}
	srvL, _ := net.Listen("tcp", "127.0.0.1:0")
	defer srvL.Close()
	if err := c.ExportService("big", uint16(srvL.Addr().(*net.TCPAddr).Port)); err != nil {
		t.Fatal(err)
	}
	go func() {
		for {
			req, err := signaling.AwaitServiceRequest(srvL)
			if err != nil {
				return
			}
			req.Accept(req.QoS)
		}
	}()
	cliL, _ := net.Listen("tcp", "127.0.0.1:0")
	defer cliL.Close()
	_, err := c.OpenConnection("mh.rt", "big", cliL, uint16(cliL.Addr().(*net.TCPAddr).Port), "", "cbr:999999999")
	if err == nil || !strings.Contains(err.Error(), "admission") {
		t.Fatalf("err = %v", err)
	}
}
