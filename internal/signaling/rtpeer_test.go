package signaling_test

import (
	"bytes"
	"net"
	"testing"
	"time"

	"xunet/internal/atm"
	"xunet/internal/faults"
	"xunet/internal/rtnet"
	"xunet/internal/signaling"
)

// These tests exercise the cross-host real deployment: two sighost
// daemons on the loopback connected by the batched UDP carrier, with
// applications talking to each over the TCP RPC protocol — the full
// native-mode stack over actual sockets.

func startPeerPair(t testing.TB, cfgA, cfgB signaling.PeerNetConfig) (a, b *signaling.RealHost) {
	t.Helper()
	mk := func(addr atm.Addr, cfg signaling.PeerNetConfig) *signaling.RealHost {
		h, err := signaling.StartReal(addr, "127.0.0.1:0")
		if err != nil {
			t.Skipf("loopback TCP unavailable: %v", err)
		}
		t.Cleanup(h.Close)
		if err := h.EnablePeerNet(cfg); err != nil {
			t.Fatal(err)
		}
		return h
	}
	a = mk("a.rt", cfgA)
	b = mk("b.rt", cfgB)
	if err := a.AddPeer("b.rt", b.PeerNet().Addr()); err != nil {
		t.Fatal(err)
	}
	if err := b.AddPeer("a.rt", a.PeerNet().Addr()); err != nil {
		t.Fatal(err)
	}
	return a, b
}

// runCall drives one full cross-host call: a server app exports service
// "echo" at b, a client app at a opens a connection to it. Returns the
// VCIs each side was granted.
func runCall(t *testing.T, a, b *signaling.RealHost) (cliVCI, srvVCI atm.VCI) {
	t.Helper()
	srvC := &signaling.RealClient{SighostAddr: b.ListenAddr()}
	srvL, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srvL.Close()
	if err := srvC.ExportService("echo", uint16(srvL.Addr().(*net.TCPAddr).Port)); err != nil {
		t.Fatal(err)
	}
	type srvResult struct {
		vci atm.VCI
		qos string
		err error
	}
	srvCh := make(chan srvResult, 1)
	go func() {
		req, err := signaling.AwaitServiceRequest(srvL)
		if err != nil {
			srvCh <- srvResult{err: err}
			return
		}
		req.ReplyTimeout = 30 * time.Second
		vci, granted, err := req.Accept("cbr:500")
		srvCh <- srvResult{vci: vci, qos: granted, err: err}
	}()

	cliC := &signaling.RealClient{SighostAddr: a.ListenAddr(), EstablishTimeout: 30 * time.Second}
	cliL, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer cliL.Close()
	conn, err := cliC.OpenConnection("b.rt", "echo", cliL, uint16(cliL.Addr().(*net.TCPAddr).Port), "cross-host", "cbr:1000")
	if err != nil {
		t.Fatal(err)
	}
	sr := <-srvCh
	if sr.err != nil {
		t.Fatal(sr.err)
	}
	if conn.VCI == 0 || sr.vci == 0 {
		t.Fatalf("zero VCI granted: client %v server %v", conn.VCI, sr.vci)
	}
	if conn.QoS != "cbr:500" || sr.qos != "cbr:500" {
		t.Fatalf("negotiated qos client=%q server=%q, want cbr:500", conn.QoS, sr.qos)
	}
	return conn.VCI, sr.vci
}

func TestRealCrossHostCallOverUDP(t *testing.T) {
	for _, mode := range []struct {
		name      string
		unbatched bool
	}{{"batched", false}, {"fallback", true}} {
		t.Run(mode.name, func(t *testing.T) {
			a, b := startPeerPair(t,
				signaling.PeerNetConfig{Unbatched: mode.unbatched},
				signaling.PeerNetConfig{Unbatched: mode.unbatched})
			runCall(t, a, b)
			// The signaling crossed the carrier, not the loopback
			// shortcut: both daemons sent and received peer frames.
			// (Snapshot in actor context: Func metrics read actor state.)
			for _, h := range []*signaling.RealHost{a, b} {
				h.Do(func() {
					snap := h.SH.Obs.Snapshot()
					if snap.Count("rtnet.tx.frames") == 0 || snap.Count("rtnet.rx.frames") == 0 {
						t.Errorf("%s carrier idle: tx=%d rx=%d", h.Addr,
							snap.Count("rtnet.tx.frames"), snap.Count("rtnet.rx.frames"))
					}
				})
			}
		})
	}
}

// TestRealPeerEncodeOnce is the real-mode mirror of the simulation's
// encode-once assertion: with the route to b blackholed, a's SETUP must
// be retransmitted from the frame cached at first transmission — the
// encode counter stays at one per distinct message while the wire sees
// more sends.
func TestRealPeerEncodeOnce(t *testing.T) {
	a, b := startPeerPair(t, signaling.PeerNetConfig{}, signaling.PeerNetConfig{})
	rel := signaling.RelConfig{
		RTO:             40 * time.Millisecond,
		MaxBackoffShift: 2,
		MaxRetries:      10,
		KeepaliveEvery:  time.Minute,
		KeepaliveMisses: 3,
	}
	a.EnableReliability(rel)
	b.EnableReliability(rel)

	// Blackhole a→b: frames sail into a dead UDP port. Reliability at a
	// keeps retransmitting; healing the route lets a later attempt land.
	if err := a.SetPeerAddr("b.rt", "127.0.0.1:1"); err != nil {
		t.Fatal(err)
	}
	heal := time.AfterFunc(150*time.Millisecond, func() {
		_ = a.SetPeerAddr("b.rt", b.PeerNet().Addr())
	})
	defer heal.Stop()

	runCall(t, a, b)

	a.Do(func() {
		snap := a.SH.Obs.Snapshot()
		// The origin side sends exactly two reliable messages per call:
		// SETUP and CONNECT_DONE.
		if got := snap.Count("sighost.rel.encodes"); got != 2 {
			t.Errorf("encodes = %d, want 2 (SETUP + CONNECT_DONE, retransmits reuse the cached frame)", got)
		}
		if got := snap.Count("sighost.rel.retransmits"); got == 0 {
			t.Error("blackhole produced no retransmissions")
		}
	})
}

// TestRealPeerChaosCallCompletes drives a call through a lossy,
// duplicating peer wire: the same fault plane the simulation's chaos
// runs use, drawing verdicts on the real carrier, repaired by the same
// reliability layer.
func TestRealPeerChaosCallCompletes(t *testing.T) {
	chaos := &faults.Config{SigLoss: 0.25, SigDup: 0.25, Seed: 11}
	a, b := startPeerPair(t,
		signaling.PeerNetConfig{Faults: chaos},
		signaling.PeerNetConfig{Faults: chaos})
	rel := signaling.RelConfig{
		RTO:             30 * time.Millisecond,
		MaxBackoffShift: 3,
		MaxRetries:      12,
		KeepaliveEvery:  time.Minute,
		KeepaliveMisses: 3,
	}
	a.EnableReliability(rel)
	b.EnableReliability(rel)
	runCall(t, a, b)
}

// TestRealPeerDataPathAAL5 sends AAL5 frames between the hosts on the
// VCI a signaled call granted: the native-mode data path the signaling
// exists to set up.
func TestRealPeerDataPathAAL5(t *testing.T) {
	type rxFrame struct {
		vci     atm.VCI
		payload []byte
		err     error
	}
	rxCh := make(chan rxFrame, 16)
	var rxLink rtnet.AAL5Link // receive side; owned by b's rx pump
	a, b := startPeerPair(t, signaling.PeerNetConfig{}, signaling.PeerNetConfig{
		OnData: func(from *rtnet.Peer, vci atm.VCI, payload []byte) {
			p, err := rxLink.Recv(payload)
			// payload aliases the carrier's rx buffers; copy out.
			rxCh <- rxFrame{vci: vci, payload: append([]byte(nil), p...), err: err}
		},
	})
	cliVCI, _ := runCall(t, a, b)

	peer := a.PeerNet().PeerByName("b.rt")
	if peer == nil {
		t.Fatal("no carrier peer for b.rt")
	}
	tx := &rtnet.AAL5Link{P: peer, VCI: cliVCI}
	msgs := [][]byte{[]byte("native-mode"), []byte("atm"), bytes.Repeat([]byte{0xAB}, 4000)}
	for _, m := range msgs {
		if err := tx.Send(m); err != nil {
			t.Fatal(err)
		}
	}
	if err := peer.Flush(); err != nil {
		t.Fatal(err)
	}
	for i, want := range msgs {
		select {
		case got := <-rxCh:
			if got.err != nil {
				t.Fatalf("frame %d: %v", i, got.err)
			}
			if got.vci != cliVCI {
				t.Fatalf("frame %d vci = %v, want %v", i, got.vci, cliVCI)
			}
			if !bytes.Equal(got.payload, want) {
				t.Fatalf("frame %d payload mismatch (%d vs %d bytes)", i, len(got.payload), len(want))
			}
		case <-time.After(10 * time.Second):
			t.Fatalf("frame %d never arrived", i)
		}
	}
}
