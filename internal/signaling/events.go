package signaling

import (
	"fmt"

	"xunet/internal/obs"
)

// Event kinds sighost publishes to its machine's obs ring. Events carry the
// underlying protocol message in Event.Data (a sigmsg.Msg or kern.KMsg) and
// typed VCI/CallID/Cookie fields for filtering without string parsing.
const (
	EvAppRx    = "app.rx"    // application -> sighost RPC received
	EvAppTx    = "app.tx"    // sighost -> application reply sent
	EvPeerTx   = "peer.tx"   // sighost -> peer signaling message sent
	EvPeerRx   = "peer.rx"   // peer -> sighost signaling message received
	EvKernRx   = "kern.rx"   // kernel pseudo-device indication received
	EvTeardown = "teardown"  // call released
	EvBindOK   = "bind.ok"   // bind/connect authenticated, wait_for_bind cleared
	EvBindTime = "bind.fire" // wait_for_bind timer fired

	// Reliability and recovery events (rendered generically; the legacy
	// golden format above never sees them because reliability is opt-in).
	EvRelRetx    = "rel.retx"    // peer message retransmitted
	EvRelExhaust = "rel.exhaust" // retry budget exhausted
	EvRelDup     = "rel.dup"     // duplicate peer message suppressed
	EvPeerDead   = "peer.dead"   // keepalive miss threshold crossed
	EvCrash      = "crash"       // sighost crashed (state lost)
	EvRecover    = "recover"     // sighost recovered from journal
)

// teardownInfo rides in Event.Data for EvTeardown events.
type teardownInfo struct {
	origin bool
	reason string
}

// eventString renders an event in the exact legacy Trace format that the
// Figure 3/4 golden tests (and any external log scrapers) depend on. New
// event kinds fall through to the generic obs.Event rendering.
func eventString(ev obs.Event) string {
	switch ev.Kind {
	case EvAppRx:
		return fmt.Sprintf("app->sighost %v", ev.Data)
	case EvAppTx:
		return fmt.Sprintf("sighost->app %v", ev.Data)
	case EvPeerTx:
		return fmt.Sprintf("peer->%s %v", ev.Peer, ev.Data)
	case EvPeerRx:
		return fmt.Sprintf("peer<-%s %v", ev.Peer, ev.Data)
	case EvKernRx:
		return fmt.Sprintf("kernel<-%s %v", ev.Peer, ev.Data)
	case EvTeardown:
		ti, _ := ev.Data.(teardownInfo)
		return fmt.Sprintf("teardown call=%d origin=%v reason=%q", ev.CallID, ti.origin, ti.reason)
	case EvBindOK:
		return fmt.Sprintf("bind ok vci=%d", ev.VCI)
	case EvBindTime:
		return fmt.Sprintf("bind timeout vci=%d call=%d", ev.VCI, ev.CallID)
	}
	return ev.String()
}
