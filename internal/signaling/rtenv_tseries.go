package signaling

import (
	"time"

	"xunet/internal/obs"
	"xunet/internal/obs/tseries"
)

// This file arms continuous telemetry on the real-mode daemon: the same
// tseries.Store the sim testbed scrapes on virtual-time ticks runs here
// off a wall-clock ticker, with each scrape posted into the actor so
// read-through metrics see coherent state. The scrape also samples Go
// runtime health (heap, goroutines, GC pauses) — the daemon shares its
// machine with the workload, so its own footprint is an operational
// signal in a way the deterministic sim tier's never is.

// EnableTSeries starts wall-clock scraping into a new store and wires
// the MGMT tseries/health queries to it. Call once, after StartReal;
// the ticker stops when the host closes.
func (h *RealHost) EnableTSeries(cfg tseries.Config) *tseries.Store {
	st := tseries.New(cfg)
	rs := obs.NewRuntimeSampler(h.SH.Obs)
	// The daemon's registry names already carry their component prefixes
	// (sighost.*, go.*); runtime metrics registered above are adopted by
	// the store's first scan here.
	st.TrackRegistry("", h.SH.Obs)
	h.SH.TSeriesInfo = st.Text
	h.SH.TSeriesJSON = st.JSON
	h.SH.HealthInfo = st.HealthText
	h.SH.HealthJSON = st.HealthJSON
	h.wg.Add(1)
	go func() {
		defer h.wg.Done()
		t := time.NewTicker(st.Interval())
		defer t.Stop()
		for {
			select {
			case <-t.C:
				h.post(func() {
					rs.Sample()
					st.Tick(time.Since(h.started))
				})
			case <-h.quit:
				return
			}
		}
	}()
	return st
}

// OpenMetrics renders the daemon's registry in the OpenMetrics text
// exposition format, snapshotting in actor context so read-through
// metrics are coherent. Returns "" if the host is closing.
func (h *RealHost) OpenMetrics() string {
	done := make(chan string, 1)
	h.post(func() { done <- h.SH.Obs.Snapshot().OpenMetrics() })
	select {
	case s := <-done:
		return s
	case <-h.quit:
		return ""
	}
}
