package signaling

import (
	"time"

	"xunet/internal/atm"
	"xunet/internal/memnet"
	"xunet/internal/obs"
)

// Crash-recovery for the signaling entity. sighost's state is exactly
// the five lists of §7.3 plus the per-VCI cookie table, so a bounded
// write-ahead journal of list transitions is enough to rebuild it: on
// restart the journal is replayed, wait_for_bind timers are re-armed
// with their REMAINING (not full) deadlines, and calls that were still
// mid-establishment are torn down with the paper's disconnect
// indications, since their in-flight handshakes died with the process.
//
// The journal is an in-memory append log standing in for the disk log a
// real daemon would write (the sim has no filesystem); it survives
// Crash() because it models persistent storage. Entries for dead calls
// are compacted away once the log exceeds its bound, keeping it
// proportional to live state. VC handles are journaled by reference as
// a stand-in for re-resolving the circuit from the switch tables on
// restart (DESIGN.md §11 records the substitution).

type jop uint8

const (
	jExport jop = iota + 1
	jUnexport
	jOpen  // call created (either side)
	jGrant // VCI + cookie handed out, bind timer armed
	jBound // bind authenticated, entry moved to VCI_mapping
	jEnd   // call released (any path)
)

// jrec is one journal record; fields beyond op/key are op-specific.
type jrec struct {
	op      jop
	key     callKey
	service string
	ip      memnet.IPAddr
	port    uint16
	qos     string
	cookie  uint16
	vci     atm.VCI
	// deadline is the ABSOLUTE bind deadline (sim clock), so recovery
	// can re-arm the timer with only the remaining allowance.
	deadline time.Duration
	vc       *VCHandle
}

// journal is the bounded write-ahead log.
type journal struct {
	recs []jrec
	cap  int
	// generation counts recoveries; it seeds the reliability epoch so
	// peers can tell a new incarnation's messages from stale ones.
	generation uint32
	// lastCallID persists the allocator so a recovered sighost never
	// reuses a call ID that a peer may still hold state for.
	lastCallID uint32

	appends     *obs.Counter // sighost.journal.appends
	compactions *obs.Counter // sighost.journal.compactions
}

// EnableJournal attaches a write-ahead journal with the given record
// bound (<=0 selects 4096) and enables Crash/Recover.
func (sh *Sighost) EnableJournal(bound int) {
	if bound <= 0 {
		bound = 4096
	}
	sh.jr = &journal{
		cap:         bound,
		appends:     sh.Obs.Counter("sighost.journal.appends"),
		compactions: sh.Obs.Counter("sighost.journal.compactions"),
	}
}

// jlog appends one record, compacting first if the log hit its bound.
func (sh *Sighost) jlog(r jrec) {
	j := sh.jr
	if j == nil {
		return
	}
	if len(j.recs) >= j.cap {
		sh.compactJournal()
	}
	j.recs = append(j.recs, r)
	j.appends.Inc()
	if r.op == jOpen && r.key.origin && r.key.id > j.lastCallID {
		j.lastCallID = r.key.id
	}
}

// compactJournal rewrites the log from live state: one export per
// registered service, and per live call an open plus its grant/bound
// progress. Ended calls vanish.
func (sh *Sighost) compactJournal() {
	j := sh.jr
	j.compactions.Inc()
	out := make([]jrec, 0, len(sh.services)+2*len(sh.calls))
	for _, svc := range sh.services {
		out = append(out, jrec{op: jExport, service: svc.name, ip: svc.ip, port: svc.port})
	}
	for _, c := range sh.calls {
		out = append(out, jrec{
			op: jOpen, key: c.key, service: c.service, qos: c.qosStr,
			ip: c.endIP, port: c.endPort, cookie: c.cookie,
		})
		if c.localVCI == 0 {
			continue
		}
		if bw, waiting := sh.waitBind[c.localVCI]; waiting && bw.c == c {
			out = append(out, jrec{
				op: jGrant, key: c.key, vci: c.localVCI, cookie: c.cookie,
				deadline: bw.deadline, vc: c.vc,
			})
		} else if sh.vciMap[c.localVCI] == c {
			out = append(out, jrec{op: jGrant, key: c.key, vci: c.localVCI, cookie: c.cookie, vc: c.vc})
			out = append(out, jrec{op: jBound, key: c.key, vci: c.localVCI})
		}
	}
	j.recs = out
}

// Down reports whether the sighost is crashed (dropping all input).
func (sh *Sighost) Down() bool { return sh.down }

// Crash models the signaling process dying: every timer is canceled and
// all five lists, the cookie table, and the reliability state vanish.
// While down, every handler drops its input (the peers' retransmissions
// are what carry calls across the outage). The journal survives — it
// models persistent storage.
func (sh *Sighost) Crash() {
	if sh.down {
		return
	}
	sh.down = true
	sh.Obs.Counter("sighost.crashes").Inc()
	if sh.traceOn() {
		sh.emit(obs.Event{Kind: EvCrash})
	}
	for _, bw := range sh.waitBind {
		bw.cancel()
	}
	if sh.rel != nil {
		for _, lk := range sh.rel.links {
			for _, pm := range lk.unacked {
				if pm.cancel != nil {
					pm.cancel()
				}
			}
			if lk.kaCancel != nil {
				lk.kaCancel()
			}
		}
		sh.rel.links = make(map[atm.Addr]*peerLink)
	}
	sh.services = make(map[string]*serviceEntry)
	sh.outgoing = make(map[uint16]*outRequest)
	sh.incoming = make(map[uint16]*inRequest)
	sh.waitBind = make(map[atm.VCI]*bindWait)
	sh.vciMap = make(map[atm.VCI]*call)
	sh.cookies = make(map[atm.VCI]uint16)
	sh.calls = make(map[callKey]*call)
}

// Recover restarts a crashed sighost: bump the incarnation, replay the
// journal, re-arm bind timers with remaining deadlines, and tear down
// calls that were mid-establishment when the process died.
func (sh *Sighost) Recover() {
	if !sh.down {
		return
	}
	sh.down = false
	sh.Obs.Counter("sighost.recoveries").Inc()
	if sh.traceOn() {
		sh.emit(obs.Event{Kind: EvRecover})
	}
	if sh.jr == nil {
		return // no journal: recovered empty, like a cold start
	}
	sh.jr.generation++
	sh.epochGen = sh.jr.generation
	if sh.jr.lastCallID > sh.nextCallID {
		sh.nextCallID = sh.jr.lastCallID
	}

	// Fold the log into per-call final state.
	type replay struct {
		open  jrec
		grant *jrec
		bound bool
	}
	live := make(map[callKey]*replay)
	order := make([]callKey, 0, 16)
	for i := range sh.jr.recs {
		r := &sh.jr.recs[i]
		switch r.op {
		case jExport:
			sh.services[r.service] = &serviceEntry{name: r.service, ip: r.ip, port: r.port}
		case jUnexport:
			delete(sh.services, r.service)
		case jOpen:
			if _, dup := live[r.key]; !dup {
				order = append(order, r.key)
			}
			live[r.key] = &replay{open: *r}
		case jGrant:
			if st, ok := live[r.key]; ok {
				st.grant = r
			}
		case jBound:
			if st, ok := live[r.key]; ok {
				st.bound = true
			}
		case jEnd:
			delete(live, r.key)
		}
	}

	now := sh.env.Now()
	var aborted []*call
	for _, key := range order {
		st, ok := live[key]
		if !ok {
			continue
		}
		c := &call{
			key: key, service: st.open.service, qosStr: st.open.qos,
			endIP: st.open.ip, endPort: st.open.port, cookie: st.open.cookie,
			reqAt: now,
		}
		sh.calls[key] = c
		switch {
		case st.bound:
			// Fully established and bound: restore VCI_mapping + cookie.
			c.state = callEstablished
			c.localVCI = st.grant.vci
			c.vc = st.grant.vc
			sh.vciMap[c.localVCI] = c
			sh.cookies[c.localVCI] = st.grant.cookie
			sh.Obs.Counter("sighost.recovered.bound").Inc()
		case st.grant != nil:
			// Granted but unbound: restore wait_for_bind with whatever
			// allowance the call had left. An already-expired deadline
			// tears down immediately — the timer fired during the outage.
			c.state = callEstablished
			c.localVCI = st.grant.vci
			c.vc = st.grant.vc
			sh.cookies[c.localVCI] = st.grant.cookie
			remaining := st.grant.deadline - now
			if remaining <= 0 {
				sh.ct.bindTimeouts.Inc()
				aborted = append(aborted, c)
				continue
			}
			sh.armBindTimer(c, c.localVCI, remaining, st.grant.deadline)
			sh.Obs.Counter("sighost.recovered.wait_bind").Inc()
		default:
			// Mid-establishment: its handshake died with the process.
			aborted = append(aborted, c)
		}
	}
	for _, c := range aborted {
		sh.Obs.Counter("sighost.recovery.aborted_calls").Inc()
		sh.ct.callsFailed.Inc()
		if c.key.origin {
			sh.notifyClientFailure(c, "signaling entity restarted")
		}
		sh.teardown(c, "lost in signaling restart", true)
	}
	sh.compactJournal()
}
