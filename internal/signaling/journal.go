package signaling

import (
	"encoding/binary"
	"errors"
	"sort"
	"time"

	"xunet/internal/atm"
	"xunet/internal/memnet"
	"xunet/internal/obs"
)

// Crash-recovery for the signaling entity. sighost's state is exactly
// the five lists of §7.3 plus the per-VCI cookie table, so a bounded
// write-ahead journal of list transitions is enough to rebuild it: on
// restart the journal is replayed, wait_for_bind timers are re-armed
// with their REMAINING (not full) deadlines, and calls that were still
// mid-establishment are torn down with the paper's disconnect
// indications, since their in-flight handshakes died with the process.
//
// The journal is an in-memory byte log standing in for the disk log a
// real daemon would write (the sim has no filesystem); it survives
// Crash() because it models persistent storage. Records are encoded
// into a per-dispatch batch and appended to the log in one copy when
// the dispatch completes (jflush), so a teardown cascade costs one
// append, not one per record — and the batch buffer is reused, so
// steady-state journaling allocates nothing. Entries for dead calls
// are compacted away once the log exceeds its bound, keeping it
// proportional to live state. VC handles cannot ride a byte log; a
// side table keyed by VCI stands in for re-resolving the circuit from
// the switch tables on restart (DESIGN.md §11 records the
// substitution).

type jop uint8

const (
	jExport jop = iota + 1
	jUnexport
	jOpen  // call created (either side)
	jGrant // VCI + cookie handed out, bind timer armed
	jBound // bind authenticated, entry moved to VCI_mapping
	jEnd   // call released (any path)
)

// jrec is one journal record; fields beyond op/key are op-specific.
type jrec struct {
	op      jop
	key     callKey
	service string
	ip      memnet.IPAddr
	port    uint16
	qos     string
	cookie  uint16
	vci     atm.VCI
	// deadline is the ABSOLUTE bind deadline (sim clock), so recovery
	// can re-arm the timer with only the remaining allowance.
	deadline time.Duration
	vc       *VCHandle
}

// Wire format of one record: u16 payload length, then
//
//	u8 op · u8-prefixed peer · u32 id · u8 origin ·
//	u16-prefixed service · u32 ip · u16 port · u16-prefixed qos ·
//	u16 cookie · u16 vci · u64 deadline · u8 hasVC
//
// all big-endian. Replay stops at the first short or corrupt record,
// like a daemon reading a torn tail after a crash mid-write.

var errJrec = errors.New("signaling: corrupt journal record")

// appendJrec appends r's encoding to dst.
func appendJrec(dst []byte, r *jrec) []byte {
	lenAt := len(dst)
	dst = append(dst, 0, 0) // payload length, patched below
	dst = append(dst, byte(r.op))
	peer := r.key.peer
	if len(peer) > 255 {
		peer = peer[:255]
	}
	dst = append(dst, byte(len(peer)))
	dst = append(dst, peer...)
	dst = binary.BigEndian.AppendUint32(dst, r.key.id)
	if r.key.origin {
		dst = append(dst, 1)
	} else {
		dst = append(dst, 0)
	}
	dst = appendStr16(dst, r.service)
	dst = binary.BigEndian.AppendUint32(dst, uint32(r.ip))
	dst = binary.BigEndian.AppendUint16(dst, r.port)
	dst = appendStr16(dst, r.qos)
	dst = binary.BigEndian.AppendUint16(dst, r.cookie)
	dst = binary.BigEndian.AppendUint16(dst, uint16(r.vci))
	dst = binary.BigEndian.AppendUint64(dst, uint64(r.deadline))
	if r.vc != nil {
		dst = append(dst, 1)
	} else {
		dst = append(dst, 0)
	}
	binary.BigEndian.PutUint16(dst[lenAt:], uint16(len(dst)-lenAt-2))
	return dst
}

func appendStr16(dst []byte, s string) []byte {
	if len(s) > 1<<16-1 {
		s = s[:1<<16-1]
	}
	dst = binary.BigEndian.AppendUint16(dst, uint16(len(s)))
	return append(dst, s...)
}

// decodeJrec decodes one record from the front of b, resolving circuit
// handles through the vcs side table. Returns the bytes consumed.
func decodeJrec(b []byte, vcs map[atm.VCI]*VCHandle) (jrec, int, error) {
	var r jrec
	if len(b) < 2 {
		return r, 0, errJrec
	}
	plen := int(binary.BigEndian.Uint16(b))
	if len(b) < 2+plen {
		return r, 0, errJrec
	}
	p := b[2 : 2+plen]
	fail := errJrec
	get := func(n int) []byte {
		if len(p) < n {
			return nil
		}
		v := p[:n]
		p = p[n:]
		return v
	}
	v := get(2)
	if v == nil {
		return r, 0, fail
	}
	r.op = jop(v[0])
	peer := get(int(v[1]))
	if peer == nil {
		return r, 0, fail
	}
	r.key.peer = atm.Addr(peer)
	if v = get(5); v == nil {
		return r, 0, fail
	}
	r.key.id = binary.BigEndian.Uint32(v)
	r.key.origin = v[4] != 0
	if v = get(2); v == nil {
		return r, 0, fail
	}
	s := get(int(binary.BigEndian.Uint16(v)))
	if s == nil {
		return r, 0, fail
	}
	r.service = string(s)
	if v = get(8); v == nil {
		return r, 0, fail
	}
	r.ip = memnet.IPAddr(binary.BigEndian.Uint32(v))
	r.port = binary.BigEndian.Uint16(v[4:])
	s = get(int(binary.BigEndian.Uint16(v[6:])))
	if s == nil {
		return r, 0, fail
	}
	r.qos = string(s)
	if v = get(13); v == nil {
		return r, 0, fail
	}
	r.cookie = binary.BigEndian.Uint16(v)
	r.vci = atm.VCI(binary.BigEndian.Uint16(v[2:]))
	r.deadline = time.Duration(binary.BigEndian.Uint64(v[4:]))
	if v[12] != 0 {
		r.vc = vcs[r.vci]
	}
	return r, 2 + plen, nil
}

// journal is the bounded write-ahead log.
type journal struct {
	buf      []byte // durable log: encoded records back-to-back
	n        int    // records in buf
	pending  []byte // current dispatch's batch, not yet appended
	pendingN int
	spare    []byte // compaction double-buffer (swap keeps it alloc-free)
	cap      int
	// vcs maps granted VCIs to their circuit handles (see file comment).
	vcs map[atm.VCI]*VCHandle
	// generation counts recoveries; it seeds the reliability epoch so
	// peers can tell a new incarnation's messages from stale ones.
	generation uint32
	// lastCallID persists the allocator so a recovered sighost never
	// reuses a call ID that a peer may still hold state for.
	lastCallID uint32
	svcScratch []string // sorted-services scratch for compaction

	appends     *obs.Counter // sighost.journal.appends (records)
	batches     *obs.Counter // sighost.journal.batches (one per flush)
	compactions *obs.Counter // sighost.journal.compactions
	truncated   *obs.Counter // sighost.journal.truncated (replay cut short)
}

// EnableJournal attaches a write-ahead journal with the given record
// bound (<=0 selects 4096) and enables Crash/Recover.
func (sh *Sighost) EnableJournal(bound int) {
	if bound <= 0 {
		bound = 4096
	}
	sh.jr = &journal{
		cap:         bound,
		vcs:         make(map[atm.VCI]*VCHandle),
		appends:     sh.Obs.Counter("sighost.journal.appends"),
		batches:     sh.Obs.Counter("sighost.journal.batches"),
		compactions: sh.Obs.Counter("sighost.journal.compactions"),
		truncated:   sh.Obs.Counter("sighost.journal.truncated"),
	}
	// Occupancy as read-through metrics, for the time-series scrape:
	// durable log size and the in-flight batch depth.
	jr := sh.jr
	sh.Obs.Func("sighost.journal.bytes", func() uint64 { return uint64(len(jr.buf)) })
	sh.Obs.Func("sighost.journal.records", func() uint64 { return uint64(jr.n) })
	sh.Obs.Func("sighost.journal.pending", func() uint64 { return uint64(jr.pendingN) })
}

// jlog encodes one record into the current dispatch's batch. Every
// jlog call sits AFTER the state mutation it describes, so live state
// always subsumes the batch — which is what lets jflush compact
// instead of appending when the log is full.
func (sh *Sighost) jlog(r jrec) {
	j := sh.jr
	if j == nil {
		return
	}
	if r.vc != nil {
		j.vcs[r.vci] = r.vc
	}
	j.pending = appendJrec(j.pending, &r)
	j.pendingN++
	if r.op == jOpen && r.key.origin && r.key.id > j.lastCallID {
		j.lastCallID = r.key.id
	}
}

// jflush makes the current batch durable in one append, compacting
// instead when the log would exceed its bound. Called at the end of
// every dispatch (handler or timer/dial callback); no-op when nothing
// was logged.
func (sh *Sighost) jflush() {
	j := sh.jr
	if j == nil || j.pendingN == 0 {
		return
	}
	j.appends.Add(uint64(j.pendingN))
	j.batches.Inc()
	if j.n+j.pendingN > j.cap {
		sh.compactJournal() // rewrite subsumes (and discards) the batch
		return
	}
	j.buf = append(j.buf, j.pending...)
	j.n += j.pendingN
	j.pending = j.pending[:0]
	j.pendingN = 0
}

// compactJournal rewrites the log from live state: one export per
// registered service (sorted, so the byte log is deterministic), and
// per live call an open plus its grant/bound progress. Ended calls
// vanish, and any pending batch is discarded — live state already
// reflects it (see jlog).
func (sh *Sighost) compactJournal() {
	j := sh.jr
	j.compactions.Inc()
	out := j.spare[:0]
	n := 0
	clear(j.vcs)
	svcs := j.svcScratch[:0]
	for name := range sh.services {
		svcs = append(svcs, name)
	}
	sort.Strings(svcs)
	j.svcScratch = svcs[:0]
	for _, name := range svcs {
		svc := sh.services[name]
		out = appendJrec(out, &jrec{op: jExport, service: svc.name, ip: svc.ip, port: svc.port})
		n++
	}
	for c := sh.allHead; c != nil; c = c.allNext {
		out = appendJrec(out, &jrec{
			op: jOpen, key: c.key, service: c.service, qos: c.qosStr,
			ip: c.endIP, port: c.endPort, cookie: c.cookie,
		})
		n++
		if c.localVCI == 0 {
			continue
		}
		if c.vc != nil {
			j.vcs[c.localVCI] = c.vc
		}
		if bw, waiting := sh.waitBind[c.localVCI]; waiting && bw.c == c {
			out = appendJrec(out, &jrec{
				op: jGrant, key: c.key, vci: c.localVCI, cookie: c.cookie,
				deadline: bw.deadline, vc: c.vc,
			})
			n++
		} else if sh.vciMap[c.localVCI] == c {
			out = appendJrec(out, &jrec{op: jGrant, key: c.key, vci: c.localVCI, cookie: c.cookie, vc: c.vc})
			out = appendJrec(out, &jrec{op: jBound, key: c.key, vci: c.localVCI})
			n += 2
		}
	}
	j.spare = j.buf
	j.buf = out
	j.n = n
	j.pending = j.pending[:0]
	j.pendingN = 0
}

// records decodes the durable log back into record structs — the
// journal's introspection/test view. Unflushed batch records are not
// included (they are not durable yet).
func (j *journal) records() []jrec {
	var out []jrec
	b := j.buf
	for len(b) > 0 {
		r, n, err := decodeJrec(b, j.vcs)
		if err != nil {
			break
		}
		out = append(out, r)
		b = b[n:]
	}
	return out
}

// Down reports whether the sighost is crashed (dropping all input).
func (sh *Sighost) Down() bool { return sh.down }

// Crash models the signaling process dying: every timer is canceled and
// all five lists, the cookie table, and the reliability state vanish.
// While down, every handler drops its input (the peers' retransmissions
// are what carry calls across the outage). The journal survives — it
// models persistent storage; any batch still pending is flushed first,
// since its records were logged before the "write" that killed us.
func (sh *Sighost) Crash() {
	if sh.down {
		return
	}
	sh.jflush()
	sh.down = true
	sh.Obs.Counter("sighost.crashes").Inc()
	if sh.traceOn() {
		sh.emit(obs.Event{Kind: EvCrash})
	}
	for _, bw := range sh.waitBind {
		bw.cancel()
	}
	if sh.rel != nil {
		for _, lk := range sh.rel.links {
			for _, pm := range lk.unacked {
				if pm.cancel != nil {
					pm.cancel()
				}
				// Orphan rather than pool (map order is nondeterministic);
				// a straggling timer finds no host and returns.
				pm.sh, pm.lk = nil, nil
			}
			if lk.kaCancel != nil {
				lk.kaCancel()
			}
		}
		sh.rel.links = make(map[atm.Addr]*peerLink)
	}
	sh.services = make(map[string]*serviceEntry)
	sh.outgoing = make(map[uint16]*call)
	sh.incoming = make(map[uint16]*call)
	sh.waitBind = make(map[atm.VCI]*bindWait)
	sh.vciMap = make(map[atm.VCI]*call)
	sh.cookies = make(map[atm.VCI]uint16)
	sh.calls = make(map[callKey]*call)
	// The intrusive indexes die with the lists. The wiped structs are
	// NOT returned to the pools: in-flight callbacks may still hold
	// them, and their gen was never bumped.
	sh.allHead, sh.allTail = nil, nil
	sh.byPeer = make(map[atm.Addr]*peerCalls)
	sh.byOwner = make(map[ownerKey]*call)
}

// Recover restarts a crashed sighost: bump the incarnation, replay the
// journal, re-arm bind timers with remaining deadlines, and tear down
// calls that were mid-establishment when the process died.
func (sh *Sighost) Recover() {
	if !sh.down {
		return
	}
	sh.down = false
	sh.Obs.Counter("sighost.recoveries").Inc()
	if sh.traceOn() {
		sh.emit(obs.Event{Kind: EvRecover})
	}
	if sh.jr == nil {
		return // no journal: recovered empty, like a cold start
	}
	sh.jr.generation++
	sh.epochGen = sh.jr.generation
	if sh.jr.lastCallID > sh.nextCallID {
		sh.nextCallID = sh.jr.lastCallID
	}

	// Fold the log into per-call final state. Replay stops at the first
	// unreadable record: everything before the torn tail still recovers.
	type replay struct {
		open     jrec
		grant    jrec
		hasGrant bool
		bound    bool
	}
	live := make(map[callKey]*replay)
	order := make([]callKey, 0, 16)
	b := sh.jr.buf
	for len(b) > 0 {
		r, n, err := decodeJrec(b, sh.jr.vcs)
		if err != nil {
			sh.jr.truncated.Inc()
			break
		}
		b = b[n:]
		switch r.op {
		case jExport:
			sh.services[r.service] = &serviceEntry{name: r.service, ip: r.ip, port: r.port}
		case jUnexport:
			delete(sh.services, r.service)
		case jOpen:
			if _, dup := live[r.key]; !dup {
				order = append(order, r.key)
			}
			live[r.key] = &replay{open: r}
		case jGrant:
			if st, ok := live[r.key]; ok {
				st.grant = r
				st.hasGrant = true
			}
		case jBound:
			if st, ok := live[r.key]; ok {
				st.bound = true
			}
		case jEnd:
			delete(live, r.key)
		}
	}

	now := sh.env.Now()
	var aborted []*call
	for _, key := range order {
		st, ok := live[key]
		if !ok {
			continue
		}
		delete(live, key) // a corrupt log may repeat keys; build each once
		c := sh.newCall()
		c.key = key
		c.service = st.open.service
		c.qosStr = st.open.qos
		c.endIP = st.open.ip
		c.endPort = st.open.port
		c.cookie = st.open.cookie
		c.reqAt = now
		sh.linkCall(c)
		switch {
		case st.bound && st.hasGrant:
			// Fully established and bound: restore VCI_mapping + cookie.
			c.state = callEstablished
			c.localVCI = st.grant.vci
			c.vc = st.grant.vc
			sh.vciMap[c.localVCI] = c
			sh.cookies[c.localVCI] = st.grant.cookie
			sh.Obs.Counter("sighost.recovered.bound").Inc()
		case st.hasGrant:
			// Granted but unbound: restore wait_for_bind with whatever
			// allowance the call had left. An already-expired deadline
			// tears down immediately — the timer fired during the outage.
			c.state = callEstablished
			c.localVCI = st.grant.vci
			c.vc = st.grant.vc
			sh.cookies[c.localVCI] = st.grant.cookie
			remaining := st.grant.deadline - now
			if remaining <= 0 {
				sh.ct.bindTimeouts.Inc()
				aborted = append(aborted, c)
				continue
			}
			sh.armBindTimer(c, c.localVCI, remaining, st.grant.deadline)
			sh.Obs.Counter("sighost.recovered.wait_bind").Inc()
		default:
			// Mid-establishment: its handshake died with the process.
			aborted = append(aborted, c)
		}
	}
	for _, c := range aborted {
		sh.Obs.Counter("sighost.recovery.aborted_calls").Inc()
		sh.ct.callsFailed.Inc()
		if c.key.origin {
			sh.notifyClientFailure(c, "signaling entity restarted")
		}
		sh.teardown(c, "lost in signaling restart", true)
	}
	sh.compactJournal()
}
