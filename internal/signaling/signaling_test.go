package signaling_test

import (
	"errors"
	"strings"
	"testing"
	"time"

	"xunet/internal/atm"
	"xunet/internal/kern"
	"xunet/internal/qos"
	"xunet/internal/sigmsg"
	"xunet/internal/testbed"
	"xunet/internal/ulib"
)

func TestRegisterService(t *testing.T) {
	n, ra, _, err := testbed.NewTestbed(testbed.Options{})
	if err != nil {
		t.Fatal(err)
	}
	var regErr error
	var took time.Duration
	ra.Stack.Spawn("server", func(p *kern.Proc) {
		start := p.SP.Now()
		regErr = ra.Lib.ExportService(p, "file-service", 6000)
		took = p.SP.Now() - start
	})
	n.E.RunUntil(5 * time.Second)
	if regErr != nil {
		t.Fatal(regErr)
	}
	// §9: "The time to register a service was 17-20 ms, and most of the
	// time was due to the four context switches performed in completing
	// this RPC." Allow a little transport slack above the 18 ms of
	// switches.
	if took < 17*time.Millisecond || took > 25*time.Millisecond {
		t.Fatalf("registration took %v, want ≈17-20ms", took)
	}
	svc, _, _, _, _ := ra.Sig.SH.ListSizes()
	if svc != 1 {
		t.Fatalf("service_list size = %d", svc)
	}
	n.E.Shutdown()
}

func TestUnexportService(t *testing.T) {
	n, ra, _, _ := testbed.NewTestbed(testbed.Options{})
	var unexpErr, missingErr error
	ra.Stack.Spawn("server", func(p *kern.Proc) {
		_ = ra.Lib.ExportService(p, "temp", 6000)
		unexpErr = ra.Lib.UnexportService(p, "temp")
		missingErr = ra.Lib.UnexportService(p, "temp")
	})
	n.E.RunUntil(5 * time.Second)
	if unexpErr != nil {
		t.Fatal(unexpErr)
	}
	if missingErr == nil {
		t.Fatal("unexport of missing service succeeded")
	}
	svc, _, _, _, _ := ra.Sig.SH.ListSizes()
	if svc != 0 {
		t.Fatalf("service_list size = %d", svc)
	}
	n.E.Shutdown()
}

// TestRouterToRouterCall is the paper's core flow: a client on one
// router calls an echo service on the other, sends frames on the
// granted VCI with cookie authentication, and the server receives them.
func TestRouterToRouterCall(t *testing.T) {
	n, ra, rb, _ := testbed.NewTestbed(testbed.Options{})
	srv := testbed.StartEchoServer(rb, "echo", 6000)
	var res testbed.CallResult
	ra.Stack.Spawn("client", func(p *kern.Proc) {
		p.SP.Sleep(100 * time.Millisecond) // let the server register
		res = testbed.OpenAndUse(ra, p, "ucb.rt", "echo", 7000, "", 5, nil)
	})
	n.E.RunUntil(10 * time.Second)
	if res.Err != nil {
		t.Fatalf("call failed: %v", res.Err)
	}
	if srv.Accepted != 1 {
		t.Fatalf("accepted = %d", srv.Accepted)
	}
	if srv.Received != 5 {
		t.Fatalf("received = %d frames", srv.Received)
	}
	// §9: call establishment between two routers ≈330 ms, dominated by
	// per-call logging at the two signaling entities.
	if res.SetupTime < 300*time.Millisecond || res.SetupTime > 420*time.Millisecond {
		t.Fatalf("setup time %v, want ≈330ms", res.SetupTime)
	}
	n.E.Shutdown()
}

func TestCallSetupWithoutLoggingIsFast(t *testing.T) {
	// E3 ablation: disabling the per-call maintenance logging collapses
	// setup time by roughly an order of magnitude.
	n, ra, rb, _ := testbed.NewTestbed(testbed.Options{DisableCallLogging: true})
	testbed.StartEchoServer(rb, "echo", 6000)
	var res testbed.CallResult
	ra.Stack.Spawn("client", func(p *kern.Proc) {
		p.SP.Sleep(100 * time.Millisecond)
		res = testbed.OpenAndUse(ra, p, "ucb.rt", "echo", 7000, "", 0, nil)
	})
	n.E.RunUntil(10 * time.Second)
	if res.Err != nil {
		t.Fatal(res.Err)
	}
	if res.SetupTime > 100*time.Millisecond {
		t.Fatalf("setup without logging took %v", res.SetupTime)
	}
	n.E.Shutdown()
}

func TestLocalCall(t *testing.T) {
	// Client and server on the same router: the SETUP loops back
	// through the same sighost.
	n, ra, _, _ := testbed.NewTestbed(testbed.Options{})
	srv := testbed.StartEchoServer(ra, "local-echo", 6000)
	var res testbed.CallResult
	ra.Stack.Spawn("client", func(p *kern.Proc) {
		p.SP.Sleep(100 * time.Millisecond)
		res = testbed.OpenAndUse(ra, p, "mh.rt", "local-echo", 7000, "", 3, nil)
	})
	n.E.RunUntil(10 * time.Second)
	if res.Err != nil {
		t.Fatalf("local call failed: %v", res.Err)
	}
	if srv.Received != 3 {
		t.Fatalf("received = %d", srv.Received)
	}
	n.E.Shutdown()
}

func TestHostToHostCall(t *testing.T) {
	// The full §7.4 path: client on an IP host behind router A, server
	// on an IP host behind router B. Data crosses FDDI, the ATM WAN,
	// and FDDI again; QoS negotiation is proxied.
	n, ra, rb, _ := testbed.NewTestbed(testbed.Options{})
	hostA, err := n.AddHost("mh.h1", ra)
	if err != nil {
		t.Fatal(err)
	}
	hostB, err := n.AddHost("ucb.h1", rb)
	if err != nil {
		t.Fatal(err)
	}
	srv := testbed.StartEchoServer(hostB, "h-echo", 6000)
	var res testbed.CallResult
	hostA.Stack.Spawn("client", func(p *kern.Proc) {
		p.SP.Sleep(200 * time.Millisecond)
		res = testbed.OpenAndUse(hostA, p, "ucb.rt", "h-echo", 7000, "", 4, nil)
	})
	n.E.RunUntil(15 * time.Second)
	if res.Err != nil {
		t.Fatalf("host-to-host call failed: %v", res.Err)
	}
	if srv.Received != 4 {
		t.Fatalf("received = %d", srv.Received)
	}
	// anand server must have installed the VCI_BIND for the host server.
	if rb.Sig.Anand.Binds == 0 {
		t.Fatal("no VCI_BIND at the remote router")
	}
	n.E.Shutdown()
}

func TestQoSNegotiation(t *testing.T) {
	// Client asks for CBR 2 Mb/s; server counter-offers CBR 1 Mb/s; the
	// client sees the negotiated descriptor.
	n, ra, rb, _ := testbed.NewTestbed(testbed.Options{})
	srv := testbed.StartEchoServer(rb, "nego", 6000)
	srv.ModifyQoS = "cbr:1000"
	var res testbed.CallResult
	ra.Stack.Spawn("client", func(p *kern.Proc) {
		p.SP.Sleep(100 * time.Millisecond)
		res = testbed.OpenAndUse(ra, p, "ucb.rt", "nego", 7000, "cbr:2000", 0, nil)
	})
	n.E.RunUntil(10 * time.Second)
	if res.Err != nil {
		t.Fatal(res.Err)
	}
	if res.QoS != "cbr:1000" {
		t.Fatalf("negotiated QoS = %q, want cbr:1000", res.QoS)
	}
	n.E.Shutdown()
}

func TestQoSNeverUpgraded(t *testing.T) {
	// A server trying to *increase* the QoS is clamped to the request.
	n, ra, rb, _ := testbed.NewTestbed(testbed.Options{})
	srv := testbed.StartEchoServer(rb, "greedy", 6000)
	srv.ModifyQoS = "cbr:9000"
	var res testbed.CallResult
	ra.Stack.Spawn("client", func(p *kern.Proc) {
		p.SP.Sleep(100 * time.Millisecond)
		res = testbed.OpenAndUse(ra, p, "ucb.rt", "greedy", 7000, "vbr:500", 0, nil)
	})
	n.E.RunUntil(10 * time.Second)
	if res.Err != nil {
		t.Fatal(res.Err)
	}
	got, err := qos.Parse(res.QoS)
	if err != nil {
		t.Fatal(err)
	}
	want, _ := qos.Parse("vbr:500")
	if !got.WeakerOrEqual(want) {
		t.Fatalf("negotiated %v exceeds request %v", got, want)
	}
	n.E.Shutdown()
}

func TestUnknownServiceRejected(t *testing.T) {
	n, ra, _, _ := testbed.NewTestbed(testbed.Options{})
	var res testbed.CallResult
	ra.Stack.Spawn("client", func(p *kern.Proc) {
		res = testbed.OpenAndUse(ra, p, "ucb.rt", "no-such-service", 7000, "", 0, nil)
	})
	n.E.RunUntil(10 * time.Second)
	if res.Err == nil {
		t.Fatal("call to unknown service succeeded")
	}
	if !errors.Is(res.Err, ulib.ErrFailed) {
		t.Fatalf("err = %v", res.Err)
	}
	if msg := testbed.Quiesced(ra); msg != "" {
		t.Fatal(msg)
	}
	n.E.Shutdown()
}

func TestServerRejectsCall(t *testing.T) {
	n, ra, rb, _ := testbed.NewTestbed(testbed.Options{})
	rb.Stack.Spawn("picky-server", func(p *kern.Proc) {
		_ = rb.Lib.ExportService(p, "picky", 6000)
		kl, _ := rb.Lib.CreateReceiveConnection(p, 6000)
		req, err := rb.Lib.AwaitServiceRequest(p, kl)
		if err != nil {
			return
		}
		_ = req.Reject("not today")
	})
	var res testbed.CallResult
	ra.Stack.Spawn("client", func(p *kern.Proc) {
		p.SP.Sleep(100 * time.Millisecond)
		res = testbed.OpenAndUse(ra, p, "ucb.rt", "picky", 7000, "", 0, nil)
	})
	n.E.RunUntil(10 * time.Second)
	if res.Err == nil || !strings.Contains(res.Err.Error(), "not today") {
		t.Fatalf("err = %v", res.Err)
	}
	for _, r := range []*testbed.Router{ra, rb} {
		if msg := testbed.Quiesced(r); msg != "" {
			t.Fatal(msg)
		}
	}
	n.E.Shutdown()
}

func TestAdmissionRejectionPropagatesToClient(t *testing.T) {
	// The DS3 trunk holds 45 Mb/s; a 60 Mb/s CBR call passes the server
	// but fails network admission, and the client hears about it.
	n, ra, rb, _ := testbed.NewTestbed(testbed.Options{})
	testbed.StartEchoServer(rb, "big", 6000)
	var res testbed.CallResult
	ra.Stack.Spawn("client", func(p *kern.Proc) {
		p.SP.Sleep(100 * time.Millisecond)
		res = testbed.OpenAndUse(ra, p, "ucb.rt", "big", 7000, "cbr:60000", 0, nil)
	})
	n.E.RunUntil(10 * time.Second)
	if res.Err == nil {
		t.Fatal("oversubscribed call succeeded")
	}
	if !strings.Contains(res.Err.Error(), "admission") {
		t.Fatalf("err = %v", res.Err)
	}
	for _, r := range []*testbed.Router{ra, rb} {
		if msg := testbed.Quiesced(r); msg != "" {
			t.Fatal(msg)
		}
	}
	if n.Fabric.ActiveVCs() != 2 { // only the 2 signaling PVCs remain
		t.Fatalf("active VCs = %d", n.Fabric.ActiveVCs())
	}
	n.E.Shutdown()
}

func TestTeardownOnClientClose(t *testing.T) {
	n, ra, rb, _ := testbed.NewTestbed(testbed.Options{})
	testbed.StartEchoServer(rb, "echo", 6000)
	ra.Stack.Spawn("client", func(p *kern.Proc) {
		p.SP.Sleep(100 * time.Millisecond)
		res := testbed.OpenAndUse(ra, p, "ucb.rt", "echo", 7000, "", 2, nil)
		if res.Err != nil {
			t.Errorf("call: %v", res.Err)
		}
		// OpenAndUse closed the socket; teardown propagates.
	})
	n.E.RunUntil(20 * time.Second)
	for _, r := range []*testbed.Router{ra, rb} {
		if msg := testbed.Quiesced(r); msg != "" {
			t.Fatal(msg)
		}
	}
	if n.Fabric.ActiveVCs() != 2 {
		t.Fatalf("active VCs = %d, want only the 2 signaling PVCs", n.Fabric.ActiveVCs())
	}
	n.E.Shutdown()
}

func TestBindTimeoutReclaimsVCI(t *testing.T) {
	// A client that opens a connection but never connects its socket:
	// the per-VCI timer reclaims the circuit.
	n, ra, rb, _ := testbed.NewTestbed(testbed.Options{})
	testbed.StartEchoServer(rb, "echo", 6000)
	var opened bool
	ra.Stack.Spawn("lazy-client", func(p *kern.Proc) {
		p.SP.Sleep(100 * time.Millisecond)
		conn, err := ra.Lib.OpenConnection(p, "ucb.rt", "echo", 7000, "", "")
		opened = err == nil && conn != nil
		// ... and never uses the VCI.
	})
	n.E.RunUntil(2 * n.CM.BindTimeout)
	if !opened {
		t.Fatal("open failed")
	}
	if ra.Sig.SH.Stats().BindTimeouts == 0 {
		t.Fatal("no bind timeout fired")
	}
	if msg := testbed.Quiesced(ra); msg != "" {
		t.Fatal(msg)
	}
	if n.Fabric.ActiveVCs() != 2 {
		t.Fatalf("VC leaked: %d active", n.Fabric.ActiveVCs())
	}
	n.E.Shutdown()
}

func TestCookieAuthenticationFailure(t *testing.T) {
	// A malicious process binds the granted VCI with a guessed cookie:
	// the call is torn down and the socket marked unusable.
	n, ra, rb, _ := testbed.NewTestbed(testbed.Options{})
	testbed.StartEchoServer(rb, "echo", 6000)
	var sendErr error
	ra.Stack.Spawn("mallory", func(p *kern.Proc) {
		p.SP.Sleep(100 * time.Millisecond)
		conn, err := ra.Lib.OpenConnection(p, "ucb.rt", "echo", 7000, "", "")
		if err != nil {
			t.Errorf("open: %v", err)
			return
		}
		sock, _ := ra.Stack.PF.Socket(p)
		badCookie := conn.Cookie + 1
		_ = sock.Connect(conn.VCI, badCookie)
		p.SP.Sleep(time.Second) // let the auth failure round-trip
		sendErr = sock.Send([]byte("stolen data"))
	})
	n.E.RunUntil(10 * time.Second)
	if ra.Sig.SH.Stats().AuthFailures == 0 {
		t.Fatal("auth failure not detected")
	}
	if sendErr == nil {
		t.Fatal("send on unauthenticated socket succeeded")
	}
	if msg := testbed.Quiesced(ra); msg != "" {
		t.Fatal(msg)
	}
	n.E.Shutdown()
}

func TestBindToUngrantedVCIDisconnected(t *testing.T) {
	n, ra, _, _ := testbed.NewTestbed(testbed.Options{})
	var recvErr error
	ra.Stack.Spawn("squatter", func(p *kern.Proc) {
		sock, _ := ra.Stack.PF.Socket(p)
		_ = sock.Bind(999, 0x1234)
		_, recvErr = sock.Recv()
	})
	n.E.RunUntil(5 * time.Second)
	if ra.Sig.SH.Stats().AuthFailures == 0 {
		t.Fatal("squat not detected")
	}
	if recvErr == nil {
		t.Fatal("squatted socket still usable")
	}
	n.E.Shutdown()
}

func TestCancelRequest(t *testing.T) {
	// Cancel an outstanding request to a service whose server never
	// answers (it exported but blocks before accepting).
	n, ra, rb, _ := testbed.NewTestbed(testbed.Options{})
	rb.Stack.Spawn("sleepy-server", func(p *kern.Proc) {
		_ = rb.Lib.ExportService(p, "sleepy", 6000)
		_, _ = rb.Lib.CreateReceiveConnection(p, 6000)
		p.SP.Park() // exported, listening, never accepts the IPC
	})
	var cancelErr error
	ra.Stack.Spawn("client", func(p *kern.Proc) {
		p.SP.Sleep(100 * time.Millisecond)
		// Issue the raw CONNECT_REQ via the library internals: open a
		// listener, send the request, then cancel by cookie.
		kl, _ := p.Listen(7000)
		defer kl.Close()
		ks, err := p.Dial(ra.Stack.M.IP.Addr, 177)
		if err != nil {
			t.Error(err)
			return
		}
		_ = ks.Send(encodeConnectReq("ucb.rt", "sleepy", 7000))
		raw, ok := ks.Recv()
		ks.Close()
		if !ok {
			t.Error("no REQ_ID")
			return
		}
		cookie := decodeCookie(raw)
		p.SP.Sleep(100 * time.Millisecond)
		cancelErr = ra.Lib.CancelRequest(p, cookie)
	})
	n.E.RunUntil(10 * time.Second)
	if cancelErr != nil {
		t.Fatalf("cancel: %v", cancelErr)
	}
	if ra.Sig.SH.Stats().CallsCanceled != 1 {
		t.Fatalf("canceled = %d", ra.Sig.SH.Stats().CallsCanceled)
	}
	if msg := testbed.Quiesced(ra); msg != "" {
		t.Fatal(msg)
	}
	n.E.Shutdown()
}

// TestKillDuringStages reproduces §10: "We also ran tests where clients
// and servers were terminated during various stages of the call setup
// process. The network and signaling state were always correctly
// restored."
func TestKillDuringStages(t *testing.T) {
	// Kill the client at several points of the setup; afterwards all
	// transient state must drain on both routers.
	for _, killAfter := range []time.Duration{
		120 * time.Millisecond, // while SETUP is in flight
		300 * time.Millisecond, // around fabric programming
		600 * time.Millisecond, // established, maybe unbound
		2 * time.Second,        // established and in use
	} {
		n, ra, rb, _ := testbed.NewTestbed(testbed.Options{})
		testbed.StartEchoServer(rb, "echo", 6000)
		victim := ra.Stack.Spawn("doomed", func(p *kern.Proc) {
			p.SP.Sleep(100 * time.Millisecond)
			res := testbed.OpenAndUse(ra, p, "ucb.rt", "echo", 7000, "", 1,
				func(p *kern.Proc) { p.SP.Sleep(time.Hour) })
			_ = res
		})
		n.E.Schedule(killAfter, func() { victim.Kill() })
		n.E.RunUntil(2 * n.CM.BindTimeout)
		for _, r := range []*testbed.Router{ra, rb} {
			if msg := testbed.Quiesced(r); msg != "" {
				t.Fatalf("killAfter=%v: %s", killAfter, msg)
			}
		}
		if n.Fabric.ActiveVCs() != 2 {
			t.Fatalf("killAfter=%v: %d VCs active, want the 2 PVCs", killAfter, n.Fabric.ActiveVCs())
		}
		n.E.Shutdown()
	}
}

func TestKillServerMidCall(t *testing.T) {
	n, ra, rb, _ := testbed.NewTestbed(testbed.Options{})
	srv := testbed.StartEchoServer(rb, "echo", 6000)
	done := false
	ra.Stack.Spawn("client", func(p *kern.Proc) {
		p.SP.Sleep(100 * time.Millisecond)
		testbed.OpenAndUse(ra, p, "ucb.rt", "echo", 7000, "", 2, func(p *kern.Proc) {
			p.SP.Sleep(3 * time.Second) // hold while the server dies
		})
		done = true
	})
	n.E.Schedule(2*time.Second, func() { srv.Kill() })
	n.E.RunUntil(2 * n.CM.BindTimeout)
	if !done {
		t.Fatal("client never finished")
	}
	for _, r := range []*testbed.Router{ra, rb} {
		if msg := testbed.Quiesced(r); msg != "" {
			t.Fatal(msg)
		}
	}
	if n.Fabric.ActiveVCs() != 2 {
		t.Fatalf("VCs = %d", n.Fabric.ActiveVCs())
	}
	n.E.Shutdown()
}

// Figure 3: the golden message trace for a server registering itself
// and accepting one call.
func TestFigure3ServerRegistrationTrace(t *testing.T) {
	n, ra, rb, _ := testbed.NewTestbed(testbed.Options{})
	var trace []string
	rb.Sig.SH.Trace = func(line string) { trace = append(trace, line) }
	testbed.StartEchoServer(rb, "echo", 6000)
	ra.Stack.Spawn("client", func(p *kern.Proc) {
		p.SP.Sleep(100 * time.Millisecond)
		testbed.OpenAndUse(ra, p, "ucb.rt", "echo", 7000, "", 0, nil)
	})
	n.E.RunUntil(5 * time.Second)
	joined := strings.Join(trace, "\n")
	for _, want := range []string{
		"app->sighost EXPORT_SRV svc=echo",
		"sighost->app SERVICE_REGS svc=echo",
		"peer<-mh.rt SETUP svc=echo",
		"sighost->app INCOMING_CONN svc=echo",
		"app->sighost ACCEPT_CONN",
		"peer->mh.rt SETUP_ACK",
		"peer<-mh.rt CONNECT_DONE",
		"sighost->app VCI_FOR_CONN",
	} {
		if !strings.Contains(joined, want) {
			t.Errorf("Figure 3 trace missing %q\ntrace:\n%s", want, joined)
		}
	}
	// The exchanges must appear in the paper's order.
	assertOrdered(t, joined, "EXPORT_SRV", "SERVICE_REGS", "INCOMING_CONN", "ACCEPT_CONN", "VCI_FOR_CONN")
	n.E.Shutdown()
}

// Figure 4: the golden message trace for a client establishing a call.
func TestFigure4ClientCallTrace(t *testing.T) {
	n, ra, rb, _ := testbed.NewTestbed(testbed.Options{})
	var trace []string
	ra.Sig.SH.Trace = func(line string) { trace = append(trace, line) }
	testbed.StartEchoServer(rb, "echo", 6000)
	ra.Stack.Spawn("client", func(p *kern.Proc) {
		p.SP.Sleep(100 * time.Millisecond)
		testbed.OpenAndUse(ra, p, "ucb.rt", "echo", 7000, "", 0, nil)
	})
	n.E.RunUntil(5 * time.Second)
	joined := strings.Join(trace, "\n")
	for _, want := range []string{
		"app->sighost CONNECT_REQ svc=echo dest=ucb.rt",
		"sighost->app REQ_ID",
		"peer->ucb.rt SETUP svc=echo",
		"peer<-ucb.rt SETUP_ACK",
		"peer->ucb.rt CONNECT_DONE",
		"sighost->app VCI_FOR_CONN",
	} {
		if !strings.Contains(joined, want) {
			t.Errorf("Figure 4 trace missing %q\ntrace:\n%s", want, joined)
		}
	}
	assertOrdered(t, joined, "CONNECT_REQ", "REQ_ID", "SETUP_ACK", "VCI_FOR_CONN")
	n.E.Shutdown()
}

func assertOrdered(t *testing.T, joined string, subs ...string) {
	t.Helper()
	last := -1
	for _, s := range subs {
		i := strings.Index(joined, s)
		if i < 0 {
			t.Errorf("trace missing %q", s)
			return
		}
		if i < last {
			t.Errorf("%q out of order in trace", s)
			return
		}
		last = i
	}
}

// --- small helpers used by TestCancelRequest ---

func encodeConnectReq(dest, service string, port uint16) []byte {
	return sigmsg.Msg{
		Kind: sigmsg.KindConnectReq, Dest: atm.Addr(dest), Service: service, NotifyPort: port,
	}.Encode()
}

func decodeCookie(raw []byte) uint16 {
	m, err := sigmsg.Decode(raw)
	if err != nil {
		return 0
	}
	return m.Cookie
}
