package signaling

import (
	"errors"
	"fmt"
	"net"
	"time"

	"xunet/internal/atm"
	"xunet/internal/sigmsg"
)

// ErrRPCTimeout is the sentinel for real-TCP signaling timeouts; the
// concrete error is always an *RPCTimeoutError carrying peer/attempt
// context, and errors.Is(err, ErrRPCTimeout) matches it.
var ErrRPCTimeout = errors.New("signaling: rpc timed out")

// RPCTimeoutError records which daemon an RPC was waiting on, which
// operation, on which attempt, and the expired deadline.
type RPCTimeoutError struct {
	Peer    string
	Op      string
	Attempt int
	Waited  time.Duration
}

func (e *RPCTimeoutError) Error() string {
	return fmt.Sprintf("signaling: rpc timed out (%s to %s, attempt %d, waited %v)",
		e.Op, e.Peer, e.Attempt, e.Waited)
}

// Is makes errors.Is(err, ErrRPCTimeout) true for every RPCTimeoutError.
func (e *RPCTimeoutError) Is(target error) bool { return target == ErrRPCTimeout }

// RealClient is the user library for the real-TCP deployment: the same
// RPC exchanges as internal/ulib, spoken to a RealHost daemon over the
// loopback (or any) network. cmd/sigdemo and the realtime tests use it.
//
// The zero value keeps the legacy fixed deadlines (5 s dial, 10 s
// reply, 15 s establish, single attempt); set the timeout fields to
// override, and Attempts > 1 to retry idempotent RPCs with capped
// exponential backoff.
type RealClient struct {
	// SighostAddr is the daemon's TCP address ("127.0.0.1:3177").
	SighostAddr string

	// DialTimeout bounds each TCP connect to the daemon (default 5s).
	DialTimeout time.Duration
	// ReplyTimeout bounds each RPC reply read (default 10s).
	ReplyTimeout time.Duration
	// EstablishTimeout bounds the wait for the asynchronous
	// establishment notification in OpenConnection (default 15s).
	EstablishTimeout time.Duration
	// Attempts is the total tries for idempotent RPCs — export,
	// unexport, cancel, management queries (default 1). CONNECT_REQ is
	// never retried: it allocates a cookie on the daemon.
	Attempts int
	// Backoff is the sleep before the second attempt, doubling per
	// attempt up to MaxBackoff (defaults 100ms / 2s).
	Backoff    time.Duration
	MaxBackoff time.Duration
}

func (c *RealClient) dialTimeout() time.Duration {
	if c.DialTimeout > 0 {
		return c.DialTimeout
	}
	return 5 * time.Second
}

func (c *RealClient) replyTimeout() time.Duration {
	if c.ReplyTimeout > 0 {
		return c.ReplyTimeout
	}
	return 10 * time.Second
}

func (c *RealClient) establishTimeout() time.Duration {
	if c.EstablishTimeout > 0 {
		return c.EstablishTimeout
	}
	return 15 * time.Second
}

// rpc performs a request/reply exchange, retrying idempotent kinds on
// dial failure or reply timeout with capped exponential backoff.
func (c *RealClient) rpc(m sigmsg.Msg) (sigmsg.Msg, error) {
	attempts := 1
	switch m.Kind {
	case sigmsg.KindExportSrv, sigmsg.KindUnexportSrv, sigmsg.KindCancelReq, sigmsg.KindMgmtQuery:
		if c.Attempts > 1 {
			attempts = c.Attempts
		}
	}
	backoff := c.Backoff
	if backoff <= 0 {
		backoff = 100 * time.Millisecond
	}
	maxBackoff := c.MaxBackoff
	if maxBackoff <= 0 {
		maxBackoff = 2 * time.Second
	}
	var lastErr error
	for a := 1; a <= attempts; a++ {
		reply, err := c.rpcOnce(m, a)
		if err == nil || !retryableNetErr(err) {
			return reply, err
		}
		lastErr = err
		if a < attempts {
			time.Sleep(backoff)
			backoff *= 2
			if backoff > maxBackoff {
				backoff = maxBackoff
			}
		}
	}
	return sigmsg.Msg{}, lastErr
}

// retryableNetErr reports whether an RPC attempt failed in a way a
// retry can fix: the daemon was unreachable or the exchange timed out —
// as opposed to a protocol-level refusal.
func retryableNetErr(err error) bool {
	if errors.Is(err, ErrRPCTimeout) {
		return true
	}
	var ne net.Error
	if errors.As(err, &ne) {
		return true
	}
	var oe *net.OpError
	return errors.As(err, &oe)
}

// rpcOnce performs one request/reply exchange over a fresh connection.
func (c *RealClient) rpcOnce(m sigmsg.Msg, attempt int) (sigmsg.Msg, error) {
	conn, err := net.DialTimeout("tcp", c.SighostAddr, c.dialTimeout())
	if err != nil {
		return sigmsg.Msg{}, err
	}
	defer conn.Close()
	// Stack scratch keeps the encode off the heap for typical messages;
	// appendFrame builds prefix+body there so the request is one Write.
	var sbuf [128]byte
	if _, err := conn.Write(appendFrame(sbuf[:0], &m)); err != nil {
		return sigmsg.Msg{}, err
	}
	conn.SetReadDeadline(time.Now().Add(c.replyTimeout()))
	raw, err := ReadFrame(conn)
	if err != nil {
		var ne net.Error
		if errors.As(err, &ne) && ne.Timeout() {
			return sigmsg.Msg{}, &RPCTimeoutError{Peer: c.SighostAddr, Op: m.Kind.String(), Attempt: attempt, Waited: c.replyTimeout()}
		}
		return sigmsg.Msg{}, err
	}
	reply, err := sigmsg.Decode(raw)
	if err != nil {
		return sigmsg.Msg{}, err
	}
	if reply.Kind == sigmsg.KindError {
		return reply, errors.New("sighost: " + reply.Reason)
	}
	return reply, nil
}

// ExportService registers a service, with notifications delivered to
// the given local TCP port.
func (c *RealClient) ExportService(name string, notifyPort uint16) error {
	reply, err := c.rpc(sigmsg.Msg{Kind: sigmsg.KindExportSrv, Service: name, NotifyPort: notifyPort})
	if err != nil {
		return err
	}
	if reply.Kind != sigmsg.KindServiceRegs {
		return fmt.Errorf("sighost: unexpected reply %v", reply.Kind)
	}
	return nil
}

// RealRequest is an incoming call delivered to a real server.
type RealRequest struct {
	Cookie  uint16
	QoS     string
	Comment string
	Service string
	// ReplyTimeout bounds Accept's wait for the granted VCI (default
	// 10s); the server may set it before deciding.
	ReplyTimeout time.Duration
	conn         net.Conn
}

// AwaitServiceRequest accepts one incoming-connection notification on
// the listener.
func AwaitServiceRequest(l net.Listener) (*RealRequest, error) {
	conn, err := l.Accept()
	if err != nil {
		return nil, err
	}
	raw, err := ReadFrame(conn)
	if err != nil {
		conn.Close()
		return nil, err
	}
	m, err := sigmsg.Decode(raw)
	if err != nil || m.Kind != sigmsg.KindIncomingConn {
		conn.Close()
		return nil, fmt.Errorf("sighost: unexpected notification %v", m.Kind)
	}
	return &RealRequest{Cookie: m.Cookie, QoS: m.QoS, Comment: m.Comment, Service: m.Service, conn: conn}, nil
}

// Accept accepts the call and returns the granted VCI and QoS.
func (r *RealRequest) Accept(modifiedQoS string) (atm.VCI, string, error) {
	defer r.conn.Close()
	accept := sigmsg.Msg{Kind: sigmsg.KindAcceptConn, Cookie: r.Cookie, QoS: modifiedQoS}
	var sbuf [128]byte
	if _, err := r.conn.Write(appendFrame(sbuf[:0], &accept)); err != nil {
		return 0, "", err
	}
	wait := r.ReplyTimeout
	if wait <= 0 {
		wait = 10 * time.Second
	}
	r.conn.SetReadDeadline(time.Now().Add(wait))
	raw, err := ReadFrame(r.conn)
	if err != nil {
		var ne net.Error
		if errors.As(err, &ne) && ne.Timeout() {
			return 0, "", &RPCTimeoutError{Peer: "sighost", Op: "accept_connection", Attempt: 1, Waited: wait}
		}
		return 0, "", err
	}
	m, err := sigmsg.Decode(raw)
	if err != nil || m.Kind != sigmsg.KindVCIForConn {
		return 0, "", fmt.Errorf("sighost: expected VCI_FOR_CONN, got %v", m.Kind)
	}
	return m.VCI, m.QoS, nil
}

// Reject declines the call.
func (r *RealRequest) Reject(reason string) error {
	defer r.conn.Close()
	reject := sigmsg.Msg{Kind: sigmsg.KindRejectConn, Cookie: r.Cookie, Reason: reason}
	var sbuf [128]byte
	_, err := r.conn.Write(appendFrame(sbuf[:0], &reject))
	return err
}

// RealConnection is an established client-side circuit.
type RealConnection struct {
	VCI    atm.VCI
	Cookie uint16
	QoS    string
}

// OpenConnection requests a circuit and blocks until established.
// notifyListener must already be listening on the port passed here.
func (c *RealClient) OpenConnection(dest atm.Addr, service string, notifyListener net.Listener, notifyPort uint16, comment, qosStr string) (*RealConnection, error) {
	reply, err := c.rpc(sigmsg.Msg{
		Kind: sigmsg.KindConnectReq, Dest: dest, Service: service,
		QoS: qosStr, NotifyPort: notifyPort, Comment: comment,
	})
	if err != nil {
		return nil, err
	}
	if reply.Kind != sigmsg.KindReqID {
		return nil, fmt.Errorf("sighost: expected REQ_ID, got %v", reply.Kind)
	}
	cookie := reply.Cookie
	if d, ok := notifyListener.(*net.TCPListener); ok {
		d.SetDeadline(time.Now().Add(c.establishTimeout()))
	}
	conn, err := notifyListener.Accept()
	if err != nil {
		var ne net.Error
		if errors.As(err, &ne) && ne.Timeout() {
			return nil, &RPCTimeoutError{Peer: string(dest), Op: "open_connection", Attempt: 1, Waited: c.establishTimeout()}
		}
		return nil, fmt.Errorf("sighost: no establishment notification: %w", err)
	}
	defer conn.Close()
	raw, err := ReadFrame(conn)
	if err != nil {
		return nil, err
	}
	m, err := sigmsg.Decode(raw)
	if err != nil {
		return nil, err
	}
	switch m.Kind {
	case sigmsg.KindVCIForConn:
		return &RealConnection{VCI: m.VCI, Cookie: cookie, QoS: m.QoS}, nil
	case sigmsg.KindConnFailed:
		return nil, errors.New("sighost: " + m.Reason)
	default:
		return nil, fmt.Errorf("sighost: unexpected %v", m.Kind)
	}
}

// Query performs a management query ("services", "calls", "stats",
// "stats.json", "trace", "trace.json", "lists") and returns the rendered
// body.
func (c *RealClient) Query(what string) (string, error) { return c.QueryN(what, 0) }

// QueryN is Query with an event-count override for trace queries (the
// count rides in the otherwise-unused Cookie field; 0 means the default).
func (c *RealClient) QueryN(what string, n int) (string, error) {
	reply, err := c.rpc(sigmsg.Msg{Kind: sigmsg.KindMgmtQuery, Service: what, Cookie: uint16(n)})
	if err != nil {
		return "", err
	}
	if reply.Kind != sigmsg.KindMgmtReply {
		return "", fmt.Errorf("sighost: unexpected reply %v", reply.Kind)
	}
	return reply.Comment, nil
}

// QueryCall performs a management query that targets one call by ID
// ("calltrace", "calltrace.json") and returns the rendered body.
func (c *RealClient) QueryCall(what string, callID uint32) (string, error) {
	reply, err := c.rpc(sigmsg.Msg{Kind: sigmsg.KindMgmtQuery, Service: what, CallID: callID})
	if err != nil {
		return "", err
	}
	if reply.Kind != sigmsg.KindMgmtReply {
		return "", fmt.Errorf("sighost: unexpected reply %v", reply.Kind)
	}
	return reply.Comment, nil
}

// CancelRequest cancels an outstanding request by cookie.
func (c *RealClient) CancelRequest(cookie uint16) error {
	reply, err := c.rpc(sigmsg.Msg{Kind: sigmsg.KindCancelReq, Cookie: cookie})
	if err != nil {
		return err
	}
	if reply.Kind != sigmsg.KindCancelReq {
		return fmt.Errorf("sighost: unexpected reply %v", reply.Kind)
	}
	return nil
}
