package signaling

import (
	"errors"
	"fmt"
	"net"
	"time"

	"xunet/internal/atm"
	"xunet/internal/sigmsg"
)

// RealClient is the user library for the real-TCP deployment: the same
// RPC exchanges as internal/ulib, spoken to a RealHost daemon over the
// loopback (or any) network. cmd/sigdemo and the realtime tests use it.
type RealClient struct {
	// SighostAddr is the daemon's TCP address ("127.0.0.1:3177").
	SighostAddr string
}

// rpc performs one request/reply exchange over a fresh connection.
func (c *RealClient) rpc(m sigmsg.Msg) (sigmsg.Msg, error) {
	conn, err := net.DialTimeout("tcp", c.SighostAddr, 5*time.Second)
	if err != nil {
		return sigmsg.Msg{}, err
	}
	defer conn.Close()
	if err := WriteFrame(conn, m.Encode()); err != nil {
		return sigmsg.Msg{}, err
	}
	conn.SetReadDeadline(time.Now().Add(10 * time.Second))
	raw, err := ReadFrame(conn)
	if err != nil {
		return sigmsg.Msg{}, err
	}
	reply, err := sigmsg.Decode(raw)
	if err != nil {
		return sigmsg.Msg{}, err
	}
	if reply.Kind == sigmsg.KindError {
		return reply, errors.New("sighost: " + reply.Reason)
	}
	return reply, nil
}

// ExportService registers a service, with notifications delivered to
// the given local TCP port.
func (c *RealClient) ExportService(name string, notifyPort uint16) error {
	reply, err := c.rpc(sigmsg.Msg{Kind: sigmsg.KindExportSrv, Service: name, NotifyPort: notifyPort})
	if err != nil {
		return err
	}
	if reply.Kind != sigmsg.KindServiceRegs {
		return fmt.Errorf("sighost: unexpected reply %v", reply.Kind)
	}
	return nil
}

// RealRequest is an incoming call delivered to a real server.
type RealRequest struct {
	Cookie  uint16
	QoS     string
	Comment string
	Service string
	conn    net.Conn
}

// AwaitServiceRequest accepts one incoming-connection notification on
// the listener.
func AwaitServiceRequest(l net.Listener) (*RealRequest, error) {
	conn, err := l.Accept()
	if err != nil {
		return nil, err
	}
	raw, err := ReadFrame(conn)
	if err != nil {
		conn.Close()
		return nil, err
	}
	m, err := sigmsg.Decode(raw)
	if err != nil || m.Kind != sigmsg.KindIncomingConn {
		conn.Close()
		return nil, fmt.Errorf("sighost: unexpected notification %v", m.Kind)
	}
	return &RealRequest{Cookie: m.Cookie, QoS: m.QoS, Comment: m.Comment, Service: m.Service, conn: conn}, nil
}

// Accept accepts the call and returns the granted VCI and QoS.
func (r *RealRequest) Accept(modifiedQoS string) (atm.VCI, string, error) {
	defer r.conn.Close()
	if err := WriteFrame(r.conn, sigmsg.Msg{Kind: sigmsg.KindAcceptConn, Cookie: r.Cookie, QoS: modifiedQoS}.Encode()); err != nil {
		return 0, "", err
	}
	r.conn.SetReadDeadline(time.Now().Add(10 * time.Second))
	raw, err := ReadFrame(r.conn)
	if err != nil {
		return 0, "", err
	}
	m, err := sigmsg.Decode(raw)
	if err != nil || m.Kind != sigmsg.KindVCIForConn {
		return 0, "", fmt.Errorf("sighost: expected VCI_FOR_CONN, got %v", m.Kind)
	}
	return m.VCI, m.QoS, nil
}

// Reject declines the call.
func (r *RealRequest) Reject(reason string) error {
	defer r.conn.Close()
	return WriteFrame(r.conn, sigmsg.Msg{Kind: sigmsg.KindRejectConn, Cookie: r.Cookie, Reason: reason}.Encode())
}

// RealConnection is an established client-side circuit.
type RealConnection struct {
	VCI    atm.VCI
	Cookie uint16
	QoS    string
}

// OpenConnection requests a circuit and blocks until established.
// notifyListener must already be listening on the port passed here.
func (c *RealClient) OpenConnection(dest atm.Addr, service string, notifyListener net.Listener, notifyPort uint16, comment, qosStr string) (*RealConnection, error) {
	reply, err := c.rpc(sigmsg.Msg{
		Kind: sigmsg.KindConnectReq, Dest: dest, Service: service,
		QoS: qosStr, NotifyPort: notifyPort, Comment: comment,
	})
	if err != nil {
		return nil, err
	}
	if reply.Kind != sigmsg.KindReqID {
		return nil, fmt.Errorf("sighost: expected REQ_ID, got %v", reply.Kind)
	}
	cookie := reply.Cookie
	if d, ok := notifyListener.(*net.TCPListener); ok {
		d.SetDeadline(time.Now().Add(15 * time.Second))
	}
	conn, err := notifyListener.Accept()
	if err != nil {
		return nil, fmt.Errorf("sighost: no establishment notification: %w", err)
	}
	defer conn.Close()
	raw, err := ReadFrame(conn)
	if err != nil {
		return nil, err
	}
	m, err := sigmsg.Decode(raw)
	if err != nil {
		return nil, err
	}
	switch m.Kind {
	case sigmsg.KindVCIForConn:
		return &RealConnection{VCI: m.VCI, Cookie: cookie, QoS: m.QoS}, nil
	case sigmsg.KindConnFailed:
		return nil, errors.New("sighost: " + m.Reason)
	default:
		return nil, fmt.Errorf("sighost: unexpected %v", m.Kind)
	}
}

// Query performs a management query ("services", "calls", "stats",
// "stats.json", "trace", "trace.json", "lists") and returns the rendered
// body.
func (c *RealClient) Query(what string) (string, error) { return c.QueryN(what, 0) }

// QueryN is Query with an event-count override for trace queries (the
// count rides in the otherwise-unused Cookie field; 0 means the default).
func (c *RealClient) QueryN(what string, n int) (string, error) {
	reply, err := c.rpc(sigmsg.Msg{Kind: sigmsg.KindMgmtQuery, Service: what, Cookie: uint16(n)})
	if err != nil {
		return "", err
	}
	if reply.Kind != sigmsg.KindMgmtReply {
		return "", fmt.Errorf("sighost: unexpected reply %v", reply.Kind)
	}
	return reply.Comment, nil
}

// QueryCall performs a management query that targets one call by ID
// ("calltrace", "calltrace.json") and returns the rendered body.
func (c *RealClient) QueryCall(what string, callID uint32) (string, error) {
	reply, err := c.rpc(sigmsg.Msg{Kind: sigmsg.KindMgmtQuery, Service: what, CallID: callID})
	if err != nil {
		return "", err
	}
	if reply.Kind != sigmsg.KindMgmtReply {
		return "", fmt.Errorf("sighost: unexpected reply %v", reply.Kind)
	}
	return reply.Comment, nil
}

// CancelRequest cancels an outstanding request by cookie.
func (c *RealClient) CancelRequest(cookie uint16) error {
	reply, err := c.rpc(sigmsg.Msg{Kind: sigmsg.KindCancelReq, Cookie: cookie})
	if err != nil {
		return err
	}
	if reply.Kind != sigmsg.KindCancelReq {
		return fmt.Errorf("sighost: unexpected reply %v", reply.Kind)
	}
	return nil
}
