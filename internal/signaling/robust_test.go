package signaling

// In-package unit tests for the robustness machinery: the reliable peer
// channel (sequence numbers, ack-driven retransmission with capped
// exponential backoff, dedup, keepalive death), the crash-recovery
// journal, and the bind-timer hygiene audit the chaos issue demands
// (every teardown path must clear both the wait_for_bind entry and its
// timer — a stale timer firing after the cookie is gone must be a
// no-op).
//
// The harness replaces the simulator with a deterministic toy world: a
// controllable clock, inspectable timers, and an in-memory peer queue
// that can be partitioned. That makes assertions about *which* timer
// exists at *which* deadline possible, which the full sim hides.

import (
	"fmt"
	"testing"
	"time"

	"xunet/internal/atm"
	"xunet/internal/kern"
	"xunet/internal/memnet"
	"xunet/internal/qos"
	"xunet/internal/sigmsg"
)

type fakeTimer struct {
	owner    *fakeEnv
	at       time.Duration
	seq      int
	fn       func()
	canceled bool
	fired    bool
}

type delivery struct {
	from, to atm.Addr
	m        sigmsg.Msg
}

// world holds the shared clock, timer list and peer wire.
type world struct {
	t        *testing.T
	now      time.Duration
	timerSeq int
	timers   []*fakeTimer
	queue    []delivery
	drop     bool // partition: peer messages vanish in flight
	hosts    map[atm.Addr]*Sighost
}

func newWorld(t *testing.T) *world {
	return &world{t: t, hosts: make(map[atm.Addr]*Sighost)}
}

// pump drains the peer wire until quiescent.
func (w *world) pump() {
	for len(w.queue) > 0 {
		d := w.queue[0]
		w.queue = w.queue[1:]
		if sh, ok := w.hosts[d.to]; ok {
			sh.HandlePeer(d.from, d.m)
		}
	}
}

// advance fires due timers in deadline order (ties by creation order),
// pumping the wire after each, then sets the clock to target.
func (w *world) advance(target time.Duration) {
	for {
		var next *fakeTimer
		for _, tm := range w.timers {
			if tm.canceled || tm.fired || tm.at > target {
				continue
			}
			if next == nil || tm.at < next.at || (tm.at == next.at && tm.seq < next.seq) {
				next = tm
			}
		}
		if next == nil {
			break
		}
		w.now = next.at
		next.fired = true
		next.fn()
		w.pump()
	}
	w.now = target
}

type fakeConn struct {
	msgs   []sigmsg.Msg
	closed bool
}

func (c *fakeConn) Send(m sigmsg.Msg) error { c.msgs = append(c.msgs, m); return nil }
func (c *fakeConn) Close()                  { c.closed = true }

type sentRec struct {
	at  time.Duration
	dst atm.Addr
	m   sigmsg.Msg
}

type fakeEnv struct {
	w    *world
	addr atm.Addr
	ip   memnet.IPAddr

	randCtr     uint16
	nextVCI     atm.VCI
	released    []atm.VCI
	disconnects []atm.VCI
	conns       []*fakeConn
	sent        []sentRec // every SendPeer, including dropped ones
}

func (e *fakeEnv) Addr() atm.Addr            { return e.addr }
func (e *fakeEnv) LocalIP() memnet.IPAddr    { return e.ip }
func (e *fakeEnv) Charge(d time.Duration)    {}
func (e *fakeEnv) Rand16() uint16            { e.randCtr++; return e.randCtr }
func (e *fakeEnv) Now() time.Duration        { return e.w.now }

func (e *fakeEnv) After(d time.Duration, what string, fn func()) CancelFunc {
	e.w.timerSeq++
	tm := &fakeTimer{owner: e, at: e.w.now + d, seq: e.w.timerSeq, fn: fn}
	e.w.timers = append(e.w.timers, tm)
	return func() { tm.canceled = true }
}

func (e *fakeEnv) SendPeer(dst atm.Addr, m sigmsg.Msg) error {
	e.sent = append(e.sent, sentRec{at: e.w.now, dst: dst, m: m})
	if e.w.drop {
		return nil // lost on the wire; the send itself succeeded
	}
	if _, ok := e.w.hosts[dst]; !ok {
		return fmt.Errorf("no PVC to %s", dst)
	}
	e.w.queue = append(e.w.queue, delivery{from: e.addr, to: dst, m: m})
	return nil
}

// SendPeerRaw checks the cached frame is a faithful encoding of m, then
// delivers through the normal path so every existing assertion on sent
// records covers retransmissions too.
func (e *fakeEnv) SendPeerRaw(dst atm.Addr, m sigmsg.Msg, raw []byte) error {
	if dec, err := sigmsg.Decode(raw); err != nil || dec != m {
		e.w.t.Fatalf("SendPeerRaw: cached frame mismatch: %+v vs %+v (err %v)", dec, m, err)
	}
	return e.SendPeer(dst, m)
}

func (e *fakeEnv) Dial(ip memnet.IPAddr, port uint16, cb func(Conn, error)) {
	c := &fakeConn{}
	e.conns = append(e.conns, c)
	cb(c, nil)
}

func (e *fakeEnv) SetupVC(dst atm.Addr, q qos.QoS) (*VCHandle, error) {
	e.nextVCI++
	v := e.nextVCI + 100
	return &VCHandle{SrcVCI: v, DstVCI: v, Release: func() { e.released = append(e.released, v) }}, nil
}

func (e *fakeEnv) KernelDisconnect(endpoint memnet.IPAddr, vci atm.VCI) {
	e.disconnects = append(e.disconnects, vci)
}

// lastMsg finds the most recent application message of the given kind
// across every connection the env dialed or served.
func (e *fakeEnv) lastMsg(k sigmsg.Kind) (sigmsg.Msg, bool) {
	for i := len(e.conns) - 1; i >= 0; i-- {
		for j := len(e.conns[i].msgs) - 1; j >= 0; j-- {
			if e.conns[i].msgs[j].Kind == k {
				return e.conns[i].msgs[j], true
			}
		}
	}
	return sigmsg.Msg{}, false
}

// countSent counts SendPeer calls of one kind.
func (e *fakeEnv) countSent(k sigmsg.Kind) int {
	n := 0
	for _, s := range e.sent {
		if s.m.Kind == k {
			n++
		}
	}
	return n
}

// pair builds two connected sighosts a.rt / b.rt with the given bind
// timeout, reliability config (zero RelConfig leaves reliability off)
// and journal flag.
func pair(t *testing.T, bindTO time.Duration, rel *RelConfig, journal bool) (*world, *Sighost, *Sighost, *fakeEnv, *fakeEnv) {
	w := newWorld(t)
	envA := &fakeEnv{w: w, addr: "a.rt", ip: memnet.IP4(10, 0, 0, 1)}
	envB := &fakeEnv{w: w, addr: "b.rt", ip: memnet.IP4(10, 0, 0, 2)}
	shA := New(envA, CostModel{BindTimeout: bindTO})
	shB := New(envB, CostModel{BindTimeout: bindTO})
	if rel != nil {
		shA.EnableReliability(*rel)
		shB.EnableReliability(*rel)
	}
	if journal {
		shA.EnableJournal(0)
		shB.EnableJournal(0)
	}
	w.hosts["a.rt"] = shA
	w.hosts["b.rt"] = shB
	return w, shA, shB, envA, envB
}

// checkBindInvariant is the audit: live (unfired, uncanceled) timers
// owned by env whose purpose is wait_for_bind must exactly match the
// waitBind list. With reliability off every sighost timer IS a bind
// timer, so the count comparison is exact.
func checkBindInvariant(t *testing.T, w *world, sh *Sighost, env *fakeEnv) {
	t.Helper()
	live := 0
	for _, tm := range w.timers {
		if tm.owner == env && !tm.canceled && !tm.fired {
			live++
		}
	}
	if live != len(sh.waitBind) {
		t.Fatalf("%s: %d live timers but %d wait_for_bind entries", sh.env.Addr(), live, len(sh.waitBind))
	}
	for vci, bw := range sh.waitBind {
		if _, ok := sh.cookies[vci]; !ok {
			t.Fatalf("%s: wait_for_bind VCI %d has no cookie entry", sh.env.Addr(), vci)
		}
		if bw.c.state == callReleased {
			t.Fatalf("%s: wait_for_bind VCI %d points at a released call", sh.env.Addr(), vci)
		}
	}
}

// openCall drives one call from a client on A to service svc on B up to
// the point where both sides handed out VCIs (established, unbound).
// Returns the client conn, the client's granted VCI/cookie and the
// server's granted VCI/cookie.
func openCall(t *testing.T, w *world, shA, shB *Sighost, envA, envB *fakeEnv, svc string) (cliVCI atm.VCI, cliCookie uint16, srvVCI atm.VCI, srvCookie uint16) {
	t.Helper()
	appConn := &fakeConn{}
	shA.HandleApp(appConn, envA.ip, sigmsg.Msg{Kind: sigmsg.KindConnectReq, Dest: "b.rt", Service: svc, NotifyPort: 7000})
	w.pump()
	// Server got INCOMING_CONN; accept it.
	inc, ok := envB.lastMsg(sigmsg.KindIncomingConn)
	if !ok {
		t.Fatal("no INCOMING_CONN reached the server")
	}
	shB.HandleApp(&fakeConn{}, envB.ip, sigmsg.Msg{Kind: sigmsg.KindAcceptConn, Cookie: inc.Cookie})
	w.pump()
	vfc, ok := envA.lastMsg(sigmsg.KindVCIForConn)
	if !ok {
		t.Fatal("client never got VCI_FOR_CONN")
	}
	svfc, ok := envB.lastMsg(sigmsg.KindVCIForConn)
	if !ok {
		t.Fatal("server never got VCI_FOR_CONN")
	}
	return vfc.VCI, vfc.Cookie, svfc.VCI, svfc.Cookie
}

// bindBoth authenticates both endpoints' bind/connect indications.
func bindBoth(w *world, shA, shB *Sighost, envA, envB *fakeEnv, cliVCI atm.VCI, cliCookie uint16, srvVCI atm.VCI, srvCookie uint16) {
	shA.HandleKernel(envA.ip, kern.KMsg{Kind: kern.MsgConnect, VCI: cliVCI, Cookie: cliCookie})
	shB.HandleKernel(envB.ip, kern.KMsg{Kind: kern.MsgBind, VCI: srvVCI, Cookie: srvCookie})
	w.pump()
}

func exportEcho(t *testing.T, shB *Sighost, envB *fakeEnv, svc string) {
	t.Helper()
	shB.HandleApp(&fakeConn{}, envB.ip, sigmsg.Msg{Kind: sigmsg.KindExportSrv, Service: svc, NotifyPort: 6000})
}

// TestBindTimerAudit walks every teardown path and asserts the
// waitBind/timer pairing never leaks: entry and timer die together, and
// stale timers fire as no-ops.
func TestBindTimerAudit(t *testing.T) {
	w, shA, shB, envA, envB := pair(t, 5*time.Second, nil, false)
	exportEcho(t, shB, envB, "echo")

	check := func() {
		checkBindInvariant(t, w, shA, envA)
		checkBindInvariant(t, w, shB, envB)
	}

	// Path 1: bind success, then socket close.
	cv, cc, sv, sc := openCall(t, w, shA, shB, envA, envB, "echo")
	check()
	if len(shA.waitBind) != 1 || len(shB.waitBind) != 1 {
		t.Fatalf("expected one wait_for_bind entry per side, got %d/%d", len(shA.waitBind), len(shB.waitBind))
	}
	bindBoth(w, shA, shB, envA, envB, cv, cc, sv, sc)
	check()
	if len(shA.waitBind) != 0 || len(shA.vciMap) != 1 {
		t.Fatalf("bind did not move the entry to VCI_mapping")
	}
	shA.HandleKernel(envA.ip, kern.KMsg{Kind: kern.MsgClose, VCI: cv})
	w.pump()
	check()
	if len(shA.calls) != 0 || len(shB.calls) != 0 {
		t.Fatalf("close did not tear down both sides: %d/%d calls", len(shA.calls), len(shB.calls))
	}

	// Path 2: bind timeout on both sides.
	openCall(t, w, shA, shB, envA, envB, "echo")
	check()
	torn := shA.Stats().CallsTorn
	w.advance(w.now + 6*time.Second)
	check()
	if len(shA.waitBind) != 0 || len(shB.waitBind) != 0 || len(shA.calls) != 0 || len(shB.calls) != 0 {
		t.Fatal("bind timeout left state behind")
	}
	if shA.Stats().CallsTorn == torn {
		t.Fatal("bind timeout tore nothing down")
	}
	if shA.Stats().BindTimeouts == 0 {
		t.Fatal("bind timeout not counted")
	}

	// Path 3: cookie authentication failure.
	cv, cc, _, _ = openCall(t, w, shA, shB, envA, envB, "echo")
	shA.HandleKernel(envA.ip, kern.KMsg{Kind: kern.MsgConnect, VCI: cv, Cookie: cc + 1})
	w.pump()
	check()
	if shA.Stats().AuthFailures == 0 {
		t.Fatal("auth failure not counted")
	}
	if len(shA.calls) != 0 {
		t.Fatal("auth failure did not tear the call")
	}
	w.advance(w.now + 6*time.Second) // stale timer would fire here
	check()

	// Path 4: client cancel before the server answers, then a late
	// accept arriving for the dead call.
	appConn := &fakeConn{}
	shA.HandleApp(appConn, envA.ip, sigmsg.Msg{Kind: sigmsg.KindConnectReq, Dest: "b.rt", Service: "echo", NotifyPort: 7000})
	w.pump()
	reqID := appConn.msgs[0]
	if reqID.Kind != sigmsg.KindReqID {
		t.Fatalf("first app reply = %v", reqID.Kind)
	}
	shA.HandleApp(appConn, envA.ip, sigmsg.Msg{Kind: sigmsg.KindCancelReq, Cookie: reqID.Cookie})
	w.pump()
	check()
	inc, _ := envB.lastMsg(sigmsg.KindIncomingConn)
	shB.HandleApp(&fakeConn{}, envB.ip, sigmsg.Msg{Kind: sigmsg.KindAcceptConn, Cookie: inc.Cookie})
	w.pump() // SETUP_ACK for the canceled call must be ignored
	check()
	if len(shA.calls) != 0 || len(shA.waitBind) != 0 {
		t.Fatal("late SETUP_ACK resurrected a canceled call")
	}

	// Nothing may be left anywhere.
	if len(shA.cookies) != 0 || len(shB.cookies) != 0 {
		t.Fatalf("cookie table leaked: %d/%d", len(shA.cookies), len(shB.cookies))
	}
	w.advance(w.now + time.Minute)
	check()
}

// TestRetransmitBackoffAndExhaustion partitions the wire and checks the
// exact retransmission schedule (RTO, 2RTO, 4RTO, capped), then the
// retry-budget teardown with client notification.
func TestRetransmitBackoffAndExhaustion(t *testing.T) {
	rel := RelConfig{RTO: 100 * time.Millisecond, MaxBackoffShift: 2, MaxRetries: 3}
	w, shA, _, envA, _ := pair(t, time.Minute, &rel, false)
	w.drop = true // every peer message vanishes

	shA.HandleApp(&fakeConn{}, envA.ip, sigmsg.Msg{Kind: sigmsg.KindConnectReq, Dest: "b.rt", Service: "echo", NotifyPort: 7000})
	w.advance(10 * time.Second)

	var setupAt []time.Duration
	for _, s := range envA.sent {
		if s.m.Kind == sigmsg.KindSetup {
			setupAt = append(setupAt, s.at)
		}
	}
	want := []time.Duration{0, 100 * time.Millisecond, 300 * time.Millisecond, 700 * time.Millisecond}
	if len(setupAt) != len(want) {
		t.Fatalf("SETUP sent %d times at %v, want %d", len(setupAt), setupAt, len(want))
	}
	for i := range want {
		if setupAt[i] != want[i] {
			t.Fatalf("retransmit %d at %v, want %v (schedule %v)", i, setupAt[i], want[i], setupAt)
		}
	}
	snap := shA.Obs.Snapshot()
	if got := snap.Count("sighost.rel.retransmits"); got != 3 {
		t.Errorf("retransmits = %d, want 3", got)
	}
	if got := snap.Count("sighost.rel.exhausted"); got != 1 {
		t.Errorf("exhausted = %d, want 1", got)
	}
	if len(shA.calls) != 0 || len(shA.outgoing) != 0 {
		t.Error("exhausted call not torn down")
	}
	fail, ok := envA.lastMsg(sigmsg.KindConnFailed)
	if !ok || fail.Reason != "signaling retransmit budget exhausted" {
		t.Errorf("client notification = %+v, ok=%v", fail, ok)
	}
	// No timers may be left running.
	for _, tm := range w.timers {
		if !tm.canceled && !tm.fired {
			t.Fatalf("stuck timer at %v after exhaustion", tm.at)
		}
	}
}

// TestReliableFlowAcksAndDedup runs a clean reliable call and then
// replays a sequenced message, checking dedup and always-ack.
func TestReliableFlowAcksAndDedup(t *testing.T) {
	rel := RelConfig{RTO: 100 * time.Millisecond, MaxBackoffShift: 2, MaxRetries: 3}
	w, shA, shB, envA, envB := pair(t, time.Minute, &rel, false)
	exportEcho(t, shB, envB, "echo")
	cv, cc, sv, sc := openCall(t, w, shA, shB, envA, envB, "echo")
	bindBoth(w, shA, shB, envA, envB, cv, cc, sv, sc)

	// All reliable messages must be acked: no unacked state anywhere.
	for _, sh := range []*Sighost{shA, shB} {
		for peer, lk := range sh.rel.links {
			if len(lk.unacked) != 0 {
				t.Fatalf("%s: %d unacked messages to %s after clean flow", sh.env.Addr(), len(lk.unacked), peer)
			}
		}
	}
	if shA.Obs.Snapshot().Count("sighost.rel.acks") == 0 {
		t.Fatal("no acks received on the origin side")
	}

	// Replay: a duplicated SETUP (same seq, same epoch) must be consumed
	// by the dedup window, not processed, and acked again.
	lk := shB.rel.links["a.rt"]
	dupSeq := lk.floor // highest delivered seq
	acksBefore := envB.countSent(sigmsg.KindPeerAck)
	dupsBefore := shB.Obs.Snapshot().Count("sighost.rel.dups")
	callsBefore := len(shB.calls)
	shB.HandlePeer("a.rt", sigmsg.Msg{Kind: sigmsg.KindSetup, CallID: 1, Service: "echo", Seq: dupSeq, Epoch: lk.rxEpoch})
	w.pump()
	if got := shB.Obs.Snapshot().Count("sighost.rel.dups"); got != dupsBefore+1 {
		t.Errorf("dups = %d, want %d", got, dupsBefore+1)
	}
	if len(shB.calls) != callsBefore {
		t.Error("duplicate SETUP created call state")
	}
	if got := envB.countSent(sigmsg.KindPeerAck); got != acksBefore+1 {
		t.Errorf("duplicate was not re-acked: %d acks, want %d", got, acksBefore+1)
	}

	// Stale epoch: a message from a pre-crash incarnation is dropped.
	staleBefore := shB.Obs.Snapshot().Count("sighost.rel.stale_epoch")
	shB.HandlePeer("a.rt", sigmsg.Msg{Kind: sigmsg.KindSetup, CallID: 77, Service: "echo", Seq: 99, Epoch: lk.rxEpoch - 1})
	w.pump()
	if got := shB.Obs.Snapshot().Count("sighost.rel.stale_epoch"); got != staleBefore+1 {
		t.Errorf("stale_epoch = %d, want %d", got, staleBefore+1)
	}
	if _, ok := shB.calls[callKey{peer: "a.rt", id: 77, origin: false}]; ok {
		t.Error("stale-epoch SETUP created call state")
	}
}

// TestKeepaliveDeclaresPeerDead partitions the wire under an established
// call and checks the miss-threshold death cascade of §7.
func TestKeepaliveDeclaresPeerDead(t *testing.T) {
	rel := RelConfig{RTO: 100 * time.Millisecond, MaxBackoffShift: 2, MaxRetries: 10,
		KeepaliveEvery: time.Second, KeepaliveMisses: 2}
	w, shA, shB, envA, envB := pair(t, time.Minute, &rel, false)
	exportEcho(t, shB, envB, "echo")
	cv, cc, sv, sc := openCall(t, w, shA, shB, envA, envB, "echo")
	bindBoth(w, shA, shB, envA, envB, cv, cc, sv, sc)
	if len(shA.calls) != 1 || len(shB.calls) != 1 {
		t.Fatalf("setup failed: %d/%d calls", len(shA.calls), len(shB.calls))
	}

	w.drop = true
	w.advance(w.now + 10*time.Second)

	for _, sh := range []*Sighost{shA, shB} {
		if got := sh.Obs.Snapshot().Count("sighost.rel.peer_deaths"); got != 1 {
			t.Errorf("%s: peer_deaths = %d, want 1", sh.env.Addr(), got)
		}
		if len(sh.calls) != 0 || len(sh.vciMap) != 0 || len(sh.cookies) != 0 {
			t.Errorf("%s: death cascade left state: calls=%d vciMap=%d cookies=%d",
				sh.env.Addr(), len(sh.calls), len(sh.vciMap), len(sh.cookies))
		}
	}
	// The dead circuit must be disconnected at the endpoints.
	if len(envA.disconnects) == 0 || len(envB.disconnects) == 0 {
		t.Error("peer death did not disconnect endpoint sockets")
	}
	// Keepalives actually flowed before the declaration.
	if envA.countSent(sigmsg.KindKeepalive) == 0 {
		t.Error("no keepalive probes were sent")
	}
	// The world must drain: no timers stuck re-arming forever.
	w.advance(w.now + 30*time.Second)
	for _, tm := range w.timers {
		if !tm.canceled && !tm.fired {
			t.Fatalf("stuck timer at %v after peer death", tm.at)
		}
	}
}

// TestCrashRecovery exercises the journal: a bound call survives the
// crash, a granted-but-unbound call gets its timer re-armed with the
// REMAINING deadline, and a mid-establishment call is torn down with
// client notification and a peer RELEASE.
func TestCrashRecovery(t *testing.T) {
	rel := RelConfig{RTO: 100 * time.Millisecond, MaxBackoffShift: 2, MaxRetries: 10}
	w, shA, shB, envA, envB := pair(t, 5*time.Second, &rel, true)
	exportEcho(t, shB, envB, "echo")
	exportEcho(t, shB, envB, "slow")

	// Call 1: fully bound.
	cv1, cc1, sv1, sc1 := openCall(t, w, shA, shB, envA, envB, "echo")
	bindBoth(w, shA, shB, envA, envB, cv1, cc1, sv1, sc1)
	// Call 2: granted to the client but never bound. Its bind deadline
	// is now+5s.
	cv2, _, _, _ := openCall(t, w, shA, shB, envA, envB, "echo")
	grantAt := w.now
	// Call 3: mid-establishment — the server has not answered yet.
	shA.HandleApp(&fakeConn{}, envA.ip, sigmsg.Msg{Kind: sigmsg.KindConnectReq, Dest: "b.rt", Service: "slow", NotifyPort: 7003})
	w.pump()

	if len(shA.calls) != 3 {
		t.Fatalf("precondition: %d calls on A, want 3", len(shA.calls))
	}

	// Crash A one second into call 2's bind window.
	w.advance(grantAt + time.Second)
	shA.Crash()
	if !shA.Down() {
		t.Fatal("Crash did not mark the entity down")
	}
	if len(shA.calls) != 0 || len(shA.waitBind) != 0 || len(shA.cookies) != 0 {
		t.Fatal("crash left volatile state")
	}
	// Input while down is dropped.
	shA.HandlePeer("b.rt", sigmsg.Msg{Kind: sigmsg.KindKeepalive})
	if shA.Obs.Snapshot().Count("sighost.dropped_while_down") == 0 {
		t.Error("input during outage was not dropped")
	}

	// Recover one more second in: call 2 has 3s of its window left.
	w.advance(grantAt + 2*time.Second)
	shA.Recover()
	snap := shA.Obs.Snapshot()
	if got := snap.Count("sighost.recovered.bound"); got != 1 {
		t.Errorf("recovered.bound = %d, want 1", got)
	}
	if got := snap.Count("sighost.recovered.wait_bind"); got != 1 {
		t.Errorf("recovered.wait_bind = %d, want 1", got)
	}
	if got := snap.Count("sighost.recovery.aborted_calls"); got != 1 {
		t.Errorf("recovery.aborted_calls = %d, want 1", got)
	}
	// Call 1 must be live and bound again.
	if c, ok := shA.vciMap[cv1]; !ok || c.state != callEstablished {
		t.Error("bound call did not survive recovery")
	}
	if got, want := shA.cookies[cv1], cc1; got != want {
		t.Errorf("recovered cookie = %d, want %d", got, want)
	}
	// Call 3's abort notified the client and released the peer.
	if fail, ok := envA.lastMsg(sigmsg.KindConnFailed); !ok || fail.Reason != "signaling entity restarted" {
		t.Errorf("client abort notification = %+v ok=%v", fail, ok)
	}
	w.pump()
	if _, ok := shB.calls[callKey{peer: "a.rt", id: 3, origin: false}]; ok {
		t.Error("peer kept the aborted call after RELEASE")
	}

	// Call 2's re-armed timer must fire at the ORIGINAL deadline
	// (grantAt+5s), not a fresh full window.
	bw, ok := shA.waitBind[cv2]
	if !ok {
		t.Fatal("granted call missing from wait_for_bind after recovery")
	}
	if bw.deadline != grantAt+5*time.Second {
		t.Errorf("re-armed deadline = %v, want %v", bw.deadline, grantAt+5*time.Second)
	}
	w.advance(grantAt + 4900*time.Millisecond)
	if _, ok := shA.waitBind[cv2]; !ok {
		t.Fatal("bind timer fired early after recovery")
	}
	w.advance(grantAt + 5100*time.Millisecond)
	if _, ok := shA.waitBind[cv2]; ok {
		t.Fatal("re-armed bind timer never fired")
	}

	// New incarnation: fresh sends carry a bumped epoch.
	shA.HandleApp(&fakeConn{}, envA.ip, sigmsg.Msg{Kind: sigmsg.KindConnectReq, Dest: "b.rt", Service: "echo", NotifyPort: 7004})
	var lastSetup sigmsg.Msg
	for _, s := range envA.sent {
		if s.m.Kind == sigmsg.KindSetup {
			lastSetup = s.m
		}
	}
	if lastSetup.Epoch != 2 {
		t.Errorf("post-recovery SETUP epoch = %d, want 2", lastSetup.Epoch)
	}
	// And the call-ID allocator did not rewind.
	if lastSetup.CallID <= 3 {
		t.Errorf("post-recovery call ID %d reuses pre-crash space", lastSetup.CallID)
	}
}

// TestRecoveryExpiredDeadline crashes past a granted call's bind
// deadline: recovery must tear it down immediately rather than re-arm a
// dead timer.
func TestRecoveryExpiredDeadline(t *testing.T) {
	w, shA, shB, envA, envB := pair(t, time.Second, nil, true)
	exportEcho(t, shB, envB, "echo")
	openCall(t, w, shA, shB, envA, envB, "echo")
	shA.Crash()
	w.advance(w.now + 10*time.Second) // outage outlives the bind window
	shA.Recover()
	if len(shA.waitBind) != 0 || len(shA.calls) != 0 {
		t.Fatal("expired grant survived recovery")
	}
	if shA.Stats().BindTimeouts == 0 {
		t.Error("expired grant not counted as a bind timeout")
	}
}

// TestJournalCompaction drives many short-lived calls through a tiny
// journal and checks the log stays bounded via compaction.
func TestJournalCompaction(t *testing.T) {
	w, shA, shB, envA, envB := pair(t, time.Minute, nil, false)
	shA.EnableJournal(16)
	shB.EnableJournal(16)
	exportEcho(t, shB, envB, "echo")
	for i := 0; i < 20; i++ {
		cv, cc, sv, sc := openCall(t, w, shA, shB, envA, envB, "echo")
		bindBoth(w, shA, shB, envA, envB, cv, cc, sv, sc)
		shA.HandleKernel(envA.ip, kern.KMsg{Kind: kern.MsgClose, VCI: cv})
		w.pump()
	}
	if shA.jr.n > 16 {
		t.Errorf("journal grew past its bound: %d records", shA.jr.n)
	}
	snap := shA.Obs.Snapshot()
	if snap.Count("sighost.journal.compactions") == 0 {
		t.Error("journal never compacted")
	}
	// Records land batched, at most one durable append per dispatch.
	if a, b := snap.Count("sighost.journal.appends"), snap.Count("sighost.journal.batches"); b == 0 || b > a {
		t.Errorf("appends=%d batches=%d: batching not in effect", a, b)
	}
	// After 20 clean calls the compacted log holds only the export.
	shA.compactJournal()
	for _, r := range shA.jr.records() {
		if r.op != jExport {
			t.Errorf("dead call record op=%d survived compaction", r.op)
		}
	}
}

// TestRetransmitEncodeOnce drops every frame and asserts the codec runs
// exactly once per distinct reliable message, no matter how many times
// the retry machinery resends each one.
func TestRetransmitEncodeOnce(t *testing.T) {
	rel := RelConfig{RTO: 100 * time.Millisecond, MaxBackoffShift: 2, MaxRetries: 3}
	w, shA, _, envA, _ := pair(t, time.Minute, &rel, false)
	w.drop = true // every peer message vanishes, so everything retries

	shA.HandleApp(&fakeConn{}, envA.ip, sigmsg.Msg{Kind: sigmsg.KindConnectReq, Dest: "b.rt", Service: "echo", NotifyPort: 7000})
	w.advance(10 * time.Second)

	distinct := make(map[uint32]bool)
	total := 0
	for _, s := range envA.sent {
		if s.m.Seq != 0 { // sequenced = went through the reliable path
			distinct[s.m.Seq] = true
			total++
		}
	}
	if total <= len(distinct) {
		t.Fatalf("scenario produced no retransmissions (%d sends, %d distinct)", total, len(distinct))
	}
	if got := shA.Obs.Snapshot().Count("sighost.rel.encodes"); got != uint64(len(distinct)) {
		t.Errorf("encodes = %d, want %d (one per distinct message across %d sends)", got, len(distinct), total)
	}
}
