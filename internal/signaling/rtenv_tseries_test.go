package signaling_test

import (
	"strings"
	"testing"
	"time"

	"xunet/internal/obs/tseries"
	"xunet/internal/sigmsg"
	"xunet/internal/signaling"
)

// Wall-clock telemetry on the real daemon: the scrape must adopt the
// Go runtime metrics, the MGMT queries must serve live content, and the
// OpenMetrics endpoint must render the registry in exposition format.
func TestRealTSeriesScrape(t *testing.T) {
	h := startReal(t)
	h.EnableTSeries(tseries.Config{Interval: 5 * time.Millisecond})

	// Wait for a few scrape ticks to land (wall clock; poll, don't sleep
	// a fixed amount — loaded CI machines stall tickers).
	deadline := time.Now().Add(5 * time.Second)
	var body string
	for time.Now().Before(deadline) {
		reply, err := realQuery(t, h.ListenAddr(), signaling.MgmtTSeries)
		if err != nil {
			t.Fatal(err)
		}
		if reply.Kind != sigmsg.KindMgmtReply {
			t.Fatalf("tseries reply kind %v: %q", reply.Kind, reply.Reason)
		}
		body = reply.Comment
		if strings.Contains(body, "go.goroutines") && !strings.Contains(body, "0 ticks") {
			break
		}
		time.Sleep(10 * time.Millisecond)
	}
	if !strings.Contains(body, "go.goroutines") || !strings.Contains(body, "go.heap_inuse_bytes") {
		t.Fatalf("scrape never adopted runtime metrics:\n%.400s", body)
	}

	reply, err := realQuery(t, h.ListenAddr(), signaling.MgmtHealth)
	if err != nil || reply.Kind != sigmsg.KindMgmtReply {
		t.Fatalf("health query: kind=%v err=%v", reply.Kind, err)
	}

	om := h.OpenMetrics()
	for _, want := range []string{"# TYPE go_goroutines gauge", "go_goroutines ", "# EOF"} {
		if !strings.Contains(om, want) {
			t.Errorf("OpenMetrics missing %q:\n%.400s", want, om)
		}
	}
	if !strings.HasSuffix(strings.TrimRight(om, "\n"), "# EOF") {
		t.Error("OpenMetrics must end with # EOF")
	}
}
