package signaling_test

import (
	"encoding/json"
	"strings"
	"testing"
	"time"

	"xunet/internal/kern"
	"xunet/internal/obs"
	"xunet/internal/signaling"
	"xunet/internal/testbed"
)

// TestStatsQueryMidStorm exercises the MGMT_STATS surface while the
// signaling entity is busy: an in-sim operator process scrapes stats.json
// twice during a staggered call storm. The scrape itself runs through the
// ordinary RPC path, so it is serialized with call handling — the
// snapshots must be internally consistent, and every counter must be
// monotone between them.
func TestStatsQueryMidStorm(t *testing.T) {
	n, ra, rb, err := testbed.NewTestbed(testbed.Options{
		DeviceBuffers: kern.FixedDeviceBuffers,
		FDTableSize:   kern.FixedFDTableSize,
	})
	if err != nil {
		t.Fatal(err)
	}
	testbed.StartEchoServer(rb, "echo", 6000)
	n.E.RunUntil(time.Second)

	res := testbed.CallStorm(ra, "ucb.rt", "echo", testbed.StormConfig{
		Count: 30, Hold: 200 * time.Millisecond, Stagger: 20 * time.Millisecond,
	})

	scrape := func(p *kern.Proc, into *obs.Snapshot) {
		body, err := ra.Lib.Query(p, signaling.MgmtStatsJSON)
		if err != nil {
			t.Error(err)
			return
		}
		if err := json.Unmarshal([]byte(body), into); err != nil {
			t.Errorf("bad stats.json: %v", err)
		}
	}
	var mid, late obs.Snapshot
	ra.Stack.Spawn("operator", func(p *kern.Proc) {
		p.SP.Sleep(1*time.Second + 150*time.Millisecond) // some calls up, more launching
		scrape(p, &mid)
		p.SP.Sleep(400 * time.Millisecond) // deeper into the storm
		scrape(p, &late)
	})
	n.E.RunUntil(time.Minute)
	if res.Succeeded != 30 {
		t.Fatalf("storm: %d/30 calls succeeded", res.Succeeded)
	}
	if len(mid.Counters) == 0 || len(late.Counters) == 0 {
		t.Fatal("empty snapshots")
	}

	// Counter monotonicity across the two mid-storm scrapes. Func-backed
	// occupancy metrics (list sizes, live cookies) report instantaneous
	// state and legitimately shrink as calls drain; everything else must
	// only grow.
	for _, c := range mid.Counters {
		if strings.HasPrefix(c.Name, "sighost.list.") || c.Name == "sighost.cookies" ||
			c.Name == "sighost.calls.active" {
			continue
		}
		after, ok := late.Value(c.Name)
		if !ok {
			t.Errorf("counter %s vanished between scrapes", c.Name)
			continue
		}
		if after < c.Value {
			t.Errorf("counter %s went backwards: %d -> %d", c.Name, c.Value, after)
		}
	}
	// The storm must be visible in the mid-storm scrape: some calls
	// established, and setup latency observations match the established
	// count (every established call contributes exactly one total-setup
	// observation).
	if est := mid.Count("sighost.calls.established"); est == 0 {
		t.Error("mid-storm scrape saw no established calls")
	}
	for _, snap := range []*obs.Snapshot{&mid, &late} {
		for _, h := range snap.Hists {
			var sum uint64
			for _, b := range h.Buckets {
				sum += b.N
			}
			if sum != h.Count {
				t.Errorf("histogram %s: bucket sum %d != count %d", h.Name, sum, h.Count)
			}
		}
	}
	if st := late.Hist("sighost.setup.total"); st == nil || st.Count != late.Count("sighost.calls.established") {
		t.Errorf("setup.total observations do not match established count: %+v", st)
	}

	// Final registry state after the storm drains.
	final := ra.Sig.SH.Obs.Snapshot()
	if got := final.Count("sighost.calls.established"); got != 30 {
		t.Errorf("final established = %d", got)
	}
	if got := final.Count("sighost.calls.torn"); got != 30 {
		t.Errorf("final torn = %d", got)
	}
	if st := final.Hist("sighost.setup.total"); st == nil || st.Count != 30 || st.P99 > st.Max {
		t.Errorf("final setup.total = %+v", st)
	}
	n.E.Shutdown()
}

// TestTypedEventsCarryIDs turns the sighost tracer on in-sim and checks
// the typed fields (VCI, call ID, component) that the legacy string trace
// never carried.
func TestTypedEventsCarryIDs(t *testing.T) {
	n, ra, rb, err := testbed.NewTestbed(testbed.Options{})
	if err != nil {
		t.Fatal(err)
	}
	ra.Sig.SH.Obs.EnableTrace("sighost", true)
	testbed.StartEchoServer(rb, "echo", 6000)
	ra.Stack.Spawn("client", func(p *kern.Proc) {
		p.SP.Sleep(100 * time.Millisecond)
		conn, err := ra.Lib.OpenConnection(p, "ucb.rt", "echo", 7000, "", "")
		if err != nil {
			t.Error(err)
			return
		}
		sock, _ := ra.Stack.PF.Socket(p)
		_ = sock.Connect(conn.VCI, conn.Cookie)
		p.SP.Sleep(100 * time.Millisecond)
		sock.Close()
	})
	n.E.RunUntil(time.Minute)

	evs := ra.Sig.SH.Obs.Ring().Last(signaling.MgmtTraceDefault)
	if len(evs) == 0 {
		t.Fatal("no events in ring")
	}
	var sawBind, sawTeardown bool
	for _, ev := range evs {
		if ev.Comp != "sighost" {
			t.Errorf("event from unexpected component %q", ev.Comp)
		}
		if ev.Text == "" {
			t.Errorf("event %s has no rendered text", ev.Kind)
		}
		switch ev.Kind {
		case signaling.EvBindOK:
			sawBind = true
			if ev.VCI == 0 {
				t.Error("bind.ok event carries no VCI")
			}
		case signaling.EvTeardown:
			sawTeardown = true
			if ev.CallID == 0 {
				t.Error("teardown event carries no call ID")
			}
		}
	}
	if !sawBind || !sawTeardown {
		t.Errorf("trace missing lifecycle events: bind=%v teardown=%v (%d events)", sawBind, sawTeardown, len(evs))
	}
	n.E.Shutdown()
}
