package signaling_test

import (
	"testing"
	"time"

	"xunet/internal/kern"
	"xunet/internal/testbed"
)

// Wall-clock benchmarks: how many simulated signaling operations the
// reproduction executes per second of real time.

func BenchmarkSimulatedCallsPerSecond(b *testing.B) {
	n, ra, rb, err := testbed.NewTestbed(testbed.Options{
		DeviceBuffers:      kern.FixedDeviceBuffers,
		FDTableSize:        kern.FixedFDTableSize,
		DisableCallLogging: true, // measure the machinery, not the modeled logging stall
	})
	if err != nil {
		b.Fatal(err)
	}
	testbed.StartEchoServer(rb, "bench", 6000)
	n.E.RunUntil(time.Second)
	b.ReportAllocs()
	b.ResetTimer()
	done := 0
	for i := 0; i < b.N; i++ {
		res := testbed.CallStorm(ra, "ucb.rt", "bench", testbed.StormConfig{
			Count: 10, Hold: 50 * time.Millisecond, BasePort: uint16(20000 + (i%1000)*16),
		})
		n.E.RunUntil(n.E.Now() + 30*time.Second)
		done += res.Succeeded
		if res.Succeeded != 10 {
			b.Fatalf("iteration %d: %d/10 calls", i, res.Succeeded)
		}
	}
	b.StopTimer()
	b.ReportMetric(float64(done)/b.Elapsed().Seconds(), "sim-calls/s")
	// Companion quality metrics straight from the telemetry registry: the
	// throughput number above is only meaningful alongside the simulated
	// setup latency it was achieved at.
	snap := ra.Sig.SH.Obs.Snapshot()
	if st := snap.Hist("sighost.setup.total"); st != nil && st.Count > 0 {
		b.ReportMetric(float64(st.P99)/float64(time.Millisecond), "sim-p99-setup-ms")
		b.ReportMetric(float64(st.P50)/float64(time.Millisecond), "sim-p50-setup-ms")
	}
	n.E.Shutdown()
}

func BenchmarkRegistrationRPC(b *testing.B) {
	n, ra, _, err := testbed.NewTestbed(testbed.Options{FDTableSize: kern.FixedFDTableSize})
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	// Each RPC's IPC descriptor lingers in TIME_WAIT for 2·MSL, so one
	// process cannot issue unbounded back-to-back RPCs (it would hit
	// EMFILE, faithfully). Chunk the iterations across short-lived
	// client processes, as real applications are.
	done := 0
	for done < b.N {
		chunk := b.N - done
		if chunk > 50 {
			chunk = 50
		}
		okCh := 0
		ra.Stack.Spawn("bench", func(p *kern.Proc) {
			for i := 0; i < chunk; i++ {
				if err := ra.Lib.ExportService(p, "svc", 6000); err != nil {
					return
				}
				okCh++
			}
		})
		n.E.RunUntil(n.E.Now() + time.Duration(chunk+1)*100*time.Millisecond)
		if okCh != chunk {
			b.Fatalf("completed %d of %d in chunk", okCh, chunk)
		}
		done += chunk
	}
	b.StopTimer()
	n.E.Shutdown()
}
