package signaling

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"math/rand/v2"
	"net"
	"net/netip"
	"sync"
	"sync/atomic"
	"time"

	"xunet/internal/atm"
	"xunet/internal/faults"
	"xunet/internal/memnet"
	"xunet/internal/qos"
	"xunet/internal/rtnet"
	"xunet/internal/sigmsg"
	"xunet/internal/trace"
)

// RealHost drives the same Sighost state machine over real TCP: the
// deployable daemon of cmd/sighost. It serves the application-signaling
// RPC protocol on a listener, with local-call switching backed by a VCI
// pool and an admission-control book (a standalone signaling entity has
// no ATM fabric or peer PVC mesh; DESIGN.md §2 records the
// substitution). The actor discipline is preserved: one goroutine runs
// every handler, fed by a channel of closures.
type RealHost struct {
	SH   *Sighost
	Addr atm.Addr

	ln      net.Listener
	inbox   chan func()
	wg      sync.WaitGroup
	quit    chan struct{}
	started time.Time

	mu     sync.Mutex // guards vcis and closed
	vcis   *atm.VCIAlloc
	book   *qos.Book
	closed bool

	// Peer networking (nil until EnablePeerNet): the batched UDP carrier
	// that connects this daemon to other real sighosts, the route table
	// from ATM address to carrier peer, and an optional fault plane that
	// draws the same verdict sequence as the simulation's chaos runs.
	carrier atomic.Pointer[rtnet.Carrier]
	pmu     sync.Mutex
	peers   map[atm.Addr]*rtnet.Peer
	fp      *faults.Plane

	// DialTimeout / DialAttempts / DialBackoff govern how the daemon
	// reaches an application's notify port: each attempt is bounded by
	// DialTimeout, failures retry with doubling backoff (capped at 8×)
	// up to DialAttempts total tries. StartReal sets 5s / 3 / 250ms —
	// the retries cover the race where a client registers its notify
	// port a beat after issuing CONNECT_REQ.
	DialTimeout  time.Duration
	DialAttempts int
	DialBackoff  time.Duration
}

// frame I/O: 4-byte big-endian length prefix, then the encoded message.

// WriteFrame writes one length-prefixed frame.
func WriteFrame(w io.Writer, payload []byte) error {
	var hdr [4]byte
	binary.BigEndian.PutUint32(hdr[:], uint32(len(payload)))
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	_, err := w.Write(payload)
	return err
}

// appendFrame appends one length-prefixed encoded message onto buf:
// prefix and body build in the same scratch so senders issue a single
// Write (one TCP segment for small messages, and no cross-goroutine
// interleaving risk between prefix and body).
func appendFrame(buf []byte, m *sigmsg.Msg) []byte {
	start := len(buf)
	buf = append(buf, 0, 0, 0, 0)
	buf = m.AppendTo(buf)
	binary.BigEndian.PutUint32(buf[start:], uint32(len(buf)-start-4))
	return buf
}

// ReadFrame reads one length-prefixed frame (1 MiB cap).
func ReadFrame(r io.Reader) ([]byte, error) {
	var hdr [4]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return nil, err
	}
	n := binary.BigEndian.Uint32(hdr[:])
	if n > 1<<20 {
		return nil, errors.New("signaling: oversized frame")
	}
	buf := make([]byte, n)
	if _, err := io.ReadFull(r, buf); err != nil {
		return nil, err
	}
	return buf, nil
}

// StartReal launches a standalone signaling entity listening on
// listenAddr (e.g. "127.0.0.1:0"). The returned host reports its bound
// address via ListenAddr.
func StartReal(addr atm.Addr, listenAddr string) (*RealHost, error) {
	ln, err := net.Listen("tcp", listenAddr)
	if err != nil {
		return nil, err
	}
	h := &RealHost{
		Addr:    addr,
		ln:      ln,
		inbox:   make(chan func(), 256),
		quit:    make(chan struct{}),
		started: time.Now(),
		vcis:    atm.NewVCIAlloc(32),
		book:    qos.NewBook(622_000), // one OC-12's worth of local capacity

		DialTimeout:  5 * time.Second,
		DialAttempts: 3,
		DialBackoff:  250 * time.Millisecond,
	}
	env := &realEnv{h: h}
	// Real time passes by itself; the cost model charges nothing.
	h.SH = New(env, CostModel{BindTimeout: 30 * time.Second})
	// A live daemon keeps its event ring populated so MGMT_TRACE (and
	// cmd/xunetstat) can show recent signaling activity.
	h.SH.Obs.EnableTrace("sighost", true)
	// Causal call tracing over the wall clock, so `xunetstat trace
	// <callid>` and `xunetstat flight` work against a live daemon. The
	// collector's mutex makes this safe even though timers and the actor
	// run on different goroutines.
	tc := trace.NewCollector(env.Now)
	tc.SetEnabled(true)
	h.SH.TraceC = tc

	// Actor. Each handler runs to completion, then the peer carrier
	// flushes once — the dispatch-boundary discipline the journal uses
	// for jflush, applied to the tx coalescer: every frame a handler
	// queued rides out in at most one sendmmsg per peer.
	h.wg.Add(1)
	go func() {
		defer h.wg.Done()
		for {
			select {
			case fn := <-h.inbox:
				fn()
				if car := h.carrier.Load(); car != nil {
					car.Flush()
				}
			case <-h.quit:
				return
			}
		}
	}()

	// Acceptor.
	h.wg.Add(1)
	go func() {
		defer h.wg.Done()
		for {
			conn, err := ln.Accept()
			if err != nil {
				return
			}
			h.serveConn(conn)
		}
	}()
	return h, nil
}

// ListenAddr reports the daemon's bound TCP address.
func (h *RealHost) ListenAddr() string { return h.ln.Addr().String() }

// Close stops the daemon.
func (h *RealHost) Close() {
	h.mu.Lock()
	if h.closed {
		h.mu.Unlock()
		return
	}
	h.closed = true
	h.mu.Unlock()
	h.ln.Close()
	if car := h.carrier.Load(); car != nil {
		car.Close()
	}
	close(h.quit)
	h.wg.Wait()
}

// PeerNetConfig configures EnablePeerNet.
type PeerNetConfig struct {
	// Listen is the carrier's UDP listen address ("127.0.0.1:0").
	Listen string
	// Batch caps frames per sendmmsg/recvmmsg vector (rtnet.DefaultBatch).
	Batch int
	// Unbatched forces the portable per-message path even on Linux.
	Unbatched bool
	// Faults optionally injects the chaos plane on the peer wire; the
	// verdict sequence matches simEnv's, so a chaos config means the
	// same thing against the simulation and a live deployment.
	Faults *faults.Config
	// OnData consumes received data-class frames (AAL5 CPCS-PDUs); nil
	// drops them. Runs on the carrier's receive pump.
	OnData rtnet.DataHandler
}

// EnablePeerNet attaches the batched UDP carrier that connects this
// daemon to other real sighosts, replacing the loopback-only peer
// behavior. Call once, before adding peers; the carrier's counters and
// per-peer batch histograms register in the daemon's obs registry (and
// from there into any tseries scrape).
func (h *RealHost) EnablePeerNet(cfg PeerNetConfig) error {
	if h.carrier.Load() != nil {
		return errors.New("signaling: peer net already enabled")
	}
	// The decoder and message are owned by the carrier's receive pump:
	// OnSig runs only there, and DecodeInto copies out of the rx buffer
	// (interned strings, no aliasing), so posting a copy of m into the
	// actor is race-free.
	var dec sigmsg.Decoder
	var m sigmsg.Msg
	car, err := rtnet.New(rtnet.Config{
		Listen:    cfg.Listen,
		Batch:     cfg.Batch,
		Unbatched: cfg.Unbatched,
		Obs:       h.SH.Obs,
		OnSig: func(from *rtnet.Peer, frame []byte) {
			if err := dec.DecodeInto(&m, frame); err != nil {
				h.SH.Obs.Counter("rtnet.rx.decode_err").Inc()
				return
			}
			src, msg := atm.Addr(from.Name()), m
			h.post(func() { h.SH.HandlePeer(src, msg) })
		},
		OnData: cfg.OnData,
	})
	if err != nil {
		return err
	}
	if cfg.Faults != nil {
		h.fp = faults.NewPlane(*cfg.Faults)
	}
	h.pmu.Lock()
	h.peers = map[atm.Addr]*rtnet.Peer{}
	h.pmu.Unlock()
	h.carrier.Store(car)
	car.Start()
	return nil
}

// PeerNet exposes the carrier (nil before EnablePeerNet) — the testbed
// and cmd/sighost use it for data-path AAL5 links and for its address.
func (h *RealHost) PeerNet() *rtnet.Carrier { return h.carrier.Load() }

// AddPeer routes signaling for an ATM address to a remote carrier
// endpoint ("host:port" UDP).
func (h *RealHost) AddPeer(addr atm.Addr, udp string) error {
	car := h.carrier.Load()
	if car == nil {
		return errors.New("signaling: peer net not enabled")
	}
	ap, err := netip.ParseAddrPort(udp)
	if err != nil {
		return fmt.Errorf("signaling: peer %s: %w", addr, err)
	}
	p, err := car.AddPeer(string(addr), ap)
	if err != nil {
		return err
	}
	h.pmu.Lock()
	h.peers[addr] = p
	h.pmu.Unlock()
	return nil
}

// SetPeerAddr re-targets an existing peer route (a daemon restarted on
// a new port).
func (h *RealHost) SetPeerAddr(addr atm.Addr, udp string) error {
	car := h.carrier.Load()
	if car == nil {
		return errors.New("signaling: peer net not enabled")
	}
	ap, err := netip.ParseAddrPort(udp)
	if err != nil {
		return fmt.Errorf("signaling: peer %s: %w", addr, err)
	}
	return car.SetPeerAddr(string(addr), ap)
}

// Do runs fn in actor context and waits for it. Reads of actor-owned
// state from another goroutine — obs Func metrics over the reliability
// tables, list sizes — go through here; returns without running fn if
// the host is closed.
func (h *RealHost) Do(fn func()) {
	done := make(chan struct{})
	h.post(func() { fn(); close(done) })
	select {
	case <-done:
	case <-h.quit:
	}
}

// EnableReliability turns the reliable peer channel on, in actor
// context (the state machine is actor-owned; a cross-host deployment
// enables it on every daemon). Blocks until applied so callers can
// order it before any traffic.
func (h *RealHost) EnableReliability(cfg RelConfig) {
	h.Do(func() { h.SH.EnableReliability(cfg) })
}

func (h *RealHost) peerFor(dst atm.Addr) *rtnet.Peer {
	h.pmu.Lock()
	defer h.pmu.Unlock()
	return h.peers[dst]
}

// sendPeerFrame coalesces one encoded signaling frame toward a peer,
// drawing the same fault-plane verdict sequence as simEnv so chaos
// configs behave identically in both modes. The carrier copies frame
// before returning (SendPeerRaw's ownership contract); only the
// deferred-delay verdict needs a private copy, because it outlives the
// call.
func (h *RealHost) sendPeerFrame(p *rtnet.Peer, m *sigmsg.Msg, frame []byte) error {
	if fp := h.fp; fp != nil {
		v := fp.SigMsg(trace.Context{Trace: m.TraceID, Span: m.SpanID})
		if v.Drop {
			return nil // swallowed by the wire; reliability must repair it
		}
		if v.ExtraDelay > 0 {
			cp := append([]byte(nil), frame...)
			time.AfterFunc(v.ExtraDelay, func() {
				// No dispatch boundary follows a timer-fired send; flush
				// directly.
				if p.SendSig(cp) == nil {
					_ = p.Flush()
				}
			})
			return nil
		}
		if v.Dup {
			_ = p.SendSig(frame)
		}
	}
	return p.SendSig(frame)
}

// post runs fn in actor context (dropped after Close).
// SetProfSource wires the MGMT prof hooks in actor context, so a
// profiler can be attached while the daemon is serving without racing
// the handler goroutine (tests attach one to exercise the prof error
// paths). The assignment is ordered before any later query's handling
// by the inbox's FIFO discipline.
func (h *RealHost) SetProfSource(info, js, flame func() string) {
	h.post(func() {
		h.SH.ProfInfo = info
		h.SH.ProfJSON = js
		h.SH.ProfFlame = flame
	})
}

func (h *RealHost) post(fn func()) {
	select {
	case h.inbox <- fn:
	case <-h.quit:
	}
}

// serveConn pumps one application connection into the actor.
func (h *RealHost) serveConn(conn net.Conn) {
	from := ipOf(conn.RemoteAddr())
	h.wg.Add(1)
	go func() {
		defer h.wg.Done()
		defer conn.Close()
		c := &realConn{c: conn}
		var dec sigmsg.Decoder
		var m sigmsg.Msg
		for {
			raw, err := ReadFrame(conn)
			if err != nil {
				return
			}
			if err := dec.DecodeInto(&m, raw); err != nil {
				continue
			}
			msg := m
			h.post(func() { h.SH.HandleApp(c, from, msg) })
		}
	}()
}

// ipOf maps a TCP address to the 32-bit address type the state machine
// uses for endpoint identity.
func ipOf(a net.Addr) memnet.IPAddr {
	ta, ok := a.(*net.TCPAddr)
	if !ok {
		return 0
	}
	v4 := ta.IP.To4()
	if v4 == nil {
		return 0
	}
	return memnet.IP4(v4[0], v4[1], v4[2], v4[3])
}

// realConn adapts a net.Conn to the signaling Conn interface. The
// encode buffer is reused under the send mutex; WriteFrame finishes
// with it before Send returns.
type realConn struct {
	c   net.Conn
	mu  sync.Mutex
	buf []byte
}

func (c *realConn) Send(m sigmsg.Msg) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.buf = appendFrame(c.buf[:0], &m)
	_, err := c.c.Write(c.buf)
	return err
}

func (c *realConn) Close() { c.c.Close() }

// realEnv implements Env over the real network and clock.
type realEnv struct {
	h *RealHost

	// txBuf is SendPeer's encode scratch. SendPeer runs only in actor
	// context (state-machine actions and their timers), so one buffer
	// suffices; the carrier copies out of it before returning.
	txBuf []byte
}

func (e *realEnv) Addr() atm.Addr         { return e.h.Addr }
func (e *realEnv) LocalIP() memnet.IPAddr { return memnet.IP4(127, 0, 0, 1) }
func (e *realEnv) Charge(d time.Duration) {} // real time passes on its own
func (e *realEnv) Rand16() uint16         { return uint16(rand.Uint32()) }
func (e *realEnv) Now() time.Duration     { return time.Since(e.h.started) }

func (e *realEnv) After(d time.Duration, what string, fn func()) CancelFunc {
	t := time.AfterFunc(d, func() { e.h.post(fn) })
	return func() { t.Stop() }
}

// SendPeer delivers to the local loopback in-process; remote
// destinations encode into the env scratch and ride the batched
// carrier. Without EnablePeerNet the standalone daemon still has no
// peers and remote destinations fail as before.
func (e *realEnv) SendPeer(dst atm.Addr, m sigmsg.Msg) error {
	if dst == e.h.Addr {
		e.h.post(func() { e.h.SH.HandlePeer(dst, m) })
		return nil
	}
	p := e.h.peerFor(dst)
	if p == nil {
		if e.h.carrier.Load() == nil {
			return fmt.Errorf("signaling: standalone daemon has no peer %s", dst)
		}
		return fmt.Errorf("signaling: no peer route to %s", dst)
	}
	e.txBuf = m.AppendTo(e.txBuf[:0])
	return e.h.sendPeerFrame(p, &m, e.txBuf)
}

// SendPeerRaw sends a cached frame without re-encoding — the
// reliability layer's retransmits hit the wire from the frame encoded
// at first transmission, exactly as in the simulation (the encode-once
// counter assertion holds in real mode too).
func (e *realEnv) SendPeerRaw(dst atm.Addr, m sigmsg.Msg, raw []byte) error {
	if dst == e.h.Addr {
		return e.SendPeer(dst, m)
	}
	p := e.h.peerFor(dst)
	if p == nil {
		if e.h.carrier.Load() == nil {
			return fmt.Errorf("signaling: standalone daemon has no peer %s", dst)
		}
		return fmt.Errorf("signaling: no peer route to %s", dst)
	}
	return e.h.sendPeerFrame(p, &m, raw)
}

// Dial connects to an application's notify port over TCP, retrying
// with capped exponential backoff per the host's Dial* knobs.
func (e *realEnv) Dial(ip memnet.IPAddr, port uint16, cb func(Conn, error)) {
	h := e.h
	h.wg.Add(1)
	go func() {
		defer h.wg.Done()
		target := fmt.Sprintf("%s:%d", ip, port)
		var conn net.Conn
		var err error
		backoff := h.DialBackoff
		attempts := h.DialAttempts
		if attempts < 1 {
			attempts = 1
		}
		for a := 1; a <= attempts; a++ {
			conn, err = net.DialTimeout("tcp", target, h.DialTimeout)
			if err == nil {
				break
			}
			if a < attempts && backoff > 0 {
				time.Sleep(backoff)
				if backoff < 8*h.DialBackoff {
					backoff *= 2
				}
			}
		}
		if err != nil {
			err = fmt.Errorf("signaling: notify dial %s failed after %d attempts: %w", target, attempts, err)
			h.post(func() { cb(nil, err) })
			return
		}
		c := &realConn{c: conn}
		h.post(func() { cb(c, nil) })
		var dec sigmsg.Decoder
		var m sigmsg.Msg
		for {
			raw, err := ReadFrame(conn)
			if err != nil {
				return
			}
			if derr := dec.DecodeInto(&m, raw); derr != nil {
				continue
			}
			msg := m
			h.post(func() { h.SH.HandleApp(c, ip, msg) })
		}
	}()
}

// SetupVC allocates a local circuit identity from the VCI pool with
// admission control, standing in for fabric programming.
func (e *realEnv) SetupVC(dst atm.Addr, q qos.QoS) (*VCHandle, error) {
	h := e.h
	h.mu.Lock()
	defer h.mu.Unlock()
	key, err := h.book.Admit(q)
	if err != nil {
		return nil, err
	}
	if v := h.vcis.Alloc(); v != 0 {
		return &VCHandle{
			SrcVCI: v,
			DstVCI: v,
			Release: func() {
				h.mu.Lock()
				h.vcis.Free(v)
				h.book.Release(key)
				h.mu.Unlock()
			},
		}, nil
	}
	h.book.Release(key)
	return nil, errors.New("signaling: VCI pool exhausted")
}

// KernelDisconnect has no kernel to reach in standalone mode; the
// endpoint learns of teardown when its next operation fails.
func (e *realEnv) KernelDisconnect(endpoint memnet.IPAddr, vci atm.VCI) {}
