package signaling

import (
	"encoding/json"
	"fmt"
	"sort"
	"strings"

	"xunet/internal/sigmsg"
	"xunet/internal/trace"
)

// Management queries: the operational payoff of the user-space design
// decision (§5.1) — "Signaling state information is easily available
// and can be used by network management software." A MGMT_QUERY over
// the ordinary RPC connection returns a rendered view of the daemon's
// state; cmd/xunetsim, cmd/xunetstat and the libraries expose it.

// Management query names. The stats/trace pair is the MGMT_STATS /
// MGMT_TRACE surface of the telemetry registry: "stats" renders the full
// registry as text (first line keeps the legacy Stats %+v form), the
// ".json" variants return machine-parseable snapshots for tooling.
const (
	MgmtServices  = "services"
	MgmtCalls     = "calls"
	MgmtStats     = "stats"
	MgmtStatsJSON = "stats.json"
	MgmtTrace     = "trace"
	MgmtTraceJSON = "trace.json"
	MgmtLists     = "lists"
	// The causal-trace surface: "calltrace" renders one call's span
	// tree plus its setup-latency attribution (the call ID travels in
	// Msg.CallID), "flight" lists the flight recorder's retained
	// traces. The ".json" variants return Chrome trace-event JSON,
	// loadable in Perfetto.
	MgmtCallTrace     = "calltrace"
	MgmtCallTraceJSON = "calltrace.json"
	MgmtFlight        = "flight"
	MgmtFlightJSON    = "flight.json"
	MgmtFaults        = "faults"
	MgmtFaultsJSON    = "faults.json"
	// The continuous-telemetry surface: "tseries" renders the scraped
	// time-series store (latest samples per series; ".json" is the full
	// export with point history), "health" the watermark-rule states and
	// recent health events.
	MgmtTSeries     = "tseries"
	MgmtTSeriesJSON = "tseries.json"
	MgmtHealth      = "health"
	MgmtHealthJSON  = "health.json"
	// The execution-profiler surface (internal/prof): "prof" renders
	// the full profile (per-shard barrier-stall accounting, per-label
	// event attribution, critical-shard ranking), "prof.json" the
	// machine-readable snapshot, "prof.flame" folded stacks for
	// flame-graph tools.
	MgmtProf      = "prof"
	MgmtProfJSON  = "prof.json"
	MgmtProfFlame = "prof.flame"
)

// MaxMgmtReply bounds a management reply body. Bodies past the bound
// are refused with a clean error instead of being truncated silently or
// blowing the transport's frame cap (1 MiB in rtenv). A var so tests
// can lower it.
var MaxMgmtReply = 512 << 10

// MgmtTraceDefault is how many ring events a trace query returns when the
// request does not override the count (via Msg.Cookie).
const MgmtTraceDefault = 32

// handleMgmtQuery renders the requested view.
func (sh *Sighost) handleMgmtQuery(conn Conn, m sigmsg.Msg) {
	var body string
	switch m.Service {
	case MgmtServices:
		var names []string
		for name, e := range sh.services {
			names = append(names, fmt.Sprintf("%s -> %v:%d", name, e.ip, e.port))
		}
		sort.Strings(names)
		body = strings.Join(names, "\n")
	case MgmtCalls:
		var lines []string
		for key, c := range sh.calls {
			lines = append(lines, fmt.Sprintf("call=%d peer=%s origin=%v state=%d svc=%s vci=%d qos=%q",
				key.id, key.peer, key.origin, c.state, c.service, c.localVCI, c.qosStr))
		}
		sort.Strings(lines)
		body = strings.Join(lines, "\n")
	case MgmtStats:
		// Legacy counter line first, then the whole registry: every
		// counter, gauge high-water mark and latency histogram the
		// machine registered, not just sighost's own.
		body = fmt.Sprintf("%+v\n", sh.Stats()) + sh.Obs.Snapshot().Text()
	case MgmtStatsJSON:
		body = sh.Obs.Snapshot().JSON()
	case MgmtTrace:
		var lines []string
		for _, ev := range sh.Obs.Ring().Last(traceCount(m)) {
			lines = append(lines, fmt.Sprintf("[%v] %s", ev.At, ev.Text))
		}
		body = strings.Join(lines, "\n")
	case MgmtTraceJSON:
		out, err := json.Marshal(sh.Obs.Ring().Last(traceCount(m)))
		if err != nil {
			out = []byte("[]")
		}
		body = string(out)
	case MgmtCallTrace:
		if m.CallID == 0 {
			sh.sendApp(conn, sigmsg.Msg{Kind: sigmsg.KindError, Reason: "calltrace requires a call ID"})
			return
		}
		t, ok := sh.TraceC.ByCall(m.CallID)
		if !ok {
			body = fmt.Sprintf("no trace for call %d (tracing off, unsampled, or evicted)", m.CallID)
			break
		}
		att, hasSetup := trace.Attribute(t)
		body = trace.TextTree(t)
		if hasSetup {
			body += att.String()
		}
	case MgmtCallTraceJSON:
		t, ok := sh.TraceC.ByCall(m.CallID)
		if !ok {
			body = `{"traceEvents":[],"displayTimeUnit":"ms"}`
			break
		}
		out, err := trace.ChromeJSON([]*trace.Trace{t})
		if err != nil {
			out = []byte("{}")
		}
		body = string(out)
	case MgmtFlight:
		var lines []string
		for _, t := range sh.TraceC.Completed() {
			lines = append(lines, strings.TrimRight(trace.TextTree(t), "\n"))
		}
		body = strings.Join(lines, "\n")
	case MgmtFlightJSON:
		out, err := trace.ChromeJSON(sh.TraceC.Completed())
		if err != nil {
			out = []byte("{}")
		}
		body = string(out)
	case MgmtFaults:
		if sh.FaultsInfo != nil {
			body = sh.FaultsInfo()
		} else {
			body = "fault injection disabled"
		}
	case MgmtFaultsJSON:
		if sh.FaultsJSON != nil {
			body = sh.FaultsJSON()
		} else {
			body = "{}"
		}
	case MgmtTSeries:
		if sh.TSeriesInfo != nil {
			body = sh.TSeriesInfo()
		} else {
			body = "time-series collection disabled"
		}
	case MgmtTSeriesJSON:
		if sh.TSeriesJSON != nil {
			body = sh.TSeriesJSON()
		} else {
			body = "{}"
		}
	case MgmtHealth:
		if sh.HealthInfo != nil {
			body = sh.HealthInfo()
		} else {
			body = "time-series collection disabled"
		}
	case MgmtHealthJSON:
		if sh.HealthJSON != nil {
			body = sh.HealthJSON()
		} else {
			body = "{}"
		}
	case MgmtProf:
		if sh.ProfInfo != nil {
			body = sh.ProfInfo()
		} else {
			body = "execution profiling disabled"
		}
	case MgmtProfJSON:
		if sh.ProfJSON != nil {
			body = sh.ProfJSON()
		} else {
			body = "{}"
		}
	case MgmtProfFlame:
		if sh.ProfFlame != nil {
			body = sh.ProfFlame()
		} else {
			body = "execution profiling disabled"
		}
	case MgmtLists:
		svc, out, in, wb, vm := sh.ListSizes()
		body = fmt.Sprintf("service_list=%d outgoing_requests=%d incoming_requests=%d wait_for_bind=%d VCI_mapping=%d cookies=%d",
			svc, out, in, wb, vm, len(sh.cookies))
	default:
		if strings.HasPrefix(m.Service, "prof.") {
			// A malformed profiler view gets a pointed error naming the
			// valid ones, mirroring the calltrace error path.
			sh.sendApp(conn, sigmsg.Msg{Kind: sigmsg.KindError,
				Reason: fmt.Sprintf("unknown prof view %q (want prof, prof.json or prof.flame)", m.Service)})
			return
		}
		sh.sendApp(conn, sigmsg.Msg{Kind: sigmsg.KindError, Reason: "unknown management query " + m.Service})
		return
	}
	if len(body) > MaxMgmtReply {
		sh.sendApp(conn, sigmsg.Msg{Kind: sigmsg.KindError,
			Reason: fmt.Sprintf("management reply for %s too large (%d bytes > %d)", m.Service, len(body), MaxMgmtReply)})
		return
	}
	sh.sendApp(conn, sigmsg.Msg{Kind: sigmsg.KindMgmtReply, Service: m.Service, Comment: body})
}

// traceCount extracts the requested event count from a trace query: the
// Cookie field doubles as the count (it is meaningless for mgmt queries),
// zero meaning MgmtTraceDefault.
func traceCount(m sigmsg.Msg) int {
	if m.Cookie > 0 {
		return int(m.Cookie)
	}
	return MgmtTraceDefault
}
