package signaling

import (
	"fmt"
	"sort"
	"strings"

	"xunet/internal/sigmsg"
)

// Management queries: the operational payoff of the user-space design
// decision (§5.1) — "Signaling state information is easily available
// and can be used by network management software." A MGMT_QUERY over
// the ordinary RPC connection returns a rendered view of the daemon's
// state; cmd/xunetsim and the libraries expose it.

// Management query names.
const (
	MgmtServices = "services"
	MgmtCalls    = "calls"
	MgmtStats    = "stats"
	MgmtLists    = "lists"
)

// handleMgmtQuery renders the requested view.
func (sh *Sighost) handleMgmtQuery(conn Conn, m sigmsg.Msg) {
	var body string
	switch m.Service {
	case MgmtServices:
		var names []string
		for name, e := range sh.services {
			names = append(names, fmt.Sprintf("%s -> %v:%d", name, e.ip, e.port))
		}
		sort.Strings(names)
		body = strings.Join(names, "\n")
	case MgmtCalls:
		var lines []string
		for key, c := range sh.calls {
			lines = append(lines, fmt.Sprintf("call=%d peer=%s origin=%v state=%d svc=%s vci=%d qos=%q",
				key.id, key.peer, key.origin, c.state, c.service, c.localVCI, c.qosStr))
		}
		sort.Strings(lines)
		body = strings.Join(lines, "\n")
	case MgmtStats:
		body = fmt.Sprintf("%+v", sh.Stats)
	case MgmtLists:
		svc, out, in, wb, vm := sh.ListSizes()
		body = fmt.Sprintf("service_list=%d outgoing_requests=%d incoming_requests=%d wait_for_bind=%d VCI_mapping=%d cookies=%d",
			svc, out, in, wb, vm, len(sh.cookies))
	default:
		sh.sendApp(conn, sigmsg.Msg{Kind: sigmsg.KindError, Reason: "unknown management query " + m.Service})
		return
	}
	sh.sendApp(conn, sigmsg.Msg{Kind: sigmsg.KindMgmtReply, Service: m.Service, Comment: body})
}
