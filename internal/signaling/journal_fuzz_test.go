package signaling

import (
	"testing"
	"time"
)

// FuzzJournalReplay feeds arbitrary bytes to crash-recovery as the
// persisted journal. Replay must stop cleanly at the first torn or
// corrupt record — never panic, never hang — and leave a sighost that
// still dispatches.
func FuzzJournalReplay(f *testing.F) {
	key1 := callKey{peer: "b.rt", id: 1, origin: true}
	key2 := callKey{peer: "b.rt", id: 2, origin: false}
	var seed []byte
	seed = appendJrec(seed, &jrec{op: jExport, service: "echo", ip: 0x0a000001, port: 6000})
	seed = appendJrec(seed, &jrec{op: jOpen, key: key1, service: "echo", qos: "CBR:1000", cookie: 7})
	seed = appendJrec(seed, &jrec{op: jGrant, key: key1, vci: 33, cookie: 7, deadline: 5 * time.Second})
	seed = appendJrec(seed, &jrec{op: jBound, key: key1, vci: 33})
	seed = appendJrec(seed, &jrec{op: jOpen, key: key2, service: "echo", cookie: 9})
	seed = appendJrec(seed, &jrec{op: jEnd, key: key2})
	f.Add(seed)
	f.Add(seed[:len(seed)-3]) // torn tail mid-record
	f.Add([]byte{0, 1, 0xff}) // length points past the buffer

	f.Fuzz(func(t *testing.T, data []byte) {
		w, shA, shB, envA, envB := pair(t, time.Minute, nil, true)
		shA.Crash()
		shA.jr.buf = append(shA.jr.buf[:0], data...)
		shA.jr.n = len(data) // upper bound; only the compaction check reads it
		shA.Recover()
		w.advance(w.now + time.Hour) // fire whatever timers replay re-armed

		// Whatever the log contained, the recovered instance must still
		// serve a clean call end to end.
		exportEcho(t, shB, envB, "fresh")
		openCall(t, w, shA, shB, envA, envB, "fresh")
	})
}
