package signaling

import (
	"bytes"
	"net"
	"strings"
	"testing"
	"time"

	"xunet/internal/memnet"
	"xunet/internal/sigmsg"
)

// FuzzNotifyFraming feeds arbitrary bytes to the length-prefixed TCP
// framing + decode loop every notify/RPC connection runs. Torn frames,
// oversized length prefixes and corrupt payloads must stop the loop
// cleanly — never panic, never hang — exactly like FuzzJournalReplay
// guards the persisted-journal parser.
func FuzzNotifyFraming(f *testing.F) {
	valid := appendFrame(nil, &sigmsg.Msg{
		Kind: sigmsg.KindConnectReq, Dest: "mh.rt", Service: "echo",
		NotifyPort: 9, QoS: "cbr:100", Comment: "fuzz seed"})
	f.Add(append([]byte(nil), valid...))
	// Two back-to-back frames: the loop must consume both.
	two := append(append([]byte(nil), valid...),
		appendFrame(nil, &sigmsg.Msg{Kind: sigmsg.KindPeerAck, Seq: 7, Epoch: 1})...)
	f.Add(two)
	f.Add(append([]byte(nil), valid[:len(valid)-3]...)) // torn tail
	f.Add([]byte{0xFF, 0xFF, 0xFF, 0xFF, 1, 2, 3})      // length prefix over the 1 MiB cap
	corrupt := append([]byte(nil), valid...)
	corrupt[7] ^= 0xA5
	f.Add(corrupt)
	f.Add([]byte{0, 0, 0, 0}) // zero-length frame

	f.Fuzz(func(t *testing.T, data []byte) {
		r := bytes.NewReader(data)
		var dec sigmsg.Decoder
		var m sigmsg.Msg
		for {
			raw, err := ReadFrame(r)
			if err != nil {
				return // torn/oversized/exhausted: clean stop
			}
			_ = dec.DecodeInto(&m, raw) // corrupt payloads may error, never panic
		}
	})
}

// TestAppendFrameRoundTrip: the single-write framing helper produces
// exactly what ReadFrame+DecodeInto consume, including several frames
// packed back to back in one buffer.
func TestAppendFrameRoundTrip(t *testing.T) {
	msgs := []sigmsg.Msg{
		{Kind: sigmsg.KindConnectReq, Dest: "b.rt", Service: "echo", NotifyPort: 7001, QoS: "cbr:1000", Comment: "round trip"},
		{Kind: sigmsg.KindPeerAck, Seq: 99, Epoch: 3},
		{Kind: sigmsg.KindSetup, CallID: 12, Src: "a.rt", Dest: "b.rt", Service: "echo", QoS: "vbr:64"},
	}
	var buf []byte
	for i := range msgs {
		buf = appendFrame(buf, &msgs[i])
	}
	r := bytes.NewReader(buf)
	var dec sigmsg.Decoder
	for i := range msgs {
		raw, err := ReadFrame(r)
		if err != nil {
			t.Fatalf("frame %d: %v", i, err)
		}
		var got sigmsg.Msg
		if err := dec.DecodeInto(&got, raw); err != nil {
			t.Fatalf("frame %d: %v", i, err)
		}
		if got != msgs[i] {
			t.Fatalf("frame %d round-tripped to %+v, want %+v", i, got, msgs[i])
		}
	}
	if r.Len() != 0 {
		t.Fatalf("%d trailing bytes after all frames", r.Len())
	}
}

// TestDialBackoffSchedule pins the notify-dial retry behavior: failures
// retry with doubling backoff, the error names the attempt count, and
// the total wait covers the full schedule (5+10+20ms for 4 attempts).
func TestDialBackoffSchedule(t *testing.T) {
	h, err := StartReal("dial.rt", "127.0.0.1:0")
	if err != nil {
		t.Skipf("loopback TCP unavailable: %v", err)
	}
	defer h.Close()
	h.DialTimeout = 2 * time.Second
	h.DialAttempts = 4
	h.DialBackoff = 5 * time.Millisecond

	// A port that refuses immediately: bind one, note it, close it.
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	port := uint16(l.Addr().(*net.TCPAddr).Port)
	l.Close()

	env := h.SH.env.(*realEnv)
	errCh := make(chan error, 1)
	start := time.Now()
	env.Dial(memnet.IP4(127, 0, 0, 1), port, func(c Conn, err error) { errCh <- err })
	select {
	case err = <-errCh:
	case <-time.After(10 * time.Second):
		t.Fatal("dial callback never fired")
	}
	elapsed := time.Since(start)
	if err == nil {
		t.Fatal("dial to closed port succeeded")
	}
	if !strings.Contains(err.Error(), "after 4 attempts") {
		t.Fatalf("err = %v, want attempt count in message", err)
	}
	if min := 35 * time.Millisecond; elapsed < min {
		t.Fatalf("4 attempts finished in %v; backoff schedule (5+10+20ms) requires ≥ %v", elapsed, min)
	}
}
