package signaling_test

import (
	"net"
	"strings"
	"testing"
	"time"

	"xunet/internal/prof"
	"xunet/internal/sigmsg"
	"xunet/internal/signaling"
)

// Management queries over the real-TCP deployment (the sim-side path is
// covered in internal/ulib).

func realQuery(t *testing.T, addr, what string) (sigmsg.Msg, error) {
	t.Helper()
	conn, err := net.DialTimeout("tcp", addr, 5*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	if err := signaling.WriteFrame(conn, sigmsg.Msg{Kind: sigmsg.KindMgmtQuery, Service: what}.Encode()); err != nil {
		t.Fatal(err)
	}
	conn.SetReadDeadline(time.Now().Add(5 * time.Second))
	raw, err := signaling.ReadFrame(conn)
	if err != nil {
		return sigmsg.Msg{}, err
	}
	return sigmsg.Decode(raw)
}

func TestRealManagementQueries(t *testing.T) {
	h := startReal(t)
	c := &signaling.RealClient{SighostAddr: h.ListenAddr()}
	if err := c.ExportService("mgmt-demo", 19100); err != nil {
		t.Fatal(err)
	}
	for _, q := range []string{signaling.MgmtServices, signaling.MgmtCalls, signaling.MgmtStats, signaling.MgmtLists} {
		reply, err := realQuery(t, h.ListenAddr(), q)
		if err != nil {
			t.Fatalf("%s: %v", q, err)
		}
		if reply.Kind != sigmsg.KindMgmtReply {
			t.Fatalf("%s: reply kind %v", q, reply.Kind)
		}
		switch q {
		case signaling.MgmtServices:
			if !strings.Contains(reply.Comment, "mgmt-demo") {
				t.Errorf("services view missing registration: %q", reply.Comment)
			}
		case signaling.MgmtStats:
			if !strings.Contains(reply.Comment, "ServicesRegistered:1") {
				t.Errorf("stats view = %q", reply.Comment)
			}
		case signaling.MgmtLists:
			if !strings.Contains(reply.Comment, "service_list=1") {
				t.Errorf("lists view = %q", reply.Comment)
			}
		}
	}
	// Unknown query draws SIG_ERROR.
	reply, err := realQuery(t, h.ListenAddr(), "bogus")
	if err != nil || reply.Kind != sigmsg.KindError {
		t.Fatalf("bogus query: %v %v", reply.Kind, err)
	}
}

// Error paths of the management surface: malformed arguments, queries
// against disabled subsystems, and replies past the size bound must all
// come back as clean SIG_ERRORs (or explicit "disabled" text), never as
// hangs, truncation, or transport failures.
func TestMgmtErrorPaths(t *testing.T) {
	h := startReal(t)

	// calltrace without a call ID is malformed: there is nothing to look
	// up and "no trace for call 0" would mask the caller's bug.
	reply, err := realQuery(t, h.ListenAddr(), signaling.MgmtCallTrace)
	if err != nil {
		t.Fatal(err)
	}
	if reply.Kind != sigmsg.KindError || !strings.Contains(reply.Reason, "requires a call ID") {
		t.Fatalf("calltrace without ID: kind=%v reason=%q", reply.Kind, reply.Reason)
	}

	// The tseries/health queries answer even when collection is off —
	// with explicit disabled text, not an error and not silence.
	for q, want := range map[string]string{
		signaling.MgmtTSeries:     "time-series collection disabled",
		signaling.MgmtHealth:      "time-series collection disabled",
		signaling.MgmtTSeriesJSON: "{}",
		signaling.MgmtHealthJSON:  "{}",
	} {
		reply, err := realQuery(t, h.ListenAddr(), q)
		if err != nil {
			t.Fatalf("%s: %v", q, err)
		}
		if reply.Kind != sigmsg.KindMgmtReply || reply.Comment != want {
			t.Fatalf("%s: kind=%v body=%q", q, reply.Kind, reply.Comment)
		}
	}
}

func TestMgmtOversizedReply(t *testing.T) {
	// Lower the bound before the actor goroutine exists and restore it
	// after Close has joined it (cleanups run LIFO), so the actor's reads
	// of the package var are ordered against both writes.
	old := signaling.MaxMgmtReply
	signaling.MaxMgmtReply = 16
	t.Cleanup(func() { signaling.MaxMgmtReply = old })
	h := startReal(t)

	// The stats view is far past 16 bytes; it must be refused whole, with
	// the query name and sizes in the reason, rather than truncated or
	// left to blow the transport's frame cap.
	reply, err := realQuery(t, h.ListenAddr(), signaling.MgmtStats)
	if err != nil {
		t.Fatal(err)
	}
	if reply.Kind != sigmsg.KindError || !strings.Contains(reply.Reason, "too large") ||
		!strings.Contains(reply.Reason, signaling.MgmtStats) {
		t.Fatalf("oversized reply: kind=%v reason=%q", reply.Kind, reply.Reason)
	}

	// The daemon stays usable after refusing: a reply under the bound
	// (the empty services view) still answers normally on the same
	// listener.
	reply, err = realQuery(t, h.ListenAddr(), signaling.MgmtServices)
	if err != nil || reply.Kind != sigmsg.KindMgmtReply || reply.Comment != "" {
		t.Fatalf("post-error query: kind=%v err=%v body=%q", reply.Kind, err, reply.Comment)
	}
}

// Error paths of the MGMT prof surface, mirroring the calltrace suite:
// a disabled profiler answers with explicit text (never an error, never
// silence), and a malformed prof view draws a pointed SIG_ERROR naming
// the valid ones.
func TestMgmtProfErrorPaths(t *testing.T) {
	h := startReal(t)

	// No profiler attached: the text views answer with disabled text,
	// the JSON view with an empty object.
	for q, want := range map[string]string{
		signaling.MgmtProf:      "execution profiling disabled",
		signaling.MgmtProfFlame: "execution profiling disabled",
		signaling.MgmtProfJSON:  "{}",
	} {
		reply, err := realQuery(t, h.ListenAddr(), q)
		if err != nil {
			t.Fatalf("%s: %v", q, err)
		}
		if reply.Kind != sigmsg.KindMgmtReply || reply.Comment != want {
			t.Fatalf("%s: kind=%v body=%q", q, reply.Kind, reply.Comment)
		}
	}

	// A bogus prof view is malformed, not merely unknown: the error
	// names the valid views so the caller can fix the query.
	reply, err := realQuery(t, h.ListenAddr(), "prof.bogus")
	if err != nil {
		t.Fatal(err)
	}
	if reply.Kind != sigmsg.KindError || !strings.Contains(reply.Reason, "unknown prof view") ||
		!strings.Contains(reply.Reason, "prof.flame") {
		t.Fatalf("prof.bogus: kind=%v reason=%q", reply.Kind, reply.Reason)
	}

	// With a profiler attached (in actor context, so no race with the
	// handler), the views serve its exports.
	p := prof.New()
	p.Engine(0).Account(p.Engine(0).Label("proc.sighost"), 1000)
	h.SetProfSource(p.Text, p.JSON, p.FlameFolded)
	reply, err = realQuery(t, h.ListenAddr(), signaling.MgmtProf)
	if err != nil {
		t.Fatal(err)
	}
	if reply.Kind != sigmsg.KindMgmtReply || !strings.Contains(reply.Comment, "proc.sighost") {
		t.Fatalf("armed prof view: kind=%v body=%q", reply.Kind, reply.Comment)
	}
	reply, err = realQuery(t, h.ListenAddr(), signaling.MgmtProfJSON)
	if err != nil || !strings.Contains(reply.Comment, `"shards"`) {
		t.Fatalf("armed prof.json view: err=%v body=%q", err, reply.Comment)
	}
}

// An oversized prof reply must be refused whole with the query name in
// the reason — same contract as the stats view — and the daemon must
// stay usable afterwards.
func TestMgmtProfOversizedReply(t *testing.T) {
	old := signaling.MaxMgmtReply
	signaling.MaxMgmtReply = 64
	t.Cleanup(func() { signaling.MaxMgmtReply = old })
	h := startReal(t)

	big := strings.Repeat("shard 0: busy\n", 64)
	h.SetProfSource(func() string { return big }, nil, nil)
	reply, err := realQuery(t, h.ListenAddr(), signaling.MgmtProf)
	if err != nil {
		t.Fatal(err)
	}
	if reply.Kind != sigmsg.KindError || !strings.Contains(reply.Reason, "too large") ||
		!strings.Contains(reply.Reason, signaling.MgmtProf) {
		t.Fatalf("oversized prof reply: kind=%v reason=%q", reply.Kind, reply.Reason)
	}
	reply, err = realQuery(t, h.ListenAddr(), signaling.MgmtServices)
	if err != nil || reply.Kind != sigmsg.KindMgmtReply {
		t.Fatalf("post-error query: kind=%v err=%v", reply.Kind, err)
	}
}

func TestRealServerReject(t *testing.T) {
	h := startReal(t)
	c := &signaling.RealClient{SighostAddr: h.ListenAddr()}
	srvL, _ := net.Listen("tcp", "127.0.0.1:0")
	defer srvL.Close()
	if err := c.ExportService("refuser", uint16(srvL.Addr().(*net.TCPAddr).Port)); err != nil {
		t.Fatal(err)
	}
	go func() {
		req, err := signaling.AwaitServiceRequest(srvL)
		if err != nil {
			return
		}
		_ = req.Reject("maintenance window")
	}()
	cliL, _ := net.Listen("tcp", "127.0.0.1:0")
	defer cliL.Close()
	_, err := c.OpenConnection("mh.rt", "refuser", cliL, uint16(cliL.Addr().(*net.TCPAddr).Port), "", "")
	if err == nil || !strings.Contains(err.Error(), "maintenance window") {
		t.Fatalf("err = %v", err)
	}
}

func TestRealCancelOutstanding(t *testing.T) {
	h := startReal(t)
	c := &signaling.RealClient{SighostAddr: h.ListenAddr()}
	// A server that exports but never answers its notify port.
	srvL, _ := net.Listen("tcp", "127.0.0.1:0")
	defer srvL.Close()
	if err := c.ExportService("sleepy", uint16(srvL.Addr().(*net.TCPAddr).Port)); err != nil {
		t.Fatal(err)
	}
	// Issue the CONNECT_REQ by hand so we hold the cookie while the
	// request is pending.
	conn, err := net.Dial("tcp", h.ListenAddr())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	if err := signaling.WriteFrame(conn, sigmsg.Msg{
		Kind: sigmsg.KindConnectReq, Dest: "mh.rt", Service: "sleepy", NotifyPort: 19999,
	}.Encode()); err != nil {
		t.Fatal(err)
	}
	conn.SetReadDeadline(time.Now().Add(5 * time.Second))
	raw, err := signaling.ReadFrame(conn)
	if err != nil {
		t.Fatal(err)
	}
	reply, _ := sigmsg.Decode(raw)
	if reply.Kind != sigmsg.KindReqID {
		t.Fatalf("reply = %v", reply.Kind)
	}
	if err := c.CancelRequest(reply.Cookie); err != nil {
		t.Fatal(err)
	}
	// State must drain. Poll through the management interface: the query
	// runs in actor context, so it reads the lists without racing the
	// teardown that the cancel set in motion.
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		body, err := c.Query(signaling.MgmtLists)
		if err != nil {
			t.Fatal(err)
		}
		if strings.Contains(body, "outgoing_requests=0") && strings.Contains(body, "incoming_requests=0") {
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatal("request state did not drain after cancel")
}
