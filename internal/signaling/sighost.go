// Package signaling implements sighost, the user-space signaling entity
// at the center of the paper's design (§6–§7).
//
// The Sighost type is a pure state machine: it "only acts in response to
// messages received from the user library, the local or remote kernel,
// or the peer signaling entity". All I/O happens through the Env
// interface, so the same state machine runs inside the discrete-event
// simulation (SimHost, in this package) and inside a real daemon over
// TCP (cmd/sighost). Exactly as §7.3 describes, internal state lives in
// five lists — service_list, outgoing_requests, incoming_requests,
// wait_for_bind and VCI_mapping — plus the per-VCI cookie table of §7.1.
package signaling

import (
	"time"

	"xunet/internal/atm"
	"xunet/internal/kern"
	"xunet/internal/memnet"
	"xunet/internal/obs"
	"xunet/internal/qos"
	"xunet/internal/sigmsg"
	"xunet/internal/trace"
)

// Well-known ports.
const (
	// SigPort is the TCP port sighost accepts application RPCs on.
	SigPort = 177
	// AnandPort is the TCP port anand server accepts host relays on.
	AnandPort = 178
)

// Conn is a signaling-side view of one reliable IPC connection to an
// application (either accepted on SigPort or dialed to a notify port).
type Conn interface {
	Send(m sigmsg.Msg) error
	Close()
}

// VCHandle is an established circuit through the fabric.
type VCHandle struct {
	SrcVCI  atm.VCI
	DstVCI  atm.VCI
	Cost    time.Duration // switch-programming cost to charge
	Release func()
}

// CancelFunc cancels a pending timer.
type CancelFunc func()

// Env is everything sighost needs from its surroundings. Callbacks
// (After, Dial results, message deliveries) must run serialized with
// the handler methods — the actor discipline.
type Env interface {
	// Addr is this signaling entity's ATM address.
	Addr() atm.Addr
	// LocalIP is the router's own IP (applications on the router have
	// this as their endpoint address).
	LocalIP() memnet.IPAddr
	// Charge accounts busy time (context switches, per-call logging,
	// switch programming) against the signaling entity.
	Charge(d time.Duration)
	// After schedules fn in actor context after d. what names the
	// timer's purpose ("rel.rto", "rel.keepalive", "bind.timeout") for
	// execution-profiler attribution; environments without a profiler
	// ignore it.
	After(d time.Duration, what string, fn func()) CancelFunc
	// SendPeer delivers a message to the signaling entity at dst over
	// the signaling PVC mesh. dst may equal Addr (local call loopback).
	SendPeer(dst atm.Addr, m sigmsg.Msg) error
	// SendPeerRaw delivers an already-encoded frame: raw is m's wire
	// encoding, cached by the reliability layer so retransmissions never
	// re-encode. m is consulted only for loopback delivery and trace
	// identity. raw is owned by the caller again once the call returns;
	// implementations that defer the send must copy it.
	SendPeerRaw(dst atm.Addr, m sigmsg.Msg, raw []byte) error
	// Dial opens an IPC connection to an application's notify port,
	// delivering the result asynchronously in actor context. Messages
	// arriving on the resulting Conn are fed to HandleApp.
	Dial(ip memnet.IPAddr, port uint16, cb func(Conn, error))
	// SetupVC programs a circuit through the fabric from Addr to dst.
	SetupVC(dst atm.Addr, q qos.QoS) (*VCHandle, error)
	// KernelDisconnect marks the socket bound to vci on the endpoint
	// machine unusable (pseudo-device write; relayed through anand for
	// hosts, which also shuts the router's VCI forwarding).
	KernelDisconnect(endpoint memnet.IPAddr, vci atm.VCI)
	// Rand16 returns entropy for cookie generation.
	Rand16() uint16
	// Now is the current time on the clock that drives this entity (the
	// sim engine's virtual clock, or wall time since daemon start). It
	// timestamps trace events and feeds the latency histograms.
	Now() time.Duration
}

// Stats is a point-in-time snapshot of signaling activity, read by the
// experiments. The live counts are obs registry counters (see sigCounters);
// Stats() assembles this struct from them on demand.
type Stats struct {
	ServicesRegistered uint64
	CallsRequested     uint64
	CallsEstablished   uint64
	CallsRejected      uint64
	CallsFailed        uint64
	CallsTorn          uint64
	CallsCanceled      uint64
	AuthFailures       uint64
	BindTimeouts       uint64
	KernelMsgs         uint64
	PeerMsgs           uint64
	AppMsgs            uint64
}

// service_list entry.
type serviceEntry struct {
	name string
	ip   memnet.IPAddr
	port uint16
}

// callKey identifies a call; the id is scoped to the originating
// sighost, and origin distinguishes the two views of a call both of
// whose endpoints this sighost serves.
type callKey struct {
	peer   atm.Addr
	id     uint32
	origin bool
}

type callState uint8

const (
	callSetupSent   callState = iota // origin: SETUP sent, awaiting ack
	callWaitServer                   // dest: INCOMING_CONN sent, awaiting accept
	callProgramming                  // origin: accepted, fabric being set up
	callEstablished                  // VCI handed out
	callReleased
)

type call struct {
	key     callKey
	state   callState
	service string
	qosStr  string
	comment string

	// Endpoint application this side serves.
	endIP   memnet.IPAddr
	endPort uint16
	// ownerPID is the requesting process at the origin (0 if unknown),
	// used to cancel outstanding requests when the process dies.
	ownerPID uint32
	cookie   uint16 // the capability handed to this side's application

	// localVCI is this side's VCI (origin: source VCI, dest:
	// destination VCI).
	localVCI atm.VCI

	// vc is held at the origin only; releasing it unprograms the path.
	vc *VCHandle

	// serverConn is the per-call connection to the server's notify
	// port, held at the destination side during establishment.
	serverConn Conn

	// notified marks that CONN_FAILED was already delivered to this
	// side's application, so overlapping failure paths (explicit
	// rejection, crash recovery, teardown of a pre-VCI call) cannot
	// notify twice.
	notified bool

	// Stage timestamps (env.Now) feeding the setup-latency histograms:
	// request handled, SETUP sent, SETUP_ACK received, established.
	reqAt       time.Duration
	setupSentAt time.Duration
	ackAt       time.Duration
	estAt       time.Duration

	// Causal-trace contexts (zero when the call is untraced/unsampled).
	// At the origin, tcRoot is the whole-call root span, tcSetup the
	// call.setup span, and tcPeer the setup phase spent waiting on the
	// peer. At the destination, tcRoot arrives in CONNECT_DONE, tcPeer
	// in SETUP (the origin's peer span), and tcAccept is the local
	// server-consultation span under it. tcBind is the wait_for_bind
	// span either side opens when it hands out a VCI.
	tcRoot   trace.Context
	tcSetup  trace.Context
	tcPeer   trace.Context
	tcAccept trace.Context
	tcBind   trace.Context

	// gen counts incarnations of this (pooled) struct. Asynchronous
	// callbacks capture the pointer AND the gen at launch; a mismatch at
	// delivery means the struct was recycled for a different call.
	gen uint32

	// Intrusive list links — the indexed call state. allNext/allPrev
	// thread every live call in creation order (deterministic journal
	// compaction); peerNext/peerPrev thread the calls sharing a peer
	// signaling entity (keepalive death sweep, link liveness);
	// ownNext/ownPrev thread outstanding origin requests by requesting
	// process (the §7.2 exit cascade). Freed structs reuse allNext as
	// the pool link.
	allNext, allPrev   *call
	peerNext, peerPrev *call
	ownNext, ownPrev   *call
	ownLinked          bool
}

// ownerKey identifies the process behind outstanding origin requests:
// kernelExit walks exactly this process's chain instead of scanning the
// whole outgoing_requests table.
type ownerKey struct {
	ip  memnet.IPAddr
	pid uint32
}

// peerCalls heads the per-peer chain of live calls, in creation order.
type peerCalls struct {
	head, tail *call
	n          int
}

// bindWait is a wait_for_bind entry: a VCI handed to an application
// that has not yet bound or connected, guarded by the per-VCI timer.
// deadline is the timer's absolute expiry; crash-recovery re-arms the
// timer with only the remaining allowance. Entries are pooled; fire is
// bound once per struct so re-arming allocates nothing.
type bindWait struct {
	sh       *Sighost
	c        *call
	gen      uint32 // c.gen at arm time
	vci      atm.VCI
	cancel   CancelFunc
	deadline time.Duration
	next     *bindWait // pool link
	fire     func()
}

// dialCtx carries one outstanding Env.Dial across its asynchronous
// callback without a per-dial closure allocation: the cb func is bound
// once per (pooled) struct. Payload fields the callback must be able to
// read after the call is gone (the VCI hand-off, failure notices) are
// copied in by value.
type dialCtx struct {
	sh     *Sighost
	kind   uint8
	c      *call
	gen    uint32
	cookie uint16
	vci    atm.VCI
	qosStr string
	reason string
	tc     trace.Context
	next   *dialCtx // pool link
	cb     func(Conn, error)
}

const (
	dcServer    uint8 = iota + 1 // peerSetup's dial to the server's notify port
	dcClientVCI                  // peerSetupAck's VCI hand-off to the client
	dcNotify                     // notifyClientFailure's CONN_FAILED delivery
)

// Sighost is the signaling entity.
type Sighost struct {
	env Env
	cm  CostModel

	// The five lists of §7.3.
	services map[string]*serviceEntry // service_list
	outgoing map[uint16]*call         // outgoing_requests
	incoming map[uint16]*call         // incoming_requests
	waitBind map[atm.VCI]*bindWait    // wait_for_bind
	vciMap   map[atm.VCI]*call        // VCI_mapping

	// cookies is the per-VCI table of cookies (§7.1).
	cookies map[atm.VCI]uint16

	calls map[callKey]*call
	pvcs  map[atm.VCI]bool

	// Indexed call state: heads of the intrusive lists threading calls
	// (see the link fields on call), plus the object pools that make the
	// steady-state setup→bind→teardown cycle allocation-free.
	allHead, allTail *call
	byPeer           map[atm.Addr]*peerCalls
	byOwner          map[ownerKey]*call
	callPool         *call
	bwPool           *bindWait
	dcPool           *dialCtx
	scratch          []*call // reusable cascade collection buffer

	nextCallID uint32

	// Obs is the telemetry registry all sighost metrics live in (shared
	// with the rest of the machine in the sim). ct/h are the pre-resolved
	// hot-path handles; tr gates structured event publication.
	Obs *obs.Registry
	ct  sigCounters
	h   sigHists
	tr  *obs.Tracer

	// Trace, when non-nil, receives one stringified line per event — the
	// legacy adapter over the typed event ring that the Figure 3/4 golden
	// tests and examples/ consume.
	Trace func(line string)

	// TraceC is the causal-trace collector (nil or disabled means no
	// span recording). In the sim it is the testbed-wide shared
	// collector, so spans recorded here and at the peer land in one
	// tree; the real-mode daemon gets a local wall-clock collector.
	TraceC *trace.Collector

	// rel is the reliable peer channel (nil until EnableReliability);
	// jr is the crash-recovery journal (nil until EnableJournal).
	rel *reliability
	jr  *journal
	// down marks a crashed entity: handlers drop everything until
	// Recover. epochGen is the incarnation number feeding new links'
	// reliability epochs.
	down     bool
	epochGen uint32

	// FaultsInfo/FaultsJSON, when set, render the fault plane's counters
	// for the MGMT `faults` / `faults.json` queries.
	FaultsInfo func() string
	FaultsJSON func() string

	// TSeriesInfo/TSeriesJSON and HealthInfo/HealthJSON, when set,
	// render the time-series store and its watermark-rule state for the
	// MGMT `tseries` / `health` queries (the testbed and the real-mode
	// daemon wire these to their tseries.Store).
	TSeriesInfo func() string
	TSeriesJSON func() string
	HealthInfo  func() string
	HealthJSON  func() string

	// ProfInfo/ProfJSON/ProfFlame, when set, render the execution
	// profiler (internal/prof) for the MGMT `prof` / `prof.json` /
	// `prof.flame` queries: the barrier-stall table and critical-shard
	// ranking, the machine-readable snapshot, and folded flame stacks.
	ProfInfo  func() string
	ProfJSON  func() string
	ProfFlame func() string
}

// sigCounters are the registry counters behind the legacy Stats fields,
// registered under "sighost.*" names.
type sigCounters struct {
	servicesRegistered *obs.Counter // sighost.services_registered
	callsRequested     *obs.Counter // sighost.calls.requested
	callsEstablished   *obs.Counter // sighost.calls.established
	callsRejected      *obs.Counter // sighost.calls.rejected
	callsFailed        *obs.Counter // sighost.calls.failed
	callsTorn          *obs.Counter // sighost.calls.torn
	callsCanceled      *obs.Counter // sighost.calls.canceled
	authFailures       *obs.Counter // sighost.auth_failures
	bindTimeouts       *obs.Counter // sighost.bind_timeouts
	kernelMsgs         *obs.Counter // sighost.msgs.kernel
	peerMsgs           *obs.Counter // sighost.msgs.peer
	appMsgs            *obs.Counter // sighost.msgs.app
}

// sigHists are the sim-time latency histograms for the paper's call-setup
// breakdown (Figure 4 stages) plus bind behavior.
type sigHists struct {
	setupProcess *obs.Histogram // sighost.setup.process: CONNECT_REQ handled -> SETUP sent
	setupPeer    *obs.Histogram // sighost.setup.peer: SETUP sent -> SETUP_ACK received
	setupProgram *obs.Histogram // sighost.setup.program: SETUP_ACK -> call established
	setupTotal   *obs.Histogram // sighost.setup.total: CONNECT_REQ -> established (origin)
	acceptTotal  *obs.Histogram // sighost.accept.total: SETUP -> CONNECT_DONE (dest)
	bindLatency  *obs.Histogram // sighost.bind.latency: established -> bind authenticated
	bindTimerLag *obs.Histogram // sighost.bindtimer.fire: timer lag past its deadline
}

// CostModel is the slice of the simulation cost model sighost charges:
// context switches per IPC hop, per-call maintenance logging (§9's
// dominant call-setup cost, toggleable for the E3 ablation), and the
// wait_for_bind timeout.
type CostModel struct {
	ContextSwitch time.Duration
	CallLogging   time.Duration
	// TeardownLogging is the smaller per-call record written when a
	// call is released (part of the same maintenance information).
	TeardownLogging time.Duration
	BindTimeout     time.Duration
	LoggingEnabled  bool
}

// New creates a signaling entity over env with a private telemetry
// registry.
func New(env Env, cm CostModel) *Sighost {
	return NewWithObs(env, cm, obs.NewRegistry())
}

// NewWithObs creates a signaling entity that registers its metrics in reg
// (typically the owning machine's registry, so one mgmt query or report
// snapshot covers the whole stack).
func NewWithObs(env Env, cm CostModel, reg *obs.Registry) *Sighost {
	if cm.BindTimeout <= 0 {
		cm.BindTimeout = 30 * time.Second
	}
	sh := &Sighost{
		env:      env,
		cm:       cm,
		services: make(map[string]*serviceEntry),
		outgoing: make(map[uint16]*call),
		incoming: make(map[uint16]*call),
		waitBind: make(map[atm.VCI]*bindWait),
		vciMap:   make(map[atm.VCI]*call),
		cookies:  make(map[atm.VCI]uint16),
		calls:    make(map[callKey]*call),
		pvcs:     make(map[atm.VCI]bool),
		byPeer:   make(map[atm.Addr]*peerCalls),
		byOwner:  make(map[ownerKey]*call),
		Obs:      reg,
		tr:       reg.Tracer("sighost"),
	}
	sh.ct = sigCounters{
		servicesRegistered: reg.Counter("sighost.services_registered"),
		callsRequested:     reg.Counter("sighost.calls.requested"),
		callsEstablished:   reg.Counter("sighost.calls.established"),
		callsRejected:      reg.Counter("sighost.calls.rejected"),
		callsFailed:        reg.Counter("sighost.calls.failed"),
		callsTorn:          reg.Counter("sighost.calls.torn"),
		callsCanceled:      reg.Counter("sighost.calls.canceled"),
		authFailures:       reg.Counter("sighost.auth_failures"),
		bindTimeouts:       reg.Counter("sighost.bind_timeouts"),
		kernelMsgs:         reg.Counter("sighost.msgs.kernel"),
		peerMsgs:           reg.Counter("sighost.msgs.peer"),
		appMsgs:            reg.Counter("sighost.msgs.app"),
	}
	sh.h = sigHists{
		setupProcess: reg.Histogram("sighost.setup.process"),
		setupPeer:    reg.Histogram("sighost.setup.peer"),
		setupProgram: reg.Histogram("sighost.setup.program"),
		setupTotal:   reg.Histogram("sighost.setup.total"),
		acceptTotal:  reg.Histogram("sighost.accept.total"),
		bindLatency:  reg.Histogram("sighost.bind.latency"),
		bindTimerLag: reg.Histogram("sighost.bindtimer.fire"),
	}
	// The five lists of §7.3 as read-through gauges. Sampled at snapshot
	// time, which must run in actor context (mgmt queries do) or after the
	// sim quiesces.
	reg.Func("sighost.list.services", func() uint64 { return uint64(len(sh.services)) })
	reg.Func("sighost.list.outgoing", func() uint64 { return uint64(len(sh.outgoing)) })
	reg.Func("sighost.list.incoming", func() uint64 { return uint64(len(sh.incoming)) })
	reg.Func("sighost.list.wait_bind", func() uint64 { return uint64(len(sh.waitBind)) })
	reg.Func("sighost.list.vci_map", func() uint64 { return uint64(len(sh.vciMap)) })
	reg.Func("sighost.cookies", func() uint64 { return uint64(len(sh.cookies)) })
	reg.Func("sighost.calls.active", func() uint64 { return uint64(len(sh.calls)) })
	return sh
}

// Stats snapshots the signaling counters into the legacy struct.
func (sh *Sighost) Stats() Stats {
	return Stats{
		ServicesRegistered: sh.ct.servicesRegistered.Value(),
		CallsRequested:     sh.ct.callsRequested.Value(),
		CallsEstablished:   sh.ct.callsEstablished.Value(),
		CallsRejected:      sh.ct.callsRejected.Value(),
		CallsFailed:        sh.ct.callsFailed.Value(),
		CallsTorn:          sh.ct.callsTorn.Value(),
		CallsCanceled:      sh.ct.callsCanceled.Value(),
		AuthFailures:       sh.ct.authFailures.Value(),
		BindTimeouts:       sh.ct.bindTimeouts.Value(),
		KernelMsgs:         sh.ct.kernelMsgs.Value(),
		PeerMsgs:           sh.ct.peerMsgs.Value(),
		AppMsgs:            sh.ct.appMsgs.Value(),
	}
}

// AllowPVC marks a VCI as a preauthorized permanent circuit (the
// signaling PVCs themselves), exempt from cookie authentication.
func (sh *Sighost) AllowPVC(vci atm.VCI) { sh.pvcs[vci] = true }

// SetLogging toggles the per-call maintenance logging cost — the E3
// ablation isolating §9's dominant call-setup cost.
func (sh *Sighost) SetLogging(on bool) { sh.cm.LoggingEnabled = on }

// ListSizes reports the five list sizes (service_list,
// outgoing_requests, incoming_requests, wait_for_bind, VCI_mapping) for
// the robustness assertions: after a storm with everything torn down,
// all but service_list must be empty.
func (sh *Sighost) ListSizes() (services, outgoing, incoming, waitBind, vciMapping int) {
	return len(sh.services), len(sh.outgoing), len(sh.incoming), len(sh.waitBind), len(sh.vciMap)
}

// CookieCount reports live per-VCI cookie entries.
func (sh *Sighost) CookieCount() int { return len(sh.cookies) }

// traceOn reports whether any trace consumer is attached: the typed ring
// (per-component enable flag) or the legacy Trace callback. Call sites gate
// event construction on this so disabled tracing costs one nil-check and an
// atomic load.
func (sh *Sighost) traceOn() bool {
	return sh.Trace != nil || sh.tr.Enabled()
}

// emit timestamps, stringifies and publishes one event: to the ring when the
// sighost tracer is enabled, and to the legacy Trace callback when set.
func (sh *Sighost) emit(ev obs.Event) {
	ev.At = sh.env.Now()
	ev.Text = eventString(ev)
	if sh.Trace != nil {
		sh.Trace(ev.Text)
	}
	sh.tr.Emit(ev)
}

// emitMsg publishes a signaling-message event with typed identity fields.
func (sh *Sighost) emitMsg(kind, peer string, m sigmsg.Msg) {
	if !sh.traceOn() {
		return
	}
	sh.emit(obs.Event{
		Kind: kind, Peer: peer,
		VCI: uint32(m.VCI), CallID: m.CallID, Cookie: uint32(m.Cookie),
		Data: m,
	})
}

// newCookie allocates an unused nonzero 16-bit capability.
func (sh *Sighost) newCookie() uint16 {
	for {
		c := sh.env.Rand16()
		if c == 0 {
			continue
		}
		if _, dup := sh.outgoing[c]; dup {
			continue
		}
		if _, dup := sh.incoming[c]; dup {
			continue
		}
		return c
	}
}

// newCall takes a call struct from the pool (or allocates the pool's
// first). The incarnation counter survives recycling so stale async
// callbacks can detect reuse.
func (sh *Sighost) newCall() *call {
	if c := sh.callPool; c != nil {
		sh.callPool = c.allNext
		gen := c.gen
		*c = call{}
		c.gen = gen
		return c
	}
	return &call{gen: 1}
}

// releaseCall returns a fully unlinked call to the pool. The gen bump
// invalidates every outstanding callback that captured this struct.
func (sh *Sighost) releaseCall(c *call) {
	c.gen++
	c.vc = nil
	c.serverConn = nil
	c.allNext = sh.callPool
	sh.callPool = c
}

// linkCall registers a new call in the calls table and threads it on the
// all-calls and per-peer lists.
func (sh *Sighost) linkCall(c *call) {
	sh.calls[c.key] = c
	c.allPrev = sh.allTail
	if sh.allTail != nil {
		sh.allTail.allNext = c
	} else {
		sh.allHead = c
	}
	sh.allTail = c
	pc := sh.byPeer[c.key.peer]
	if pc == nil {
		pc = &peerCalls{}
		sh.byPeer[c.key.peer] = pc
	}
	c.peerPrev = pc.tail
	if pc.tail != nil {
		pc.tail.peerNext = c
	} else {
		pc.head = c
	}
	pc.tail = c
	pc.n++
}

// unlinkCall removes a call from the calls table and both lists. Safe to
// call twice (the table check makes the second a no-op).
func (sh *Sighost) unlinkCall(c *call) {
	if sh.calls[c.key] != c {
		return
	}
	delete(sh.calls, c.key)
	if c.allPrev != nil {
		c.allPrev.allNext = c.allNext
	} else {
		sh.allHead = c.allNext
	}
	if c.allNext != nil {
		c.allNext.allPrev = c.allPrev
	} else {
		sh.allTail = c.allPrev
	}
	c.allNext, c.allPrev = nil, nil
	pc := sh.byPeer[c.key.peer]
	if c.peerPrev != nil {
		c.peerPrev.peerNext = c.peerNext
	} else {
		pc.head = c.peerNext
	}
	if c.peerNext != nil {
		c.peerNext.peerPrev = c.peerPrev
	} else {
		pc.tail = c.peerPrev
	}
	c.peerNext, c.peerPrev = nil, nil
	pc.n--
}

// linkOwner threads an outstanding origin request on its process's
// chain; mirrors membership in the outgoing_requests table.
func (sh *Sighost) linkOwner(c *call) {
	if c.ownerPID == 0 {
		return
	}
	k := ownerKey{ip: c.endIP, pid: c.ownerPID}
	if head := sh.byOwner[k]; head != nil {
		head.ownPrev = c
		c.ownNext = head
	}
	sh.byOwner[k] = c
	c.ownLinked = true
}

func (sh *Sighost) unlinkOwner(c *call) {
	if !c.ownLinked {
		return
	}
	c.ownLinked = false
	if c.ownPrev != nil {
		c.ownPrev.ownNext = c.ownNext
	} else {
		k := ownerKey{ip: c.endIP, pid: c.ownerPID}
		if c.ownNext != nil {
			sh.byOwner[k] = c.ownNext
		} else {
			delete(sh.byOwner, k)
		}
	}
	if c.ownNext != nil {
		c.ownNext.ownPrev = c.ownPrev
	}
	c.ownNext, c.ownPrev = nil, nil
}

// dropOutgoing removes c from outgoing_requests (and its owner chain) if
// it is still there. The identity check guards against a later call that
// was handed the same cookie after c left the table.
func (sh *Sighost) dropOutgoing(c *call) {
	if sh.outgoing[c.cookie] == c {
		delete(sh.outgoing, c.cookie)
		sh.unlinkOwner(c)
	}
}

// dropIncomingEntry removes c from incoming_requests if still there.
func (sh *Sighost) dropIncomingEntry(c *call) {
	if sh.incoming[c.cookie] == c {
		delete(sh.incoming, c.cookie)
	}
}

// newDialCtx takes a dial context from the pool; its cb closure is bound
// exactly once, on first allocation.
func (sh *Sighost) newDialCtx() *dialCtx {
	dc := sh.dcPool
	if dc == nil {
		dc = &dialCtx{sh: sh}
		dc.cb = func(conn Conn, err error) { dc.run(conn, err) }
	} else {
		sh.dcPool = dc.next
	}
	return dc
}

// run dispatches one completed dial. It copies its state out and
// recycles the struct FIRST: the handlers below may tear calls down and
// launch new dials, and with a synchronous Env.Dial those re-enter the
// pool (and possibly this very struct) before run returns.
func (dc *dialCtx) run(conn Conn, err error) {
	sh := dc.sh
	defer sh.jflush() // dial completions are dispatches of their own
	kind, c, gen := dc.kind, dc.c, dc.gen
	cookie, vci, qosStr, reason, tc := dc.cookie, dc.vci, dc.qosStr, dc.reason, dc.tc
	dc.c, dc.qosStr, dc.reason = nil, "", ""
	dc.next = sh.dcPool
	sh.dcPool = dc

	switch kind {
	case dcServer:
		// The call may have been released (or its struct recycled) while
		// the dial was in flight.
		cur, live := sh.calls[c.key]
		if !live || cur != c || c.gen != gen || c.state != callWaitServer {
			if err == nil {
				conn.Close()
			}
			return
		}
		if err != nil {
			sh.sendPeer(c.key.peer, sigmsg.Msg{
				Kind: sigmsg.KindSetupRej, CallID: c.key.id, Reason: "server unreachable",
				TraceID: c.tcPeer.Trace, SpanID: c.tcPeer.Span,
			})
			sh.TraceC.EndSpan(c.tcAccept)
			sh.dropIncoming(c)
			return
		}
		c.serverConn = conn
		sh.sendApp(conn, sigmsg.Msg{
			Kind: sigmsg.KindIncomingConn, Service: c.service, Cookie: c.cookie,
			QoS: c.qosStr, Comment: c.comment,
		})
	case dcClientVCI:
		if err != nil {
			// Client vanished before establishment completed: tear the
			// call down end to end.
			if cur, live := sh.calls[c.key]; live && cur == c && c.gen == gen {
				sh.ct.callsFailed.Inc()
				sh.teardown(c, "client unreachable", true)
			}
			return
		}
		sh.sendApp(conn, sigmsg.Msg{
			Kind: sigmsg.KindVCIForConn, Cookie: cookie, VCI: vci, QoS: qosStr,
			TraceID: tc.Trace, SpanID: tc.Span,
		})
		conn.Close()
	case dcNotify:
		if err != nil {
			return
		}
		sh.sendApp(conn, sigmsg.Msg{Kind: sigmsg.KindConnFailed, Cookie: cookie, Reason: reason})
		conn.Close()
	}
}

// sendApp replies to an application, charging the kernel-to-application
// context switch.
func (sh *Sighost) sendApp(conn Conn, m sigmsg.Msg) {
	sh.env.Charge(sh.cm.ContextSwitch)
	sh.emitMsg(EvAppTx, "", m)
	_ = conn.Send(m)
}

// HandleApp processes one message from an application IPC connection.
// from is the application machine's IP address (getpeername).
func (sh *Sighost) HandleApp(conn Conn, from memnet.IPAddr, m sigmsg.Msg) {
	defer sh.jflush() // one durable append per dispatch
	if sh.down {
		sh.Obs.Counter("sighost.dropped_while_down").Inc()
		return
	}
	sh.ct.appMsgs.Inc()
	// Application-to-kernel-to-sighost delivery: one switch charged at
	// the sender, one here.
	sh.env.Charge(sh.cm.ContextSwitch)
	sh.emitMsg(EvAppRx, "", m)
	switch m.Kind {
	case sigmsg.KindExportSrv:
		sh.handleExport(conn, from, m)
	case sigmsg.KindUnexportSrv:
		sh.handleUnexport(conn, m)
	case sigmsg.KindConnectReq:
		sh.handleConnectReq(conn, from, m)
	case sigmsg.KindCancelReq:
		sh.handleCancelReq(conn, m)
	case sigmsg.KindAcceptConn:
		sh.handleAcceptConn(conn, m)
	case sigmsg.KindRejectConn:
		sh.handleRejectConn(conn, m)
	case sigmsg.KindMgmtQuery:
		sh.handleMgmtQuery(conn, m)
	default:
		sh.sendApp(conn, sigmsg.Msg{Kind: sigmsg.KindError, Reason: "unexpected " + m.Kind.String()})
	}
}

func (sh *Sighost) handleExport(conn Conn, from memnet.IPAddr, m sigmsg.Msg) {
	if m.Service == "" || m.NotifyPort == 0 {
		sh.sendApp(conn, sigmsg.Msg{Kind: sigmsg.KindError, Reason: "bad EXPORT_SRV"})
		return
	}
	sh.services[m.Service] = &serviceEntry{name: m.Service, ip: from, port: m.NotifyPort}
	sh.jlog(jrec{op: jExport, service: m.Service, ip: from, port: m.NotifyPort})
	sh.ct.servicesRegistered.Inc()
	sh.sendApp(conn, sigmsg.Msg{Kind: sigmsg.KindServiceRegs, Service: m.Service})
}

func (sh *Sighost) handleUnexport(conn Conn, m sigmsg.Msg) {
	if _, ok := sh.services[m.Service]; !ok {
		sh.sendApp(conn, sigmsg.Msg{Kind: sigmsg.KindError, Reason: "no such service"})
		return
	}
	delete(sh.services, m.Service)
	sh.jlog(jrec{op: jUnexport, service: m.Service})
	sh.sendApp(conn, sigmsg.Msg{Kind: sigmsg.KindServiceRegs, Service: m.Service})
}

// handleConnectReq starts a call on behalf of a client (Figure 4).
func (sh *Sighost) handleConnectReq(conn Conn, from memnet.IPAddr, m sigmsg.Msg) {
	if m.Dest == "" || m.Service == "" || m.NotifyPort == 0 {
		sh.sendApp(conn, sigmsg.Msg{Kind: sigmsg.KindError, Reason: "bad CONNECT_REQ"})
		return
	}
	sh.ct.callsRequested.Inc()
	sh.nextCallID++
	cookie := sh.newCookie()
	c := sh.newCall()
	c.key = callKey{peer: m.Dest, id: sh.nextCallID, origin: true}
	c.state = callSetupSent
	c.service = m.Service
	c.qosStr = m.QoS
	c.comment = m.Comment
	c.endIP = from
	c.endPort = m.NotifyPort
	c.ownerPID = m.PID
	c.cookie = cookie
	c.reqAt = sh.env.Now()
	sh.linkCall(c)
	sh.outgoing[cookie] = c
	sh.linkOwner(c)
	sh.jlog(jrec{
		op: jOpen, key: c.key, service: c.service, qos: c.qosStr,
		ip: c.endIP, port: c.endPort, cookie: cookie,
	})
	// Open the call's trace: root span for the call's whole lifetime,
	// call.setup for the establishment phase the paper's breakdown
	// table partitions.
	c.tcRoot = sh.TraceC.StartTrace("sighost", m.Service, c.key.id)
	// Anchored at reqAt, not now(): in the simulator the two coincide,
	// but in the real-mode daemon microseconds pass, and the setup span
	// must start exactly where its first child ("process") does for the
	// attribution to partition it.
	c.tcSetup = sh.TraceC.StartSpanAt(c.tcRoot, "sighost", "call.setup", c.reqAt)
	// REQ_ID carries the cookie identifying the connection that will be
	// established on the client's behalf.
	sh.sendApp(conn, sigmsg.Msg{Kind: sigmsg.KindReqID, Cookie: cookie})
	// The large per-call maintenance logging of §9.
	if sh.cm.LoggingEnabled {
		sh.env.Charge(sh.cm.CallLogging)
	}
	// The local processing phase ends — and the peer phase begins — at
	// the instant SETUP leaves; using one timestamp for both keeps the
	// breakdown an exact partition of call.setup. SETUP carries the
	// peer span so the destination's spans nest under it.
	sent := sh.env.Now()
	sh.TraceC.Record(c.tcSetup, "sighost", "process", c.reqAt, sent)
	c.tcPeer = sh.TraceC.StartSpanAt(c.tcSetup, "sighost", "peer", sent)
	err := sh.sendPeer(m.Dest, sigmsg.Msg{
		Kind: sigmsg.KindSetup, CallID: c.key.id, Src: sh.env.Addr(), Dest: m.Dest,
		Service: m.Service, QoS: m.QoS, Comment: m.Comment,
		TraceID: c.tcPeer.Trace, SpanID: c.tcPeer.Span,
	})
	if err != nil {
		// No signaling path to the destination: fail the call now.
		sh.ct.callsFailed.Inc()
		sh.notifyClientFailure(c, "destination unreachable: "+err.Error())
		sh.dropOutgoing(c)
		sh.unlinkCall(c)
		sh.jlog(jrec{op: jEnd, key: c.key})
		c.state = callReleased
		sh.TraceC.FinishTrace(c.tcRoot, trace.StatusFailed)
		sh.releaseCall(c)
		return
	}
	c.setupSentAt = sh.env.Now()
	sh.h.setupProcess.Observe(c.setupSentAt - c.reqAt)
}

func (sh *Sighost) handleCancelReq(conn Conn, m sigmsg.Msg) {
	c, ok := sh.outgoing[m.Cookie]
	if !ok {
		sh.sendApp(conn, sigmsg.Msg{Kind: sigmsg.KindError, Reason: "unknown request cookie"})
		return
	}
	sh.ct.callsCanceled.Inc()
	sh.teardown(c, "canceled by client", true)
	sh.sendApp(conn, sigmsg.Msg{Kind: sigmsg.KindCancelReq, Cookie: m.Cookie})
}

// handleAcceptConn completes the server's half of Figure 3.
func (sh *Sighost) handleAcceptConn(conn Conn, m sigmsg.Msg) {
	c, ok := sh.incoming[m.Cookie]
	if !ok {
		sh.sendApp(conn, sigmsg.Msg{Kind: sigmsg.KindError, Reason: "unknown incoming cookie"})
		return
	}
	// Negotiation: the server may modify the QoS, but the result never
	// exceeds the client's request. Unparseable descriptors pass
	// through opaque, preserving the "uninterpreted string" contract.
	// An offer identical to the request negotiates to itself, so the
	// common accept-as-is path skips the parse (and the String alloc).
	granted := m.QoS
	if m.QoS != c.qosStr {
		if reqQ, err1 := qos.Parse(c.qosStr); err1 == nil {
			if offQ, err2 := qos.Parse(m.QoS); err2 == nil {
				granted = qos.Negotiate(reqQ, offQ).String()
			}
		}
	}
	c.qosStr = granted
	sh.sendPeer(c.key.peer, sigmsg.Msg{
		Kind: sigmsg.KindSetupAck, CallID: c.key.id, QoS: granted,
		TraceID: c.tcPeer.Trace, SpanID: c.tcPeer.Span,
	})
	sh.TraceC.EndSpan(c.tcAccept)
}

func (sh *Sighost) handleRejectConn(conn Conn, m sigmsg.Msg) {
	c, ok := sh.incoming[m.Cookie]
	if !ok {
		sh.sendApp(conn, sigmsg.Msg{Kind: sigmsg.KindError, Reason: "unknown incoming cookie"})
		return
	}
	reason := m.Reason
	if reason == "" {
		reason = "rejected by server"
	}
	sh.ct.callsRejected.Inc()
	sh.sendPeer(c.key.peer, sigmsg.Msg{
		Kind: sigmsg.KindSetupRej, CallID: c.key.id, Reason: reason,
		TraceID: c.tcPeer.Trace, SpanID: c.tcPeer.Span,
	})
	sh.TraceC.EndSpan(c.tcAccept)
	sh.dropIncoming(c)
}

// dropIncoming removes destination-side establishment state.
func (sh *Sighost) dropIncoming(c *call) {
	sh.dropIncomingEntry(c)
	sh.unlinkCall(c)
	sh.jlog(jrec{op: jEnd, key: c.key})
	if c.serverConn != nil {
		c.serverConn.Close()
		c.serverConn = nil
	}
	c.state = callReleased
	sh.releaseCall(c)
}

func (sh *Sighost) sendPeer(dst atm.Addr, m sigmsg.Msg) error {
	// Loopback and non-call messages stay on the fast unsequenced path;
	// with reliability enabled, call-control messages to real peers get
	// sequence numbers and retransmission.
	if sh.rel != nil && dst != sh.env.Addr() {
		switch m.Kind {
		case sigmsg.KindSetup, sigmsg.KindSetupAck, sigmsg.KindSetupRej,
			sigmsg.KindConnectDone, sigmsg.KindRelease:
			return sh.relSend(dst, m)
		}
	}
	sh.emitMsg(EvPeerTx, string(dst), m)
	return sh.env.SendPeer(dst, m)
}

// HandlePeer processes one message from the signaling entity at from.
func (sh *Sighost) HandlePeer(from atm.Addr, m sigmsg.Msg) {
	defer sh.jflush() // one durable append per dispatch
	if sh.down {
		sh.Obs.Counter("sighost.dropped_while_down").Inc()
		return
	}
	if sh.rel != nil && from != sh.env.Addr() && !sh.relRecv(from, m) {
		return
	}
	sh.ct.peerMsgs.Inc()
	sh.emitMsg(EvPeerRx, string(from), m)
	switch m.Kind {
	case sigmsg.KindSetup:
		sh.peerSetup(from, m)
	case sigmsg.KindSetupAck:
		sh.peerSetupAck(from, m)
	case sigmsg.KindSetupRej:
		sh.peerSetupRej(from, m)
	case sigmsg.KindConnectDone:
		sh.peerConnectDone(from, m)
	case sigmsg.KindRelease:
		sh.peerRelease(from, m)
	}
}

// peerSetup is the destination side of call establishment: look the
// service up, dial the server's notify port, forward INCOMING_CONN.
func (sh *Sighost) peerSetup(from atm.Addr, m sigmsg.Msg) {
	// Idempotency: a duplicated or replayed SETUP for a call we already
	// know must not allocate a second cookie, dial the server twice, or
	// leak a second state-list entry.
	if _, dup := sh.calls[callKey{peer: from, id: m.CallID, origin: false}]; dup {
		return
	}
	// The SETUP's trace context is the origin's peer span: everything
	// this side does until SETUP_ACK/SETUP_REJ nests under it.
	wire := trace.Context{Trace: m.TraceID, Span: m.SpanID}
	svc, ok := sh.services[m.Service]
	if !ok {
		sh.sendPeer(from, sigmsg.Msg{
			Kind: sigmsg.KindSetupRej, CallID: m.CallID, Reason: "no such service: " + m.Service,
			TraceID: wire.Trace, SpanID: wire.Span,
		})
		return
	}
	if sh.cm.LoggingEnabled {
		sh.env.Charge(sh.cm.CallLogging)
	}
	cookie := sh.newCookie()
	c := sh.newCall()
	c.key = callKey{peer: from, id: m.CallID, origin: false}
	c.state = callWaitServer
	c.service = m.Service
	c.qosStr = m.QoS
	c.comment = m.Comment
	c.endIP = svc.ip
	c.endPort = svc.port
	c.cookie = cookie
	c.reqAt = sh.env.Now()
	c.tcPeer = wire
	c.tcAccept = sh.TraceC.StartSpanAt(wire, "sighost", "dest.accept", c.reqAt)
	sh.linkCall(c)
	sh.incoming[cookie] = c
	sh.jlog(jrec{
		op: jOpen, key: c.key, service: c.service, qos: c.qosStr,
		ip: c.endIP, port: c.endPort, cookie: cookie,
	})
	dc := sh.newDialCtx()
	dc.kind = dcServer
	dc.c, dc.gen = c, c.gen
	sh.env.Dial(svc.ip, svc.port, dc.cb)
}

// peerSetupAck is the origin side after the server accepted: program
// the fabric, hand the VCI to the client, tell the peer the circuit.
func (sh *Sighost) peerSetupAck(from atm.Addr, m sigmsg.Msg) {
	c, ok := sh.calls[callKey{peer: from, id: m.CallID, origin: true}]
	if !ok || c.state != callSetupSent {
		return
	}
	c.state = callProgramming
	c.ackAt = sh.env.Now()
	sh.h.setupPeer.Observe(c.ackAt - c.setupSentAt)
	// The peer phase ends and the programming phase begins at the ack.
	sh.TraceC.EndSpanAt(c.tcPeer, c.ackAt)
	program := sh.TraceC.StartSpanAt(c.tcSetup, "sighost", "program", c.ackAt)
	c.qosStr = m.QoS
	q, err := qos.Parse(m.QoS)
	if err != nil {
		q = qos.BestEffortQoS
	}
	progAt := sh.env.Now()
	vc, err := sh.env.SetupVC(c.key.peer, q)
	if err != nil {
		sh.ct.callsFailed.Inc()
		sh.sendPeer(from, sigmsg.Msg{Kind: sigmsg.KindRelease, CallID: m.CallID, Reason: "admission failed", FromOrigin: true})
		sh.notifyClientFailure(c, "network admission failed: "+err.Error())
		sh.dropOutgoing(c)
		sh.unlinkCall(c)
		sh.jlog(jrec{op: jEnd, key: c.key})
		c.state = callReleased
		sh.TraceC.FinishTrace(c.tcRoot, trace.StatusFailed)
		sh.releaseCall(c)
		return
	}
	sh.env.Charge(vc.Cost)
	// The switch-programming charge is the per-hop cost of writing the
	// VCI tables along the path (DESIGN.md §2's control-plane note).
	sh.TraceC.Record(program, "xswitch", "program_vc", progAt, sh.env.Now())
	c.vc = vc
	c.localVCI = vc.SrcVCI
	// Per-VCI cookie table entry and wait_for_bind timer for the client
	// side.
	sh.grantVCI(c, vc.SrcVCI)
	sh.sendPeer(from, sigmsg.Msg{
		Kind: sigmsg.KindConnectDone, CallID: m.CallID, VCI: vc.DstVCI, QoS: c.qosStr,
		TraceID: c.tcRoot.Trace, SpanID: c.tcRoot.Span,
	})
	// Hand the VCI to the client on its notify port. The payload rides
	// the dial context by value so delivery needs nothing from the call.
	dc := sh.newDialCtx()
	dc.kind = dcClientVCI
	dc.c, dc.gen = c, c.gen
	dc.cookie, dc.vci, dc.qosStr, dc.tc = c.cookie, c.localVCI, c.qosStr, c.tcRoot
	sh.env.Dial(c.endIP, c.endPort, dc.cb)
	c.state = callEstablished
	sh.dropOutgoing(c)
	sh.ct.callsEstablished.Inc()
	c.estAt = sh.env.Now()
	sh.h.setupProgram.Observe(c.estAt - c.ackAt)
	sh.h.setupTotal.Observe(c.estAt - c.reqAt)
	sh.TraceC.EndSpanAt(program, c.estAt)
	sh.TraceC.EndSpanAt(c.tcSetup, c.estAt)
}

// peerSetupRej is the origin side after rejection.
func (sh *Sighost) peerSetupRej(from atm.Addr, m sigmsg.Msg) {
	c, ok := sh.calls[callKey{peer: from, id: m.CallID, origin: true}]
	if !ok {
		return
	}
	sh.ct.callsFailed.Inc()
	sh.notifyClientFailure(c, m.Reason)
	sh.dropOutgoing(c)
	sh.unlinkCall(c)
	sh.jlog(jrec{op: jEnd, key: c.key})
	c.state = callReleased
	sh.TraceC.EndSpan(c.tcPeer)
	sh.TraceC.FinishTrace(c.tcRoot, trace.StatusReject)
	sh.releaseCall(c)
}

// notifyClientFailure delivers CONN_FAILED to the client's notify port
// (at most once per call).
func (sh *Sighost) notifyClientFailure(c *call, reason string) {
	if c.notified {
		return
	}
	c.notified = true
	dc := sh.newDialCtx()
	dc.kind = dcNotify
	dc.cookie, dc.reason = c.cookie, reason
	sh.env.Dial(c.endIP, c.endPort, dc.cb)
}

// peerConnectDone is the destination side when the circuit is
// programmed: hand the VCI to the server over the held per-call
// connection, then close it.
func (sh *Sighost) peerConnectDone(from atm.Addr, m sigmsg.Msg) {
	c, ok := sh.calls[callKey{peer: from, id: m.CallID, origin: false}]
	if !ok || c.state != callWaitServer {
		return
	}
	c.state = callEstablished
	c.localVCI = m.VCI
	c.qosStr = m.QoS
	// CONNECT_DONE carries the call's root span; the destination's
	// remaining work (VCI delivery, wait_for_bind) hangs off it.
	c.tcRoot = trace.Context{Trace: m.TraceID, Span: m.SpanID}
	doneAt := sh.env.Now()
	sh.grantVCI(c, m.VCI)
	sh.dropIncomingEntry(c)
	if c.serverConn != nil {
		sh.sendApp(c.serverConn, sigmsg.Msg{
			Kind: sigmsg.KindVCIForConn, Cookie: c.cookie, VCI: m.VCI, QoS: m.QoS,
			TraceID: c.tcRoot.Trace, SpanID: c.tcRoot.Span,
		})
		c.serverConn.Close()
		c.serverConn = nil
	}
	sh.ct.callsEstablished.Inc()
	c.estAt = sh.env.Now()
	sh.h.acceptTotal.Observe(c.estAt - c.reqAt)
	sh.TraceC.Record(c.tcRoot, "sighost", "dest.deliver", doneAt, c.estAt)
}

// peerRelease tears down the local side of a call at the peer's
// request. Call IDs are scoped to the originating sighost, so the
// message's FromOrigin flag selects exactly one local view: a release
// from the call's origin tears our destination view, and vice versa.
// (Without the flag, two routers that each originated a call with the
// same ID toward each other would tear both down.)
func (sh *Sighost) peerRelease(from atm.Addr, m sigmsg.Msg) {
	if c, ok := sh.calls[callKey{peer: from, id: m.CallID, origin: !m.FromOrigin}]; ok {
		sh.teardown(c, m.Reason, false)
	}
}

// grantVCI installs the per-VCI cookie and starts the wait_for_bind
// timer: "sighost keeps a per-VCI timer that is loaded when a VCI is
// handed to an application. If no bind (resp. connect) indication is
// received before timeout, the connection is torn down."
func (sh *Sighost) grantVCI(c *call, vci atm.VCI) {
	sh.cookies[vci] = c.cookie
	c.tcBind = sh.TraceC.StartSpan(c.tcRoot, "sighost", "wait_bind")
	deadline := sh.env.Now() + sh.cm.BindTimeout
	sh.armBindTimer(c, vci, sh.cm.BindTimeout, deadline)
	sh.jlog(jrec{op: jGrant, key: c.key, vci: vci, cookie: c.cookie, deadline: deadline, vc: c.vc})
}

// armBindTimer installs the wait_for_bind entry with an explicit
// allowance: the full BindTimeout on grant, or whatever remained of the
// original deadline when crash-recovery re-arms it. Entries come from a
// pool; the fire closure is bound once per struct.
func (sh *Sighost) armBindTimer(c *call, vci atm.VCI, wait time.Duration, deadline time.Duration) {
	bw := sh.bwPool
	if bw == nil {
		bw = &bindWait{sh: sh}
		bw.fire = func() { bw.fireNow() }
	} else {
		sh.bwPool = bw.next
	}
	bw.c, bw.gen, bw.vci, bw.deadline, bw.next = c, c.gen, vci, deadline, nil
	bw.cancel = sh.env.After(wait, "bind.timeout", bw.fire)
	sh.waitBind[vci] = bw
}

// fireNow is the wait_for_bind timeout. All state is copied out before
// teardown runs: teardown recycles both this entry and the call.
func (bw *bindWait) fireNow() {
	sh := bw.sh
	defer sh.jflush() // timer fires are dispatches of their own
	if cur, ok := sh.waitBind[bw.vci]; !ok || cur != bw || bw.c.gen != bw.gen {
		return
	}
	c, vci, deadline := bw.c, bw.vci, bw.deadline
	sh.ct.bindTimeouts.Inc()
	// Fire lag: how far past its nominal deadline the timer ran
	// (always 0 in the sim; real daemons see scheduler jitter).
	sh.h.bindTimerLag.Observe(sh.env.Now() - deadline)
	if sh.traceOn() {
		sh.emit(obs.Event{Kind: EvBindTime, VCI: uint32(vci), CallID: c.key.id})
	}
	sh.teardown(c, "bind timeout", true)
}

// freeBindWait recycles a wait_for_bind entry whose timer has fired or
// been canceled.
func (sh *Sighost) freeBindWait(bw *bindWait) {
	bw.c, bw.cancel = nil, nil
	bw.next = sh.bwPool
	sh.bwPool = bw
}

// HandleKernel processes one pseudo-device (or anand-relayed) message.
// from is the machine whose kernel produced it: the router itself, or
// an IP-connected host.
func (sh *Sighost) HandleKernel(from memnet.IPAddr, k kern.KMsg) {
	defer sh.jflush() // one durable append per dispatch
	if sh.down {
		sh.Obs.Counter("sighost.dropped_while_down").Inc()
		return
	}
	sh.ct.kernelMsgs.Inc()
	if sh.traceOn() {
		sh.emit(obs.Event{
			Kind: EvKernRx, Peer: from.String(),
			VCI: uint32(k.VCI), Cookie: uint32(k.Cookie), Data: k,
		})
	}
	switch k.Kind {
	case kern.MsgBind, kern.MsgConnect:
		sh.kernelBindConnect(from, k)
	case kern.MsgClose:
		sh.kernelClose(from, k)
	case kern.MsgExit:
		// Per-socket close indications have already arrived (exit
		// processing closes descriptors first), so bound circuits are
		// gone. What remains is the §7.2 case: the process had
		// *outstanding requests* — calls still being established — and
		// "the termination indication is needed to allow sighost to
		// inform the remote router (or host) that the client no longer
		// exists, and the connection can be torn down."
		sh.kernelExit(from, k)
	}
}

// kernelBindConnect authenticates a bind/connect against the per-VCI
// cookie table. "If authentication fails, the call is torn down, and
// the socket marked unusable."
func (sh *Sighost) kernelBindConnect(from memnet.IPAddr, k kern.KMsg) {
	if sh.pvcs[k.VCI] {
		return // signaling's own permanent circuits
	}
	want, known := sh.cookies[k.VCI]
	if !known {
		// A bind to a VCI signaling never granted: malicious or stale.
		sh.ct.authFailures.Inc()
		sh.env.KernelDisconnect(from, k.VCI)
		return
	}
	bw, waiting := sh.waitBind[k.VCI]
	if k.Cookie != want {
		sh.ct.authFailures.Inc()
		if waiting {
			sh.teardown(bw.c, "cookie authentication failed", true)
		} else if c, ok := sh.vciMap[k.VCI]; ok {
			sh.teardown(c, "cookie authentication failed", true)
		}
		sh.env.KernelDisconnect(from, k.VCI)
		return
	}
	if waiting {
		bw.cancel()
		delete(sh.waitBind, k.VCI)
		c := bw.c
		sh.freeBindWait(bw)
		sh.vciMap[k.VCI] = c
		sh.jlog(jrec{op: jBound, key: c.key, vci: k.VCI})
		if c.estAt > 0 {
			sh.h.bindLatency.Observe(sh.env.Now() - c.estAt)
		}
		if sh.traceOn() {
			sh.emit(obs.Event{Kind: EvBindOK, VCI: uint32(k.VCI), CallID: c.key.id})
		}
		// The kernel indication rode the pseudo-device (or anand relay)
		// from its post time k.At; record it inside the wait, then close
		// the wait_for_bind span.
		if c.tcBind.Sampled() {
			if k.At > 0 {
				sh.TraceC.Record(c.tcBind, "kern", k.Kind.String(), k.At, sh.env.Now())
			}
			sh.TraceC.EndSpan(c.tcBind)
		}
	}
}

// kernelExit cancels the dead process's outstanding requests. The owner
// chain holds exactly this process's entries, in creation order, so the
// sweep is O(affected) — and deterministic — instead of a walk of the
// whole outgoing_requests table.
func (sh *Sighost) kernelExit(from memnet.IPAddr, k kern.KMsg) {
	doomed := sh.scratch[:0]
	for c := sh.byOwner[ownerKey{ip: from, pid: k.PID}]; c != nil; c = c.ownNext {
		doomed = append(doomed, c)
	}
	for _, c := range doomed {
		sh.teardown(c, "client terminated", true)
	}
	sh.scratch = doomed[:0]
}

// kernelClose tears down the call whose endpoint closed its socket.
func (sh *Sighost) kernelClose(from memnet.IPAddr, k kern.KMsg) {
	if sh.pvcs[k.VCI] {
		return
	}
	if c, ok := sh.vciMap[k.VCI]; ok {
		sh.teardown(c, "socket closed", true)
		return
	}
	if bw, ok := sh.waitBind[k.VCI]; ok {
		sh.teardown(bw.c, "socket closed before use", true)
	}
}

// teardown releases everything this side holds for a call and, when
// notifyPeer is set, sends RELEASE so the other side does the same.
func (sh *Sighost) teardown(c *call, reason string, notifyPeer bool) {
	if c.state == callReleased {
		return
	}
	// A client that has only seen REQ_ID is still blocked awaiting its
	// VCI; if the call dies before that hand-off (peer released it, the
	// remote entity restarted, retransmit budget spent), tell it now
	// rather than leaving it to run out its establishment timeout. A
	// client-initiated cancel needs no echo back.
	clientWaiting := c.key.origin && c.state == callSetupSent && reason != "canceled by client"
	c.state = callReleased
	sh.ct.callsTorn.Inc()
	if sh.traceOn() {
		sh.emit(obs.Event{
			Kind: EvTeardown, CallID: c.key.id, VCI: uint32(c.localVCI),
			Data: teardownInfo{origin: c.key.origin, reason: reason},
		})
	}
	if sh.cm.LoggingEnabled {
		sh.env.Charge(sh.cm.TeardownLogging)
	}
	if sh.rel != nil {
		// Pending establishment-phase retransmissions for a dead call
		// are pointless; drop them so they cannot outlive the call.
		sh.cancelCallRetransmits(c)
	}
	if bw, ok := sh.waitBind[c.localVCI]; ok && bw.c == c {
		bw.cancel()
		delete(sh.waitBind, c.localVCI)
		sh.freeBindWait(bw)
	}
	if sh.vciMap[c.localVCI] == c {
		delete(sh.vciMap, c.localVCI)
	}
	if c.localVCI != 0 {
		delete(sh.cookies, c.localVCI)
		// Mark the endpoint's socket unusable (and shut host
		// forwarding) so no more data flows on the dead circuit.
		sh.env.KernelDisconnect(c.endIP, c.localVCI)
	}
	if c.serverConn != nil {
		c.serverConn.Close()
		c.serverConn = nil
	}
	sh.dropOutgoing(c)
	sh.dropIncomingEntry(c)
	sh.unlinkCall(c)
	sh.jlog(jrec{op: jEnd, key: c.key})
	if c.vc != nil {
		c.vc.Release()
		c.vc = nil
	}
	if notifyPeer {
		sh.sendPeer(c.key.peer, sigmsg.Msg{
			Kind: sigmsg.KindRelease, CallID: c.key.id, Reason: reason,
			FromOrigin: c.key.origin,
		})
	}
	if clientWaiting {
		sh.notifyClientFailure(c, reason)
	}
	// The origin owns the trace's lifetime: finish it with a terminal
	// status derived from the teardown reason, which moves the span
	// tree into the flight recorder (and auto-dumps failures).
	if c.key.origin {
		sh.TraceC.FinishTrace(c.tcRoot, statusForReason(reason))
	}
	sh.releaseCall(c)
}

// statusForReason maps a teardown reason onto the trace's terminal
// status. Only REJECT/TIMEOUT/DEATH trigger flight-recorder dumps; a
// plain socket close is the normal end of a successful call.
func statusForReason(reason string) string {
	switch reason {
	case "socket closed", "socket closed before use":
		return trace.StatusOK
	case "canceled by client":
		return trace.StatusCanceled
	case "bind timeout", "retransmit budget exhausted":
		return trace.StatusTimeout
	case "client terminated", "client unreachable", "peer signaling entity dead",
		"lost in signaling restart":
		return trace.StatusDeath
	default:
		return trace.StatusFailed
	}
}
