package signaling_test

import (
	"testing"
	"time"

	"xunet/internal/kern"
	"xunet/internal/sigmsg"
	"xunet/internal/testbed"
)

// TestThirdPartyCookieHandoff exercises §7.1: "A cookie can be handed
// to a child of the server application or any third party." The server
// accepts the call but a *different process* binds the VCI with the
// cookie — authentication is capability-based, not process-based.
func TestThirdPartyCookieHandoff(t *testing.T) {
	n, ra, rb, _ := testbed.NewTestbed(testbed.Options{})
	type grant struct {
		vci    uint16
		cookie uint16
	}
	handoff := make(chan grant, 1) // test-side channel; the sim world passes values via closure
	var received []byte
	rb.Stack.Spawn("parent-server", func(p *kern.Proc) {
		_ = rb.Lib.ExportService(p, "fs", 6000)
		kl, _ := rb.Lib.CreateReceiveConnection(p, 6000)
		req, err := rb.Lib.AwaitServiceRequest(p, kl)
		if err != nil {
			return
		}
		vci, _, err := req.Accept(req.QoS)
		if err != nil {
			return
		}
		// Hand the capability to a third-party process.
		g := grant{vci: uint16(vci), cookie: req.Cookie}
		select {
		case handoff <- g:
		default:
		}
		rb.Stack.Spawn("third-party", func(w *kern.Proc) {
			sock, _ := rb.Stack.PF.Socket(w)
			if err := sock.Bind(vci, g.cookie); err != nil {
				t.Errorf("third party bind: %v", err)
				return
			}
			msg, err := sock.Recv()
			if err != nil {
				return
			}
			received = msg
		})
	})
	ra.Stack.Spawn("client", func(p *kern.Proc) {
		p.SP.Sleep(100 * time.Millisecond)
		res := testbed.OpenAndUse(ra, p, "ucb.rt", "fs", 7000, "", 1, nil)
		if res.Err != nil {
			t.Errorf("call: %v", res.Err)
		}
	})
	n.E.RunUntil(time.Minute)
	if rb.Sig.SH.Stats().AuthFailures != 0 {
		t.Fatalf("auth failures = %d", rb.Sig.SH.Stats().AuthFailures)
	}
	if string(received) != "frame 0" {
		t.Fatalf("third party received %q", received)
	}
	n.E.Shutdown()
}

// TestSighostSurvivesGarbage feeds the RPC port undecodable frames and
// valid-kind messages with nonsense fields: the robustness goal of §4
// ("we did not want to crash the signaling entity or the kernel because
// of a misbehaving application").
func TestSighostSurvivesGarbage(t *testing.T) {
	// A large fd table so mallory's 40 throwaway IPC connections are
	// not themselves throttled by TIME_WAIT descriptor retention.
	n, ra, rb, _ := testbed.NewTestbed(testbed.Options{FDTableSize: kern.FixedFDTableSize})
	testbed.StartEchoServer(rb, "echo", 6000)
	ra.Stack.Spawn("mallory", func(p *kern.Proc) {
		rng := p.SP.Engine().Rand()
		for i := 0; i < 40; i++ {
			ks, err := p.Dial(ra.Stack.M.IP.Addr, 177)
			if err != nil {
				t.Error(err)
				return
			}
			switch i % 4 {
			case 0: // random bytes
				junk := make([]byte, rng.Intn(64))
				for j := range junk {
					junk[j] = byte(rng.Uint64())
				}
				_ = ks.Send(junk)
			case 1: // valid kind, nonsense fields
				_ = ks.Send(sigmsg.Msg{Kind: sigmsg.KindAcceptConn, Cookie: uint16(rng.Uint64())}.Encode())
			case 2: // a peer-only message on the app port
				_ = ks.Send(sigmsg.Msg{Kind: sigmsg.KindSetup, CallID: 99, Service: "x"}.Encode())
			case 3: // empty frame
				_ = ks.Send(nil)
			}
			p.SP.Sleep(5 * time.Millisecond)
			ks.Close()
		}
	})
	// A legitimate client must still get through afterwards.
	var res testbed.CallResult
	ra.Stack.Spawn("honest-client", func(p *kern.Proc) {
		p.SP.Sleep(2 * time.Second)
		res = testbed.OpenAndUse(ra, p, "ucb.rt", "echo", 7000, "", 1, nil)
	})
	n.E.RunUntil(time.Minute)
	if res.Err != nil {
		t.Fatalf("honest call after garbage: %v", res.Err)
	}
	for _, r := range []*testbed.Router{ra, rb} {
		if msg := testbed.Quiesced(r); msg != "" {
			t.Fatal(msg)
		}
	}
	n.E.Shutdown()
}

// TestHalfOpenRemoteFailure is §4's half-open scenario: the remote
// application fails mid-call; the local application is told its socket
// is dead via the kernel.
func TestHalfOpenRemoteFailure(t *testing.T) {
	n, ra, rb, _ := testbed.NewTestbed(testbed.Options{})
	srv := testbed.StartEchoServer(rb, "echo", 6000)
	var recvErr error
	done := false
	ra.Stack.Spawn("client", func(p *kern.Proc) {
		p.SP.Sleep(100 * time.Millisecond)
		conn, err := ra.Lib.OpenConnection(p, "ucb.rt", "echo", 7000, "", "")
		if err != nil {
			t.Error(err)
			return
		}
		// Bind a *receiving* socket on the circuit's VCI at the client
		// side is not possible (simplex); instead hold the sending
		// socket and wait for the disconnect after the server dies.
		sock, _ := ra.Stack.PF.Socket(p)
		if err := sock.Connect(conn.VCI, conn.Cookie); err != nil {
			t.Error(err)
			return
		}
		p.SP.Sleep(3 * time.Second) // server is killed during this hold
		recvErr = sock.Send([]byte("are you there?"))
		done = true
	})
	n.E.Schedule(1500*time.Millisecond, func() { srv.Kill() })
	n.E.RunUntil(time.Minute)
	if !done {
		t.Fatal("client hung")
	}
	if recvErr == nil {
		t.Fatal("send succeeded on a half-open circuit after remote death")
	}
	for _, r := range []*testbed.Router{ra, rb} {
		if msg := testbed.Quiesced(r); msg != "" {
			t.Fatal(msg)
		}
	}
	n.E.Shutdown()
}
