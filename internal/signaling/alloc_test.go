package signaling

import (
	"testing"
	"time"

	"xunet/internal/atm"
	"xunet/internal/kern"
	"xunet/internal/memnet"
	"xunet/internal/qos"
	"xunet/internal/sigmsg"
)

// This file pins the control-plane fast path at zero heap allocations
// per steady-state call. benchEnv is a purpose-built Env whose every
// operation is allocation-free after warm-up: pooled timers with
// pre-bound cancel closures, pooled VC handles with pre-bound Release,
// a reused delivery ring, and a full codec round-trip (AppendTo into a
// reused buffer, DecodeInto with string interning) on every peer
// message — so the gate covers the state machine, the journal batch
// path, and the wire codec together.

type benchDelivery struct {
	dst  *Sighost
	from atm.Addr
	m    sigmsg.Msg
}

type benchWorld struct {
	hosts map[atm.Addr]*Sighost
	queue []benchDelivery
	head  int
}

// pump drains the delivery ring; handlers may enqueue more while it
// runs. The backing array is retained across calls.
func (w *benchWorld) pump() {
	for w.head < len(w.queue) {
		d := w.queue[w.head]
		w.head++
		d.dst.HandlePeer(d.from, d.m)
	}
	w.queue = w.queue[:0]
	w.head = 0
}

// benchTimer is a pooled timer cell. Time never advances in this
// harness, so timers only need to be cancelable; the pre-bound cancel
// returns the cell to the pool.
type benchTimer struct {
	env    *benchEnv
	live   bool
	next   *benchTimer
	cancel CancelFunc
}

// benchVC is a pooled VC handle. The VCI is assigned once when the
// cell is created, so live handles always carry distinct VCIs.
type benchVC struct {
	h    VCHandle
	env  *benchEnv
	next *benchVC
}

// benchConn is the single reusable app connection per env; it records
// the latest message of each kind the driver needs to read back.
type benchConn struct{ env *benchEnv }

func (c *benchConn) Send(m sigmsg.Msg) error {
	switch m.Kind {
	case sigmsg.KindIncomingConn:
		c.env.lastIncoming = m
	case sigmsg.KindVCIForConn:
		c.env.lastVCI = m
	case sigmsg.KindConnFailed:
		c.env.failed++
	}
	return nil
}

func (c *benchConn) Close() {}

type benchEnv struct {
	w    *benchWorld
	addr atm.Addr
	ip   memnet.IPAddr
	rnd  uint32

	conn    *benchConn
	tmPool  *benchTimer
	vcPool  *benchVC
	nextVCI atm.VCI
	timers  int // live (armed, not yet canceled) timers

	wire []byte
	dec  sigmsg.Decoder

	lastIncoming sigmsg.Msg
	lastVCI      sigmsg.Msg
	failed       int
}

func (e *benchEnv) Addr() atm.Addr         { return e.addr }
func (e *benchEnv) LocalIP() memnet.IPAddr { return e.ip }
func (e *benchEnv) Charge(time.Duration)   {}
func (e *benchEnv) Now() time.Duration     { return 0 }

func (e *benchEnv) Rand16() uint16 {
	e.rnd = e.rnd*1664525 + 1013904223
	return uint16(e.rnd >> 16)
}

func (e *benchEnv) After(d time.Duration, what string, fn func()) CancelFunc {
	t := e.tmPool
	if t == nil {
		t = &benchTimer{env: e}
		t.cancel = func() {
			if !t.live {
				return
			}
			t.live = false
			t.env.timers--
			t.next = t.env.tmPool
			t.env.tmPool = t
		}
	} else {
		e.tmPool = t.next
	}
	t.live = true
	e.timers++
	return t.cancel
}

// SendPeer round-trips the message through the real codec with reused
// buffers, then queues the decoded copy, mirroring the PVC path.
func (e *benchEnv) SendPeer(dst atm.Addr, m sigmsg.Msg) error {
	e.wire = m.AppendTo(e.wire[:0])
	var rt sigmsg.Msg
	if err := e.dec.DecodeInto(&rt, e.wire); err != nil {
		return err
	}
	sh, ok := e.w.hosts[dst]
	if !ok {
		return errBenchNoPeer
	}
	e.w.queue = append(e.w.queue, benchDelivery{dst: sh, from: e.addr, m: rt})
	return nil
}

func (e *benchEnv) SendPeerRaw(dst atm.Addr, m sigmsg.Msg, raw []byte) error {
	return e.SendPeer(dst, m)
}

func (e *benchEnv) Dial(ip memnet.IPAddr, port uint16, cb func(Conn, error)) {
	cb(e.conn, nil)
}

func (e *benchEnv) SetupVC(dst atm.Addr, q qos.QoS) (*VCHandle, error) {
	v := e.vcPool
	if v == nil {
		v = &benchVC{env: e}
		e.nextVCI++
		v.h.SrcVCI, v.h.DstVCI = e.nextVCI, e.nextVCI
		v.h.Release = func() {
			v.next = v.env.vcPool
			v.env.vcPool = v
		}
	} else {
		e.vcPool = v.next
	}
	return &v.h, nil
}

func (e *benchEnv) KernelDisconnect(memnet.IPAddr, atm.VCI) {}

var errBenchNoPeer = &benchErr{}

type benchErr struct{}

func (*benchErr) Error() string { return "bench: no such peer" }

// newBenchPair builds two journaling sighosts over benchEnvs with the
// echo service exported on B.
func newBenchPair() (*benchWorld, *Sighost, *Sighost, *benchEnv, *benchEnv) {
	w := &benchWorld{hosts: map[atm.Addr]*Sighost{}}
	envA := &benchEnv{w: w, addr: "a.rt", ip: memnet.IP4(10, 0, 0, 1), rnd: 1}
	envB := &benchEnv{w: w, addr: "b.rt", ip: memnet.IP4(10, 0, 0, 2), rnd: 2}
	envA.conn = &benchConn{env: envA}
	envB.conn = &benchConn{env: envB}
	shA := New(envA, CostModel{BindTimeout: time.Minute})
	shB := New(envB, CostModel{BindTimeout: time.Minute})
	shA.EnableJournal(0)
	shB.EnableJournal(0)
	w.hosts[envA.addr] = shA
	w.hosts[envB.addr] = shB
	shB.HandleApp(envB.conn, envB.ip, sigmsg.Msg{Kind: sigmsg.KindExportSrv, Service: "echo", NotifyPort: 6000})
	return w, shA, shB, envA, envB
}

// driveOneCall runs one full setup -> bind -> teardown cycle and
// verifies it actually completed. Every step must be allocation-free
// in steady state.
func driveOneCall(t *testing.T, w *benchWorld, shA, shB *Sighost, envA, envB *benchEnv) {
	envA.lastVCI = sigmsg.Msg{}
	envB.lastVCI = sigmsg.Msg{}
	envB.lastIncoming = sigmsg.Msg{}

	shA.HandleApp(envA.conn, envA.ip, sigmsg.Msg{Kind: sigmsg.KindConnectReq, Dest: "b.rt", Service: "echo", NotifyPort: 7000})
	w.pump()
	if envB.lastIncoming.Kind == 0 {
		t.Fatal("no INCOMING_CONN reached the server")
	}
	shB.HandleApp(envB.conn, envB.ip, sigmsg.Msg{Kind: sigmsg.KindAcceptConn, Cookie: envB.lastIncoming.Cookie})
	w.pump()
	cli, srv := envA.lastVCI, envB.lastVCI
	if cli.Kind == 0 || srv.Kind == 0 {
		t.Fatal("VCI_FOR_CONN missing on one side")
	}
	shA.HandleKernel(envA.ip, kern.KMsg{Kind: kern.MsgConnect, VCI: cli.VCI, Cookie: cli.Cookie})
	shB.HandleKernel(envB.ip, kern.KMsg{Kind: kern.MsgBind, VCI: srv.VCI, Cookie: srv.Cookie})
	w.pump()
	shA.HandleKernel(envA.ip, kern.KMsg{Kind: kern.MsgClose, VCI: cli.VCI})
	w.pump()
	if envA.failed != 0 || envB.failed != 0 {
		t.Fatalf("CONN_FAILED during steady-state drive (a=%d b=%d)", envA.failed, envB.failed)
	}
}

// TestSteadyStateCallAllocs is the allocs/op gate from DESIGN.md §12:
// after warm-up (pools populated, maps at size, journal past its first
// compaction, codec interner primed), a complete signaling round trip
// — CONNECT_REQ through bind to teardown, across two hosts with
// journaling on — performs zero heap allocations.
func TestSteadyStateCallAllocs(t *testing.T) {
	w, shA, shB, envA, envB := newBenchPair()

	// Warm-up: enough calls to take both journals through at least one
	// compaction cycle and settle every pool at its high-water mark.
	for i := 0; i < 1500; i++ {
		driveOneCall(t, w, shA, shB, envA, envB)
	}

	avg := testing.AllocsPerRun(300, func() {
		driveOneCall(t, w, shA, shB, envA, envB)
	})
	if avg != 0 {
		t.Fatalf("steady-state setup->bind->teardown allocates %.2f times per call, want 0", avg)
	}

	// The cycle must actually have torn everything down: no leaked call
	// state, no armed timers, no live VC handles outside the pools.
	if n := len(shA.calls) + len(shB.calls); n != 0 {
		t.Fatalf("%d calls leaked after teardown", n)
	}
	if envA.timers != 0 || envB.timers != 0 {
		t.Fatalf("timers leaked: a=%d b=%d", envA.timers, envB.timers)
	}
	snap := shA.Obs.Snapshot()
	if c := snap.Count("sighost.journal.compactions"); c == 0 {
		t.Fatal("warm-up never compacted the journal; gate did not cover compaction steady state")
	}
}
