package signaling

import (
	"time"

	"xunet/internal/atm"
	"xunet/internal/obs"
	"xunet/internal/sigmsg"
)

// The peer PVC mesh offers no transport reliability: sighost-to-sighost
// messages ride raw AAL5 frames, so a lost SETUP stalls a call forever
// and a duplicated one could double-allocate a VCI. This file adds the
// missing layer at the signaling level — per-peer sequence numbers,
// ack-driven retransmission with capped exponential backoff and a retry
// budget, and a receive-side dedup window — all opt-in (EnableReliability)
// so the clean-path wire traffic and goldens are untouched by default.

// RelConfig tunes the reliable peer channel.
type RelConfig struct {
	// RTO is the first retransmission timeout; each retry doubles it up
	// to MaxBackoffShift doublings.
	RTO             time.Duration
	MaxBackoffShift uint
	// MaxRetries is the retry budget beyond the initial send; when it is
	// spent the affected call is torn down with a TIMEOUT status (which
	// dumps its trace to the flight recorder).
	MaxRetries int
	// KeepaliveEvery probes each active peer at this period; a peer
	// silent for KeepaliveMisses periods is declared dead and every call
	// through it is torn down (§7's endpoint-death cascade, applied to
	// the signaling neighbor itself). Zero disables keepalives.
	KeepaliveEvery  time.Duration
	KeepaliveMisses int
}

// DefaultRelConfig matches the testbed's RTTs: first retry after 250ms,
// budget of 6 retries (~16s worst case), keepalives every 2s with a
// 3-miss death threshold.
func DefaultRelConfig() RelConfig {
	return RelConfig{
		RTO:             250 * time.Millisecond,
		MaxBackoffShift: 4,
		MaxRetries:      6,
		KeepaliveEvery:  2 * time.Second,
		KeepaliveMisses: 3,
	}
}

// pendingMsg is one unacknowledged reliable message. The wire encoding
// is produced exactly once, at first send, and cached in raw: every
// retransmission replays the same frame. Structs are pooled; the
// cancel-before-free discipline (every drop path cancels the timer
// first, except the fire path itself) keeps stale timers off recycled
// structs, and the unacked identity check backstops it.
type pendingMsg struct {
	m        sigmsg.Msg
	raw      []byte // cached wire encoding; survives pool recycling
	attempts int    // retransmissions so far
	sentAt   time.Duration
	cancel   CancelFunc

	sh *Sighost
	lk *peerLink

	// Per-call chain within lk.byCall. Only call-establishment kinds are
	// chained; RELEASE outlives its call and keeps retrying on its own.
	chained      bool
	cnext, cprev *pendingMsg

	next *pendingMsg // pool link
	fire func()      // pre-bound retransmit callback
}

// callPend keys a per-call chain of pending messages within one link:
// the call's ID plus which side of it we are.
type callPend struct {
	id     uint32
	origin bool
}

// pmChainKey maps a reliable message kind to the owning call's key view
// (mirroring retryExhausted). ok=false for kinds not tied to a live
// call, which are never chained and never canceled.
func pmChainKey(m sigmsg.Msg) (callPend, bool) {
	switch m.Kind {
	case sigmsg.KindSetup, sigmsg.KindConnectDone:
		return callPend{id: m.CallID, origin: true}, true
	case sigmsg.KindSetupAck, sigmsg.KindSetupRej:
		return callPend{id: m.CallID, origin: false}, true
	}
	return callPend{}, false
}

// peerLink is the per-neighbor reliability state.
type peerLink struct {
	addr atm.Addr

	// Transmit side. byCall chains each call's pending establishment
	// messages so teardown cancellation is O(own), not O(all unacked).
	epoch   uint32
	nextSeq uint32
	unacked map[uint32]*pendingMsg
	byCall  map[callPend]*pendingMsg

	// Receive side: floor is the highest sequence below which everything
	// was delivered; seen holds delivered sequences above it.
	rxEpoch uint32
	floor   uint32
	seen    map[uint32]bool

	// Keepalive state. kaOn marks the probe chain armed; it disarms
	// itself when the link goes idle so a quiesced sim can drain.
	lastHeard time.Duration
	kaOn      bool
	kaCancel  CancelFunc
}

// reliability is the per-sighost reliable-channel state.
type reliability struct {
	cfg    RelConfig
	links  map[atm.Addr]*peerLink
	pmPool *pendingMsg

	retransmits *obs.Counter // sighost.rel.retransmits
	acks        *obs.Counter // sighost.rel.acks
	dups        *obs.Counter // sighost.rel.dups
	stale       *obs.Counter // sighost.rel.stale_epoch
	exhausted   *obs.Counter // sighost.rel.exhausted
	keepalives  *obs.Counter // sighost.rel.keepalives
	peerDeaths  *obs.Counter // sighost.rel.peer_deaths
	encodes     *obs.Counter // sighost.rel.encodes
	ackRTT      *obs.Histogram // sighost.rel.ack_rtt
}

// newPending pops a pooled struct (keeping its raw buffer) or builds a
// fresh one with its fire callback pre-bound.
func (r *reliability) newPending() *pendingMsg {
	pm := r.pmPool
	if pm != nil {
		r.pmPool = pm.next
		pm.next = nil
		return pm
	}
	pm = &pendingMsg{}
	pm.fire = func() { pm.fireNow() }
	return pm
}

// dropPending removes pm from its link's tables and recycles it. Callers
// must cancel pm's timer first (or be inside its fire path).
func (r *reliability) dropPending(lk *peerLink, pm *pendingMsg) {
	delete(lk.unacked, pm.m.Seq)
	if pm.chained {
		k, _ := pmChainKey(pm.m)
		if pm.cprev != nil {
			pm.cprev.cnext = pm.cnext
		} else if pm.cnext == nil {
			delete(lk.byCall, k)
		} else {
			lk.byCall[k] = pm.cnext
		}
		if pm.cnext != nil {
			pm.cnext.cprev = pm.cprev
		}
		pm.chained, pm.cnext, pm.cprev = false, nil, nil
	}
	pm.sh, pm.lk, pm.cancel = nil, nil, nil
	pm.attempts = 0
	pm.next = r.pmPool
	r.pmPool = pm
}

// EnableReliability turns the reliable peer channel on. Must be called
// before the first call is placed; counters register lazily here so
// reliability-free runs render byte-identical registry snapshots.
func (sh *Sighost) EnableReliability(cfg RelConfig) {
	if cfg.RTO <= 0 {
		cfg = DefaultRelConfig()
	}
	sh.rel = &reliability{
		cfg:         cfg,
		links:       make(map[atm.Addr]*peerLink),
		retransmits: sh.Obs.Counter("sighost.rel.retransmits"),
		acks:        sh.Obs.Counter("sighost.rel.acks"),
		dups:        sh.Obs.Counter("sighost.rel.dups"),
		stale:       sh.Obs.Counter("sighost.rel.stale_epoch"),
		exhausted:   sh.Obs.Counter("sighost.rel.exhausted"),
		keepalives:  sh.Obs.Counter("sighost.rel.keepalives"),
		peerDeaths:  sh.Obs.Counter("sighost.rel.peer_deaths"),
		encodes:     sh.Obs.Counter("sighost.rel.encodes"),
		ackRTT:      sh.Obs.Histogram("sighost.rel.ack_rtt"),
	}
}

// PrimePeer pre-creates the reliability state for a known neighbor, so
// its retransmit-backlog metric exists (at zero) from the start of the
// run instead of materializing on first traffic. A no-op when
// reliability is off.
func (sh *Sighost) PrimePeer(peer atm.Addr) {
	if sh.rel == nil {
		return
	}
	sh.rel.link(sh, peer)
}

// link returns (creating if needed) the reliability state for peer.
func (r *reliability) link(sh *Sighost, peer atm.Addr) *peerLink {
	lk := r.links[peer]
	if lk == nil {
		lk = &peerLink{
			addr:    peer,
			epoch:   sh.epochGen + 1,
			unacked: make(map[uint32]*pendingMsg),
			byCall:  make(map[callPend]*pendingMsg),
			seen:    make(map[uint32]bool),
		}
		r.links[peer] = lk
		// Per-peer retransmit backlog as a read-through metric, sampled
		// at snapshot/scrape time like the trunk cell counters.
		sh.Obs.Func("sighost.rel.backlog."+string(peer), func() uint64 {
			return uint64(len(lk.unacked))
		})
	}
	return lk
}

// relSend transmits one peer message reliably: number it, remember it,
// and arm the retransmission timer.
func (sh *Sighost) relSend(dst atm.Addr, m sigmsg.Msg) error {
	r := sh.rel
	lk := r.link(sh, dst)
	lk.nextSeq++
	m.Seq = lk.nextSeq
	m.Epoch = lk.epoch
	pm := r.newPending()
	pm.sh, pm.lk, pm.m = sh, lk, m
	pm.sentAt = sh.env.Now()
	// Encode exactly once; every retransmission replays the cached frame.
	pm.raw = m.AppendTo(pm.raw[:0])
	r.encodes.Inc()
	lk.unacked[m.Seq] = pm
	if k, ok := pmChainKey(m); ok {
		pm.chained = true
		if head := lk.byCall[k]; head != nil {
			head.cprev = pm
			pm.cnext = head
		}
		lk.byCall[k] = pm
	}
	sh.emitMsg(EvPeerTx, string(dst), m)
	if err := sh.env.SendPeerRaw(dst, m, pm.raw); err != nil {
		// No signaling path at all (no PVC): retrying cannot help.
		r.dropPending(lk, pm)
		return err
	}
	sh.armRetransmit(lk, pm)
	sh.ensureKeepalive(lk)
	return nil
}

// armRetransmit schedules the next (re)transmission of pm with capped
// exponential backoff.
func (sh *Sighost) armRetransmit(lk *peerLink, pm *pendingMsg) {
	shift := uint(pm.attempts)
	if shift > sh.rel.cfg.MaxBackoffShift {
		shift = sh.rel.cfg.MaxBackoffShift
	}
	pm.cancel = sh.env.After(sh.rel.cfg.RTO<<shift, "rel.rto", pm.fire)
}

// fireNow runs one retransmit deadline: give up when the budget is
// spent, otherwise replay the cached frame and re-arm.
func (pm *pendingMsg) fireNow() {
	sh, lk := pm.sh, pm.lk
	if sh == nil || lk == nil {
		return // dropped while the timer was in flight
	}
	defer sh.jflush() // timer fires are dispatches of their own
	if cur, live := lk.unacked[pm.m.Seq]; !live || cur != pm {
		return // acked (or link reset) while the timer was in flight
	}
	if pm.attempts >= sh.rel.cfg.MaxRetries {
		addr, m := lk.addr, pm.m
		sh.rel.dropPending(lk, pm) // recycles pm: only the locals are safe now
		sh.rel.exhausted.Inc()
		if sh.traceOn() {
			sh.emit(obs.Event{Kind: EvRelExhaust, Peer: string(addr), CallID: m.CallID, Data: m})
		}
		sh.retryExhausted(addr, m)
		return
	}
	pm.attempts++
	sh.rel.retransmits.Inc()
	if sh.traceOn() {
		sh.emit(obs.Event{Kind: EvRelRetx, Peer: string(lk.addr), CallID: pm.m.CallID, Data: pm.m})
	}
	_ = sh.env.SendPeerRaw(lk.addr, pm.m, pm.raw)
	sh.armRetransmit(lk, pm)
}

// retryExhausted gives up on a message: the call it belongs to cannot
// make progress, so tear it down. The reason maps to a TIMEOUT trace
// status, which dumps the call's span tree to the flight recorder.
func (sh *Sighost) retryExhausted(dst atm.Addr, m sigmsg.Msg) {
	var key callKey
	switch m.Kind {
	case sigmsg.KindSetup, sigmsg.KindConnectDone:
		key = callKey{peer: dst, id: m.CallID, origin: true}
	case sigmsg.KindSetupAck, sigmsg.KindSetupRej:
		key = callKey{peer: dst, id: m.CallID, origin: false}
	default:
		return // a lost RELEASE for an already-dead call: nothing to tear
	}
	if c, ok := sh.calls[key]; ok {
		sh.ct.callsFailed.Inc()
		if key.origin {
			sh.notifyClientFailure(c, "signaling retransmit budget exhausted")
		}
		sh.teardown(c, "retransmit budget exhausted", false)
	}
}

// cancelCallRetransmits drops pending retransmissions that only make
// sense while the call is being established; called from teardown so a
// dead call cannot keep the retry machinery (and the sim) alive.
func (sh *Sighost) cancelCallRetransmits(c *call) {
	lk := sh.rel.links[c.key.peer]
	if lk == nil {
		return
	}
	// The per-call chain holds exactly this call's pending establishment
	// messages: cancellation is O(own), not O(all unacked). RELEASE is
	// never chained, so a teardown's own farewell keeps retrying.
	k := callPend{id: c.key.id, origin: c.key.origin}
	for pm := lk.byCall[k]; pm != nil; pm = lk.byCall[k] {
		if pm.cancel != nil {
			pm.cancel()
		}
		sh.rel.dropPending(lk, pm)
	}
}

// relRecv filters one arriving peer message through the reliability
// layer. It returns false when the message was consumed (ack, keepalive,
// duplicate, stale epoch) and must not reach the protocol handlers.
func (sh *Sighost) relRecv(from atm.Addr, m sigmsg.Msg) bool {
	lk := sh.rel.link(sh, from)
	lk.lastHeard = sh.env.Now()
	switch m.Kind {
	case sigmsg.KindPeerAck:
		sh.rel.acks.Inc()
		if m.Epoch == lk.epoch {
			if pm, ok := lk.unacked[m.Seq]; ok {
				if pm.cancel != nil {
					pm.cancel()
				}
				// Karn's rule: a retransmitted message's ack is ambiguous
				// (it may answer any attempt), so only first-try acks
				// contribute RTT samples.
				if pm.attempts == 0 {
					sh.rel.ackRTT.Observe(sh.env.Now() - pm.sentAt)
				}
				sh.rel.dropPending(lk, pm)
			}
		}
		return false
	case sigmsg.KindKeepalive:
		sh.rel.keepalives.Inc()
		sh.ensureKeepalive(lk) // probe back so both deadlines refresh
		return false
	}
	if m.Seq == 0 {
		return true // unsequenced sender (reliability off at the peer)
	}
	if m.Epoch != lk.rxEpoch {
		if m.Epoch < lk.rxEpoch {
			// A retransmission from before the peer's crash: its call
			// state died with the old incarnation.
			sh.rel.stale.Inc()
			return false
		}
		// New incarnation: reset the dedup window for its fresh sequence
		// space.
		lk.rxEpoch = m.Epoch
		lk.floor = 0
		lk.seen = make(map[uint32]bool)
	}
	// Always ack — even duplicates, whose earlier ack may have been the
	// loss that caused the retransmission. Acks are unsequenced.
	_ = sh.env.SendPeer(from, sigmsg.Msg{Kind: sigmsg.KindPeerAck, Seq: m.Seq, Epoch: m.Epoch})
	if m.Seq <= lk.floor || lk.seen[m.Seq] {
		sh.rel.dups.Inc()
		if sh.traceOn() {
			sh.emit(obs.Event{Kind: EvRelDup, Peer: string(from), CallID: m.CallID, Data: m})
		}
		return false
	}
	lk.seen[m.Seq] = true
	for lk.seen[lk.floor+1] {
		delete(lk.seen, lk.floor+1)
		lk.floor++
	}
	sh.ensureKeepalive(lk)
	return true
}

// linkActive reports whether the peer link carries live state worth
// probing: calls through the peer or unacknowledged messages to it.
// O(1) via the per-peer call index.
func (sh *Sighost) linkActive(lk *peerLink) bool {
	if len(lk.unacked) > 0 {
		return true
	}
	pc := sh.byPeer[lk.addr]
	return pc != nil && pc.n > 0
}

// ensureKeepalive arms the probe chain if keepalives are configured and
// the chain is not already running. The chain disarms itself when the
// link goes idle, so keepalives never keep a drained simulation alive.
func (sh *Sighost) ensureKeepalive(lk *peerLink) {
	if sh.rel.cfg.KeepaliveEvery <= 0 || lk.kaOn || lk.addr == sh.env.Addr() {
		return
	}
	if !sh.linkActive(lk) {
		return
	}
	lk.kaOn = true
	lk.lastHeard = sh.env.Now()
	sh.armKeepalive(lk)
}

func (sh *Sighost) armKeepalive(lk *peerLink) {
	cfg := sh.rel.cfg
	lk.kaCancel = sh.env.After(cfg.KeepaliveEvery, "rel.keepalive", func() {
		if !sh.linkActive(lk) {
			lk.kaOn = false
			return
		}
		if sh.env.Now()-lk.lastHeard >= cfg.KeepaliveEvery*time.Duration(cfg.KeepaliveMisses) {
			lk.kaOn = false
			sh.peerDead(lk)
			return
		}
		_ = sh.env.SendPeer(lk.addr, sigmsg.Msg{Kind: sigmsg.KindKeepalive, Epoch: lk.epoch})
		sh.armKeepalive(lk)
	})
}

// peerDead declares the neighbor dead after the keepalive miss threshold
// and cascades into per-call teardown, exactly as §7 prescribes for
// endpoint death — applied here to the signaling entity itself.
func (sh *Sighost) peerDead(lk *peerLink) {
	defer sh.jflush() // the cascade's records land in one batch
	sh.rel.peerDeaths.Inc()
	if sh.traceOn() {
		sh.emit(obs.Event{Kind: EvPeerDead, Peer: string(lk.addr)})
	}
	for _, pm := range lk.unacked {
		if pm.cancel != nil {
			pm.cancel()
		}
		pm.sh, pm.lk = nil, nil
	}
	// Discard rather than pool: feeding the pool in map-iteration order
	// would make subsequent struct reuse nondeterministic.
	lk.unacked = make(map[uint32]*pendingMsg)
	lk.byCall = make(map[callPend]*pendingMsg)
	// The per-peer chain holds exactly this neighbor's calls in creation
	// order: the cascade is O(affected) and deterministic, where the old
	// full-table map walk was neither.
	doomed := sh.scratch[:0]
	if pc := sh.byPeer[lk.addr]; pc != nil {
		for c := pc.head; c != nil; c = c.peerNext {
			doomed = append(doomed, c)
		}
	}
	for _, c := range doomed {
		sh.ct.callsFailed.Inc()
		if c.key.origin {
			sh.notifyClientFailure(c, "peer signaling entity dead")
		}
		sh.teardown(c, "peer signaling entity dead", false)
	}
	sh.scratch = doomed[:0]
}
