package prof

import (
	"strings"
	"testing"
)

func TestLabelInterning(t *testing.T) {
	p := New()
	ep := p.Engine(0)
	a := ep.Label("xswitch.trunk.tx")
	b := ep.Label("xswitch.trunk.tx")
	if a != b {
		t.Fatalf("re-interning returned a new ID: %d vs %d", a, b)
	}
	if c := ep.Label("sighost.rel"); c == a {
		t.Fatalf("distinct names shared ID %d", c)
	}
	if ep.Label("engine") != LabelEngine {
		t.Fatalf("root label not pre-interned as %d", LabelEngine)
	}
	if ep.Label("xshard") != LabelCrossShard {
		t.Fatalf("cross-shard label not pre-interned as %d", LabelCrossShard)
	}
}

func TestProcKind(t *testing.T) {
	cases := map[string]string{
		"A/sighost#3":            "sighost",
		"B.site/sighost-conn#12": "sighost-conn",
		"plain":                  "plain",
		"m/x":                    "x",
		"noslash#7":              "noslash",
	}
	for in, want := range cases {
		if got := ProcKind(in); got != want {
			t.Errorf("ProcKind(%q) = %q, want %q", in, got, want)
		}
	}
	p := New().Engine(0)
	// One label per kind, not per pid.
	if p.ProcLabel("A/sighost#1") != p.ProcLabel("A/sighost#2") {
		t.Fatalf("same proc kind interned twice")
	}
}

func TestNilSafety(t *testing.T) {
	var ep *EngineProf
	if ep.Label("x") != LabelEngine {
		t.Fatalf("nil EngineProf.Label not root")
	}
	if ep.ProcLabel("m/x#1") != LabelEngine {
		t.Fatalf("nil EngineProf.ProcLabel not root")
	}
	ep.Account(3, 10) // must not panic
	var gp *GroupProf
	gp.AccountWindow([]int64{1, 2})
	gp.NoteIdleSkip()
	gp.NotePost(0, 1, 53)
	var p *Profiler
	if p.Engine(0) != nil || p.Group(2) != nil {
		t.Fatalf("nil Profiler returned live profiles")
	}
	s := p.Snapshot()
	if len(s.Shards) != 0 || s.Group != nil {
		t.Fatalf("nil Profiler snapshot not empty")
	}
}

func TestLabelTableBound(t *testing.T) {
	ep := New().Engine(0)
	var last LabelID
	for i := 0; i < maxLabels+10; i++ {
		last = ep.Label(strings.Repeat("l", 1+i%40) + string(rune('a'+i%26)) + itoa(i))
	}
	if last != LabelEngine {
		t.Fatalf("overflowing the label table returned %d, want root", last)
	}
	ep.Account(last, 1) // still safe
}

func itoa(i int) string {
	var b [8]byte
	n := len(b)
	for {
		n--
		b[n] = byte('0' + i%10)
		i /= 10
		if i == 0 {
			break
		}
	}
	return string(b[n:])
}

func TestAccountingAndExports(t *testing.T) {
	p := New()
	e0 := p.Engine(0)
	e1 := p.Engine(1)
	lTx := e0.Label("xswitch.trunk.tx")
	lSig := e0.Label("proc.sighost")
	e0.Account(lTx, 100)
	e0.Account(lTx, 50)
	e0.Account(lSig, 300)
	e1.Account(e1.Label("proc.sighost"), 700)

	g := p.Group(2)
	g.AccountWindow([]int64{100, 40}) // shard 1 stalls 60
	g.AccountWindow([]int64{10, 30})  // shard 0 stalls 20
	g.NoteIdleSkip()
	g.NotePost(0, 1, 53)
	g.NotePost(0, 1, 53)
	g.NotePost(1, 0, 0)

	s := p.Snapshot()
	if len(s.Shards) != 2 {
		t.Fatalf("snapshot shards = %d, want 2", len(s.Shards))
	}
	if s.Shards[0].Events != 3 || s.Shards[0].WallNS != 450 {
		t.Fatalf("shard0 totals = %d ev %d ns", s.Shards[0].Events, s.Shards[0].WallNS)
	}
	if s.Group == nil || s.Group.Windows != 2 || s.Group.IdleSkips != 1 {
		t.Fatalf("group snap wrong: %+v", s.Group)
	}
	if s.Group.PerShard[0].ExecNS != 110 || s.Group.PerShard[0].StallNS != 20 {
		t.Fatalf("shard0 window stats: %+v", s.Group.PerShard[0])
	}
	if s.Group.PerShard[1].ExecNS != 70 || s.Group.PerShard[1].StallNS != 60 {
		t.Fatalf("shard1 window stats: %+v", s.Group.PerShard[1])
	}
	if len(s.Group.Matrix) != 2 {
		t.Fatalf("matrix cells = %d, want 2", len(s.Group.Matrix))
	}
	if c := s.Group.Matrix[0]; c.Src != 0 || c.Dst != 1 || c.Posts != 2 || c.Bytes != 106 {
		t.Fatalf("matrix[0] = %+v", c)
	}
	if got := s.CriticalShard(); got != 0 {
		t.Fatalf("critical shard = %d, want 0 (110ns vs 70ns)", got)
	}
	if r := s.CriticalRanking(); len(r) != 2 || r[0] != 0 || r[1] != 1 {
		t.Fatalf("ranking = %v", r)
	}
	pct := s.BarrierStallPct()
	if pct < 30 || pct > 31 { // 80 stall / 260 total = 30.77%
		t.Fatalf("stall pct = %.2f, want ~30.8", pct)
	}

	counts := p.CountsText()
	for _, want := range []string{
		"shard 0: events 3",
		"proc.sighost",
		"group: shards 2 windows 2 idle-skips 1",
		"0->1 2 106",
	} {
		if !strings.Contains(counts, want) {
			t.Fatalf("CountsText missing %q:\n%s", want, counts)
		}
	}
	if strings.Contains(counts, "ns") {
		t.Fatalf("deterministic CountsText leaks wall time:\n%s", counts)
	}

	text := p.Text()
	for _, want := range []string{"critical shard: 0", "ranking 0 > 1", "BARRIER", "barrier stall:"} {
		if want == "BARRIER" {
			continue
		}
		if !strings.Contains(text, want) {
			t.Fatalf("Text missing %q:\n%s", want, text)
		}
	}

	flame := p.FlameFolded()
	for _, want := range []string{"shard0;proc.sighost 300", "shard0;xswitch.trunk.tx 150", "shard1;BARRIER-STALL 60"} {
		if !strings.Contains(flame, want) {
			t.Fatalf("flame missing %q:\n%s", want, flame)
		}
	}

	js := p.JSON()
	for _, want := range []string{`"shards"`, `"group"`, `"matrix"`, `"stall_ns"`} {
		if !strings.Contains(js, want) {
			t.Fatalf("JSON missing %q:\n%s", want, js)
		}
	}
}

// TestCountsTextDeterministicOrder locks the export to sorted label
// order regardless of interning order: the profgate byte-diff depends
// on it.
func TestCountsTextDeterministicOrder(t *testing.T) {
	a := New()
	ea := a.Engine(0)
	ea.Account(ea.Label("zzz"), 1)
	ea.Account(ea.Label("aaa"), 1)
	b := New()
	eb := b.Engine(0)
	eb.Account(eb.Label("aaa"), 1)
	eb.Account(eb.Label("zzz"), 1)
	if a.CountsText() != b.CountsText() {
		t.Fatalf("interning order leaked into CountsText:\n%s\nvs\n%s", a.CountsText(), b.CountsText())
	}
	if strings.Index(a.CountsText(), "aaa") > strings.Index(a.CountsText(), "zzz") {
		t.Fatalf("labels not sorted:\n%s", a.CountsText())
	}
}
