package prof

import (
	"testing"
	"time"
)

// benchProf is package-level so the compiler cannot constant-fold the
// nil check a hook site performs; loading it each iteration is exactly
// what the engine loop does with Engine.prof.
var benchProf *EngineProf

var benchGroup *GroupProf

var benchSink int64

// BenchmarkProfOverhead/disabled is the profgate CI gate, matching the
// trace/faults/tseries bargains: with no profiler attached the hooks
// compiled into the engine loop, the proc dispatch path, and the
// cross-shard post path cost one pointer load plus one nil comparison
// — under 5 ns — so an always-linked profiler cannot skew unprofiled
// runs.
func BenchmarkProfOverhead(b *testing.B) {
	b.Run("disabled", func(b *testing.B) {
		benchProf = nil
		benchGroup = nil
		b.ReportAllocs()
		b.ResetTimer()
		var l LabelID
		for i := 0; i < b.N; i++ {
			if p := benchProf; p != nil {
				p.Account(l, 1)
			}
			l = benchProf.Label("x")
			benchGroup.NotePost(0, 1, 53)
		}
		b.StopTimer()
		benchSink = int64(l)
		// Enforce the budget only on a real measurement run; the N=1
		// discovery run is all fixed overhead.
		if avg := float64(b.Elapsed().Nanoseconds()) / float64(b.N); b.N >= 1_000_000 && avg > 5 {
			b.Fatalf("disabled profiler hooks cost %.1f ns, budget is 5 ns", avg)
		}
	})
	b.Run("enabled-account", func(b *testing.B) {
		benchProf = newEngineProf(0)
		l := benchProf.Label("bench")
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			benchProf.Account(l, 1)
		}
		b.StopTimer()
		benchProf = nil
	})
	b.Run("enabled-timed-event", func(b *testing.B) {
		// The full per-event cost with profiling on: two clock reads
		// plus the atomic accounting — what an armed run pays.
		benchProf = newEngineProf(0)
		l := benchProf.Label("bench")
		b.ReportAllocs()
		b.ResetTimer()
		var ns int64
		for i := 0; i < b.N; i++ {
			t0 := time.Now()
			ns += 1
			benchProf.Account(l, time.Since(t0).Nanoseconds())
		}
		b.StopTimer()
		benchSink = ns
		benchProf = nil
	})
}
