// Package prof is the execution profiler for the simulation engine
// itself: where does the simulator's *own* wall-clock time go? It
// attributes event execution per proc kind and per explicit label,
// accounts per-shard window execution vs. barrier-stall time, and
// keeps a cross-shard (src,dst) post/byte matrix — the instrument
// every perf campaign runs first.
//
// The discipline matches trace/faults/tseries: a disabled profiler is
// a nil pointer and every hook compiled into the engine costs <5ns
// (gated by BenchmarkProfOverhead/disabled in make profgate).
//
// Determinism contract: with the same seed, the *event counts* (per
// shard, per label), the window/idle-skip counters, and the post/byte
// matrix are byte-identical at any worker count — they are functions
// of the virtual history, which workers never change. Wall-clock
// nanoseconds are not. CountsText exports only the deterministic
// half (profgate byte-diffs it at workers 1 vs 4); Text, JSON and
// FlameFolded add the wall-time half for humans and flame viewers.
package prof

import (
	"encoding/json"
	"fmt"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// LabelID indexes an EngineProf's label table. IDs are per-engine;
// exports key by name, never by ID, so cross-shard aggregation and
// determinism don't depend on interning order.
type LabelID uint32

// Pre-interned labels present in every EngineProf.
const (
	// LabelEngine is the root attribution: events scheduled from
	// engine context with no finer label.
	LabelEngine LabelID = 0
	// LabelCrossShard attributes events merged in from another
	// shard's outbox (the conservative-sync channel).
	LabelCrossShard LabelID = 1
)

// maxLabels bounds the per-engine label table so the bin array never
// reallocates: single-writer atomic bins stay safe to read from other
// goroutines (MGMT queries, tseries ticks) without a lock on the hot
// path. Interning past the bound degrades to LabelEngine.
const maxLabels = 256

// bin is one label's accumulator. Written by the owning shard's
// executor only; atomics make concurrent readers (mgmt, viewers) safe.
type bin struct {
	count atomic.Uint64
	wall  atomic.Int64 // nanoseconds
}

// EngineProf profiles one engine (one shard). Account/Label are
// called from the shard's executor; snapshots may be taken from any
// goroutine.
type EngineProf struct {
	shard int

	mu     sync.Mutex
	names  []string
	byName map[string]LabelID

	bins []bin // fixed length maxLabels; never reallocated
}

func newEngineProf(shard int) *EngineProf {
	p := &EngineProf{
		shard:  shard,
		byName: make(map[string]LabelID, 32),
		bins:   make([]bin, maxLabels),
	}
	p.names = append(p.names, "engine", "xshard")
	p.byName["engine"] = LabelEngine
	p.byName["xshard"] = LabelCrossShard
	return p
}

// Label interns name and returns its ID. Nil-safe: a nil receiver
// returns LabelEngine, so construction-time interning needs no guard.
// When the table is full the name degrades to LabelEngine rather than
// growing the bin array.
func (p *EngineProf) Label(name string) LabelID {
	if p == nil {
		return LabelEngine
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	if id, ok := p.byName[name]; ok {
		return id
	}
	if len(p.names) >= maxLabels {
		return LabelEngine
	}
	id := LabelID(len(p.names))
	name = strings.Clone(name) // don't pin a caller's larger backing array
	p.names = append(p.names, name)
	p.byName[name] = id
	return id
}

// ProcLabel interns the label for a spawned process. Proc names follow
// the kern convention "machine/kind#pid"; the machine prefix and the
// pid suffix are stripped so the table holds one label per proc *kind*,
// not one per process.
func (p *EngineProf) ProcLabel(name string) LabelID {
	if p == nil {
		return LabelEngine
	}
	return p.Label("proc." + ProcKind(name))
}

// ProcKind reduces a proc name "machine/kind#pid" to its kind.
func ProcKind(name string) string {
	if i := strings.LastIndexByte(name, '/'); i >= 0 {
		name = name[i+1:]
	}
	if i := strings.IndexByte(name, '#'); i >= 0 {
		name = name[:i]
	}
	return name
}

// Account records one executed event under label l: wallNS of wall
// time. Called by the engine loop only when the profiler is attached,
// so it needs no nil check of its own — but keep one anyway so direct
// callers (tests, future hooks) inherit the nil-hook discipline.
func (p *EngineProf) Account(l LabelID, wallNS int64) {
	if p == nil {
		return
	}
	if int(l) >= maxLabels {
		l = LabelEngine
	}
	b := &p.bins[l]
	b.count.Add(1)
	b.wall.Add(wallNS)
}

// LabelStat is one label's share of a shard's execution.
type LabelStat struct {
	Label  string `json:"label"`
	Count  uint64 `json:"count"`
	WallNS int64  `json:"wall_ns"`
}

// ShardSnap is one shard's attribution snapshot, labels sorted by name.
type ShardSnap struct {
	Shard  int         `json:"shard"`
	Events uint64      `json:"events"`
	WallNS int64       `json:"wall_ns"`
	Labels []LabelStat `json:"labels"`
}

func (p *EngineProf) snapshot() ShardSnap {
	p.mu.Lock()
	names := append([]string(nil), p.names...)
	p.mu.Unlock()
	s := ShardSnap{Shard: p.shard}
	for i, name := range names {
		c := p.bins[i].count.Load()
		w := p.bins[i].wall.Load()
		if c == 0 && w == 0 {
			continue
		}
		s.Events += c
		s.WallNS += w
		s.Labels = append(s.Labels, LabelStat{Label: name, Count: c, WallNS: w})
	}
	sort.Slice(s.Labels, func(i, j int) bool { return s.Labels[i].Label < s.Labels[j].Label })
	return s
}

// GroupProf accounts ShardGroup window execution: per-shard busy and
// barrier-stall time, window and idle-skip counts, and the cross-shard
// post/byte matrix. The coordinator writes the window accumulators at
// each barrier; shard executors write their own matrix rows; all
// fields are atomic so viewers may read mid-run.
type GroupProf struct {
	n         int
	windows   atomic.Uint64
	idleSkips atomic.Uint64
	exec      []atomic.Int64  // per-shard busy ns inside windows
	stall     []atomic.Int64  // per-shard (window max - own) ns
	posts     []atomic.Uint64 // [src*n+dst] cross-shard records
	bytes     []atomic.Uint64 // [src*n+dst] payload bytes (PostSized)
}

func newGroupProf(n int) *GroupProf {
	return &GroupProf{
		n:     n,
		exec:  make([]atomic.Int64, n),
		stall: make([]atomic.Int64, n),
		posts: make([]atomic.Uint64, n*n),
		bytes: make([]atomic.Uint64, n*n),
	}
}

// Shards reports the group width the profiler was sized for.
func (g *GroupProf) Shards() int { return g.n }

// StallNS reports shard i's accumulated barrier-stall nanoseconds.
// Atomic and monotonic, so a tseries rate series over it yields
// wall-stall per tick. Nil-safe for gauge closures.
func (g *GroupProf) StallNS(i int) int64 {
	if g == nil || i < 0 || i >= g.n {
		return 0
	}
	return g.stall[i].Load()
}

// ExecNS reports shard i's accumulated in-window execution nanoseconds
// (same discipline as StallNS).
func (g *GroupProf) ExecNS(i int) int64 {
	if g == nil || i < 0 || i >= g.n {
		return 0
	}
	return g.exec[i].Load()
}

// AccountWindow folds one barrier window's per-shard wall durations
// in: each shard's stall is the gap to the window's critical (slowest)
// shard. With fewer workers than shards the windows serialize, so the
// "stall" reads as imbalance relative to the critical path rather than
// literal goroutine wait — same ranking, same hot shard.
func (g *GroupProf) AccountWindow(durNS []int64) {
	if g == nil {
		return
	}
	g.windows.Add(1)
	var max int64
	for _, d := range durNS {
		if d > max {
			max = d
		}
	}
	for i, d := range durNS {
		g.exec[i].Add(d)
		g.stall[i].Add(max - d)
	}
}

// NoteIdleSkip counts a window jumped over a globally idle gap — the
// lookahead-efficiency signal (skips mean the horizon, not the event
// density, was the limit).
func (g *GroupProf) NoteIdleSkip() {
	if g == nil {
		return
	}
	g.idleSkips.Add(1)
}

// NotePost records one cross-shard record src→dst carrying n payload
// bytes (0 for pure control posts).
func (g *GroupProf) NotePost(src, dst, n int) {
	if g == nil {
		return
	}
	i := src*g.n + dst
	g.posts[i].Add(1)
	g.bytes[i].Add(uint64(n))
}

// MatrixCell is one non-zero (src,dst) entry of the cross-shard
// traffic matrix.
type MatrixCell struct {
	Src   int    `json:"src"`
	Dst   int    `json:"dst"`
	Posts uint64 `json:"posts"`
	Bytes uint64 `json:"bytes"`
}

// ShardWindowStat is one shard's window-time accounting.
type ShardWindowStat struct {
	Shard   int   `json:"shard"`
	ExecNS  int64 `json:"exec_ns"`
	StallNS int64 `json:"stall_ns"`
}

// GroupSnap is the ShardGroup-level snapshot.
type GroupSnap struct {
	Shards    int               `json:"shards"`
	Windows   uint64            `json:"windows"`
	IdleSkips uint64            `json:"idle_skips"`
	PerShard  []ShardWindowStat `json:"per_shard"`
	Matrix    []MatrixCell      `json:"matrix"`
}

func (g *GroupProf) snapshot() GroupSnap {
	s := GroupSnap{
		Shards:    g.n,
		Windows:   g.windows.Load(),
		IdleSkips: g.idleSkips.Load(),
	}
	for i := 0; i < g.n; i++ {
		s.PerShard = append(s.PerShard, ShardWindowStat{
			Shard:   i,
			ExecNS:  g.exec[i].Load(),
			StallNS: g.stall[i].Load(),
		})
	}
	for src := 0; src < g.n; src++ {
		for dst := 0; dst < g.n; dst++ {
			p := g.posts[src*g.n+dst].Load()
			b := g.bytes[src*g.n+dst].Load()
			if p == 0 && b == 0 {
				continue
			}
			s.Matrix = append(s.Matrix, MatrixCell{Src: src, Dst: dst, Posts: p, Bytes: b})
		}
	}
	return s
}

// Profiler is the top-level handle: one EngineProf per shard plus an
// optional GroupProf. Attach it with Engine.AttachProfiler or
// ShardGroup.AttachProfiler; a nil *Profiler everywhere means
// profiling off at <5ns per hook.
type Profiler struct {
	mu      sync.Mutex
	engines []*EngineProf
	group   *GroupProf
}

// New returns an empty profiler.
func New() *Profiler { return &Profiler{} }

// Engine returns (creating on first use) the per-engine profile for
// shard index i.
func (p *Profiler) Engine(i int) *EngineProf {
	if p == nil {
		return nil
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	for len(p.engines) <= i {
		p.engines = append(p.engines, nil)
	}
	if p.engines[i] == nil {
		p.engines[i] = newEngineProf(i)
	}
	return p.engines[i]
}

// Group returns (creating on first use) the group profile sized for n
// shards.
func (p *Profiler) Group(n int) *GroupProf {
	if p == nil {
		return nil
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.group == nil {
		p.group = newGroupProf(n)
	}
	return p.group
}

// Snapshot is a full profile: per-shard attribution plus group window
// accounting (Group nil for a flat, unsharded run).
type Snapshot struct {
	Shards []ShardSnap `json:"shards"`
	Group  *GroupSnap  `json:"group,omitempty"`
}

// Snapshot captures the profile. Safe mid-run (values may be torn
// across labels, each label's pair is internally consistent enough for
// monitoring); exact once the engines are idle.
func (p *Profiler) Snapshot() Snapshot {
	var s Snapshot
	if p == nil {
		return s
	}
	p.mu.Lock()
	engines := append([]*EngineProf(nil), p.engines...)
	group := p.group
	p.mu.Unlock()
	for _, ep := range engines {
		if ep == nil {
			continue
		}
		s.Shards = append(s.Shards, ep.snapshot())
	}
	if group != nil {
		g := group.snapshot()
		s.Group = &g
	}
	return s
}

// CriticalRanking orders shards hottest-first by window execution time
// (falling back to attributed event wall time for flat runs), ties
// broken by shard index.
func (s Snapshot) CriticalRanking() []int {
	type row struct {
		shard int
		ns    int64
	}
	var rows []row
	if s.Group != nil {
		for _, ps := range s.Group.PerShard {
			rows = append(rows, row{ps.Shard, ps.ExecNS})
		}
	} else {
		for _, sh := range s.Shards {
			rows = append(rows, row{sh.Shard, sh.WallNS})
		}
	}
	sort.SliceStable(rows, func(i, j int) bool {
		if rows[i].ns != rows[j].ns {
			return rows[i].ns > rows[j].ns
		}
		return rows[i].shard < rows[j].shard
	})
	out := make([]int, len(rows))
	for i, r := range rows {
		out[i] = r.shard
	}
	return out
}

// CriticalShard is the hottest shard (0 when empty).
func (s Snapshot) CriticalShard() int {
	r := s.CriticalRanking()
	if len(r) == 0 {
		return 0
	}
	return r[0]
}

// BarrierStallPct is total stall as a percentage of total window time
// across shards (0 for flat runs or before any window).
func (s Snapshot) BarrierStallPct() float64 {
	if s.Group == nil {
		return 0
	}
	var exec, stall int64
	for _, ps := range s.Group.PerShard {
		exec += ps.ExecNS
		stall += ps.StallNS
	}
	if exec+stall == 0 {
		return 0
	}
	return 100 * float64(stall) / float64(exec+stall)
}

// StallFraction reports shard i's stall share of its own window time.
func (s Snapshot) StallFraction(i int) float64 {
	if s.Group == nil {
		return 0
	}
	for _, ps := range s.Group.PerShard {
		if ps.Shard != i {
			continue
		}
		if ps.ExecNS+ps.StallNS == 0 {
			return 0
		}
		return float64(ps.StallNS) / float64(ps.ExecNS+ps.StallNS)
	}
	return 0
}

// CountsText renders the deterministic half of the profile: per-shard
// per-label event counts, window/idle-skip counters, and the
// cross-shard post/byte matrix. Same seed ⇒ byte-identical at any
// worker count (make profgate diffs workers 1 vs 4).
func (p *Profiler) CountsText() string {
	s := p.Snapshot()
	var b strings.Builder
	b.WriteString("# prof counts (deterministic)\n")
	for _, sh := range s.Shards {
		fmt.Fprintf(&b, "shard %d: events %d\n", sh.Shard, sh.Events)
		for _, l := range sh.Labels {
			fmt.Fprintf(&b, "  %-24s %d\n", l.Label, l.Count)
		}
	}
	if g := s.Group; g != nil {
		fmt.Fprintf(&b, "group: shards %d windows %d idle-skips %d\n", g.Shards, g.Windows, g.IdleSkips)
		if len(g.Matrix) > 0 {
			b.WriteString("xshard matrix (src->dst posts bytes):\n")
			for _, c := range g.Matrix {
				fmt.Fprintf(&b, "  %d->%d %d %d\n", c.Src, c.Dst, c.Posts, c.Bytes)
			}
		}
	}
	return b.String()
}

// Text renders the full human profile: the deterministic counts plus
// wall-time attribution, per-shard stall fractions, and the critical
// ranking. Wall nanoseconds vary run to run — diff CountsText, read
// Text.
func (p *Profiler) Text() string {
	s := p.Snapshot()
	var b strings.Builder
	b.WriteString("# execution profile\n")
	if g := s.Group; g != nil {
		fmt.Fprintf(&b, "group: shards %d windows %d idle-skips %d\n", g.Shards, g.Windows, g.IdleSkips)
		b.WriteString("shard   exec          stall         stall%  events\n")
		for _, ps := range g.PerShard {
			var ev uint64
			for _, sh := range s.Shards {
				if sh.Shard == ps.Shard {
					ev = sh.Events
				}
			}
			fmt.Fprintf(&b, "%5d   %-12s  %-12s  %5.1f   %d\n",
				ps.Shard, fmtNS(ps.ExecNS), fmtNS(ps.StallNS),
				100*s.StallFraction(ps.Shard), ev)
		}
		fmt.Fprintf(&b, "barrier stall: %.1f%% of window time; critical shard: %d (ranking %s)\n",
			s.BarrierStallPct(), s.CriticalShard(), fmtRanking(s.CriticalRanking()))
		if len(g.Matrix) > 0 {
			b.WriteString("xshard matrix (src->dst posts bytes):\n")
			for _, c := range g.Matrix {
				fmt.Fprintf(&b, "  %d->%d %d %d\n", c.Src, c.Dst, c.Posts, c.Bytes)
			}
		}
	}
	for _, sh := range s.Shards {
		fmt.Fprintf(&b, "shard %d: events %d wall %s\n", sh.Shard, sh.Events, fmtNS(sh.WallNS))
		for _, l := range sh.Labels {
			avg := int64(0)
			if l.Count > 0 {
				avg = l.WallNS / int64(l.Count)
			}
			fmt.Fprintf(&b, "  %-24s %10d  %-12s avg %dns\n", l.Label, l.Count, fmtNS(l.WallNS), avg)
		}
	}
	return b.String()
}

// JSON renders the full snapshot as one JSON object. Field order is
// fixed by the snapshot structs, so same-seed runs at the same worker
// count produce identical bytes once the engines are idle.
func (p *Profiler) JSON() string {
	b, err := json.Marshal(p.Snapshot())
	if err != nil {
		return "{}"
	}
	return string(b)
}

// FlameFolded renders the profile as folded stacks for flame-graph
// tools (one "frame;frame value" line per stack): per-shard label wall
// time plus a BARRIER-STALL frame per shard, so stalls and work share
// one flame.
func (p *Profiler) FlameFolded() string {
	s := p.Snapshot()
	var b strings.Builder
	for _, sh := range s.Shards {
		for _, l := range sh.Labels {
			if l.WallNS <= 0 {
				continue
			}
			fmt.Fprintf(&b, "shard%d;%s %d\n", sh.Shard, l.Label, l.WallNS)
		}
	}
	if g := s.Group; g != nil {
		for _, ps := range g.PerShard {
			if ps.StallNS <= 0 {
				continue
			}
			fmt.Fprintf(&b, "shard%d;BARRIER-STALL %d\n", ps.Shard, ps.StallNS)
		}
	}
	return b.String()
}

func fmtRanking(r []int) string {
	var b strings.Builder
	for i, s := range r {
		if i > 0 {
			b.WriteString(" > ")
		}
		fmt.Fprintf(&b, "%d", s)
	}
	return b.String()
}

// fmtNS renders nanoseconds with a readable unit.
func fmtNS(ns int64) string {
	switch {
	case ns >= 1e9:
		return fmt.Sprintf("%.2fs", float64(ns)/1e9)
	case ns >= 1e6:
		return fmt.Sprintf("%.2fms", float64(ns)/1e6)
	case ns >= 1e3:
		return fmt.Sprintf("%.1fus", float64(ns)/1e3)
	default:
		return fmt.Sprintf("%dns", ns)
	}
}
