// Package aal5 implements the Xunet variant of the AAL5 adaptation
// layer: CPCS framing with a pad + 8-byte trailer, segmentation into
// 48-byte cell payloads, reassembly, and the two guarantees the paper
// calls out — "the receiving AAL can detect out of order frames and
// cell loss within a frame."
//
// Cell loss within a frame is detected by the trailer's length field and
// CRC-32. Out-of-order (or lost) frames are detected by the Xunet
// variant's per-VC frame sequence number, which this implementation
// carries in the CPCS-UU octet of the trailer (see SeqTracker).
package aal5

import (
	"errors"
	"fmt"
	"hash/crc32"

	"xunet/internal/atm"
)

// TrailerSize is the CPCS-PDU trailer: UU(1) CPI(1) Length(2) CRC(4).
const TrailerSize = 8

// MaxSDU is the largest CPCS-SDU an AAL5 frame can carry (16-bit length).
const MaxSDU = 65535

// Errors reported by frame parsing and reassembly.
var (
	ErrTooLong     = errors.New("aal5: SDU exceeds 65535 bytes")
	ErrShortFrame  = errors.New("aal5: frame shorter than one cell")
	ErrBadAlign    = errors.New("aal5: frame length not a multiple of 48")
	ErrBadLength   = errors.New("aal5: trailer length inconsistent (cell loss within frame)")
	ErrBadCRC      = errors.New("aal5: CRC-32 mismatch (corruption or cell loss within frame)")
	ErrFrameTooBig = errors.New("aal5: reassembly exceeded maximum frame size")
)

// BuildFrame wraps payload in a CPCS-PDU: payload, zero padding to a
// 48-byte boundary, and the trailer. uu is the CPCS-UU octet, which the
// Xunet variant uses as the per-VC frame sequence number.
func BuildFrame(payload []byte, uu byte) ([]byte, error) {
	return AppendFrame(nil, payload, uu)
}

// AppendFrame appends the CPCS-PDU for payload onto dst (usually
// dst[:0] of a reused scratch slice) and returns the extended slice. It
// allocates only when dst lacks capacity, which keeps the real-mode
// data path's steady state allocation-free.
func AppendFrame(dst, payload []byte, uu byte) ([]byte, error) {
	if len(payload) > MaxSDU {
		return dst, ErrTooLong
	}
	padded := len(payload) + TrailerSize
	rem := padded % atm.PayloadSize
	pad := 0
	if rem != 0 {
		pad = atm.PayloadSize - rem
	}
	start := len(dst)
	total := len(payload) + pad + TrailerSize
	// Grow by hand rather than append(dst, make(...)...): the steady
	// state (capacity already sufficient) must not touch the allocator.
	if cap(dst)-start < total {
		nd := make([]byte, start, start+total)
		copy(nd, dst)
		dst = nd
	}
	dst = dst[:start+total]
	frame := dst[start:]
	copy(frame, payload)
	// The appended region may be recycled capacity; the pad bytes must
	// be zero regardless of what the scratch last held.
	for i := len(payload); i < len(payload)+pad; i++ {
		frame[i] = 0
	}
	tr := frame[len(frame)-TrailerSize:]
	tr[0] = uu
	tr[1] = 0 // CPI, always zero
	tr[2] = byte(len(payload) >> 8)
	tr[3] = byte(len(payload))
	crc := crc32.ChecksumIEEE(frame[:len(frame)-4])
	tr[4] = byte(crc >> 24)
	tr[5] = byte(crc >> 16)
	tr[6] = byte(crc >> 8)
	tr[7] = byte(crc)
	return dst, nil
}

// ParseFrame validates a complete CPCS-PDU and returns its payload and
// UU octet. The returned payload aliases frame.
func ParseFrame(frame []byte) (payload []byte, uu byte, err error) {
	if len(frame) < atm.PayloadSize {
		return nil, 0, ErrShortFrame
	}
	if len(frame)%atm.PayloadSize != 0 {
		return nil, 0, ErrBadAlign
	}
	tr := frame[len(frame)-TrailerSize:]
	wantCRC := uint32(tr[4])<<24 | uint32(tr[5])<<16 | uint32(tr[6])<<8 | uint32(tr[7])
	if crc32.ChecksumIEEE(frame[:len(frame)-4]) != wantCRC {
		return nil, 0, ErrBadCRC
	}
	n := int(tr[2])<<8 | int(tr[3])
	// Valid padding is 0..47 bytes; anything else means cells vanished.
	if n+TrailerSize > len(frame) || len(frame)-(n+TrailerSize) >= atm.PayloadSize {
		return nil, 0, ErrBadLength
	}
	return frame[:n], tr[0], nil
}

// Segment splits a CPCS-PDU into cells on the given VPI/VCI, setting the
// AAL-indicate PTI bit on the final cell. frame must be a multiple of 48
// bytes (as produced by BuildFrame).
func Segment(frame []byte, vpi atm.VPI, vci atm.VCI) ([]atm.Cell, error) {
	if len(frame) == 0 || len(frame)%atm.PayloadSize != 0 {
		return nil, ErrBadAlign
	}
	n := len(frame) / atm.PayloadSize
	cells := make([]atm.Cell, n)
	for i := 0; i < n; i++ {
		cells[i].VPI = vpi
		cells[i].VCI = vci
		copy(cells[i].Payload[:], frame[i*atm.PayloadSize:])
		if i == n-1 {
			cells[i].PTI = atm.PTIUserData1
		}
	}
	return cells, nil
}

// CellsForPayload reports how many cells an SDU of n bytes occupies.
func CellsForPayload(n int) int {
	return (n + TrailerSize + atm.PayloadSize - 1) / atm.PayloadSize
}

// Reassembler rebuilds frames from the cell stream of one VC. It is the
// receive half of the Hobbit board's SAR engine. Not safe for concurrent
// use; the simulation serializes all access.
type Reassembler struct {
	buf      []byte
	maxFrame int

	// Frames counts successfully reassembled frames; Errors counts
	// frames discarded for CRC/length violations (cell loss within a
	// frame, per the paper's guarantee).
	Frames uint64
	Errors uint64
}

// NewReassembler returns a reassembler that rejects frames longer than
// maxFrame bytes (0 means the AAL5 maximum).
func NewReassembler(maxFrame int) *Reassembler {
	if maxFrame <= 0 {
		maxFrame = MaxSDU + TrailerSize + atm.PayloadSize
	}
	return &Reassembler{maxFrame: maxFrame}
}

// Push adds one cell. When the cell completes a frame, Push returns the
// payload, its UU (frame sequence) octet and done=true. A CRC or length
// violation discards the partial frame and returns an error with
// done=true so callers can count the loss.
func (r *Reassembler) Push(c *atm.Cell) (payload []byte, uu byte, done bool, err error) {
	r.buf = append(r.buf, c.Payload[:]...)
	if len(r.buf) > r.maxFrame {
		r.buf = r.buf[:0]
		r.Errors++
		return nil, 0, true, ErrFrameTooBig
	}
	if !c.EndOfFrame() {
		return nil, 0, false, nil
	}
	frame := r.buf
	r.buf = nil
	payload, uu, err = ParseFrame(frame)
	if err != nil {
		r.Errors++
		return nil, 0, true, err
	}
	r.Frames++
	return payload, uu, true, nil
}

// Pending reports how many bytes of an incomplete frame are buffered.
func (r *Reassembler) Pending() int { return len(r.buf) }

// Reset discards any partial frame (used when a VC is torn down).
func (r *Reassembler) Reset() { r.buf = nil }

// SeqTracker implements the Xunet-variant out-of-order frame detection:
// each frame on a VC carries an 8-bit sequence number in CPCS-UU, and
// the receiver verifies it advances by exactly one.
type SeqTracker struct {
	next    byte
	started bool

	// InOrder and OutOfOrder count checked frames.
	InOrder    uint64
	OutOfOrder uint64
}

// Check verifies frame sequence number seq. It returns ok=false and the
// (signed, mod-256) gap when frames were lost or reordered, then
// resynchronizes to seq+1.
func (t *SeqTracker) Check(seq byte) (ok bool, gap int) {
	if !t.started {
		t.started = true
		t.next = seq + 1
		t.InOrder++
		return true, 0
	}
	g := int(int8(seq - t.next))
	t.next = seq + 1
	if g == 0 {
		t.InOrder++
		return true, 0
	}
	t.OutOfOrder++
	return false, g
}

// String summarizes tracker state for traces.
func (t *SeqTracker) String() string {
	return fmt.Sprintf("seq{next=%d ok=%d ooo=%d}", t.next, t.InOrder, t.OutOfOrder)
}
