package aal5

import (
	"bytes"
	"hash/crc32"
	"testing"
	"testing/quick"

	"xunet/internal/atm"
)

func pay(n int) []byte {
	p := make([]byte, n)
	for i := range p {
		p[i] = byte(i*31 + 7)
	}
	return p
}

func TestBuildParseRoundTrip(t *testing.T) {
	for _, n := range []int{0, 1, 39, 40, 41, 47, 48, 96, 1500, 9180, MaxSDU} {
		f, err := BuildFrame(pay(n), byte(n))
		if err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		if len(f)%atm.PayloadSize != 0 {
			t.Fatalf("n=%d: frame len %d not cell-aligned", n, len(f))
		}
		got, uu, err := ParseFrame(f)
		if err != nil {
			t.Fatalf("n=%d: parse: %v", n, err)
		}
		if uu != byte(n) {
			t.Fatalf("n=%d: uu = %d", n, uu)
		}
		if !bytes.Equal(got, pay(n)) {
			t.Fatalf("n=%d: payload mismatch", n)
		}
	}
}

// TestAppendFrameReusedScratch drives AppendFrame the way the real-mode
// data path does — one scratch slice recycled across frames — and checks
// that dirty leftover capacity never leaks into the pad bytes, that
// back-to-back frames in one buffer both parse, and that the steady
// state performs no allocation.
func TestAppendFrameReusedScratch(t *testing.T) {
	// Poison a scratch buffer, then shrink it: the recycled capacity is
	// full of 0xFF, exactly what a previous larger frame leaves behind.
	scratch := bytes.Repeat([]byte{0xFF}, 4096)[:0]
	for _, n := range []int{1, 47, 40, 1500, 40} {
		out, err := AppendFrame(scratch, pay(n), byte(n))
		if err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		got, uu, err := ParseFrame(out)
		if err != nil {
			t.Fatalf("n=%d: parse: %v", n, err)
		}
		if uu != byte(n) || !bytes.Equal(got, pay(n)) {
			t.Fatalf("n=%d: round trip mismatch", n)
		}
		// Pad bytes must be zero despite the poisoned capacity.
		for i := n; i < len(out)-TrailerSize; i++ {
			if out[i] != 0 {
				t.Fatalf("n=%d: pad byte %d = %#x, want 0", n, i, out[i])
			}
		}
		scratch = out[:0]
	}

	// Two frames packed into one buffer: the second append must not
	// disturb the first.
	buf, err := AppendFrame(nil, pay(30), 1)
	if err != nil {
		t.Fatal(err)
	}
	first := len(buf)
	buf, err = AppendFrame(buf, pay(60), 2)
	if err != nil {
		t.Fatal(err)
	}
	for i, want := range []struct {
		frame []byte
		n     int
		uu    byte
	}{{buf[:first], 30, 1}, {buf[first:], 60, 2}} {
		got, uu, err := ParseFrame(want.frame)
		if err != nil {
			t.Fatalf("frame %d: %v", i, err)
		}
		if uu != want.uu || !bytes.Equal(got, pay(want.n)) {
			t.Fatalf("frame %d: round trip mismatch", i)
		}
	}

	// Steady state with sufficient capacity is allocation-free.
	scratch = make([]byte, 0, 4096)
	p := pay(1500)
	if n := testing.AllocsPerRun(100, func() {
		out, err := AppendFrame(scratch[:0], p, 9)
		if err != nil || len(out) == 0 {
			t.Fatal("append failed")
		}
	}); n != 0 {
		t.Fatalf("AppendFrame allocated %v times per run, want 0", n)
	}
}

func TestBuildFrameTooLong(t *testing.T) {
	if _, err := BuildFrame(make([]byte, MaxSDU+1), 0); err != ErrTooLong {
		t.Fatalf("err = %v, want ErrTooLong", err)
	}
}

func TestParseFrameErrors(t *testing.T) {
	if _, _, err := ParseFrame(make([]byte, 40)); err != ErrShortFrame {
		t.Fatalf("short: %v", err)
	}
	if _, _, err := ParseFrame(make([]byte, 49)); err != ErrBadAlign {
		t.Fatalf("misaligned: %v", err)
	}
	f, _ := BuildFrame(pay(100), 1)
	f[5] ^= 0xFF
	if _, _, err := ParseFrame(f); err != ErrBadCRC {
		t.Fatalf("corrupt: %v", err)
	}
}

func TestParseDetectsLengthLie(t *testing.T) {
	// A frame whose CRC is valid but whose length field claims more
	// padding than a cell can hold must be rejected (this is how losing
	// a middle cell shows up when the CRC happens to be recomputed).
	f, _ := BuildFrame(pay(10), 0)
	// Rewrite the length to something inconsistent and fix the CRC.
	tr := f[len(f)-TrailerSize:]
	tr[2], tr[3] = 0, 200 // claims 200-byte payload in a 48-byte frame
	crc := crc32ChecksumShim(f[:len(f)-4])
	tr[4], tr[5], tr[6], tr[7] = byte(crc>>24), byte(crc>>16), byte(crc>>8), byte(crc)
	if _, _, err := ParseFrame(f); err != ErrBadLength {
		t.Fatalf("err = %v, want ErrBadLength", err)
	}
}

func TestSegmentReassembleRoundTrip(t *testing.T) {
	for _, n := range []int{0, 1, 48, 1500, 9180} {
		f, _ := BuildFrame(pay(n), 7)
		cells, err := Segment(f, 1, 42)
		if err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		if len(cells) != CellsForPayload(n) {
			t.Fatalf("n=%d: %d cells, want %d", n, len(cells), CellsForPayload(n))
		}
		for i, c := range cells {
			if c.VCI != 42 || c.VPI != 1 {
				t.Fatalf("cell %d has wrong circuit ids", i)
			}
			if c.EndOfFrame() != (i == len(cells)-1) {
				t.Fatalf("cell %d EOF flag wrong", i)
			}
		}
		r := NewReassembler(0)
		var got []byte
		var uu byte
		done := false
		for i := range cells {
			p, u, d, err := r.Push(&cells[i])
			if err != nil {
				t.Fatalf("n=%d: push: %v", n, err)
			}
			if d {
				got, uu, done = p, u, true
			}
		}
		if !done {
			t.Fatalf("n=%d: frame never completed", n)
		}
		if uu != 7 || !bytes.Equal(got, pay(n)) {
			t.Fatalf("n=%d: reassembly mismatch", n)
		}
		if r.Frames != 1 || r.Errors != 0 {
			t.Fatalf("n=%d: counters %d/%d", n, r.Frames, r.Errors)
		}
	}
}

func TestSegmentRejectsUnaligned(t *testing.T) {
	if _, err := Segment(make([]byte, 50), 0, 1); err != ErrBadAlign {
		t.Fatalf("err = %v", err)
	}
	if _, err := Segment(nil, 0, 1); err != ErrBadAlign {
		t.Fatalf("empty: err = %v", err)
	}
}

func TestReassemblerDetectsDroppedCell(t *testing.T) {
	f, _ := BuildFrame(pay(200), 3)
	cells, _ := Segment(f, 0, 9)
	if len(cells) < 3 {
		t.Fatal("want at least 3 cells")
	}
	r := NewReassembler(0)
	sawErr := false
	for i := range cells {
		if i == 1 {
			continue // drop a middle cell
		}
		_, _, done, err := r.Push(&cells[i])
		if done && err != nil {
			sawErr = true
		}
	}
	if !sawErr {
		t.Fatal("dropped cell not detected")
	}
	if r.Errors != 1 {
		t.Fatalf("Errors = %d", r.Errors)
	}
	if r.Pending() != 0 {
		t.Fatalf("Pending = %d after error", r.Pending())
	}
}

func TestReassemblerDetectsCorruption(t *testing.T) {
	f, _ := BuildFrame(pay(100), 0)
	cells, _ := Segment(f, 0, 9)
	cells[0].Payload[3] ^= 0x80
	r := NewReassembler(0)
	var lastErr error
	for i := range cells {
		_, _, done, err := r.Push(&cells[i])
		if done {
			lastErr = err
		}
	}
	if lastErr != ErrBadCRC {
		t.Fatalf("err = %v, want ErrBadCRC", lastErr)
	}
}

func TestReassemblerMaxFrame(t *testing.T) {
	r := NewReassembler(96) // two cells max
	c := atm.Cell{}         // never EOF
	for i := 0; i < 2; i++ {
		if _, _, done, err := r.Push(&c); done || err != nil {
			t.Fatalf("cell %d: done=%v err=%v", i, done, err)
		}
	}
	_, _, done, err := r.Push(&c)
	if !done || err != ErrFrameTooBig {
		t.Fatalf("overflow: done=%v err=%v", done, err)
	}
	if r.Pending() != 0 {
		t.Fatal("buffer not reset after overflow")
	}
}

func TestReassemblerBackToBackFrames(t *testing.T) {
	r := NewReassembler(0)
	for seq := byte(0); seq < 5; seq++ {
		f, _ := BuildFrame(pay(int(seq)*37), seq)
		cells, _ := Segment(f, 0, 1)
		for i := range cells {
			p, uu, done, err := r.Push(&cells[i])
			if err != nil {
				t.Fatal(err)
			}
			if done {
				if uu != seq || !bytes.Equal(p, pay(int(seq)*37)) {
					t.Fatalf("frame %d mismatch", seq)
				}
			}
		}
	}
	if r.Frames != 5 {
		t.Fatalf("Frames = %d", r.Frames)
	}
}

func TestReassemblerReset(t *testing.T) {
	r := NewReassembler(0)
	c := atm.Cell{}
	r.Push(&c)
	if r.Pending() == 0 {
		t.Fatal("no pending bytes after push")
	}
	r.Reset()
	if r.Pending() != 0 {
		t.Fatal("Reset did not clear buffer")
	}
}

func TestSeqTracker(t *testing.T) {
	var tr SeqTracker
	// First frame establishes sync regardless of value.
	if ok, gap := tr.Check(200); !ok || gap != 0 {
		t.Fatalf("first: ok=%v gap=%d", ok, gap)
	}
	if ok, _ := tr.Check(201); !ok {
		t.Fatal("in-order rejected")
	}
	// Skip one frame: gap +1.
	if ok, gap := tr.Check(203); ok || gap != 1 {
		t.Fatalf("skip: ok=%v gap=%d", ok, gap)
	}
	// Resynchronized: next in order accepted.
	if ok, _ := tr.Check(204); !ok {
		t.Fatal("post-resync rejected")
	}
	// Duplicate/reordered: gap -1.
	if ok, gap := tr.Check(203); ok || gap != -2 {
		t.Fatalf("reorder: ok=%v gap=%d", ok, gap)
	}
	if tr.InOrder != 3 || tr.OutOfOrder != 2 {
		t.Fatalf("counters %d/%d", tr.InOrder, tr.OutOfOrder)
	}
}

func TestSeqTrackerWrap(t *testing.T) {
	var tr SeqTracker
	tr.Check(254)
	if ok, _ := tr.Check(255); !ok {
		t.Fatal("255 rejected")
	}
	if ok, _ := tr.Check(0); !ok {
		t.Fatal("wrap to 0 rejected")
	}
}

// Property: build/segment/reassemble round-trips any payload.
func TestQuickSARRoundTrip(t *testing.T) {
	f := func(payload []byte, uu byte) bool {
		if len(payload) > MaxSDU {
			payload = payload[:MaxSDU]
		}
		frame, err := BuildFrame(payload, uu)
		if err != nil {
			return false
		}
		cells, err := Segment(frame, 0, 5)
		if err != nil {
			return false
		}
		r := NewReassembler(0)
		for i := range cells {
			p, u, done, err := r.Push(&cells[i])
			if err != nil {
				return false
			}
			if done {
				return u == uu && bytes.Equal(p, payload) && i == len(cells)-1
			}
		}
		return false
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: dropping any single cell from a multi-cell frame is detected.
func TestQuickDropAnyCellDetected(t *testing.T) {
	f := func(n uint16, drop uint8) bool {
		size := int(n)%3000 + 100
		frame, _ := BuildFrame(pay(size), 1)
		cells, _ := Segment(frame, 0, 1)
		if len(cells) < 2 {
			return true
		}
		di := int(drop) % len(cells)
		r := NewReassembler(0)
		for i := range cells {
			if i == di {
				continue
			}
			p, _, done, err := r.Push(&cells[i])
			if done {
				// Either an error, or (if the EOF cell itself was
				// dropped the frame merges into the next one — not
				// simulated here, so done implies we kept EOF).
				return err != nil && p == nil
			}
		}
		// EOF cell dropped: frame stays pending, which the per-VC
		// sequence tracker catches at the next frame boundary.
		return di == len(cells)-1 && r.Pending() > 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Fatal(err)
	}
}

func crc32ChecksumShim(b []byte) uint32 { return crc32.ChecksumIEEE(b) }

func BenchmarkBuildFrame1500(b *testing.B) {
	p := pay(1500)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := BuildFrame(p, byte(i)); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSegmentReassemble1500(b *testing.B) {
	f, _ := BuildFrame(pay(1500), 0)
	r := NewReassembler(0)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		cells, _ := Segment(f, 0, 1)
		for j := range cells {
			r.Push(&cells[j])
		}
	}
}
