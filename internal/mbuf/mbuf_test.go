package mbuf

import (
	"bytes"
	"math/rand"
	"testing"
	"testing/quick"
)

func payload(n int) []byte {
	p := make([]byte, n)
	for i := range p {
		p[i] = byte(i * 7)
	}
	return p
}

func TestFromBytesRoundTrip(t *testing.T) {
	for _, n := range []int{0, 1, MLEN - 1, MLEN, MLEN + 1, clusterThreshold, MCLBYTES, MCLBYTES + 1, 9000} {
		p := payload(n)
		c := FromBytes(p)
		if c.Len() != n {
			t.Errorf("n=%d: Len = %d", n, c.Len())
		}
		if !bytes.Equal(c.Bytes(), p) {
			t.Errorf("n=%d: round trip mismatch", n)
		}
	}
}

func TestFromBytesAllocationPolicy(t *testing.T) {
	// Small message: small mbufs.
	c := FromBytes(payload(MLEN + 10))
	if c.Count() != 2 {
		t.Errorf("small message count = %d, want 2", c.Count())
	}
	// Large message: cluster mbufs.
	c = FromBytes(payload(MCLBYTES * 2))
	if c.Count() != 2 {
		t.Errorf("cluster message count = %d, want 2", c.Count())
	}
}

func TestFromBytesSplit(t *testing.T) {
	p := payload(100)
	c := FromBytesSplit(p, 10)
	if c.Count() != 10 {
		t.Fatalf("count = %d, want 10", c.Count())
	}
	if !bytes.Equal(c.Bytes(), p) {
		t.Fatal("data mismatch")
	}
	// Non-positive per falls back to MLEN.
	c = FromBytesSplit(p, 0)
	if c.Count() != 1 {
		t.Fatalf("fallback count = %d, want 1", c.Count())
	}
}

func TestPrependFastPath(t *testing.T) {
	c := FromBytes(payload(50))
	before := c.Count()
	c.Prepend([]byte{0xAA, 0xBB})
	if c.Count() != before {
		t.Errorf("small prepend allocated a new mbuf (count %d -> %d)", before, c.Count())
	}
	got := c.Bytes()
	if got[0] != 0xAA || got[1] != 0xBB {
		t.Errorf("prepended bytes wrong: % x", got[:2])
	}
	if c.Len() != 52 {
		t.Errorf("Len = %d, want 52", c.Len())
	}
}

func TestPrependSlowPath(t *testing.T) {
	c := FromBytes(payload(10))
	big := payload(64) // exceeds leadingSpace
	c.Prepend(big)
	if c.Count() != 2 {
		t.Errorf("large prepend count = %d, want 2", c.Count())
	}
	if !bytes.Equal(c.Bytes()[:64], big) {
		t.Error("prepended header corrupted")
	}
}

func TestPrependEmptyChain(t *testing.T) {
	c := Empty()
	c.Prepend([]byte{1, 2, 3})
	if c.Len() != 3 || c.Count() != 1 {
		t.Fatalf("len=%d count=%d", c.Len(), c.Count())
	}
	if !bytes.Equal(c.Bytes(), []byte{1, 2, 3}) {
		t.Fatal("bytes mismatch")
	}
}

func TestTrimFront(t *testing.T) {
	p := payload(300)
	c := FromBytesSplit(p, 100)
	if got := c.TrimFront(150); got != 150 {
		t.Fatalf("TrimFront = %d, want 150", got)
	}
	if c.Len() != 150 || c.Count() != 2 {
		t.Fatalf("after trim len=%d count=%d", c.Len(), c.Count())
	}
	if !bytes.Equal(c.Bytes(), p[150:]) {
		t.Fatal("remaining data mismatch")
	}
	// Trimming more than remains empties the chain.
	if got := c.TrimFront(1000); got != 150 {
		t.Fatalf("over-trim removed %d, want 150", got)
	}
	if c.Len() != 0 || c.Count() != 0 || c.Head() != nil {
		t.Fatal("chain not empty after over-trim")
	}
}

func TestTrimBack(t *testing.T) {
	p := payload(300)
	c := FromBytesSplit(p, 100)
	if got := c.TrimBack(50); got != 50 {
		t.Fatalf("TrimBack = %d, want 50", got)
	}
	if !bytes.Equal(c.Bytes(), p[:250]) {
		t.Fatal("data mismatch after TrimBack(50)")
	}
	if got := c.TrimBack(150); got != 150 {
		t.Fatalf("TrimBack = %d, want 150", got)
	}
	if c.Len() != 100 || c.Count() != 1 {
		t.Fatalf("len=%d count=%d, want 100/1", c.Len(), c.Count())
	}
	if !bytes.Equal(c.Bytes(), p[:100]) {
		t.Fatal("data mismatch after second TrimBack")
	}
	// Trim exactly to empty.
	if got := c.TrimBack(100); got != 100 {
		t.Fatalf("TrimBack to empty = %d", got)
	}
	if c.Len() != 0 {
		t.Fatalf("len = %d, want 0", c.Len())
	}
}

func TestTrimBackWholeTrailingMbuf(t *testing.T) {
	c := FromBytesSplit(payload(200), 100)
	c.TrimBack(100) // removes exactly the last mbuf
	if c.Count() != 1 || c.Len() != 100 {
		t.Fatalf("count=%d len=%d, want 1/100", c.Count(), c.Len())
	}
}

func TestPullup(t *testing.T) {
	p := payload(100)
	c := FromBytesSplit(p, 10)
	if !c.Pullup(35) {
		t.Fatal("Pullup(35) failed")
	}
	if c.Head().Len() < 35 {
		t.Fatalf("first mbuf has %d bytes, want >= 35", c.Head().Len())
	}
	if !bytes.Equal(c.Bytes(), p) {
		t.Fatal("data corrupted by Pullup")
	}
	if c.Len() != 100 {
		t.Fatalf("length changed to %d", c.Len())
	}
}

func TestPullupAlreadyContiguous(t *testing.T) {
	c := FromBytes(payload(50))
	before := c.Count()
	if !c.Pullup(20) {
		t.Fatal("Pullup failed")
	}
	if c.Count() != before {
		t.Error("Pullup on contiguous data reallocated")
	}
}

func TestPullupTooShort(t *testing.T) {
	c := FromBytes(payload(10))
	if c.Pullup(11) {
		t.Fatal("Pullup(11) on a 10-byte chain succeeded")
	}
}

func TestSplitAt(t *testing.T) {
	p := payload(250)
	for _, at := range []int{0, 1, 99, 100, 101, 249, 250, 300} {
		c := FromBytesSplit(p, 100)
		rest := c.SplitAt(at)
		want := at
		if want > len(p) {
			want = len(p)
		}
		if c.Len() != want {
			t.Errorf("at=%d: head len = %d, want %d", at, c.Len(), want)
		}
		if rest.Len() != len(p)-want {
			t.Errorf("at=%d: rest len = %d, want %d", at, rest.Len(), len(p)-want)
		}
		joined := append(c.Bytes(), rest.Bytes()...)
		if !bytes.Equal(joined, p) {
			t.Errorf("at=%d: data corrupted by split", at)
		}
	}
}

func TestConcat(t *testing.T) {
	a := FromBytes(payload(30))
	b := FromBytes(payload(40))
	wantLen := a.Len() + b.Len()
	wantCount := a.Count() + b.Count()
	a.Concat(b)
	if a.Len() != wantLen || a.Count() != wantCount {
		t.Fatalf("after concat len=%d count=%d", a.Len(), a.Count())
	}
	if b.Len() != 0 || b.Count() != 0 {
		t.Fatal("source chain not emptied")
	}
	a.Concat(nil)
	a.Concat(Empty())
	if a.Len() != wantLen {
		t.Fatal("concat of empty changed length")
	}
}

func TestConcatIntoEmpty(t *testing.T) {
	a := Empty()
	b := FromBytes(payload(20))
	a.Concat(b)
	if a.Len() != 20 {
		t.Fatalf("len = %d", a.Len())
	}
	a.AppendBytes([]byte{1})
	if a.Len() != 21 {
		t.Fatal("tail pointer broken after concat into empty")
	}
}

func TestCopyTo(t *testing.T) {
	p := payload(100)
	c := FromBytesSplit(p, 7)
	buf := make([]byte, 40)
	if n := c.CopyTo(buf); n != 40 {
		t.Fatalf("CopyTo = %d, want 40", n)
	}
	if !bytes.Equal(buf, p[:40]) {
		t.Fatal("copied data mismatch")
	}
	if c.Len() != 100 {
		t.Fatal("CopyTo consumed data")
	}
	big := make([]byte, 200)
	if n := c.CopyTo(big); n != 100 {
		t.Fatalf("CopyTo big = %d, want 100", n)
	}
}

func TestClone(t *testing.T) {
	c := FromBytesSplit(payload(64), 16)
	d := c.Clone()
	if d.Len() != c.Len() || d.Count() != c.Count() {
		t.Fatalf("clone shape %d/%d, want %d/%d", d.Len(), d.Count(), c.Len(), c.Count())
	}
	c.TrimFront(10)
	if d.Len() != 64 {
		t.Fatal("clone shares storage bookkeeping with original")
	}
	if !bytes.Equal(d.Bytes(), payload(64)) {
		t.Fatal("clone data mismatch")
	}
}

func TestNilChainAccessors(t *testing.T) {
	var c *Chain
	if c.Len() != 0 || c.Count() != 0 || c.Head() != nil || c.Bytes() != nil {
		t.Fatal("nil chain accessors not zero")
	}
	if c.String() != "mbuf.Chain(nil)" {
		t.Fatalf("nil String = %q", c.String())
	}
}

func TestStringFormat(t *testing.T) {
	c := FromBytesSplit(payload(20), 10)
	s := c.String()
	if s != "mbuf.Chain{len=20 count=2: 10 10}" {
		t.Fatalf("String = %q", s)
	}
}

// Property: any sequence of prepend/append/trim operations keeps Len equal
// to the byte length of Bytes() and Count equal to the walked mbuf count.
func TestQuickInvariants(t *testing.T) {
	f := func(ops []uint8, seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		c := Empty()
		model := []byte{}
		for _, op := range ops {
			switch op % 5 {
			case 0:
				n := rng.Intn(300)
				p := payload(n)
				c.AppendBytes(p)
				model = append(model, p...)
			case 1:
				n := rng.Intn(20)
				h := payload(n)
				c.Prepend(h)
				model = append(append([]byte{}, h...), model...)
			case 2:
				n := rng.Intn(50)
				c.TrimFront(n)
				if n > len(model) {
					n = len(model)
				}
				model = model[n:]
			case 3:
				n := rng.Intn(50)
				c.TrimBack(n)
				if n > len(model) {
					n = len(model)
				}
				model = model[:len(model)-n]
			case 4:
				n := rng.Intn(40)
				c.Pullup(n) // no data change regardless of success
			}
			if c.Len() != len(model) {
				return false
			}
			if !bytes.Equal(c.Bytes(), model) {
				return false
			}
			walked := 0
			for m := c.Head(); m != nil; m = m.Next() {
				walked++
				if m.Len() == 0 {
					return false // no empty mbufs may linger
				}
			}
			if walked != c.Count() {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// Property: SplitAt partitions the bytes for any offset.
func TestQuickSplit(t *testing.T) {
	f := func(data []byte, at uint16) bool {
		c := FromBytesSplit(data, 13)
		rest := c.SplitAt(int(at) % (len(data) + 10))
		return bytes.Equal(append(c.Bytes(), rest.Bytes()...), data)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkFromBytes1500(b *testing.B) {
	p := payload(1500)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		FromBytes(p)
	}
}

func BenchmarkPrepend(b *testing.B) {
	hdr := payload(8)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c := FromBytes(hdr)
		c.Prepend(hdr)
	}
}
