// Package mbuf implements BSD-style message buffer chains.
//
// The paper's instruction-count model (Table 1) has per-mbuf terms: the
// PF_XUNET receive path and the IPPROTO_ATM send path each cost 8
// instructions per mbuf in the chain being processed. To make those terms
// emerge from real work rather than arithmetic, the data path of this
// reproduction moves payloads as mbuf chains, exactly as the IRIX kernel
// did: a frame written to a PF_XUNET socket becomes a chain of fixed-size
// buffers, layers prepend headers by growing the chain, and per-mbuf loop
// costs are charged as the chain is walked.
package mbuf

import (
	"fmt"
	"strings"
	"sync"
	"time"

	"xunet/internal/trace"
)

// MLEN is the data capacity of a single small mbuf, matching the
// classic BSD value (128-byte mbuf minus header overhead).
const MLEN = 112

// MCLBYTES is the capacity of a cluster mbuf, used when a single write
// is large enough that chaining small mbufs would be wasteful.
const MCLBYTES = 2048

// clusterThreshold mirrors the BSD policy: writes larger than this go
// into cluster mbufs.
const clusterThreshold = MLEN * 2

// Mbuf is a single buffer in a chain. Data is the valid bytes; a header
// prepend may use spare capacity at the front of the allocation.
type Mbuf struct {
	buf  []byte // full allocation
	off  int    // start of valid data within buf
	n    int    // number of valid bytes
	next *Mbuf
}

// leadingSpace is how much room new mbufs reserve at the front for
// headers prepended by lower layers (the BSD max_linkhdr idea). 24
// bytes covers the checksummed IPPROTO_ATM encapsulation header for
// ATM addresses up to 14 characters.
const leadingSpace = 24

// Free lists, one per size class, in the spirit of the BSD mbuf map.
// Mbufs return here via Chain.Release from the terminal points of the
// data path (receive delivery, protocol drops), so steady-state traffic
// recirculates buffers instead of allocating cold ones.
var (
	smallPool = sync.Pool{New: func() any {
		return &Mbuf{buf: make([]byte, MLEN+leadingSpace)}
	}}
	clusterPool = sync.Pool{New: func() any {
		return &Mbuf{buf: make([]byte, MCLBYTES+leadingSpace)}
	}}
)

// alloc returns an mbuf with capacity at least c and leading space
// reserved, drawing from the small or cluster free list when c fits a
// standard size class.
func alloc(c int) *Mbuf {
	var m *Mbuf
	switch {
	case c <= MLEN:
		m = smallPool.Get().(*Mbuf)
	case c <= MCLBYTES:
		m = clusterPool.Get().(*Mbuf)
	default:
		return &Mbuf{buf: make([]byte, c+leadingSpace), off: leadingSpace}
	}
	m.off = leadingSpace
	m.n = 0
	m.next = nil
	return m
}

// Release returns every mbuf of the chain to its free list and empties
// the chain. Call it only when the chain's data has been fully consumed
// (copied out or dropped): slices previously returned by Data or Bytes
// of pooled mbufs must not be used afterward. Release of a nil or empty
// chain is a no-op.
func (c *Chain) Release() {
	if c == nil {
		return
	}
	for m := c.head; m != nil; {
		next := m.next
		m.next = nil
		switch len(m.buf) {
		case MLEN + leadingSpace:
			smallPool.Put(m)
		case MCLBYTES + leadingSpace:
			clusterPool.Put(m)
		}
		m = next
	}
	c.head, c.tail, c.count, c.length = nil, nil, 0, 0
	c.TC, c.TCAt = trace.Context{}, 0
}

// Data returns the valid bytes of this single mbuf (not the chain).
func (m *Mbuf) Data() []byte { return m.buf[m.off : m.off+m.n] }

// Len returns the number of valid bytes in this single mbuf.
func (m *Mbuf) Len() int { return m.n }

// Next returns the following mbuf in the chain, or nil.
func (m *Mbuf) Next() *Mbuf { return m.next }

// Chain is a sequence of mbufs holding one message. The zero value is an
// empty chain. A Chain is not safe for concurrent use.
type Chain struct {
	head, tail *Mbuf
	count      int
	length     int

	// TC/TCAt carry the causal-trace context of the message this chain
	// holds: TC identifies the sampled trace (zero when untraced) and
	// TCAt is the sim time the chain entered the current segment, so
	// the layer that consumes it can record a transit span. They are
	// metadata, not payload — Release clears them with the rest of the
	// chain state.
	TC   trace.Context
	TCAt time.Duration
}

// FromBytes builds a chain from p using the standard allocation policy:
// cluster mbufs for large messages, small mbufs otherwise. The data is
// copied; p may be reused by the caller.
func FromBytes(p []byte) *Chain {
	c := &Chain{}
	c.AppendBytes(p)
	return c
}

// FromBytesSplit builds a chain from p forcing each mbuf to carry at
// most per bytes. Tests and benchmarks use it to control the chain
// length that the per-mbuf cost terms depend on.
func FromBytesSplit(p []byte, per int) *Chain {
	if per <= 0 {
		per = MLEN
	}
	c := &Chain{}
	for len(p) > 0 {
		n := per
		if n > len(p) {
			n = len(p)
		}
		m := alloc(n)
		copy(m.buf[m.off:], p[:n])
		m.n = n
		c.appendMbuf(m)
		p = p[n:]
	}
	return c
}

// Empty builds an empty chain.
func Empty() *Chain { return &Chain{} }

// Len returns the total number of valid bytes in the chain.
func (c *Chain) Len() int {
	if c == nil {
		return 0
	}
	return c.length
}

// Count returns the number of mbufs in the chain. This is the "#mbufs"
// of Table 1.
func (c *Chain) Count() int {
	if c == nil {
		return 0
	}
	return c.count
}

// Head returns the first mbuf, or nil for an empty chain.
func (c *Chain) Head() *Mbuf {
	if c == nil {
		return nil
	}
	return c.head
}

func (c *Chain) appendMbuf(m *Mbuf) {
	if c.head == nil {
		c.head = m
	} else {
		c.tail.next = m
	}
	c.tail = m
	c.count++
	c.length += m.n
}

// AppendBytes copies p onto the end of the chain, allocating mbufs with
// the standard policy.
func (c *Chain) AppendBytes(p []byte) {
	for len(p) > 0 {
		var cap int
		if len(p) >= clusterThreshold {
			cap = MCLBYTES
		} else {
			cap = MLEN
		}
		n := cap
		if n > len(p) {
			n = len(p)
		}
		m := alloc(n)
		copy(m.buf[m.off:], p[:n])
		m.n = n
		c.appendMbuf(m)
		p = p[n:]
	}
}

// Concat moves all mbufs of other onto the end of c, leaving other empty.
func (c *Chain) Concat(other *Chain) {
	if other == nil || other.head == nil {
		return
	}
	if c.head == nil {
		c.head = other.head
	} else {
		c.tail.next = other.head
	}
	c.tail = other.tail
	c.count += other.count
	c.length += other.length
	other.head, other.tail, other.count, other.length = nil, nil, 0, 0
}

// Prepend attaches hdr at the front of the chain, using the leading
// space of the first mbuf when it fits (the fast path M_PREPEND takes)
// and allocating a new mbuf otherwise.
func (c *Chain) Prepend(hdr []byte) {
	if len(hdr) == 0 {
		return
	}
	if c.head != nil && c.head.off >= len(hdr) {
		c.head.off -= len(hdr)
		copy(c.head.buf[c.head.off:], hdr)
		c.head.n += len(hdr)
		c.length += len(hdr)
		return
	}
	m := alloc(len(hdr))
	copy(m.buf[m.off:], hdr)
	m.n = len(hdr)
	m.next = c.head
	c.head = m
	if c.tail == nil {
		c.tail = m
	}
	c.count++
	c.length += len(hdr)
}

// TrimFront removes n bytes from the front of the chain, freeing emptied
// mbufs. It removes fewer bytes only if the chain is shorter than n; it
// returns the number of bytes removed.
func (c *Chain) TrimFront(n int) int {
	removed := 0
	for n > 0 && c.head != nil {
		m := c.head
		take := n
		if take > m.n {
			take = m.n
		}
		m.off += take
		m.n -= take
		c.length -= take
		removed += take
		n -= take
		if m.n == 0 {
			c.head = m.next
			c.count--
			if c.head == nil {
				c.tail = nil
			}
		}
	}
	return removed
}

// TrimBack removes n bytes from the end of the chain, freeing emptied
// mbufs, and returns the number of bytes removed.
func (c *Chain) TrimBack(n int) int {
	if n <= 0 || c.head == nil {
		return 0
	}
	if n > c.length {
		n = c.length
	}
	keep := c.length - n
	if keep == 0 {
		removed := c.length
		c.head, c.tail, c.count, c.length = nil, nil, 0, 0
		return removed
	}
	// Walk to the mbuf holding the last kept byte.
	m := c.head
	seen := 0
	for seen+m.n < keep {
		seen += m.n
		m = m.next
	}
	cut := keep - seen // bytes kept in m; > 0 because keep > seen
	removed := m.n - cut
	m.n = cut
	for x := m.next; x != nil; x = x.next {
		removed += x.n
	}
	m.next = nil
	c.tail = m
	c.count, c.length = 0, 0
	for x := c.head; x != nil; x = x.next {
		c.count++
		c.length += x.n
	}
	return removed
}

// Bytes flattens the chain into a single contiguous slice (copying).
func (c *Chain) Bytes() []byte {
	if c == nil || c.length == 0 {
		return nil
	}
	out := make([]byte, 0, c.length)
	for m := c.head; m != nil; m = m.next {
		out = append(out, m.Data()...)
	}
	return out
}

// CopyTo copies up to len(p) bytes from the front of the chain into p
// without consuming them, returning the number copied.
func (c *Chain) CopyTo(p []byte) int {
	n := 0
	for m := c.head; m != nil && n < len(p); m = m.next {
		n += copy(p[n:], m.Data())
	}
	return n
}

// Pullup ensures the first n bytes of the chain are contiguous in the
// first mbuf, so a header may be read with a single slice. It returns
// false if the chain holds fewer than n bytes.
func (c *Chain) Pullup(n int) bool {
	if n <= 0 {
		return true
	}
	if c.length < n {
		return false
	}
	if c.head != nil && c.head.n >= n {
		return true
	}
	// Gather n bytes into a fresh mbuf.
	m := alloc(n)
	got := 0
	for got < n {
		h := c.head
		take := n - got
		if take > h.n {
			take = h.n
		}
		copy(m.buf[m.off+got:], h.Data()[:take])
		got += take
		h.off += take
		h.n -= take
		c.length -= take
		if h.n == 0 {
			c.head = h.next
			c.count--
			if c.head == nil {
				c.tail = nil
			}
		}
	}
	m.n = n
	m.next = c.head
	c.head = m
	if c.tail == nil {
		c.tail = m
	}
	c.count++
	c.length += n
	return true
}

// SplitAt divides the chain at byte offset n, returning a new chain
// holding everything from offset n onward; c keeps the first n bytes.
// Splitting beyond the end returns an empty chain.
func (c *Chain) SplitAt(n int) *Chain {
	rest := &Chain{}
	if n >= c.length {
		return rest
	}
	if n <= 0 {
		*rest = *c
		c.head, c.tail, c.count, c.length = nil, nil, 0, 0
		return rest
	}
	var prev *Mbuf
	m := c.head
	seen := 0
	for seen+m.n <= n {
		seen += m.n
		prev = m
		m = m.next
	}
	if seen < n {
		// Split inside m: copy the tail of m into a new mbuf.
		keep := n - seen
		moved := m.n - keep
		nm := alloc(moved)
		copy(nm.buf[nm.off:], m.Data()[keep:])
		nm.n = moved
		nm.next = m.next
		m.n = keep
		m.next = nil
		rest.head = nm
		prev = m
		// Recount below.
	} else {
		rest.head = m
		if prev != nil {
			prev.next = nil
		}
	}
	// Fix up both chains' bookkeeping by walking (chains are short).
	c.tail = prev
	c.count, c.length = 0, 0
	for x := c.head; x != nil; x = x.next {
		c.count++
		c.length += x.n
		c.tail = x
	}
	for x := rest.head; x != nil; x = x.next {
		rest.count++
		rest.length += x.n
		rest.tail = x
	}
	return rest
}

// Clone returns a deep copy of the chain with the same mbuf boundaries.
func (c *Chain) Clone() *Chain {
	out := &Chain{}
	for m := c.head; m != nil; m = m.next {
		nm := alloc(m.n)
		copy(nm.buf[nm.off:], m.Data())
		nm.n = m.n
		out.appendMbuf(nm)
	}
	return out
}

// String summarizes the chain for debugging.
func (c *Chain) String() string {
	if c == nil {
		return "mbuf.Chain(nil)"
	}
	var b strings.Builder
	fmt.Fprintf(&b, "mbuf.Chain{len=%d count=%d:", c.length, c.count)
	for m := c.head; m != nil; m = m.next {
		fmt.Fprintf(&b, " %d", m.n)
	}
	b.WriteString("}")
	return b.String()
}
