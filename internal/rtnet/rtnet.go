// Package rtnet is the real-mode batched datagram carrier: it moves
// signaling frames between real sighost daemons and AAL5 data frames
// between real hosts over UDP, amortizing the per-message OS cost the
// paper's thesis targets (one syscall per frame is exactly the demux
// tax §5 argues against; here the syscall boundary itself is batched).
//
// On Linux (amd64/arm64) transmission and reception use the
// sendmmsg(2)/recvmmsg(2) batch syscalls through the stdlib syscall
// package; every other platform (and Linux with Config.Unbatched) runs
// the same Carrier interface over one WriteToUDPAddrPort /
// ReadFromUDPAddrPort per frame, so the build-tag matrix changes only
// how many frames cross the kernel boundary per trap, never semantics.
//
// The transmit side coalesces per peer: frames append into a bounded
// per-peer slab (copied, so callers may reuse their buffers — the same
// ownership contract as Env.SendPeerRaw) and flush when the batch
// fills, the slab fills, or the owner reaches a dispatch boundary and
// calls Flush — mirroring the journal's one-flush-per-dispatch WAL
// discipline. Steady-state tx and rx hot loops allocate nothing: slabs,
// mmsg headers, iovecs and sockaddrs are preallocated per peer/carrier
// (the PR 2 free-list discipline applied to datagram buffers), and the
// raw-syscall callbacks are pre-bound method values.
//
// Wire format, one frame per datagram (loss unit = one message, which
// the signaling reliability layer already repairs):
//
//	sig:  class(1)=1  sigmsg wire frame
//	data: class(1)=2  vci(2)  payload (AAL5 CPCS-PDU on the data path)
package rtnet

import (
	"errors"
	"fmt"
	"net"
	"net/netip"
	"sync"
	"sync/atomic"
	"syscall"
	"time"

	"xunet/internal/aal5"
	"xunet/internal/atm"
	"xunet/internal/obs"
)

// Defaults.
const (
	// DefaultBatch is the tx coalescing bound and the rx vector length:
	// at most this many frames ride one sendmmsg/recvmmsg.
	DefaultBatch = 32
	// DefaultMaxFrame bounds one frame's payload (jumbo-ish; loopback
	// and most real MTUs after fragmentation concerns are the caller's).
	DefaultMaxFrame = 8192
)

// Frame classes (first byte of every datagram).
const (
	classSig  = 1
	classData = 2
)

// dataHdrLen is the data-class header: class(1) + vci(2).
const dataHdrLen = 3

// Errors.
var (
	ErrFrameTooLong = errors.New("rtnet: frame exceeds MaxFrame")
	ErrClosed       = errors.New("rtnet: carrier closed")
	ErrUnknownPeer  = errors.New("rtnet: unknown peer")
)

// SigHandler consumes one received signaling frame. The payload aliases
// the carrier's receive buffers and is valid only until the handler
// returns; decode (or copy) before handing it to another goroutine.
type SigHandler func(from *Peer, frame []byte)

// DataHandler consumes one received data frame, same aliasing contract.
type DataHandler func(from *Peer, vci atm.VCI, payload []byte)

// Config tunes a Carrier.
type Config struct {
	// Listen is the UDP listen address ("127.0.0.1:0"). IPv4 only: the
	// batched path builds raw sockaddr_in structs.
	Listen string
	// Batch caps frames per flush and per receive vector (DefaultBatch).
	Batch int
	// MaxFrame caps one frame's payload bytes (DefaultMaxFrame).
	MaxFrame int
	// Unbatched forces the portable per-message path even where the OS
	// batch syscalls exist — the fallback every non-Linux build runs,
	// kept selectable on Linux so rtbench can compare the two on
	// identical hardware.
	Unbatched bool
	// ManualRx suppresses the receive pump; the owner drives RecvOnce
	// itself (tests and the allocation gates, which need the rx path on
	// a deterministic goroutine).
	ManualRx bool
	// Obs receives the carrier's counters and per-peer batch histograms;
	// nil uses a private registry so instrumentation is unconditional.
	Obs *obs.Registry

	// OnSig/OnData dispatch received frames (set before Start; they run
	// on the receive pump goroutine).
	OnSig  SigHandler
	OnData DataHandler
}

// Carrier is one real-mode datagram endpoint: a UDP socket, a peer
// table, per-peer transmit coalescers and a receive pump.
type Carrier struct {
	cfg      Config
	batch    int
	maxFrame int
	batched  bool // OS batch syscalls in use

	pc  *net.UDPConn
	rc  syscall.RawConn
	reg *obs.Registry

	mu     sync.Mutex
	byAddr map[netip.AddrPort]*Peer
	byName map[string]*Peer
	plist  []*Peer
	closed bool

	wg      sync.WaitGroup
	started atomic.Bool

	// rx state: OS-specific vectors (batched) or one reusable buffer.
	rxb   rxBatch
	rxBuf []byte

	// Counters. tx.syscalls_saved is the batching win made visible:
	// frames that crossed the kernel boundary without their own trap.
	txFrames        *obs.Counter
	txBatches       *obs.Counter
	txSyscallsSaved *obs.Counter
	txErrors        *obs.Counter
	rxFrames        *obs.Counter
	rxBatches       *obs.Counter
	rxUnknownPeer   *obs.Counter
	rxBadFrame      *obs.Counter
}

// Peer is one remote carrier endpoint with its transmit coalescer.
type Peer struct {
	c    *Carrier
	name string

	mu   sync.Mutex
	ap   netip.AddrPort
	slab []byte // frames back to back; cap = Batch * (dataHdrLen + MaxFrame)
	offs []int  // offs[i]..offs[i+1] bounds frame i; len Batch+1
	n    int    // frames pending

	// batchHist observes the flushed batch size (frames, encoded as
	// time.Duration units — the registry's histograms are log-bucketed
	// counters, so any monotone scale quantiles correctly).
	batchHist *obs.Histogram

	txb txBatch // OS-specific: preallocated mmsg headers/iovecs/sockaddr
}

// New binds the carrier's socket and builds its peer machinery. Call
// Start to launch the receive pump (unless ManualRx).
func New(cfg Config) (*Carrier, error) {
	if cfg.Batch <= 0 {
		cfg.Batch = DefaultBatch
	}
	if cfg.MaxFrame <= 0 {
		cfg.MaxFrame = DefaultMaxFrame
	}
	if cfg.Listen == "" {
		cfg.Listen = "127.0.0.1:0"
	}
	reg := cfg.Obs
	if reg == nil {
		reg = obs.NewRegistry()
	}
	laddr, err := net.ResolveUDPAddr("udp4", cfg.Listen)
	if err != nil {
		return nil, fmt.Errorf("rtnet: listen %q: %w", cfg.Listen, err)
	}
	pc, err := net.ListenUDP("udp4", laddr)
	if err != nil {
		return nil, fmt.Errorf("rtnet: listen %q: %w", cfg.Listen, err)
	}
	// Deep socket buffers: a burst of batches must not shed frames at
	// the loopback before the pump drains them.
	_ = pc.SetReadBuffer(1 << 21)
	_ = pc.SetWriteBuffer(1 << 21)
	rc, err := pc.SyscallConn()
	if err != nil {
		pc.Close()
		return nil, err
	}
	c := &Carrier{
		cfg:      cfg,
		batch:    cfg.Batch,
		maxFrame: cfg.MaxFrame,
		batched:  osBatched && !cfg.Unbatched,
		pc:       pc,
		rc:       rc,
		reg:      reg,
		byAddr:   map[netip.AddrPort]*Peer{},
		byName:   map[string]*Peer{},

		txFrames:        reg.Counter("rtnet.tx.frames"),
		txBatches:       reg.Counter("rtnet.tx.batches"),
		txSyscallsSaved: reg.Counter("rtnet.tx.syscalls_saved"),
		txErrors:        reg.Counter("rtnet.tx.errors"),
		rxFrames:        reg.Counter("rtnet.rx.frames"),
		rxBatches:       reg.Counter("rtnet.rx.batches"),
		rxUnknownPeer:   reg.Counter("rtnet.rx.unknown_peer"),
		rxBadFrame:      reg.Counter("rtnet.rx.bad_frame"),
	}
	if c.batched {
		c.osRxInit()
	} else {
		c.rxBuf = make([]byte, dataHdrLen+c.maxFrame)
	}
	return c, nil
}

// Start launches the receive pump (a no-op under ManualRx).
func (c *Carrier) Start() {
	if c.cfg.ManualRx || !c.started.CompareAndSwap(false, true) {
		return
	}
	c.wg.Add(1)
	go func() {
		defer c.wg.Done()
		for {
			if _, err := c.RecvOnce(); err != nil {
				return // socket closed (or unrecoverable)
			}
		}
	}()
}

// Close flushes nothing (pending frames are dropped — UDP semantics),
// closes the socket and joins the pump.
func (c *Carrier) Close() error {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return nil
	}
	c.closed = true
	c.mu.Unlock()
	err := c.pc.Close()
	c.wg.Wait()
	return err
}

// Addr reports the carrier's bound UDP address.
func (c *Carrier) Addr() string { return c.pc.LocalAddr().String() }

// AddrPort reports the bound address as a netip.AddrPort.
func (c *Carrier) AddrPort() netip.AddrPort {
	ua := c.pc.LocalAddr().(*net.UDPAddr)
	return ua.AddrPort()
}

// Batched reports whether the OS batch syscalls are in use (false on
// non-Linux builds and under Config.Unbatched).
func (c *Carrier) Batched() bool { return c.batched }

// AddPeer registers a remote endpoint under a stable name (the real
// deployment keys peers by ATM address). Frames from unregistered
// sources are counted and dropped — the peer table is the demux.
func (c *Carrier) AddPeer(name string, ap netip.AddrPort) (*Peer, error) {
	ap = netip.AddrPortFrom(ap.Addr().Unmap(), ap.Port())
	if !ap.Addr().Is4() {
		return nil, fmt.Errorf("rtnet: peer %s: IPv4 addresses only, got %s", name, ap)
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed {
		return nil, ErrClosed
	}
	if _, dup := c.byName[name]; dup {
		return nil, fmt.Errorf("rtnet: duplicate peer %q", name)
	}
	if _, dup := c.byAddr[ap]; dup {
		return nil, fmt.Errorf("rtnet: duplicate peer address %s", ap)
	}
	p := &Peer{
		c:         c,
		name:      name,
		ap:        ap,
		slab:      make([]byte, 0, c.batch*(dataHdrLen+c.maxFrame)),
		offs:      make([]int, c.batch+1),
		batchHist: c.reg.Histogram("rtnet.tx.batch." + name),
	}
	p.osInit()
	c.byName[name] = p
	c.byAddr[ap] = p
	c.plist = append(c.plist, p)
	return p, nil
}

// PeerByName looks a registered peer up.
func (c *Carrier) PeerByName(name string) *Peer {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.byName[name]
}

// SetPeerAddr re-targets an existing peer (a daemon that restarted on a
// new port; tests use it to heal a blackholed route).
func (c *Carrier) SetPeerAddr(name string, ap netip.AddrPort) error {
	ap = netip.AddrPortFrom(ap.Addr().Unmap(), ap.Port())
	if !ap.Addr().Is4() {
		return fmt.Errorf("rtnet: peer %s: IPv4 addresses only, got %s", name, ap)
	}
	c.mu.Lock()
	p := c.byName[name]
	if p == nil {
		c.mu.Unlock()
		return ErrUnknownPeer
	}
	if other, dup := c.byAddr[ap]; dup && other != p {
		c.mu.Unlock()
		return fmt.Errorf("rtnet: address %s already belongs to peer %q", ap, other.name)
	}
	p.mu.Lock()
	delete(c.byAddr, p.ap)
	p.ap = ap
	c.byAddr[ap] = p
	p.osRetarget()
	p.mu.Unlock()
	c.mu.Unlock()
	return nil
}

// Flush transmits every peer's pending frames — the dispatch-boundary
// hook (the real daemon's actor calls it after each handler, exactly
// where the journal jflushes).
func (c *Carrier) Flush() {
	c.mu.Lock()
	peers := c.plist
	c.mu.Unlock()
	for _, p := range peers {
		_ = p.Flush()
	}
}

// Name reports the peer's registered name.
func (p *Peer) Name() string { return p.name }

// SendSig coalesces one signaling frame toward the peer. The frame is
// copied before return; the caller's buffer is immediately reusable.
func (p *Peer) SendSig(frame []byte) error {
	return p.send(classSig, 0, frame)
}

// SendData coalesces one data frame on the given VCI.
func (p *Peer) SendData(vci atm.VCI, payload []byte) error {
	return p.send(classData, vci, payload)
}

func (p *Peer) send(class byte, vci atm.VCI, payload []byte) error {
	if len(payload) > p.c.maxFrame {
		return ErrFrameTooLong
	}
	hdr := 1
	if class == classData {
		hdr = dataHdrLen
	}
	p.mu.Lock()
	if p.n == p.c.batch || len(p.slab)+hdr+len(payload) > cap(p.slab) {
		if err := p.flushLocked(); err != nil {
			p.mu.Unlock()
			return err
		}
	}
	p.slab = append(p.slab, class)
	if class == classData {
		p.slab = append(p.slab, byte(vci>>8), byte(vci))
	}
	p.slab = append(p.slab, payload...)
	p.n++
	p.offs[p.n] = len(p.slab)
	p.mu.Unlock()
	return nil
}

// Flush transmits this peer's pending batch.
func (p *Peer) Flush() error {
	p.mu.Lock()
	err := p.flushLocked()
	p.mu.Unlock()
	return err
}

// Pending reports how many frames are coalesced and unsent.
func (p *Peer) Pending() int {
	p.mu.Lock()
	n := p.n
	p.mu.Unlock()
	return n
}

// flushLocked sends the pending batch: one sendmmsg on the batched
// path, one write per frame on the fallback. Called with p.mu held.
func (p *Peer) flushLocked() error {
	n := p.n
	if n == 0 {
		return nil
	}
	c := p.c
	var err error
	syscalls := 0
	if c.batched {
		syscalls, err = p.osFlush()
	} else {
		for i := 0; i < n; i++ {
			frame := p.slab[p.offs[i]:p.offs[i+1]]
			if _, werr := c.pc.WriteToUDPAddrPort(frame, p.ap); werr != nil && err == nil {
				err = werr
			}
		}
		syscalls = n
	}
	c.txFrames.Add(uint64(n))
	c.txBatches.Inc()
	if n > syscalls {
		c.txSyscallsSaved.Add(uint64(n - syscalls))
	}
	if err != nil {
		c.txErrors.Inc()
	}
	p.batchHist.Observe(time.Duration(n))
	p.n = 0
	p.slab = p.slab[:0]
	return err
}

// RecvOnce receives one batch (one datagram on the fallback path) and
// dispatches each frame to the class handler, returning the number of
// frames consumed. It blocks in the runtime poller until the socket is
// readable; a closed socket returns an error. The pump is just this in
// a loop — ManualRx owners call it directly, which keeps the rx hot
// path on a test-controlled goroutine for the allocation gates.
func (c *Carrier) RecvOnce() (int, error) {
	if c.batched {
		return c.osRecvOnce()
	}
	n, ap, err := c.pc.ReadFromUDPAddrPort(c.rxBuf)
	if err != nil {
		return 0, err
	}
	c.rxBatches.Inc()
	c.dispatch(netip.AddrPortFrom(ap.Addr().Unmap(), ap.Port()), c.rxBuf[:n])
	return 1, nil
}

// dispatch routes one received datagram: peer lookup by source address,
// class demux, handler call. Alloc-free.
func (c *Carrier) dispatch(src netip.AddrPort, frame []byte) {
	c.mu.Lock()
	p := c.byAddr[src]
	c.mu.Unlock()
	if p == nil {
		c.rxUnknownPeer.Inc()
		return
	}
	if len(frame) < 1 {
		c.rxBadFrame.Inc()
		return
	}
	switch frame[0] {
	case classSig:
		c.rxFrames.Inc()
		if h := c.cfg.OnSig; h != nil {
			h(p, frame[1:])
		}
	case classData:
		if len(frame) < dataHdrLen {
			c.rxBadFrame.Inc()
			return
		}
		c.rxFrames.Inc()
		if h := c.cfg.OnData; h != nil {
			vci := atm.VCI(uint16(frame[1])<<8 | uint16(frame[2]))
			h(p, vci, frame[dataHdrLen:])
		}
	default:
		c.rxBadFrame.Inc()
	}
}

// AAL5Link frames payloads as AAL5 CPCS-PDUs over one (peer, VCI): the
// real-mode data path. The per-VC frame sequence number rides the
// CPCS-UU octet exactly as on the simulated Hobbit boards, so the
// receive side detects frame loss and reordering with the same
// SeqTracker. Not safe for concurrent use; give each direction its own.
type AAL5Link struct {
	P   *Peer
	VCI atm.VCI

	// Seq is the receive-side order tracker (read InOrder/OutOfOrder
	// for loss accounting).
	Seq aal5.SeqTracker

	txSeq byte
	buf   []byte
}

// Send wraps payload in an AAL5 frame (zero-alloc steady state: the
// CPCS-PDU builds in a reused scratch) and coalesces it onto the peer.
func (l *AAL5Link) Send(payload []byte) error {
	var err error
	l.buf, err = aal5.AppendFrame(l.buf[:0], payload, l.txSeq)
	if err != nil {
		return err
	}
	l.txSeq++
	return l.P.SendData(l.VCI, l.buf)
}

// Recv validates one received data frame as an AAL5 CPCS-PDU and
// sequence-checks it. The returned payload aliases frame.
func (l *AAL5Link) Recv(frame []byte) ([]byte, error) {
	payload, uu, err := aal5.ParseFrame(frame)
	if err != nil {
		return nil, err
	}
	if ok, gap := l.Seq.Check(uu); !ok {
		return payload, fmt.Errorf("aal5: frame sequence gap %+d on vci %d", gap, l.VCI)
	}
	return payload, nil
}
