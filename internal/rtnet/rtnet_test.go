package rtnet

import (
	"fmt"
	"net"
	"net/netip"
	"testing"

	"xunet/internal/atm"
	"xunet/internal/obs"
)

// newPair builds two carriers on the loopback with peers registered in
// both directions. ManualRx keeps reception on the test goroutine.
// testing.TB so the rtbench tier reuses it.
func newPair(t testing.TB, unbatched bool, rx Config) (a, b *Carrier, ab, ba *Peer) {
	t.Helper()
	mk := func(cfg Config) *Carrier {
		cfg.Listen = "127.0.0.1:0"
		cfg.Unbatched = unbatched
		cfg.ManualRx = true
		c, err := New(cfg)
		if err != nil {
			t.Skipf("loopback UDP unavailable: %v", err)
		}
		t.Cleanup(func() { c.Close() })
		return c
	}
	a = mk(Config{Obs: obs.NewRegistry()})
	b = mk(rx)
	var err error
	if ab, err = a.AddPeer("b", b.AddrPort()); err != nil {
		t.Fatal(err)
	}
	if ba, err = b.AddPeer("a", a.AddrPort()); err != nil {
		t.Fatal(err)
	}
	return a, b, ab, ba
}

// drain pulls batches from c until want frames were dispatched (the
// test handler counts) or the poller would block forever on a bug —
// RecvOnce blocks, so a miscount hangs and the test timeout catches it.
func drain(t testing.TB, c *Carrier, got *int, want int) {
	t.Helper()
	for *got < want {
		if _, err := c.RecvOnce(); err != nil {
			t.Fatalf("RecvOnce: %v", err)
		}
	}
}

func modes(t *testing.T, f func(t *testing.T, unbatched bool)) {
	t.Run("fallback", func(t *testing.T) { f(t, true) })
	if osBatched {
		t.Run("batched", func(t *testing.T) { f(t, false) })
	}
}

func TestSigRoundTrip(t *testing.T) {
	modes(t, func(t *testing.T, unbatched bool) {
		var got []string
		var n int
		rx := Config{Obs: obs.NewRegistry(), OnSig: func(from *Peer, frame []byte) {
			got = append(got, from.Name()+":"+string(frame))
			n++
		}}
		_, b, ab, _ := newPair(t, unbatched, rx)
		const k = 75 // spans multiple batches
		for i := 0; i < k; i++ {
			if err := ab.SendSig([]byte(fmt.Sprintf("m%03d", i))); err != nil {
				t.Fatal(err)
			}
		}
		if err := ab.Flush(); err != nil {
			t.Fatal(err)
		}
		drain(t, b, &n, k)
		for i, g := range got {
			if want := fmt.Sprintf("a:m%03d", i); g != want {
				t.Fatalf("frame %d = %q, want %q", i, g, want)
			}
		}
	})
}

func TestDataRoundTripAAL5(t *testing.T) {
	modes(t, func(t *testing.T, unbatched bool) {
		var rxLink AAL5Link
		var payloads []string
		var vcis []atm.VCI
		var n int
		rx := Config{Obs: obs.NewRegistry(), OnData: func(from *Peer, vci atm.VCI, payload []byte) {
			p, err := rxLink.Recv(payload)
			if err != nil {
				t.Errorf("aal5 recv: %v", err)
			}
			payloads = append(payloads, string(p))
			vcis = append(vcis, vci)
			n++
		}}
		_, b, ab, _ := newPair(t, unbatched, rx)
		link := &AAL5Link{P: ab, VCI: 77}
		const k = 40
		for i := 0; i < k; i++ {
			if err := link.Send([]byte(fmt.Sprintf("payload-%02d", i))); err != nil {
				t.Fatal(err)
			}
		}
		if err := ab.Flush(); err != nil {
			t.Fatal(err)
		}
		drain(t, b, &n, k)
		for i, p := range payloads {
			if want := fmt.Sprintf("payload-%02d", i); p != want {
				t.Fatalf("payload %d = %q, want %q", i, p, want)
			}
			if vcis[i] != 77 {
				t.Fatalf("vci %d = %d, want 77", i, vcis[i])
			}
		}
		if rxLink.Seq.OutOfOrder != 0 || rxLink.Seq.InOrder != k {
			t.Fatalf("seq tracker %v after in-order stream", rxLink.Seq.String())
		}
	})
}

// TestFlushBoundaries: the coalescer flushes on its own at the frame-
// count bound and at the slab-byte bound, and holds the tail for the
// explicit dispatch-boundary flush.
func TestFlushBoundaries(t *testing.T) {
	modes(t, func(t *testing.T, unbatched bool) {
		reg := obs.NewRegistry()
		var n int
		rx := Config{Obs: obs.NewRegistry(), OnSig: func(*Peer, []byte) { n++ }}
		a, b, ab, _ := newPair(t, unbatched, rx)
		_ = a
		// Count bound: Batch+3 sends auto-flush exactly one full batch.
		for i := 0; i < DefaultBatch+3; i++ {
			if err := ab.SendSig([]byte("x")); err != nil {
				t.Fatal(err)
			}
		}
		if got := ab.Pending(); got != 3 {
			t.Fatalf("pending after count-bound overflow = %d, want 3", got)
		}
		drain(t, b, &n, DefaultBatch)
		if err := ab.Flush(); err != nil {
			t.Fatal(err)
		}
		drain(t, b, &n, DefaultBatch+3)
		if ab.Pending() != 0 {
			t.Fatalf("pending after explicit flush = %d", ab.Pending())
		}

		// Byte bound: frames near MaxFrame overflow the slab long before
		// the count bound.
		big, err := New(Config{Listen: "127.0.0.1:0", Batch: 8, MaxFrame: 1024, Unbatched: unbatched, ManualRx: true, Obs: reg})
		if err != nil {
			t.Fatal(err)
		}
		defer big.Close()
		sink, err := New(Config{Listen: "127.0.0.1:0", Batch: 8, MaxFrame: 1024, Unbatched: unbatched, ManualRx: true})
		if err != nil {
			t.Fatal(err)
		}
		defer sink.Close()
		p, err := big.AddPeer("sink", sink.AddrPort())
		if err != nil {
			t.Fatal(err)
		}
		if _, err := sink.AddPeer("big", big.AddrPort()); err != nil {
			t.Fatal(err)
		}
		huge := make([]byte, 1024)
		for i := 0; i < 9; i++ { // 9 KiB+ against an 8 KiB+hdrs slab
			if err := p.SendData(9, huge); err != nil {
				t.Fatal(err)
			}
		}
		if flushes := reg.Counter("rtnet.tx.batches").Value(); flushes == 0 {
			t.Fatal("byte-bound overflow never auto-flushed")
		}
		if err := p.SendData(9, make([]byte, 1025)); err != ErrFrameTooLong {
			t.Fatalf("oversized frame: err = %v, want ErrFrameTooLong", err)
		}
	})
}

func TestUnknownPeerAndBadFramesDropped(t *testing.T) {
	reg := obs.NewRegistry()
	var sig, data int
	c, err := New(Config{Listen: "127.0.0.1:0", ManualRx: true, Obs: reg,
		OnSig:  func(*Peer, []byte) { sig++ },
		OnData: func(*Peer, atm.VCI, []byte) { data++ }})
	if err != nil {
		t.Skipf("loopback UDP unavailable: %v", err)
	}
	defer c.Close()

	raw, err := net.ListenUDP("udp4", &net.UDPAddr{IP: net.IPv4(127, 0, 0, 1)})
	if err != nil {
		t.Fatal(err)
	}
	defer raw.Close()
	dst := &net.UDPAddr{IP: net.IPv4(127, 0, 0, 1), Port: int(c.AddrPort().Port())}

	// Stranger: valid sig frame from an unregistered source.
	if _, err := raw.WriteToUDP([]byte{classSig, 'h', 'i'}, dst); err != nil {
		t.Fatal(err)
	}
	if _, err := c.RecvOnce(); err != nil {
		t.Fatal(err)
	}
	if got := reg.Counter("rtnet.rx.unknown_peer").Value(); got != 1 {
		t.Fatalf("unknown_peer = %d, want 1", got)
	}

	// Register the stranger, then send malformed frames: unknown class
	// and a data frame shorter than its header.
	if _, err := c.AddPeer("stranger", raw.LocalAddr().(*net.UDPAddr).AddrPort()); err != nil {
		t.Fatal(err)
	}
	for _, bad := range [][]byte{{0xEE, 1, 2}, {classData, 5}} {
		if _, err := raw.WriteToUDP(bad, dst); err != nil {
			t.Fatal(err)
		}
	}
	seen := 0
	for seen < 2 {
		n, err := c.RecvOnce()
		if err != nil {
			t.Fatal(err)
		}
		seen += n
	}
	if got := reg.Counter("rtnet.rx.bad_frame").Value(); got != 2 {
		t.Fatalf("bad_frame = %d, want 2", got)
	}
	if sig != 0 || data != 0 {
		t.Fatalf("malformed frames reached handlers (sig=%d data=%d)", sig, data)
	}
}

func TestSetPeerAddr(t *testing.T) {
	var n int
	rx := Config{OnSig: func(*Peer, []byte) { n++ }}
	a, b, ab, _ := newPair(t, false, rx)
	// Blackhole: re-target the peer at a port nobody listens on; frames
	// vanish without error (UDP), then healing the address restores
	// delivery.
	dead := netip.AddrPortFrom(netip.AddrFrom4([4]byte{127, 0, 0, 1}), 1)
	if err := a.SetPeerAddr("b", dead); err != nil {
		t.Fatal(err)
	}
	_ = ab.SendSig([]byte("lost"))
	_ = ab.Flush()
	if err := a.SetPeerAddr("b", b.AddrPort()); err != nil {
		t.Fatal(err)
	}
	if err := ab.SendSig([]byte("found")); err != nil {
		t.Fatal(err)
	}
	if err := ab.Flush(); err != nil {
		t.Fatal(err)
	}
	drain(t, b, &n, 1)
	if err := a.SetPeerAddr("nobody", b.AddrPort()); err != ErrUnknownPeer {
		t.Fatalf("SetPeerAddr(unknown) = %v, want ErrUnknownPeer", err)
	}
}

// TestHotLoopAllocs is the steady-state allocation gate for both tx
// coalescing+flush and the rx batch dispatch, in whichever mode the
// platform builds (and always in fallback mode, which every platform
// shares). Runs in tier-1 `go test` — the rtbench tier re-asserts it
// with the wall-clock numbers attached.
func TestHotLoopAllocs(t *testing.T) {
	modes(t, func(t *testing.T, unbatched bool) {
		var n int
		rx := Config{Obs: obs.NewRegistry(), OnSig: func(*Peer, []byte) { n++ }}
		_, b, ab, _ := newPair(t, unbatched, rx)
		frame := make([]byte, 64)
		const burst = 8
		cycle := func() {
			for i := 0; i < burst; i++ {
				if err := ab.SendSig(frame); err != nil {
					t.Fatal(err)
				}
			}
			if err := ab.Flush(); err != nil {
				t.Fatal(err)
			}
			want := n + burst
			for n < want {
				if _, err := b.RecvOnce(); err != nil {
					t.Fatal(err)
				}
			}
		}
		cycle() // warm the path (histogram buckets, map entries)
		if avg := testing.AllocsPerRun(50, cycle); avg != 0 {
			t.Fatalf("tx+rx steady state allocates %.1f allocs per %d-frame cycle, want 0", avg, burst)
		}
	})
}

// TestAAL5LinkSendAllocs: the data-path framing also stays off the heap
// once its scratch is warm.
func TestAAL5LinkSendAllocs(t *testing.T) {
	_, _, ab, _ := newPair(t, false, Config{})
	link := &AAL5Link{P: ab, VCI: 9}
	payload := make([]byte, 700)
	if err := link.Send(payload); err != nil { // warm the scratch
		t.Fatal(err)
	}
	_ = ab.Flush()
	if avg := testing.AllocsPerRun(50, func() {
		if err := link.Send(payload); err != nil {
			t.Fatal(err)
		}
	}); avg != 0 {
		t.Fatalf("AAL5Link.Send allocates %.1f/op, want 0", avg)
	}
}
