package rtnet

// The rtbench tier's frame-path half: wall-clock loopback throughput of
// the carrier, batched vs fallback on identical hardware, with per-op
// allocation accounting and the syscalls-per-frame amortization made
// explicit. `make rtbench` runs these with -count 3 and benchjson
// gates:
//
//   - sys/frame (fallback ÷ batched) ≥ 2 — the batching mechanism
//     itself, normally ~30× with the default batch of 32;
//   - frames/s (batched ÷ fallback) ≥ 1 — batching never loses
//     wall-clock.
//
// The wall-clock gate is deliberately ≥1, not ≥2: on a modern kernel a
// syscall entry costs ~0.1 µs while loopback per-datagram stack
// processing costs ~3 µs, so collapsing 64 traps into 2 moves elapsed
// time by ~1.2×, not 2× — the per-packet cost batching cannot remove
// dominates. The sys/frame metric isolates the part sendmmsg/recvmmsg
// actually amortize. (On the 1994-era hardware the paper targets the
// trap itself was the dominant term, which is why §5 argues per-message
// kernel crossings tax native-mode ATM; the mechanism gate checks we
// removed those crossings.)

import (
	"testing"

	"xunet/internal/atm"
	"xunet/internal/obs"
)

// benchFrames measures one full tx+rx cycle per op: coalesce a burst,
// flush (one sendmmsg on the batched path, burst writes on fallback),
// then drain it back off the socket. Single-goroutine by design — on
// the 1-CPU bench hosts a pump goroutine would measure scheduler churn,
// not the syscall amortization under test.
func benchFrames(b *testing.B, unbatched bool, frameLen int) {
	txReg, rxReg := obs.NewRegistry(), obs.NewRegistry()
	var got int
	rx := Config{Obs: rxReg, OnSig: func(*Peer, []byte) { got++ }}
	tx := Config{Obs: txReg}
	mk := func(cfg Config) *Carrier {
		cfg.Listen = "127.0.0.1:0"
		cfg.Unbatched = unbatched
		cfg.ManualRx = true
		c, err := New(cfg)
		if err != nil {
			b.Skipf("loopback UDP unavailable: %v", err)
		}
		b.Cleanup(func() { c.Close() })
		return c
	}
	txc, rxc := mk(tx), mk(rx)
	ab, err := txc.AddPeer("rx", rxc.AddrPort())
	if err != nil {
		b.Fatal(err)
	}
	if _, err := rxc.AddPeer("tx", txc.AddrPort()); err != nil {
		b.Fatal(err)
	}
	frame := make([]byte, frameLen)
	const burst = DefaultBatch
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for j := 0; j < burst; j++ {
			if err := ab.SendSig(frame); err != nil {
				b.Fatal(err)
			}
		}
		if err := ab.Flush(); err != nil {
			b.Fatal(err)
		}
		want := (i + 1) * burst
		for got < want {
			if _, err := rxc.RecvOnce(); err != nil {
				b.Fatal(err)
			}
		}
	}
	b.StopTimer()
	frames := float64(b.N) * burst
	txSys := txReg.Counter("rtnet.tx.frames").Value() - txReg.Counter("rtnet.tx.syscalls_saved").Value()
	rxSys := rxReg.Counter("rtnet.rx.batches").Value()
	b.ReportMetric(frames/b.Elapsed().Seconds(), "frames/s")
	b.ReportMetric(float64(txSys+rxSys)/frames, "sys/frame")
}

func BenchmarkRealFrames(b *testing.B) {
	b.Run("batched", func(b *testing.B) {
		if !osBatched {
			b.Skip("no sendmmsg/recvmmsg on this platform")
		}
		benchFrames(b, false, 256)
	})
	b.Run("fallback", func(b *testing.B) {
		benchFrames(b, true, 256)
	})
}

// BenchmarkRealFramesAAL5 runs the same cycle through the AAL5 data
// path (CPCS framing + CRC-32 + sequence check per frame) so the
// report shows what the adaptation layer costs on top of the carrier.
func BenchmarkRealFramesAAL5(b *testing.B) {
	if !osBatched {
		b.Skip("no sendmmsg/recvmmsg on this platform")
	}
	var got int
	var rxLink AAL5Link
	rx := Config{Obs: obs.NewRegistry(), OnData: func(from *Peer, vci atm.VCI, payload []byte) {
		if _, err := rxLink.Recv(payload); err != nil {
			b.Error(err)
		}
		got++
	}}
	_, rxc, ab, _ := newPair(b, false, rx)
	link := &AAL5Link{P: ab, VCI: 42}
	payload := make([]byte, 256)
	const burst = DefaultBatch
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for j := 0; j < burst; j++ {
			if err := link.Send(payload); err != nil {
				b.Fatal(err)
			}
		}
		if err := ab.Flush(); err != nil {
			b.Fatal(err)
		}
		want := (i + 1) * burst
		for got < want {
			if _, err := rxc.RecvOnce(); err != nil {
				b.Fatal(err)
			}
		}
	}
	b.StopTimer()
	b.ReportMetric(float64(b.N)*burst/b.Elapsed().Seconds(), "frames/s")
}
