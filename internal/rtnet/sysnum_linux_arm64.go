//go:build linux && arm64

package rtnet

// Batch-syscall numbers (the asm-generic table arm64 uses).
const (
	sysRecvmmsg uintptr = 243
	sysSendmmsg uintptr = 269
)
