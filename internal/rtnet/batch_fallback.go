//go:build !linux || !(amd64 || arm64)

// Portable fallback: no OS batch syscalls, so the carrier runs one
// WriteToUDPAddrPort/ReadFromUDPAddrPort per frame (both alloc-free on
// the netip API). Tx coalescing still applies — frames batch in the
// peer slab and flush together at dispatch boundaries — only the
// kernel-boundary amortization is lost. The stubs below are never
// called (Carrier.batched is constant-false here); they exist so the
// shared code compiles identically on every platform.

package rtnet

// osBatched selects the batched implementation at build time.
const osBatched = false

// txBatch has no per-peer OS state on the fallback path.
type txBatch struct{}

func (p *Peer) osInit()     {}
func (p *Peer) osRetarget() {}

func (p *Peer) osFlush() (int, error) { panic("rtnet: osFlush without OS batch support") }

// rxBatch has no carrier OS state on the fallback path.
type rxBatch struct{}

func (c *Carrier) osRxInit() {}

func (c *Carrier) osRecvOnce() (int, error) { panic("rtnet: osRecvOnce without OS batch support") }
