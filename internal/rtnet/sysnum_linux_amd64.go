//go:build linux && amd64

package rtnet

// Batch-syscall numbers (arch/x86/entry/syscalls/syscall_64.tbl).
const (
	sysRecvmmsg uintptr = 299
	sysSendmmsg uintptr = 307
)
