//go:build linux && (amd64 || arm64)

// The batched half of the carrier: sendmmsg(2)/recvmmsg(2) through the
// stdlib syscall package. The mmsghdr vector type is not in the stdlib,
// so it is declared here over syscall.Msghdr (whose per-arch layout the
// stdlib guarantees); the syscall numbers live in sysnum_linux_*.go.
// Only the 64-bit arches this repo targets are enabled — everything
// else takes the portable per-message path in batch_fallback.go, which
// is also what this file's carrier runs under Config.Unbatched.

package rtnet

import (
	"net/netip"
	"syscall"
	"unsafe"
)

// osBatched selects the batched send/receive implementation at build
// time; Config.Unbatched can still disable it per carrier.
const osBatched = true

// mmsghdr mirrors struct mmsghdr: one msghdr plus the kernel-filled
// received/sent byte count. The trailing pad keeps the 8-byte stride
// the kernel walks the vector with on 64-bit arches.
type mmsghdr struct {
	hdr syscall.Msghdr
	n   uint32
	_   [4]byte
}

// mmsgOp is a pre-bound raw-syscall callback for syscall.RawConn:
// building a fresh closure per flush would put an allocation in the hot
// loop, so the op struct is allocated once per peer (tx) or carrier
// (rx) and its do method is stored as a reusable func value.
type mmsgOp struct {
	sysno uintptr
	hdrs  []mmsghdr
	off   int
	vlen  int

	got   int
	errno syscall.Errno
	fn    func(uintptr) bool
}

func (o *mmsgOp) init(sysno uintptr) {
	o.sysno = sysno
	o.fn = o.do
}

func (o *mmsgOp) do(fd uintptr) bool {
	r, _, e := syscall.Syscall6(o.sysno, fd,
		uintptr(unsafe.Pointer(&o.hdrs[o.off])), uintptr(o.vlen), 0, 0, 0)
	o.got, o.errno = int(r), e
	return e != syscall.EAGAIN
}

// htons converts a port to the network byte order sockaddr_in wants.
func htons(v uint16) uint16 { return v<<8 | v>>8 }

// txBatch is the per-peer preallocated sendmmsg state.
type txBatch struct {
	hdrs []mmsghdr
	iovs []syscall.Iovec
	sa   syscall.RawSockaddrInet4
	op   mmsgOp
}

// osInit builds the peer's send vector once; flushLocked only rewrites
// iovec base/len fields.
func (p *Peer) osInit() {
	b := p.c.batch
	p.txb.hdrs = make([]mmsghdr, b)
	p.txb.iovs = make([]syscall.Iovec, b)
	p.osRetarget()
	for i := range p.txb.hdrs {
		h := &p.txb.hdrs[i].hdr
		h.Name = (*byte)(unsafe.Pointer(&p.txb.sa))
		h.Namelen = syscall.SizeofSockaddrInet4
		h.Iov = &p.txb.iovs[i]
		h.Iovlen = 1
	}
	p.txb.op.init(sysSendmmsg)
}

// osRetarget refreshes the raw sockaddr after SetPeerAddr.
func (p *Peer) osRetarget() {
	p.txb.sa = syscall.RawSockaddrInet4{
		Family: syscall.AF_INET,
		Port:   htons(p.ap.Port()),
		Addr:   p.ap.Addr().As4(),
	}
}

// osFlush transmits the pending batch with as few sendmmsg calls as the
// kernel allows (normally one; partial sends continue from where the
// kernel stopped). Returns the syscall count for the saved-syscalls
// accounting. Called with p.mu held.
func (p *Peer) osFlush() (syscalls int, err error) {
	n := p.n
	for i := 0; i < n; i++ {
		frame := p.slab[p.offs[i]:p.offs[i+1]]
		p.txb.iovs[i].Base = &frame[0]
		p.txb.iovs[i].Len = uint64(len(frame))
	}
	op := &p.txb.op
	op.hdrs = p.txb.hdrs
	sent := 0
	for sent < n {
		op.off, op.vlen = sent, n-sent
		syscalls++
		werr := p.c.rc.Write(op.fn)
		if werr != nil {
			return syscalls, werr
		}
		if op.errno != 0 {
			return syscalls, op.errno
		}
		if op.got <= 0 {
			return syscalls, syscall.EIO
		}
		sent += op.got
	}
	return syscalls, nil
}

// rxBatch is the carrier-wide preallocated recvmmsg state: one
// contiguous buffer block sliced per message, a sockaddr per slot.
type rxBatch struct {
	hdrs []mmsghdr
	iovs []syscall.Iovec
	sas  []syscall.RawSockaddrInet4
	bufs []byte
	op   mmsgOp
}

func (c *Carrier) osRxInit() {
	b, sz := c.batch, dataHdrLen+c.maxFrame
	r := &c.rxb
	r.hdrs = make([]mmsghdr, b)
	r.iovs = make([]syscall.Iovec, b)
	r.sas = make([]syscall.RawSockaddrInet4, b)
	r.bufs = make([]byte, b*sz)
	for i := range r.hdrs {
		buf := r.bufs[i*sz : (i+1)*sz]
		r.iovs[i] = syscall.Iovec{Base: &buf[0], Len: uint64(sz)}
		h := &r.hdrs[i].hdr
		h.Name = (*byte)(unsafe.Pointer(&r.sas[i]))
		h.Namelen = syscall.SizeofSockaddrInet4
		h.Iov = &r.iovs[i]
		h.Iovlen = 1
	}
	r.op.init(sysRecvmmsg)
	r.op.hdrs = r.hdrs
}

// osRecvOnce drains up to one full vector of datagrams in a single
// recvmmsg, dispatching each frame inline.
func (c *Carrier) osRecvOnce() (int, error) {
	r := &c.rxb
	op := &r.op
	op.off, op.vlen = 0, len(r.hdrs)
	if err := c.rc.Read(op.fn); err != nil {
		return 0, err
	}
	if op.errno != 0 {
		return 0, op.errno
	}
	n := op.got
	c.rxBatches.Inc()
	sz := dataHdrLen + c.maxFrame
	for i := 0; i < n; i++ {
		sa := &r.sas[i]
		src := netip.AddrPortFrom(netip.AddrFrom4(sa.Addr), htons(sa.Port))
		c.dispatch(src, r.bufs[i*sz:i*sz+int(r.hdrs[i].n)])
		// The kernel wrote the actual namelen; restore full capacity for
		// the next vector.
		r.hdrs[i].hdr.Namelen = syscall.SizeofSockaddrInet4
	}
	return n, nil
}
