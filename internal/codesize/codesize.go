// Package codesize reproduces Table 2 of the paper: "Code sizes for
// principal components at a host". The paper reports lines of C
// (with comments) plus text/data/BSS segment sizes; this reproduction
// reports lines of Go (with comments) for the corresponding modules,
// printed beside the paper's line counts so the relative weight of the
// components can be compared. Segment sizes have no stable Go
// equivalent and are recorded in EXPERIMENTS.md as not reproduced.
package codesize

import (
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"strings"
)

// Row is one component of Table 2.
type Row struct {
	Component  string
	PaperLines int // lines of C, from Table 2
	GoLines    int // measured lines of Go (non-test)
	GoFiles    int
	Sources    []string // package dirs / files counted
}

// components maps the paper's Table 2 rows to this reproduction's
// modules. Paths are relative to the repository root; an entry may be a
// directory (all non-test .go files) or a single file.
var components = []Row{
	{Component: "Sighost", PaperLines: 1204, Sources: []string{"internal/signaling/sighost.go", "internal/sigmsg"}},
	{Component: "User lib", PaperLines: 373, Sources: []string{"internal/ulib"}},
	{Component: "/dev/anand", PaperLines: 382, Sources: []string{"internal/kern/pseudodev.go", "internal/anand"}},
	{Component: "PF_XUNET", PaperLines: 463, Sources: []string{"internal/pfxunet"}},
	{Component: "IPPROTO_ATM", PaperLines: 164, Sources: []string{"internal/protoatm"}},
	{Component: "Orc", PaperLines: 96, Sources: []string{"internal/hobbit"}},
}

// RepoRoot locates the repository root from this source file's
// location.
func RepoRoot() (string, error) {
	_, file, _, ok := runtime.Caller(0)
	if !ok {
		return "", fmt.Errorf("codesize: cannot locate source")
	}
	// file = <root>/internal/codesize/codesize.go
	root := filepath.Dir(filepath.Dir(filepath.Dir(file)))
	if _, err := os.Stat(filepath.Join(root, "go.mod")); err != nil {
		return "", fmt.Errorf("codesize: %s is not the repo root: %w", root, err)
	}
	return root, nil
}

// countFile counts lines in one Go source file.
func countFile(path string) (int, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return 0, err
	}
	n := strings.Count(string(data), "\n")
	if len(data) > 0 && !strings.HasSuffix(string(data), "\n") {
		n++
	}
	return n, nil
}

// countSource counts all non-test Go lines under a file or directory.
func countSource(root, src string) (lines, files int, err error) {
	full := filepath.Join(root, src)
	info, err := os.Stat(full)
	if err != nil {
		return 0, 0, err
	}
	if !info.IsDir() {
		n, err := countFile(full)
		return n, 1, err
	}
	entries, err := os.ReadDir(full)
	if err != nil {
		return 0, 0, err
	}
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") || strings.HasSuffix(name, "_test.go") {
			continue
		}
		n, err := countFile(filepath.Join(full, name))
		if err != nil {
			return 0, 0, err
		}
		lines += n
		files++
	}
	return lines, files, nil
}

// Measure counts every Table 2 component.
func Measure() ([]Row, error) {
	root, err := RepoRoot()
	if err != nil {
		return nil, err
	}
	rows := make([]Row, len(components))
	copy(rows, components)
	for i := range rows {
		for _, src := range rows[i].Sources {
			lines, files, err := countSource(root, src)
			if err != nil {
				return nil, fmt.Errorf("codesize: %s: %w", src, err)
			}
			rows[i].GoLines += lines
			rows[i].GoFiles += files
		}
	}
	return rows, nil
}

// Render formats the table in the layout of Table 2, with the paper's
// line counts beside the measured ones.
func Render(rows []Row) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-14s %12s %12s %8s\n", "Component", "Paper (C)", "Repro (Go)", "Files")
	var paperTotal, goTotal int
	for _, r := range rows {
		fmt.Fprintf(&b, "%-14s %12d %12d %8d\n", r.Component, r.PaperLines, r.GoLines, r.GoFiles)
		paperTotal += r.PaperLines
		goTotal += r.GoLines
	}
	fmt.Fprintf(&b, "%-14s %12d %12d\n", "Total", paperTotal, goTotal)
	return b.String()
}
