package codesize

import (
	"strings"
	"testing"
)

func TestRepoRoot(t *testing.T) {
	root, err := RepoRoot()
	if err != nil {
		t.Fatal(err)
	}
	if root == "" {
		t.Fatal("empty root")
	}
}

func TestMeasureAllComponentsNonEmpty(t *testing.T) {
	rows, err := Measure()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 6 {
		t.Fatalf("rows = %d, want the 6 components of Table 2", len(rows))
	}
	for _, r := range rows {
		if r.GoLines == 0 || r.GoFiles == 0 {
			t.Errorf("%s: measured %d lines in %d files", r.Component, r.GoLines, r.GoFiles)
		}
	}
}

func TestShapeMatchesPaper(t *testing.T) {
	// Table 2's shape: sighost is by far the largest component, and the
	// Orc driver and IPPROTO_ATM are among the smallest. Verify the
	// ordering relations the paper's table exhibits.
	rows, err := Measure()
	if err != nil {
		t.Fatal(err)
	}
	byName := map[string]Row{}
	for _, r := range rows {
		byName[r.Component] = r
	}
	sighost := byName["Sighost"].GoLines
	for name, r := range byName {
		if name == "Sighost" {
			continue
		}
		if r.GoLines >= sighost {
			t.Errorf("%s (%d lines) >= Sighost (%d): table shape broken", name, r.GoLines, sighost)
		}
	}
	if byName["IPPROTO_ATM"].GoLines >= byName["PF_XUNET"].GoLines+byName["Sighost"].GoLines {
		t.Error("IPPROTO_ATM unexpectedly dominant")
	}
}

func TestRender(t *testing.T) {
	rows, err := Measure()
	if err != nil {
		t.Fatal(err)
	}
	out := Render(rows)
	for _, want := range []string{"Sighost", "User lib", "/dev/anand", "PF_XUNET", "IPPROTO_ATM", "Orc", "Total", "1204"} {
		if !strings.Contains(out, want) {
			t.Errorf("render missing %q:\n%s", want, out)
		}
	}
}
