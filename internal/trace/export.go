// Exporters: Chrome trace-event JSON (loadable in Perfetto / chrome://
// tracing), a compact text tree, and the per-call latency-attribution
// report that reproduces the paper's setup-overhead breakdown (§6)
// from live spans instead of instrumented averages.
//
// Determinism contract: every rendering here is a pure function of the
// trace's spans, emitted in span-ID order with struct-ordered JSON
// fields, so two same-seed runs produce byte-identical output.
package trace

import (
	"encoding/json"
	"fmt"
	"sort"
	"strings"
	"time"
)

// chromeEvent is one trace-event record. Field order is the wire order
// (encoding/json emits struct fields in declaration order), and ts/dur
// are microseconds as the format requires.
type chromeEvent struct {
	Name string            `json:"name"`
	Cat  string            `json:"cat,omitempty"`
	Ph   string            `json:"ph"`
	Ts   float64           `json:"ts"`
	Dur  *float64          `json:"dur,omitempty"`
	Pid  uint64            `json:"pid"`
	Tid  int               `json:"tid"`
	Args map[string]string `json:"args,omitempty"`
}

type chromeFile struct {
	TraceEvents     []chromeEvent `json:"traceEvents"`
	DisplayTimeUnit string        `json:"displayTimeUnit"`
}

func usec(d time.Duration) float64 { return float64(d) / float64(time.Microsecond) }

// ChromeJSON renders traces as a single Chrome trace-event file. Each
// trace becomes one "process" (pid = trace ID); each component becomes
// one named "thread" within it, in first-seen span order. Complete
// events (ph "X") carry span and parent IDs in args so the causal tree
// survives the flat format.
func ChromeJSON(traces []*Trace) ([]byte, error) {
	var evs []chromeEvent
	for _, t := range traces {
		spans := append([]Span(nil), t.Spans...)
		sort.Slice(spans, func(i, j int) bool { return spans[i].ID < spans[j].ID })
		tids := map[string]int{}
		var comps []string
		for _, s := range spans {
			if _, ok := tids[s.Comp]; !ok {
				tids[s.Comp] = len(tids) + 1
				comps = append(comps, s.Comp)
			}
		}
		for _, comp := range comps {
			evs = append(evs, chromeEvent{
				Name: "thread_name", Ph: "M", Pid: t.ID, Tid: tids[comp],
				Args: map[string]string{"name": comp},
			})
		}
		evs = append(evs, chromeEvent{
			Name: "process_name", Ph: "M", Pid: t.ID, Tid: 0,
			Args: map[string]string{
				"name": fmt.Sprintf("call %d (%s, %s)", t.CallID, t.Name, t.Status),
			},
		})
		for _, s := range spans {
			dur := usec(s.Dur())
			ev := chromeEvent{
				Name: s.Name, Cat: s.Comp, Ph: "X",
				Ts: usec(s.Start), Dur: &dur,
				Pid: t.ID, Tid: tids[s.Comp],
				Args: map[string]string{
					"parent": fmt.Sprintf("%d", s.Parent),
					"span":   fmt.Sprintf("%d", s.ID),
				},
			}
			if s.End < 0 {
				// Still running (active trace queried mid-call): clamp
				// the duration so viewers don't see negative extents.
				dur = 0
				ev.Args["open"] = "true"
			}
			if s.Open {
				ev.Args["open"] = "true"
			}
			evs = append(evs, ev)
		}
	}
	return json.Marshal(chromeFile{TraceEvents: evs, DisplayTimeUnit: "ms"})
}

// TextTree renders a trace as an indented span tree, children ordered
// by start time then span ID.
func TextTree(t *Trace) string {
	var b strings.Builder
	fmt.Fprintf(&b, "trace %d call %d %q status=%s spans=%d\n",
		t.ID, t.CallID, t.Name, t.Status, len(t.Spans))
	kids := map[uint64][]Span{}
	ids := map[uint64]bool{}
	for _, s := range t.Spans {
		ids[s.ID] = true
	}
	var roots []Span
	for _, s := range t.Spans {
		if s.Parent != 0 && ids[s.Parent] {
			kids[s.Parent] = append(kids[s.Parent], s)
		} else {
			roots = append(roots, s)
		}
	}
	order := func(ss []Span) {
		sort.Slice(ss, func(i, j int) bool {
			if ss[i].Start != ss[j].Start {
				return ss[i].Start < ss[j].Start
			}
			return ss[i].ID < ss[j].ID
		})
	}
	order(roots)
	for id := range kids {
		order(kids[id])
	}
	var walk func(s Span, depth int)
	walk = func(s Span, depth int) {
		indent := strings.Repeat("  ", depth+1)
		if s.End < 0 {
			// Still running: an active trace queried mid-call.
			fmt.Fprintf(&b, "%s%s/%s [%v..) still open\n", indent, s.Comp, s.Name, s.Start)
		} else {
			open := ""
			if s.Open {
				open = " (never ended)"
			}
			fmt.Fprintf(&b, "%s%s/%s %v [%v..%v]%s\n",
				indent, s.Comp, s.Name, s.Dur(), s.Start, s.End, open)
		}
		for _, k := range kids[s.ID] {
			walk(k, depth+1)
		}
	}
	for _, r := range roots {
		walk(r, 0)
	}
	return b.String()
}

// AttrPart is one component of the setup-latency breakdown.
type AttrPart struct {
	Comp string
	Name string
	Dur  time.Duration
}

// Attribution is the per-call setup-overhead breakdown: the direct
// children of the "call.setup" span partition its duration, mirroring
// the paper's table of setup-cost components. Unattributed is whatever
// the children do not cover (zero when the partition is exact).
type Attribution struct {
	CallID       uint32
	Total        time.Duration
	Parts        []AttrPart
	Unattributed time.Duration
}

// SetupSpanName is the span whose children define the attribution
// report.
const SetupSpanName = "call.setup"

// Attribute derives the setup breakdown from a trace. Returns false if
// the trace has no call.setup span.
func Attribute(t *Trace) (Attribution, bool) {
	var setup *Span
	for i := range t.Spans {
		if t.Spans[i].Name == SetupSpanName {
			setup = &t.Spans[i]
			break
		}
	}
	if setup == nil || setup.End < 0 {
		// No setup span, or establishment is still in progress.
		return Attribution{}, false
	}
	a := Attribution{CallID: t.CallID, Total: setup.Dur()}
	var covered time.Duration
	var parts []Span
	for _, s := range t.Spans {
		if s.Parent == setup.ID {
			parts = append(parts, s)
		}
	}
	sort.Slice(parts, func(i, j int) bool {
		if parts[i].Start != parts[j].Start {
			return parts[i].Start < parts[j].Start
		}
		return parts[i].ID < parts[j].ID
	})
	for _, s := range parts {
		a.Parts = append(a.Parts, AttrPart{Comp: s.Comp, Name: s.Name, Dur: s.Dur()})
		covered += s.Dur()
	}
	a.Unattributed = a.Total - covered
	return a, true
}

// String renders the attribution as the paper-style breakdown table.
func (a Attribution) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "call %d setup breakdown (total %v):\n", a.CallID, a.Total)
	pct := func(d time.Duration) float64 {
		if a.Total <= 0 {
			return 0
		}
		return 100 * float64(d) / float64(a.Total)
	}
	for _, p := range a.Parts {
		fmt.Fprintf(&b, "  %-24s %12v %6.1f%%\n", p.Comp+"/"+p.Name, p.Dur, pct(p.Dur))
	}
	fmt.Fprintf(&b, "  %-24s %12v %6.1f%%\n", "unattributed", a.Unattributed, pct(a.Unattributed))
	return b.String()
}
