package trace

import (
	"testing"
	"time"
)

// BenchmarkTraceOverhead/disabled is the CI gate for the tracing
// bargain, the same budget internal/obs enforces: with the collector
// disabled a call site costs one nil check plus one atomic load, under
// 5 ns, so tracing compiled into the frame and cell hot paths cannot
// skew the stack's benchmarks. The unsampled case sizes the single
// Context.Sampled() branch hot paths pay for calls head-sampling
// rejected.
func BenchmarkTraceOverhead(b *testing.B) {
	var clock time.Duration
	now := func() time.Duration { return clock }
	b.Run("disabled", func(b *testing.B) {
		c := NewCollector(now)
		b.ReportAllocs()
		b.ResetTimer()
		var ctx Context
		for i := 0; i < b.N; i++ {
			ctx = c.StartTrace("sighost", "bench", uint32(i))
		}
		b.StopTimer()
		if ctx.Sampled() {
			b.Fatal("disabled collector sampled")
		}
		// Enforce the budget only on a real measurement run; the N=1
		// discovery run is all fixed overhead.
		if avg := float64(b.Elapsed().Nanoseconds()) / float64(b.N); b.N >= 1_000_000 && avg > 5 {
			b.Fatalf("disabled trace call site costs %.1f ns, budget is 5 ns", avg)
		}
	})
	b.Run("unsampled", func(b *testing.B) {
		c := NewCollector(now)
		c.SetEnabled(true)
		unsampled := Context{}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			c.Record(unsampled, "xswitch", "hop", 0, 1)
			c.EndSpan(unsampled)
		}
	})
	b.Run("sampled-record", func(b *testing.B) {
		c := NewCollector(now)
		c.SetEnabled(true)
		c.spanCap = b.N + 2
		root := c.StartTrace("sighost", "bench", 1)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			c.Record(root, "xswitch", "hop", 0, 1)
		}
	})
}

// TestUnsampledPathAllocs pins the enabled-but-unsampled contract:
// propagating a zero Context through StartSpan/Record/EndSpan allocates
// nothing, so head sampling really does shed load.
func TestUnsampledPathAllocs(t *testing.T) {
	var clock time.Duration
	c := NewCollector(func() time.Duration { return clock })
	c.SetEnabled(true)
	unsampled := Context{}
	allocs := testing.AllocsPerRun(1000, func() {
		child := c.StartSpan(unsampled, "pfxunet", "frame")
		c.Record(unsampled, "xswitch", "hop", 0, 1)
		c.EndSpan(child)
	})
	if allocs != 0 {
		t.Fatalf("unsampled path allocates %.1f allocs/op, want 0", allocs)
	}
}
