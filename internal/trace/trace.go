// Package trace is the causal tracing layer: Dapper-style span trees
// that follow one signaling call through every layer of the stack —
// ulib IPC, the sighost state machine, the /dev/anand indication path,
// PF_XUNET frame transmission, per-hop cell transit in the fabric, and
// AAL5-over-IP encapsulation. Spans are stamped with *sim time*, so a
// trace is a deterministic artifact: two same-seed runs export
// byte-identical trace JSON.
//
// The package rides on the same cost discipline as internal/obs: a
// disabled collector is a nil check plus one atomic load (under the
// 5 ns telemetry budget, gated by BenchmarkTraceOverhead), and when the
// collector is enabled but a call was not head-sampled, every operation
// is a single branch on Context.Sampled() with zero allocations (gated
// by TestUnsampledPathAllocs).
//
// Identifier assignment is deterministic: trace and span IDs come from
// per-collector counters, and in the simulator every mutation happens
// inside the single-threaded event loop, so IDs — and therefore
// exported JSON — are identical across same-seed runs. A mutex still
// guards all state past the gate checks, because the real-mode daemon
// (signaling.RealHost) finishes spans from multiple goroutines.
package trace

import (
	"sync"
	"sync/atomic"
	"time"
)

// Context identifies a position in a trace: the trace it belongs to and
// the span that is the current parent. The zero Context means
// "unsampled"; every operation on it is a no-op, which is what makes
// propagating contexts through hot paths free for unsampled calls.
type Context struct {
	Trace uint64
	Span  uint64
}

// Sampled reports whether this context belongs to a sampled trace.
func (c Context) Sampled() bool { return c.Trace != 0 }

// Span is one timed operation inside a trace. Start/End are sim-time
// offsets from the engine epoch. Open marks spans that were never
// explicitly ended and got force-closed when the trace finished — a
// debugging signal, not a normal state.
type Span struct {
	ID     uint64        `json:"id"`
	Parent uint64        `json:"parent"`
	Comp   string        `json:"comp"`
	Name   string        `json:"name"`
	Start  time.Duration `json:"start_ns"`
	End    time.Duration `json:"end_ns"`
	Open   bool          `json:"open,omitempty"`
}

// Dur returns the span's duration.
func (s Span) Dur() time.Duration { return s.End - s.Start }

// Trace is one call's complete span tree. Spans appear in creation
// order; the root span has Parent == 0.
type Trace struct {
	ID     uint64 `json:"id"`
	CallID uint32 `json:"call_id"`
	Name   string `json:"name"`
	Status string `json:"status"`
	Spans  []Span `json:"spans"`
}

// Terminal trace statuses. FinishTrace accepts any string, but the
// flight recorder auto-dumps only the failure family below.
const (
	StatusOK       = "OK"
	StatusReject   = "REJECT"
	StatusTimeout  = "TIMEOUT"
	StatusDeath    = "DEATH"
	StatusCanceled = "CANCELED"
	StatusFailed   = "FAILED"
)

// DumpWorthy reports whether a terminal status triggers an automatic
// flight-recorder dump: calls that ended in rejection, bind timeout, or
// teardown-on-death (the E4 storm's failure modes).
func DumpWorthy(status string) bool {
	return status == StatusReject || status == StatusTimeout || status == StatusDeath
}

// Collector owns trace state: in-flight traces keyed by trace ID, a
// bounded ring of completed traces (the flight recorder), and the
// head-sampling decision. One collector is shared by every machine in a
// testbed so a call's spans land in one tree regardless of which stack
// recorded them.
type Collector struct {
	enabled atomic.Bool
	now     func() time.Duration

	mu       sync.Mutex
	started  uint64 // traces started (sampled or not); also the trace ID source
	spanSeq  uint64 // span ID source
	sampleN  uint64 // keep 1 trace in every sampleN (1 = keep all)
	spanCap  int    // max spans retained per trace
	active   map[uint64]*Trace
	byCall   map[uint32]uint64 // call ID -> active trace ID
	flight   []*Trace          // completed traces, oldest first
	capacity int               // flight ring bound

	sampled      uint64 // traces that passed head sampling
	completed    uint64
	droppedSpans uint64 // spans discarded by the per-trace cap
	evicted      uint64 // completed traces pushed out of the flight ring
	dumps        uint64 // auto-dumps triggered by DumpWorthy statuses

	onDump func(t *Trace, tree string)
}

// DefaultFlightTraces bounds the flight recorder: completed traces kept
// for post-hoc inspection before the oldest is evicted.
const DefaultFlightTraces = 64

// DefaultSpanCap bounds one trace's span count; a call that somehow
// accumulates more (a data-heavy connection tracing every frame) drops
// the excess and counts it in trace.spans.dropped.
const DefaultSpanCap = 512

// NewCollector returns a disabled collector reading time from now
// (sim-time in the testbed, wall-clock in the real-mode daemon).
func NewCollector(now func() time.Duration) *Collector {
	return &Collector{
		now:      now,
		sampleN:  1,
		spanCap:  DefaultSpanCap,
		active:   make(map[uint64]*Trace),
		byCall:   make(map[uint32]uint64),
		capacity: DefaultFlightTraces,
	}
}

// SetEnabled flips the master gate. Disabled is the default and costs
// one nil check plus one atomic load per call site.
func (c *Collector) SetEnabled(on bool) { c.enabled.Store(on) }

// Enabled reports whether the collector records anything at all. Safe
// on a nil collector.
func (c *Collector) Enabled() bool { return c != nil && c.enabled.Load() }

// SetSampleEvery sets head-based sampling: keep one trace in every n.
// Values <= 1 keep every trace. Unsampled calls still count in
// trace.started but allocate nothing anywhere in the stack.
func (c *Collector) SetSampleEvery(n uint64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if n < 1 {
		n = 1
	}
	c.sampleN = n
}

// SetFlightCapacity resizes the completed-trace ring (minimum 1).
func (c *Collector) SetFlightCapacity(n int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if n < 1 {
		n = 1
	}
	c.capacity = n
	for len(c.flight) > c.capacity {
		c.flight = c.flight[1:]
		c.evicted++
	}
}

// OnDump installs the auto-dump hook: fn receives every DumpWorthy
// trace at finish time along with its rendered text tree.
func (c *Collector) OnDump(fn func(t *Trace, tree string)) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.onDump = fn
}

// DumpRecent pushes the newest n completed traces through the OnDump
// hook (regardless of status), tagging each with reason. Health
// watermark rules use it to snapshot what the flight recorder was
// holding when a rule fired. Returns how many traces were dumped.
func (c *Collector) DumpRecent(n int, reason string) int {
	if c == nil || n <= 0 {
		return 0
	}
	c.mu.Lock()
	dump := c.onDump
	if dump == nil {
		c.mu.Unlock()
		return 0
	}
	start := len(c.flight) - n
	if start < 0 {
		start = 0
	}
	picked := append([]*Trace(nil), c.flight[start:]...)
	c.dumps += uint64(len(picked))
	c.mu.Unlock()
	for _, t := range picked {
		dump(t, "DUMP reason="+reason+"\n"+TextTree(t))
	}
	return len(picked)
}

// StartTrace begins a new trace for a call, applying the head-sampling
// decision. The returned context is the root span; a zero context means
// the call was not sampled (or the collector is disabled) and every
// descendant operation will no-op.
func (c *Collector) StartTrace(comp, name string, callID uint32) Context {
	if !c.Enabled() {
		return Context{}
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	c.started++
	if c.sampleN > 1 && (c.started-1)%c.sampleN != 0 {
		return Context{}
	}
	c.sampled++
	c.spanSeq++
	t := &Trace{
		ID:     c.started,
		CallID: callID,
		Name:   name,
		Spans: []Span{{
			ID:    c.spanSeq,
			Comp:  comp,
			Name:  name,
			Start: c.now(),
			End:   -1,
		}},
	}
	c.active[t.ID] = t
	c.byCall[callID] = t.ID
	return Context{Trace: t.ID, Span: c.spanSeq}
}

// StartSpan opens a child span under parent starting now. Returns the
// child context, or zero if the parent is unsampled or the trace has
// hit its span cap.
func (c *Collector) StartSpan(parent Context, comp, name string) Context {
	if !parent.Sampled() || c == nil {
		return Context{}
	}
	return c.StartSpanAt(parent, comp, name, c.now())
}

// StartSpanAt is StartSpan with an explicit start time, for spans whose
// beginning was observed earlier than the code path that records them
// (e.g. a kernel indication stamped at post time).
func (c *Collector) StartSpanAt(parent Context, comp, name string, at time.Duration) Context {
	if !parent.Sampled() || c == nil {
		return Context{}
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	t := c.active[parent.Trace]
	if t == nil {
		return Context{}
	}
	if len(t.Spans) >= c.spanCap {
		c.droppedSpans++
		return Context{}
	}
	c.spanSeq++
	t.Spans = append(t.Spans, Span{
		ID:     c.spanSeq,
		Parent: parent.Span,
		Comp:   comp,
		Name:   name,
		Start:  at,
		End:    -1,
	})
	return Context{Trace: parent.Trace, Span: c.spanSeq}
}

// EndSpan closes the span identified by ctx at the current time.
func (c *Collector) EndSpan(ctx Context) {
	if !ctx.Sampled() || c == nil {
		return
	}
	c.EndSpanAt(ctx, c.now())
}

// EndSpanAt closes the span identified by ctx at an explicit time.
func (c *Collector) EndSpanAt(ctx Context, at time.Duration) {
	if !ctx.Sampled() || c == nil {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	t := c.active[ctx.Trace]
	if t == nil {
		return
	}
	for i := len(t.Spans) - 1; i >= 0; i-- {
		if t.Spans[i].ID == ctx.Span {
			t.Spans[i].End = at
			return
		}
	}
}

// Record appends an already-completed span under parent: the
// retroactive form used by hot paths that know an operation's start and
// end but must not allocate span state while it is in flight (cell
// transit, frame delivery, kernel indications).
func (c *Collector) Record(parent Context, comp, name string, start, end time.Duration) {
	if !parent.Sampled() || c == nil {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	t := c.active[parent.Trace]
	if t == nil {
		return
	}
	if len(t.Spans) >= c.spanCap {
		c.droppedSpans++
		return
	}
	c.spanSeq++
	t.Spans = append(t.Spans, Span{
		ID:     c.spanSeq,
		Parent: parent.Span,
		Comp:   comp,
		Name:   name,
		Start:  start,
		End:    end,
	})
}

// FinishTrace completes the trace owning root: force-closes any still
// open spans (marking them Open), stamps the terminal status, moves the
// trace into the flight recorder, and — for DumpWorthy statuses —
// fires the auto-dump hook with the rendered span tree.
func (c *Collector) FinishTrace(root Context, status string) {
	if !root.Sampled() || c == nil {
		return
	}
	now := c.now()
	c.mu.Lock()
	t := c.active[root.Trace]
	if t == nil {
		c.mu.Unlock()
		return
	}
	delete(c.active, root.Trace)
	if c.byCall[t.CallID] == t.ID {
		delete(c.byCall, t.CallID)
	}
	for i := range t.Spans {
		if t.Spans[i].End < 0 {
			t.Spans[i].End = now
			if t.Spans[i].ID != root.Span {
				t.Spans[i].Open = true
			}
		}
	}
	t.Status = status
	c.completed++
	c.flight = append(c.flight, t)
	for len(c.flight) > c.capacity {
		c.flight = c.flight[1:]
		c.evicted++
	}
	dump := c.onDump
	if dump != nil && DumpWorthy(status) {
		c.dumps++
	}
	c.mu.Unlock()
	if dump != nil && DumpWorthy(status) {
		dump(t, TextTree(t))
	}
}

// ByCall returns a copy of the trace for callID: the active trace if
// the call is still in flight, else the newest completed trace in the
// flight recorder with that call ID.
func (c *Collector) ByCall(callID uint32) (*Trace, bool) {
	if c == nil {
		return nil, false
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if id, ok := c.byCall[callID]; ok {
		if t := c.active[id]; t != nil {
			return copyTrace(t), true
		}
	}
	for i := len(c.flight) - 1; i >= 0; i-- {
		if c.flight[i].CallID == callID {
			return copyTrace(c.flight[i]), true
		}
	}
	return nil, false
}

// Completed returns copies of the flight recorder's contents, oldest
// first.
func (c *Collector) Completed() []*Trace {
	if c == nil {
		return nil
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]*Trace, len(c.flight))
	for i, t := range c.flight {
		out[i] = copyTrace(t)
	}
	return out
}

func copyTrace(t *Trace) *Trace {
	ct := *t
	ct.Spans = append([]Span(nil), t.Spans...)
	return &ct
}

// Stats is a point-in-time copy of the collector's health counters,
// surfaced on every machine's MGMT stats so truncation is visible.
type Stats struct {
	Started      uint64
	Sampled      uint64
	Completed    uint64
	Active       uint64
	DroppedSpans uint64
	Evicted      uint64
	Dumps        uint64
}

// StatsNow samples the counters.
func (c *Collector) StatsNow() Stats {
	if c == nil {
		return Stats{}
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return Stats{
		Started:      c.started,
		Sampled:      c.sampled,
		Completed:    c.completed,
		Active:       uint64(len(c.active)),
		DroppedSpans: c.droppedSpans,
		Evicted:      c.evicted,
		Dumps:        c.dumps,
	}
}
