package trace

import (
	"encoding/json"
	"strings"
	"sync"
	"testing"
	"time"
)

// fakeClock is a controllable time source for collector tests.
type fakeClock struct{ t time.Duration }

func (f *fakeClock) now() time.Duration { return f.t }

func newTestCollector() (*Collector, *fakeClock) {
	clk := &fakeClock{}
	c := NewCollector(clk.now)
	c.SetEnabled(true)
	return c, clk
}

func TestDisabledCollectorIsInert(t *testing.T) {
	clk := &fakeClock{}
	c := NewCollector(clk.now)
	if c.Enabled() {
		t.Fatal("new collector should start disabled")
	}
	if ctx := c.StartTrace("sighost", "call", 1); ctx.Sampled() {
		t.Fatalf("disabled collector sampled a trace: %+v", ctx)
	}
	var nilC *Collector
	if nilC.Enabled() {
		t.Fatal("nil collector claims enabled")
	}
	// Every operation must be a no-op on a nil collector and zero context.
	nilC.EndSpan(Context{})
	nilC.Record(Context{}, "x", "y", 0, 1)
	nilC.FinishTrace(Context{}, StatusOK)
	if _, ok := nilC.ByCall(1); ok {
		t.Fatal("nil collector returned a trace")
	}
}

func TestSpanTreeLifecycle(t *testing.T) {
	c, clk := newTestCollector()
	root := c.StartTrace("sighost", "echo", 7)
	if !root.Sampled() {
		t.Fatal("enabled collector did not sample")
	}
	clk.t = 10 * time.Millisecond
	child := c.StartSpan(root, "sighost", "call.setup")
	clk.t = 25 * time.Millisecond
	c.Record(child, "xswitch", "hop", 12*time.Millisecond, 20*time.Millisecond)
	c.EndSpan(child)
	clk.t = 30 * time.Millisecond
	c.FinishTrace(root, StatusOK)

	got, ok := c.ByCall(7)
	if !ok {
		t.Fatal("finished trace not found by call ID")
	}
	if got.Status != StatusOK || len(got.Spans) != 3 {
		t.Fatalf("unexpected trace: status=%s spans=%d", got.Status, len(got.Spans))
	}
	if got.Spans[0].Parent != 0 || got.Spans[1].Parent != got.Spans[0].ID || got.Spans[2].Parent != got.Spans[1].ID {
		t.Fatalf("parent links wrong: %+v", got.Spans)
	}
	if got.Spans[0].End != 30*time.Millisecond {
		t.Fatalf("root not force-closed at finish time: %v", got.Spans[0].End)
	}
	if got.Spans[0].Open {
		t.Fatal("root span must not be flagged Open")
	}
	if got.Spans[1].Dur() != 15*time.Millisecond {
		t.Fatalf("child duration %v, want 15ms", got.Spans[1].Dur())
	}
}

func TestHeadSampling(t *testing.T) {
	c, _ := newTestCollector()
	c.SetSampleEvery(3)
	var kept int
	for i := 0; i < 9; i++ {
		ctx := c.StartTrace("sighost", "call", uint32(100+i))
		if ctx.Sampled() {
			kept++
			c.FinishTrace(ctx, StatusOK)
		}
	}
	if kept != 3 {
		t.Fatalf("sampled %d of 9 with sampleEvery=3", kept)
	}
	st := c.StatsNow()
	if st.Started != 9 || st.Sampled != 3 || st.Completed != 3 {
		t.Fatalf("stats %+v", st)
	}
	// Descendant ops on an unsampled context must be inert.
	unsampled := Context{}
	if c.StartSpan(unsampled, "x", "y").Sampled() {
		t.Fatal("child of unsampled context got sampled")
	}
}

func TestSpanCapDropsExcess(t *testing.T) {
	c, _ := newTestCollector()
	c.spanCap = 4
	root := c.StartTrace("sighost", "call", 1)
	for i := 0; i < 10; i++ {
		c.Record(root, "xswitch", "hop", 0, 1)
	}
	c.FinishTrace(root, StatusOK)
	got, _ := c.ByCall(1)
	if len(got.Spans) != 4 {
		t.Fatalf("span cap not enforced: %d spans", len(got.Spans))
	}
	if st := c.StatsNow(); st.DroppedSpans != 7 {
		t.Fatalf("dropped %d spans, want 7", st.DroppedSpans)
	}
}

func TestFlightRecorderEvictionAndDump(t *testing.T) {
	c, _ := newTestCollector()
	c.SetFlightCapacity(2)
	var dumped []string
	c.OnDump(func(tr *Trace, tree string) {
		dumped = append(dumped, tree)
	})
	statuses := []string{StatusOK, StatusReject, StatusTimeout, StatusDeath, StatusCanceled}
	for i, s := range statuses {
		ctx := c.StartTrace("sighost", "call", uint32(i+1))
		c.FinishTrace(ctx, s)
	}
	if len(dumped) != 3 {
		t.Fatalf("auto-dumped %d traces, want REJECT+TIMEOUT+DEATH = 3", len(dumped))
	}
	for _, tree := range dumped {
		if !strings.Contains(tree, "status=") {
			t.Fatalf("dump is not a rendered tree: %q", tree)
		}
	}
	st := c.StatsNow()
	if st.Evicted != 3 || st.Dumps != 3 {
		t.Fatalf("stats %+v, want 3 evicted and 3 dumps", st)
	}
	if got := c.Completed(); len(got) != 2 || got[1].Status != StatusCanceled {
		t.Fatalf("flight ring should hold the last 2: %+v", got)
	}
	// The evicted early call is gone; the retained late one is findable.
	if _, ok := c.ByCall(1); ok {
		t.Fatal("evicted trace still findable")
	}
	if tr, ok := c.ByCall(5); !ok || tr.Status != StatusCanceled {
		t.Fatal("retained trace not findable by call ID")
	}
}

func TestByCallPrefersActive(t *testing.T) {
	c, _ := newTestCollector()
	old := c.StartTrace("sighost", "first", 9)
	c.FinishTrace(old, StatusOK)
	fresh := c.StartTrace("sighost", "second", 9)
	got, ok := c.ByCall(9)
	if !ok || got.ID != fresh.Trace || got.Name != "second" {
		t.Fatalf("ByCall should prefer the active trace: %+v", got)
	}
	// Returned trace is a copy: mutating it must not corrupt the live one.
	got.Spans[0].Name = "clobbered"
	again, _ := c.ByCall(9)
	if again.Spans[0].Name != "second" {
		t.Fatal("ByCall returned a live reference, not a copy")
	}
}

func TestChromeJSONSchema(t *testing.T) {
	c, clk := newTestCollector()
	root := c.StartTrace("sighost", "echo", 3)
	clk.t = time.Millisecond
	child := c.StartSpan(root, "pfxunet", "frame")
	clk.t = 2 * time.Millisecond
	c.EndSpan(child)
	c.FinishTrace(root, StatusOK)

	out, err := ChromeJSON(c.Completed())
	if err != nil {
		t.Fatal(err)
	}
	var f struct {
		TraceEvents []struct {
			Name string            `json:"name"`
			Ph   string            `json:"ph"`
			Pid  uint64            `json:"pid"`
			Args map[string]string `json:"args"`
		} `json:"traceEvents"`
		DisplayTimeUnit string `json:"displayTimeUnit"`
	}
	if err := json.Unmarshal(out, &f); err != nil {
		t.Fatalf("exporter output is not valid JSON: %v", err)
	}
	if f.DisplayTimeUnit != "ms" {
		t.Fatalf("displayTimeUnit %q", f.DisplayTimeUnit)
	}
	var spans, metas int
	for _, ev := range f.TraceEvents {
		switch ev.Ph {
		case "X":
			spans++
		case "M":
			metas++
		default:
			t.Fatalf("unexpected phase %q", ev.Ph)
		}
	}
	// 2 spans over 2 distinct comps: 2 X events, 2 thread_name + 1
	// process_name metadata events.
	if spans != 2 || metas != 3 {
		t.Fatalf("got %d span and %d metadata events", spans, metas)
	}
}

func TestTextTreeRendering(t *testing.T) {
	c, clk := newTestCollector()
	root := c.StartTrace("sighost", "echo", 11)
	child := c.StartSpan(root, "sighost", "call.setup")
	c.StartSpan(child, "pfxunet", "frame") // never ended: flagged open
	clk.t = time.Second
	c.EndSpan(child)
	c.FinishTrace(root, StatusOK)
	tr, _ := c.ByCall(11)
	tree := TextTree(tr)
	for _, want := range []string{
		`trace 1 call 11 "echo" status=OK spans=3`,
		"sighost/echo",
		"  sighost/call.setup",
		"    pfxunet/frame",
		"(never ended)",
	} {
		if !strings.Contains(tree, want) {
			t.Fatalf("tree missing %q:\n%s", want, tree)
		}
	}
}

func TestAttributeExactPartition(t *testing.T) {
	c, clk := newTestCollector()
	root := c.StartTrace("sighost", "echo", 4)
	setup := c.StartSpanAt(root, "sighost", SetupSpanName, 0)
	// Three back-to-back children partition the setup span exactly.
	c.Record(setup, "sighost", "process", 0, 10*time.Millisecond)
	peer := c.StartSpanAt(setup, "sighost", "peer", 10*time.Millisecond)
	c.EndSpanAt(peer, 70*time.Millisecond)
	c.Record(setup, "sighost", "program", 70*time.Millisecond, 100*time.Millisecond)
	c.EndSpanAt(setup, 100*time.Millisecond)
	clk.t = 150 * time.Millisecond
	c.FinishTrace(root, StatusOK)

	tr, _ := c.ByCall(4)
	att, ok := Attribute(tr)
	if !ok {
		t.Fatal("no call.setup span found")
	}
	if att.Total != 100*time.Millisecond {
		t.Fatalf("total %v", att.Total)
	}
	var sum time.Duration
	for _, p := range att.Parts {
		sum += p.Dur
	}
	if sum != att.Total || att.Unattributed != 0 {
		t.Fatalf("parts sum %v of total %v (unattributed %v)", sum, att.Total, att.Unattributed)
	}
	if s := att.String(); !strings.Contains(s, "sighost/process") || !strings.Contains(s, "60.0%") {
		t.Fatalf("report missing parts or percentages:\n%s", s)
	}
}

// TestConcurrentFinishVsDump is the -race gate: span updates, trace
// finishes, and flight-recorder reads race from many goroutines, as they
// do in the real-mode daemon where timers and the actor are separate
// goroutines.
func TestConcurrentFinishVsDump(t *testing.T) {
	c, _ := newTestCollector()
	c.OnDump(func(tr *Trace, tree string) { _ = len(tree) })
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		g := g
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				callID := uint32(g*1000 + i)
				root := c.StartTrace("sighost", "race", callID)
				child := c.StartSpan(root, "pfxunet", "frame")
				c.EndSpan(child)
				status := StatusOK
				if i%3 == 0 {
					status = StatusDeath
				}
				c.FinishTrace(root, status)
			}
		}()
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 400; i++ {
			for _, tr := range c.Completed() {
				_ = TextTree(tr)
			}
			_, _ = c.ByCall(uint32(i))
			_ = c.StatsNow()
		}
	}()
	wg.Wait()
	if st := c.StatsNow(); st.Completed != 8*200 {
		t.Fatalf("completed %d traces, want 1600", st.Completed)
	}
}
