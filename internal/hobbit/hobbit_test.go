package hobbit

import (
	"bytes"
	"errors"
	"testing"
	"testing/quick"

	"xunet/internal/atm"
	"xunet/internal/cost"
	"xunet/internal/mbuf"
)

// loopTx loops transmitted cells straight back into a receiving board,
// optionally mangling the stream.
type loopTx struct {
	rx      *Board
	dropIdx int // drop the cell at this index (-1 none)
	n       int
	held    []atm.Cell // cells held back for reordering
	holdEOF bool
}

func (l *loopTx) SendCell(c atm.Cell) {
	idx := l.n
	l.n++
	if idx == l.dropIdx {
		return
	}
	l.rx.ReceiveCell(c)
}

func pay(n int) []byte {
	p := make([]byte, n)
	for i := range p {
		p[i] = byte(i * 13)
	}
	return p
}

// pair builds a sender driver+board looped to a receiver driver+board.
func pair(t *testing.T) (*Driver, *Driver, *loopTx) {
	t.Helper()
	rxMeter := cost.NewMeter()
	rxDrv := NewDriver(rxMeter)
	lt := &loopTx{dropIdx: -1}
	rxBoard := NewBoard(nil)
	rxDrv.AttachBoard(rxBoard)
	lt.rx = rxBoard
	txDrv := NewDriver(cost.NewMeter())
	txDrv.AttachBoard(NewBoard(lt))
	return txDrv, rxDrv, lt
}

func TestSendReceiveRoundTrip(t *testing.T) {
	tx, rx, _ := pair(t)
	var got []byte
	var gotVCI atm.VCI
	rx.SetHandler(77, func(vci atm.VCI, frame *mbuf.Chain) {
		gotVCI, got = vci, frame.Bytes()
	})
	if err := tx.Output(77, mbuf.FromBytes(pay(1500))); err != nil {
		t.Fatal(err)
	}
	if gotVCI != 77 || !bytes.Equal(got, pay(1500)) {
		t.Fatalf("vci=%v len=%d", gotVCI, len(got))
	}
	b := tx.Board()
	if b.FramesOut != 1 || b.CellsOut == 0 {
		t.Fatalf("tx counters frames=%d cells=%d", b.FramesOut, b.CellsOut)
	}
	rb := rx.Board()
	if rb.FramesIn != 1 || rb.CellsIn != b.CellsOut {
		t.Fatalf("rx counters frames=%d cells=%d", rb.FramesIn, rb.CellsIn)
	}
}

func TestEmptyFrame(t *testing.T) {
	tx, rx, _ := pair(t)
	var calls int
	var got []byte
	rx.SetHandler(1, func(_ atm.VCI, frame *mbuf.Chain) {
		calls++
		got = frame.Bytes()
	})
	if err := tx.Output(1, mbuf.Empty()); err != nil {
		t.Fatal(err)
	}
	if calls != 1 || len(got) != 0 {
		t.Fatalf("calls=%d len=%d", calls, len(got))
	}
}

func TestDroppedCellDetected(t *testing.T) {
	tx, rx, lt := pair(t)
	lt.dropIdx = 1
	delivered := false
	rx.SetHandler(5, func(atm.VCI, *mbuf.Chain) { delivered = true })
	if err := tx.Output(5, mbuf.FromBytes(pay(500))); err != nil {
		t.Fatal(err)
	}
	if delivered {
		t.Fatal("frame with missing cell delivered")
	}
	if rx.Board().SARErrors != 1 {
		t.Fatalf("SARErrors = %d", rx.Board().SARErrors)
	}
}

func TestLostFrameDetectedBySequence(t *testing.T) {
	tx, rx, lt := pair(t)
	var frames int
	rx.SetHandler(5, func(atm.VCI, *mbuf.Chain) { frames++ })
	// Frame 0 delivered, frame 1 entirely lost, frame 2 delivered.
	_ = tx.Output(5, mbuf.FromBytes(pay(48)))
	lt.dropIdx = lt.n // drop every cell of the next (single-cell) frame
	_ = tx.Output(5, mbuf.FromBytes(pay(10)))
	lt.dropIdx = -1
	_ = tx.Output(5, mbuf.FromBytes(pay(48)))
	if frames != 2 {
		t.Fatalf("frames = %d", frames)
	}
	if rx.Board().OOOFrames != 1 {
		t.Fatalf("OOOFrames = %d, want 1 (gap detected)", rx.Board().OOOFrames)
	}
}

func TestNoHandlerDiscards(t *testing.T) {
	tx, rx, _ := pair(t)
	_ = tx.Output(9, mbuf.FromBytes(pay(10)))
	if rx.DiscardedNoHandler != 1 {
		t.Fatalf("DiscardedNoHandler = %d", rx.DiscardedNoHandler)
	}
}

func TestShutDiscardsAndOutputs(t *testing.T) {
	tx, rx, _ := pair(t)
	delivered := 0
	rx.SetHandler(4, func(atm.VCI, *mbuf.Chain) { delivered++ })
	_ = tx.Output(4, mbuf.FromBytes(pay(10)))
	rx.Shut(4)
	_ = tx.Output(4, mbuf.FromBytes(pay(10)))
	if delivered != 1 {
		t.Fatalf("delivered = %d", delivered)
	}
	if rx.DiscardedShut != 1 {
		t.Fatalf("DiscardedShut = %d", rx.DiscardedShut)
	}
	// Output on a locally shut VCI is refused.
	tx.Shut(4)
	if err := tx.Output(4, mbuf.FromBytes(pay(1))); !errors.Is(err, ErrShutVCI) {
		t.Fatalf("err = %v", err)
	}
	// SetHandler reopens the VCI.
	rx.SetHandler(4, func(atm.VCI, *mbuf.Chain) { delivered++ })
	tx.ClearVC(4)
	// Sequence state was reset on both sides by Shut/ClearVC; frame
	// delivery resumes.
	if err := tx.Output(4, mbuf.FromBytes(pay(10))); err != nil {
		t.Fatal(err)
	}
	if delivered != 2 {
		t.Fatalf("delivered after reopen = %d", delivered)
	}
}

func TestHostDriverUsesEncap(t *testing.T) {
	d := NewDriver(cost.NewMeter())
	var gotVCI atm.VCI
	var got []byte
	d.SetEncap(func(vci atm.VCI, frame *mbuf.Chain) error {
		gotVCI, got = vci, frame.Bytes()
		return nil
	})
	if err := d.Output(3, mbuf.FromBytes(pay(100))); err != nil {
		t.Fatal(err)
	}
	if gotVCI != 3 || !bytes.Equal(got, pay(100)) {
		t.Fatal("encap not invoked with frame")
	}
	if d.Board() != nil {
		t.Fatal("host driver has a board")
	}
}

func TestNoBackend(t *testing.T) {
	d := NewDriver(nil)
	if err := d.Output(1, mbuf.Empty()); !errors.Is(err, ErrNoBackend) {
		t.Fatalf("err = %v", err)
	}
}

func TestInputChargesOrcCost(t *testing.T) {
	m := cost.NewMeter()
	d := NewDriver(m)
	d.SetHandler(1, func(atm.VCI, *mbuf.Chain) {})
	d.Input(1, mbuf.Empty())
	if got := m.Count(cost.OrcDriver); got != cost.OrcRecvDispatch {
		t.Fatalf("Orc cost = %d, want %d", got, cost.OrcRecvDispatch)
	}
}

func TestSendSideCostsNothing(t *testing.T) {
	tx, rx, _ := pair(t)
	rx.SetHandler(2, func(atm.VCI, *mbuf.Chain) {})
	before := tx.Meter.Snapshot()
	_ = tx.Output(2, mbuf.FromBytes(pay(5000)))
	d := tx.Meter.Snapshot().Sub(before)
	if d.Total() != 0 {
		t.Fatalf("send path charged %v; Table 1 says the driver and board cost 0", d)
	}
}

func TestHandlerLookup(t *testing.T) {
	d := NewDriver(nil)
	if d.Handler(7) != nil {
		t.Fatal("phantom handler")
	}
	d.SetHandler(7, func(atm.VCI, *mbuf.Chain) {})
	if d.Handler(7) == nil {
		t.Fatal("handler not installed")
	}
	d.ClearVC(7)
	if d.Handler(7) != nil {
		t.Fatal("handler survived ClearVC")
	}
}

func TestInterleavedVCs(t *testing.T) {
	// Cells from two VCs interleave on the wire; reassembly keeps them
	// apart.
	rxDrv := NewDriver(cost.NewMeter())
	rxBoard := NewBoard(nil)
	rxDrv.AttachBoard(rxBoard)
	got := map[atm.VCI][]byte{}
	for _, v := range []atm.VCI{10, 11} {
		v := v
		rxDrv.SetHandler(v, func(vci atm.VCI, frame *mbuf.Chain) { got[vci] = frame.Bytes() })
	}
	// Build two frames by hand and interleave their cells.
	mk := func(vci atm.VCI, n int) []atm.Cell {
		d := NewDriver(cost.NewMeter())
		var cells []atm.Cell
		d.AttachBoard(NewBoard(cellFn(func(c atm.Cell) { cells = append(cells, c) })))
		_ = d.Output(vci, mbuf.FromBytes(pay(n)))
		return cells
	}
	a, b := mk(10, 300), mk(11, 300)
	for i := 0; i < len(a) || i < len(b); i++ {
		if i < len(a) {
			rxBoard.ReceiveCell(a[i])
		}
		if i < len(b) {
			rxBoard.ReceiveCell(b[i])
		}
	}
	if !bytes.Equal(got[10], pay(300)) || !bytes.Equal(got[11], pay(300)) {
		t.Fatal("interleaved VC frames corrupted")
	}
}

type cellFn func(c atm.Cell)

func (f cellFn) SendCell(c atm.Cell) { f(c) }

// Property: any payload round-trips through board SAR for any VCI.
func TestQuickBoardRoundTrip(t *testing.T) {
	f := func(data []byte, vci uint16) bool {
		if len(data) > 60000 {
			data = data[:60000]
		}
		tx := NewDriver(nil)
		rx := NewDriver(nil)
		rxb := NewBoard(nil)
		rx.AttachBoard(rxb)
		tx.AttachBoard(NewBoard(cellFn(rxb.ReceiveCell)))
		var got []byte
		ok := false
		rx.SetHandler(atm.VCI(vci), func(_ atm.VCI, frame *mbuf.Chain) {
			got = frame.Bytes()
			ok = true
		})
		if err := tx.Output(atm.VCI(vci), mbuf.FromBytes(data)); err != nil {
			return false
		}
		return ok && bytes.Equal(got, data)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}
