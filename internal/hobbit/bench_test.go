package hobbit

import (
	"testing"

	"xunet/internal/atm"
	"xunet/internal/cost"
	"xunet/internal/mbuf"
)

func BenchmarkBoardSAR1500(b *testing.B) {
	rx := NewDriver(cost.NewMeter())
	rxb := NewBoard(nil)
	rx.AttachBoard(rxb)
	tx := NewDriver(cost.NewMeter())
	tx.AttachBoard(NewBoard(cellFn(rxb.ReceiveCell)))
	delivered := 0
	rx.SetHandler(10, func(atm.VCI, *mbuf.Chain) { delivered++ })
	payload := make([]byte, 1500)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := tx.Output(10, mbuf.FromBytes(payload)); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	if delivered != b.N {
		b.Fatalf("delivered %d of %d", delivered, b.N)
	}
	b.SetBytes(1500)
}

func BenchmarkDriverDemux(b *testing.B) {
	d := NewDriver(cost.NewMeter())
	d.SetHandler(1, func(atm.VCI, *mbuf.Chain) {})
	frame := mbuf.FromBytes(make([]byte, 64))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		d.Input(1, frame)
	}
}
