// Package hobbit models the Hobbit ATM host-interface board and the Orc
// device driver that controls it (Berenbaum, Dixon, Iyengar and Keshav,
// "Design and Implementation of a Flexible ATM Host Interface for XUNET
// II", the paper's reference [2]).
//
// The split follows the paper exactly:
//
//   - The Board is the hardware SAR engine: it computes AAL5 trailers,
//     segments frames into cells, transmits them into the fabric, and
//     reassembles arriving cells per VCI. Because this work happens on
//     the board, it costs no host instructions.
//   - The Driver (Orc) is the thin kernel entry layer. On a router its
//     output path hands an mbuf chain straight to the board; on a host —
//     which has no board — it hands the *unsegmented frame without the
//     AAL5 trailer* to the IPPROTO_ATM encapsulation routine instead,
//     which is precisely how the paper ported PF_XUNET to non-ATM hosts
//     ("replace calls from the device driver to the Hobbit board with
//     calls to the encapsulation/decapsulation layer").
//   - The Driver also owns the per-VCI handler table the router kernel
//     uses to demultiplex arriving frames to either the local PF_XUNET
//     protocol or the IP re-encapsulation routine, and honours VCI_SHUT
//     by discarding further data on a VCI.
package hobbit

import (
	"errors"
	"fmt"
	"time"

	"xunet/internal/aal5"
	"xunet/internal/atm"
	"xunet/internal/cost"
	"xunet/internal/mbuf"
	"xunet/internal/obs"
)

// CellTx transmits cells into the ATM network (implemented by
// xswitch.Endpoint).
type CellTx interface {
	SendCell(c atm.Cell)
}

// FrameHandler consumes a frame received on a VCI. The chain is owned
// by the handler after the call.
type FrameHandler func(vci atm.VCI, frame *mbuf.Chain)

// FrameOutput transmits an unsegmented, trailerless frame toward the
// network on a host without a board (the IPPROTO_ATM encapsulation
// routine).
type FrameOutput func(vci atm.VCI, frame *mbuf.Chain) error

// Errors from the driver.
var (
	ErrNoBackend = errors.New("hobbit: driver has neither board nor encapsulation output")
	ErrShutVCI   = errors.New("hobbit: VCI has been shut")
)

// Board is the Hobbit host-interface hardware model.
type Board struct {
	tx     CellTx
	driver *Driver

	reasm map[atm.VCI]*aal5.Reassembler
	seqTx map[atm.VCI]byte
	seqRx map[atm.VCI]*aal5.SeqTracker

	// Instrumentation (nil until Instrument): first-cell timestamps per
	// in-flight frame feed the hobbit.reasm.time histogram.
	now        func() time.Duration
	reasmHist  *obs.Histogram
	reasmStart map[atm.VCI]time.Duration

	// Counters for experiments.
	CellsOut  uint64
	CellsIn   uint64
	FramesOut uint64
	FramesIn  uint64
	SARErrors uint64 // frames lost to cell loss/corruption within a frame
	OOOFrames uint64 // out-of-order frames detected by the Xunet variant
}

// NewBoard returns a board transmitting through tx. Call
// Driver.AttachBoard to connect it to its driver.
func NewBoard(tx CellTx) *Board {
	return &Board{
		tx:    tx,
		reasm: make(map[atm.VCI]*aal5.Reassembler),
		seqTx: make(map[atm.VCI]byte),
		seqRx: make(map[atm.VCI]*aal5.SeqTracker),
	}
}

// Instrument registers the board's metrics in reg and starts timing AAL5
// reassembly (first cell of a frame to completed PDU) on the clock now —
// the engine's virtual clock in the sim. SAR errors and out-of-order
// detections surface as read-through counters.
func (b *Board) Instrument(now func() time.Duration, reg *obs.Registry) {
	b.now = now
	b.reasmHist = reg.Histogram("hobbit.reasm.time")
	b.reasmStart = make(map[atm.VCI]time.Duration)
	reg.Func("hobbit.cells.in", func() uint64 { return b.CellsIn })
	reg.Func("hobbit.cells.out", func() uint64 { return b.CellsOut })
	reg.Func("hobbit.frames.in", func() uint64 { return b.FramesIn })
	reg.Func("hobbit.frames.out", func() uint64 { return b.FramesOut })
	reg.Func("hobbit.sar.errors", func() uint64 { return b.SARErrors })
	reg.Func("hobbit.frames.ooo", func() uint64 { return b.OOOFrames })
}

// Send builds the AAL5 frame for an mbuf chain and transmits its cells.
// This happens in board hardware: no host instructions are charged.
func (b *Board) Send(vci atm.VCI, frame *mbuf.Chain) error {
	seq := b.seqTx[vci]
	b.seqTx[vci] = seq + 1
	pdu, err := aal5.BuildFrame(frame.Bytes(), seq)
	if err != nil {
		return fmt.Errorf("hobbit: %w", err)
	}
	cells, err := aal5.Segment(pdu, 0, vci)
	if err != nil {
		return fmt.Errorf("hobbit: %w", err)
	}
	tc, tcAt := frame.TC, frame.TCAt
	frame.Release() // segmented into cells; the chain is consumed
	b.FramesOut++
	for i := range cells {
		b.CellsOut++
		if tc.Sampled() {
			cells[i].TC, cells[i].TCAt = tc, tcAt
		}
		b.tx.SendCell(cells[i])
	}
	return nil
}

// ReceiveCell implements the fabric's CellSink: cells are reassembled
// per VCI; completed frames are sequence-checked and handed to the
// driver's demultiplexer.
func (b *Board) ReceiveCell(c atm.Cell) {
	b.CellsIn++
	r := b.reasm[c.VCI]
	if r == nil {
		r = aal5.NewReassembler(0)
		b.reasm[c.VCI] = r
	}
	if b.now != nil && r.Pending() == 0 {
		b.reasmStart[c.VCI] = b.now()
	}
	payload, uu, done, err := r.Push(&c)
	if !done {
		return
	}
	if b.now != nil {
		if start, ok := b.reasmStart[c.VCI]; ok {
			b.reasmHist.Observe(b.now() - start)
			delete(b.reasmStart, c.VCI)
		}
	}
	if err != nil {
		b.SARErrors++
		return
	}
	t := b.seqRx[c.VCI]
	if t == nil {
		t = &aal5.SeqTracker{}
		b.seqRx[c.VCI] = t
	}
	if ok, _ := t.Check(uu); !ok {
		// The Xunet AAL5 variant detects the gap; the frame itself is
		// still intact, so it is delivered and the event counted.
		b.OOOFrames++
	}
	b.FramesIn++
	if b.driver != nil {
		chain := mbuf.FromBytes(payload)
		if c.TC.Sampled() {
			chain.TC = c.TC
			if b.now != nil {
				chain.TCAt = b.now()
			}
		}
		b.driver.Input(c.VCI, chain)
	}
}

// ResetVC discards reassembly and sequence state for a torn-down VC.
func (b *Board) ResetVC(vci atm.VCI) {
	delete(b.reasm, vci)
	delete(b.seqRx, vci)
	delete(b.seqTx, vci)
}

// Driver is the Orc device driver.
type Driver struct {
	Meter *cost.Meter

	board *Board
	encap FrameOutput

	handlers map[atm.VCI]FrameHandler
	shut     map[atm.VCI]bool

	// DiscardedNoHandler counts frames that arrived on a VCI with no
	// registered handler; DiscardedShut counts frames dropped after
	// VCI_SHUT.
	DiscardedNoHandler uint64
	DiscardedShut      uint64
}

// NewDriver returns a driver with no backend; attach a board (router)
// or an encapsulation output (host) before sending.
func NewDriver(meter *cost.Meter) *Driver {
	return &Driver{
		Meter:    meter,
		handlers: make(map[atm.VCI]FrameHandler),
		shut:     make(map[atm.VCI]bool),
	}
}

// AttachBoard wires a Hobbit board to this driver (router
// configuration).
func (d *Driver) AttachBoard(b *Board) {
	d.board = b
	b.driver = d
}

// SetEncap wires the IPPROTO_ATM encapsulation routine as the output
// backend (host configuration).
func (d *Driver) SetEncap(out FrameOutput) { d.encap = out }

// Board returns the attached board, or nil on a host.
func (d *Driver) Board() *Board { return d.board }

// Output transmits a frame on a VCI. On a router this reaches the
// board; on a host, the encapsulation layer. Matching Table 1, the
// driver send path itself costs nothing: it "simply calls the next
// layer down without touching the data or the header".
func (d *Driver) Output(vci atm.VCI, frame *mbuf.Chain) error {
	if d.shut[vci] {
		return ErrShutVCI
	}
	if d.board != nil {
		return d.board.Send(vci, frame)
	}
	if d.encap != nil {
		return d.encap(vci, frame)
	}
	return ErrNoBackend
}

// Input demultiplexes a received frame by VCI, charging the Table 1 Orc
// receive dispatch cost.
func (d *Driver) Input(vci atm.VCI, frame *mbuf.Chain) {
	d.Meter.Charge(cost.OrcDriver, cost.OrcRecvDispatch)
	if d.shut[vci] {
		d.DiscardedShut++
		frame.Release()
		return
	}
	h := d.handlers[vci]
	if h == nil {
		d.DiscardedNoHandler++
		frame.Release()
		return
	}
	h(vci, frame)
}

// SetHandler installs the receive handler for a VCI, clearing any shut
// mark.
func (d *Driver) SetHandler(vci atm.VCI, h FrameHandler) {
	d.handlers[vci] = h
	delete(d.shut, vci)
}

// Handler returns the installed handler for a VCI, or nil.
func (d *Driver) Handler(vci atm.VCI) FrameHandler { return d.handlers[vci] }

// Shut honours a VCI_SHUT: the handler is removed and any further data
// arriving on the VCI is discarded. Board-side SAR state is reset.
func (d *Driver) Shut(vci atm.VCI) {
	delete(d.handlers, vci)
	d.shut[vci] = true
	if d.board != nil {
		d.board.ResetVC(vci)
	}
}

// ClearVC removes all state for a VCI (orderly teardown, as opposed to
// Shut's discard mode).
func (d *Driver) ClearVC(vci atm.VCI) {
	delete(d.handlers, vci)
	delete(d.shut, vci)
	if d.board != nil {
		d.board.ResetVC(vci)
	}
}
