package protoatm_test

import (
	"bytes"
	"errors"
	"testing"
	"time"

	"xunet/internal/core"
	"xunet/internal/cost"
	"xunet/internal/kern"
	"xunet/internal/mbuf"
	"xunet/internal/memnet"
	"xunet/internal/protoatm"
	"xunet/internal/qos"
	"xunet/internal/sim"
	"xunet/internal/xswitch"
)

// rig builds the full §7.4 picture:
//
//	hostA --FDDI-- routerA ==ATM testbed== routerB --FDDI-- hostB
type rig struct {
	e            *sim.Engine
	net          *memnet.Network
	fab          *xswitch.Fabric
	hostA, hostB *core.Stack
	ra, rb       *core.Stack
}

func newRig(t *testing.T) *rig {
	t.Helper()
	e := sim.New(1)
	cm := sim.DefaultCostModel()
	fab := xswitch.NewFabric(e)
	swA, swB := xswitch.Testbed(fab)
	n := memnet.New(e)
	ipHA := n.MustAddNode("hostA", memnet.IP4(10, 0, 0, 10))
	ipRA := n.MustAddNode("mh.rt", memnet.IP4(10, 0, 0, 1))
	ipRB := n.MustAddNode("ucb.rt", memnet.IP4(10, 0, 1, 1))
	ipHB := n.MustAddNode("hostB", memnet.IP4(10, 0, 1, 10))
	n.Connect(ipHA, ipRA, memnet.FDDI())
	n.Connect(ipHB, ipRB, memnet.FDDI())
	ipHA.SetDefaultRoute(ipRA)
	ipHB.SetDefaultRoute(ipRB)
	ipRA.AddRoute(ipHA.Addr, ipHA)
	ipRB.AddRoute(ipHB.Addr, ipHB)

	ra, err := core.NewRouter(e, cm, core.RouterConfig{Name: "mh.rt", Addr: "mh.rt", IP: ipRA, Fabric: fab, Switch: swA})
	if err != nil {
		t.Fatal(err)
	}
	rb, err := core.NewRouter(e, cm, core.RouterConfig{Name: "ucb.rt", Addr: "ucb.rt", IP: ipRB, Fabric: fab, Switch: swB})
	if err != nil {
		t.Fatal(err)
	}
	hostA := core.NewHost(e, cm, core.HostConfig{Name: "hostA", Addr: "mh.hostA", IP: ipHA, RouterIP: ipRA.Addr})
	hostB := core.NewHost(e, cm, core.HostConfig{Name: "hostB", Addr: "ucb.hostB", IP: ipHB, RouterIP: ipRB.Addr})
	return &rig{e: e, net: n, fab: fab, hostA: hostA, hostB: hostB, ra: ra, rb: rb}
}

// provision sets up a VC from routerA to routerB and binds the remote
// end to hostB (the VCI_BIND that anand server issues).
func (r *rig) provision(t *testing.T) *xswitch.VC {
	t.Helper()
	vc, err := r.fab.SetupVC("mh.rt", "ucb.rt", qos.BestEffortQoS)
	if err != nil {
		t.Fatal(err)
	}
	r.rb.ATM.VCIBind(vc.DstVCI, r.hostB.M.IP.Addr)
	return vc
}

func TestHostToHostAcrossATM(t *testing.T) {
	r := newRig(t)
	vc := r.provision(t)
	var got []byte
	r.hostB.Spawn("server", func(p *kern.Proc) {
		s, _ := r.hostB.PF.Socket(p)
		_ = s.Bind(vc.DstVCI, 0)
		got, _ = s.Recv()
	})
	r.hostA.Spawn("client", func(p *kern.Proc) {
		s, _ := r.hostA.PF.Socket(p)
		_ = s.Connect(vc.SrcVCI, 0)
		_ = s.Send([]byte("ATM everywhere"))
	})
	r.e.Run()
	if string(got) != "ATM everywhere" {
		t.Fatalf("got %q", got)
	}
	// The router switched exactly one encapsulated packet into the ATM
	// network, and the remote router re-encapsulated one out of it.
	if r.ra.ATM.Switched != 1 {
		t.Fatalf("routerA switched = %d", r.ra.ATM.Switched)
	}
	if r.rb.ATM.ReEncapsulated != 1 {
		t.Fatalf("routerB re-encapsulated = %d", r.rb.ATM.ReEncapsulated)
	}
	// Data really crossed the fabric as cells.
	sent, _ := r.fab.TrunkStats()
	if sent == 0 {
		t.Fatal("no cells crossed the fabric")
	}
}

func TestHostToRouterApplication(t *testing.T) {
	// Host client to an application running on the remote router: the
	// remote router's own PF_XUNET consumes the frames (no re-encap).
	r := newRig(t)
	vc, err := r.fab.SetupVC("mh.rt", "ucb.rt", qos.BestEffortQoS)
	if err != nil {
		t.Fatal(err)
	}
	var got []byte
	r.rb.Spawn("server", func(p *kern.Proc) {
		s, _ := r.rb.PF.Socket(p)
		_ = s.Bind(vc.DstVCI, 0)
		got, _ = s.Recv()
	})
	r.hostA.Spawn("client", func(p *kern.Proc) {
		s, _ := r.hostA.PF.Socket(p)
		_ = s.Connect(vc.SrcVCI, 0)
		_ = s.Send([]byte("to router app"))
	})
	r.e.Run()
	if string(got) != "to router app" {
		t.Fatalf("got %q", got)
	}
}

func TestRouterToHost(t *testing.T) {
	r := newRig(t)
	vc := r.provision(t)
	var got []byte
	r.hostB.Spawn("server", func(p *kern.Proc) {
		s, _ := r.hostB.PF.Socket(p)
		_ = s.Bind(vc.DstVCI, 0)
		got, _ = s.Recv()
	})
	r.ra.Spawn("client", func(p *kern.Proc) {
		s, _ := r.ra.PF.Socket(p)
		_ = s.Connect(vc.SrcVCI, 0)
		_ = s.Send([]byte("router to host"))
	})
	r.e.Run()
	if string(got) != "router to host" {
		t.Fatalf("got %q", got)
	}
}

func TestEncapWithoutRouterConfigured(t *testing.T) {
	e := sim.New(1)
	n := memnet.New(e)
	ip := n.MustAddNode("lone", memnet.IP4(1, 1, 1, 1))
	h := core.NewHost(e, sim.DefaultCostModel(), core.HostConfig{Name: "lone", Addr: "lone", IP: ip})
	err := h.ATM.Encap(40, mbuf.FromBytes([]byte("x")))
	if !errors.Is(err, protoatm.ErrNoRouter) {
		t.Fatalf("err = %v", err)
	}
}

func TestReconfigureRouter(t *testing.T) {
	r := newRig(t)
	if r.hostA.ATM.RouterIP() != r.ra.M.IP.Addr {
		t.Fatal("initial router config wrong")
	}
	r.hostA.ATM.ConfigureRouter(r.rb.M.IP.Addr)
	if r.hostA.ATM.RouterIP() != r.rb.M.IP.Addr {
		t.Fatal("reconfigure failed")
	}
}

func TestVCIShutDiscardsForwarding(t *testing.T) {
	r := newRig(t)
	vc := r.provision(t)
	delivered := 0
	r.hostB.Spawn("server", func(p *kern.Proc) {
		s, _ := r.hostB.PF.Socket(p)
		_ = s.Bind(vc.DstVCI, 0)
		for {
			if _, err := s.Recv(); err != nil {
				return
			}
			delivered++
		}
	})
	r.hostA.Spawn("client", func(p *kern.Proc) {
		s, _ := r.hostA.PF.Socket(p)
		_ = s.Connect(vc.SrcVCI, 0)
		_ = s.Send([]byte("one"))
		p.SP.Sleep(50 * time.Millisecond)
		r.rb.ATM.VCIShut(vc.DstVCI)
		_ = s.Send([]byte("two"))
		p.SP.Sleep(50 * time.Millisecond)
	})
	r.e.Run()
	if delivered != 1 {
		t.Fatalf("delivered = %d, want 1", delivered)
	}
	if !r.rb.ATM.Bound(vc.DstVCI) == false {
		t.Fatal("binding survived shut")
	}
	if r.rb.M.Orc.DiscardedShut != 1 {
		t.Fatalf("DiscardedShut = %d", r.rb.M.Orc.DiscardedShut)
	}
	r.e.Shutdown()
}

func TestSequenceDetectionOnReorderingPath(t *testing.T) {
	r := newRig(t)
	vc := r.provision(t)
	// Make the hostA->routerA FDDI segment reorder aggressively.
	r.hostA.M.IP.LinkTo(r.ra.M.IP).SetReorder(0.5, 3*time.Millisecond)
	received := 0
	r.hostB.Spawn("server", func(p *kern.Proc) {
		s, _ := r.hostB.PF.Socket(p)
		_ = s.Bind(vc.DstVCI, 0)
		for {
			if _, err := s.Recv(); err != nil {
				return
			}
			received++
		}
	})
	r.hostA.Spawn("client", func(p *kern.Proc) {
		s, _ := r.hostA.PF.Socket(p)
		_ = s.Connect(vc.SrcVCI, 0)
		for i := 0; i < 40; i++ {
			_ = s.Send([]byte{byte(i)})
			p.SP.Sleep(time.Millisecond)
		}
	})
	r.e.RunUntil(5 * time.Second)
	if received == 0 {
		t.Fatal("nothing received")
	}
	if r.ra.ATM.OutOfOrder == 0 {
		t.Fatal("reordering not detected by sequence numbers")
	}
	r.e.Shutdown()
}

func TestHostSendCostsMatchTable1(t *testing.T) {
	r := newRig(t)
	vc := r.provision(t)
	payload := make([]byte, 3*mbuf.MLEN) // 3 mbufs
	r.hostA.Spawn("client", func(p *kern.Proc) {
		s, _ := r.hostA.PF.Socket(p)
		_ = s.Connect(vc.SrcVCI, 0)
		chain := mbuf.FromBytes(payload)
		mcount := chain.Count()
		before := r.hostA.M.Meter.Snapshot()
		_ = s.SendChain(chain)
		d := r.hostA.M.Meter.Snapshot().Sub(before)
		wantATM := int64(cost.ProtoATMSendFixed + cost.PerMbuf*mcount)
		if d[cost.ProtoATM] != wantATM {
			t.Errorf("IPPROTO_ATM send = %d, want %d", d[cost.ProtoATM], wantATM)
		}
		if d[cost.IP] != cost.IPSendCost {
			t.Errorf("IP send = %d, want %d", d[cost.IP], cost.IPSendCost)
		}
		if d[cost.PFXunet] != 0 || d[cost.OrcDriver] != 0 {
			t.Errorf("PF_XUNET/Orc send charged: %v", d)
		}
		// Total: 119 + 8*mbufs.
		if got, want := d.Total(), int64(119+8*mcount); got != want {
			t.Errorf("send total = %d, want %d", got, want)
		}
	})
	r.e.Run()
}

func TestHostReceiveCostsMatchTable1(t *testing.T) {
	r := newRig(t)
	vc := r.provision(t)
	var d cost.Snapshot
	var mcount int
	r.hostB.Spawn("server", func(p *kern.Proc) {
		s, _ := r.hostB.PF.Socket(p)
		_ = s.Bind(vc.DstVCI, 0)
		before := r.hostB.M.Meter.Snapshot()
		chain, err := s.RecvChain()
		if err != nil {
			t.Error(err)
			return
		}
		mcount = chain.Count()
		d = r.hostB.M.Meter.Snapshot().Sub(before)
	})
	r.hostA.Spawn("client", func(p *kern.Proc) {
		s, _ := r.hostA.PF.Socket(p)
		_ = s.Connect(vc.SrcVCI, 0)
		_ = s.Send(make([]byte, 500))
	})
	r.e.Run()
	if d == nil {
		t.Fatal("no measurement")
	}
	if d[cost.IP] != cost.IPRecvCost {
		t.Errorf("IP recv = %d, want %d", d[cost.IP], cost.IPRecvCost)
	}
	if d[cost.ProtoATM] != cost.ProtoATMRecvTotal {
		t.Errorf("IPPROTO_ATM recv = %d, want %d", d[cost.ProtoATM], cost.ProtoATMRecvTotal)
	}
	if d[cost.OrcDriver] != cost.OrcRecvDispatch {
		t.Errorf("Orc recv = %d, want %d", d[cost.OrcDriver], cost.OrcRecvDispatch)
	}
	wantPF := int64(cost.PFXunetRecvFixed + cost.PerMbuf*mcount)
	if d[cost.PFXunet] != wantPF {
		t.Errorf("PF_XUNET recv = %d, want %d", d[cost.PFXunet], wantPF)
	}
	// Total: 194 + 8*mbufs.
	if got, want := d.Total(), int64(194+8*mcount); got != want {
		t.Errorf("recv total = %d, want %d", got, want)
	}
}

func TestRouterSwitchingCostIs39(t *testing.T) {
	r := newRig(t)
	vc := r.provision(t)
	var d cost.Snapshot
	r.hostB.Spawn("server", func(p *kern.Proc) {
		s, _ := r.hostB.PF.Socket(p)
		_ = s.Bind(vc.DstVCI, 0)
		_, _ = s.Recv()
	})
	r.hostA.Spawn("client", func(p *kern.Proc) {
		s, _ := r.hostA.PF.Socket(p)
		_ = s.Connect(vc.SrcVCI, 0)
		before := r.ra.M.Meter.Snapshot()
		_ = s.Send(make([]byte, 200))
		p.SP.Sleep(100 * time.Millisecond)
		d = r.ra.M.Meter.Snapshot().Sub(before)
	})
	r.e.Run()
	if d == nil {
		t.Fatal("no measurement")
	}
	// §9: +39 instructions of IPPROTO_ATM work at the router, on top of
	// driver input and IP switching.
	if d[cost.ProtoATM] != cost.RouterSwitchTotal {
		t.Fatalf("router IPPROTO_ATM = %d, want %d", d[cost.ProtoATM], cost.RouterSwitchTotal)
	}
}

func TestUnprovisionedVCIFrameFromHostIsDropped(t *testing.T) {
	// A host sends on a VCI the fabric does not know: the router's
	// board emits cells that die at the first switch.
	r := newRig(t)
	r.hostA.Spawn("client", func(p *kern.Proc) {
		s, _ := r.hostA.PF.Socket(p)
		_ = s.Connect(777, 0)
		_ = s.Send([]byte("ghost"))
	})
	r.e.Run()
	if r.ra.ATM.Switched != 1 {
		t.Fatalf("switched = %d", r.ra.ATM.Switched)
	}
	// Cells became unroutable at the switch; no crash, no delivery.
}

func TestEncapHeaderPrependKeepsChainShort(t *testing.T) {
	// The encapsulation header must use the mbuf leading space, not
	// grow the chain (the per-mbuf costs depend on it).
	r := newRig(t)
	chain := mbuf.FromBytes(bytes.Repeat([]byte{1}, 64))
	count := chain.Count()
	after := -1
	r.hostA.Spawn("app", func(p *kern.Proc) {
		_ = r.hostA.ATM.Encap(40, chain)
		// Inspect before delivery: once consumed downstream, the chain
		// is released to the mbuf free list.
		after = chain.Count()
	})
	r.e.Run()
	if after != count {
		t.Fatalf("prepend grew chain from %d to %d mbufs", count, after)
	}
}
