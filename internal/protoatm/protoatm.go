// Package protoatm implements IPPROTO_ATM, the paper's raw-over-IP
// encapsulation protocol (§5.4, §7.4) that lets any host with IP
// connectivity send AAL frames into the Xunet ATM network.
//
// The encapsulation header carries exactly the paper's three fields —
// the sending node's ATM address, a sequence number to detect
// out-of-order packets, and the VCI — and deliberately has no checksum
// ("our IP links are over reliable FDDI links") and does no
// segmentation, so cell loss within a frame remains impossible on the
// IP path.
//
// Host side: the Orc driver's output routine calls Encap, and Decap
// feeds the driver's input routine. A configuration write sets the
// host's target router (the IP forwarding address for IPPROTO_ATM).
//
// Router side: Decap checks sequencing and hands the mbuf chain to the
// Orc driver along with the VCI — the Hobbit board does the AAL5
// trailer, segmentation and transmission. For the reverse flow, the
// router keeps a per-VCI IP destination table configured by VCI_BIND
// messages; the Orc handler for such VCIs is the encapsulation routine,
// re-encapsulating ATM data toward the remote host. VCI_SHUT clears the
// mappings and tells the driver to discard further data on the VCI.
package protoatm

import (
	"errors"
	"fmt"

	"xunet/internal/atm"
	"xunet/internal/cost"
	"xunet/internal/kern"
	"xunet/internal/mbuf"
	"xunet/internal/memnet"
)

// Errors from the encapsulation layer.
var (
	ErrNoRouter    = errors.New("protoatm: no target router configured")
	ErrNoBinding   = errors.New("protoatm: no IP destination bound for VCI")
	ErrBadHeader   = errors.New("protoatm: malformed encapsulation header")
	ErrBadChecksum = errors.New("protoatm: encapsulation header checksum mismatch")
	ErrAddrTooBig  = errors.New("protoatm: ATM address exceeds 255 bytes")
)

// header is the encapsulation header: source ATM address (length
// prefixed), sequence number, VCI, and — when the layer is configured
// for it — the header checksum the paper leaves as an option ("We do
// not currently have a header checksum field, since our IP links are
// over reliable FDDI links. A header checksum could be added to the
// encapsulation header if needed.").
type header struct {
	src atm.Addr
	seq uint32
	vci atm.VCI
}

// Header flag bits (first octet).
const flagChecksum = 0x01

func (h *header) encode(withChecksum bool) []byte {
	a := []byte(h.src)
	n := 2 + len(a) + 6
	if withChecksum {
		n += 2
	}
	out := make([]byte, n)
	if withChecksum {
		out[0] = flagChecksum
	}
	out[1] = byte(len(a))
	copy(out[2:], a)
	p := 2 + len(a)
	out[p], out[p+1], out[p+2], out[p+3] = byte(h.seq>>24), byte(h.seq>>16), byte(h.seq>>8), byte(h.seq)
	out[p+4], out[p+5] = byte(h.vci>>8), byte(h.vci)
	if withChecksum {
		ck := headerChecksum(out[:p+6])
		out[p+6], out[p+7] = byte(ck>>8), byte(ck)
	}
	return out
}

// headerChecksum is the 16-bit ones-complement sum over the header
// octets (the internet checksum the paper's option implies).
func headerChecksum(b []byte) uint16 {
	var sum uint32
	for i := 0; i+1 < len(b); i += 2 {
		sum += uint32(b[i])<<8 | uint32(b[i+1])
	}
	if len(b)%2 == 1 {
		sum += uint32(b[len(b)-1]) << 8
	}
	for sum>>16 != 0 {
		sum = sum&0xFFFF + sum>>16
	}
	return ^uint16(sum)
}

// decode parses a header from the front of b, returning the header size.
func decode(b []byte) (header, int, error) {
	if len(b) < 2 {
		return header{}, 0, ErrBadHeader
	}
	flags := b[0]
	alen := int(b[1])
	n := 2 + alen + 6
	if flags&flagChecksum != 0 {
		n += 2
	}
	if len(b) < n {
		return header{}, 0, ErrBadHeader
	}
	if flags&flagChecksum != 0 {
		want := uint16(b[n-2])<<8 | uint16(b[n-1])
		if headerChecksum(b[:n-2]) != want {
			return header{}, 0, ErrBadChecksum
		}
	}
	h := header{
		src: atm.Addr(b[2 : 2+alen]),
		seq: uint32(b[2+alen])<<24 | uint32(b[3+alen])<<16 | uint32(b[4+alen])<<8 | uint32(b[5+alen]),
		vci: atm.VCI(uint16(b[6+alen])<<8 | uint16(b[7+alen])),
	}
	return h, n, nil
}

// seqKey tracks sequencing per sending node per VCI.
type seqKey struct {
	src atm.Addr
	vci atm.VCI
}

// Mode selects host or router behaviour.
type Mode uint8

// Layer modes.
const (
	HostMode Mode = iota
	RouterMode
)

// Layer is the IPPROTO_ATM protocol instance on one machine.
type Layer struct {
	m         *kern.Machine
	localAddr atm.Addr
	mode      Mode

	// routerIP is the host's IP forwarding address for IPPROTO_ATM,
	// set by the configuration write.
	routerIP memnet.IPAddr

	// fwd is the router's per-VCI IP destination address table.
	fwd map[atm.VCI]memnet.IPAddr

	sendSeq map[atm.VCI]uint32
	recvSeq map[seqKey]uint32

	// checksum enables the optional header checksum on the send side;
	// receivers always verify when the flag bit is present.
	checksum bool

	// Counters for experiments.
	Encapsulated   uint64
	Decapsulated   uint64
	OutOfOrder     uint64
	Switched       uint64 // router: host->ATM transits
	ReEncapsulated uint64 // router: ATM->host transits
	Unbound        uint64 // router: frames for VCIs with no IP binding
	ChecksumErrors uint64 // headers rejected by the optional checksum
}

// New installs the layer on a machine in the given mode, binding the
// IPPROTO_ATM protocol number and (on hosts) wiring the Orc driver's
// output to the encapsulation routine.
func New(m *kern.Machine, localAddr atm.Addr, mode Mode) *Layer {
	l := &Layer{
		m:         m,
		localAddr: localAddr,
		mode:      mode,
		fwd:       make(map[atm.VCI]memnet.IPAddr),
		sendSeq:   make(map[atm.VCI]uint32),
		recvSeq:   make(map[seqKey]uint32),
	}
	m.IP.BindProto(memnet.ProtoATM, l.input)
	if mode == HostMode {
		m.Orc.SetEncap(l.Encap)
	}
	m.Obs.Func("protoatm.encapsulated", func() uint64 { return l.Encapsulated })
	m.Obs.Func("protoatm.decapsulated", func() uint64 { return l.Decapsulated })
	m.Obs.Func("protoatm.out_of_order", func() uint64 { return l.OutOfOrder })
	m.Obs.Func("protoatm.switched", func() uint64 { return l.Switched })
	m.Obs.Func("protoatm.reencapsulated", func() uint64 { return l.ReEncapsulated })
	m.Obs.Func("protoatm.unbound", func() uint64 { return l.Unbound })
	m.Obs.Func("protoatm.checksum_errors", func() uint64 { return l.ChecksumErrors })
	return l
}

// SetHeaderChecksum enables (or disables) the optional encapsulation
// header checksum on frames this layer sends. Verification on receive
// is driven by the header's own flag bit, so mixed deployments
// interoperate. The extra computation is charged to the meter.
func (l *Layer) SetHeaderChecksum(on bool) { l.checksum = on }

// ConfigureRouter sets the host's target router. In the original this
// is a message written to an IPPROTO_ATM socket whose destination
// address becomes the forwarding address; anand client does it at boot,
// and "this allows a host to reconfigure its target router easily".
func (l *Layer) ConfigureRouter(ip memnet.IPAddr) { l.routerIP = ip }

// RouterIP reports the configured forwarding address.
func (l *Layer) RouterIP() memnet.IPAddr { return l.routerIP }

// VCIBind installs a router's VCI-to-IP-destination mapping (the
// VCI_BIND message from anand server): data arriving on vci from the
// ATM network is re-encapsulated and forwarded to hostIP.
func (l *Layer) VCIBind(vci atm.VCI, hostIP memnet.IPAddr) {
	l.fwd[vci] = hostIP
	l.m.Orc.SetHandler(vci, func(v atm.VCI, frame *mbuf.Chain) {
		if err := l.reEncap(v, frame); err != nil {
			l.Unbound++
		}
	})
}

// VCIShut clears a binding (the VCI_SHUT message): both mappings are
// removed and the Orc driver discards further data on the VCI.
func (l *Layer) VCIShut(vci atm.VCI) {
	delete(l.fwd, vci)
	delete(l.sendSeq, vci)
	l.m.Orc.Shut(vci)
}

// Bound reports whether a VCI has an IP forwarding binding.
func (l *Layer) Bound(vci atm.VCI) bool {
	_, ok := l.fwd[vci]
	return ok
}

// Encap is the host-side encapsulation routine, called by the Orc
// driver's output path: the frame (unsegmented, no AAL5 trailer) is
// wrapped in the three-field header and sent to the configured router.
// Costs follow Table 1's send column: 58 + 8·mbufs for IPPROTO_ATM.
func (l *Layer) Encap(vci atm.VCI, frame *mbuf.Chain) error {
	if l.routerIP == 0 {
		return ErrNoRouter
	}
	return l.encapTo(vci, frame, l.routerIP)
}

// reEncap is the router-side re-encapsulation for ATM->host flow.
func (l *Layer) reEncap(vci atm.VCI, frame *mbuf.Chain) error {
	dst, ok := l.fwd[vci]
	if !ok {
		return fmt.Errorf("%w: %v", ErrNoBinding, vci)
	}
	l.ReEncapsulated++
	return l.encapTo(vci, frame, dst)
}

func (l *Layer) encapTo(vci atm.VCI, frame *mbuf.Chain, dst memnet.IPAddr) error {
	meter := l.m.Meter
	if len(l.localAddr) > 255 {
		return ErrAddrTooBig
	}
	// Header build and sequence stamp.
	meter.Charge(cost.ProtoATM, cost.ProtoATMHeaderBuild)
	h := header{src: l.localAddr, seq: l.sendSeq[vci], vci: vci}
	meter.Charge(cost.ProtoATM, cost.ProtoATMSeqStamp)
	l.sendSeq[vci] = h.seq + 1
	// Forwarding-address lookup.
	meter.Charge(cost.ProtoATM, cost.ProtoATMRouteLookup)
	// Length walk over the chain (computing the IP length field).
	meter.Charge(cost.ProtoATM, cost.ProtoATMLenWalkBase)
	meter.ChargePerMbuf(cost.ProtoATM, frame.Count())
	if l.checksum {
		meter.Charge(cost.ProtoATM, cost.ProtoATMChecksum)
	}
	l.Encapsulated++
	if frame.TC.Sampled() {
		// Mark encap time; the receiving layer's input records the
		// IP transit as one span.
		frame.TCAt = l.m.E.Now()
	}
	frame.Prepend(h.encode(l.checksum))
	return l.m.IP.SendIP(&memnet.Packet{Dst: dst, Proto: memnet.ProtoATM, Payload: frame})
}

// input receives IPPROTO_ATM packets from IP.
func (l *Layer) input(pkt *memnet.Packet) {
	meter := l.m.Meter
	chain := pkt.Payload
	hdrLen := headerPeekLen(chain)
	if hdrLen < 0 || !chain.Pullup(hdrLen) {
		chain.Release()
		return
	}
	h, n, err := decode(chain.Head().Data())
	if err != nil {
		if errors.Is(err, ErrBadChecksum) {
			l.ChecksumErrors++
		}
		chain.Release()
		return
	}
	chain.TrimFront(n)
	l.Decapsulated++
	if chain.TC.Sampled() {
		now := l.m.E.Now()
		l.m.TraceC.Record(chain.TC, "protoatm", "ip.transit", chain.TCAt, now)
		chain.TCAt = now
	}

	if l.mode == RouterMode {
		// §9: switching an encapsulated packet adds 39 instructions —
		// decapsulation checks, VCI table lookup, and the Orc hand-off.
		meter.Charge(cost.ProtoATM, cost.RouterDecapChecks)
		l.checkSeq(h)
		meter.Charge(cost.ProtoATM, cost.RouterVCILookup)
		meter.Charge(cost.ProtoATM, cost.RouterReEncap)
		l.Switched++
		// Hand the mbuf chain to the Orc driver along with the VCI; the
		// Hobbit board does trailer, segmentation and transmission.
		_ = l.m.Orc.Output(h.vci, chain)
		return
	}

	// Host receive path: Table 1's 36 instructions.
	meter.Charge(cost.ProtoATM, cost.ProtoATMHeaderLoad)
	meter.Charge(cost.ProtoATM, cost.ProtoATMSeqCheck)
	l.checkSeq(h)
	meter.Charge(cost.ProtoATM, cost.ProtoATMVCILookup)
	meter.Charge(cost.ProtoATM, cost.ProtoATMHandoff)
	l.m.Orc.Input(h.vci, chain)
}

// checkSeq verifies per-source per-VCI sequencing, counting gaps and
// reorderings, then resynchronizes.
func (l *Layer) checkSeq(h header) {
	k := seqKey{src: h.src, vci: h.vci}
	want, seen := l.recvSeq[k]
	if seen && h.seq != want {
		l.OutOfOrder++
	}
	l.recvSeq[k] = h.seq + 1
}

// headerPeekLen returns the full header length by peeking the address
// length byte, or -1 if the chain is too short.
func headerPeekLen(c *mbuf.Chain) int {
	var b [1]byte
	if c.CopyTo(b[:]) != 1 {
		return -1
	}
	return 1 + int(b[0]) + 6
}
