package protoatm_test

import (
	"testing"
	"time"

	"xunet/internal/cost"
	"xunet/internal/kern"
	"xunet/internal/mbuf"
)

// End-to-end behaviour of the optional header checksum across the
// host-router-fabric-router-host rig defined in protoatm_test.go.

func TestChecksumEndToEnd(t *testing.T) {
	r := newRig(t)
	vc := r.provision(t)
	r.hostA.ATM.SetHeaderChecksum(true)
	var got []byte
	r.hostB.Spawn("server", func(p *kern.Proc) {
		s, _ := r.hostB.PF.Socket(p)
		_ = s.Bind(vc.DstVCI, 0)
		got, _ = s.Recv()
	})
	r.hostA.Spawn("client", func(p *kern.Proc) {
		s, _ := r.hostA.PF.Socket(p)
		_ = s.Connect(vc.SrcVCI, 0)
		_ = s.Send([]byte("checksummed"))
	})
	r.e.Run()
	if string(got) != "checksummed" {
		t.Fatalf("got %q", got)
	}
}

func TestChecksumChargesExtraCost(t *testing.T) {
	r := newRig(t)
	vc := r.provision(t)
	r.hostA.Spawn("client", func(p *kern.Proc) {
		s, _ := r.hostA.PF.Socket(p)
		_ = s.Connect(vc.SrcVCI, 0)
		// Without checksum.
		before := r.hostA.M.Meter.Snapshot()
		_ = s.Send(make([]byte, 100))
		plain := r.hostA.M.Meter.Snapshot().Sub(before)[cost.ProtoATM]
		// With checksum.
		r.hostA.ATM.SetHeaderChecksum(true)
		before = r.hostA.M.Meter.Snapshot()
		_ = s.Send(make([]byte, 100))
		summed := r.hostA.M.Meter.Snapshot().Sub(before)[cost.ProtoATM]
		if summed != plain+cost.ProtoATMChecksum {
			t.Errorf("checksum cost: plain %d, summed %d, want +%d", plain, summed, cost.ProtoATMChecksum)
		}
	})
	r.e.Run()
}

func TestChecksumMixedDeployment(t *testing.T) {
	// Sender without checksum, path with verifying routers: the flag
	// bit keeps everyone interoperable.
	r := newRig(t)
	vc := r.provision(t)
	r.rb.ATM.SetHeaderChecksum(true) // remote router sums its re-encap
	var got []byte
	r.hostB.Spawn("server", func(p *kern.Proc) {
		s, _ := r.hostB.PF.Socket(p)
		_ = s.Bind(vc.DstVCI, 0)
		got, _ = s.Recv()
	})
	r.hostA.Spawn("client", func(p *kern.Proc) {
		s, _ := r.hostA.PF.Socket(p)
		_ = s.Connect(vc.SrcVCI, 0)
		_ = s.Send([]byte("mixed"))
	})
	r.e.Run()
	if string(got) != "mixed" {
		t.Fatalf("got %q", got)
	}
}

func TestEncapPrependStillFitsLeadingSpace(t *testing.T) {
	// The checksummed header must still use the mbuf leading space.
	r := newRig(t)
	r.hostA.ATM.SetHeaderChecksum(true)
	chain := mbuf.FromBytes(make([]byte, 64))
	count := chain.Count()
	after := -1
	r.hostA.Spawn("app", func(p *kern.Proc) {
		_ = r.hostA.ATM.Encap(40, chain)
		// Inspect before delivery: once consumed downstream, the chain
		// is released to the mbuf free list.
		after = chain.Count()
	})
	r.e.RunUntil(time.Second)
	if after != count {
		t.Fatalf("checksummed prepend grew chain to %d mbufs", after)
	}
}
