package protoatm

import (
	"testing"
	"testing/quick"

	"xunet/internal/atm"
)

// Unit tests for the optional header checksum (the §7.4 extension);
// the end-to-end behaviour is covered in checksum_e2e_test.go.

func TestHeaderRoundTripNoChecksum(t *testing.T) {
	h := header{src: "mh.h1", seq: 0xDEADBEEF, vci: 1234}
	wire := h.encode(false)
	got, n, err := decode(wire)
	if err != nil {
		t.Fatal(err)
	}
	if n != len(wire) {
		t.Fatalf("consumed %d of %d", n, len(wire))
	}
	if got != h {
		t.Fatalf("got %+v", got)
	}
}

func TestHeaderRoundTripWithChecksum(t *testing.T) {
	h := header{src: "ucb.pc7", seq: 7, vci: 42}
	wire := h.encode(true)
	got, n, err := decode(wire)
	if err != nil {
		t.Fatal(err)
	}
	if n != len(wire) {
		t.Fatalf("consumed %d of %d", n, len(wire))
	}
	if got != h {
		t.Fatalf("got %+v", got)
	}
}

func TestChecksumDetectsCorruption(t *testing.T) {
	h := header{src: "mh.h1", seq: 99, vci: 77}
	wire := h.encode(true)
	// Flip every single bit of the header in turn except the flag bit
	// itself (clearing it would legitimately reinterpret the format
	// without a checksum, which the paper's optional scheme permits).
	for byteIdx := 0; byteIdx < len(wire); byteIdx++ {
		for bit := 0; bit < 8; bit++ {
			if byteIdx == 0 && bit == 0 {
				continue
			}
			mut := append([]byte(nil), wire...)
			mut[byteIdx] ^= 1 << bit
			if _, _, err := decode(mut); err == nil {
				// A flip of the length byte can still be caught by the
				// checksum; anything decoding cleanly is a miss.
				t.Errorf("corruption at byte %d bit %d undetected", byteIdx, bit)
			}
		}
	}
}

func TestNoChecksumHeaderAcceptsCorruptionSilently(t *testing.T) {
	// Without the checksum (the paper's default on reliable FDDI), a
	// corrupted sequence number is NOT detected at decode time — that
	// is exactly the trade-off §7.4 documents.
	h := header{src: "mh.h1", seq: 99, vci: 77}
	wire := h.encode(false)
	wire[len(wire)-4] ^= 0x10 // corrupt a sequence byte
	if _, _, err := decode(wire); err != nil {
		t.Fatalf("decode rejected despite no checksum: %v", err)
	}
}

func TestDecodeTruncated(t *testing.T) {
	h := header{src: "mh.h1", seq: 1, vci: 2}
	for _, with := range []bool{false, true} {
		wire := h.encode(with)
		for cut := 0; cut < len(wire); cut++ {
			if _, _, err := decode(wire[:cut]); err == nil {
				t.Fatalf("truncated header (with=%v, %d bytes) accepted", with, cut)
			}
		}
	}
}

// Property: round trip for any address/seq/vci, with and without
// checksum.
func TestQuickHeaderRoundTrip(t *testing.T) {
	f := func(src string, seq uint32, vci uint16, with bool) bool {
		if len(src) > 255 {
			src = src[:255]
		}
		h := header{src: atm.Addr(src), seq: seq, vci: atm.VCI(vci)}
		got, n, err := decode(h.encode(with))
		return err == nil && got == h && n == len(h.encode(with))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: the internet checksum verifies its own complement.
func TestQuickChecksumSelfVerifies(t *testing.T) {
	f := func(b []byte) bool {
		ck := headerChecksum(b)
		full := append(append([]byte(nil), b...), byte(ck>>8), byte(ck))
		// Appending the checksum and re-summing yields zero (ones
		// complement property) — decode's equality check is an
		// equivalent formulation.
		return headerChecksum(full[:len(b)]) == ck
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
