// Package qos implements the quality-of-service descriptor that the
// signaling protocol carries between client and server.
//
// The paper treats QoS as an "uninterpreted string" at the signaling
// layer, whose current contents are "only a service class and a
// bandwidth request" per the Xunet II scheduling discipline (Saran,
// Keshav, Kalmanek and Morgan, reference [17]). This package gives the
// string a concrete grammar, negotiation semantics (a server may weaken
// a request, never strengthen it), and the bookkeeping that switches use
// for admission control. The signaling entity itself still relays the
// descriptor as an opaque string, preserving the paper's layering.
package qos

import (
	"errors"
	"fmt"
	"strconv"
	"strings"
)

// Class is the Xunet service class of a virtual circuit.
type Class uint8

const (
	// BestEffort is unreserved traffic; it receives leftover capacity.
	BestEffort Class = iota
	// VBR is predictive service for bursty sources; its bandwidth figure
	// is an average reservation.
	VBR
	// CBR is guaranteed constant-bit-rate service; its bandwidth is hard
	// reserved at every hop.
	CBR
	numClasses
)

var classNames = [numClasses]string{"besteffort", "vbr", "cbr"}

// String returns the wire name of the class.
func (c Class) String() string {
	if int(c) < len(classNames) {
		return classNames[c]
	}
	return fmt.Sprintf("class(%d)", uint8(c))
}

// ParseClass parses a wire class name.
func ParseClass(s string) (Class, error) {
	for i, n := range classNames {
		if s == n {
			return Class(i), nil
		}
	}
	return 0, fmt.Errorf("qos: unknown service class %q", s)
}

// QoS is a parsed descriptor: <service class, bandwidth>.
type QoS struct {
	Class        Class
	BandwidthKbs uint32 // requested/reserved bandwidth in kilobits per second
}

// BestEffortQoS is the descriptor a client gets when it asks for
// nothing: no reservation at all.
var BestEffortQoS = QoS{Class: BestEffort}

// String formats the descriptor in the wire grammar, e.g. "cbr:1536".
func (q QoS) String() string {
	return fmt.Sprintf("%s:%d", q.Class, q.BandwidthKbs)
}

// ErrSyntax reports an unparseable QoS string.
var ErrSyntax = errors.New("qos: malformed descriptor")

// Parse parses the wire grammar "<class>:<kbps>". The empty string
// parses as BestEffortQoS, matching the paper's first-cut signaling that
// carried no QoS at all.
func Parse(s string) (QoS, error) {
	if s == "" {
		return BestEffortQoS, nil
	}
	cs, bs, ok := strings.Cut(s, ":")
	if !ok {
		return QoS{}, fmt.Errorf("%w: %q", ErrSyntax, s)
	}
	c, err := ParseClass(cs)
	if err != nil {
		return QoS{}, fmt.Errorf("%w: %q", ErrSyntax, s)
	}
	bw, err := strconv.ParseUint(bs, 10, 32)
	if err != nil {
		return QoS{}, fmt.Errorf("%w: %q", ErrSyntax, s)
	}
	return QoS{Class: c, BandwidthKbs: uint32(bw)}, nil
}

// WeakerOrEqual reports whether q demands no more than r: same or lower
// class, and no more bandwidth. This is the negotiation invariant — the
// server "is free to accept or deny the call and also modify the QoS
// parameters", but the modified QoS returned to the client must not
// exceed what was requested.
func (q QoS) WeakerOrEqual(r QoS) bool {
	return q.Class <= r.Class && q.BandwidthKbs <= r.BandwidthKbs
}

// Negotiate applies a server's counter-offer to a client request,
// clamping it so the result never exceeds the request. It returns the
// descriptor the connection is established with.
func Negotiate(requested, offered QoS) QoS {
	out := offered
	if out.Class > requested.Class {
		out.Class = requested.Class
	}
	if out.BandwidthKbs > requested.BandwidthKbs {
		out.BandwidthKbs = requested.BandwidthKbs
	}
	return out
}

// Reserved reports whether the descriptor carries a hard reservation
// that admission control must account.
func (q QoS) Reserved() bool {
	return q.Class != BestEffort && q.BandwidthKbs > 0
}

// Book tracks reserved bandwidth on one link for admission control.
// CBR reserves its full rate; VBR reserves half (the predictive-service
// discount used by the Xunet scheduler model); best effort reserves
// nothing. The zero value of Book is unusable — use NewBook.
type Book struct {
	capacityKbs uint64
	reserved    uint64
	perVC       map[uint32]uint64 // reservation key -> kb/s
	nextKey     uint32
}

// NewBook returns an admission-control book for a link of the given
// capacity in kb/s.
func NewBook(capacityKbs uint64) *Book {
	return &Book{capacityKbs: capacityKbs, perVC: make(map[uint32]uint64)}
}

// reservationFor maps a descriptor to the bandwidth it books.
func reservationFor(q QoS) uint64 {
	switch q.Class {
	case CBR:
		return uint64(q.BandwidthKbs)
	case VBR:
		return uint64(q.BandwidthKbs) / 2
	default:
		return 0
	}
}

// ErrAdmission reports that a reservation would oversubscribe the link.
var ErrAdmission = errors.New("qos: admission control rejected reservation")

// Admit books q, returning a key for later release. Best-effort requests
// always succeed with a zero-cost booking.
func (b *Book) Admit(q QoS) (key uint32, err error) {
	need := reservationFor(q)
	if b.reserved+need > b.capacityKbs {
		return 0, fmt.Errorf("%w: need %d kb/s, %d of %d reserved",
			ErrAdmission, need, b.reserved, b.capacityKbs)
	}
	b.nextKey++
	b.reserved += need
	b.perVC[b.nextKey] = need
	return b.nextKey, nil
}

// Release frees a booking. Releasing an unknown key is a no-op so that
// teardown paths may be idempotent.
func (b *Book) Release(key uint32) {
	if need, ok := b.perVC[key]; ok {
		b.reserved -= need
		delete(b.perVC, key)
	}
}

// Available reports unreserved capacity in kb/s.
func (b *Book) Available() uint64 { return b.capacityKbs - b.reserved }

// Reserved reports booked capacity in kb/s.
func (b *Book) Reserved() uint64 { return b.reserved }

// Capacity reports the link capacity in kb/s.
func (b *Book) Capacity() uint64 { return b.capacityKbs }

// Bookings reports the number of live reservations.
func (b *Book) Bookings() int { return len(b.perVC) }
