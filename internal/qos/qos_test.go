package qos

import (
	"errors"
	"testing"
	"testing/quick"
)

func TestParseFormatRoundTrip(t *testing.T) {
	for _, q := range []QoS{
		{BestEffort, 0}, {VBR, 256}, {CBR, 1536}, {CBR, 0}, {BestEffort, 4294967295},
	} {
		got, err := Parse(q.String())
		if err != nil {
			t.Fatalf("%v: %v", q, err)
		}
		if got != q {
			t.Fatalf("round trip %v -> %v", q, got)
		}
	}
}

func TestParseEmptyIsBestEffort(t *testing.T) {
	q, err := Parse("")
	if err != nil || q != BestEffortQoS {
		t.Fatalf("Parse(\"\") = %v, %v", q, err)
	}
}

func TestParseErrors(t *testing.T) {
	for _, s := range []string{"cbr", "cbr:", "cbr:x", "turbo:100", ":100", "cbr:-1", "cbr:99999999999"} {
		if _, err := Parse(s); !errors.Is(err, ErrSyntax) {
			t.Errorf("Parse(%q) err = %v, want ErrSyntax", s, err)
		}
	}
}

func TestClassString(t *testing.T) {
	if CBR.String() != "cbr" || VBR.String() != "vbr" || BestEffort.String() != "besteffort" {
		t.Fatal("class names wrong")
	}
	if Class(9).String() != "class(9)" {
		t.Fatalf("out of range = %q", Class(9).String())
	}
	if _, err := ParseClass("nope"); err == nil {
		t.Fatal("ParseClass accepted junk")
	}
}

func TestWeakerOrEqual(t *testing.T) {
	req := QoS{CBR, 1000}
	cases := []struct {
		q    QoS
		want bool
	}{
		{QoS{CBR, 1000}, true},
		{QoS{CBR, 999}, true},
		{QoS{VBR, 1000}, true},
		{QoS{BestEffort, 0}, true},
		{QoS{CBR, 1001}, false},
		{QoS{VBR, 2000}, false},
	}
	for _, c := range cases {
		if got := c.q.WeakerOrEqual(req); got != c.want {
			t.Errorf("%v weaker-or-equal %v = %v, want %v", c.q, req, got, c.want)
		}
	}
}

func TestNegotiateClamps(t *testing.T) {
	req := QoS{VBR, 500}
	// Server tries to upgrade: clamped back to the request.
	got := Negotiate(req, QoS{CBR, 900})
	if got != (QoS{VBR, 500}) {
		t.Fatalf("upgrade not clamped: %v", got)
	}
	// Server weakens: taken as is.
	got = Negotiate(req, QoS{BestEffort, 100})
	if got != (QoS{BestEffort, 100}) {
		t.Fatalf("weaken altered: %v", got)
	}
}

func TestReserved(t *testing.T) {
	if (QoS{BestEffort, 500}).Reserved() {
		t.Fatal("best effort reserved")
	}
	if (QoS{CBR, 0}).Reserved() {
		t.Fatal("zero-bandwidth CBR reserved")
	}
	if !(QoS{CBR, 1}).Reserved() {
		t.Fatal("CBR not reserved")
	}
}

func TestBookAdmitRelease(t *testing.T) {
	b := NewBook(1000)
	k1, err := b.Admit(QoS{CBR, 600})
	if err != nil {
		t.Fatal(err)
	}
	if b.Available() != 400 || b.Reserved() != 600 {
		t.Fatalf("avail=%d reserved=%d", b.Available(), b.Reserved())
	}
	// Second CBR that does not fit.
	if _, err := b.Admit(QoS{CBR, 500}); !errors.Is(err, ErrAdmission) {
		t.Fatalf("oversubscription err = %v", err)
	}
	// VBR books half its rate: 800/2=400 fits exactly.
	k2, err := b.Admit(QoS{VBR, 800})
	if err != nil {
		t.Fatal(err)
	}
	if b.Available() != 0 {
		t.Fatalf("avail = %d", b.Available())
	}
	// Best effort always fits.
	if _, err := b.Admit(QoS{BestEffort, 999999}); err != nil {
		t.Fatal(err)
	}
	b.Release(k1)
	if b.Available() != 600 {
		t.Fatalf("after release avail = %d", b.Available())
	}
	b.Release(k1) // idempotent
	if b.Available() != 600 {
		t.Fatal("double release changed book")
	}
	b.Release(k2)
	if b.Reserved() != 0 {
		t.Fatalf("reserved = %d after all releases", b.Reserved())
	}
	if b.Bookings() != 1 { // the best-effort booking remains
		t.Fatalf("bookings = %d", b.Bookings())
	}
	if b.Capacity() != 1000 {
		t.Fatalf("capacity = %d", b.Capacity())
	}
}

// Property: parse(format(q)) == q for every descriptor.
func TestQuickRoundTrip(t *testing.T) {
	f := func(class uint8, bw uint32) bool {
		q := QoS{Class(class % uint8(numClasses)), bw}
		got, err := Parse(q.String())
		return err == nil && got == q
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: Negotiate never strengthens the request.
func TestQuickNegotiateMonotone(t *testing.T) {
	f := func(rc, oc uint8, rb, ob uint32) bool {
		req := QoS{Class(rc % uint8(numClasses)), rb}
		off := QoS{Class(oc % uint8(numClasses)), ob}
		return Negotiate(req, off).WeakerOrEqual(req)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: a book never oversubscribes and releases restore capacity.
func TestQuickBookConservation(t *testing.T) {
	f := func(reqs []uint16) bool {
		b := NewBook(10000)
		var keys []uint32
		for _, r := range reqs {
			k, err := b.Admit(QoS{CBR, uint32(r)})
			if err == nil {
				keys = append(keys, k)
			}
			if b.Reserved() > b.Capacity() {
				return false
			}
		}
		for _, k := range keys {
			b.Release(k)
		}
		return b.Reserved() == 0 && b.Available() == 10000
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
