package ulib_test

import (
	"errors"
	"strings"
	"testing"
	"time"

	"xunet/internal/kern"
	"xunet/internal/signaling"
	"xunet/internal/testbed"
	"xunet/internal/ulib"
)

// Tests for the paper-flagged extensions: management queries (§5.1) and
// the non-blocking open_connection (§8).

func TestManagementQueries(t *testing.T) {
	n, ra, rb, _ := testbed.NewTestbed(testbed.Options{})
	testbed.StartEchoServer(rb, "echo", 6000)
	var services, calls, stats, lists string
	ra.Stack.Spawn("operator", func(p *kern.Proc) {
		p.SP.Sleep(100 * time.Millisecond)
		conn, err := ra.Lib.OpenConnection(p, "ucb.rt", "echo", 7000, "", "")
		if err != nil {
			t.Error(err)
			return
		}
		sock, _ := ra.Stack.PF.Socket(p)
		_ = sock.Connect(conn.VCI, conn.Cookie)
		// Query the *remote* entity's service list via its own lib and
		// this entity's call table.
		calls, err = ra.Lib.Query(p, signaling.MgmtCalls)
		if err != nil {
			t.Error(err)
		}
		stats, _ = ra.Lib.Query(p, signaling.MgmtStats)
		lists, _ = ra.Lib.Query(p, signaling.MgmtLists)
		sock.Close()
	})
	rb.Stack.Spawn("operator-b", func(p *kern.Proc) {
		p.SP.Sleep(200 * time.Millisecond)
		var err error
		services, err = rb.Lib.Query(p, signaling.MgmtServices)
		if err != nil {
			t.Error(err)
		}
	})
	n.E.RunUntil(time.Minute)
	if !strings.Contains(services, "echo ->") {
		t.Errorf("services view = %q", services)
	}
	if !strings.Contains(calls, "svc=echo") {
		t.Errorf("calls view = %q", calls)
	}
	if !strings.Contains(stats, "CallsEstablished:1") {
		t.Errorf("stats view = %q", stats)
	}
	if !strings.Contains(lists, "VCI_mapping=") {
		t.Errorf("lists view = %q", lists)
	}
	n.E.Shutdown()
}

func TestManagementUnknownQuery(t *testing.T) {
	n, ra, _, _ := testbed.NewTestbed(testbed.Options{})
	var err error
	ra.Stack.Spawn("operator", func(p *kern.Proc) {
		_, err = ra.Lib.Query(p, "bogus")
	})
	n.E.RunUntil(10 * time.Second)
	if !errors.Is(err, ulib.ErrProtocol) {
		t.Fatalf("err = %v", err)
	}
	n.E.Shutdown()
}

func TestOpenConnectionAsync(t *testing.T) {
	n, ra, rb, _ := testbed.NewTestbed(testbed.Options{})
	srv := testbed.StartEchoServer(rb, "echo", 6000)
	var overlapped bool
	ra.Stack.Spawn("client", func(p *kern.Proc) {
		p.SP.Sleep(100 * time.Millisecond)
		pc, err := ra.Lib.OpenConnectionAsync(p, "ucb.rt", "echo", 7000, "", "")
		if err != nil {
			t.Error(err)
			return
		}
		// The request is in flight; the client is free to work. The
		// paper: "Since connection establishment can be made
		// non-blocking, we do not think that [330 ms] poses a serious
		// problem."
		workStart := p.SP.Now()
		p.SP.Sleep(200 * time.Millisecond) // useful work during setup
		overlapped = p.SP.Now()-workStart == 200*time.Millisecond
		conn, err := pc.Await(p)
		if err != nil {
			t.Error(err)
			return
		}
		sock, _ := ra.Stack.PF.Socket(p)
		if err := sock.Connect(conn.VCI, conn.Cookie); err != nil {
			t.Error(err)
			return
		}
		p.SP.Sleep(100 * time.Millisecond)
		_ = sock.Send([]byte("async"))
		p.SP.Sleep(100 * time.Millisecond)
		sock.Close()
	})
	n.E.RunUntil(time.Minute)
	if !overlapped {
		t.Fatal("work did not overlap establishment")
	}
	if srv.Received != 1 {
		t.Fatalf("received = %d", srv.Received)
	}
	n.E.Shutdown()
}

func TestPendingConnectionCancel(t *testing.T) {
	n, ra, rb, _ := testbed.NewTestbed(testbed.Options{})
	// A server that never answers, so the request stays pending.
	rb.Stack.Spawn("sleepy", func(p *kern.Proc) {
		_ = rb.Lib.ExportService(p, "sleepy", 6000)
		_, _ = rb.Lib.CreateReceiveConnection(p, 6000)
		p.SP.Park()
	})
	var cancelErr error
	ra.Stack.Spawn("client", func(p *kern.Proc) {
		p.SP.Sleep(100 * time.Millisecond)
		pc, err := ra.Lib.OpenConnectionAsync(p, "ucb.rt", "sleepy", 7000, "", "")
		if err != nil {
			t.Error(err)
			return
		}
		p.SP.Sleep(100 * time.Millisecond)
		cancelErr = pc.Cancel(p)
	})
	n.E.RunUntil(time.Minute)
	if cancelErr != nil {
		t.Fatalf("cancel: %v", cancelErr)
	}
	if ra.Sig.SH.Stats().CallsCanceled != 1 {
		t.Fatalf("canceled = %d", ra.Sig.SH.Stats().CallsCanceled)
	}
	if msg := testbed.Quiesced(ra); msg != "" {
		t.Fatal(msg)
	}
	n.E.Shutdown()
}
