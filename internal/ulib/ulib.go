// Package ulib is the user library of §7.1 and §8: the thin layer that
// hides the RPC message exchanges with the signaling entity so that
// porting a BSD-socket application to PF_XUNET is a matter of three or
// four extra calls.
//
// The API mirrors the paper's Figures 5 and 6:
//
//	Server (Figure 5)                      Client (Figure 6)
//	-----------------                      -----------------
//	ExportService("traffic", port)         conn, _ := OpenConnection(...)
//	l, _ := CreateReceiveConnection(port)  s, _ := PF.Socket(p)
//	req, _ := AwaitServiceRequest(l)       s.Connect(conn.VCI, conn.Cookie)
//	vci, _ := req.Accept(qos)              // client sends data
//	s, _ := PF.Socket(p); s.Bind(vci, ck)
//
// Every RPC round trip charges the paper's four context switches: two
// at the application side (these helpers) and two inside sighost.
package ulib

import (
	"errors"
	"fmt"
	"time"

	"xunet/internal/atm"
	"xunet/internal/core"
	"xunet/internal/kern"
	"xunet/internal/memnet"
	"xunet/internal/sigmsg"
	"xunet/internal/signaling"
	"xunet/internal/trace"
)

// Errors from the library.
var (
	ErrRejected  = errors.New("ulib: connection rejected")
	ErrFailed    = errors.New("ulib: connection failed")
	ErrProtocol  = errors.New("ulib: unexpected signaling reply")
	ErrSignaling = errors.New("ulib: signaling entity unreachable")
	ErrTimeout   = errors.New("ulib: timed out awaiting signaling")
)

// TimeoutError is the concrete error behind ErrTimeout: it records which
// peer was being awaited, which operation, on which attempt, and how long
// the library waited. errors.Is(err, ErrTimeout) still matches, so
// existing callers are unaffected; callers that want the context can
// errors.As into it.
type TimeoutError struct {
	Peer    string        // who the library was waiting for
	Op      string        // the RPC or wait that expired
	Attempt int           // 1-based attempt number
	Waited  time.Duration // the deadline that expired
}

func (e *TimeoutError) Error() string {
	return fmt.Sprintf("ulib: timed out awaiting signaling (%s from %s, attempt %d, waited %v)",
		e.Op, e.Peer, e.Attempt, e.Waited)
}

// Is makes errors.Is(err, ErrTimeout) true for every TimeoutError.
func (e *TimeoutError) Is(target error) bool { return target == ErrTimeout }

// acceptBackoff is how long AwaitServiceRequest sleeps when the
// process's descriptor table is full before retrying the accept — the
// stall behaviour of §10.
const acceptBackoff = 50 * time.Millisecond

// Timeouts configures the library's deadlines and retry policy. The
// zero value of any field means "use the default", so callers can
// override just one knob.
type Timeouts struct {
	// RPC bounds each request/reply exchange with the signaling entity.
	RPC time.Duration
	// Establish bounds the wait for the asynchronous VCI_FOR_CONN /
	// CONN_FAILED notification after a connect request is accepted.
	Establish time.Duration
	// Attempts is the total number of tries for *idempotent* RPCs
	// (export, unexport, cancel, management queries). Non-idempotent
	// requests — CONNECT_REQ allocates a cookie — are never retried
	// here; the signaling entities' own retransmission layer owns that.
	Attempts int
	// Backoff is the sleep before the second attempt; it doubles per
	// attempt, capped at MaxBackoff.
	Backoff time.Duration
	// MaxBackoff caps the doubled backoff.
	MaxBackoff time.Duration
}

// DefaultTimeouts returns the library's historical behaviour: one-minute
// deadlines, a single attempt. Experiment E5's stall measurements depend
// on these defaults staying put.
func DefaultTimeouts() Timeouts {
	return Timeouts{
		RPC:        time.Minute,
		Establish:  time.Minute,
		Attempts:   1,
		Backoff:    100 * time.Millisecond,
		MaxBackoff: 2 * time.Second,
	}
}

// withDefaults fills zero fields from DefaultTimeouts.
func (t Timeouts) withDefaults() Timeouts {
	d := DefaultTimeouts()
	if t.RPC <= 0 {
		t.RPC = d.RPC
	}
	if t.Establish <= 0 {
		t.Establish = d.Establish
	}
	if t.Attempts <= 0 {
		t.Attempts = d.Attempts
	}
	if t.Backoff <= 0 {
		t.Backoff = d.Backoff
	}
	if t.MaxBackoff <= 0 {
		t.MaxBackoff = d.MaxBackoff
	}
	return t
}

// Lib binds the library to a stack and its signaling entity.
type Lib struct {
	stack *core.Stack
	sigIP memnet.IPAddr
	to    Timeouts
}

// New returns a library instance talking to the sighost at sigIP
// (the machine's own router).
func New(stack *core.Stack, sigIP memnet.IPAddr) *Lib {
	return &Lib{stack: stack, sigIP: sigIP, to: DefaultTimeouts()}
}

// SetTimeouts overrides the library's deadlines and retry policy; zero
// fields keep their defaults.
func (l *Lib) SetTimeouts(t Timeouts) { l.to = t.withDefaults() }

// idempotentKind reports whether an RPC may safely be sent twice: the
// daemon's handler for it either overwrites (export), deletes
// (unexport, cancel) or only reads (management query) state.
func idempotentKind(k sigmsg.Kind) bool {
	switch k {
	case sigmsg.KindExportSrv, sigmsg.KindUnexportSrv, sigmsg.KindCancelReq, sigmsg.KindMgmtQuery:
		return true
	}
	return false
}

// rpc performs one request/reply exchange with sighost, retrying
// idempotent requests with capped exponential backoff when the daemon
// is unreachable or the reply deadline expires.
func (l *Lib) rpc(p *kern.Proc, m sigmsg.Msg) (sigmsg.Msg, error) {
	attempts := 1
	if idempotentKind(m.Kind) {
		attempts = l.to.Attempts
	}
	backoff := l.to.Backoff
	var lastErr error
	for a := 1; a <= attempts; a++ {
		reply, err := l.rpcOnce(p, m, a)
		if err == nil || (!errors.Is(err, ErrTimeout) && !errors.Is(err, ErrSignaling)) {
			return reply, err
		}
		lastErr = err
		if a < attempts {
			p.SP.Sleep(backoff)
			backoff *= 2
			if backoff > l.to.MaxBackoff {
				backoff = l.to.MaxBackoff
			}
		}
	}
	return sigmsg.Msg{}, lastErr
}

// rpcOnce is one request/reply exchange over a fresh IPC connection.
func (l *Lib) rpcOnce(p *kern.Proc, m sigmsg.Msg, attempt int) (sigmsg.Msg, error) {
	p.ContextSwitches(1) // application to kernel
	ks, err := p.Dial(l.sigIP, signaling.SigPort)
	if err != nil {
		return sigmsg.Msg{}, fmt.Errorf("%w: %v", ErrSignaling, err)
	}
	defer ks.Close()
	// Stack scratch: typical signaling messages fit, so the encode does
	// not touch the heap (Send copies the frame before returning).
	var sbuf [128]byte
	if err := ks.Send(m.AppendTo(sbuf[:0])); err != nil {
		return sigmsg.Msg{}, fmt.Errorf("%w: %v", ErrSignaling, err)
	}
	raw, ok, timedOut := ks.RecvTimeout(l.to.RPC)
	if timedOut {
		return sigmsg.Msg{}, &TimeoutError{Peer: fmt.Sprint(l.sigIP), Op: m.Kind.String(), Attempt: attempt, Waited: l.to.RPC}
	}
	if !ok {
		return sigmsg.Msg{}, ErrSignaling
	}
	reply, err := sigmsg.Decode(raw)
	if err != nil {
		return sigmsg.Msg{}, fmt.Errorf("%w: %v", ErrProtocol, err)
	}
	p.ContextSwitches(1) // kernel to application
	if reply.Kind == sigmsg.KindError {
		return reply, fmt.Errorf("%w: %s", ErrProtocol, reply.Reason)
	}
	return reply, nil
}

// ExportService registers a service name with the signaling entity
// (the export_service call of Figure 5). notifyPort is where the
// server will listen for incoming-connection notifications.
func (l *Lib) ExportService(p *kern.Proc, name string, notifyPort uint16) error {
	reply, err := l.rpc(p, sigmsg.Msg{Kind: sigmsg.KindExportSrv, Service: name, NotifyPort: notifyPort})
	if err != nil {
		return err
	}
	if reply.Kind != sigmsg.KindServiceRegs {
		return fmt.Errorf("%w: %v", ErrProtocol, reply.Kind)
	}
	return nil
}

// UnexportService cancels a registration.
func (l *Lib) UnexportService(p *kern.Proc, name string) error {
	reply, err := l.rpc(p, sigmsg.Msg{Kind: sigmsg.KindUnexportSrv, Service: name})
	if err != nil {
		return err
	}
	if reply.Kind != sigmsg.KindServiceRegs {
		return fmt.Errorf("%w: %v", ErrProtocol, reply.Kind)
	}
	return nil
}

// CreateReceiveConnection opens the regular TCP listening socket the
// signaling entity will connect to when a call arrives (Figure 5).
func (l *Lib) CreateReceiveConnection(p *kern.Proc, port uint16) (*kern.KListener, error) {
	return p.Listen(port)
}

// ServiceRequest is one incoming call awaiting the server's decision.
type ServiceRequest struct {
	p     *kern.Proc
	conn  *kern.KStream
	rpcTO time.Duration // reply deadline inherited from the library
	// Cookie is the capability for the coming circuit; QoS the client's
	// requested descriptor; Comment the client's free-form comment.
	Cookie  uint16
	QoS     string
	Comment string
	Service string
}

// AwaitServiceRequest blocks until the signaling entity forwards an
// incoming connection (the await_service_request call). When the
// descriptor table is exhausted it backs off and retries, reproducing
// the establishment stall of §10.
func (l *Lib) AwaitServiceRequest(p *kern.Proc, kl *kern.KListener) (*ServiceRequest, error) {
	for {
		conn, err := kl.Accept()
		if errors.Is(err, kern.ErrEMFILE) {
			p.SP.Sleep(acceptBackoff)
			continue
		}
		if err != nil {
			return nil, err
		}
		raw, ok := conn.Recv()
		if !ok {
			conn.Close()
			continue
		}
		m, err := sigmsg.Decode(raw)
		if err != nil || m.Kind != sigmsg.KindIncomingConn {
			conn.Close()
			continue
		}
		p.ContextSwitches(1) // kernel handed the notification up
		return &ServiceRequest{
			p: p, conn: conn, rpcTO: l.to.RPC,
			Cookie: m.Cookie, QoS: m.QoS, Comment: m.Comment, Service: m.Service,
		}, nil
	}
}

// Accept accepts the call with a possibly modified QoS and returns the
// circuit: the accept_connection call of Figure 5. The per-call
// connection is closed afterward (its descriptor parks in TIME_WAIT).
func (r *ServiceRequest) Accept(modifiedQoS string) (vci atm.VCI, grantedQoS string, err error) {
	defer r.conn.Close()
	r.p.ContextSwitches(1)
	accept := sigmsg.Msg{Kind: sigmsg.KindAcceptConn, Cookie: r.Cookie, QoS: modifiedQoS}
	var sbuf [128]byte
	if err := r.conn.Send(accept.AppendTo(sbuf[:0])); err != nil {
		return 0, "", fmt.Errorf("%w: %v", ErrSignaling, err)
	}
	wait := r.rpcTO
	if wait <= 0 {
		wait = DefaultTimeouts().RPC
	}
	raw, ok, timedOut := r.conn.RecvTimeout(wait)
	if timedOut {
		return 0, "", &TimeoutError{Peer: "sighost", Op: "accept_connection", Attempt: 1, Waited: wait}
	}
	if !ok {
		return 0, "", ErrSignaling
	}
	m, derr := sigmsg.Decode(raw)
	if derr != nil || m.Kind != sigmsg.KindVCIForConn {
		return 0, "", ErrProtocol
	}
	r.p.ContextSwitches(1)
	return m.VCI, m.QoS, nil
}

// Reject declines the call.
func (r *ServiceRequest) Reject(reason string) error {
	defer r.conn.Close()
	r.p.ContextSwitches(1)
	reject := sigmsg.Msg{Kind: sigmsg.KindRejectConn, Cookie: r.Cookie, Reason: reason}
	var sbuf [128]byte
	return r.conn.Send(reject.AppendTo(sbuf[:0]))
}

// Connection is an established client-side circuit.
type Connection struct {
	VCI    atm.VCI
	Cookie uint16
	QoS    string // negotiated (possibly modified by the server)
	// Trace is the call's root trace context, carried in VCI_FOR_CONN.
	// Pass it to pfxunet.Socket.SetTrace so data frames sent on the
	// circuit join the call's span tree; zero when tracing is off or the
	// call was unsampled.
	Trace trace.Context
}

// OpenConnection requests a circuit to <dest, service, qos> and blocks
// until it is established or fails: the open_connection call of
// Figure 6. notifyPort is a local port on which the library receives
// the asynchronous VCI_FOR_CONN.
func (l *Lib) OpenConnection(p *kern.Proc, dest atm.Addr, service string, notifyPort uint16, comment, qosStr string) (*Connection, error) {
	kl, err := p.Listen(notifyPort)
	if err != nil {
		return nil, err
	}
	defer kl.Close()
	reply, err := l.rpc(p, sigmsg.Msg{
		Kind: sigmsg.KindConnectReq, Dest: dest, Service: service,
		QoS: qosStr, NotifyPort: notifyPort, Comment: comment, PID: p.PID,
	})
	if err != nil {
		return nil, err
	}
	if reply.Kind != sigmsg.KindReqID {
		return nil, fmt.Errorf("%w: %v", ErrProtocol, reply.Kind)
	}
	cookie := reply.Cookie
	// Await the asynchronous establishment notification.
	conn, err := kl.AcceptTimeout(l.to.Establish)
	if err != nil {
		// Best effort cancellation of the dangling request.
		_, _ = l.rpc(p, sigmsg.Msg{Kind: sigmsg.KindCancelReq, Cookie: cookie})
		return nil, &TimeoutError{Peer: string(dest), Op: "open_connection", Attempt: 1, Waited: l.to.Establish}
	}
	defer conn.Close()
	raw, ok, timedOut := conn.RecvTimeout(l.to.Establish)
	if timedOut || !ok {
		return nil, &TimeoutError{Peer: string(dest), Op: "open_connection", Attempt: 1, Waited: l.to.Establish}
	}
	m, derr := sigmsg.Decode(raw)
	if derr != nil {
		return nil, ErrProtocol
	}
	p.ContextSwitches(1)
	switch m.Kind {
	case sigmsg.KindVCIForConn:
		return &Connection{VCI: m.VCI, Cookie: cookie, QoS: m.QoS,
			Trace: trace.Context{Trace: m.TraceID, Span: m.SpanID}}, nil
	case sigmsg.KindConnFailed:
		return nil, fmt.Errorf("%w: %s", ErrFailed, m.Reason)
	default:
		return nil, fmt.Errorf("%w: %v", ErrProtocol, m.Kind)
	}
}

// Query asks the signaling entity for management state (§5.1): one of
// signaling.MgmtServices, MgmtCalls, MgmtStats, MgmtLists.
func (l *Lib) Query(p *kern.Proc, what string) (string, error) {
	reply, err := l.rpc(p, sigmsg.Msg{Kind: sigmsg.KindMgmtQuery, Service: what})
	if err != nil {
		return "", err
	}
	if reply.Kind != sigmsg.KindMgmtReply {
		return "", fmt.Errorf("%w: %v", ErrProtocol, reply.Kind)
	}
	return reply.Comment, nil
}

// QueryCall performs a per-call management query (signaling.MgmtCallTrace
// or MgmtCallTraceJSON) and returns the rendered body.
func (l *Lib) QueryCall(p *kern.Proc, what string, callID uint32) (string, error) {
	reply, err := l.rpc(p, sigmsg.Msg{Kind: sigmsg.KindMgmtQuery, Service: what, CallID: callID})
	if err != nil {
		return "", err
	}
	if reply.Kind != sigmsg.KindMgmtReply {
		return "", fmt.Errorf("%w: %v", ErrProtocol, reply.Kind)
	}
	return reply.Comment, nil
}

// PendingConnection is a connect request in flight: the non-blocking
// open_connection the paper says "would be straightforward to provide".
type PendingConnection struct {
	lib    *Lib
	kl     *kern.KListener
	Cookie uint16
}

// OpenConnectionAsync issues the CONNECT_REQ and returns as soon as
// REQ_ID arrives, without waiting for establishment. The caller may do
// other work, then Await the circuit (or Cancel it).
func (l *Lib) OpenConnectionAsync(p *kern.Proc, dest atm.Addr, service string, notifyPort uint16, comment, qosStr string) (*PendingConnection, error) {
	kl, err := p.Listen(notifyPort)
	if err != nil {
		return nil, err
	}
	reply, err := l.rpc(p, sigmsg.Msg{
		Kind: sigmsg.KindConnectReq, Dest: dest, Service: service,
		QoS: qosStr, NotifyPort: notifyPort, Comment: comment, PID: p.PID,
	})
	if err != nil {
		kl.Close()
		return nil, err
	}
	if reply.Kind != sigmsg.KindReqID {
		kl.Close()
		return nil, fmt.Errorf("%w: %v", ErrProtocol, reply.Kind)
	}
	return &PendingConnection{lib: l, kl: kl, Cookie: reply.Cookie}, nil
}

// Await blocks until the circuit is established or fails, then releases
// the notify listener.
func (pc *PendingConnection) Await(p *kern.Proc) (*Connection, error) {
	defer pc.kl.Close()
	wait := pc.lib.to.Establish
	conn, err := pc.kl.AcceptTimeout(wait)
	if err != nil {
		_ = pc.lib.CancelRequest(p, pc.Cookie)
		return nil, &TimeoutError{Peer: "sighost", Op: "await_connection", Attempt: 1, Waited: wait}
	}
	defer conn.Close()
	raw, ok, timedOut := conn.RecvTimeout(wait)
	if timedOut || !ok {
		return nil, &TimeoutError{Peer: "sighost", Op: "await_connection", Attempt: 1, Waited: wait}
	}
	m, derr := sigmsg.Decode(raw)
	if derr != nil {
		return nil, ErrProtocol
	}
	p.ContextSwitches(1)
	switch m.Kind {
	case sigmsg.KindVCIForConn:
		return &Connection{VCI: m.VCI, Cookie: pc.Cookie, QoS: m.QoS,
			Trace: trace.Context{Trace: m.TraceID, Span: m.SpanID}}, nil
	case sigmsg.KindConnFailed:
		return nil, fmt.Errorf("%w: %s", ErrFailed, m.Reason)
	default:
		return nil, fmt.Errorf("%w: %v", ErrProtocol, m.Kind)
	}
}

// Cancel withdraws the pending request and releases the listener.
func (pc *PendingConnection) Cancel(p *kern.Proc) error {
	pc.kl.Close()
	return pc.lib.CancelRequest(p, pc.Cookie)
}

// CancelRequest cancels an outstanding connect request by cookie.
func (l *Lib) CancelRequest(p *kern.Proc, cookie uint16) error {
	reply, err := l.rpc(p, sigmsg.Msg{Kind: sigmsg.KindCancelReq, Cookie: cookie})
	if err != nil {
		return err
	}
	if reply.Kind != sigmsg.KindCancelReq {
		return fmt.Errorf("%w: %v", ErrProtocol, reply.Kind)
	}
	return nil
}

// Stack returns the library's underlying stack (handy for examples).
func (l *Lib) Stack() *core.Stack { return l.stack }
