package ulib_test

import (
	"errors"
	"testing"
	"time"

	"xunet/internal/kern"
	"xunet/internal/testbed"
	"xunet/internal/ulib"
)

func TestUnexportStopsNewCalls(t *testing.T) {
	n, ra, rb, _ := testbed.NewTestbed(testbed.Options{})
	srv := testbed.StartEchoServer(rb, "flaky", 6000)
	var firstErr, unexpErr, secondErr error
	ra.Stack.Spawn("client", func(p *kern.Proc) {
		p.SP.Sleep(100 * time.Millisecond)
		// First call succeeds.
		r1 := testbed.OpenAndUse(ra, p, "ucb.rt", "flaky", 7000, "", 0, nil)
		firstErr = r1.Err
		p.SP.Sleep(100 * time.Millisecond)
		// The server withdraws the registration (it can do this from
		// any process — the service name is the handle).
		rb.Stack.Spawn("withdraw", func(w *kern.Proc) {
			unexpErr = rb.Lib.UnexportService(w, "flaky")
		})
		p.SP.Sleep(200 * time.Millisecond)
		_, secondErr = ra.Lib.OpenConnection(p, "ucb.rt", "flaky", 7001, "", "")
	})
	n.E.RunUntil(time.Minute)
	if firstErr != nil {
		t.Fatalf("first call: %v", firstErr)
	}
	if unexpErr != nil {
		t.Fatalf("unexport: %v", unexpErr)
	}
	if !errors.Is(secondErr, ulib.ErrFailed) {
		t.Fatalf("call after unexport err = %v", secondErr)
	}
	if srv.Accepted != 1 {
		t.Fatalf("accepted = %d", srv.Accepted)
	}
	n.E.Shutdown()
}

func TestOpenConnectionPortConflict(t *testing.T) {
	// Two concurrent opens on the same notify port: the second fails
	// cleanly with a port-in-use error instead of corrupting the first.
	n, ra, rb, _ := testbed.NewTestbed(testbed.Options{})
	testbed.StartEchoServer(rb, "echo", 6000)
	var err2 error
	ra.Stack.Spawn("c1", func(p *kern.Proc) {
		p.SP.Sleep(100 * time.Millisecond)
		pc, err := ra.Lib.OpenConnectionAsync(p, "ucb.rt", "echo", 7000, "", "")
		if err != nil {
			t.Error(err)
			return
		}
		defer pc.Cancel(p)
		p.SP.Sleep(2 * time.Second)
	})
	ra.Stack.Spawn("c2", func(p *kern.Proc) {
		p.SP.Sleep(200 * time.Millisecond) // while c1's listener holds port 7000
		_, err2 = ra.Lib.OpenConnection(p, "ucb.rt", "echo", 7000, "", "")
	})
	n.E.RunUntil(time.Minute)
	if err2 == nil {
		t.Fatal("port conflict not reported")
	}
	n.E.Shutdown()
}
