package ulib_test

import (
	"errors"
	"testing"
	"time"

	"xunet/internal/kern"
	"xunet/internal/testbed"
	"xunet/internal/ulib"
)

func TestExportServiceAgainstDeadSighost(t *testing.T) {
	// A host whose router runs no signaling entity: the RPC dial is
	// refused and surfaces as ErrSignaling.
	n, ra, _, _ := testbed.NewTestbed(testbed.Options{})
	host, err := n.AddHost("mh.h1", ra)
	if err != nil {
		t.Fatal(err)
	}
	// Point the library at an IP with no sighost (the host itself).
	lib := ulib.New(host.Stack, host.Stack.M.IP.Addr)
	var exportErr error
	host.Stack.Spawn("app", func(p *kern.Proc) {
		exportErr = lib.ExportService(p, "x", 6000)
	})
	n.E.RunUntil(10 * time.Second)
	if !errors.Is(exportErr, ulib.ErrSignaling) {
		t.Fatalf("err = %v", exportErr)
	}
	n.E.Shutdown()
}

func TestExportServiceValidation(t *testing.T) {
	n, ra, _, _ := testbed.NewTestbed(testbed.Options{})
	var badName, badPort error
	ra.Stack.Spawn("app", func(p *kern.Proc) {
		badName = ra.Lib.ExportService(p, "", 6000)
		badPort = ra.Lib.ExportService(p, "svc", 0)
	})
	n.E.RunUntil(10 * time.Second)
	if !errors.Is(badName, ulib.ErrProtocol) {
		t.Fatalf("empty name err = %v", badName)
	}
	if !errors.Is(badPort, ulib.ErrProtocol) {
		t.Fatalf("zero port err = %v", badPort)
	}
	n.E.Shutdown()
}

func TestOpenConnectionValidation(t *testing.T) {
	n, ra, _, _ := testbed.NewTestbed(testbed.Options{})
	var err1 error
	ra.Stack.Spawn("app", func(p *kern.Proc) {
		_, err1 = ra.Lib.OpenConnection(p, "", "svc", 7000, "", "")
	})
	n.E.RunUntil(10 * time.Second)
	if !errors.Is(err1, ulib.ErrProtocol) {
		t.Fatalf("empty dest err = %v", err1)
	}
	if msg := testbed.Quiesced(ra); msg != "" {
		t.Fatal(msg)
	}
	n.E.Shutdown()
}

func TestCancelUnknownCookie(t *testing.T) {
	n, ra, _, _ := testbed.NewTestbed(testbed.Options{})
	var err error
	ra.Stack.Spawn("app", func(p *kern.Proc) {
		err = ra.Lib.CancelRequest(p, 0xDEAD)
	})
	n.E.RunUntil(10 * time.Second)
	if !errors.Is(err, ulib.ErrProtocol) {
		t.Fatalf("err = %v", err)
	}
	n.E.Shutdown()
}

func TestRejectDeliversReasonToClient(t *testing.T) {
	n, ra, rb, _ := testbed.NewTestbed(testbed.Options{})
	rb.Stack.Spawn("server", func(p *kern.Proc) {
		_ = rb.Lib.ExportService(p, "refuser", 6000)
		kl, _ := rb.Lib.CreateReceiveConnection(p, 6000)
		for {
			req, err := rb.Lib.AwaitServiceRequest(p, kl)
			if err != nil {
				return
			}
			_ = req.Reject("quota exceeded")
		}
	})
	var openErr error
	ra.Stack.Spawn("client", func(p *kern.Proc) {
		p.SP.Sleep(100 * time.Millisecond)
		_, openErr = ra.Lib.OpenConnection(p, "ucb.rt", "refuser", 7000, "", "")
	})
	n.E.RunUntil(10 * time.Second)
	if !errors.Is(openErr, ulib.ErrFailed) {
		t.Fatalf("err = %v", openErr)
	}
	n.E.Shutdown()
}

func TestServiceRequestCarriesCommentAndQoS(t *testing.T) {
	n, ra, rb, _ := testbed.NewTestbed(testbed.Options{})
	var gotComment, gotQoS, gotService string
	rb.Stack.Spawn("server", func(p *kern.Proc) {
		_ = rb.Lib.ExportService(p, "inspect", 6000)
		kl, _ := rb.Lib.CreateReceiveConnection(p, 6000)
		req, err := rb.Lib.AwaitServiceRequest(p, kl)
		if err != nil {
			return
		}
		gotComment, gotQoS, gotService = req.Comment, req.QoS, req.Service
		_, _, _ = req.Accept(req.QoS)
	})
	ra.Stack.Spawn("client", func(p *kern.Proc) {
		p.SP.Sleep(100 * time.Millisecond)
		_, _ = ra.Lib.OpenConnection(p, "ucb.rt", "inspect", 7000, "this is a comment", "vbr:256")
	})
	n.E.RunUntil(10 * time.Second)
	if gotComment != "this is a comment" {
		t.Fatalf("comment = %q", gotComment)
	}
	if gotQoS != "vbr:256" {
		t.Fatalf("qos = %q", gotQoS)
	}
	if gotService != "inspect" {
		t.Fatalf("service = %q", gotService)
	}
	n.E.Shutdown()
}

func TestConcurrentOpensFromOneProcess(t *testing.T) {
	// One process opening several circuits on distinct notify ports.
	n, ra, rb, _ := testbed.NewTestbed(testbed.Options{FDTableSize: kern.FixedFDTableSize})
	srv := testbed.StartEchoServer(rb, "multi", 6000)
	okCount := 0
	ra.Stack.Spawn("client", func(p *kern.Proc) {
		p.SP.Sleep(100 * time.Millisecond)
		for i := 0; i < 5; i++ {
			conn, err := ra.Lib.OpenConnection(p, "ucb.rt", "multi", uint16(7000+i), "", "")
			if err != nil {
				t.Errorf("open %d: %v", i, err)
				continue
			}
			sock, _ := ra.Stack.PF.Socket(p)
			if err := sock.Connect(conn.VCI, conn.Cookie); err != nil {
				t.Errorf("connect %d: %v", i, err)
				continue
			}
			okCount++
		}
	})
	n.E.RunUntil(30 * time.Second)
	if okCount != 5 {
		t.Fatalf("opened %d of 5", okCount)
	}
	if srv.Accepted != 5 {
		t.Fatalf("accepted = %d", srv.Accepted)
	}
	n.E.Shutdown()
}

func TestStackAccessor(t *testing.T) {
	n, ra, _, _ := testbed.NewTestbed(testbed.Options{})
	if ra.Lib.Stack() != ra.Stack {
		t.Fatal("Stack() mismatch")
	}
	n.E.Shutdown()
}
