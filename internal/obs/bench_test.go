package obs

import (
	"testing"
	"time"
)

// BenchmarkTelemetryOverhead/disabled-tracer is the CI gate for the
// instrumentation bargain: a disabled event ring must cost under 5 ns per
// call site (one nil check + one atomic load), so tracing compiled into the
// signaling hot paths cannot skew the existing benchmarks. The other cases
// size the rest of the toolkit.
func BenchmarkTelemetryOverhead(b *testing.B) {
	b.Run("disabled-tracer", func(b *testing.B) {
		r := NewRegistry()
		tr := r.Tracer("bench")
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if tr.Enabled() {
				tr.Emit(Event{Kind: "never"})
			}
		}
		b.StopTimer()
		// Enforce the budget only on a real measurement run; the N=1
		// discovery run is all fixed overhead.
		if avg := float64(b.Elapsed().Nanoseconds()) / float64(b.N); b.N >= 1_000_000 && avg > 5 {
			b.Fatalf("disabled trace call site costs %.1f ns, budget is 5 ns", avg)
		}
	})
	b.Run("enabled-ring-publish", func(b *testing.B) {
		r := NewRegistry()
		tr := r.Tracer("bench")
		r.EnableTrace("bench", true)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			tr.Emit(Event{Kind: "k", VCI: uint32(i)})
		}
	})
	b.Run("counter-inc", func(b *testing.B) {
		c := NewRegistry().Counter("c")
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			c.Inc()
		}
	})
	b.Run("histogram-observe", func(b *testing.B) {
		h := NewRegistry().Histogram("h")
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			h.Observe(time.Duration(i) * time.Microsecond)
		}
	})
}
