package obs

import (
	"encoding/json"
	"testing"
	"time"
)

func TestCounterAndGauge(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("x.count")
	c.Inc()
	c.Add(4)
	if got := c.Value(); got != 5 {
		t.Fatalf("counter = %d", got)
	}
	if r.Counter("x.count") != c {
		t.Fatal("re-registration returned a different counter")
	}
	g := r.Gauge("x.depth")
	g.Set(7)
	g.Add(-3)
	g.Add(2)
	if g.Value() != 6 || g.Max() != 7 {
		t.Fatalf("gauge = %d max = %d", g.Value(), g.Max())
	}
}

func TestHistogramBuckets(t *testing.T) {
	cases := []struct {
		d    time.Duration
		want int
	}{
		{0, 0},
		{time.Microsecond, 0},
		{time.Microsecond + 1, 1},
		{2 * time.Microsecond, 1},
		{2*time.Microsecond + 1, 2},
		{4 * time.Microsecond, 2},
		{time.Millisecond, 10},
		{time.Second, 20},
		{1 << 62, HistBuckets - 1},
	}
	for _, tc := range cases {
		if got := bucketOf(tc.d); got != tc.want {
			t.Errorf("bucketOf(%v) = %d, want %d", tc.d, got, tc.want)
		}
	}
}

func TestHistogramQuantiles(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("lat")
	for i := 1; i <= 100; i++ {
		h.Observe(time.Duration(i) * time.Millisecond)
	}
	s := r.Snapshot().Hist("lat")
	if s == nil {
		t.Fatal("histogram missing from snapshot")
	}
	if s.Count != 100 {
		t.Fatalf("count = %d", s.Count)
	}
	if s.Max != 100*time.Millisecond {
		t.Fatalf("max = %v", s.Max)
	}
	// Log-scale buckets bound the error to one bucket width: p50 of a
	// uniform 1..100ms distribution must land within (32ms, 64ms].
	if s.P50 <= 32*time.Millisecond || s.P50 > 64*time.Millisecond {
		t.Errorf("p50 = %v, want in (32ms, 64ms]", s.P50)
	}
	if s.P99 <= 64*time.Millisecond || s.P99 > 100*time.Millisecond {
		t.Errorf("p99 = %v, want in (64ms, 100ms] (clamped to max)", s.P99)
	}
	// Bucket sums must equal the observation count (the invariant the
	// mgmt-query test asserts over the wire).
	var sum uint64
	for _, b := range s.Buckets {
		sum += b.N
	}
	if sum != s.Count {
		t.Fatalf("bucket sum %d != count %d", sum, s.Count)
	}
}

func TestHistogramEmptyAndSingle(t *testing.T) {
	var h Histogram
	if q := quantile([HistBuckets]uint64{}, 0, 0, 0.5); q != 0 {
		t.Fatalf("empty quantile = %v", q)
	}
	h.Observe(3 * time.Millisecond)
	s := histSnap("one", &h)
	if s.P50 > 3*time.Millisecond || s.P99 > 3*time.Millisecond {
		t.Fatalf("single-observation quantiles exceed max: p50=%v p99=%v", s.P50, s.P99)
	}
}

func TestFuncMetricAndSnapshotLookup(t *testing.T) {
	r := NewRegistry()
	v := uint64(41)
	r.Func("ext.value", func() uint64 { return v })
	v++
	s := r.Snapshot()
	if got := s.Count("ext.value"); got != 42 {
		t.Fatalf("func metric = %d", got)
	}
	if _, ok := s.Value("missing"); ok {
		t.Fatal("lookup of missing metric succeeded")
	}
}

func TestSnapshotJSONRoundTrip(t *testing.T) {
	r := NewRegistry()
	r.Counter("a").Inc()
	r.Gauge("b").Set(3)
	r.Histogram("c").Observe(time.Millisecond)
	var back Snapshot
	if err := json.Unmarshal([]byte(r.Snapshot().JSON()), &back); err != nil {
		t.Fatalf("unmarshal: %v", err)
	}
	if back.Count("a") != 1 || back.Gauge("b").Value != 3 || back.Hist("c").Count != 1 {
		t.Fatalf("round trip lost data: %+v", back)
	}
	if txt := r.Snapshot().Text(); txt == "" {
		t.Fatal("empty text rendering")
	}
}

func TestRingWrapAndLast(t *testing.T) {
	ring := NewRing(4)
	for i := 0; i < 10; i++ {
		ring.Publish(Event{Kind: "k", CallID: uint32(i)})
	}
	if ring.Total() != 10 {
		t.Fatalf("total = %d", ring.Total())
	}
	evs := ring.Last(4)
	if len(evs) != 4 {
		t.Fatalf("last = %d events", len(evs))
	}
	for i, ev := range evs {
		if want := uint32(6 + i); ev.CallID != want {
			t.Fatalf("event %d: call=%d want %d", i, ev.CallID, want)
		}
		if ev.Seq != uint64(6+i) {
			t.Fatalf("event %d: seq=%d", i, ev.Seq)
		}
	}
	if got := ring.Last(100); len(got) != 4 {
		t.Fatalf("overlong Last = %d", len(got))
	}
}

func TestTracerEnableAndSubscribe(t *testing.T) {
	r := NewRegistry()
	tr := r.Tracer("sighost")
	if tr.Enabled() {
		t.Fatal("tracer enabled by default")
	}
	var nilTr *Tracer
	if nilTr.Enabled() {
		t.Fatal("nil tracer claims enabled")
	}
	nilTr.Emit(Event{}) // must not panic

	tr.Emit(Event{Kind: "dropped"})
	if r.Ring().Total() != 0 {
		t.Fatal("disabled tracer published")
	}

	var seen []Event
	r.Ring().Subscribe(func(ev Event) { seen = append(seen, ev) })
	r.EnableTrace("sighost", true)
	tr.Emit(Event{Kind: "kept", VCI: 9})
	if r.Ring().Total() != 1 {
		t.Fatal("enabled tracer did not publish")
	}
	if len(seen) != 1 || seen[0].Comp != "sighost" || seen[0].VCI != 9 {
		t.Fatalf("subscriber saw %+v", seen)
	}
	if r.Tracer("sighost") != tr {
		t.Fatal("tracer identity not stable")
	}
}

func TestEventJSONOmitsData(t *testing.T) {
	ev := Event{Kind: "x", Text: "rendered", Data: struct{ Secret string }{"s"}}
	out, err := json.Marshal(ev)
	if err != nil {
		t.Fatal(err)
	}
	if string(out) == "" || json.Valid(out) == false {
		t.Fatal("bad JSON")
	}
	var m map[string]any
	_ = json.Unmarshal(out, &m)
	if _, leaked := m["Data"]; leaked {
		t.Fatal("Data marshaled")
	}
	if m["text"] != "rendered" {
		t.Fatalf("text = %v", m["text"])
	}
}
