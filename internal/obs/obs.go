// Package obs is the repo's zero-dependency telemetry layer: a registry of
// named counters, gauges and sim-time histograms, plus a bounded structured
// event ring (ring.go). Components register metrics by dotted name
// ("component.metric", e.g. "sighost.calls.established") against the registry
// owned by their kern.Machine; the testbed report, the sigmsg mgmt queries
// ("stats" / "stats.json") and cmd/xunetstat all render from Snapshot().
//
// All metric mutation paths are atomic and safe from any goroutine; the
// registry map itself is mutex-guarded but only touched at registration and
// snapshot time, never on hot paths (call sites hold *Counter etc. directly).
package obs

import (
	"encoding/json"
	"fmt"
	"math/bits"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Counter is a monotonically increasing event count.
type Counter struct {
	v atomic.Uint64
}

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n.
func (c *Counter) Add(n uint64) { c.v.Add(n) }

// Value returns the current count.
func (c *Counter) Value() uint64 { return c.v.Load() }

// Gauge is an instantaneous level (queue depth, live procs) that also tracks
// its high-water mark, so transient saturation survives into the snapshot.
type Gauge struct {
	v   atomic.Int64
	max atomic.Int64
}

// Set replaces the level and raises the high-water mark if needed.
func (g *Gauge) Set(n int64) {
	g.v.Store(n)
	g.raise(n)
}

// Add shifts the level by delta and raises the high-water mark if needed.
func (g *Gauge) Add(delta int64) {
	n := g.v.Add(delta)
	g.raise(n)
}

func (g *Gauge) raise(n int64) {
	for {
		m := g.max.Load()
		if n <= m || g.max.CompareAndSwap(m, n) {
			return
		}
	}
}

// Value returns the current level.
func (g *Gauge) Value() int64 { return g.v.Load() }

// Max returns the high-water mark.
func (g *Gauge) Max() int64 { return g.max.Load() }

// HistBuckets is the number of log-scale latency buckets. Bucket 0 holds
// observations <= 1µs; bucket i holds (1µs<<(i-1), 1µs<<i]; the last bucket
// is unbounded. 1µs<<38 is ~76h of sim time, far beyond any run.
const HistBuckets = 40

// Histogram accumulates sim-time durations into fixed log-scale buckets.
// Quantiles are estimated by linear interpolation inside the matched bucket
// and clamped to the observed maximum.
type Histogram struct {
	buckets [HistBuckets]atomic.Uint64
	count   atomic.Uint64
	sum     atomic.Int64
	max     atomic.Int64
}

func bucketOf(d time.Duration) int {
	if d <= time.Microsecond {
		return 0
	}
	// Smallest i with 1µs<<i >= d. Subtracting one nanosecond keeps exact
	// bucket bounds (2µs, 4µs, ...) in their own bucket.
	i := bits.Len64(uint64(d-1) / 1000)
	if i >= HistBuckets {
		return HistBuckets - 1
	}
	return i
}

// BucketBound returns the inclusive upper bound of bucket i (the last bucket
// reports its nominal bound even though it is open-ended).
func BucketBound(i int) time.Duration {
	return time.Microsecond << i
}

// Observe records one duration. Negative values clamp to zero.
func (h *Histogram) Observe(d time.Duration) {
	if d < 0 {
		d = 0
	}
	h.buckets[bucketOf(d)].Add(1)
	h.count.Add(1)
	h.sum.Add(int64(d))
	for {
		m := h.max.Load()
		if int64(d) <= m || h.max.CompareAndSwap(m, int64(d)) {
			break
		}
	}
}

// Count returns the number of observations.
func (h *Histogram) Count() uint64 { return h.count.Load() }

// Quantile estimates the q-quantile of the live histogram without building a
// snapshot, so periodic scrapers (obs/tseries) stay allocation-free.
func (h *Histogram) Quantile(q float64) time.Duration {
	var counts [HistBuckets]uint64
	for i := range counts {
		counts[i] = h.buckets[i].Load()
	}
	return quantile(counts, h.count.Load(), time.Duration(h.max.Load()), q)
}

// Registry holds a machine's (or fabric's) named metrics plus its event ring.
type Registry struct {
	mu       sync.Mutex
	counters map[string]*Counter
	gauges   map[string]*Gauge
	hists    map[string]*Histogram
	funcs    map[string]func() uint64
	tracers  map[string]*Tracer
	ring     *Ring
}

// NewRegistry returns an empty registry with a DefaultRingSize event ring.
func NewRegistry() *Registry {
	return &Registry{
		counters: make(map[string]*Counter),
		gauges:   make(map[string]*Gauge),
		hists:    make(map[string]*Histogram),
		funcs:    make(map[string]func() uint64),
		tracers:  make(map[string]*Tracer),
		ring:     NewRing(DefaultRingSize),
	}
}

// Counter returns the counter registered under name, creating it on first use.
func (r *Registry) Counter(name string) *Counter {
	r.mu.Lock()
	defer r.mu.Unlock()
	c, ok := r.counters[name]
	if !ok {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Gauge returns the gauge registered under name, creating it on first use.
func (r *Registry) Gauge(name string) *Gauge {
	r.mu.Lock()
	defer r.mu.Unlock()
	g, ok := r.gauges[name]
	if !ok {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// Histogram returns the histogram registered under name, creating it on
// first use.
func (r *Registry) Histogram(name string) *Histogram {
	r.mu.Lock()
	defer r.mu.Unlock()
	h, ok := r.hists[name]
	if !ok {
		h = &Histogram{}
		r.hists[name] = h
	}
	return h
}

// Func registers a read-through metric: fn is sampled at snapshot time and
// reported alongside counters. It lets components with plain uint64 fields
// (trunk cell counts, AAL5 frame totals) surface in the registry without an
// atomic rewrite. fn must be safe to call at snapshot time — for sim-side
// metrics that means outside Engine.Run or from the owning actor.
func (r *Registry) Func(name string, fn func() uint64) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.funcs[name] = fn
}

// MetricCount returns how many metrics (counters, gauges, histograms, funcs)
// are registered. Scrapers compare it across ticks to detect lazily
// registered metrics cheaply, rescanning only on growth.
func (r *Registry) MetricCount() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.counters) + len(r.gauges) + len(r.hists) + len(r.funcs)
}

// Visit enumerates every registered metric in sorted-name order, one callback
// per kind (nil callbacks skip that kind). The callbacks run outside the
// registry lock and receive the live metric handles, letting scrapers resolve
// sources once instead of re-snapshotting.
func (r *Registry) Visit(counter func(string, *Counter), gauge func(string, *Gauge), hist func(string, *Histogram), fn func(string, func() uint64)) {
	r.mu.Lock()
	cnames := sortedKeys(r.counters)
	gnames := sortedKeys(r.gauges)
	hnames := sortedKeys(r.hists)
	fnames := sortedKeys(r.funcs)
	counters := make([]*Counter, len(cnames))
	for i, n := range cnames {
		counters[i] = r.counters[n]
	}
	gauges := make([]*Gauge, len(gnames))
	for i, n := range gnames {
		gauges[i] = r.gauges[n]
	}
	hists := make([]*Histogram, len(hnames))
	for i, n := range hnames {
		hists[i] = r.hists[n]
	}
	funcs := make([]func() uint64, len(fnames))
	for i, n := range fnames {
		funcs[i] = r.funcs[n]
	}
	r.mu.Unlock()
	if counter != nil {
		for i, n := range cnames {
			counter(n, counters[i])
		}
	}
	if gauge != nil {
		for i, n := range gnames {
			gauge(n, gauges[i])
		}
	}
	if hist != nil {
		for i, n := range hnames {
			hist(n, hists[i])
		}
	}
	if fn != nil {
		for i, n := range fnames {
			fn(n, funcs[i])
		}
	}
}

func sortedKeys[V any](m map[string]V) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// Snapshot renders every metric into a plain, marshalable value. Counters and
// Funcs merge into one sorted list.
func (r *Registry) Snapshot() Snapshot {
	r.mu.Lock()
	defer r.mu.Unlock()
	var s Snapshot
	for name, c := range r.counters {
		s.Counters = append(s.Counters, CounterSnap{Name: name, Value: c.Value()})
	}
	for name, fn := range r.funcs {
		s.Counters = append(s.Counters, CounterSnap{Name: name, Value: fn()})
	}
	for name, g := range r.gauges {
		s.Gauges = append(s.Gauges, GaugeSnap{Name: name, Value: g.Value(), Max: g.Max()})
	}
	for name, h := range r.hists {
		s.Hists = append(s.Hists, histSnap(name, h))
	}
	sort.Slice(s.Counters, func(i, j int) bool { return s.Counters[i].Name < s.Counters[j].Name })
	sort.Slice(s.Gauges, func(i, j int) bool { return s.Gauges[i].Name < s.Gauges[j].Name })
	sort.Slice(s.Hists, func(i, j int) bool { return s.Hists[i].Name < s.Hists[j].Name })
	return s
}

// Snapshot is a point-in-time copy of a registry, ordered by name and
// marshalable with encoding/json (durations serialize as nanoseconds).
type Snapshot struct {
	Counters []CounterSnap `json:"counters,omitempty"`
	Gauges   []GaugeSnap   `json:"gauges,omitempty"`
	Hists    []HistSnap    `json:"hists,omitempty"`
}

// CounterSnap is one counter (or Func sample) in a Snapshot.
type CounterSnap struct {
	Name  string `json:"name"`
	Value uint64 `json:"value"`
}

// GaugeSnap is one gauge level plus its high-water mark.
type GaugeSnap struct {
	Name  string `json:"name"`
	Value int64  `json:"value"`
	Max   int64  `json:"max"`
}

// HistSnap is one histogram with derived quantiles and its raw buckets
// (empty buckets omitted), so consumers can verify bucket sums match Count.
type HistSnap struct {
	Name    string        `json:"name"`
	Count   uint64        `json:"count"`
	Sum     time.Duration `json:"sum_ns"`
	Max     time.Duration `json:"max_ns"`
	P50     time.Duration `json:"p50_ns"`
	P95     time.Duration `json:"p95_ns"`
	P99     time.Duration `json:"p99_ns"`
	Buckets []BucketSnap  `json:"buckets,omitempty"`
}

// BucketSnap is one non-empty histogram bucket: N observations <= Le (and
// greater than the previous bucket's Le).
type BucketSnap struct {
	Le time.Duration `json:"le_ns"`
	N  uint64        `json:"n"`
}

func histSnap(name string, h *Histogram) HistSnap {
	hs := HistSnap{
		Name:  name,
		Count: h.count.Load(),
		Sum:   time.Duration(h.sum.Load()),
		Max:   time.Duration(h.max.Load()),
	}
	var counts [HistBuckets]uint64
	for i := range counts {
		n := h.buckets[i].Load()
		counts[i] = n
		if n > 0 {
			hs.Buckets = append(hs.Buckets, BucketSnap{Le: BucketBound(i), N: n})
		}
	}
	hs.P50 = quantile(counts, hs.Count, hs.Max, 0.50)
	hs.P95 = quantile(counts, hs.Count, hs.Max, 0.95)
	hs.P99 = quantile(counts, hs.Count, hs.Max, 0.99)
	return hs
}

func quantile(counts [HistBuckets]uint64, total uint64, max time.Duration, q float64) time.Duration {
	if total == 0 {
		return 0
	}
	rank := q * float64(total)
	if rank < 1 {
		rank = 1
	}
	var cum float64
	for i, n := range counts {
		if n == 0 {
			continue
		}
		prev := cum
		cum += float64(n)
		if cum >= rank {
			lo := time.Duration(0)
			if i > 0 {
				lo = BucketBound(i - 1)
			}
			hi := BucketBound(i)
			if hi > max {
				hi = max
			}
			if hi < lo {
				return hi
			}
			frac := (rank - prev) / float64(n)
			return lo + time.Duration(frac*float64(hi-lo))
		}
	}
	return max
}

// Value returns the named counter (or Func sample) and whether it exists.
func (s Snapshot) Value(name string) (uint64, bool) {
	for _, c := range s.Counters {
		if c.Name == name {
			return c.Value, true
		}
	}
	return 0, false
}

// Count returns the named counter's value, or zero if absent.
func (s Snapshot) Count(name string) uint64 {
	v, _ := s.Value(name)
	return v
}

// Gauge returns the named gauge snapshot, or nil.
func (s Snapshot) Gauge(name string) *GaugeSnap {
	for i := range s.Gauges {
		if s.Gauges[i].Name == name {
			return &s.Gauges[i]
		}
	}
	return nil
}

// Hist returns the named histogram snapshot, or nil.
func (s Snapshot) Hist(name string) *HistSnap {
	for i := range s.Hists {
		if s.Hists[i].Name == name {
			return &s.Hists[i]
		}
	}
	return nil
}

// Text renders the snapshot as aligned "name value" lines: counters first,
// then gauges with their high-water marks, then histogram quantile summaries.
func (s Snapshot) Text() string {
	var b strings.Builder
	for _, c := range s.Counters {
		fmt.Fprintf(&b, "%s %d\n", c.Name, c.Value)
	}
	for _, g := range s.Gauges {
		fmt.Fprintf(&b, "%s %d max=%d\n", g.Name, g.Value, g.Max)
	}
	for _, h := range s.Hists {
		fmt.Fprintf(&b, "%s count=%d p50=%v p95=%v p99=%v max=%v\n",
			h.Name, h.Count, h.P50, h.P95, h.P99, h.Max)
	}
	return b.String()
}

// JSON renders the snapshot as compact JSON.
func (s Snapshot) JSON() string {
	out, err := json.Marshal(s)
	if err != nil {
		return "{}" // unreachable: Snapshot is plain data
	}
	return string(out)
}
