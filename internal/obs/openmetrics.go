package obs

import (
	"fmt"
	"strings"
)

// OpenMetrics renders the snapshot in the OpenMetrics text exposition format,
// for the real-mode daemon's /metrics endpoint. Dotted metric names become
// underscore-separated ("sighost.calls.established" ->
// "sighost_calls_established"); counters get a _total suffix; histogram
// buckets are emitted cumulatively with le in seconds, Prometheus-style.
func (s Snapshot) OpenMetrics() string {
	var b strings.Builder
	for _, c := range s.Counters {
		n := omName(c.Name)
		fmt.Fprintf(&b, "# TYPE %s counter\n%s_total %d\n", n, n, c.Value)
	}
	for _, g := range s.Gauges {
		n := omName(g.Name)
		fmt.Fprintf(&b, "# TYPE %s gauge\n%s %d\n%s_max %d\n", n, n, g.Value, n, g.Max)
	}
	for _, h := range s.Hists {
		n := omName(h.Name)
		fmt.Fprintf(&b, "# TYPE %s histogram\n", n)
		var cum uint64
		for _, bk := range h.Buckets {
			cum += bk.N
			fmt.Fprintf(&b, "%s_bucket{le=\"%g\"} %d\n", n, bk.Le.Seconds(), cum)
		}
		fmt.Fprintf(&b, "%s_bucket{le=\"+Inf\"} %d\n", n, h.Count)
		fmt.Fprintf(&b, "%s_sum %g\n%s_count %d\n", n, h.Sum.Seconds(), n, h.Count)
	}
	b.WriteString("# EOF\n")
	return b.String()
}

// omName maps a dotted registry name to an OpenMetrics-safe identifier.
func omName(name string) string {
	var b strings.Builder
	b.Grow(len(name))
	for i := 0; i < len(name); i++ {
		c := name[i]
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c == '_':
			b.WriteByte(c)
		case c >= '0' && c <= '9':
			if i == 0 {
				b.WriteByte('_')
			}
			b.WriteByte(c)
		default:
			b.WriteByte('_')
		}
	}
	return b.String()
}
