package obs

import (
	"runtime"
	"time"
)

// RuntimeSampler mirrors Go runtime health into a registry: heap in use and
// goroutine count as gauges, GC pauses as a histogram. It exists for the
// real-mode daemon, where the process competes with the workload for the
// machine; the sim tier never registers one (runtime state is not part of the
// simulated world and would break determinism).
type RuntimeSampler struct {
	heap       *Gauge
	goroutines *Gauge
	gcPause    *Histogram
	lastGC     uint32 // NumGC at the previous sample; new pauses are behind it
}

// NewRuntimeSampler registers go.heap_inuse_bytes, go.goroutines and
// go.gc_pause in r and returns the sampler. Call Sample on every scrape tick.
func NewRuntimeSampler(r *Registry) *RuntimeSampler {
	return &RuntimeSampler{
		heap:       r.Gauge("go.heap_inuse_bytes"),
		goroutines: r.Gauge("go.goroutines"),
		gcPause:    r.Histogram("go.gc_pause"),
	}
}

// Sample reads the runtime and updates the registered metrics. GC pauses are
// drained incrementally from the PauseNs ring: only cycles completed since the
// previous Sample are observed, each exactly once (up to the ring's 256-entry
// history).
func (rs *RuntimeSampler) Sample() {
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	rs.heap.Set(int64(ms.HeapInuse))
	rs.goroutines.Set(int64(runtime.NumGoroutine()))
	newCycles := ms.NumGC - rs.lastGC
	if newCycles > uint32(len(ms.PauseNs)) {
		newCycles = uint32(len(ms.PauseNs))
	}
	for i := uint32(0); i < newCycles; i++ {
		// PauseNs[(NumGC+255)%256] is the most recent pause.
		pause := ms.PauseNs[(ms.NumGC-i+255)%256]
		rs.gcPause.Observe(time.Duration(pause))
	}
	rs.lastGC = ms.NumGC
}
