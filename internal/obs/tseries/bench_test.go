package tseries

import "testing"

// disabledPeak is deliberately a package-level var so the compiler cannot
// constant-fold the nil check away, mirroring the trace/faults bench pattern.
var disabledPeak *Peak

// BenchmarkTSeriesOverhead/disabled is the CI gate (make obsgate): the
// instrumentation left compiled into hot paths when time-series collection is
// off — a nil Peak note — must stay under 5ns/op.
func BenchmarkTSeriesOverhead(b *testing.B) {
	b.Run("disabled", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			disabledPeak.Note(int64(i))
		}
		avg := float64(b.Elapsed().Nanoseconds()) / float64(b.N)
		if b.N >= 1_000_000 && avg > 5 {
			b.Fatalf("disabled tseries hook costs %.2f ns/op, budget is 5 ns/op", avg)
		}
	})
	b.Run("enabled", func(b *testing.B) {
		var p Peak
		for i := 0; i < b.N; i++ {
			p.Note(int64(i % 64))
		}
	})
}
