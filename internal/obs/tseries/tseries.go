// Package tseries is the continuous-telemetry layer over the obs
// registry: a time-series store that scrapes counters (as per-tick
// deltas), gauges (level plus high-water) and histograms (count delta
// plus P99) into fixed-capacity point rings, one tick at a time. Ticks
// are driven externally — sim-time events in the testbed, a wall-clock
// ticker in the real-mode daemon — so the store itself never touches a
// clock and same-seed runs export byte-identical series.
//
// Declarative watermark rules (queue depth over N for M ticks,
// retransmit-rate spikes, flight-dump bursts) evaluate after every
// scrape and emit health events on state edges; consumers wire
// OnHealthEvent to publish them into an obs ring or trigger the flight
// recorder.
//
// The steady state allocates nothing: rings are pre-sized, sources are
// resolved once, and registry rescans run only when a registry has
// grown. Hot paths feed the store through Peak, whose disabled (nil)
// form costs one pointer check — gated under 5 ns by
// BenchmarkTSeriesOverhead, like the trace and faults planes.
package tseries

import (
	"encoding/json"
	"fmt"
	"sort"
	"strings"
	"sync"
	"time"

	"xunet/internal/obs"
)

// Config sizes a store.
type Config struct {
	// Interval is the nominal tick period. The store does not schedule
	// ticks itself; the value scales rate-style series (utilization) and
	// is recorded in exports.
	Interval time.Duration
	// Capacity is how many points each series retains (ring; oldest
	// overwritten).
	Capacity int
	// EventCapacity bounds the health-event ring (default 256).
	EventCapacity int
}

// DefaultInterval and DefaultCapacity apply when Config leaves them zero.
const (
	DefaultInterval      = 10 * time.Millisecond
	DefaultCapacity      = 512
	DefaultEventCapacity = 256
)

// Kind classifies how a series samples its source.
type Kind uint8

const (
	// KindCounter samples a monotonic total: V is the delta since the
	// previous tick (scaled by num/den when set), Aux the raw total.
	KindCounter Kind = iota
	// KindGauge samples a level: V is the instantaneous value, Aux the
	// high-water mark.
	KindGauge
	// KindHist samples a histogram: V is the observation-count delta,
	// Aux the current P99 in nanoseconds.
	KindHist
)

func (k Kind) String() string {
	switch k {
	case KindCounter:
		return "counter"
	case KindGauge:
		return "gauge"
	case KindHist:
		return "hist"
	}
	return "?"
}

// Point is one scraped sample.
type Point struct {
	At  time.Duration `json:"at_ns"`
	V   int64         `json:"v"`
	Aux int64         `json:"aux"`
}

// series is one tracked source with its fixed-capacity point ring.
type series struct {
	name string
	kind Kind

	counterFn func() uint64          // KindCounter
	gaugeFn   func() (int64, int64)  // KindGauge: (value, high-water)
	hist      *obs.Histogram         // KindHist
	last      uint64                 // previous counter/hist-count sample
	num, den  int64                  // counter delta scaling (0 den = none)

	ring []Point
	n    int // points stored (<= len(ring))
	head int // oldest point index once the ring has wrapped
}

func (s *series) push(p Point) {
	if s.n < len(s.ring) {
		s.ring[s.n] = p
		s.n++
		return
	}
	s.ring[s.head] = p
	s.head++
	if s.head == len(s.ring) {
		s.head = 0
	}
}

// latest returns the newest point (zero Point before the first tick).
func (s *series) latest() Point {
	if s.n == 0 {
		return Point{}
	}
	i := s.head + s.n - 1
	if i >= len(s.ring) {
		i -= len(s.ring)
	}
	return s.ring[i]
}

func (s *series) sample(at time.Duration) {
	var p Point
	p.At = at
	switch s.kind {
	case KindCounter:
		cur := s.counterFn()
		var d int64
		// Sources backed by plain fields may be rolled back a little
		// (xswitch cell-train truncation); clamp instead of wrapping.
		if cur >= s.last {
			d = int64(cur - s.last)
		}
		s.last = cur
		if s.den > 0 {
			d = d * s.num / s.den
		}
		p.V, p.Aux = d, int64(cur)
	case KindGauge:
		p.V, p.Aux = s.gaugeFn()
	case KindHist:
		cur := s.hist.Count()
		var d int64
		if cur >= s.last {
			d = int64(cur - s.last)
		}
		s.last = cur
		p.V, p.Aux = d, int64(s.hist.Quantile(0.99))
	}
	s.push(p)
}

// regSource is one registry under periodic rescan: when the registry
// has grown since the last scan (lazy metric registration), the new
// metrics are adopted as series.
type regSource struct {
	prefix   string
	reg      *obs.Registry
	lastSize int
}

// Rule is a declarative watermark: fire when a series' sampled value
// stays past the threshold for ForTicks consecutive ticks; clear on the
// first tick back inside. Series may contain one '*' wildcard, matching
// every series whose name fits the prefix/suffix around it — each match
// tracks its own independent fire/clear state.
type Rule struct {
	Name   string `json:"name"`
	Series string `json:"series"`
	// Threshold compares against the point's V (or Aux when OnAux):
	// fire condition is value >= Threshold, or <= when Below.
	Threshold int64 `json:"threshold"`
	Below     bool  `json:"below,omitempty"`
	// OnAux watches the auxiliary component (gauge high-water, counter
	// raw total, histogram P99) instead of V.
	OnAux bool `json:"on_aux,omitempty"`
	// ForTicks is how many consecutive out-of-band ticks arm the rule
	// (minimum 1).
	ForTicks int `json:"for_ticks"`
}

type ruleState struct {
	streak int
	firing bool
}

type rule struct {
	def    Rule
	states map[int]*ruleState // series index -> state
}

func (r *rule) matches(name string) bool {
	p := r.def.Series
	i := strings.IndexByte(p, '*')
	if i < 0 {
		return name == p
	}
	return len(name) >= len(p)-1 && strings.HasPrefix(name, p[:i]) && strings.HasSuffix(name, p[i+1:])
}

// HealthEvent is one watermark edge: a rule starting to fire over a
// series, or clearing.
type HealthEvent struct {
	At     time.Duration `json:"at_ns"`
	Tick   uint64        `json:"tick"`
	Rule   string        `json:"rule"`
	Series string        `json:"series"`
	Value  int64         `json:"value"`
	State  string        `json:"state"` // "fire" | "clear"
}

// String renders one event line.
func (ev HealthEvent) String() string {
	return fmt.Sprintf("[%v] %s %s %s value=%d", ev.At, ev.State, ev.Rule, ev.Series, ev.Value)
}

// Store holds every tracked series, the watermark rules, and the health
// event ring. All methods are mutex-guarded and nil-safe, so a disabled
// deployment passes a nil *Store around freely.
type Store struct {
	mu       sync.Mutex
	interval time.Duration
	capacity int

	series []*series
	byName map[string]bool
	regs   []regSource

	rules   []*rule
	events  []HealthEvent
	evN     int
	evHead  int
	onEvent func(HealthEvent)

	ticks  uint64
	lastAt time.Duration
}

// New returns an empty store.
func New(cfg Config) *Store {
	if cfg.Interval <= 0 {
		cfg.Interval = DefaultInterval
	}
	if cfg.Capacity <= 0 {
		cfg.Capacity = DefaultCapacity
	}
	if cfg.EventCapacity <= 0 {
		cfg.EventCapacity = DefaultEventCapacity
	}
	return &Store{
		interval: cfg.Interval,
		capacity: cfg.Capacity,
		byName:   make(map[string]bool),
		events:   make([]HealthEvent, cfg.EventCapacity),
	}
}

// Enabled reports whether scraping is armed at all; safe on nil.
func (st *Store) Enabled() bool { return st != nil }

// Interval reports the nominal tick period.
func (st *Store) Interval() time.Duration {
	if st == nil {
		return 0
	}
	return st.interval
}

// add registers s unless the name is already tracked (first wins).
func (st *Store) add(s *series) {
	if st.byName[s.name] {
		return
	}
	s.ring = make([]Point, st.capacity)
	// Prime the counter baseline so the first tick reports a true
	// delta rather than the accumulated history.
	switch s.kind {
	case KindCounter:
		s.last = s.counterFn()
	case KindHist:
		s.last = s.hist.Count()
	}
	st.byName[s.name] = true
	st.series = append(st.series, s)
}

// TrackCounter tracks a counter's per-tick delta.
func (st *Store) TrackCounter(name string, c *obs.Counter) {
	st.TrackRateFunc(name, c.Value, 0, 0)
}

// TrackRateFunc tracks a monotonic total read through fn. When den > 0
// each delta is scaled by num/den — utilization series scale cell
// deltas by serialization-time/interval this way.
func (st *Store) TrackRateFunc(name string, fn func() uint64, num, den int64) {
	if st == nil {
		return
	}
	st.mu.Lock()
	defer st.mu.Unlock()
	st.add(&series{name: name, kind: KindCounter, counterFn: fn, num: num, den: den})
}

// TrackGauge tracks a gauge's level and high-water mark.
func (st *Store) TrackGauge(name string, g *obs.Gauge) {
	st.TrackGaugeFunc(name, func() (int64, int64) { return g.Value(), g.Max() })
}

// TrackGaugeFunc tracks a level read through fn, which returns
// (value, high-water). fn runs at tick time under the store lock.
func (st *Store) TrackGaugeFunc(name string, fn func() (int64, int64)) {
	if st == nil {
		return
	}
	st.mu.Lock()
	defer st.mu.Unlock()
	st.add(&series{name: name, kind: KindGauge, gaugeFn: fn})
}

// TrackHistogram tracks a histogram's observation rate and P99.
func (st *Store) TrackHistogram(name string, h *obs.Histogram) {
	if st == nil {
		return
	}
	st.mu.Lock()
	defer st.mu.Unlock()
	st.add(&series{name: name, kind: KindHist, hist: h})
}

// TrackRegistry adopts every metric in reg, each series named
// prefix+metric. The registry is rescanned on ticks where it has grown,
// so lazily registered metrics (journal counters, per-peer backlogs)
// join the store when they appear.
func (st *Store) TrackRegistry(prefix string, reg *obs.Registry) {
	if st == nil {
		return
	}
	st.mu.Lock()
	defer st.mu.Unlock()
	rs := regSource{prefix: prefix, reg: reg}
	st.scanRegistry(&rs)
	st.regs = append(st.regs, rs)
}

// scanRegistry adopts reg's current metrics (idempotent per name).
func (st *Store) scanRegistry(rs *regSource) {
	rs.lastSize = rs.reg.MetricCount()
	rs.reg.Visit(
		func(name string, c *obs.Counter) {
			st.add(&series{name: rs.prefix + name, kind: KindCounter, counterFn: c.Value})
		},
		func(name string, g *obs.Gauge) {
			st.add(&series{name: rs.prefix + name, kind: KindGauge, gaugeFn: func() (int64, int64) { return g.Value(), g.Max() }})
		},
		func(name string, h *obs.Histogram) {
			st.add(&series{name: rs.prefix + name, kind: KindHist, hist: h})
		},
		func(name string, fn func() uint64) {
			st.add(&series{name: rs.prefix + name, kind: KindCounter, counterFn: fn})
		},
	)
}

// AddRule installs a watermark rule.
func (st *Store) AddRule(r Rule) {
	if st == nil {
		return
	}
	if r.ForTicks < 1 {
		r.ForTicks = 1
	}
	st.mu.Lock()
	defer st.mu.Unlock()
	st.rules = append(st.rules, &rule{def: r, states: make(map[int]*ruleState)})
}

// OnHealthEvent installs the edge callback, invoked under the store
// lock at tick time — keep it light (publish to a ring, trigger a
// flight dump).
func (st *Store) OnHealthEvent(fn func(HealthEvent)) {
	if st == nil {
		return
	}
	st.mu.Lock()
	defer st.mu.Unlock()
	st.onEvent = fn
}

// Tick scrapes every series at the given timestamp and evaluates the
// watermark rules. Call it from whatever owns time: a sim event or a
// wall-clock ticker. Safe (a no-op) on nil.
func (st *Store) Tick(now time.Duration) {
	if st == nil {
		return
	}
	st.mu.Lock()
	defer st.mu.Unlock()
	st.ticks++
	st.lastAt = now
	for i := range st.regs {
		rs := &st.regs[i]
		if rs.reg.MetricCount() != rs.lastSize {
			st.scanRegistry(rs)
		}
	}
	for _, s := range st.series {
		s.sample(now)
	}
	st.evalRules(now)
}

func (st *Store) evalRules(now time.Duration) {
	for _, r := range st.rules {
		for i, s := range st.series {
			if !r.matches(s.name) {
				continue
			}
			state := r.states[i]
			if state == nil {
				state = &ruleState{}
				r.states[i] = state
			}
			p := s.latest()
			v := p.V
			if r.def.OnAux {
				v = p.Aux
			}
			out := v >= r.def.Threshold
			if r.def.Below {
				out = v <= r.def.Threshold
			}
			if out {
				state.streak++
			} else {
				state.streak = 0
			}
			switch {
			case !state.firing && state.streak >= r.def.ForTicks:
				state.firing = true
				st.emit(HealthEvent{At: now, Tick: st.ticks, Rule: r.def.Name, Series: s.name, Value: v, State: "fire"})
			case state.firing && !out:
				state.firing = false
				st.emit(HealthEvent{At: now, Tick: st.ticks, Rule: r.def.Name, Series: s.name, Value: v, State: "clear"})
			}
		}
	}
}

// emit appends ev to the bounded event ring and invokes the callback.
func (st *Store) emit(ev HealthEvent) {
	if st.evN < len(st.events) {
		st.events[st.evN] = ev
		st.evN++
	} else {
		st.events[st.evHead] = ev
		st.evHead++
		if st.evHead == len(st.events) {
			st.evHead = 0
		}
	}
	if st.onEvent != nil {
		st.onEvent(ev)
	}
}

// Ticks reports how many scrapes have run.
func (st *Store) Ticks() uint64 {
	if st == nil {
		return 0
	}
	st.mu.Lock()
	defer st.mu.Unlock()
	return st.ticks
}

// Events returns the retained health events, oldest first.
func (st *Store) Events() []HealthEvent {
	if st == nil {
		return nil
	}
	st.mu.Lock()
	defer st.mu.Unlock()
	return st.eventsLocked()
}

func (st *Store) eventsLocked() []HealthEvent {
	out := make([]HealthEvent, 0, st.evN)
	for i := 0; i < st.evN; i++ {
		j := st.evHead + i
		if j >= len(st.events) {
			j -= len(st.events)
		}
		out = append(out, st.events[j])
	}
	return out
}

// SeriesSnap is one exported series, points oldest first.
type SeriesSnap struct {
	Name   string  `json:"name"`
	Kind   string  `json:"kind"`
	Points []Point `json:"points,omitempty"`
}

// RuleSnap is one watermark rule's state over one matched series.
type RuleSnap struct {
	Rule   string `json:"rule"`
	Series string `json:"series"`
	Firing bool   `json:"firing"`
	Streak int    `json:"streak"`
}

// Export is the store's full, deterministic dump: series sorted by
// name, rule states sorted by (rule, series), events oldest first.
type Export struct {
	Interval time.Duration `json:"interval_ns"`
	Ticks    uint64        `json:"ticks"`
	Series   []SeriesSnap  `json:"series,omitempty"`
	Rules    []RuleSnap    `json:"rules,omitempty"`
	Events   []HealthEvent `json:"events,omitempty"`
}

// Export snapshots everything.
func (st *Store) Export() Export {
	if st == nil {
		return Export{}
	}
	st.mu.Lock()
	defer st.mu.Unlock()
	out := Export{Interval: st.interval, Ticks: st.ticks}
	for _, s := range st.series {
		ss := SeriesSnap{Name: s.name, Kind: s.kind.String(), Points: make([]Point, 0, s.n)}
		for i := 0; i < s.n; i++ {
			j := s.head + i
			if j >= len(s.ring) {
				j -= len(s.ring)
			}
			ss.Points = append(ss.Points, s.ring[j])
		}
		out.Series = append(out.Series, ss)
	}
	sort.Slice(out.Series, func(i, j int) bool { return out.Series[i].Name < out.Series[j].Name })
	out.Rules = st.ruleSnapsLocked()
	out.Events = st.eventsLocked()
	return out
}

func (st *Store) ruleSnapsLocked() []RuleSnap {
	var out []RuleSnap
	for _, r := range st.rules {
		for i, state := range r.states {
			out = append(out, RuleSnap{Rule: r.def.Name, Series: st.series[i].name, Firing: state.firing, Streak: state.streak})
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Rule != out[j].Rule {
			return out[i].Rule < out[j].Rule
		}
		return out[i].Series < out[j].Series
	})
	return out
}

// JSON renders the full export as compact JSON (byte-identical across
// same-seed runs).
func (st *Store) JSON() string {
	b, err := json.Marshal(st.Export())
	if err != nil {
		return "{}" // unreachable: Export is plain data
	}
	return string(b)
}

// Text renders one line per series — the latest sample plus how many
// points are retained — sorted by name.
func (st *Store) Text() string {
	if st == nil {
		return "time-series collection disabled\n"
	}
	st.mu.Lock()
	names := make([]string, 0, len(st.series))
	byName := make(map[string]*series, len(st.series))
	for _, s := range st.series {
		names = append(names, s.name)
		byName[s.name] = s
	}
	ticks, at := st.ticks, st.lastAt
	type row struct {
		name string
		kind Kind
		p    Point
		n    int
	}
	rows := make([]row, 0, len(names))
	sort.Strings(names)
	for _, name := range names {
		s := byName[name]
		rows = append(rows, row{name: name, kind: s.kind, p: s.latest(), n: s.n})
	}
	st.mu.Unlock()

	var b strings.Builder
	fmt.Fprintf(&b, "tseries: %d series, %d ticks, last at %v\n", len(rows), ticks, at)
	for _, r := range rows {
		switch r.kind {
		case KindCounter:
			fmt.Fprintf(&b, "%s rate=%d total=%d points=%d\n", r.name, r.p.V, r.p.Aux, r.n)
		case KindGauge:
			fmt.Fprintf(&b, "%s value=%d hi=%d points=%d\n", r.name, r.p.V, r.p.Aux, r.n)
		case KindHist:
			fmt.Fprintf(&b, "%s rate=%d p99=%v points=%d\n", r.name, r.p.V, time.Duration(r.p.Aux), r.n)
		}
	}
	return b.String()
}

// HealthText renders the rule states and recent events.
func (st *Store) HealthText() string {
	if st == nil {
		return "time-series collection disabled\n"
	}
	st.mu.Lock()
	snaps := st.ruleSnapsLocked()
	events := st.eventsLocked()
	st.mu.Unlock()
	var b strings.Builder
	for _, s := range snaps {
		state := "ok"
		if s.Firing {
			state = "FIRING"
		}
		fmt.Fprintf(&b, "%s %s %s streak=%d\n", s.Rule, s.Series, state, s.Streak)
	}
	if len(events) > 0 {
		b.WriteString("EVENTS (oldest first)\n")
		for _, ev := range events {
			b.WriteString("  " + ev.String() + "\n")
		}
	}
	if b.Len() == 0 {
		return "no watermark rules installed\n"
	}
	return b.String()
}

// HealthJSON renders rule states plus events as one JSON object.
func (st *Store) HealthJSON() string {
	if st == nil {
		return "{}"
	}
	st.mu.Lock()
	out := struct {
		Rules  []RuleSnap    `json:"rules,omitempty"`
		Events []HealthEvent `json:"events,omitempty"`
	}{st.ruleSnapsLocked(), st.eventsLocked()}
	st.mu.Unlock()
	b, err := json.Marshal(out)
	if err != nil {
		return "{}"
	}
	return string(b)
}

// Peak is a hot-path high-water accumulator: instrumented call sites
// note a level (queue depth after an enqueue) and the tick scrape takes
// and resets the maximum, so saturation between ticks survives into the
// series. A nil Peak — the disabled deployment — costs one pointer
// check per call site (gated under 5 ns by BenchmarkTSeriesOverhead).
// Not atomic: the writers and the scraper must share a thread (the sim
// engine), exactly like the plain counters on trunks and links.
type Peak struct{ v int64 }

// Note raises the pending high-water mark. Safe on nil.
func (p *Peak) Note(v int64) {
	if p != nil && v > p.v {
		p.v = v
	}
}

// Take returns the high-water mark since the previous Take and resets it.
func (p *Peak) Take() int64 {
	if p == nil {
		return 0
	}
	v := p.v
	p.v = 0
	return v
}
