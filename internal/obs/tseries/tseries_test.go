package tseries

import (
	"strings"
	"testing"
	"time"

	"xunet/internal/obs"
)

func tick(st *Store, i int) { st.Tick(time.Duration(i) * 10 * time.Millisecond) }

func TestCounterDeltasAndBaseline(t *testing.T) {
	st := New(Config{Capacity: 8})
	c := &obs.Counter{}
	c.Add(100) // pre-arm history must not appear as a delta
	st.TrackCounter("c", c)
	c.Add(3)
	tick(st, 1)
	c.Add(5)
	tick(st, 2)
	ex := st.Export()
	if len(ex.Series) != 1 || ex.Series[0].Name != "c" {
		t.Fatalf("series = %+v", ex.Series)
	}
	pts := ex.Series[0].Points
	if len(pts) != 2 || pts[0].V != 3 || pts[0].Aux != 103 || pts[1].V != 5 || pts[1].Aux != 108 {
		t.Fatalf("points = %+v", pts)
	}
}

func TestCounterRollbackClamps(t *testing.T) {
	st := New(Config{Capacity: 8})
	v := uint64(10)
	st.TrackRateFunc("c", func() uint64 { return v }, 0, 0)
	v = 7 // rolled back (xswitch truncate decrements Sent)
	tick(st, 1)
	v = 9
	tick(st, 2)
	pts := st.Export().Series[0].Points
	if pts[0].V != 0 {
		t.Fatalf("rollback delta = %d, want 0 (clamped)", pts[0].V)
	}
	if pts[1].V != 2 {
		t.Fatalf("post-rollback delta = %d, want 2", pts[1].V)
	}
}

func TestRateScaling(t *testing.T) {
	st := New(Config{Capacity: 8})
	v := uint64(0)
	// e.g. utilization in basis points: delta cells x 2831ns x 10000 / 10ms
	st.TrackRateFunc("util", func() uint64 { return v }, 2831*10000, int64(10*time.Millisecond))
	v = 1000
	tick(st, 1)
	pts := st.Export().Series[0].Points
	want := int64(1000) * 2831 * 10000 / int64(10*time.Millisecond)
	if pts[0].V != want {
		t.Fatalf("scaled delta = %d, want %d", pts[0].V, want)
	}
}

func TestGaugeAndHistSampling(t *testing.T) {
	st := New(Config{Capacity: 8})
	g := &obs.Gauge{}
	h := &obs.Histogram{}
	st.TrackGauge("g", g)
	st.TrackHistogram("h", h)
	g.Set(7)
	g.Set(2)
	h.Observe(4 * time.Millisecond)
	tick(st, 1)
	ex := st.Export()
	var gp, hp Point
	for _, s := range ex.Series {
		switch s.Name {
		case "g":
			gp = s.Points[0]
		case "h":
			hp = s.Points[0]
		}
	}
	if gp.V != 2 || gp.Aux != 7 {
		t.Fatalf("gauge point = %+v, want value=2 hi=7", gp)
	}
	if hp.V != 1 || hp.Aux <= 0 {
		t.Fatalf("hist point = %+v, want count delta 1 and positive p99", hp)
	}
}

func TestRingWraps(t *testing.T) {
	st := New(Config{Capacity: 4})
	v := uint64(0)
	st.TrackRateFunc("c", func() uint64 { return v }, 0, 0)
	for i := 1; i <= 10; i++ {
		v += uint64(i)
		tick(st, i)
	}
	pts := st.Export().Series[0].Points
	if len(pts) != 4 {
		t.Fatalf("retained %d points, want 4", len(pts))
	}
	// Oldest-first: deltas 7,8,9,10 from ticks 7..10.
	for i, want := range []int64{7, 8, 9, 10} {
		if pts[i].V != want {
			t.Fatalf("pts[%d].V = %d, want %d (%+v)", i, pts[i].V, want, pts)
		}
	}
}

func TestTrackRegistryRescansOnGrowth(t *testing.T) {
	st := New(Config{Capacity: 8})
	reg := obs.NewRegistry()
	reg.Counter("a").Add(1)
	st.TrackRegistry("m.", reg)
	tick(st, 1)
	reg.Counter("b").Add(5) // lazily registered after arm
	tick(st, 2)
	ex := st.Export()
	names := make(map[string]int)
	for _, s := range ex.Series {
		names[s.Name] = len(s.Points)
	}
	if names["m.a"] != 2 {
		t.Fatalf("m.a points = %d, want 2 (%v)", names["m.a"], names)
	}
	if names["m.b"] != 1 {
		t.Fatalf("m.b points = %d, want 1 (adopted at tick 2) (%v)", names["m.b"], names)
	}
}

func TestWatermarkRuleEdges(t *testing.T) {
	st := New(Config{Capacity: 8})
	depth := int64(0)
	st.TrackGaugeFunc("q.depth", func() (int64, int64) { return depth, depth })
	st.AddRule(Rule{Name: "deep", Series: "q.*", Threshold: 5, ForTicks: 2})
	var events []HealthEvent
	st.OnHealthEvent(func(ev HealthEvent) { events = append(events, ev) })

	depth = 6
	tick(st, 1) // streak 1: no fire yet
	tick(st, 2) // streak 2: fire
	tick(st, 3) // still firing: no re-fire
	depth = 1
	tick(st, 4) // clear
	depth = 9
	tick(st, 5)
	tick(st, 6) // fire again

	if len(events) != 3 {
		t.Fatalf("events = %+v, want fire/clear/fire", events)
	}
	if events[0].State != "fire" || events[0].Tick != 2 || events[0].Series != "q.depth" {
		t.Fatalf("first event = %+v", events[0])
	}
	if events[1].State != "clear" || events[1].Tick != 4 {
		t.Fatalf("second event = %+v", events[1])
	}
	if events[2].State != "fire" || events[2].Tick != 6 {
		t.Fatalf("third event = %+v", events[2])
	}
	if got := st.Events(); len(got) != 3 {
		t.Fatalf("ring retained %d events, want 3", len(got))
	}
	health := st.HealthText()
	if !strings.Contains(health, "FIRING") || !strings.Contains(health, "deep") {
		t.Fatalf("health text missing firing rule:\n%s", health)
	}
}

func TestRuleBelowAndAux(t *testing.T) {
	st := New(Config{Capacity: 8})
	val, hi := int64(10), int64(10)
	st.TrackGaugeFunc("g", func() (int64, int64) { return val, hi })
	st.AddRule(Rule{Name: "starved", Series: "g", Threshold: 2, Below: true, ForTicks: 1})
	st.AddRule(Rule{Name: "hiwater", Series: "g", Threshold: 50, OnAux: true, ForTicks: 1})
	val = 1
	hi = 60
	tick(st, 1)
	events := st.Events()
	if len(events) != 2 {
		t.Fatalf("events = %+v, want both rules firing", events)
	}
}

func TestNilStoreIsSafe(t *testing.T) {
	var st *Store
	if st.Enabled() {
		t.Fatal("nil store reports enabled")
	}
	st.TrackCounter("c", &obs.Counter{})
	st.AddRule(Rule{Name: "r", Series: "c"})
	st.Tick(time.Second)
	if st.JSON() == "" || st.Text() == "" || st.HealthText() == "" || st.HealthJSON() == "" {
		t.Fatal("nil store rendered empty output")
	}
	var p *Peak
	p.Note(5)
	if p.Take() != 0 {
		t.Fatal("nil peak returned nonzero")
	}
}

func TestPeak(t *testing.T) {
	var p Peak
	p.Note(3)
	p.Note(9)
	p.Note(4)
	if got := p.Take(); got != 9 {
		t.Fatalf("Take = %d, want 9", got)
	}
	if got := p.Take(); got != 0 {
		t.Fatalf("second Take = %d, want 0 after reset", got)
	}
}

func TestExportDeterminism(t *testing.T) {
	build := func() string {
		st := New(Config{Capacity: 8})
		reg := obs.NewRegistry()
		reg.Counter("z").Add(2)
		reg.Counter("a").Add(1)
		reg.Gauge("g").Set(4)
		reg.Histogram("h").Observe(time.Millisecond)
		st.TrackRegistry("r.", reg)
		st.AddRule(Rule{Name: "rule", Series: "r.g", Threshold: 1, ForTicks: 1})
		tick(st, 1)
		tick(st, 2)
		return st.JSON()
	}
	if a, b := build(), build(); a != b {
		t.Fatalf("same-input exports differ:\n%s\n%s", a, b)
	}
}

func TestTickSteadyStateDoesNotAllocate(t *testing.T) {
	st := New(Config{Capacity: 64})
	reg := obs.NewRegistry()
	reg.Counter("c").Add(1)
	reg.Gauge("g").Set(2)
	reg.Histogram("h").Observe(time.Millisecond)
	st.TrackRegistry("r.", reg)
	st.AddRule(Rule{Name: "rule", Series: "r.g", Threshold: 1, ForTicks: 1})
	st.Tick(0) // adopt + first fire; rule state maps populate here
	now := time.Duration(0)
	avg := testing.AllocsPerRun(100, func() {
		now += 10 * time.Millisecond
		st.Tick(now)
	})
	if avg > 0 {
		t.Fatalf("steady-state Tick allocates %.1f objects/op, want 0", avg)
	}
}
