package obs

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"
)

// DefaultRingSize bounds each registry's event ring. Old events are
// overwritten; Seq stays globally monotonic so consumers can detect loss.
const DefaultRingSize = 256

// Event is one structured trace record. Numeric identity fields (VCI,
// CallID, Cookie) are typed so consumers filter without parsing strings;
// Data carries the underlying protocol message (sigmsg.Msg, kern.KMsg) for
// rendering. Data is excluded from JSON — wire consumers get Text, filled by
// the component's stringifier when the event is published.
type Event struct {
	Seq    uint64        `json:"seq"`
	At     time.Duration `json:"at_ns"` // sim (or daemon-relative) timestamp
	Comp   string        `json:"comp"`
	Kind   string        `json:"kind"`
	VCI    uint32        `json:"vci,omitempty"`
	CallID uint32        `json:"call,omitempty"`
	Cookie uint32        `json:"cookie,omitempty"`
	Peer   string        `json:"peer,omitempty"`
	Text   string        `json:"text,omitempty"`
	Data   any           `json:"-"`
}

// String renders a generic one-line form. Components with golden trace
// formats (sighost) render events themselves and store the result in Text.
func (ev Event) String() string {
	if ev.Text != "" {
		return ev.Text
	}
	return fmt.Sprintf("[%v] %s.%s vci=%d call=%d %v", ev.At, ev.Comp, ev.Kind, ev.VCI, ev.CallID, ev.Data)
}

// Ring is a bounded, mutex-guarded buffer of recent events with optional
// subscribers (invoked synchronously under the publisher).
type Ring struct {
	mu    sync.Mutex
	buf   []Event
	next  uint64 // total events ever published == next Seq
	subs  []func(Event)
	nsubs atomic.Int32
}

// NewRing returns a ring holding the last capacity events (min 1).
func NewRing(capacity int) *Ring {
	if capacity < 1 {
		capacity = 1
	}
	return &Ring{buf: make([]Event, 0, capacity)}
}

// Publish stamps ev.Seq and appends it, overwriting the oldest event when
// full, then invokes subscribers.
func (r *Ring) Publish(ev Event) {
	r.mu.Lock()
	ev.Seq = r.next
	r.next++
	if len(r.buf) < cap(r.buf) {
		r.buf = append(r.buf, ev)
	} else {
		r.buf[int(ev.Seq)%cap(r.buf)] = ev
	}
	subs := r.subs
	r.mu.Unlock()
	for _, fn := range subs {
		fn(ev)
	}
}

// Subscribe registers fn to run synchronously on every future publish.
func (r *Ring) Subscribe(fn func(Event)) {
	r.mu.Lock()
	// Copy-on-write so Publish can invoke outside the lock.
	subs := make([]func(Event), len(r.subs)+1)
	copy(subs, r.subs)
	subs[len(r.subs)] = fn
	r.subs = subs
	r.mu.Unlock()
	r.nsubs.Add(1)
}

// Total returns how many events have ever been published.
func (r *Ring) Total() uint64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.next
}

// Last returns up to n most recent events, oldest first.
func (r *Ring) Last(n int) []Event {
	r.mu.Lock()
	defer r.mu.Unlock()
	have := len(r.buf)
	if n > have {
		n = have
	}
	if n <= 0 {
		return nil
	}
	out := make([]Event, 0, n)
	start := r.next - uint64(n)
	for i := 0; i < n; i++ {
		out = append(out, r.buf[int(start+uint64(i))%cap(r.buf)])
	}
	return out
}

// Tracer is a per-component gate in front of the ring. The disabled path is
// a nil check plus one atomic load, so instrumented call sites cost nothing
// measurable when tracing is off (see BenchmarkTelemetryOverhead).
type Tracer struct {
	on   atomic.Bool
	comp string
	ring *Ring
}

// Enabled reports whether events from this component should be built at all.
// Call sites must gate event construction on this, not just Emit, so the
// disabled path never allocates.
func (t *Tracer) Enabled() bool {
	return t != nil && t.on.Load()
}

// Emit publishes ev (stamping Comp) if the tracer is enabled.
func (t *Tracer) Emit(ev Event) {
	if !t.Enabled() {
		return
	}
	ev.Comp = t.comp
	t.ring.Publish(ev)
}

// Tracer returns the component's tracer, creating it (disabled) on first use.
func (r *Registry) Tracer(comp string) *Tracer {
	r.mu.Lock()
	defer r.mu.Unlock()
	t, ok := r.tracers[comp]
	if !ok {
		t = &Tracer{comp: comp, ring: r.ring}
		r.tracers[comp] = t
	}
	return t
}

// EnableTrace flips the component's tracer on or off.
func (r *Registry) EnableTrace(comp string, on bool) {
	r.Tracer(comp).on.Store(on)
}

// Ring returns the registry's shared event ring.
func (r *Registry) Ring() *Ring {
	return r.ring
}
