// Package cost implements the instruction-accounting model used to
// reproduce Table 1 of the paper.
//
// The paper counts instructions in the style of Clark, Jacobson, Romkey
// and Salwen ("An Analysis of TCP Processing Overhead"): protocol-specific
// work only, with procedure-call overhead and memory management excluded.
// Each protocol layer in this reproduction charges a Meter at the same
// program points a static assembly-level count would cover: header field
// reads and writes, table lookups, comparisons, and per-mbuf loop
// iterations. The per-operation constants in this package are the
// calibration of those code points against the MIPS-class instruction
// counts the paper reports; DESIGN.md §6 documents the calibration.
//
// A nil *Meter is valid and charges nothing, so hot paths may carry an
// optional meter without branching at every call site.
package cost

import (
	"fmt"
	"sort"
	"strings"
	"sync/atomic"
)

// Component identifies a protocol-stack component whose processing cost is
// accounted separately, matching the rows of Table 1.
type Component uint8

// Components, in the order the paper's Table 1 lists them, plus the extra
// components this reproduction accounts for (switch fabric, AAL5, kernel
// and signaling work are reported in EXPERIMENTS.md but are outside the
// Table 1 host path).
const (
	PFXunet    Component = iota // PF_XUNET socket-layer protocol processing
	OrcDriver                   // Orc device driver entry points
	ProtoATM                    // IPPROTO_ATM encapsulation/decapsulation
	IP                          // IP input/output (counts from Clark et al.)
	LinkDriver                  // FDDI/Ethernet driver (router switching path)
	Switch                      // ATM switch cell handling
	AAL5                        // AAL5 segmentation and reassembly
	Kernel                      // socket layer, pseudo-device, fd handling
	Signaling                   // sighost protocol processing
	numComponents
)

var componentNames = [numComponents]string{
	PFXunet:    "PF_XUNET",
	OrcDriver:  "Orc driver",
	ProtoATM:   "IPPROTO_ATM",
	IP:         "IP",
	LinkDriver: "Link driver",
	Switch:     "ATM switch",
	AAL5:       "AAL5",
	Kernel:     "Kernel",
	Signaling:  "Signaling",
}

// String returns the human-readable component name used in tables.
func (c Component) String() string {
	if int(c) < len(componentNames) {
		return componentNames[c]
	}
	return fmt.Sprintf("Component(%d)", uint8(c))
}

// Components returns all accountable components in table order.
func Components() []Component {
	cs := make([]Component, numComponents)
	for i := range cs {
		cs[i] = Component(i)
	}
	return cs
}

// Per-operation instruction charges. These constants decompose the
// paper's per-layer totals into the individual operations our
// implementation actually performs, so the Table 1 numbers are the *sum*
// of charges made by real code paths rather than single magic constants.
//
// Receive path at a host (total 194 + 8·mbufs):
//
//	IP input                     57   (Clark et al. receive count)
//	IPPROTO_ATM decap            36   = header load (12) + sequence check (9)
//	                                  + VCI handler lookup (9) + hand-off (6)
//	Orc driver input              2   = per-VCI handler dispatch
//	PF_XUNET input        99 + 8·m   = PCB index (11) + socket state checks (22)
//	                                  + address fixup (18) + sbappend bookkeeping (48)
//	                                  + 8 per mbuf walked
//
// Send path at a host (total 119 + 8·mbufs):
//
//	PF_XUNET output               0   (falls through to the driver untouched)
//	Orc driver output             0   (hands the mbuf pointer to encapsulation)
//	IPPROTO_ATM encap     58 + 8·m   = header build (21) + sequence stamp (8)
//	                                  + route/config lookup (14) + length walk
//	                                    (15 fixed + 8 per mbuf)
//	IP output                    61   (Clark et al. send count)
//
// Router switching path for an encapsulated packet (total +39):
//
//	decap checks (17) + VCI table lookup (9) + re-encap fixup (13)
const (
	// IP constants, taken unchanged from Clark et al. as the paper does.
	IPRecvCost = 57
	IPSendCost = 61

	// IPPROTO_ATM decapsulation (receive side).
	ProtoATMHeaderLoad = 12
	ProtoATMSeqCheck   = 9
	ProtoATMVCILookup  = 9
	ProtoATMHandoff    = 6
	ProtoATMRecvTotal  = ProtoATMHeaderLoad + ProtoATMSeqCheck + ProtoATMVCILookup + ProtoATMHandoff // 36
	// IPPROTO_ATM encapsulation (send side).
	ProtoATMHeaderBuild = 21
	ProtoATMSeqStamp    = 8
	ProtoATMRouteLookup = 14
	ProtoATMLenWalkBase = 15
	ProtoATMSendFixed   = ProtoATMHeaderBuild + ProtoATMSeqStamp + ProtoATMRouteLookup + ProtoATMLenWalkBase // 58

	// ProtoATMChecksum is the extra cost of the optional encapsulation
	// header checksum (off by default, as in the paper; §7.4 notes it
	// "could be added ... if needed").
	ProtoATMChecksum = 12

	// Orc driver.
	OrcRecvDispatch = 2

	// PF_XUNET input path.
	PFXunetPCBIndex    = 11
	PFXunetStateChecks = 22
	PFXunetAddrFixup   = 18
	PFXunetSbAppend    = 48
	PFXunetRecvFixed   = PFXunetPCBIndex + PFXunetStateChecks + PFXunetAddrFixup + PFXunetSbAppend // 99

	// Per-mbuf walking cost, charged once per mbuf in a chain on both the
	// PF_XUNET receive path and the IPPROTO_ATM send path.
	PerMbuf = 8

	// Router switching path for an encapsulated packet (§9: 39 instructions
	// on top of driver input, IP switching and Orc output).
	RouterDecapChecks = 17
	RouterVCILookup   = 9
	RouterReEncap     = 13
	RouterSwitchTotal = RouterDecapChecks + RouterVCILookup + RouterReEncap // 39
)

// Meter accumulates instruction counts per component. The zero value is
// ready to use. All methods are safe for concurrent use; a nil receiver
// is valid and records nothing.
type Meter struct {
	counts [numComponents]atomic.Int64
}

// NewMeter returns an empty meter.
func NewMeter() *Meter { return &Meter{} }

// Charge adds n instructions to component c. Charging a nil meter or a
// non-positive n is a no-op.
func (m *Meter) Charge(c Component, n int64) {
	if m == nil || n <= 0 || int(c) >= int(numComponents) {
		return
	}
	m.counts[c].Add(n)
}

// ChargePerMbuf adds the fixed per-mbuf walking cost for an n-mbuf chain
// to component c.
func (m *Meter) ChargePerMbuf(c Component, mbufs int) {
	if mbufs > 0 {
		m.Charge(c, int64(mbufs)*PerMbuf)
	}
}

// Count reports the instructions charged to component c.
func (m *Meter) Count(c Component) int64 {
	if m == nil || int(c) >= int(numComponents) {
		return 0
	}
	return m.counts[c].Load()
}

// Total reports the instructions charged across all components.
func (m *Meter) Total() int64 {
	if m == nil {
		return 0
	}
	var t int64
	for i := range m.counts {
		t += m.counts[i].Load()
	}
	return t
}

// Reset zeroes every component counter.
func (m *Meter) Reset() {
	if m == nil {
		return
	}
	for i := range m.counts {
		m.counts[i].Store(0)
	}
}

// Snapshot captures the meter state for reporting.
func (m *Meter) Snapshot() Snapshot {
	s := Snapshot{}
	if m == nil {
		return s
	}
	for i := range m.counts {
		if v := m.counts[i].Load(); v != 0 {
			s[Component(i)] = v
		}
	}
	return s
}

// Snapshot is an immutable view of per-component instruction counts.
type Snapshot map[Component]int64

// Total sums the snapshot across components.
func (s Snapshot) Total() int64 {
	var t int64
	for _, v := range s {
		t += v
	}
	return t
}

// Sub returns the per-component difference s − prev, dropping zero rows.
// It is the usual way to isolate the cost of one operation: snapshot,
// run, snapshot again, subtract.
func (s Snapshot) Sub(prev Snapshot) Snapshot {
	d := Snapshot{}
	for c, v := range s {
		if dv := v - prev[c]; dv != 0 {
			d[c] = dv
		}
	}
	for c, v := range prev {
		if _, ok := s[c]; !ok && v != 0 {
			d[c] = -v
		}
	}
	return d
}

// String renders the snapshot as an aligned table in component order,
// matching the layout of Table 1.
func (s Snapshot) String() string {
	type row struct {
		c Component
		v int64
	}
	rows := make([]row, 0, len(s))
	for c, v := range s {
		rows = append(rows, row{c, v})
	}
	sort.Slice(rows, func(i, j int) bool { return rows[i].c < rows[j].c })
	var b strings.Builder
	for _, r := range rows {
		fmt.Fprintf(&b, "%-12s %8d\n", r.c, r.v)
	}
	fmt.Fprintf(&b, "%-12s %8d\n", "Total", s.Total())
	return b.String()
}
